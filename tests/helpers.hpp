// Shared fixtures/builders for the test suites.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "btc/block.hpp"
#include "btc/chain.hpp"
#include "btc/transaction.hpp"

namespace cn::test {

/// A simple 1-in/1-out payment with the given fee-rate (sat/vB).
inline btc::Transaction tx_with_rate(double sat_per_vb, std::uint32_t vsize = 250,
                                     SimTime issued = 0, std::uint64_t nonce = 0,
                                     std::string from_label = "alice",
                                     std::string to_label = "bob") {
  static std::uint64_t auto_nonce = 1'000'000;
  if (nonce == 0) nonce = ++auto_nonce;
  const auto fee = btc::Satoshi{
      static_cast<std::int64_t>(sat_per_vb * static_cast<double>(vsize))};
  return btc::make_payment(issued, vsize, fee, btc::Address::derive(from_label),
                           btc::Address::derive(to_label),
                           btc::Satoshi{1'000'000}, nonce);
}

/// Builds a block at @p height containing transactions with the given
/// fee-rates, in that observed order.
inline btc::Block block_with_rates(std::uint64_t height,
                                   const std::vector<double>& rates,
                                   const std::string& pool_tag = "/TestPool/",
                                   SimTime mined_at = 600) {
  std::vector<btc::Transaction> txs;
  txs.reserve(rates.size());
  for (std::size_t i = 0; i < rates.size(); ++i) {
    txs.push_back(tx_with_rate(rates[i], 250, 0, height * 10'000 + i + 1));
  }
  btc::Coinbase cb;
  cb.tag = pool_tag;
  cb.reward_address = btc::Address::derive(pool_tag + "/reward");
  cb.reward = btc::Satoshi{625'000'000};
  return btc::Block(height, mined_at, std::move(cb), std::move(txs));
}

}  // namespace cn::test

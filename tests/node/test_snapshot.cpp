#include "node/snapshot.hpp"

#include <gtest/gtest.h>

namespace cn::node {
namespace {

TEST(CongestionLevel, DefaultUnitBins) {
  EXPECT_EQ(congestion_level(0), CongestionLevel::kNone);
  EXPECT_EQ(congestion_level(1'000'000), CongestionLevel::kNone);
  EXPECT_EQ(congestion_level(1'000'001), CongestionLevel::kLow);
  EXPECT_EQ(congestion_level(2'000'000), CongestionLevel::kLow);
  EXPECT_EQ(congestion_level(3'500'000), CongestionLevel::kMedium);
  EXPECT_EQ(congestion_level(4'000'001), CongestionLevel::kHigh);
}

TEST(CongestionLevel, ScaledUnit) {
  EXPECT_EQ(congestion_level(100'000, 100'000), CongestionLevel::kNone);
  EXPECT_EQ(congestion_level(150'000, 100'000), CongestionLevel::kLow);
  EXPECT_EQ(congestion_level(300'000, 100'000), CongestionLevel::kMedium);
  EXPECT_EQ(congestion_level(500'000, 100'000), CongestionLevel::kHigh);
}

TEST(SnapshotSeries, RecordsAndExposes) {
  SnapshotSeries s;
  s.record({15, 10, 500});
  s.record({30, 20, 1500});
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.stats()[1].tx_count, 20u);
}

TEST(SnapshotSeries, FractionAbove) {
  SnapshotSeries s;
  s.record({15, 1, 500'000});
  s.record({30, 2, 1'500'000});
  s.record({45, 3, 2'500'000});
  s.record({60, 4, 900'000});
  EXPECT_DOUBLE_EQ(s.fraction_above(1'000'000), 0.5);
  EXPECT_DOUBLE_EQ(s.fraction_above(0), 1.0);
  EXPECT_DOUBLE_EQ(s.fraction_above(10'000'000), 0.0);
}

TEST(SnapshotSeries, FractionAboveEmpty) {
  SnapshotSeries s;
  EXPECT_DOUBLE_EQ(s.fraction_above(1), 0.0);
}

TEST(SnapshotSeries, MaxVsize) {
  SnapshotSeries s;
  s.record({15, 1, 100});
  s.record({30, 1, 900});
  s.record({45, 1, 400});
  EXPECT_EQ(s.max_vsize(), 900u);
}

TEST(SnapshotSeries, LevelAtUsesMostRecentSnapshot) {
  SnapshotSeries s;
  s.record({15, 1, 500'000});    // none
  s.record({30, 1, 3'000'000});  // medium
  EXPECT_EQ(s.level_at(10), CongestionLevel::kNone);   // before first
  EXPECT_EQ(s.level_at(15), CongestionLevel::kNone);
  EXPECT_EQ(s.level_at(29), CongestionLevel::kNone);
  EXPECT_EQ(s.level_at(30), CongestionLevel::kMedium);
  EXPECT_EQ(s.level_at(1000), CongestionLevel::kMedium);
}

TEST(SnapshotSeries, LevelAtScaledUnit) {
  SnapshotSeries s;
  s.record({15, 1, 250'000});
  EXPECT_EQ(s.level_at(20, 100'000), CongestionLevel::kMedium);
  EXPECT_EQ(s.level_at(20, 1'000'000), CongestionLevel::kNone);
}

TEST(SnapshotSeries, LevelsForMatchesLevelAtInAnyOrder) {
  SnapshotSeries s;
  s.record({15, 1, 500'000});
  s.record({30, 1, 3'000'000});
  s.record({45, 1, 1'500'000});
  s.record({90, 1, 5'000'000});
  // Ascending run, a duplicate, then an out-of-order rewind.
  const std::vector<SimTime> times = {5, 15, 16, 44, 45, 45, 100, 29, 91};
  const auto levels = s.levels_for(times);
  ASSERT_EQ(levels.size(), times.size());
  for (std::size_t i = 0; i < times.size(); ++i) {
    EXPECT_EQ(levels[i], s.level_at(times[i])) << "t=" << times[i];
  }
  EXPECT_TRUE(s.levels_for({}).empty());
  // The scaled unit reaches the batch too.
  const auto scaled = s.levels_for(times, 100'000);
  for (std::size_t i = 0; i < times.size(); ++i) {
    EXPECT_EQ(scaled[i], s.level_at(times[i], 100'000)) << "t=" << times[i];
  }
}

TEST(SnapshotSeries, LevelsForOnEmptySeriesIsAllNone) {
  SnapshotSeries s;
  const std::vector<SimTime> times = {1, 2, 3};
  for (const CongestionLevel level : s.levels_for(times)) {
    EXPECT_EQ(level, CongestionLevel::kNone);
  }
}

TEST(SnapshotSeriesDeathTest, RejectsNonIncreasingTime) {
  SnapshotSeries s;
  s.record({30, 1, 1});
  EXPECT_DEATH(s.record({30, 1, 1}), "time");
}

}  // namespace
}  // namespace cn::node

#include "node/block_template.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "../helpers.hpp"

namespace cn::node {
namespace {

using cn::test::tx_with_rate;

TEST(BlockTemplate, OrdersByFeeRateDescending) {
  Mempool pool(1);
  pool.accept(tx_with_rate(2.0), 0);
  pool.accept(tx_with_rate(9.0), 0);
  pool.accept(tx_with_rate(5.0), 0);

  const BlockTemplate tpl = build_template(pool, TemplateOptions{});
  ASSERT_EQ(tpl.txs.size(), 3u);
  EXPECT_DOUBLE_EQ(tpl.txs[0].fee_rate().sat_per_vbyte(), 9.0);
  EXPECT_DOUBLE_EQ(tpl.txs[1].fee_rate().sat_per_vbyte(), 5.0);
  EXPECT_DOUBLE_EQ(tpl.txs[2].fee_rate().sat_per_vbyte(), 2.0);
}

TEST(BlockTemplate, RespectsVsizeBudget) {
  Mempool pool(1);
  for (int i = 0; i < 10; ++i) pool.accept(tx_with_rate(5.0, 300), 0);
  TemplateOptions options;
  options.max_vsize = 1000;  // fits 3 of 300 vB
  const BlockTemplate tpl = build_template(pool, options);
  EXPECT_EQ(tpl.txs.size(), 3u);
  EXPECT_LE(tpl.total_vsize, 1000u);
}

TEST(BlockTemplate, SkipsTooBigButKeepsFilling) {
  Mempool pool(1);
  pool.accept(tx_with_rate(9.0, 800), 0);  // best rate but huge
  pool.accept(tx_with_rate(5.0, 300), 0);
  pool.accept(tx_with_rate(4.0, 300), 0);
  TemplateOptions options;
  options.max_vsize = 700;
  const BlockTemplate tpl = build_template(pool, options);
  ASSERT_EQ(tpl.txs.size(), 2u);
  EXPECT_DOUBLE_EQ(tpl.txs[0].fee_rate().sat_per_vbyte(), 5.0);
}

TEST(BlockTemplate, MinRateFloorExcludes) {
  Mempool pool(0);
  pool.accept(tx_with_rate(0.5), 0);
  pool.accept(tx_with_rate(3.0), 0);
  TemplateOptions options;
  options.min_rate = btc::FeeRate::from_sat_per_vb(1);
  const BlockTemplate tpl = build_template(pool, options);
  ASSERT_EQ(tpl.txs.size(), 1u);
  EXPECT_DOUBLE_EQ(tpl.txs[0].fee_rate().sat_per_vbyte(), 3.0);
}

TEST(BlockTemplate, NoFloorIncludesZeroFee) {
  Mempool pool(0);
  pool.accept(tx_with_rate(0.0), 0);
  const BlockTemplate tpl = build_template(pool, TemplateOptions{});
  EXPECT_EQ(tpl.txs.size(), 1u);
}

TEST(BlockTemplate, CpfpPackageRescuesParent) {
  Mempool pool(0);
  const auto parent = tx_with_rate(1.0, 250, 0, 901);  // stuck: low fee
  const auto child = btc::make_child_payment(
      10, 250, btc::Satoshi{5000} /* 20 sat/vB */, parent,
      btc::Address::derive("d"), btc::Satoshi{100}, 902);
  pool.accept(parent, 0);
  pool.accept(child, 10);
  pool.accept(tx_with_rate(5.0, 250, 0, 903), 0);  // competitor

  const BlockTemplate tpl = build_template(pool, TemplateOptions{});
  ASSERT_EQ(tpl.txs.size(), 3u);
  // Package rate = (250 + 5000) / 500 = 10.5 sat/vB > 5.0: parent+child first,
  // parent before child.
  EXPECT_EQ(tpl.txs[0].id(), parent.id());
  EXPECT_EQ(tpl.txs[1].id(), child.id());
  EXPECT_DOUBLE_EQ(tpl.txs[2].fee_rate().sat_per_vbyte(), 5.0);
}

TEST(BlockTemplate, LowFeeChildDoesNotDragParentUp) {
  Mempool pool(0);
  const auto parent = tx_with_rate(4.0, 250, 0, 911);
  const auto child = btc::make_child_payment(
      10, 250, btc::Satoshi{250} /* 1 sat/vB */, parent,
      btc::Address::derive("d"), btc::Satoshi{100}, 912);
  pool.accept(parent, 0);
  pool.accept(child, 10);
  pool.accept(tx_with_rate(3.0, 250, 0, 913), 0);

  const BlockTemplate tpl = build_template(pool, TemplateOptions{});
  ASSERT_EQ(tpl.txs.size(), 3u);
  // Parent alone (4.0) beats the 3.0 competitor; the child (1.0, package
  // 2.5 once parent selected) comes last.
  EXPECT_EQ(tpl.txs[0].id(), parent.id());
  EXPECT_DOUBLE_EQ(tpl.txs[1].fee_rate().sat_per_vbyte(), 3.0);
  EXPECT_EQ(tpl.txs[2].id(), child.id());
}

TEST(BlockTemplate, FeeDeltaBoostsOrdering) {
  Mempool pool(1);
  const auto slow = tx_with_rate(1.0, 250, 0, 921);
  pool.accept(slow, 0);
  pool.accept(tx_with_rate(50.0, 250, 0, 922), 0);

  TemplateOptions options;
  options.fee_deltas[slow.id()] = btc::Satoshi{1'000'000};
  const BlockTemplate tpl = build_template(pool, options);
  ASSERT_EQ(tpl.txs.size(), 2u);
  EXPECT_EQ(tpl.txs[0].id(), slow.id());
  // The *collected* fee stays the public fee.
  EXPECT_EQ(tpl.total_fees.value, static_cast<std::int64_t>(1.0 * 250 + 50.0 * 250));
}

TEST(BlockTemplate, NegativeDeltaDemotes) {
  Mempool pool(1);
  const auto victim = tx_with_rate(50.0, 250, 0, 931);
  pool.accept(victim, 0);
  pool.accept(tx_with_rate(5.0, 250, 0, 932), 0);
  TemplateOptions options;
  options.fee_deltas[victim.id()] = btc::Satoshi{-12'000};
  const BlockTemplate tpl = build_template(pool, options);
  ASSERT_EQ(tpl.txs.size(), 2u);
  EXPECT_EQ(tpl.txs[1].id(), victim.id());
}

TEST(BlockTemplate, ExcludeSetCensors) {
  Mempool pool(1);
  const auto banned = tx_with_rate(50.0, 250, 0, 941);
  pool.accept(banned, 0);
  pool.accept(tx_with_rate(5.0, 250, 0, 942), 0);
  TemplateOptions options;
  options.exclude.insert(banned.id());
  const BlockTemplate tpl = build_template(pool, options);
  ASSERT_EQ(tpl.txs.size(), 1u);
  EXPECT_NE(tpl.txs[0].id(), banned.id());
}

TEST(BlockTemplate, ExcludedParentBlocksChild) {
  Mempool pool(0);
  const auto parent = tx_with_rate(2.0, 250, 0, 951);
  const auto child = btc::make_child_payment(
      10, 250, btc::Satoshi{5000}, parent, btc::Address::derive("d"),
      btc::Satoshi{100}, 952);
  pool.accept(parent, 0);
  pool.accept(child, 10);
  TemplateOptions options;
  options.exclude.insert(parent.id());
  const BlockTemplate tpl = build_template(pool, options);
  EXPECT_TRUE(tpl.txs.empty());  // child unmineable without its parent
}

TEST(BlockTemplate, EmptyMempoolYieldsEmptyTemplate) {
  Mempool pool(1);
  const BlockTemplate tpl = build_template(pool, TemplateOptions{});
  EXPECT_TRUE(tpl.txs.empty());
  EXPECT_EQ(tpl.total_vsize, 0u);
}

TEST(BlockTemplate, DeterministicTieBreak) {
  // Two identical-rate txs: selection must be stable across builds.
  Mempool pool(1);
  const auto a = tx_with_rate(5.0, 250, 0, 961);
  const auto b = tx_with_rate(5.0, 250, 0, 962);
  pool.accept(a, 0);
  pool.accept(b, 0);
  const BlockTemplate t1 = build_template(pool, TemplateOptions{});
  const BlockTemplate t2 = build_template(pool, TemplateOptions{});
  ASSERT_EQ(t1.txs.size(), 2u);
  EXPECT_EQ(t1.txs[0].id(), t2.txs[0].id());
  EXPECT_EQ(t1.txs[1].id(), t2.txs[1].id());
  // Lower txid first on ties.
  EXPECT_LT(t1.txs[0].id(), t1.txs[1].id());
}

TEST(BlockTemplate, AgingBonusPromotesOldTransactions) {
  Mempool pool(1);
  // Same fee-rate, different ages: without aging the lower txid wins the
  // tie; with aging the older one must come first regardless.
  const auto old_tx = tx_with_rate(5.0, 250, 0, 971);
  const auto new_tx = tx_with_rate(5.0, 250, 0, 972);
  pool.accept(old_tx, /*arrival=*/0);
  pool.accept(new_tx, /*arrival=*/7200);  // two hours later

  TemplateOptions options;
  options.age_weight_per_hour = 0.10;
  options.now = 7200;
  const BlockTemplate tpl = build_template(pool, options);
  ASSERT_EQ(tpl.txs.size(), 2u);
  EXPECT_EQ(tpl.txs[0].id(), old_tx.id());
}

TEST(BlockTemplate, AgingBonusCanOvertakeHigherFee) {
  Mempool pool(1);
  const auto stale = tx_with_rate(4.0, 250, 0, 973);   // 10h old
  const auto fresh = tx_with_rate(5.0, 250, 0, 974);   // brand new
  pool.accept(stale, 0);
  pool.accept(fresh, 10 * 3600);
  TemplateOptions options;
  options.age_weight_per_hour = 0.10;  // stale effective: 4 * 2.0 = 8 > 5
  options.now = 10 * 3600;
  const BlockTemplate tpl = build_template(pool, options);
  ASSERT_EQ(tpl.txs.size(), 2u);
  EXPECT_EQ(tpl.txs[0].id(), stale.id());
  // Collected fees remain the real ones.
  EXPECT_EQ(tpl.total_fees.value, static_cast<std::int64_t>((4.0 + 5.0) * 250));
}

TEST(BlockTemplate, ZeroAgingWeightIsPureFeeRate) {
  Mempool pool(1);
  const auto stale = tx_with_rate(4.0, 250, 0, 975);
  const auto fresh = tx_with_rate(5.0, 250, 0, 976);
  pool.accept(stale, 0);
  pool.accept(fresh, 100 * 3600);
  TemplateOptions options;  // age_weight_per_hour = 0
  options.now = 100 * 3600;
  const BlockTemplate tpl = build_template(pool, options);
  EXPECT_EQ(tpl.txs[0].id(), fresh.id());
}

TEST(BlockTemplate, FifoOrdersByArrivalNotFeeRate) {
  // BitcoinF-style fair queue: first seen, first committed — fee rate
  // only matters for clearing the floor, never for the order.
  Mempool pool(1);
  const auto late_rich = tx_with_rate(9.0, 250, 0, 981);
  const auto early_poor = tx_with_rate(2.0, 250, 0, 982);
  const auto middle = tx_with_rate(5.0, 250, 0, 983);
  pool.accept(late_rich, 30);
  pool.accept(early_poor, 10);
  pool.accept(middle, 20);

  TemplateOptions options;
  options.fifo = true;
  const BlockTemplate tpl = build_template(pool, options);
  ASSERT_EQ(tpl.txs.size(), 3u);
  EXPECT_EQ(tpl.txs[0].id(), early_poor.id());
  EXPECT_EQ(tpl.txs[1].id(), middle.id());
  EXPECT_EQ(tpl.txs[2].id(), late_rich.id());
}

TEST(BlockTemplate, FifoStillEnforcesFloorAndCensorship) {
  // "Above the floor": a sub-floor transaction does not ride in on
  // arrival order, and the exclude set still censors.
  Mempool pool(0);
  const auto dust = tx_with_rate(0.5, 250, 0, 984);
  const auto banned = tx_with_rate(5.0, 250, 0, 985);
  const auto fine = tx_with_rate(3.0, 250, 0, 986);
  pool.accept(dust, 0);
  pool.accept(banned, 10);
  pool.accept(fine, 20);

  TemplateOptions options;
  options.fifo = true;
  options.min_rate = btc::FeeRate::from_sat_per_vb(1);
  options.exclude.insert(banned.id());
  const BlockTemplate tpl = build_template(pool, options);
  ASSERT_EQ(tpl.txs.size(), 1u);
  EXPECT_EQ(tpl.txs[0].id(), fine.id());
}

TEST(BlockTemplate, FifoTieBreaksDeterministicallyAndKeepsPackages) {
  Mempool pool(0);
  // Equal arrivals: lower txid first, stable across builds.
  const auto a = tx_with_rate(5.0, 250, 0, 987);
  const auto b = tx_with_rate(5.0, 250, 0, 988);
  pool.accept(a, 0);
  pool.accept(b, 0);
  // A CPFP pair arriving earlier than either: parent must still precede
  // its child in the committed order.
  const auto parent = tx_with_rate(1.0, 250, 0, 989);
  const auto child = btc::make_child_payment(
      5, 250, btc::Satoshi{5000}, parent, btc::Address::derive("d"),
      btc::Satoshi{100}, 990);
  pool.accept(parent, 0);
  pool.accept(child, 5);

  TemplateOptions options;
  options.fifo = true;
  const BlockTemplate t1 = build_template(pool, options);
  const BlockTemplate t2 = build_template(pool, options);
  ASSERT_EQ(t1.txs.size(), 4u);
  for (std::size_t i = 0; i < t1.txs.size(); ++i) {
    EXPECT_EQ(t1.txs[i].id(), t2.txs[i].id()) << i;
  }
  std::size_t parent_at = 99, child_at = 99, a_at = 99, b_at = 99;
  for (std::size_t i = 0; i < t1.txs.size(); ++i) {
    if (t1.txs[i].id() == parent.id()) parent_at = i;
    if (t1.txs[i].id() == child.id()) child_at = i;
    if (t1.txs[i].id() == a.id()) a_at = i;
    if (t1.txs[i].id() == b.id()) b_at = i;
  }
  EXPECT_LT(parent_at, child_at);
  EXPECT_EQ(a_at < b_at, a.id() < b.id());
}

TEST(BlockTemplate, FifoRespectsVsizeBudget) {
  Mempool pool(1);
  for (int i = 0; i < 10; ++i) {
    pool.accept(tx_with_rate(5.0, 300, 0, 991 + i), i);
  }
  TemplateOptions options;
  options.fifo = true;
  options.max_vsize = 1000;  // fits 3 of 300 vB
  const BlockTemplate tpl = build_template(pool, options);
  EXPECT_EQ(tpl.txs.size(), 3u);
  EXPECT_LE(tpl.total_vsize, 1000u);
}

// Property: for independent (no-dependency) transactions, the template is
// exactly sorted by fee-rate and fills greedily.
class GreedyProperty : public ::testing::TestWithParam<int> {};

TEST_P(GreedyProperty, SortedAndMaximal) {
  Mempool pool(1);
  unsigned state = static_cast<unsigned>(GetParam()) * 2654435761u;
  for (int i = 0; i < 60; ++i) {
    state = state * 1664525u + 1013904223u;
    const double rate = 1.0 + static_cast<double>(state % 1000) / 10.0;
    pool.accept(tx_with_rate(rate, 250, 0, 10'000 + GetParam() * 100 + i), 0);
  }
  TemplateOptions options;
  options.max_vsize = 250 * 40;  // room for 40 of 60
  const BlockTemplate tpl = build_template(pool, options);
  EXPECT_EQ(tpl.txs.size(), 40u);
  for (std::size_t i = 1; i < tpl.txs.size(); ++i) {
    EXPECT_GE(tpl.txs[i - 1].fee_rate().sat_per_vbyte(),
              tpl.txs[i].fee_rate().sat_per_vbyte());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedyProperty, ::testing::Range(1, 9));

}  // namespace
}  // namespace cn::node

#include "node/observer.hpp"

#include <gtest/gtest.h>

#include "../helpers.hpp"

namespace cn::node {
namespace {

using cn::test::block_with_rates;
using cn::test::tx_with_rate;

TEST(Observer, RecordsFirstSeen) {
  ObserverNode obs(1);
  const auto tx = tx_with_rate(5.0);
  EXPECT_EQ(obs.on_transaction(tx, 123), AcceptResult::kAccepted);
  const auto seen = obs.first_seen(tx.id());
  ASSERT_TRUE(seen.has_value());
  EXPECT_EQ(*seen, 123);
}

TEST(Observer, FirstSeenSticksOnRebroadcast) {
  ObserverNode obs(1);
  const auto tx = tx_with_rate(5.0);
  obs.on_transaction(tx, 100);
  obs.on_transaction(tx, 200);  // duplicate
  EXPECT_EQ(*obs.first_seen(tx.id()), 100);
}

TEST(Observer, CountsBelowFloorRejects) {
  ObserverNode obs(1);
  obs.on_transaction(tx_with_rate(0.2), 10);
  obs.on_transaction(tx_with_rate(0.0), 20);
  obs.on_transaction(tx_with_rate(2.0), 30);
  EXPECT_EQ(obs.below_floor_count(), 2u);
  EXPECT_EQ(obs.mempool().size(), 1u);
}

TEST(Observer, PermissiveNodeSeesZeroFee) {
  ObserverNode obs(0);  // data set B configuration
  const auto tx = tx_with_rate(0.0);
  EXPECT_EQ(obs.on_transaction(tx, 10), AcceptResult::kAccepted);
  EXPECT_TRUE(obs.first_seen(tx.id()).has_value());
  EXPECT_EQ(obs.below_floor_count(), 0u);
}

TEST(Observer, BlockEvictsCommitted) {
  ObserverNode obs(1);
  const auto a = tx_with_rate(5.0, 250, 0, 1001);
  const auto b = tx_with_rate(3.0, 250, 0, 1002);
  obs.on_transaction(a, 10);
  obs.on_transaction(b, 10);

  btc::Coinbase cb;
  std::vector<btc::Transaction> txs{a};
  obs.on_block(btc::Block(1, 600, cb, std::move(txs)));

  EXPECT_FALSE(obs.mempool().contains(a.id()));
  EXPECT_TRUE(obs.mempool().contains(b.id()));
  // first_seen survives commitment (it is the audit's t_i).
  EXPECT_TRUE(obs.first_seen(a.id()).has_value());
}

TEST(Observer, SnapshotSeriesTracksMempool) {
  ObserverNode obs(1);
  obs.record_snapshot(15);
  obs.on_transaction(tx_with_rate(5.0, 400), 20);
  obs.record_snapshot(30);
  const auto& stats = obs.snapshots().stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].tx_count, 0u);
  EXPECT_EQ(stats[1].tx_count, 1u);
  EXPECT_EQ(stats[1].total_vsize, 400u);
}

TEST(Observer, UnknownTxFirstSeenIsNullopt) {
  ObserverNode obs(1);
  EXPECT_FALSE(obs.first_seen(btc::Txid::hash_of("x")).has_value());
}

}  // namespace
}  // namespace cn::node

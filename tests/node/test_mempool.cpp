#include "node/mempool.hpp"

#include <gtest/gtest.h>

#include "../helpers.hpp"

namespace cn::node {
namespace {

using cn::test::tx_with_rate;

TEST(Mempool, AcceptAndSize) {
  Mempool pool(1);
  EXPECT_TRUE(pool.empty());
  const auto tx = tx_with_rate(5.0, 300);
  EXPECT_EQ(pool.accept(tx, 10), AcceptResult::kAccepted);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.total_vsize(), 300u);
  EXPECT_TRUE(pool.contains(tx.id()));
}

TEST(Mempool, RejectsDuplicates) {
  Mempool pool(1);
  const auto tx = tx_with_rate(5.0);
  EXPECT_EQ(pool.accept(tx, 10), AcceptResult::kAccepted);
  EXPECT_EQ(pool.accept(tx, 11), AcceptResult::kDuplicate);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(Mempool, EnforcesMinRelayFee) {
  Mempool pool(1);  // 1 sat/vB floor (norm III)
  EXPECT_EQ(pool.accept(tx_with_rate(0.5), 0), AcceptResult::kBelowMinFeeRate);
  EXPECT_EQ(pool.accept(tx_with_rate(0.0), 0), AcceptResult::kBelowMinFeeRate);
  EXPECT_EQ(pool.accept(tx_with_rate(1.0), 0), AcceptResult::kAccepted);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(Mempool, ZeroFloorAcceptsEverything) {
  Mempool pool(0);  // data set B configuration
  EXPECT_EQ(pool.accept(tx_with_rate(0.0), 0), AcceptResult::kAccepted);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(Mempool, RemoveUpdatesAccounting) {
  Mempool pool(1);
  const auto a = tx_with_rate(5.0, 300);
  const auto b = tx_with_rate(3.0, 200);
  pool.accept(a, 0);
  pool.accept(b, 0);
  EXPECT_TRUE(pool.remove(a.id()));
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.total_vsize(), 200u);
  EXPECT_FALSE(pool.remove(a.id()));  // already gone
}

TEST(Mempool, FindReturnsEntryWithArrival) {
  Mempool pool(1);
  const auto tx = tx_with_rate(2.0);
  pool.accept(tx, 1234);
  const MempoolEntry* entry = pool.find(tx.id());
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->arrival, 1234);
  EXPECT_EQ(pool.find(btc::Txid::hash_of("missing")), nullptr);
}

TEST(Mempool, EntriesByArrivalSorted) {
  Mempool pool(1);
  pool.accept(tx_with_rate(1.0, 250, 30), 30);
  pool.accept(tx_with_rate(2.0, 250, 10), 10);
  pool.accept(tx_with_rate(3.0, 250, 20), 20);
  const auto entries = pool.entries_by_arrival();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0]->arrival, 10);
  EXPECT_EQ(entries[1]->arrival, 20);
  EXPECT_EQ(entries[2]->arrival, 30);
}

TEST(Mempool, AncestorsAndChildren) {
  Mempool pool(1);
  const auto parent = tx_with_rate(1.0, 250, 0, 801);
  const auto child = btc::make_child_payment(
      10, 200, btc::Satoshi{1000}, parent, btc::Address::derive("d"),
      btc::Satoshi{100}, 802);
  const auto grandchild = btc::make_child_payment(
      20, 200, btc::Satoshi{1500}, child, btc::Address::derive("e"),
      btc::Satoshi{50}, 803);
  pool.accept(parent, 0);
  pool.accept(child, 10);
  pool.accept(grandchild, 20);

  const auto anc = pool.ancestors_of(grandchild.id());
  EXPECT_EQ(anc.size(), 2u);  // child + parent

  const auto kids = pool.children_of(parent.id());
  ASSERT_EQ(kids.size(), 1u);
  EXPECT_EQ(kids[0]->tx.id(), child.id());
}

TEST(Mempool, AncestorsStopAtConfirmedBoundary) {
  Mempool pool(1);
  const auto parent = tx_with_rate(1.0, 250, 0, 811);
  const auto child = btc::make_child_payment(
      10, 200, btc::Satoshi{1000}, parent, btc::Address::derive("d"),
      btc::Satoshi{100}, 812);
  // Parent is NOT in the mempool (already confirmed).
  pool.accept(child, 10);
  EXPECT_TRUE(pool.ancestors_of(child.id()).empty());
}

TEST(Mempool, RemoveCleansChildIndex) {
  Mempool pool(1);
  const auto parent = tx_with_rate(1.0, 250, 0, 821);
  const auto child = btc::make_child_payment(
      10, 200, btc::Satoshi{1000}, parent, btc::Address::derive("d"),
      btc::Satoshi{100}, 822);
  pool.accept(parent, 0);
  pool.accept(child, 10);
  pool.remove(child.id());
  EXPECT_TRUE(pool.children_of(parent.id()).empty());
}

TEST(Mempool, ForEachVisitsAll) {
  Mempool pool(1);
  for (int i = 0; i < 10; ++i) pool.accept(tx_with_rate(1.0 + i), 0);
  int visits = 0;
  pool.for_each([&](const MempoolEntry&) { ++visits; });
  EXPECT_EQ(visits, 10);
}

}  // namespace
}  // namespace cn::node

#include "node/fee_estimator.hpp"

#include <gtest/gtest.h>

#include "../helpers.hpp"

namespace cn::node {
namespace {

using cn::test::block_with_rates;

TEST(FeeEstimator, FallsBackWithoutHistory) {
  const FeeEstimator est(6);
  EXPECT_DOUBLE_EQ(est.recommend_sat_per_vb(0.5), 1.0);
  EXPECT_EQ(est.sample_count(), 0u);
}

TEST(FeeEstimator, MedianOfRecentBlocks) {
  FeeEstimator est(6);
  est.on_block(block_with_rates(1, {1, 2, 3, 4, 5}));
  EXPECT_DOUBLE_EQ(est.recommend_sat_per_vb(0.5), 3.0);
  EXPECT_EQ(est.sample_count(), 5u);
}

TEST(FeeEstimator, WindowEvictsOldBlocks) {
  FeeEstimator est(2);
  est.on_block(block_with_rates(1, {100, 100}));
  est.on_block(block_with_rates(2, {1, 1}));
  est.on_block(block_with_rates(3, {2, 2}));
  // Block 1 is out of the window: only rates {1,1,2,2} remain.
  EXPECT_EQ(est.sample_count(), 4u);
  EXPECT_LE(est.recommend_sat_per_vb(1.0), 2.0);
}

TEST(FeeEstimator, PercentilesOrdered) {
  FeeEstimator est(6);
  est.on_block(block_with_rates(1, {1, 5, 10, 20, 50}));
  const double p25 = est.recommend_sat_per_vb(0.25);
  const double p50 = est.recommend_sat_per_vb(0.50);
  const double p75 = est.recommend_sat_per_vb(0.75);
  EXPECT_LE(p25, p50);
  EXPECT_LE(p50, p75);
}

TEST(FeeEstimator, EmptyBlocksContributeNothing) {
  FeeEstimator est(3);
  est.on_block(block_with_rates(1, {}));
  EXPECT_EQ(est.sample_count(), 0u);
  EXPECT_DOUBLE_EQ(est.recommend_sat_per_vb(0.5), 1.0);
}

}  // namespace
}  // namespace cn::node

// Conflict handling (replace-by-fee), size-capped eviction, and age
// expiry — the Mempool's resource/admission machinery.
#include <gtest/gtest.h>

#include <algorithm>

#include "../helpers.hpp"
#include "node/mempool.hpp"

namespace cn::node {
namespace {

using cn::test::tx_with_rate;

btc::Transaction payment(double rate, std::uint64_t nonce,
                         const std::string& from = "alice") {
  return tx_with_rate(rate, 250, 0, nonce, from);
}

TEST(MempoolRbf, DetectsConflicts) {
  Mempool pool(1);
  const auto original = payment(2.0, 7001);
  const auto bump = btc::make_replacement(10, original, btc::Satoshi{5'000}, 7002);
  pool.accept(original, 0);
  const auto conflicts = pool.conflicts_of(bump);
  ASSERT_EQ(conflicts.size(), 1u);
  EXPECT_EQ(conflicts[0], original.id());
  // An unrelated payment conflicts with nothing.
  EXPECT_TRUE(pool.conflicts_of(payment(2.0, 7003)).empty());
}

TEST(MempoolRbf, AcceptsValidReplacement) {
  Mempool pool(1);
  const auto original = payment(2.0, 7011);
  pool.accept(original, 0);
  const auto bump = btc::make_replacement(10, original, btc::Satoshi{5'000}, 7012);
  EXPECT_EQ(pool.accept(bump, 10), AcceptResult::kAccepted);
  EXPECT_FALSE(pool.contains(original.id()));
  EXPECT_TRUE(pool.contains(bump.id()));
  EXPECT_EQ(pool.replaced_count(), 1u);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(MempoolRbf, RejectsUnderpayingReplacement) {
  Mempool pool(1);
  const auto original = payment(10.0, 7021);  // fee 2500
  pool.accept(original, 0);
  // Same rate, lower absolute fee: must be rejected.
  const auto cheap = btc::make_replacement(10, original, btc::Satoshi{2'000}, 7022);
  EXPECT_EQ(pool.accept(cheap, 10), AcceptResult::kConflictRejected);
  EXPECT_TRUE(pool.contains(original.id()));
}

TEST(MempoolRbf, RejectsEqualFeeRate) {
  Mempool pool(1);
  const auto original = payment(10.0, 7031);  // fee 2500, rate 10
  pool.accept(original, 0);
  // Higher fee but equal rate (vsize identical, fee +0): construct equal.
  const auto same = btc::make_replacement(10, original, original.fee(), 7032);
  EXPECT_EQ(pool.accept(same, 10), AcceptResult::kConflictRejected);
}

TEST(MempoolRbf, ReplacementMustOutbidEvictedDescendants) {
  Mempool pool(0);
  const auto original = payment(2.0, 7041);  // fee 500
  const auto child = btc::make_child_payment(5, 250, btc::Satoshi{10'000}, original,
                                             btc::Address::derive("x"),
                                             btc::Satoshi{100}, 7042);
  pool.accept(original, 0);
  pool.accept(child, 5);
  // Bump pays more than the original alone but less than original+child.
  const auto weak = btc::make_replacement(10, original, btc::Satoshi{2'000}, 7043);
  EXPECT_EQ(pool.accept(weak, 10), AcceptResult::kConflictRejected);
  // A bump that outbids the whole package is accepted and evicts both.
  const auto strong = btc::make_replacement(11, original, btc::Satoshi{11'000}, 7044);
  EXPECT_EQ(pool.accept(strong, 11), AcceptResult::kAccepted);
  EXPECT_FALSE(pool.contains(original.id()));
  EXPECT_FALSE(pool.contains(child.id()));
}

TEST(MempoolRbf, ReplacingParentEvictsDescendants) {
  Mempool pool(0);
  const auto parent = payment(1.0, 7051);
  const auto child = btc::make_child_payment(5, 250, btc::Satoshi{300}, parent,
                                             btc::Address::derive("x"),
                                             btc::Satoshi{100}, 7052);
  const auto grandchild = btc::make_child_payment(6, 250, btc::Satoshi{300}, child,
                                                  btc::Address::derive("y"),
                                                  btc::Satoshi{50}, 7053);
  pool.accept(parent, 0);
  pool.accept(child, 5);
  pool.accept(grandchild, 6);
  const auto bump = btc::make_replacement(10, parent, btc::Satoshi{5'000}, 7054);
  EXPECT_EQ(pool.accept(bump, 10), AcceptResult::kAccepted);
  EXPECT_EQ(pool.size(), 1u);  // child + grandchild evicted with the parent
  EXPECT_EQ(pool.total_vsize(), bump.vsize());
}

TEST(MempoolEviction, EvictsLowestRateWhenFull) {
  MempoolLimits limits;
  limits.max_vsize = 750;  // three 250 vB txs
  Mempool pool(1, limits);
  pool.accept(payment(2.0, 7061), 0);
  pool.accept(payment(5.0, 7062), 0);
  pool.accept(payment(4.0, 7063), 0);
  EXPECT_EQ(pool.size(), 3u);
  // A 10 sat/vB tx evicts the 2.0 one.
  EXPECT_EQ(pool.accept(payment(10.0, 7064), 1), AcceptResult::kAccepted);
  EXPECT_EQ(pool.size(), 3u);
  EXPECT_EQ(pool.evicted_count(), 1u);
  bool has_low = false;
  pool.for_each([&](const MempoolEntry& e) {
    if (e.tx.fee_rate().sat_per_vbyte() < 3.0) has_low = true;
  });
  EXPECT_FALSE(has_low);
}

TEST(MempoolEviction, RejectsBelowEvictionFloor) {
  MempoolLimits limits;
  limits.max_vsize = 500;
  Mempool pool(1, limits);
  pool.accept(payment(5.0, 7071), 0);
  pool.accept(payment(4.0, 7072), 0);
  EXPECT_EQ(pool.accept(payment(3.0, 7073), 1), AcceptResult::kMempoolFull);
  EXPECT_EQ(pool.size(), 2u);
}

TEST(MempoolEviction, UnlimitedByDefault) {
  Mempool pool(1);
  for (int i = 0; i < 100; ++i) pool.accept(payment(1.0 + i, 7100 + i), 0);
  EXPECT_EQ(pool.size(), 100u);
  EXPECT_EQ(pool.evicted_count(), 0u);
}

TEST(MempoolEviction, SustainedPressureEvictsLowestRateFirst) {
  // Regression for the fee-rate eviction index: under sustained
  // congestion every admission evicts exactly the current floor, in
  // strictly ascending fee-rate order.
  MempoolLimits limits;
  limits.max_vsize = 2'500;  // ten 250 vB transactions
  Mempool pool(1, limits);
  for (int r = 1; r <= 10; ++r) {
    ASSERT_EQ(pool.accept(payment(static_cast<double>(r), 7300 + r), 0),
              AcceptResult::kAccepted);
  }
  ASSERT_EQ(pool.size(), 10u);

  for (int r = 11; r <= 40; ++r) {
    ASSERT_EQ(pool.accept(payment(static_cast<double>(r), 7300 + r), r),
              AcceptResult::kAccepted)
        << "rate " << r;
    ASSERT_EQ(pool.size(), 10u);
    ASSERT_LE(pool.total_vsize(), limits.max_vsize);
    // The floor after admitting rate r is rate r - 9; everything below
    // was evicted in ascending order.
    double min_rate = 1e9;
    pool.for_each([&](const MempoolEntry& e) {
      min_rate = std::min(min_rate, e.tx.fee_rate().sat_per_vbyte());
    });
    ASSERT_NEAR(min_rate, static_cast<double>(r - 9), 1e-9);
  }
  EXPECT_EQ(pool.evicted_count(), 30u);
}

TEST(MempoolEviction, EqualRateFloorBreaksTiesByTxid) {
  MempoolLimits limits;
  limits.max_vsize = 500;
  Mempool pool(1, limits);
  const auto a = payment(2.0, 7401);
  const auto b = payment(2.0, 7402);
  pool.accept(a, 0);
  pool.accept(b, 0);
  ASSERT_EQ(pool.accept(payment(9.0, 7403), 1), AcceptResult::kAccepted);
  // The lexicographically smaller txid is the floor and goes first.
  const btc::Txid expected_evicted = std::min(a.id(), b.id());
  const btc::Txid expected_kept = std::max(a.id(), b.id());
  EXPECT_FALSE(pool.contains(expected_evicted));
  EXPECT_TRUE(pool.contains(expected_kept));
}

TEST(MempoolEviction, IndexStaysInSyncThroughReplacementAndExpiry) {
  MempoolLimits limits;
  limits.max_vsize = 1'000;  // four 250 vB transactions
  Mempool pool(1, limits);
  const auto original = payment(2.0, 7501);
  pool.accept(original, 0);
  const auto bump = btc::make_replacement(5, original, btc::Satoshi{5'000}, 7502);
  ASSERT_EQ(pool.accept(bump, 5), AcceptResult::kAccepted);  // rate 20
  pool.accept(payment(3.0, 7503), 10);
  pool.accept(payment(4.0, 7504), 600);
  pool.accept(payment(5.0, 7505), 600);
  ASSERT_EQ(pool.size(), 4u);

  // The replaced original must not linger in the eviction index: a 2.5
  // sat/vB incoming beats nothing if the stale 2.0 floor were real, but
  // the true floor is 3.0 -> rejected.
  EXPECT_EQ(pool.accept(payment(2.5, 7506), 700), AcceptResult::kMempoolFull);
  // Beating the true floor works and evicts the 3.0 entry.
  ASSERT_EQ(pool.accept(payment(6.0, 7507), 700), AcceptResult::kAccepted);
  double min_rate = 1e9;
  pool.for_each([&](const MempoolEntry& e) {
    min_rate = std::min(min_rate, e.tx.fee_rate().sat_per_vbyte());
  });
  EXPECT_NEAR(min_rate, 4.0, 1e-9);

  // Expiry also maintains the index: drop pre-t=600 arrivals, then the
  // floor seen by admission is the youngest survivors'.
  const auto dropped = pool.expire_before(600);
  EXPECT_FALSE(dropped.empty());
  ASSERT_EQ(pool.accept(payment(4.5, 7508), 800), AcceptResult::kAccepted);
  EXPECT_TRUE(pool.contains(payment(4.5, 7508).id()));
}

TEST(MempoolExpiry, DropsOldEntriesWithDescendants) {
  Mempool pool(0);
  const auto old_parent = payment(1.0, 7201);
  const auto fresh_child = btc::make_child_payment(
      500, 250, btc::Satoshi{300}, old_parent, btc::Address::derive("x"),
      btc::Satoshi{100}, 7202);
  const auto fresh = payment(2.0, 7203);
  pool.accept(old_parent, 0);
  pool.accept(fresh_child, 500);
  pool.accept(fresh, 600);

  const auto dropped = pool.expire_before(100);
  EXPECT_EQ(dropped.size(), 2u);  // parent + its (fresh!) child
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_TRUE(pool.contains(fresh.id()));
  EXPECT_EQ(pool.expired_count(), 1u);
}

TEST(MempoolExpiry, NoopWhenNothingOld) {
  Mempool pool(1);
  pool.accept(payment(2.0, 7211), 100);
  EXPECT_TRUE(pool.expire_before(50).empty());
  EXPECT_EQ(pool.size(), 1u);
}

TEST(MempoolRbf, ObserverStyleOutOfOrderDelivery) {
  // Replacement may arrive before the original at some nodes; the
  // late-arriving original must then be rejected.
  Mempool pool(1);
  const auto original = payment(2.0, 7221);
  const auto bump = btc::make_replacement(10, original, btc::Satoshi{5'000}, 7222);
  EXPECT_EQ(pool.accept(bump, 10), AcceptResult::kAccepted);
  EXPECT_EQ(pool.accept(original, 12), AcceptResult::kConflictRejected);
  EXPECT_TRUE(pool.contains(bump.id()));
}

}  // namespace
}  // namespace cn::node

#include "node/legacy_priority.hpp"

#include <gtest/gtest.h>

#include "../helpers.hpp"

namespace cn::node {
namespace {

using cn::test::tx_with_rate;

btc::Transaction tx_with_value(double sat_per_vb, std::int64_t value_sat,
                               SimTime issued, std::uint64_t nonce) {
  const auto fee =
      btc::Satoshi{static_cast<std::int64_t>(sat_per_vb * 250)};
  return btc::make_payment(issued, 250, fee, btc::Address::derive("a"),
                           btc::Address::derive("b"), btc::Satoshi{value_sat},
                           nonce);
}

TEST(CoinAgePriority, GrowsWithValueAndAge) {
  const auto small_young = tx_with_value(1.0, 1'000, 100, 1);
  const auto big_young = tx_with_value(1.0, 1'000'000, 100, 2);
  const auto small_old = tx_with_value(1.0, 1'000, 0, 3);
  const SimTime now = 200;
  EXPECT_GT(coin_age_priority(big_young, now), coin_age_priority(small_young, now));
  EXPECT_GT(coin_age_priority(small_old, now), coin_age_priority(small_young, now));
}

TEST(CoinAgePriority, IgnoresFee) {
  const auto cheap = tx_with_value(1.0, 50'000, 0, 4);
  const auto pricey = tx_with_value(100.0, 50'000, 0, 5);
  EXPECT_DOUBLE_EQ(coin_age_priority(cheap, 100), coin_age_priority(pricey, 100));
}

TEST(LegacyTemplate, OrdersByPriorityNotFee) {
  Mempool pool(0);
  // Low fee, huge old value -> top under the legacy norm.
  const auto whale = tx_with_value(1.0, 100'000'000, 0, 11);
  // High fee, small new value -> bottom under the legacy norm.
  const auto spender = tx_with_value(80.0, 10'000, 90, 12);
  pool.accept(whale, 0);
  pool.accept(spender, 90);

  const BlockTemplate tpl = build_legacy_template(pool, /*now=*/100);
  ASSERT_EQ(tpl.txs.size(), 2u);
  EXPECT_EQ(tpl.txs[0].id(), whale.id());
  EXPECT_EQ(tpl.txs[1].id(), spender.id());
}

TEST(LegacyTemplate, RespectsBudget) {
  Mempool pool(0);
  for (int i = 0; i < 10; ++i) pool.accept(tx_with_value(1.0, 1'000'000, 0, 20 + i), 0);
  LegacyTemplateOptions options;
  options.max_vsize = 600;  // two 250 vB txs
  const BlockTemplate tpl = build_legacy_template(pool, 100, options);
  EXPECT_EQ(tpl.txs.size(), 2u);
}

TEST(LegacyTemplate, ParentsBeforeChildren) {
  Mempool pool(0);
  const auto parent = tx_with_value(1.0, 500'000, 0, 31);
  const auto child = btc::make_child_payment(
      50, 250, btc::Satoshi{250}, parent, btc::Address::derive("c"),
      btc::Satoshi{400'000'000}, 32);  // child has huge value: top priority
  pool.accept(parent, 0);
  pool.accept(child, 50);

  const BlockTemplate tpl = build_legacy_template(pool, 100);
  ASSERT_EQ(tpl.txs.size(), 2u);
  EXPECT_EQ(tpl.txs[0].id(), parent.id());
  EXPECT_EQ(tpl.txs[1].id(), child.id());
}

TEST(LegacyTemplate, EmptyMempool) {
  Mempool pool(0);
  EXPECT_TRUE(build_legacy_template(pool, 100).txs.empty());
}

}  // namespace
}  // namespace cn::node

// cn::obs JSON exports: the metrics document schema and the Chrome
// trace-event file. A tiny recursive-descent JSON validator keeps the
// "valid JSON" claim honest without pulling in a parser dependency.
#include "obs/export.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace cn::obs {
namespace {

/// Minimal JSON well-formedness check (objects, arrays, strings,
/// numbers, literals). Returns true iff the whole input is one value.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}
  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    for (++pos_; pos_ < s_.size(); ++pos_) {
      if (s_[pos_] == '\\') { ++pos_; continue; }
      if (s_[pos_] == '"') { ++pos_; return true; }
    }
    return false;
  }
  bool number() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const char* word) {
    const std::string w(word);
    if (s_.compare(pos_, w.size(), w) != 0) return false;
    pos_ += w.size();
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  const std::string& s_;
  std::size_t pos_ = 0;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class ObsExport : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(true);
    reset_for_test();
    timeline_clear();
    dir_ = std::filesystem::temp_directory_path() / "cn_obs_export_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    set_enabled(true);
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::filesystem::path dir_;
};

TEST_F(ObsExport, MetricsDocumentIsValidJsonWithSchema) {
  const std::string doc = metrics_json_string();
  EXPECT_TRUE(JsonChecker(doc).valid()) << doc;
  EXPECT_NE(doc.find("\"schema\": \"cn.obs.metrics/1\""), std::string::npos);
  EXPECT_NE(doc.find("\"counters\""), std::string::npos);
  EXPECT_NE(doc.find("\"gauges\""), std::string::npos);
  EXPECT_NE(doc.find("\"histograms\""), std::string::npos);
  // No wall-clock residue unless meta was asked for.
  EXPECT_EQ(doc.find("wall_unix_seconds"), std::string::npos);
  EXPECT_NE(metrics_json_string(/*with_meta=*/true).find("wall_unix_seconds"),
            std::string::npos);
}

TEST_F(ObsExport, TraceFileIsValidChromeTrace) {
  {
    const Span outer("test.export.outer");
    const Span inner("test.export \"quoted\\\" name");
  }
  const std::string path = (dir_ / "trace.json").string();
  ASSERT_TRUE(write_trace_json(path));
  const std::string doc = slurp(path);
  EXPECT_TRUE(JsonChecker(doc).valid()) << doc;
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
#if !defined(CN_OBS_DISABLE)
  EXPECT_NE(doc.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(doc.find("test.export.outer"), std::string::npos);
#endif
}

TEST_F(ObsExport, MetricsFileRoundTrips) {
  const Counter c("test.export.counter");
  const Gauge g("test.export.gauge");
  const Histogram h("test.export.hist", {0.5, 1.5});
  c.add(11);
  g.set(2.5);
  h.observe(1.0);
  const std::string path = (dir_ / "metrics.json").string();
  ASSERT_TRUE(write_metrics_json(path));
  const std::string doc = slurp(path);
  EXPECT_TRUE(JsonChecker(doc).valid()) << doc;
#if !defined(CN_OBS_DISABLE)
  EXPECT_NE(doc.find("\"test.export.counter\": 11"), std::string::npos);
  EXPECT_NE(doc.find("\"test.export.gauge\": 2.5"), std::string::npos);
  EXPECT_NE(doc.find("\"test.export.hist\": {\"buckets\": [0.5, 1.5], "
                     "\"counts\": [0, 1, 0], \"count\": 1, \"sum\": 1"),
            std::string::npos)
      << doc;
#endif
}

TEST_F(ObsExport, UnwritablePathReportsFailure) {
  EXPECT_FALSE(write_metrics_json("/nonexistent-dir/metrics.json"));
  EXPECT_FALSE(write_trace_json("/nonexistent-dir/trace.json"));
}

TEST_F(ObsExport, EmptyRegistryStillExportsValidDocuments) {
  const std::string doc = metrics_json_string();
  EXPECT_TRUE(JsonChecker(doc).valid()) << doc;
  const std::string path = (dir_ / "empty_trace.json").string();
  ASSERT_TRUE(write_trace_json(path));
  EXPECT_TRUE(JsonChecker(slurp(path)).valid());
}

}  // namespace
}  // namespace cn::obs

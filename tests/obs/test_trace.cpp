// cn::obs stage tracing: RAII spans, parent linkage via the thread-local
// open-span stack, and the scrape-and-clear timeline.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "obs/registry.hpp"

namespace cn::obs {
namespace {

class ObsTrace : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(true);
    timeline_clear();
  }
  void TearDown() override { set_enabled(true); }
};

#if !defined(CN_OBS_DISABLE)

TEST_F(ObsTrace, SpanRecordsOnDestruction) {
  {
    const Span span("test.trace.one");
    EXPECT_TRUE(timeline_events().empty()) << "span recorded before it ended";
  }
  const auto events = timeline_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "test.trace.one");
  EXPECT_NE(events[0].id, 0u);
  EXPECT_EQ(events[0].parent, 0u);
}

TEST_F(ObsTrace, NestedSpansLinkToParent) {
  {
    const Span outer("test.trace.outer");
    {
      const Span inner("test.trace.inner");
    }
    {
      const Span sibling("test.trace.sibling");
    }
  }
  // Completion order: inner, sibling, outer.
  const auto events = timeline_events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].name, "test.trace.inner");
  EXPECT_EQ(events[1].name, "test.trace.sibling");
  EXPECT_EQ(events[2].name, "test.trace.outer");
  EXPECT_EQ(events[0].parent, events[2].id);
  EXPECT_EQ(events[1].parent, events[2].id);
  EXPECT_EQ(events[2].parent, 0u);
  EXPECT_NE(events[0].id, events[1].id);
  // All on this thread, nested inside the outer window.
  EXPECT_EQ(events[0].thread, events[2].thread);
  EXPECT_GE(events[0].start_ns, events[2].start_ns);
  EXPECT_LE(events[0].start_ns + events[0].dur_ns,
            events[2].start_ns + events[2].dur_ns);
}

TEST_F(ObsTrace, ThreadsGetDistinctIndices) {
  {
    const Span here("test.trace.main");
    std::thread([] { const Span there("test.trace.worker"); }).join();
  }
  const auto events = timeline_events();
  ASSERT_EQ(events.size(), 2u);
  // Worker finished first; it must not inherit this thread's index or
  // attach to this thread's open span.
  EXPECT_EQ(events[0].name, "test.trace.worker");
  EXPECT_NE(events[0].thread, events[1].thread);
  EXPECT_EQ(events[0].parent, 0u);
}

TEST_F(ObsTrace, DisabledSpansVanish) {
  set_enabled(false);
  {
    const Span span("test.trace.dark");
  }
  set_enabled(true);
  EXPECT_TRUE(timeline_events().empty());
}

TEST_F(ObsTrace, ClearDropsEvents) {
  {
    const Span span("test.trace.cleared");
  }
  ASSERT_EQ(timeline_events().size(), 1u);
  timeline_clear();
  EXPECT_TRUE(timeline_events().empty());
}

#else  // CN_OBS_DISABLE

TEST_F(ObsTrace, DisabledBuildRecordsNothing) {
  {
    const Span span("test.trace.compiled_out");
  }
  EXPECT_TRUE(timeline_events().empty());
}

#endif  // CN_OBS_DISABLE

}  // namespace
}  // namespace cn::obs

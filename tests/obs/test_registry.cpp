// cn::obs registry: counters/gauges/histograms, the shard-merge scrape,
// and the runtime switch. The registry is process-global and cumulative,
// so every test starts from reset_for_test() and addresses metrics by
// name rather than assuming it owns the whole snapshot.
#include "obs/registry.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace cn::obs {
namespace {

const MetricValue* find(const std::vector<MetricValue>& all,
                        const std::string& name) {
  for (const MetricValue& m : all) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

class ObsRegistry : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(true);
    reset_for_test();
  }
  void TearDown() override { set_enabled(true); }
};

#if !defined(CN_OBS_DISABLE)

TEST_F(ObsRegistry, CounterAccumulatesAcrossThreads) {
  const Counter c("test.registry.cross_thread");
  constexpr int kThreads = 8;
  constexpr int kAdds = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kAdds; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  c.add(5);

  const auto all = snapshot();
  const auto* m = find(all, "test.registry.cross_thread");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->kind, MetricKind::kCounter);
  // Shards of exited threads are recycled, not dropped: the total must
  // include every worker's contribution exactly.
  EXPECT_DOUBLE_EQ(m->value, static_cast<double>(kThreads * kAdds + 5));
}

TEST_F(ObsRegistry, SameNameSharesOneMetric) {
  const Counter a("test.registry.shared");
  const Counter b("test.registry.shared");
  a.add(3);
  b.add(4);
  const auto all = snapshot();
  const auto* m = find(all, "test.registry.shared");
  ASSERT_NE(m, nullptr);
  EXPECT_DOUBLE_EQ(m->value, 7.0);
}

TEST_F(ObsRegistry, GaugeKeepsLastWrite) {
  const Gauge g("test.registry.gauge");
  g.set(1.5);
  g.set(-2.25);
  const auto all = snapshot();
  const auto* m = find(all, "test.registry.gauge");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->kind, MetricKind::kGauge);
  EXPECT_DOUBLE_EQ(m->value, -2.25);
}

TEST_F(ObsRegistry, HistogramBucketsAndMoments) {
  const Histogram h("test.registry.hist", {1.0, 2.0, 4.0});
  for (const double v : {0.5, 1.5, 3.0, 100.0}) h.observe(v);

  const auto all = snapshot();
  const auto* m = find(all, "test.registry.hist");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->kind, MetricKind::kHistogram);
  ASSERT_EQ(m->bucket_uppers, (std::vector<double>{1.0, 2.0, 4.0}));
  // One value per bucket, plus one in the implicit +inf overflow bucket.
  ASSERT_EQ(m->bucket_counts, (std::vector<std::uint64_t>{1, 1, 1, 1}));
  EXPECT_EQ(m->count, 4u);
  EXPECT_DOUBLE_EQ(m->sum, 105.0);
}

TEST_F(ObsRegistry, HistogramBoundaryGoesToLowerBucket) {
  const Histogram h("test.registry.hist_edge", {1.0, 2.0});
  h.observe(1.0);  // on the upper bound: belongs to the <=1.0 bucket
  h.observe(2.0);
  const auto all = snapshot();
  const auto* m = find(all, "test.registry.hist_edge");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->bucket_counts, (std::vector<std::uint64_t>{1, 1, 0}));
}

TEST_F(ObsRegistry, RuntimeSwitchDropsRecordsButKeepsHandles) {
  const Counter c("test.registry.switched");
  c.add(2);
  set_enabled(false);
  c.add(1000);
  EXPECT_FALSE(enabled());
  set_enabled(true);
  c.add(3);
  const auto all = snapshot();
  const auto* m = find(all, "test.registry.switched");
  ASSERT_NE(m, nullptr);
  EXPECT_DOUBLE_EQ(m->value, 5.0);
}

TEST_F(ObsRegistry, SnapshotIsSortedByName) {
  const Counter z("test.registry.zzz");
  const Counter a("test.registry.aaa");
  z.add();
  a.add();
  const auto all = snapshot();
  ASSERT_GE(all.size(), 2u);
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_LT(all[i - 1].name, all[i].name) << "snapshot not sorted";
  }
}

TEST_F(ObsRegistry, ResetZeroesEverything) {
  const Counter c("test.registry.reset_c");
  const Gauge g("test.registry.reset_g");
  const Histogram h("test.registry.reset_h", depth_buckets());
  c.add(9);
  g.set(7.0);
  h.observe(3.0);
  reset_for_test();
  const auto all = snapshot();
  const auto* mc = find(all, "test.registry.reset_c");
  const auto* mg = find(all, "test.registry.reset_g");
  const auto* mh = find(all, "test.registry.reset_h");
  ASSERT_NE(mc, nullptr);
  ASSERT_NE(mg, nullptr);
  ASSERT_NE(mh, nullptr);
  EXPECT_DOUBLE_EQ(mc->value, 0.0);
  EXPECT_DOUBLE_EQ(mg->value, 0.0);
  EXPECT_EQ(mh->count, 0u);
  EXPECT_DOUBLE_EQ(mh->sum, 0.0);
}

TEST_F(ObsRegistry, StockBucketLayouts) {
  const auto& latency = latency_seconds_buckets();
  const auto& depth = depth_buckets();
  ASSERT_GE(latency.size(), 2u);
  ASSERT_GE(depth.size(), 2u);
  for (std::size_t i = 1; i < latency.size(); ++i) {
    EXPECT_LT(latency[i - 1], latency[i]);
  }
  for (std::size_t i = 1; i < depth.size(); ++i) {
    EXPECT_LT(depth[i - 1], depth[i]);
  }
}

#else  // CN_OBS_DISABLE

TEST_F(ObsRegistry, DisabledBuildHasInertHandles) {
  const Counter c("test.registry.disabled");
  c.add(42);
  EXPECT_TRUE(snapshot().empty());
}

#endif  // CN_OBS_DISABLE

}  // namespace
}  // namespace cn::obs

#include "sim/dataset.hpp"

#include <gtest/gtest.h>

namespace cn::sim {
namespace {

TEST(DatasetProfiles, SharesRoughlySumTo100) {
  for (const auto& pools : {paper_pools_a(), paper_pools_b(), paper_pools_c()}) {
    double total = 0;
    for (const auto& p : pools) total += p.hash_share;
    EXPECT_NEAR(total, 100.0, 3.0);
  }
}

TEST(DatasetProfiles, CHasPaperTop5) {
  const auto pools = paper_pools_c();
  ASSERT_GE(pools.size(), 5u);
  EXPECT_EQ(pools[0].name, "F2Pool");
  EXPECT_NEAR(pools[0].hash_share, 17.53, 0.01);
  EXPECT_EQ(pools[1].name, "Poolin");
  EXPECT_EQ(pools[2].name, "BTC.com");
  EXPECT_EQ(pools[3].name, "AntPool");
}

TEST(DatasetProfiles, PlantedBehavioursMatchPaper) {
  const auto pools = paper_pools_c();
  const auto find = [&](const std::string& name) -> const PoolSpec& {
    for (const auto& p : pools)
      if (p.name == name) return p;
    ADD_FAILURE() << name << " missing";
    static PoolSpec dummy;
    return dummy;
  };
  // Table 2 selfish pools.
  EXPECT_TRUE(find("F2Pool").selfish);
  EXPECT_TRUE(find("ViaBTC").selfish);
  EXPECT_TRUE(find("1THash&58Coin").selfish);
  EXPECT_TRUE(find("SlushPool").selfish);
  EXPECT_FALSE(find("Poolin").selfish);
  EXPECT_FALSE(find("AntPool").selfish);
  // ViaBTC's collusion partners.
  const auto& viabtc = find("ViaBTC");
  ASSERT_EQ(viabtc.accelerates_for.size(), 2u);
  // §5.4 acceleration services.
  EXPECT_TRUE(find("BTC.com").offers_acceleration);
  EXPECT_TRUE(find("AntPool").offers_acceleration);
  EXPECT_FALSE(find("SlushPool").offers_acceleration);
  // §4.2.3 low-fee tolerance.
  EXPECT_TRUE(find("F2Pool").tolerates_low_fee);
  EXPECT_FALSE(find("Huobi").tolerates_low_fee);
  // No pool censors anything by default (the paper found no deceleration).
  for (const auto& p : pools) EXPECT_TRUE(p.censored_wallets.empty());
}

TEST(DatasetConfig, PerDatasetObserverFloors) {
  EXPECT_EQ(dataset_config(DatasetKind::kA, 1).observer_min_relay_sat_per_vb, 1);
  EXPECT_EQ(dataset_config(DatasetKind::kB, 1).observer_min_relay_sat_per_vb, 0);
  EXPECT_EQ(dataset_config(DatasetKind::kC, 1).observer_min_relay_sat_per_vb, 1);
}

TEST(DatasetConfig, GenesisHeightsMatchPaperTable1) {
  EXPECT_EQ(dataset_config(DatasetKind::kA, 1).genesis_height, 563'833u);
  EXPECT_EQ(dataset_config(DatasetKind::kB, 1).genesis_height, 578'717u);
  EXPECT_EQ(dataset_config(DatasetKind::kC, 1).genesis_height, 610'691u);
}

TEST(DatasetConfig, ScaleStretchesDuration) {
  const auto one = dataset_config(DatasetKind::kA, 1, 1.0);
  const auto half = dataset_config(DatasetKind::kA, 1, 0.5);
  EXPECT_NEAR(static_cast<double>(half.duration),
              static_cast<double>(one.duration) / 2.0, 2.0);
}

TEST(DatasetConfig, OnlyCHasScamWindow) {
  EXPECT_FALSE(dataset_config(DatasetKind::kA, 1).workload.scam.has_value());
  EXPECT_FALSE(dataset_config(DatasetKind::kB, 1).workload.scam.has_value());
  EXPECT_TRUE(dataset_config(DatasetKind::kC, 1).workload.scam.has_value());
}

TEST(DatasetConfig, RateForUtilizationScalesLinearly) {
  const auto config = dataset_config(DatasetKind::kA, 1);
  const double r1 = rate_for_utilization(config, 1.0);
  const double r2 = rate_for_utilization(config, 2.0);
  EXPECT_NEAR(r2, 2.0 * r1, 1e-12);
  EXPECT_GT(r1, 0.0);
}

TEST(DatasetConfig, SetAllBuildersFlipsEveryPool) {
  auto config = dataset_config(DatasetKind::kC, 1);
  set_all_builders(config, BuilderKind::kLegacyPriority);
  for (const auto& p : config.pools) {
    EXPECT_EQ(p.builder, BuilderKind::kLegacyPriority);
  }
}

TEST(Dataset, SmallScaleRunsEndToEnd) {
  const SimResult r = make_dataset(DatasetKind::kA, 3, 0.05);
  EXPECT_GT(r.chain.size(), 5u);
  EXPECT_GT(r.chain.total_tx_count(), 100u);
  EXPECT_GT(r.observer.snapshots().size(), 100u);
}

}  // namespace
}  // namespace cn::sim

#include "sim/pool.hpp"

#include <gtest/gtest.h>

#include "../helpers.hpp"

namespace cn::sim {
namespace {

using cn::test::tx_with_rate;

PoolSpec basic_spec(std::string name = "TestPool") {
  PoolSpec spec;
  spec.name = std::move(name);
  spec.hash_share = 0.1;
  spec.wallet_count = 3;
  return spec;
}

TEST(MiningPool, DerivesDistinctWallets) {
  const MiningPool pool(basic_spec());
  EXPECT_EQ(pool.wallets().size(), 3u);
  EXPECT_EQ(pool.wallet_set().size(), 3u);
}

TEST(MiningPool, WalletsAreStableAcrossInstances) {
  const MiningPool a(basic_spec());
  const MiningPool b(basic_spec());
  EXPECT_EQ(a.wallets(), b.wallets());
}

TEST(MiningPool, DifferentPoolsDifferentWallets) {
  const MiningPool a(basic_spec("PoolA"));
  const MiningPool b(basic_spec("PoolB"));
  for (const auto& w : a.wallets()) {
    EXPECT_FALSE(b.wallet_set().contains(w));
  }
}

TEST(MiningPool, RewardWalletRotates) {
  MiningPool pool(basic_spec());
  const auto w0 = pool.next_reward_wallet();
  const auto w1 = pool.next_reward_wallet();
  const auto w2 = pool.next_reward_wallet();
  const auto w3 = pool.next_reward_wallet();
  EXPECT_NE(w0, w1);
  EXPECT_NE(w1, w2);
  EXPECT_EQ(w0, w3);  // wraps around
}

TEST(MiningPool, CoinbaseTag) {
  EXPECT_EQ(MiningPool(basic_spec("F2Pool")).coinbase_tag(), "/F2Pool/");
  PoolSpec anon = basic_spec();
  anon.anonymous = true;
  EXPECT_EQ(MiningPool(anon).coinbase_tag(), "");
}

TEST(MiningPool, PolicyStackFromSpec) {
  PoolSpec spec = basic_spec();
  spec.selfish = true;
  spec.offers_acceleration = true;
  spec.tolerates_low_fee = true;
  spec.accelerates_for = {"Partner"};
  spec.censored_wallets = {btc::Address::derive("bad")};
  const MiningPool pool(spec);
  EXPECT_EQ(pool.policies().size(), 5u);
}

TEST(MiningPool, HonestPoolHasNoPolicies) {
  const MiningPool pool(basic_spec());
  EXPECT_TRUE(pool.policies().empty());
}

TEST(MiningPool, BuildTemplateAppliesFloorAndBudget) {
  node::Mempool mempool(0);
  mempool.accept(tx_with_rate(0.4, 250, 0, 41), 0);  // below pool floor
  mempool.accept(tx_with_rate(5.0, 250, 0, 42), 0);
  mempool.accept(tx_with_rate(4.0, 250, 0, 43), 0);

  MiningPool pool(basic_spec());
  PolicyContext ctx;
  ctx.max_template_vsize = 250;  // only one fits
  ctx.own_wallets = &pool.wallet_set();
  ctx.pool_name = pool.name();

  const auto tpl = pool.build_template(mempool, ctx, {});
  ASSERT_EQ(tpl.txs.size(), 1u);
  EXPECT_DOUBLE_EQ(tpl.txs[0].fee_rate().sat_per_vbyte(), 5.0);
}

TEST(MiningPool, SelfishPoolPutsOwnTxFirst) {
  PoolSpec spec = basic_spec("Selfish");
  spec.selfish = true;
  MiningPool pool(spec);

  node::Mempool mempool(0);
  const auto own = btc::make_payment(0, 250, btc::Satoshi{250},
                                     pool.wallets()[0],
                                     btc::Address::derive("u"),
                                     btc::Satoshi{1'000'000}, 51);
  mempool.accept(own, 0);
  mempool.accept(tx_with_rate(80.0, 250, 0, 52), 0);

  PolicyContext ctx;
  ctx.own_wallets = &pool.wallet_set();
  ctx.pool_name = pool.name();
  const auto tpl = pool.build_template(mempool, ctx, {});
  ASSERT_EQ(tpl.txs.size(), 2u);
  EXPECT_EQ(tpl.txs[0].id(), own.id());
}

TEST(MiningPool, BaseExcludeRespected) {
  node::Mempool mempool(0);
  const auto unseen = tx_with_rate(50.0, 250, 0, 61);
  mempool.accept(unseen, 0);
  mempool.accept(tx_with_rate(5.0, 250, 0, 62), 0);

  MiningPool pool(basic_spec());
  PolicyContext ctx;
  ctx.own_wallets = &pool.wallet_set();
  const auto tpl = pool.build_template(mempool, ctx, {unseen.id()});
  ASSERT_EQ(tpl.txs.size(), 1u);
  EXPECT_NE(tpl.txs[0].id(), unseen.id());
}

TEST(MiningPool, LegacyBuilderIgnoresFeeDeltas) {
  PoolSpec spec = basic_spec("OldTimer");
  spec.builder = BuilderKind::kLegacyPriority;
  spec.selfish = true;  // would boost under GBT; legacy ignores it
  MiningPool pool(spec);

  node::Mempool mempool(0);
  const auto big_old = btc::make_payment(0, 250, btc::Satoshi{250},
                                         btc::Address::derive("a"),
                                         btc::Address::derive("b"),
                                         btc::Satoshi{900'000'000}, 71);
  const auto own = btc::make_payment(90, 250, btc::Satoshi{250},
                                     pool.wallets()[0],
                                     btc::Address::derive("u"),
                                     btc::Satoshi{1000}, 72);
  mempool.accept(big_old, 0);
  mempool.accept(own, 90);

  PolicyContext ctx;
  ctx.now = 100;
  ctx.own_wallets = &pool.wallet_set();
  const auto tpl = pool.build_template(mempool, ctx, {});
  ASSERT_EQ(tpl.txs.size(), 2u);
  EXPECT_EQ(tpl.txs[0].id(), big_old.id());  // coin-age wins, not ownership
}

}  // namespace
}  // namespace cn::sim

#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include "sim/dataset.hpp"

namespace cn::sim {
namespace {

EngineConfig tiny_config(std::uint64_t seed = 1) {
  EngineConfig config;
  config.seed = seed;
  config.duration = 6 * kHour;
  config.genesis_height = 700'000;
  config.max_block_vsize = 50'000;
  config.pools = {
      PoolSpec{.name = "Alpha", .hash_share = 0.6},
      PoolSpec{.name = "Beta", .hash_share = 0.4},
  };
  config.workload.base_tx_per_second = rate_for_utilization(config, 0.8);
  config.workload.diurnal_amplitude = 0.1;
  return config;
}

TEST(Engine, ProducesBlocksAndTxs) {
  Engine engine(tiny_config());
  const SimResult result = engine.run();
  // ~36 blocks expected over 6h; allow wide slack.
  EXPECT_GT(result.chain.size(), 10u);
  EXPECT_LT(result.chain.size(), 90u);
  EXPECT_GT(result.chain.total_tx_count(), 500u);
  EXPECT_GE(result.issued_count, result.chain.total_tx_count());
}

TEST(Engine, DeterministicForSameSeed) {
  const SimResult a = Engine(tiny_config(5)).run();
  const SimResult b = Engine(tiny_config(5)).run();
  ASSERT_EQ(a.chain.size(), b.chain.size());
  for (std::size_t i = 0; i < a.chain.size(); ++i) {
    const auto& ba = a.chain.blocks()[i];
    const auto& bb = b.chain.blocks()[i];
    ASSERT_EQ(ba.tx_count(), bb.tx_count()) << "block " << i;
    for (std::size_t j = 0; j < ba.tx_count(); ++j) {
      ASSERT_EQ(ba.txs()[j].id(), bb.txs()[j].id()) << "block " << i << " pos " << j;
    }
  }
  EXPECT_EQ(a.issued_count, b.issued_count);
}

TEST(Engine, DifferentSeedsDiffer) {
  const SimResult a = Engine(tiny_config(1)).run();
  const SimResult b = Engine(tiny_config(2)).run();
  // Chains of same genesis but different content.
  bool differs = a.chain.size() != b.chain.size();
  if (!differs && !a.chain.empty() && a.chain.front().tx_count() > 0 &&
      b.chain.front().tx_count() > 0) {
    differs = a.chain.front().txs()[0].id() != b.chain.front().txs()[0].id();
  }
  EXPECT_TRUE(differs);
}

TEST(Engine, BlockHeightsContiguousFromGenesis) {
  const SimResult r = Engine(tiny_config()).run();
  ASSERT_FALSE(r.chain.empty());
  EXPECT_EQ(r.chain.front().height(), 700'000u);
  for (std::size_t i = 1; i < r.chain.size(); ++i) {
    EXPECT_EQ(r.chain.blocks()[i].height(), 700'000u + i);
  }
}

TEST(Engine, ChainIntegrityVerifies) {
  const SimResult r = Engine(tiny_config()).run();
  EXPECT_TRUE(r.chain.verify_integrity());
  EXPECT_FALSE(r.chain.tip_hash().is_null());
}

TEST(Engine, BlockTimesStrictlyIncrease) {
  const SimResult r = Engine(tiny_config()).run();
  for (std::size_t i = 1; i < r.chain.size(); ++i) {
    EXPECT_GT(r.chain.blocks()[i].mined_at(), r.chain.blocks()[i - 1].mined_at());
  }
}

TEST(Engine, BlocksRespectScaledBudget) {
  const SimResult r = Engine(tiny_config()).run();
  for (const auto& block : r.chain.blocks()) {
    EXPECT_LE(block.total_vsize(), 50'000u - btc::kCoinbaseVsize);
  }
}

TEST(Engine, CoinbaseRewardIsSubsidyPlusFees) {
  const SimResult r = Engine(tiny_config()).run();
  for (const auto& block : r.chain.blocks()) {
    const auto expected = btc::block_subsidy(block.height()) + block.total_fees();
    EXPECT_EQ(block.coinbase().reward.value, expected.value);
  }
}

TEST(Engine, PoolSharesRoughlyRespected) {
  EngineConfig config = tiny_config();
  config.duration = 3 * kDay;  // more blocks for tighter estimate
  const SimResult r = Engine(config).run();
  std::uint64_t alpha = 0;
  for (const auto& block : r.chain.blocks()) {
    if (block.coinbase().tag == "/Alpha/") ++alpha;
  }
  const double share = static_cast<double>(alpha) / static_cast<double>(r.chain.size());
  EXPECT_NEAR(share, 0.6, 0.12);
}

TEST(Engine, ObserverSnapshotsEvery15s) {
  const SimResult r = Engine(tiny_config()).run();
  const auto& stats = r.observer.snapshots().stats();
  ASSERT_GT(stats.size(), 100u);
  EXPECT_EQ(stats[0].time, 15);
  EXPECT_EQ(stats[1].time - stats[0].time, 15);
}

TEST(Engine, CommittedTxsWereIssuedEarlier) {
  const SimResult r = Engine(tiny_config()).run();
  for (const auto& block : r.chain.blocks()) {
    for (const auto& tx : block.txs()) {
      const auto it = r.broadcast_time.find(tx.id());
      ASSERT_NE(it, r.broadcast_time.end());
      EXPECT_LE(it->second, block.mined_at());
    }
  }
}

TEST(Engine, NoDuplicateCommits) {
  const SimResult r = Engine(tiny_config()).run();
  std::unordered_set<btc::Txid> seen;
  for (const auto& block : r.chain.blocks()) {
    for (const auto& tx : block.txs()) {
      EXPECT_TRUE(seen.insert(tx.id()).second) << "duplicate commit";
    }
  }
}

TEST(Engine, EmptyBlockFractionHonored) {
  EngineConfig config = tiny_config();
  config.duration = 2 * kDay;
  config.empty_block_fraction = 0.5;
  const SimResult r = Engine(config).run();
  const double frac = static_cast<double>(r.chain.empty_block_count()) /
                      static_cast<double>(r.chain.size());
  EXPECT_NEAR(frac, 0.5, 0.15);
}

TEST(Engine, CpfpPairsAppearInBlocks) {
  EngineConfig config = tiny_config();
  config.duration = 1 * kDay;
  config.workload.cpfp_fraction = 0.4;
  const SimResult r = Engine(config).run();
  std::uint64_t cpfp = 0, total = 0;
  for (const auto& block : r.chain.blocks()) {
    cpfp += block.cpfp_positions().size();
    total += block.tx_count();
  }
  ASSERT_GT(total, 0u);
  EXPECT_GT(static_cast<double>(cpfp) / static_cast<double>(total), 0.01);
}

TEST(Engine, AnonymousPoolLeavesBlankTag) {
  EngineConfig config = tiny_config();
  config.pools.push_back(
      PoolSpec{.name = "(unknown)", .hash_share = 0.5, .anonymous = true});
  config.duration = 1 * kDay;
  const SimResult r = Engine(config).run();
  std::uint64_t blank = 0;
  for (const auto& block : r.chain.blocks()) {
    if (block.coinbase().tag.empty()) ++blank;
  }
  EXPECT_GT(blank, 0u);
}

TEST(Engine, AccelerationLedgerPopulatedWhenOffered) {
  EngineConfig config = tiny_config();
  config.duration = 2 * kDay;
  config.pools[0].offers_acceleration = true;
  config.workload.accel_request_fraction = 0.05;
  const SimResult r = Engine(config).run();
  EXPECT_GT(r.acceleration.total_accelerated(), 0u);
}

TEST(Engine, ScamTxsRecordedInWindow) {
  EngineConfig config = tiny_config();
  config.duration = 2 * kDay;
  ScamConfig scam;
  scam.start = 4 * kHour;
  scam.end = 30 * kHour;
  scam.txs_per_hour = 6.0;
  config.workload.scam = scam;
  const SimResult r = Engine(config).run();
  EXPECT_FALSE(r.scam_address.is_null());
  EXPECT_GT(r.scam_txids.size(), 20u);
  // Every recorded scam tx was broadcast inside the window.
  for (const auto& id : r.scam_txids) {
    const auto it = r.broadcast_time.find(id);
    ASSERT_NE(it, r.broadcast_time.end());
    EXPECT_GE(it->second, scam.start);
    EXPECT_LT(it->second, scam.end);
  }
}

TEST(Engine, RbfReplacementsHappenAndReplacedTxsNeverCommit) {
  EngineConfig config = tiny_config();
  config.duration = 2 * kDay;
  config.workload.rbf_fraction = 0.10;
  const SimResult r = Engine(config).run();
  EXPECT_GT(r.rbf_replacements, 5u);
  // Sanity: no two committed transactions spend the same outpoint.
  std::unordered_map<std::uint64_t, int> outpoints;
  for (const auto& block : r.chain.blocks()) {
    for (const auto& tx : block.txs()) {
      for (const auto& in : tx.inputs()) {
        if (in.prev_txid.is_null()) continue;
        const std::uint64_t key = in.prev_txid.short_id() ^ in.prev_vout;
        EXPECT_EQ(++outpoints[key], 1) << "conflicting commits";
      }
    }
  }
}

TEST(Engine, RbfDisabledByZeroFraction) {
  EngineConfig config = tiny_config();
  config.workload.rbf_fraction = 0.0;
  const SimResult r = Engine(config).run();
  EXPECT_EQ(r.rbf_replacements, 0u);
}

TEST(EngineDeathTest, RunTwiceForbidden) {
  Engine engine(tiny_config());
  (void)engine.run();
  EXPECT_DEATH((void)engine.run(), "ran_");
}

// --- wall-clock deadline (EngineConfig::deadline_s) ---------------------

TEST(EngineDeadline, ZeroDeadlineNeverFires) {
  EngineConfig config = tiny_config();
  config.deadline_s = 0.0;
  const SimResult r = Engine(config).run();
  EXPECT_FALSE(r.timeout.timed_out);
  EXPECT_EQ(r.timeout.events_processed, 0u);
}

TEST(EngineDeadline, GenerousDeadlineCompletesUntouched) {
  EngineConfig config = tiny_config(5);
  config.deadline_s = 3600.0;
  const SimResult with_deadline = Engine(config).run();
  EXPECT_FALSE(with_deadline.timeout.timed_out);
  // A deadline that never fires must not perturb the simulation.
  const SimResult reference = Engine(tiny_config(5)).run();
  ASSERT_EQ(with_deadline.chain.size(), reference.chain.size());
  for (std::size_t i = 0; i < reference.chain.size(); ++i) {
    ASSERT_EQ(with_deadline.chain.blocks()[i].tx_count(),
              reference.chain.blocks()[i].tx_count());
  }
}

TEST(EngineDeadline, TinyDeadlineStopsSerialRunWithDiagnostics) {
  EngineConfig config = tiny_config();
  config.duration = 365 * kDay;  // far more than the budget allows
  config.deadline_s = 0.05;
  const SimResult r = Engine(config).run();
  ASSERT_TRUE(r.timeout.timed_out);
  EXPECT_GE(r.timeout.elapsed_s, config.deadline_s);
  EXPECT_LT(r.timeout.sim_time_reached, r.timeout.sim_duration);
  EXPECT_EQ(r.timeout.sim_duration, config.duration);
  EXPECT_GT(r.timeout.events_processed, 0u);
  EXPECT_EQ(r.timeout.blocks_committed, r.chain.size());
  const std::string line = r.timeout.describe();
  EXPECT_NE(line.find("deadline exceeded"), std::string::npos) << line;
  // The partial chain is still internally consistent.
  EXPECT_TRUE(r.chain.verify_integrity());
}

TEST(EngineDeadline, TinyDeadlineStopsShardedRunToo) {
  EngineConfig config = tiny_config();
  config.duration = 365 * kDay;
  config.deadline_s = 0.05;
  config.threads = 2;
  const SimResult r = Engine(config).run();
  ASSERT_TRUE(r.timeout.timed_out);
  EXPECT_LT(r.timeout.sim_time_reached, config.duration);
  EXPECT_FALSE(r.timeout.describe().empty());
}

}  // namespace
}  // namespace cn::sim

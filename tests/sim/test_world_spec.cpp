// WorldSpec: the content address of a simulated world. These tests pin
// the canonical serialization (golden fingerprints — if one of these
// changes, every cached world silently stops being addressed, which is
// exactly the kWorldSpecVersion-bump situation DESIGN.md §14 describes)
// and the knob -> EngineConfig materialization.
#include "sim/world_spec.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/engine.hpp"

namespace cn::sim {
namespace {

// Golden content addresses. A change here without a deliberate
// kWorldSpecVersion bump means previously cached worlds would be
// regenerated under new names (safe but wasteful) — or worse, a
// serialization bug collided two distinct specs.
constexpr std::uint64_t kGoldenA42x1 = 0x7ea550905e0b7f66ull;
constexpr std::uint64_t kGoldenB42x1 = 0x7c72e320b0a1d88dull;
constexpr std::uint64_t kGoldenC7x05 = 0x7916e94bf4142409ull;
constexpr std::uint64_t kGoldenDetection = 0xd510c3f60bcb43ffull;
// The PR-10 adversary-zoo knobs. New addresses, so they cannot collide
// with (or silently re-key) any world cached before the zoo existed.
constexpr std::uint64_t kGoldenEvasion = 0xae89ff8b1f7882e3ull;
constexpr std::uint64_t kGoldenWithholding = 0x08bf384318a39143ull;
constexpr std::uint64_t kGoldenFairQueue = 0x9df1bc987bb3e79bull;
constexpr std::uint64_t kGoldenFeeOnly = 0xdfffcc8d0d73c42bull;

WorldSpec detection_spec() {
  WorldSpec spec = baseline_spec(DatasetKind::kC, 42, 0.4);
  spec.scenario = "detection";
  spec.set("scam", 0.0);
  spec.set("self_interest_per_block", 0.5);
  spec.set("selfish", 1.0);
  spec.set("propagation_exclusion", 1.0);
  return spec;
}

WorldSpec evasion_spec(double theta) {
  WorldSpec spec = baseline_spec(DatasetKind::kC, 42, 0.4);
  spec.scenario = "detection";
  spec.set("scam", 0.0);
  spec.set("self_interest_per_block", 0.5);
  spec.set("propagation_exclusion", 1.0);
  spec.set("evasion_theta", theta);
  return spec;
}

TEST(WorldSpec, GoldenFingerprints) {
  EXPECT_EQ(baseline_spec(DatasetKind::kA, 42, 1.0).fingerprint(), kGoldenA42x1);
  EXPECT_EQ(baseline_spec(DatasetKind::kB, 42, 1.0).fingerprint(), kGoldenB42x1);
  EXPECT_EQ(baseline_spec(DatasetKind::kC, 7, 0.5).fingerprint(), kGoldenC7x05);
  EXPECT_EQ(detection_spec().fingerprint(), kGoldenDetection);
}

TEST(WorldSpec, GoldenFingerprintsAdversaryZoo) {
  EXPECT_EQ(evasion_spec(0.5).fingerprint(), kGoldenEvasion);

  WorldSpec withholding = detection_spec();
  withholding.scenario = "withholding";
  withholding.set("withhold_delay_s", 120.0);
  EXPECT_EQ(withholding.fingerprint(), kGoldenWithholding);

  WorldSpec fair = baseline_spec(DatasetKind::kA, 42, 0.5);
  fair.scenario = "fair-queue";
  fair.set("fair_queue", 1.0);
  EXPECT_EQ(fair.fingerprint(), kGoldenFairQueue);

  WorldSpec fee_only = baseline_spec(DatasetKind::kA, 42, 0.5);
  fee_only.scenario = "fee-only";
  fee_only.set("fee_only", 1.0);
  EXPECT_EQ(fee_only.fingerprint(), kGoldenFeeOnly);

  // All six addresses (four legacy, plus the zoo) remain distinct.
  const std::uint64_t all[] = {kGoldenA42x1,      kGoldenB42x1,
                               kGoldenC7x05,      kGoldenDetection,
                               kGoldenEvasion,    kGoldenWithholding,
                               kGoldenFairQueue,  kGoldenFeeOnly};
  for (std::size_t i = 0; i < std::size(all); ++i) {
    for (std::size_t j = i + 1; j < std::size(all); ++j) {
      EXPECT_NE(all[i], all[j]) << i << " vs " << j;
    }
  }
}

TEST(WorldSpec, EvasionKnobConvertsSelfishPools) {
  // evasion_theta transfers the plant: every selfish pool drops its
  // SelfInterestPolicy AND its acceleration back-channel, gaining the
  // throttled policy instead. Non-selfish pools are untouched.
  const EngineConfig base = detection_spec().config();
  std::size_t base_selfish = 0;
  for (const PoolSpec& pool : base.pools) base_selfish += pool.selfish;
  ASSERT_GT(base_selfish, 0u);

  const EngineConfig config = evasion_spec(0.6).config();
  ASSERT_EQ(config.pools.size(), base.pools.size());
  std::size_t evasive = 0;
  for (std::size_t i = 0; i < config.pools.size(); ++i) {
    const PoolSpec& pool = config.pools[i];
    EXPECT_FALSE(pool.selfish) << pool.name;
    EXPECT_TRUE(pool.accelerates_for.empty()) << pool.name;
    if (base.pools[i].selfish) {
      EXPECT_EQ(pool.evasion_theta, 0.6) << pool.name;
      ++evasive;
    } else {
      EXPECT_LT(pool.evasion_theta, 0.0) << pool.name;
    }
  }
  EXPECT_EQ(evasive, base_selfish);
}

TEST(WorldSpec, WithholdKnobComposesWithEvasionEitherOrder) {
  // withhold_delay_s targets the misbehaving pools, whether they are
  // plain selfish or evasion-converted — and the materialized config
  // must not depend on knob application order (knobs are canonically
  // sorted, but the loop order is an implementation detail worth
  // pinning).
  WorldSpec forward = evasion_spec(0.4);
  forward.set("withhold_delay_s", 90.0);
  WorldSpec reversed = baseline_spec(DatasetKind::kC, 42, 0.4);
  reversed.scenario = "detection";
  reversed.set("withhold_delay_s", 90.0);
  reversed.set("scam", 0.0);
  reversed.set("self_interest_per_block", 0.5);
  reversed.set("propagation_exclusion", 1.0);
  reversed.set("evasion_theta", 0.4);
  EXPECT_EQ(forward.fingerprint(), reversed.fingerprint());

  const EngineConfig fwd = forward.config();
  const EngineConfig rev = reversed.config();
  ASSERT_EQ(fwd.pools.size(), rev.pools.size());
  std::size_t withholders = 0;
  for (std::size_t i = 0; i < fwd.pools.size(); ++i) {
    EXPECT_EQ(fwd.pools[i].evasion_theta, rev.pools[i].evasion_theta);
    EXPECT_EQ(fwd.pools[i].withhold_delay_s, rev.pools[i].withhold_delay_s);
    if (fwd.pools[i].evasion_theta >= 0.0) {
      EXPECT_EQ(fwd.pools[i].withhold_delay_s, 90.0) << fwd.pools[i].name;
      ++withholders;
    } else {
      EXPECT_EQ(fwd.pools[i].withhold_delay_s, 0.0) << fwd.pools[i].name;
    }
  }
  EXPECT_GT(withholders, 0u);
}

TEST(WorldSpec, FairQueueAndFeeOnlyKnobsApply) {
  WorldSpec spec = baseline_spec(DatasetKind::kA, 3, 0.3);
  spec.scenario = "bitcoinf";
  spec.set("fair_queue", 1.0);
  spec.set("fee_only", 1.0);
  const EngineConfig config = spec.config();
  EXPECT_TRUE(config.fee_only);
  ASSERT_FALSE(config.pools.empty());
  for (const PoolSpec& pool : config.pools) {
    EXPECT_TRUE(pool.fair_queue) << pool.name;
  }

  // Zero-valued switches are the documented no-ops.
  WorldSpec off = baseline_spec(DatasetKind::kA, 3, 0.3);
  off.scenario = "bitcoinf";
  off.set("fair_queue", 0.0);
  off.set("fee_only", 0.0);
  const EngineConfig off_config = off.config();
  EXPECT_FALSE(off_config.fee_only);
  for (const PoolSpec& pool : off_config.pools) {
    EXPECT_FALSE(pool.fair_queue) << pool.name;
  }
}

TEST(WorldSpec, FingerprintIgnoresKnobInsertionOrder) {
  WorldSpec forward = baseline_spec(DatasetKind::kC, 1, 0.2);
  forward.scenario = "order";
  forward.set("scam", 0.0).set("selfish", 0.0).set("utilization", 0.9);

  WorldSpec reversed = baseline_spec(DatasetKind::kC, 1, 0.2);
  reversed.scenario = "order";
  reversed.set("utilization", 0.9).set("selfish", 0.0).set("scam", 0.0);

  EXPECT_EQ(forward.canonical_bytes(), reversed.canonical_bytes());
  EXPECT_EQ(forward.fingerprint(), reversed.fingerprint());

  // Even a hand-built (unsorted) knob vector canonicalizes.
  WorldSpec raw = baseline_spec(DatasetKind::kC, 1, 0.2);
  raw.scenario = "order";
  raw.knobs = {{"utilization", 0.9}, {"selfish", 0.0}, {"scam", 0.0}};
  EXPECT_EQ(raw.fingerprint(), forward.fingerprint());
}

TEST(WorldSpec, EveryFieldIsPartOfTheAddress) {
  const WorldSpec base = baseline_spec(DatasetKind::kA, 42, 1.0);

  WorldSpec kind = base;
  kind.kind = DatasetKind::kB;
  EXPECT_NE(kind.fingerprint(), base.fingerprint());

  WorldSpec seed = base;
  seed.seed = 43;
  EXPECT_NE(seed.fingerprint(), base.fingerprint());

  WorldSpec scale = base;
  scale.scale = 0.5;
  EXPECT_NE(scale.fingerprint(), base.fingerprint());

  WorldSpec scenario = base;
  scenario.scenario = "aging";
  EXPECT_NE(scenario.fingerprint(), base.fingerprint());

  WorldSpec knob = base;
  knob.set("age_weight_per_hour", 0.2);
  EXPECT_NE(knob.fingerprint(), base.fingerprint());

  WorldSpec value = knob;
  value.set("age_weight_per_hour", 0.4);
  EXPECT_NE(value.fingerprint(), knob.fingerprint());
}

TEST(WorldSpec, SetOverwritesInPlace) {
  WorldSpec spec = baseline_spec(DatasetKind::kA, 1, 1.0);
  spec.set("utilization", 0.5);
  spec.set("utilization", 0.9);
  ASSERT_EQ(spec.knobs.size(), 1u);
  EXPECT_EQ(spec.knob("utilization"), 0.9);
  EXPECT_FALSE(spec.knob("scam").has_value());
}

TEST(WorldSpec, LabelIsHumanReadable) {
  EXPECT_EQ(baseline_spec(DatasetKind::kC, 42, 0.4).label(),
            "C s42 x0.4 baseline");
  WorldSpec spec = baseline_spec(DatasetKind::kA, 7, 1.0);
  spec.scenario = "aging";
  spec.set("age_weight_per_hour", 0.2);
  EXPECT_EQ(spec.label(), "A s7 x1 aging[age_weight_per_hour=0.2]");
}

TEST(WorldSpec, ConfigAppliesKnobs) {
  WorldSpec spec = baseline_spec(DatasetKind::kC, 11, 0.3);
  spec.scenario = "knobs";
  spec.set("builder", 1.0)
      .set("genesis_height", 700'000.0)
      .set("scam", 0.0)
      .set("self_interest_per_block", 0.77)
      .set("selfish", 0.0)
      .set("propagation_exclusion", 0.0)
      .set("age_weight_per_hour", 0.25)
      .set("clear_bursts", 1.0)
      .set("anchor_multiplier", 2.0);

  const EngineConfig base = dataset_config(DatasetKind::kC, 11, 0.3);
  const EngineConfig config = spec.config();

  EXPECT_EQ(config.genesis_height, 700'000u);
  EXPECT_FALSE(config.workload.scam.has_value());
  EXPECT_EQ(config.workload.self_interest_per_block, 0.77);
  EXPECT_FALSE(config.propagation_exclusion);
  EXPECT_TRUE(config.workload.bursts.empty());
  EXPECT_EQ(config.workload.urgent_anchor_sat_vb,
            base.workload.urgent_anchor_sat_vb * 2.0);
  EXPECT_EQ(config.workload.normal_anchor_sat_vb,
            base.workload.normal_anchor_sat_vb * 2.0);
  EXPECT_EQ(config.workload.patient_anchor_sat_vb,
            base.workload.patient_anchor_sat_vb * 2.0);
  ASSERT_FALSE(config.pools.empty());
  for (const PoolSpec& pool : config.pools) {
    EXPECT_EQ(pool.builder, BuilderKind::kLegacyPriority);
    EXPECT_FALSE(pool.selfish);
    EXPECT_TRUE(pool.accelerates_for.empty());
    EXPECT_EQ(pool.age_weight_per_hour, 0.25);
  }
}

TEST(WorldSpec, UtilizationKnobAppliedLast) {
  WorldSpec spec = baseline_spec(DatasetKind::kA, 3, 0.5);
  spec.scenario = "util";
  spec.set("utilization", 0.92);
  const EngineConfig config = spec.config();
  // rate_for_utilization reads only the capacity math (block budget,
  // interval, mean vsize), so recomputing it on the final config must
  // reproduce the stored arrival rate exactly.
  EXPECT_EQ(config.workload.base_tx_per_second,
            rate_for_utilization(config, 0.92));
}

TEST(WorldSpec, UnknownKnobThrows) {
  WorldSpec spec = baseline_spec(DatasetKind::kA, 1, 1.0);
  spec.set("block_sizee", 2.0);  // typo: must fail loudly, not no-op
  EXPECT_THROW(spec.config(), std::invalid_argument);
}

TEST(WorldSpec, BaselinesConvergeAcrossCallSites) {
  // bench/worlds.hpp relies on era(kGbt) and aging(0.0) collapsing onto
  // the plain baseline so fig01's modern era, the w=0 aging row, and
  // every other A-baseline consumer share one cache entry.
  const WorldSpec a = baseline_spec(DatasetKind::kA, 42, 0.5);
  const WorldSpec b = baseline_spec(DatasetKind::kA, 42, 0.5);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

}  // namespace
}  // namespace cn::sim

#include "sim/policy.hpp"

#include <gtest/gtest.h>

#include "../helpers.hpp"

namespace cn::sim {
namespace {

using cn::test::tx_with_rate;

const btc::Address kPoolWallet = btc::Address::derive("pool/wallet/0");
const btc::Address kPartnerWallet = btc::Address::derive("partner/wallet/0");
const btc::Address kUser = btc::Address::derive("some-user");

btc::Transaction payout(std::uint64_t nonce) {
  return btc::make_payment(0, 250, btc::Satoshi{250}, kPoolWallet, kUser,
                           btc::Satoshi{1'000'000}, nonce);
}

TEST(SelfInterestPolicy, BoostsOwnWalletTxs) {
  node::Mempool pool(1);
  const auto own = payout(1);
  const auto other = tx_with_rate(1.0, 250, 0, 2);
  pool.accept(own, 0);
  pool.accept(other, 0);

  std::unordered_set<btc::Address> wallets{kPoolWallet};
  PolicyContext ctx;
  ctx.own_wallets = &wallets;

  node::TemplateOptions options;
  SelfInterestPolicy{}.apply(options, pool, ctx);
  ASSERT_EQ(options.fee_deltas.size(), 1u);
  EXPECT_EQ(options.fee_deltas.at(own.id()), kPriorityBoost);
}

TEST(SelfInterestPolicy, BoostsIncomingToo) {
  node::Mempool pool(1);
  const auto deposit = btc::make_payment(0, 250, btc::Satoshi{250}, kUser,
                                         kPoolWallet, btc::Satoshi{500}, 3);
  pool.accept(deposit, 0);
  std::unordered_set<btc::Address> wallets{kPoolWallet};
  PolicyContext ctx;
  ctx.own_wallets = &wallets;
  node::TemplateOptions options;
  SelfInterestPolicy{}.apply(options, pool, ctx);
  EXPECT_TRUE(options.fee_deltas.contains(deposit.id()));
}

TEST(CollusionPolicy, BoostsPartnerWallets) {
  node::Mempool pool(1);
  const auto partner_tx = btc::make_payment(
      0, 250, btc::Satoshi{250}, kPartnerWallet, kUser, btc::Satoshi{500}, 4);
  const auto own_tx = payout(5);
  pool.accept(partner_tx, 0);
  pool.accept(own_tx, 0);

  std::unordered_set<btc::Address> own{kPoolWallet};
  std::unordered_set<btc::Address> partner{kPartnerWallet};
  PolicyContext ctx;
  ctx.own_wallets = &own;
  ctx.partner_wallets.push_back(&partner);

  node::TemplateOptions options;
  CollusionPolicy{}.apply(options, pool, ctx);
  EXPECT_TRUE(options.fee_deltas.contains(partner_tx.id()));
  EXPECT_FALSE(options.fee_deltas.contains(own_tx.id()));
}

TEST(CollusionPolicy, NoPartnersIsNoop) {
  node::Mempool pool(1);
  pool.accept(payout(6), 0);
  PolicyContext ctx;
  node::TemplateOptions options;
  CollusionPolicy{}.apply(options, pool, ctx);
  EXPECT_TRUE(options.fee_deltas.empty());
}

TEST(DarkFeePolicy, BoostsOnlyOwnServiceCustomers) {
  node::Mempool pool(1);
  const auto paid = tx_with_rate(1.0, 250, 0, 7);
  const auto other_service = tx_with_rate(1.0, 250, 0, 8);
  pool.accept(paid, 0);
  pool.accept(other_service, 0);

  AccelerationService service;
  service.accelerate(paid.id(), "BTC.com", btc::Satoshi{100'000});
  service.accelerate(other_service.id(), "AntPool", btc::Satoshi{100'000});

  PolicyContext ctx;
  ctx.pool_name = "BTC.com";
  ctx.acceleration = &service;

  node::TemplateOptions options;
  DarkFeePolicy{}.apply(options, pool, ctx);
  EXPECT_TRUE(options.fee_deltas.contains(paid.id()));
  EXPECT_FALSE(options.fee_deltas.contains(other_service.id()));
}

TEST(DarkFeePolicy, SkipsCommittedCustomers) {
  node::Mempool pool(1);  // tx NOT in mempool
  const auto gone = tx_with_rate(1.0, 250, 0, 9);
  AccelerationService service;
  service.accelerate(gone.id(), "BTC.com", btc::Satoshi{100'000});
  PolicyContext ctx;
  ctx.pool_name = "BTC.com";
  ctx.acceleration = &service;
  node::TemplateOptions options;
  DarkFeePolicy{}.apply(options, pool, ctx);
  EXPECT_TRUE(options.fee_deltas.empty());
}

TEST(CensorshipPolicy, ExcludesBlacklistedWallets) {
  node::Mempool pool(1);
  const btc::Address scam = btc::Address::derive("scam-wallet");
  const auto scam_tx = btc::make_payment(0, 250, btc::Satoshi{2500}, kUser, scam,
                                         btc::Satoshi{500}, 10);
  const auto fine_tx = tx_with_rate(5.0, 250, 0, 11);
  pool.accept(scam_tx, 0);
  pool.accept(fine_tx, 0);

  CensorshipPolicy policy({scam});
  PolicyContext ctx;
  node::TemplateOptions options;
  policy.apply(options, pool, ctx);
  EXPECT_TRUE(options.exclude.contains(scam_tx.id()));
  EXPECT_FALSE(options.exclude.contains(fine_tx.id()));
}

TEST(LowFeeTolerance, LiftsFloorPeriodically) {
  node::Mempool pool(1);
  LowFeeTolerancePolicy policy(/*period=*/4);
  PolicyContext ctx;
  ctx.pool_name = "F2Pool";

  int lifted = 0;
  for (std::uint64_t h = 0; h < 400; ++h) {
    node::TemplateOptions options;
    options.min_rate = btc::FeeRate::from_sat_per_vb(1);
    ctx.height = h;
    policy.apply(options, pool, ctx);
    if (!options.min_rate.valid()) ++lifted;
  }
  // Expect roughly 1 in 4 heights, deterministic given pool/height.
  EXPECT_GT(lifted, 60);
  EXPECT_LT(lifted, 140);
}

TEST(LowFeeTolerance, DeterministicPerPoolAndHeight) {
  LowFeeTolerancePolicy policy(4);
  node::Mempool pool(1);
  PolicyContext ctx;
  ctx.pool_name = "F2Pool";
  ctx.height = 123;
  node::TemplateOptions a, b;
  a.min_rate = b.min_rate = btc::FeeRate::from_sat_per_vb(1);
  policy.apply(a, pool, ctx);
  policy.apply(b, pool, ctx);
  EXPECT_EQ(a.min_rate.valid(), b.min_rate.valid());
}

TEST(CollusionPolicy, NullOrEmptyPartnerEntryIsSkippedNotDereferenced) {
  // Regression: a pool may collude with a wallet-less partner — its slot
  // in partner_wallets is a null (or empty) set. apply() used to walk
  // straight into it.
  node::Mempool pool(1);
  const auto partner_tx = btc::make_payment(
      0, 250, btc::Satoshi{250}, kPartnerWallet, kUser, btc::Satoshi{500}, 40);
  pool.accept(partner_tx, 0);

  std::unordered_set<btc::Address> partner{kPartnerWallet};
  const std::unordered_set<btc::Address> empty;
  PolicyContext ctx;
  ctx.partner_wallets.push_back(nullptr);
  ctx.partner_wallets.push_back(&empty);
  ctx.partner_wallets.push_back(&partner);

  node::TemplateOptions options;
  CollusionPolicy{}.apply(options, pool, ctx);
  ASSERT_EQ(options.fee_deltas.size(), 1u);
  EXPECT_TRUE(options.fee_deltas.contains(partner_tx.id()));
}

TEST(EvasiveSelfInterest, ZeroThetaIsAbsoluteNoop) {
  // theta=0 must not even read the context — it is the attachment that
  // byte-identity with the honest baseline rests on.
  node::Mempool pool(1);
  pool.accept(payout(50), 0);
  PolicyContext ctx;  // own_wallets deliberately null
  node::TemplateOptions options;
  EvasiveSelfInterestPolicy{0.0}.apply(options, pool, ctx);
  EXPECT_TRUE(options.fee_deltas.empty());
  EXPECT_TRUE(options.exclude.empty());
}

TEST(EvasiveSelfInterest, FullThetaMatchesSelfInterestExactly) {
  node::Mempool pool(1);
  for (std::uint64_t n = 0; n < 20; ++n) pool.accept(payout(60 + n), 0);
  pool.accept(tx_with_rate(1.0, 250, 0, 90), 0);

  std::unordered_set<btc::Address> wallets{kPoolWallet};
  PolicyContext ctx;
  ctx.pool_name = "F2Pool";
  ctx.own_wallets = &wallets;

  node::TemplateOptions plain, evasive;
  SelfInterestPolicy{}.apply(plain, pool, ctx);
  EvasiveSelfInterestPolicy{1.0}.apply(evasive, pool, ctx);
  EXPECT_EQ(plain.fee_deltas, evasive.fee_deltas);
  ASSERT_EQ(evasive.fee_deltas.size(), 20u);
}

TEST(EvasiveSelfInterest, PartialThetaThrottlesDeterministically) {
  node::Mempool pool(1);
  constexpr std::uint64_t kOwnTxs = 200;
  for (std::uint64_t n = 0; n < kOwnTxs; ++n) pool.accept(payout(100 + n), 0);

  std::unordered_set<btc::Address> wallets{kPoolWallet};
  PolicyContext ctx;
  ctx.pool_name = "F2Pool";
  ctx.own_wallets = &wallets;

  node::TemplateOptions half;
  EvasiveSelfInterestPolicy{0.5}.apply(half, pool, ctx);
  // Roughly theta of the own-wallet txs retain their boost...
  EXPECT_GT(half.fee_deltas.size(), kOwnTxs / 4);
  EXPECT_LT(half.fee_deltas.size(), 3 * kOwnTxs / 4);
  // ...and every survivor is a strict subset of the full boost set.
  node::TemplateOptions full;
  SelfInterestPolicy{}.apply(full, pool, ctx);
  for (const auto& [id, delta] : half.fee_deltas) {
    EXPECT_TRUE(full.fee_deltas.contains(id));
    EXPECT_EQ(delta, kPriorityBoost);
  }

  // The verdict is keyed on (pool, txid) alone: a different block
  // attempt (height/now) re-boosts the SAME transactions — the throttle
  // must read as indifference, never flicker.
  node::TemplateOptions later;
  ctx.height = 777;
  ctx.now = 123'456;
  EvasiveSelfInterestPolicy{0.5}.apply(later, pool, ctx);
  EXPECT_EQ(half.fee_deltas, later.fee_deltas);

  // A different pool draws a different (deterministic) subset.
  node::TemplateOptions other_pool;
  ctx.pool_name = "AntPool";
  EvasiveSelfInterestPolicy{0.5}.apply(other_pool, pool, ctx);
  EXPECT_NE(half.fee_deltas, other_pool.fee_deltas);
}

TEST(WithholdingPolicy, ExcludesRecentlyBroadcastTxs) {
  node::Mempool pool(1);
  const auto fresh = tx_with_rate(5.0, 250, 0, 200);
  const auto stale = tx_with_rate(5.0, 250, 0, 201);
  const auto unseen = tx_with_rate(5.0, 250, 0, 202);
  pool.accept(fresh, 0);
  pool.accept(stale, 0);
  pool.accept(unseen, 0);

  std::unordered_map<btc::Txid, SimTime> broadcast;
  broadcast[fresh.id()] = 800;  // within the 300 s assembly lag
  broadcast[stale.id()] = 600;  // already known when assembly started
  PolicyContext ctx;
  ctx.now = 1000;
  ctx.broadcast_time = &broadcast;

  node::TemplateOptions options;
  WithholdingPolicy{300.0}.apply(options, pool, ctx);
  EXPECT_TRUE(options.exclude.contains(fresh.id()));
  EXPECT_FALSE(options.exclude.contains(stale.id()));
  EXPECT_FALSE(options.exclude.contains(unseen.id()));
}

TEST(WithholdingPolicy, ZeroDelayOrMissingLogIsNoop) {
  node::Mempool pool(1);
  const auto tx = tx_with_rate(5.0, 250, 0, 210);
  pool.accept(tx, 0);
  std::unordered_map<btc::Txid, SimTime> broadcast{{tx.id(), 999}};
  PolicyContext ctx;
  ctx.now = 1000;
  ctx.broadcast_time = &broadcast;

  node::TemplateOptions zero_delay;
  WithholdingPolicy{0.0}.apply(zero_delay, pool, ctx);
  EXPECT_TRUE(zero_delay.exclude.empty());

  ctx.broadcast_time = nullptr;
  node::TemplateOptions no_log;
  WithholdingPolicy{300.0}.apply(no_log, pool, ctx);
  EXPECT_TRUE(no_log.exclude.empty());
}

TEST(FairQueuePolicy, RequestsFifoOrdering) {
  node::Mempool pool(1);
  PolicyContext ctx;
  node::TemplateOptions options;
  EXPECT_FALSE(options.fifo);
  FairQueuePolicy{}.apply(options, pool, ctx);
  EXPECT_TRUE(options.fifo);
  EXPECT_TRUE(options.fee_deltas.empty());
  EXPECT_TRUE(options.exclude.empty());
}

TEST(PolicyNames, AreStable) {
  EXPECT_EQ(SelfInterestPolicy{}.name(), "self-interest");
  EXPECT_EQ(CollusionPolicy{}.name(), "collusion");
  EXPECT_EQ(DarkFeePolicy{}.name(), "dark-fee");
  EXPECT_EQ(CensorshipPolicy{{}}.name(), "censorship");
  EXPECT_EQ(LowFeeTolerancePolicy{}.name(), "low-fee-tolerance");
  EXPECT_EQ(WithholdingPolicy{120.0}.name(), "withholding");
  EXPECT_EQ(EvasiveSelfInterestPolicy{0.5}.name(), "evasive-self-interest");
  EXPECT_EQ(FairQueuePolicy{}.name(), "fair-queue");
}

}  // namespace
}  // namespace cn::sim

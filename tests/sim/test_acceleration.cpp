#include "sim/acceleration.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "../helpers.hpp"

namespace cn::sim {
namespace {

using cn::test::tx_with_rate;

TEST(Acceleration, RegistersAndQueries) {
  AccelerationService service;
  const auto tx = tx_with_rate(1.0);
  EXPECT_FALSE(service.is_accelerated(tx.id()));
  service.accelerate(tx.id(), "BTC.com", btc::Satoshi{500'000});
  EXPECT_TRUE(service.is_accelerated(tx.id()));
  EXPECT_EQ(service.total_accelerated(), 1u);

  const auto rec = service.record_of(tx.id());
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->pool, "BTC.com");
  EXPECT_EQ(rec->paid.value, 500'000);
}

TEST(Acceleration, PerPoolSets) {
  AccelerationService service;
  const auto a = tx_with_rate(1.0, 250, 0, 2001);
  const auto b = tx_with_rate(1.0, 250, 0, 2002);
  service.accelerate(a.id(), "BTC.com", btc::Satoshi{1});
  service.accelerate(b.id(), "AntPool", btc::Satoshi{2});
  EXPECT_TRUE(service.accelerated_via("BTC.com").contains(a.id()));
  EXPECT_FALSE(service.accelerated_via("BTC.com").contains(b.id()));
  EXPECT_TRUE(service.accelerated_via("ViaBTC").empty());
}

TEST(Acceleration, RevenueAccrues) {
  AccelerationService service;
  service.accelerate(tx_with_rate(1, 250, 0, 2011).id(), "P", btc::Satoshi{100});
  service.accelerate(tx_with_rate(1, 250, 0, 2012).id(), "P", btc::Satoshi{250});
  EXPECT_EQ(service.revenue_of("P").value, 350);
  EXPECT_EQ(service.revenue_of("Q").value, 0);
}

TEST(Acceleration, QuoteIsMuchHigherThanPublicFee) {
  // Fig 14: median multiplier ~117x, mean ~566x.
  AccelerationService service;
  Rng rng(99);
  const auto tx = tx_with_rate(2.0, 250);  // public fee = 500 sat
  std::vector<double> multipliers;
  for (int i = 0; i < 20'000; ++i) {
    const auto quote = service.quote(tx, rng);
    multipliers.push_back(static_cast<double>(quote.value) /
                          static_cast<double>(tx.fee().value));
  }
  std::sort(multipliers.begin(), multipliers.end());
  const double median = multipliers[multipliers.size() / 2];
  double mean = 0;
  for (double m : multipliers) mean += m;
  mean /= static_cast<double>(multipliers.size());
  EXPECT_GT(median, 60.0);
  EXPECT_LT(median, 220.0);
  EXPECT_GT(mean / median, 2.5);  // heavy right tail
}

TEST(Acceleration, AcceleratedMaskMatchesPerTxidQueries) {
  AccelerationService service;
  const auto a = tx_with_rate(1.0);
  const auto b = tx_with_rate(2.0);
  const auto c = tx_with_rate(3.0);
  service.accelerate(a.id(), "BTC.com", btc::Satoshi{500'000});
  service.accelerate(c.id(), "ViaBTC", btc::Satoshi{250'000});

  const std::vector<btc::Txid> ids = {a.id(), b.id(), c.id(), b.id()};
  const auto mask = service.accelerated_mask(ids);
  ASSERT_EQ(mask.size(), ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(mask[i], service.is_accelerated(ids[i])) << "i=" << i;
  }
  EXPECT_TRUE(mask[0]);
  EXPECT_FALSE(mask[1]);
  EXPECT_TRUE(mask[2]);
  EXPECT_TRUE(service.accelerated_mask({}).empty());
}

TEST(Acceleration, QuoteHasMinimumFee) {
  QuoteModel model;
  model.min_fee_sat = 50'000;
  AccelerationService service(model);
  Rng rng(1);
  const auto dust = tx_with_rate(0.0, 100);  // zero public fee
  for (int i = 0; i < 100; ++i) {
    EXPECT_GE(service.quote(dust, rng).value, 50'000);
  }
}

TEST(Acceleration, QuoteCapped) {
  AccelerationService service;
  Rng rng(1);
  const auto whale = btc::make_payment(0, 250, btc::Satoshi{10'000'000'000},
                                       btc::Address::derive("a"),
                                       btc::Address::derive("b"),
                                       btc::Satoshi{1}, 2021);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LE(service.quote(whale, rng).value, static_cast<std::int64_t>(1e13));
  }
}

}  // namespace
}  // namespace cn::sim

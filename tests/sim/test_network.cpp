#include "sim/network.hpp"

#include <gtest/gtest.h>

#include "btc/txid.hpp"

namespace cn::sim {
namespace {

TEST(Propagation, Deterministic) {
  const PropagationModel model;
  const auto id = btc::Txid::hash_of("tx");
  EXPECT_EQ(model.delay(id, "F2Pool"), model.delay(id, "F2Pool"));
}

TEST(Propagation, VariesAcrossNodes) {
  const PropagationModel model;
  const auto id = btc::Txid::hash_of("tx");
  bool varies = false;
  const SimTime first = model.delay(id, "node-0");
  for (int i = 1; i < 20; ++i) {
    if (model.delay(id, "node-" + std::to_string(i)) != first) {
      varies = true;
      break;
    }
  }
  EXPECT_TRUE(varies);
}

TEST(Propagation, BoundedByCap) {
  PropagationModel model;
  model.cap_seconds = 5.0;
  for (int i = 0; i < 1000; ++i) {
    const auto id = btc::Txid::hash_of("tx" + std::to_string(i));
    const SimTime d = model.delay(id, "pool");
    EXPECT_GE(d, 0);
    EXPECT_LE(d, 5 + 1);  // +1 for rounding
  }
}

TEST(Propagation, MeanNearConfigured) {
  const PropagationModel model;  // floor 0.2 + exp(mean 3), cap 30
  double sum = 0.0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(
        model.delay(btc::Txid::hash_of("t" + std::to_string(i)), "x"));
  }
  const double mean = sum / n;
  EXPECT_GT(mean, 2.0);
  EXPECT_LT(mean, 4.5);
}

TEST(Propagation, ArrivalAddsBroadcastTime) {
  const PropagationModel model;
  const auto id = btc::Txid::hash_of("tx");
  EXPECT_EQ(model.arrival(id, "n", 1000), 1000 + model.delay(id, "n"));
}

}  // namespace
}  // namespace cn::sim

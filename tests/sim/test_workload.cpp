#include "sim/workload.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "../helpers.hpp"

namespace cn::sim {
namespace {

WorkloadConfig small_config() {
  WorkloadConfig config;
  config.base_tx_per_second = 0.5;
  config.diurnal_amplitude = 0.4;
  return config;
}

TEST(WorkloadRate, DiurnalOscillation) {
  WorkloadGenerator gen(small_config(), Rng(1));
  const double base = 0.5;
  // Peak a quarter-period in, trough at three quarters.
  const double peak = gen.rate_at(kDay / 4);
  const double trough = gen.rate_at(3 * kDay / 4);
  EXPECT_NEAR(peak, base * 1.4, 0.01);
  EXPECT_NEAR(trough, base * 0.6, 0.01);
  EXPECT_LE(peak, gen.max_rate() + 1e-12);
}

TEST(WorkloadRate, BurstsMultiply) {
  WorkloadConfig config = small_config();
  config.diurnal_amplitude = 0.0;
  config.bursts = {BurstEvent{100, 50, 3.0}};
  WorkloadGenerator gen(config, Rng(1));
  EXPECT_NEAR(gen.rate_at(99), 0.5, 1e-9);
  EXPECT_NEAR(gen.rate_at(100), 1.5, 1e-9);
  EXPECT_NEAR(gen.rate_at(149), 1.5, 1e-9);
  EXPECT_NEAR(gen.rate_at(150), 0.5, 1e-9);
  EXPECT_NEAR(gen.max_rate(), 1.5 * (1.0), 1e-9);
}

TEST(WorkloadArrivals, MonotoneAndUnbiasedRate) {
  WorkloadConfig config = small_config();
  config.diurnal_amplitude = 0.0;
  WorkloadGenerator gen(config, Rng(7));
  SimTime t = 0;
  int count = 0;
  while (t < 100'000) {
    const SimTime next = gen.next_arrival(t);
    ASSERT_GE(next, t);  // same-second arrivals are legal
    t = next;
    ++count;
  }
  // Expected ~ 0.5 * 100000 = 50000 arrivals; the continuous internal
  // clock must not introduce rounding bias.
  EXPECT_NEAR(static_cast<double>(count), 50'000.0, 1'500.0);
}

TEST(WorkloadTx, OrdinaryPaymentShape) {
  WorkloadGenerator gen(small_config(), Rng(3));
  WorkloadContext ctx;
  const GeneratedTx g = gen.make_transaction(1000, ctx);
  EXPECT_EQ(g.tx.issued(), 1000);
  EXPECT_GE(g.tx.vsize(), 80u);
  EXPECT_LE(g.tx.vsize(), 12'000u);
  EXPECT_GE(g.tx.fee_rate().sat_per_vbyte(), 0.0);
  EXPECT_FALSE(g.is_scam);
  EXPECT_FALSE(g.is_self_interest);
}

TEST(WorkloadTx, FeesRiseWithCongestion) {
  // Distributional property across many draws (Fig 4c driver).
  WorkloadConfig config = small_config();
  config.below_floor_fraction = 0.0;
  config.cpfp_fraction = 0.0;
  config.accel_request_fraction = 0.0;
  double mean_none = 0.0, mean_high = 0.0;
  const int n = 20'000;
  {
    WorkloadGenerator gen(config, Rng(5));
    WorkloadContext ctx;
    ctx.congestion = node::CongestionLevel::kNone;
    for (int i = 0; i < n; ++i)
      mean_none += gen.make_transaction(0, ctx).tx.fee_rate().sat_per_vbyte();
  }
  {
    WorkloadGenerator gen(config, Rng(5));
    WorkloadContext ctx;
    ctx.congestion = node::CongestionLevel::kHigh;
    for (int i = 0; i < n; ++i)
      mean_high += gen.make_transaction(0, ctx).tx.fee_rate().sat_per_vbyte();
  }
  EXPECT_GT(mean_high / n, 2.0 * (mean_none / n));
}

TEST(WorkloadTx, ScamPaysToScamAddress) {
  WorkloadGenerator gen(small_config(), Rng(9));
  WorkloadContext ctx;
  ctx.make_scam = true;
  ctx.scam_address = btc::Address::derive("scam");
  const GeneratedTx g = gen.make_transaction(0, ctx);
  EXPECT_TRUE(g.is_scam);
  EXPECT_TRUE(g.tx.pays_to(ctx.scam_address));
  EXPECT_GE(g.tx.fee_rate().sat_per_vbyte(), 2.0);  // victims rush
}

TEST(WorkloadTx, SelfInterestInvolvesPoolWallet) {
  WorkloadGenerator gen(small_config(), Rng(11));
  WorkloadContext ctx;
  ctx.make_self_interest = true;
  ctx.pool_wallet = btc::Address::derive("pool-wallet");
  int outgoing = 0, incoming = 0;
  for (int i = 0; i < 200; ++i) {
    const GeneratedTx g = gen.make_transaction(0, ctx);
    EXPECT_TRUE(g.is_self_interest);
    EXPECT_TRUE(g.tx.involves(ctx.pool_wallet));
    if (g.tx.spends_from(ctx.pool_wallet)) ++outgoing;
    if (g.tx.pays_to(ctx.pool_wallet)) ++incoming;
  }
  EXPECT_GT(outgoing, incoming);  // payouts dominate deposits
  EXPECT_GT(incoming, 0);
}

TEST(WorkloadTx, CpfpChildSpendsParent) {
  WorkloadConfig config = small_config();
  config.cpfp_fraction = 1.0;  // always, when a parent is offered
  config.below_floor_fraction = 0.0;
  WorkloadGenerator gen(config, Rng(13));
  const auto parent = cn::test::tx_with_rate(1.0, 250, 0, 3001);
  WorkloadContext ctx;
  ctx.cpfp_parent = &parent;
  const GeneratedTx g = gen.make_transaction(100, ctx);
  EXPECT_TRUE(g.used_cpfp_parent);
  EXPECT_TRUE(g.tx.spends_output_of(parent.id()));
  // Child pays more than the stuck parent.
  EXPECT_GT(g.tx.fee_rate().sat_per_vbyte(), 1.0);
}

TEST(WorkloadTx, BelowFloorFractionProducesLowFee) {
  WorkloadConfig config = small_config();
  config.below_floor_fraction = 1.0;  // force the branch
  config.cpfp_fraction = 0.0;
  WorkloadGenerator gen(config, Rng(17));
  WorkloadContext ctx;
  int zero_fee = 0;
  for (int i = 0; i < 500; ++i) {
    const GeneratedTx g = gen.make_transaction(0, ctx);
    EXPECT_LT(g.tx.fee_rate().sat_per_vbyte(), 1.0);
    if (g.tx.fee().value == 0) ++zero_fee;
  }
  // ~45% should be exactly zero-fee.
  EXPECT_GT(zero_fee, 150);
  EXPECT_LT(zero_fee, 350);
}

TEST(WorkloadTx, AccelerationBuyersOfferTokenFee) {
  WorkloadConfig config = small_config();
  config.accel_request_fraction = 1.0;
  config.below_floor_fraction = 0.0;
  config.cpfp_fraction = 0.0;
  WorkloadGenerator gen(config, Rng(19));
  WorkloadContext ctx;
  ctx.congestion = node::CongestionLevel::kHigh;
  for (int i = 0; i < 100; ++i) {
    const GeneratedTx g = gen.make_transaction(0, ctx);
    EXPECT_TRUE(g.wants_acceleration);
    EXPECT_LT(g.tx.fee_rate().sat_per_vbyte(), 2.0);
  }
}

TEST(WorkloadTx, RbfReplacementConflictsAndPaysMore) {
  WorkloadGenerator gen(small_config(), Rng(29));
  WorkloadContext ctx;
  ctx.rec_p50 = 8.0;
  const auto original = cn::test::tx_with_rate(1.5, 250, 0, 3101);
  for (int i = 0; i < 50; ++i) {
    const auto bump = gen.make_rbf_replacement(100, original, ctx);
    // Same inputs -> conflicts by construction.
    ASSERT_EQ(bump.inputs().size(), original.inputs().size());
    EXPECT_EQ(bump.inputs()[0].prev_txid, original.inputs()[0].prev_txid);
    EXPECT_EQ(bump.inputs()[0].prev_vout, original.inputs()[0].prev_vout);
    // BIP-125: strictly more absolute fee.
    EXPECT_GT(bump.fee().value, original.fee().value);
    EXPECT_NE(bump.id(), original.id());
  }
}

TEST(WorkloadTx, DeterministicAcrossRuns) {
  WorkloadGenerator a(small_config(), Rng(23));
  WorkloadGenerator b(small_config(), Rng(23));
  WorkloadContext ctx;
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.make_transaction(i, ctx).tx.id(), b.make_transaction(i, ctx).tx.id());
  }
}

}  // namespace
}  // namespace cn::sim

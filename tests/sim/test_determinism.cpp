// The sharded engine's determinism contract (DESIGN.md §12), tested at
// the strictest level available: exported bytes.
//
//   1. threads=1 is the serial engine — byte-identical to the in-tree
//      seed (pre-sharding) engine, including CSV and CNB1 exports.
//   2. threads=N is run-to-run deterministic for a fixed seed: two runs
//      export identical bytes. The interleaving differs from serial
//      (shards draw from forked RNG streams), which is allowed; what is
//      not allowed is any dependence on thread scheduling.
//   3. The audit detectors still recover planted misbehaviour from a
//      sharded world — parallelism must not wash out the signal the
//      whole toolkit exists to find.
//
// Registered as a world test: the suite shares its simulated worlds
// across cases, and ci.sh runs the binary under TSan to put the
// cross-shard hand-offs in front of the race detector.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/prio_test.hpp"
#include "core/wallet_inference.hpp"
#include "io/cnb.hpp"
#include "io/dataset_io.hpp"
#include "sim/dataset.hpp"
#include "sim/engine.hpp"
#include "sim/engine_seed.hpp"

namespace cn {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return std::move(out).str();
}

/// Exports @p world as the CSV directory plus a CNB1 file underneath
/// @p dir; returns every written file as (relative name, bytes).
std::vector<std::pair<std::string, std::string>> export_bytes(
    const sim::SimResult& world, const std::string& dir) {
  namespace fs = std::filesystem;
  fs::remove_all(dir);
  std::string error;
  EXPECT_TRUE(io::export_chain(world.chain, dir, &error)) << error;
  EXPECT_TRUE(io::export_snapshots(world.observer.snapshots(),
                                   dir + "/snapshots.csv", &error))
      << error;
  EXPECT_TRUE(io::export_first_seen(world.observer.first_seen_map(),
                                    dir + "/first_seen.csv", &error))
      << error;
  io::CnbWriteOptions options;
  options.snapshots = &world.observer.snapshots();
  options.first_seen = &world.observer.first_seen_map();
  EXPECT_TRUE(io::write_cnb(world.chain, dir + "/dataset.cnb", options, &error))
      << error;

  std::vector<std::pair<std::string, std::string>> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    files.emplace_back(entry.path().filename().string(),
                       slurp(entry.path().string()));
  }
  std::sort(files.begin(), files.end());
  EXPECT_GE(files.size(), 7u);  // 4 tables + 2 series + dataset.cnb
  return files;
}

void expect_identical_exports(const sim::SimResult& a, const sim::SimResult& b,
                              const std::string& tag) {
  const auto fa = export_bytes(a, ::testing::TempDir() + "/cn_det_" + tag + "_a");
  const auto fb = export_bytes(b, ::testing::TempDir() + "/cn_det_" + tag + "_b");
  ASSERT_EQ(fa.size(), fb.size());
  for (std::size_t i = 0; i < fa.size(); ++i) {
    EXPECT_EQ(fa[i].first, fb[i].first);
    EXPECT_TRUE(fa[i].second == fb[i].second)
        << tag << ": " << fa[i].first << " bytes differ";
  }
}

/// The shared worlds: one config, simulated by the seed engine, the
/// serial path, and the sharded path twice.
class ShardedDeterminism : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::EngineConfig config = sim::dataset_config(sim::DatasetKind::kA, 4242, 0.15);
    seed_ = new sim::SimResult(sim::SeedEngine(config).run());
    config.threads = 1;
    serial_ = new sim::SimResult(sim::Engine(config).run());
    config.threads = 2;
    sharded_a_ = new sim::SimResult(sim::Engine(config).run());
    sharded_b_ = new sim::SimResult(sim::Engine(config).run());
  }
  static void TearDownTestSuite() {
    delete sharded_b_;
    delete sharded_a_;
    delete serial_;
    delete seed_;
    sharded_b_ = sharded_a_ = serial_ = seed_ = nullptr;
  }

  static sim::SimResult* seed_;
  static sim::SimResult* serial_;
  static sim::SimResult* sharded_a_;
  static sim::SimResult* sharded_b_;
};

sim::SimResult* ShardedDeterminism::seed_ = nullptr;
sim::SimResult* ShardedDeterminism::serial_ = nullptr;
sim::SimResult* ShardedDeterminism::sharded_a_ = nullptr;
sim::SimResult* ShardedDeterminism::sharded_b_ = nullptr;

void expect_same_world(const sim::SimResult& a, const sim::SimResult& b) {
  ASSERT_EQ(a.chain.size(), b.chain.size());
  for (std::size_t i = 0; i < a.chain.size(); ++i) {
    const auto& ba = a.chain.blocks()[i];
    const auto& bb = b.chain.blocks()[i];
    ASSERT_EQ(ba.tx_count(), bb.tx_count()) << "block " << i;
    for (std::size_t j = 0; j < ba.tx_count(); ++j) {
      ASSERT_EQ(ba.txs()[j].id(), bb.txs()[j].id())
          << "block " << i << " position " << j;
    }
  }
  EXPECT_EQ(a.issued_count, b.issued_count);
  EXPECT_EQ(a.rbf_replacements, b.rbf_replacements);
  EXPECT_EQ(a.scam_txids, b.scam_txids);
  ASSERT_EQ(a.observer.first_seen_map().size(),
            b.observer.first_seen_map().size());
  for (const auto& [id, t] : a.observer.first_seen_map()) {
    const auto other = b.observer.first_seen(id);
    ASSERT_TRUE(other.has_value());
    EXPECT_EQ(*other, t);
  }
  EXPECT_EQ(a.observer.snapshots().stats().size(),
            b.observer.snapshots().stats().size());
}

TEST_F(ShardedDeterminism, SerialMatchesSeedEngine) {
  expect_same_world(*seed_, *serial_);
}

TEST_F(ShardedDeterminism, SerialExportBytesMatchSeedEngine) {
  expect_identical_exports(*seed_, *serial_, "serial");
}

TEST_F(ShardedDeterminism, ShardedRunToRunIdentical) {
  expect_same_world(*sharded_a_, *sharded_b_);
}

TEST_F(ShardedDeterminism, ShardedExportBytesIdenticalRunToRun) {
  expect_identical_exports(*sharded_a_, *sharded_b_, "sharded");
}

TEST_F(ShardedDeterminism, ShardedWorldIsStatisticallyComparable) {
  // The sharded interleaving is a different sample of the same process:
  // block count and issuance must land within a few percent of serial.
  const double blocks_serial = static_cast<double>(serial_->chain.size());
  const double blocks_sharded = static_cast<double>(sharded_a_->chain.size());
  EXPECT_NEAR(blocks_sharded / blocks_serial, 1.0, 0.15);
  const double issued_serial = static_cast<double>(serial_->issued_count);
  const double issued_sharded = static_cast<double>(sharded_a_->issued_count);
  EXPECT_NEAR(issued_sharded / issued_serial, 1.0, 0.05);
}

TEST(ShardedDetectors, PlantedSelfDealerStillCaught) {
  // A calibration-style planted world simulated on the sharded engine:
  // the SPPE detector must still convict the self-dealer and acquit an
  // honest pool. (The serial engine's verdicts are covered by the
  // calibration suite; byte-identity above carries them over.)
  sim::EngineConfig config;
  config.seed = 991;
  config.duration = 2 * kDay;
  sim::PoolSpec selfish;
  selfish.name = "Selfish";
  selfish.hash_share = 25.0;
  selfish.self_tx_weight = 3.0;
  selfish.selfish = true;
  sim::PoolSpec honest;
  honest.name = "Honest";
  honest.hash_share = 75.0;
  config.pools = {selfish, honest};
  config.workload.self_interest_per_block = 0.6;
  config.workload.bursts.push_back({kDay, 6 * kHour, 3.0});
  config.threads = 2;

  const sim::SimResult world = sim::Engine(config).run();
  ASSERT_GT(world.chain.size(), 150u);

  btc::CoinbaseTagRegistry registry;
  registry.add("Selfish", btc::conventional_marker("Selfish"));
  registry.add("Honest", btc::conventional_marker("Honest"));
  const core::PoolAttribution attribution(world.chain, registry);

  const auto own =
      core::self_interest_txs(world.chain, attribution, "Selfish");
  ASSERT_GT(own.size(), 20u);
  const auto verdict = core::test_differential_prioritization(
      world.chain, attribution, "Selfish", own);
  EXPECT_LT(verdict.p_accelerate, 0.001);
  EXPECT_GT(verdict.sppe, 0.0);

  const auto honest_own =
      core::self_interest_txs(world.chain, attribution, "Honest");
  if (honest_own.size() > 20u) {
    const auto honest_verdict = core::test_differential_prioritization(
        world.chain, attribution, "Honest", honest_own);
    EXPECT_GT(honest_verdict.p_accelerate, 0.001);
  }
}

}  // namespace
}  // namespace cn

// Detector power against the evasion-aware adversary zoo.
//
// The calibration suite (test_detector_calibration.cpp) proves the
// detectors convict a FULLY selfish plant and acquit honest pools. This
// suite sweeps the space in between: the "Selfish" pool throttles its
// own-wallet boosts to a retained intensity theta in [0,1]
// (EvasiveSelfInterestPolicy), and the binomial test's p-value must
// degrade monotonically as the evasion budget (1 - theta) grows —
// decisive at theta=1, calm at theta=0 and on the honest twin.
//
// The theta endpoints are pinned at the strictest level available,
// exported CNB1 bytes:
//   * theta=0 is BYTE-IDENTICAL to the honest world (the policy attaches
//     but must consume no randomness and mutate nothing), on the serial
//     AND the sharded engine (threads 1 and 0);
//   * theta=1 is BYTE-IDENTICAL to the plain SelfInterestPolicy world —
//     full retention IS the non-evasive adversary.
//
// Also covered here: the block-withholding detector (missing-mempool
// overlap, core/withholding.hpp) flagging a WithholdingPolicy plant and
// staying quiet on prompt publishers; the audit pipeline's withholding
// stage rendering identically on the legacy and columnar engines; and
// the fee-only (zero-subsidy) EngineConfig knob.
//
// CN_SMOKE=1 (the ASan CI leg) halves the world duration; every
// assertion is deterministic for the pinned seed in both modes.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "btc/coinbase_tags.hpp"
#include "btc/rewards.hpp"
#include "core/audit_pipeline.hpp"
#include "core/prio_test.hpp"
#include "core/wallet_inference.hpp"
#include "core/withholding.hpp"
#include "io/cnb.hpp"
#include "sim/engine.hpp"

namespace cn {
namespace {

constexpr double kAlpha = 0.001;
constexpr std::uint64_t kSeed = 991;

bool smoke_mode() {
  const char* s = std::getenv("CN_SMOKE");
  return s != nullptr && *s != '\0' && std::string(s) != "0";
}

enum class Plant {
  kNone,     ///< honest control
  kSelfish,  ///< plain SelfInterestPolicy
  kEvasive,  ///< EvasiveSelfInterestPolicy at a given theta
};

/// One config skeleton for every world in the suite: 4 equal pools, the
/// same workload (identical self_tx_weight regardless of plant, so the
/// issued transactions match across worlds), a mid-run congestion burst.
/// Only the "Selfish" pool's policy attachment varies.
sim::EngineConfig power_config(Plant plant, double theta = 0.0,
                               double withhold_delay_s = 0.0,
                               unsigned threads = 1) {
  sim::EngineConfig config;
  config.seed = kSeed;
  config.duration = smoke_mode() ? kDay : 2 * kDay;
  config.threads = threads;

  sim::PoolSpec selfish;
  selfish.name = "Selfish";
  selfish.hash_share = 25.0;
  selfish.self_tx_weight = 3.0;
  if (plant == Plant::kSelfish) selfish.selfish = true;
  if (plant == Plant::kEvasive) selfish.evasion_theta = theta;
  selfish.withhold_delay_s = withhold_delay_s;

  sim::PoolSpec honest1;
  honest1.name = "Honest1";
  honest1.hash_share = 25.0;
  sim::PoolSpec honest2 = honest1;
  honest2.name = "Honest2";
  sim::PoolSpec honest3 = honest1;
  honest3.name = "Honest3";

  config.pools = {selfish, honest1, honest2, honest3};
  config.workload.self_interest_per_block = 0.6;
  config.workload.bursts.push_back(
      {config.duration / 2, 6 * kHour, 3.0});
  return config;
}

btc::CoinbaseTagRegistry power_registry() {
  btc::CoinbaseTagRegistry registry;
  for (const char* name : {"Selfish", "Honest1", "Honest2", "Honest3"}) {
    registry.add(name, btc::conventional_marker(name));
  }
  return registry;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return std::move(out).str();
}

/// The world reduced to its strongest equality witness: the full CNB1
/// export (chain, snapshots, first-seen log) as bytes.
std::string cnb_bytes(const sim::SimResult& world, const std::string& tag) {
  const std::string path = ::testing::TempDir() + "/cn_power_" + tag + ".cnb";
  io::CnbWriteOptions options;
  options.snapshots = &world.observer.snapshots();
  options.first_seen = &world.observer.first_seen_map();
  std::string error;
  EXPECT_TRUE(io::write_cnb(world.chain, path, options, &error)) << error;
  return slurp(path);
}

core::PrioTestResult selfish_verdict(const sim::SimResult& world,
                                     const btc::CoinbaseTagRegistry& registry) {
  const core::PoolAttribution attribution(world.chain, registry);
  const auto own =
      core::self_interest_txs(world.chain, attribution, "Selfish");
  return core::test_differential_prioritization(world.chain, attribution,
                                                "Selfish", own);
}

const core::WithholdingReport* report_of(
    const std::vector<core::WithholdingReport>& reports,
    const std::string& pool) {
  for (const auto& r : reports) {
    if (r.pool == pool) return &r;
  }
  return nullptr;
}

/// Every world the suite needs, simulated once.
class DetectorPower : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    registry_ = new btc::CoinbaseTagRegistry(power_registry());
    honest_ = new sim::SimResult(sim::Engine(power_config(Plant::kNone)).run());
    theta0_ = new sim::SimResult(
        sim::Engine(power_config(Plant::kEvasive, 0.0)).run());
    theta_half_ = new sim::SimResult(
        sim::Engine(power_config(Plant::kEvasive, 0.5)).run());
    theta_full_ = new sim::SimResult(
        sim::Engine(power_config(Plant::kEvasive, 1.0)).run());
    selfish_ = new sim::SimResult(
        sim::Engine(power_config(Plant::kSelfish)).run());
    withheld_ = new sim::SimResult(
        sim::Engine(power_config(Plant::kSelfish, 0.0, 120.0)).run());
  }
  static void TearDownTestSuite() {
    delete withheld_;
    delete selfish_;
    delete theta_full_;
    delete theta_half_;
    delete theta0_;
    delete honest_;
    delete registry_;
    withheld_ = selfish_ = theta_full_ = theta_half_ = theta0_ = honest_ =
        nullptr;
    registry_ = nullptr;
  }

  static btc::CoinbaseTagRegistry* registry_;
  static sim::SimResult* honest_;
  static sim::SimResult* theta0_;
  static sim::SimResult* theta_half_;
  static sim::SimResult* theta_full_;
  static sim::SimResult* selfish_;
  static sim::SimResult* withheld_;
};

btc::CoinbaseTagRegistry* DetectorPower::registry_ = nullptr;
sim::SimResult* DetectorPower::honest_ = nullptr;
sim::SimResult* DetectorPower::theta0_ = nullptr;
sim::SimResult* DetectorPower::theta_half_ = nullptr;
sim::SimResult* DetectorPower::theta_full_ = nullptr;
sim::SimResult* DetectorPower::selfish_ = nullptr;
sim::SimResult* DetectorPower::withheld_ = nullptr;

TEST_F(DetectorPower, WorldsAreComparable) {
  for (const sim::SimResult* world :
       {honest_, theta0_, theta_half_, theta_full_, selfish_, withheld_}) {
    EXPECT_GT(world->chain.size(), smoke_mode() ? 70u : 150u);
    EXPECT_GT(world->chain.total_tx_count(), 10'000u);
  }
}

TEST_F(DetectorPower, ZeroEvasionIsByteIdenticalToHonest) {
  // theta=0 attaches the policy but must change NOTHING — the exact
  // era(kGbt)/aging(0) collapse contract, held at the byte level.
  EXPECT_TRUE(cnb_bytes(*honest_, "honest") == cnb_bytes(*theta0_, "theta0"))
      << "theta=0 world diverged from the honest baseline";
}

TEST_F(DetectorPower, FullRetentionIsByteIdenticalToPlainSelfish) {
  // theta=1 must reduce to SelfInterestPolicy exactly: every own-wallet
  // transaction boosted, no randomness consumed.
  EXPECT_TRUE(
      cnb_bytes(*theta_full_, "theta1") == cnb_bytes(*selfish_, "selfish"))
      << "theta=1 world diverged from the plain selfish world";
}

TEST(DetectorPowerSharded, ZeroEvasionByteIdentityHoldsSharded) {
  // Same collapse on the sharded engine (threads=0 resolves to hardware
  // concurrency): the no-op policy must not perturb shard hand-offs.
  const sim::SimResult honest =
      sim::Engine(power_config(Plant::kNone, 0.0, 0.0, /*threads=*/0)).run();
  const sim::SimResult theta0 =
      sim::Engine(power_config(Plant::kEvasive, 0.0, 0.0, /*threads=*/0))
          .run();
  EXPECT_TRUE(cnb_bytes(honest, "sh_honest") == cnb_bytes(theta0, "sh_theta0"))
      << "sharded theta=0 world diverged from the sharded honest baseline";
}

TEST_F(DetectorPower, PowerDegradesMonotonicallyWithEvasionBudget) {
  const auto honest = selfish_verdict(*honest_, *registry_);
  const auto t0 = selfish_verdict(*theta0_, *registry_);
  const auto t50 = selfish_verdict(*theta_half_, *registry_);
  const auto t100 = selfish_verdict(*theta_full_, *registry_);

  // Endpoints: decisive at full retention, calm at full evasion.
  EXPECT_LT(t100.p_accelerate, kAlpha);
  EXPECT_GT(t100.sppe, 50.0);
  EXPECT_GT(t0.p_accelerate, kAlpha);
  EXPECT_GT(honest.p_accelerate, kAlpha);

  // Monotone evidence: more retained selfishness, smaller p. (The sim
  // is deterministic for the pinned seed, so these are goldens, not
  // statistical hopes.)
  EXPECT_LE(t100.p_accelerate, t50.p_accelerate);
  EXPECT_LE(t50.p_accelerate, t0.p_accelerate);
}

TEST_F(DetectorPower, WithholdingDetectorSeparatesWorlds) {
  const core::PoolAttribution withheld_attr(withheld_->chain, *registry_);
  const auto flagged_reports = core::withholding_reports(
      withheld_->chain, withheld_attr, withheld_->observer.first_seen_map());
  const auto* withholder = report_of(flagged_reports, "Selfish");
  ASSERT_NE(withholder, nullptr);
  EXPECT_GT(withholder->blocks, 0u);
  EXPECT_GT(withholder->flagged_rate, 0.15)
      << "withholding plant not flagged";

  // Prompt publishers in the same world stay (essentially) clean...
  for (const char* pool : {"Honest1", "Honest2", "Honest3"}) {
    const auto* r = report_of(flagged_reports, pool);
    ASSERT_NE(r, nullptr) << pool;
    EXPECT_LT(r->flagged_rate, 0.05) << pool << " falsely flagged";
  }

  // ...and with the plant removed (same policies minus the delay) the
  // detector is quiet on everyone.
  const core::PoolAttribution selfish_attr(selfish_->chain, *registry_);
  const auto clean_reports = core::withholding_reports(
      selfish_->chain, selfish_attr, selfish_->observer.first_seen_map());
  for (const auto& r : clean_reports) {
    EXPECT_LT(r.flagged_rate, 0.05) << r.pool << " falsely flagged";
  }
}

std::string rendered(const core::AuditReport& report) {
  std::FILE* tmp = std::tmpfile();
  core::print_audit_report(report, tmp);
  const long size = std::ftell(tmp);
  std::string out(static_cast<std::size_t>(size), '\0');
  std::rewind(tmp);
  const std::size_t read = std::fread(out.data(), 1, out.size(), tmp);
  std::fclose(tmp);
  out.resize(read);
  return out;
}

TEST_F(DetectorPower, WithholdingAuditStageMatchesAcrossEngines) {
  // The new "withholding" stage through the full pipeline: present and
  // populated when a first-seen log is supplied, byte-identical between
  // the legacy oracle and the columnar engine, absent without the log.
  core::AuditOptions options;
  options.first_seen = &withheld_->observer.first_seen_map();

  options.engine = core::AuditEngine::kColumnar;
  const auto columnar =
      core::run_full_audit(withheld_->chain, *registry_, nullptr, options);
  EXPECT_TRUE(columnar.has_first_seen);
  ASSERT_FALSE(columnar.withholding.empty());

  options.engine = core::AuditEngine::kLegacy;
  const auto legacy =
      core::run_full_audit(withheld_->chain, *registry_, nullptr, options);
  EXPECT_TRUE(rendered(columnar) == rendered(legacy))
      << "withholding stage renders differently across audit engines";

  core::AuditOptions without;
  without.engine = core::AuditEngine::kColumnar;
  const auto quiet =
      core::run_full_audit(withheld_->chain, *registry_, nullptr, without);
  EXPECT_FALSE(quiet.has_first_seen);
  EXPECT_TRUE(quiet.withholding.empty());
  EXPECT_EQ(rendered(quiet).find("block withholding"), std::string::npos)
      << "withholding section rendered without a first-seen log";
}

TEST(FeeOnlyEngine, ZeroSubsidyCoinbasePaysPureFees) {
  // The fee-only regime (BitcoinF-style analyses): every coinbase reward
  // is exactly the block's fees, no subsidy. The control world at the
  // same heights collects a strictly positive subsidy on top.
  sim::EngineConfig config = power_config(Plant::kNone);
  config.duration = kDay / 2;
  config.fee_only = true;
  const sim::SimResult world = sim::Engine(config).run();
  ASSERT_GT(world.chain.size(), 20u);
  for (const btc::Block& block : world.chain.blocks()) {
    btc::Satoshi fees{};
    for (const btc::Transaction& tx : block.txs()) fees += tx.fee();
    EXPECT_EQ(block.coinbase().reward, fees) << "height " << block.height();
  }

  config.fee_only = false;
  const sim::SimResult control = sim::Engine(config).run();
  for (const btc::Block& block : control.chain.blocks()) {
    btc::Satoshi fees{};
    for (const btc::Transaction& tx : block.txs()) fees += tx.fee();
    EXPECT_EQ(block.coinbase().reward,
              fees + btc::block_subsidy(block.height()))
        << "height " << block.height();
  }
}

}  // namespace
}  // namespace cn

// Integration tests: simulate whole networks with planted behaviours and
// verify the audit toolkit (which sees only what a real auditor sees —
// the chain, coinbase markers, and the observer's Mempool view) both
// *detects* every planted misbehaviour and *stays silent* on honest
// pools.
#include <gtest/gtest.h>

#include "core/congestion.hpp"
#include "core/darkfee.hpp"
#include "core/pair_violations.hpp"
#include "core/ppe.hpp"
#include "core/prio_test.hpp"
#include "core/sppe.hpp"
#include "core/wallet_inference.hpp"
#include "sim/dataset.hpp"
#include "stats/descriptive.hpp"

namespace cn {
namespace {

/// One shared mid-size data-set-C world for the whole suite (building it
/// once keeps the suite fast).
class AuditWorld : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    world_ = new sim::SimResult(sim::make_dataset(sim::DatasetKind::kC, 1234, 0.8));
    registry_ = new btc::CoinbaseTagRegistry(btc::CoinbaseTagRegistry::paper_registry());
    attribution_ = new core::PoolAttribution(world_->chain, *registry_);
  }
  static void TearDownTestSuite() {
    delete attribution_;
    delete registry_;
    delete world_;
    attribution_ = nullptr;
    registry_ = nullptr;
    world_ = nullptr;
  }

  static sim::SimResult* world_;
  static btc::CoinbaseTagRegistry* registry_;
  static core::PoolAttribution* attribution_;
};

sim::SimResult* AuditWorld::world_ = nullptr;
btc::CoinbaseTagRegistry* AuditWorld::registry_ = nullptr;
core::PoolAttribution* AuditWorld::attribution_ = nullptr;

TEST_F(AuditWorld, AttributionMatchesConfiguredShares) {
  // Inferred hash shares should be near the configured ones.
  for (const auto& spec : world_->config.pools) {
    if (spec.anonymous) continue;
    const double inferred = attribution_->hash_share(spec.name);
    EXPECT_NEAR(inferred, spec.hash_share / 100.0, 0.05) << spec.name;
  }
  // ~1.3% unidentified.
  const double unknown = static_cast<double>(attribution_->unidentified_blocks()) /
                         static_cast<double>(attribution_->total_blocks());
  EXPECT_GT(unknown, 0.001);
  EXPECT_LT(unknown, 0.05);
}

TEST_F(AuditWorld, InferredWalletsAreTrueSubsets) {
  // Every inferred reward wallet must be one of the pool's real wallets.
  for (const auto& [pool, wallets] : world_->pool_wallets) {
    const auto& inferred = attribution_->wallets_of(pool);
    for (const auto& addr : inferred) {
      EXPECT_NE(std::find(wallets.begin(), wallets.end(), addr), wallets.end())
          << pool;
    }
  }
}

TEST_F(AuditWorld, PpeIsSmallUnderGbt) {
  const auto ppe = core::chain_ppe(world_->chain);
  ASSERT_GT(ppe.size(), 100u);
  const auto summary = stats::summarize(ppe);
  // Paper: mean 2.65%, 80% of blocks < 4.03%.
  EXPECT_LT(summary.mean, 8.0);
  EXPECT_GT(summary.mean, 0.1);  // not trivially zero either
}

TEST_F(AuditWorld, SelfishPoolsDetected) {
  for (const char* pool : {"F2Pool", "ViaBTC", "SlushPool"}) {
    const auto txs = core::self_interest_txs(world_->chain, *attribution_, pool);
    ASSERT_GT(txs.size(), 10u) << pool;
    const auto result = core::test_differential_prioritization(
        world_->chain, *attribution_, pool, txs);
    EXPECT_LT(result.p_accelerate, 0.001) << pool;
    EXPECT_GT(result.sppe, 50.0) << pool;
  }
}

TEST_F(AuditWorld, HonestPoolsNotFlagged) {
  for (const char* pool : {"Poolin", "AntPool", "Huobi", "Okex", "Binance Pool"}) {
    const auto txs = core::self_interest_txs(world_->chain, *attribution_, pool);
    if (txs.size() < 10) continue;  // not enough evidence either way
    const auto result = core::test_differential_prioritization(
        world_->chain, *attribution_, pool, txs);
    EXPECT_GT(result.p_accelerate, 0.001) << pool << " falsely flagged";
  }
}

TEST_F(AuditWorld, CollusionDetected) {
  // ViaBTC accelerates 1THash&58Coin's and SlushPool's transactions.
  for (const char* partner : {"1THash&58Coin", "SlushPool"}) {
    const auto txs = core::self_interest_txs(world_->chain, *attribution_, partner);
    ASSERT_GT(txs.size(), 5u) << partner;
    const auto result = core::test_differential_prioritization(
        world_->chain, *attribution_, "ViaBTC", txs);
    EXPECT_LT(result.p_accelerate, 0.01) << "ViaBTC + " << partner;
  }
}

TEST_F(AuditWorld, ScamTransactionsNotDifferentiallyTreated) {
  ASSERT_FALSE(world_->scam_address.is_null());
  const auto scam_refs = core::txs_paying_to(world_->chain, world_->scam_address);
  ASSERT_GT(scam_refs.size(), 10u);
  // No pool should show a significant effect in either direction.
  for (const auto& spec : world_->config.pools) {
    if (spec.anonymous || spec.hash_share < 5.0) continue;
    const auto result = core::test_differential_prioritization(
        world_->chain, *attribution_, spec.name, scam_refs);
    EXPECT_GT(result.p_accelerate, 0.001) << spec.name;
    EXPECT_GT(result.p_decelerate, 0.001) << spec.name;
  }
}

TEST_F(AuditWorld, DarkFeeDetectorFindsAcceleratedTxs) {
  const auto is_accel = [&](const btc::Txid& id) {
    return world_->acceleration.is_accelerated(id);
  };
  const auto buckets = core::darkfee_buckets(world_->chain, *attribution_,
                                             "BTC.com", is_accel,
                                             {100.0, 99.0, 90.0, 50.0, 1.0});
  ASSERT_EQ(buckets.size(), 5u);
  // The >=99 bucket is non-empty and dominated by accelerated txs.
  EXPECT_GT(buckets[1].tx_count, 0u);
  EXPECT_GT(buckets[1].accelerated_fraction(), 0.5);
  // Purity falls as the threshold loosens (Table 4 shape).
  EXPECT_LE(buckets[3].accelerated_fraction(), buckets[1].accelerated_fraction());
  EXPECT_LE(buckets[4].accelerated_fraction(), buckets[3].accelerated_fraction());
  EXPECT_LT(buckets[4].accelerated_fraction(), 0.2);
}

TEST_F(AuditWorld, DarkFeeRandomSampleControlClean) {
  const auto is_accel = [&](const btc::Txid& id) {
    return world_->acceleration.is_accelerated(id);
  };
  const auto hits = core::accelerated_in_random_sample(
      world_->chain, *attribution_, "BTC.com", is_accel, 1000, 99);
  // Paper: 0 of 1000; allow a whisker of noise.
  EXPECT_LE(hits, 20u);
}

TEST_F(AuditWorld, PairViolationsSmallAndEpsilonShrinksThem) {
  const auto first_seen = [&](const btc::Txid& id) {
    return world_->observer.first_seen(id);
  };
  const auto seen = core::collect_seen_txs(world_->chain, first_seen);
  ASSERT_GT(seen.size(), 10'000u);

  // A mid-run snapshot.
  const SimTime t = world_->config.duration / 2;
  const auto pending = core::pending_at(seen, world_->chain, t);
  ASSERT_GT(pending.size(), 50u);

  const auto eps0 = core::count_pair_violations(pending, 0, false);
  const auto eps10m = core::count_pair_violations(pending, 10 * kMinute, false);
  ASSERT_GT(eps0.predicted_pairs, 0u);
  EXPECT_GT(eps0.fraction(), 0.0);      // violations exist
  EXPECT_LT(eps0.fraction(), 0.5);      // but are the minority
  EXPECT_LE(eps10m.fraction(), eps0.fraction() + 0.02);  // eps filters them

  const auto no_cpfp = core::count_pair_violations(pending, 0, true);
  EXPECT_LE(no_cpfp.fraction(), eps0.fraction() + 0.02);
}

TEST(AuditCensorship, DecelerationTestCatchesPlantedCensor) {
  // Ablation: plant a censoring pool (refuses scam-wallet txs) and verify
  // the deceleration test flags it — the paper's §5.3 hypothesis, which
  // real 2020 pools did not exhibit.
  auto config = sim::dataset_config(sim::DatasetKind::kC, 77, 0.25);
  const btc::Address scam = btc::Address::derive("scam/twitter-wallet");
  // Make the scam window cover the whole run so the censor has c-blocks.
  config.workload.scam->start = 0;
  config.workload.scam->end = config.duration;
  config.workload.scam->txs_per_hour = 6.0;
  for (auto& spec : config.pools) {
    if (spec.name == "AntPool") spec.censored_wallets = {scam};
  }
  sim::SimResult world = sim::Engine(std::move(config)).run();

  const auto registry = btc::CoinbaseTagRegistry::paper_registry();
  const core::PoolAttribution attribution(world.chain, registry);
  const auto scam_refs = core::txs_paying_to(world.chain, world.scam_address);
  ASSERT_GT(scam_refs.size(), 50u);

  const auto censor = core::test_differential_prioritization(
      world.chain, attribution, "AntPool", scam_refs);
  EXPECT_LT(censor.p_decelerate, 0.001);
  EXPECT_EQ(censor.x, 0u);  // a censor never mines them

  // An honest pool in the same world is not flagged.
  const auto honest = core::test_differential_prioritization(
      world.chain, attribution, "Poolin", scam_refs);
  EXPECT_GT(honest.p_decelerate, 0.001);
}

TEST(AuditLegacyEra, LegacyBuilderDegradesPpe) {
  // Fig 1's contrast: pre-April-2016 coin-age ordering produces large
  // PPE; GBT produces small PPE.
  auto legacy_config = sim::dataset_config(sim::DatasetKind::kA, 5, 0.15);
  sim::set_all_builders(legacy_config, sim::BuilderKind::kLegacyPriority);
  const sim::SimResult legacy = sim::Engine(std::move(legacy_config)).run();

  auto gbt_config = sim::dataset_config(sim::DatasetKind::kA, 5, 0.15);
  const sim::SimResult gbt = sim::Engine(std::move(gbt_config)).run();

  const auto legacy_ppe = stats::summarize(core::chain_ppe(legacy.chain));
  const auto gbt_ppe = stats::summarize(core::chain_ppe(gbt.chain));
  EXPECT_GT(legacy_ppe.mean, 3.0 * gbt_ppe.mean);
  EXPECT_GT(legacy_ppe.mean, 15.0);
}

}  // namespace
}  // namespace cn

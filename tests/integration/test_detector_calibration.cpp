// Detector calibration against simulator ground truth.
//
// The audit toolkit's detectors (differential prioritization / SPPE,
// the Norm-III below-floor screen, pairwise selection violations) are
// validated here the only way a detector can be: against worlds where
// the true misbehaviour rates are KNOWN because we planted them.
//
// Two worlds share one config skeleton (4 pools, equal shares, a
// congestion burst so queue-jumping is observable):
//
//   planted — "Selfish" boosts its own-wallet transactions and courtesy-
//             boosts random low-fee strangers; "Tolerant" lifts the
//             1 sat/vB floor on 1 in 16 heights (LowFeeTolerancePolicy),
//             so its below-floor block rate has a known target of 1/16.
//             "Honest1"/"Honest2" follow the norms.
//   honest  — identical, with every plant removed. This world measures
//             the false-positive floor: every detector must stay quiet.
//
// Tolerances are deliberately statistical (binomial noise over a few
// hundred blocks), and cross-world assertions are relative where an
// absolute rate would be brittle.
#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>

#include "btc/coinbase_tags.hpp"
#include "core/congestion.hpp"
#include "core/neutrality.hpp"
#include "core/pair_violations.hpp"
#include "core/prio_test.hpp"
#include "core/wallet_inference.hpp"
#include "sim/engine.hpp"

namespace cn {
namespace {

constexpr double kAlpha = 0.001;
constexpr std::uint64_t kLowFeePeriod = 16;  ///< LowFeeTolerancePolicy default

sim::EngineConfig calibration_config(std::uint64_t seed, bool plant) {
  sim::EngineConfig config;
  config.seed = seed;
  config.duration = 4 * kDay;  // ~570 blocks

  sim::PoolSpec selfish;
  selfish.name = "Selfish";
  selfish.hash_share = 25.0;
  selfish.self_tx_weight = 3.0;
  if (plant) {
    selfish.selfish = true;
    selfish.courtesy_boost_per_block = 0.4;
  }

  sim::PoolSpec tolerant;
  tolerant.name = "Tolerant";
  tolerant.hash_share = 25.0;
  tolerant.tolerates_low_fee = plant;

  sim::PoolSpec honest1;
  honest1.name = "Honest1";
  honest1.hash_share = 25.0;

  sim::PoolSpec honest2;
  honest2.name = "Honest2";
  honest2.hash_share = 25.0;

  config.pools = {selfish, tolerant, honest1, honest2};

  // Enough below-floor supply that a lifted floor has something to admit,
  // and a mid-run congestion burst so boosted transactions demonstrably
  // jump a queue of better-paying strangers.
  config.workload.below_floor_fraction = 0.004;
  config.workload.self_interest_per_block = 0.6;
  config.workload.bursts.push_back({2 * kDay, 6 * kHour, 3.0});
  return config;
}

btc::CoinbaseTagRegistry calibration_registry() {
  btc::CoinbaseTagRegistry registry;
  for (const char* name : {"Selfish", "Tolerant", "Honest1", "Honest2"}) {
    registry.add(name, btc::conventional_marker(name));
  }
  return registry;
}

/// Both worlds are expensive to simulate; build each once for the suite.
class DetectorCalibration : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    registry_ = new btc::CoinbaseTagRegistry(calibration_registry());
    planted_ = new sim::SimResult(sim::Engine(calibration_config(991, true)).run());
    honest_ = new sim::SimResult(sim::Engine(calibration_config(991, false)).run());
    planted_attr_ = new core::PoolAttribution(planted_->chain, *registry_);
    honest_attr_ = new core::PoolAttribution(honest_->chain, *registry_);
  }
  static void TearDownTestSuite() {
    delete honest_attr_;
    delete planted_attr_;
    delete honest_;
    delete planted_;
    delete registry_;
    honest_attr_ = nullptr;
    planted_attr_ = nullptr;
    honest_ = nullptr;
    planted_ = nullptr;
    registry_ = nullptr;
  }

  static std::vector<core::SeenTx> seen_txs(const sim::SimResult& world) {
    return core::collect_seen_txs(world.chain, [&](const btc::Txid& id) {
      return world.observer.first_seen(id);
    });
  }

  static const core::NeutralityReport* report_of(
      const std::vector<core::NeutralityReport>& reports,
      const std::string& pool) {
    for (const auto& r : reports) {
      if (r.pool == pool) return &r;
    }
    return nullptr;
  }

  static sim::SimResult* planted_;
  static sim::SimResult* honest_;
  static btc::CoinbaseTagRegistry* registry_;
  static core::PoolAttribution* planted_attr_;
  static core::PoolAttribution* honest_attr_;
};

sim::SimResult* DetectorCalibration::planted_ = nullptr;
sim::SimResult* DetectorCalibration::honest_ = nullptr;
btc::CoinbaseTagRegistry* DetectorCalibration::registry_ = nullptr;
core::PoolAttribution* DetectorCalibration::planted_attr_ = nullptr;
core::PoolAttribution* DetectorCalibration::honest_attr_ = nullptr;

TEST_F(DetectorCalibration, WorldsAreComparable) {
  // Sanity on the substrate itself before trusting any calibration
  // number: both worlds mined a few hundred blocks and every pool is
  // attributable (all four write conventional markers).
  for (const sim::SimResult* world : {planted_, honest_}) {
    EXPECT_GT(world->chain.size(), 300u);
    EXPECT_GT(world->chain.total_tx_count(), 20'000u);
  }
  for (const auto* attr : {planted_attr_, honest_attr_}) {
    EXPECT_EQ(attr->unidentified_blocks(), 0u);
    for (const char* pool : {"Selfish", "Tolerant", "Honest1", "Honest2"}) {
      EXPECT_NEAR(attr->hash_share(pool), 0.25, 0.08) << pool;
    }
  }
}

TEST_F(DetectorCalibration, SelfDealingSppeSignRecovered) {
  // The planted self-dealer: strongly positive SPPE at a decisive p.
  const auto own = core::self_interest_txs(planted_->chain, *planted_attr_,
                                           "Selfish");
  ASSERT_GT(own.size(), 30u);
  const auto test = core::test_differential_prioritization(
      planted_->chain, *planted_attr_, "Selfish", own);
  EXPECT_LT(test.p_accelerate, kAlpha);
  EXPECT_GT(test.sppe, 50.0);

  // Same pool, same policy knobs minus the plant: sign gone, p calm.
  const auto own_honest = core::self_interest_txs(honest_->chain, *honest_attr_,
                                                  "Selfish");
  ASSERT_GT(own_honest.size(), 30u);
  const auto control = core::test_differential_prioritization(
      honest_->chain, *honest_attr_, "Selfish", own_honest);
  EXPECT_GT(control.p_accelerate, kAlpha);
  EXPECT_LT(control.sppe, 25.0);
}

TEST_F(DetectorCalibration, FalsePositiveFloorOnHonestPools) {
  // Norm-followers must not be flagged — in either world.
  struct Case {
    const sim::SimResult* world;
    const core::PoolAttribution* attr;
    std::vector<const char*> pools;
  };
  const Case cases[] = {
      {planted_, planted_attr_, {"Honest1", "Honest2", "Tolerant"}},
      {honest_, honest_attr_, {"Selfish", "Tolerant", "Honest1", "Honest2"}},
  };
  for (const Case& c : cases) {
    for (const char* pool : c.pools) {
      const auto own = core::self_interest_txs(c.world->chain, *c.attr, pool);
      if (own.size() < 10) continue;
      const auto test = core::test_differential_prioritization(
          c.world->chain, *c.attr, pool, own);
      EXPECT_GT(test.p_accelerate, kAlpha) << pool << " falsely flagged";
    }
  }
}

TEST_F(DetectorCalibration, NormThreeScreenBoundsPlantedFloorRate) {
  // LowFeeTolerancePolicy lifts the floor on 1 height in kLowFeePeriod,
  // so 1/16 is a hard UPPER bound on the below-floor block rate: a block
  // mined with the floor in place cannot contain a non-CPFP sub-floor
  // transaction at all. The measured rate sits well below that bound —
  // sub-floor offers are the first the mempool evicts and the last the
  // template admits, so a lifted block only includes one when both the
  // backlog and the block have room — but it must be strictly positive
  // and cleanly separated from the norm-followers' zero.
  const auto reports =
      core::neutrality_reports(planted_->chain, *planted_attr_);
  const auto* tolerant = report_of(reports, "Tolerant");
  ASSERT_NE(tolerant, nullptr);
  const double planted_rate = 1.0 / static_cast<double>(kLowFeePeriod);
  EXPECT_GT(tolerant->below_floor_block_rate, 0.003);
  EXPECT_LT(tolerant->below_floor_block_rate, planted_rate + 0.02);

  // Norm-followers sit at (essentially) zero — the CPFP-rescued-parent
  // exemption keeps organic package inclusion off this screen.
  for (const char* pool : {"Honest1", "Honest2"}) {
    const auto* r = report_of(reports, pool);
    ASSERT_NE(r, nullptr) << pool;
    EXPECT_LT(r->below_floor_block_rate, 0.015) << pool;
  }

  // And with the plant removed the rate collapses.
  const auto honest_reports =
      core::neutrality_reports(honest_->chain, *honest_attr_);
  const auto* control = report_of(honest_reports, "Tolerant");
  ASSERT_NE(control, nullptr);
  EXPECT_LT(control->below_floor_block_rate, 0.015);
}

TEST_F(DetectorCalibration, PairViolationsElevatedByPlantedBoosts) {
  // Boosting (self-interest + courtesy) commits later-arriving,
  // lower-paying transactions over earlier better-paying ones — exactly
  // the pairs Fig 6 counts. The planted world must show materially more
  // of them than the honest control over the same workload.
  const auto planted_seen = seen_txs(*planted_);
  const auto honest_seen = seen_txs(*honest_);
  ASSERT_GT(planted_seen.size(), 10'000u);
  ASSERT_GT(honest_seen.size(), 10'000u);

  const auto planted_stats =
      core::count_pair_violations(planted_seen, 0, /*exclude_cpfp=*/true);
  const auto honest_stats =
      core::count_pair_violations(honest_seen, 0, /*exclude_cpfp=*/true);
  ASSERT_GT(planted_stats.predicted_pairs, 1000u);
  ASSERT_GT(honest_stats.predicted_pairs, 1000u);
  EXPECT_GT(planted_stats.fraction(), honest_stats.fraction() * 1.5);
  // The honest world's residual violations (propagation races) stay low.
  EXPECT_LT(honest_stats.fraction(), 0.20);
}

TEST_F(DetectorCalibration, ViolationsAttributeToTheBoostingPool) {
  // violations_by_block charges each violating pair to the block that
  // committed the queue-jumper; folded by pool, the planted booster must
  // out-violate the honest pools per block mined.
  const auto by_block = core::violations_by_block(seen_txs(*planted_), 0,
                                                  /*exclude_cpfp=*/true);
  std::unordered_map<std::string, double> per_pool;
  for (const auto& [height, count] : by_block) {
    const auto pool = planted_attr_->pool_of(height);
    if (pool.has_value()) per_pool[*pool] += static_cast<double>(count);
  }
  const auto rate = [&](const std::string& pool) {
    const auto blocks = planted_attr_->blocks_of(pool);
    return blocks == 0 ? 0.0 : per_pool[pool] / static_cast<double>(blocks);
  };
  const double selfish_rate = rate("Selfish");
  const double honest_rate =
      std::max(rate("Honest1"), rate("Honest2"));
  EXPECT_GT(selfish_rate, honest_rate * 1.5);
}

TEST_F(DetectorCalibration, NeutralityScorecardSeparatesWorlds) {
  // Composite check: in the planted world the misbehaving pools score
  // visibly below the norm-followers; in the honest world everyone is
  // high and close together.
  const auto planted_reports =
      core::neutrality_reports(planted_->chain, *planted_attr_);
  const auto* selfish = report_of(planted_reports, "Selfish");
  const auto* honest1 = report_of(planted_reports, "Honest1");
  ASSERT_NE(selfish, nullptr);
  ASSERT_NE(honest1, nullptr);
  EXPECT_TRUE(selfish->self_dealing_flagged);
  EXPECT_LT(selfish->score, honest1->score - 10.0);

  const auto honest_reports =
      core::neutrality_reports(honest_->chain, *honest_attr_);
  for (const auto& r : honest_reports) {
    EXPECT_FALSE(r.self_dealing_flagged) << r.pool;
    EXPECT_GT(r.score, 85.0) << r.pool;
  }
}

}  // namespace
}  // namespace cn

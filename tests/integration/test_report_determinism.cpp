// Determinism of the audit with observability enabled.
//
// The obs layer must be write-only with respect to results: the rendered
// audit report has to come out byte-identical whatever the thread count,
// however often the audit has already run in this process, and whether
// metrics are being recorded or not. The metrics document itself must be
// schema-stable — sorted keys, no timestamps, identical key set across
// runs — so diffs between two runs are pure value deltas.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "btc/coinbase_tags.hpp"
#include "core/audit_pipeline.hpp"
#include "obs/export.hpp"
#include "obs/registry.hpp"
#include "sim/dataset.hpp"

namespace cn {
namespace {

std::string rendered(const core::AuditReport& report) {
  std::FILE* tmp = std::tmpfile();
  core::print_audit_report(report, tmp);
  const long size = std::ftell(tmp);
  std::string out(static_cast<std::size_t>(size), '\0');
  std::rewind(tmp);
  const std::size_t read = std::fread(out.data(), 1, out.size(), tmp);
  std::fclose(tmp);
  out.resize(read);
  return out;
}

/// Keys of a flat metrics document, in file order (good enough for a
/// schema check: every key in this JSON is a quoted string followed by
/// a colon).
std::vector<std::string> json_keys(const std::string& doc) {
  std::vector<std::string> keys;
  for (std::size_t i = 0; i < doc.size(); ++i) {
    if (doc[i] != '"') continue;
    const std::size_t end = doc.find('"', i + 1);
    if (end == std::string::npos) break;
    std::size_t after = end + 1;
    while (after < doc.size() && (doc[after] == ' ' || doc[after] == '\n')) ++after;
    if (after < doc.size() && doc[after] == ':') {
      keys.push_back(doc.substr(i + 1, end - i - 1));
    }
    i = end;
  }
  return keys;
}

class ReportDeterminism : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    world_ = new sim::SimResult(sim::make_dataset(sim::DatasetKind::kA, 7, 0.35));
  }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
  }

  static std::string audit_bytes(unsigned threads) {
    core::AuditOptions options;
    options.threads = threads;
    options.watch_addresses.push_back(world_->scam_address);
    const auto registry = btc::CoinbaseTagRegistry::paper_registry();
    return rendered(core::run_full_audit(world_->chain, registry, options));
  }

  static sim::SimResult* world_;
};

sim::SimResult* ReportDeterminism::world_ = nullptr;

TEST_F(ReportDeterminism, ReportBytesStableAcrossThreadCounts) {
  obs::set_enabled(true);
  const std::string serial = audit_bytes(1);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, audit_bytes(4)) << "threads=4 changed the report";
  EXPECT_EQ(serial, audit_bytes(0)) << "threads=hw changed the report";
}

TEST_F(ReportDeterminism, ReportBytesStableAcrossRepeatsAndObsSwitch) {
  obs::set_enabled(true);
  const std::string first = audit_bytes(0);
  const std::string second = audit_bytes(0);
  EXPECT_EQ(first, second) << "re-running the audit changed the report";

  obs::set_enabled(false);
  const std::string dark = audit_bytes(0);
  obs::set_enabled(true);
  EXPECT_EQ(first, dark) << "disabling observability changed the report";
}

TEST_F(ReportDeterminism, MetricsDocumentIsSchemaStable) {
  obs::set_enabled(true);
  (void)audit_bytes(0);
  const std::string doc1 = obs::metrics_json_string();
  (void)audit_bytes(4);
  const std::string doc2 = obs::metrics_json_string();

  // Same key set in the same order on every scrape: keys are sorted by
  // the snapshot, and counters only ever accumulate — they never appear
  // or vanish between runs once touched.
  const auto keys1 = json_keys(doc1);
  const auto keys2 = json_keys(doc2);
  ASSERT_FALSE(keys1.empty());
  EXPECT_EQ(keys1, keys2);
  // Metric names are sorted within each section (counters, gauges,
  // histograms), not across the whole file. The stage metrics land one
  // suffix per section, so per-suffix monotonicity is the sortedness
  // guarantee we can and should hold the exporter to.
  for (const std::string suffix : {".runs", ".last_seconds", ".seconds"}) {
    std::vector<std::string> stage_keys;
    for (const auto& k : keys1) {
      if (k.rfind("audit.stage.", 0) == 0 &&
          k.size() >= suffix.size() &&
          k.compare(k.size() - suffix.size(), suffix.size(), suffix) == 0) {
        stage_keys.push_back(k);
      }
    }
    EXPECT_GE(stage_keys.size(), 7u) << suffix;
    EXPECT_TRUE(std::is_sorted(stage_keys.begin(), stage_keys.end()))
        << "stage metrics with suffix " << suffix << " not sorted";
  }

  // No timestamps (or any other wall-clock residue) in the default doc.
  EXPECT_EQ(doc1.find("time"), std::string::npos);
  EXPECT_EQ(doc1.find("date"), std::string::npos);

  // The document is self-labelling.
  EXPECT_NE(doc1.find("\"cn.obs.metrics/1\""), std::string::npos);

  // Audit instrumentation present: run counter plus every stage.
  EXPECT_NE(doc1.find("\"audit.runs\""), std::string::npos);
  for (const std::string& stage : core::audit_stage_names()) {
    EXPECT_NE(doc1.find("\"audit.stage." + stage + ".runs\""),
              std::string::npos)
        << stage;
  }
  EXPECT_NE(doc2.find("\"util.thread_pool.task_seconds\""), std::string::npos);
}

}  // namespace
}  // namespace cn

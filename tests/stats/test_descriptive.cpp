#include "stats/descriptive.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace cn::stats {
namespace {

TEST(Descriptive, MeanOfEmptyIsZero) {
  EXPECT_EQ(mean({}), 0.0);
}

TEST(Descriptive, MeanBasic) {
  const std::vector<double> v = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
}

TEST(Descriptive, KahanSumHandlesCancellation) {
  // Naive summation loses the small terms entirely.
  std::vector<double> v;
  v.push_back(1e16);
  for (int i = 0; i < 10'000; ++i) v.push_back(1.0);
  v.push_back(-1e16);
  EXPECT_DOUBLE_EQ(kahan_sum(v), 10'000.0);
}

TEST(Descriptive, SampleStddev) {
  const std::vector<double> v = {2, 4, 4, 4, 5, 5, 7, 9};
  // Population stddev of this classic example is 2; sample stddev larger.
  EXPECT_NEAR(population_stddev(v), 2.0, 1e-12);
  EXPECT_NEAR(sample_stddev(v), 2.138, 0.001);
}

TEST(Descriptive, StddevDegenerateCases) {
  EXPECT_EQ(sample_stddev({}), 0.0);
  const std::vector<double> one = {5.0};
  EXPECT_EQ(sample_stddev(one), 0.0);
  EXPECT_EQ(population_stddev(one), 0.0);
}

TEST(Descriptive, QuantileInterpolates) {
  const std::vector<double> v = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0 / 3.0), 20.0);
}

TEST(Descriptive, QuantileUnsortedInput) {
  const std::vector<double> v = {40, 10, 30, 20};
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 25.0);
}

TEST(Descriptive, QuantileSingleElement) {
  const std::vector<double> v = {7.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.73), 7.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 7.0);
}

TEST(Descriptive, MedianOddEven) {
  const std::vector<double> odd = {3, 1, 2};
  const std::vector<double> even = {4, 1, 3, 2};
  EXPECT_DOUBLE_EQ(median(odd), 2.0);
  EXPECT_DOUBLE_EQ(median(even), 2.5);
}

TEST(Descriptive, SummaryMatchesComponents) {
  const std::vector<double> v = {5, 1, 4, 2, 3};
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.p25, 2.0);
  EXPECT_DOUBLE_EQ(s.p75, 4.0);
}

TEST(Descriptive, SummaryOfEmpty) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

// Property sweep: quantiles are monotone in q for arbitrary data.
class QuantileMonotone : public ::testing::TestWithParam<int> {};

TEST_P(QuantileMonotone, MonotoneInQ) {
  std::vector<double> v;
  unsigned state = static_cast<unsigned>(GetParam());
  for (int i = 0; i < 100; ++i) {
    state = state * 1664525u + 1013904223u;
    v.push_back(static_cast<double>(state % 1000));
  }
  double prev = quantile(v, 0.0);
  for (int step = 1; step <= 20; ++step) {
    const double q = static_cast<double>(step) / 20.0;
    const double cur = quantile(v, q);
    EXPECT_GE(cur, prev) << "q=" << q;
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantileMonotone, ::testing::Range(1, 9));

}  // namespace
}  // namespace cn::stats

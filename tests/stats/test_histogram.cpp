#include "stats/histogram.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace cn::stats {
namespace {

TEST(Histogram, BinsValuesCorrectly) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.0);   // bin 0
  h.add(1.9);   // bin 0
  h.add(2.0);   // bin 1
  h.add(9.99);  // bin 4
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, UnderAndOverflow) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);
  h.add(10.0);  // hi is exclusive
  h.add(100.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(Histogram, FractionIncludesOutliers) {
  Histogram h(0.0, 10.0, 2);
  h.add(1.0);
  h.add(20.0);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.5);
}

TEST(Histogram, AddAll) {
  Histogram h(0.0, 4.0, 4);
  const std::vector<double> v = {0.5, 1.5, 2.5, 3.5};
  h.add_all(v);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(h.count(i), 1u);
}

TEST(LogHistogram, GeometricEdges) {
  LogHistogram h(1.0, 1000.0, 3);
  EXPECT_NEAR(h.bin_lo(0), 1.0, 1e-9);
  EXPECT_NEAR(h.bin_hi(0), 10.0, 1e-9);
  EXPECT_NEAR(h.bin_lo(2), 100.0, 1e-6);
  EXPECT_NEAR(h.bin_hi(2), 1000.0, 1e-6);
}

TEST(LogHistogram, BinsSpanningOrdersOfMagnitude) {
  LogHistogram h(1.0, 1000.0, 3);
  h.add(2.0);    // bin 0
  h.add(50.0);   // bin 1
  h.add(500.0);  // bin 2
  h.add(0.5);    // out of range (below)
  h.add(-3.0);   // non-positive: dropped
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.total(), 5u);
}

}  // namespace
}  // namespace cn::stats

#include "stats/rank.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace cn::stats {
namespace {

TEST(PercentileRank, EndpointsAndMidpoint) {
  EXPECT_DOUBLE_EQ(percentile_rank(0, 5), 0.0);
  EXPECT_DOUBLE_EQ(percentile_rank(4, 5), 100.0);
  EXPECT_DOUBLE_EQ(percentile_rank(2, 5), 50.0);
}

TEST(PercentileRank, SingleItemIsZero) {
  EXPECT_DOUBLE_EQ(percentile_rank(0, 1), 0.0);
}

TEST(DescendingOrder, SortsByKeyDescending) {
  const std::vector<double> keys = {1.0, 5.0, 3.0};
  const auto order = descending_order(keys);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1u);  // 5.0 first
  EXPECT_EQ(order[1], 2u);  // 3.0
  EXPECT_EQ(order[2], 0u);  // 1.0
}

TEST(DescendingOrder, TiesKeepOriginalOrder) {
  const std::vector<double> keys = {2.0, 2.0, 2.0};
  const auto order = descending_order(keys);
  EXPECT_EQ(order[0], 0u);
  EXPECT_EQ(order[1], 1u);
  EXPECT_EQ(order[2], 2u);
}

TEST(PredictedPositions, InverseOfOrder) {
  const std::vector<double> keys = {1.0, 5.0, 3.0, 4.0};
  const auto pos = predicted_positions(keys);
  // 5.0 -> rank 0, 4.0 -> 1, 3.0 -> 2, 1.0 -> 3.
  EXPECT_EQ(pos[0], 3u);
  EXPECT_EQ(pos[1], 0u);
  EXPECT_EQ(pos[2], 2u);
  EXPECT_EQ(pos[3], 1u);
}

TEST(PredictedPositions, AlreadySortedIsIdentity) {
  const std::vector<double> keys = {9.0, 7.0, 5.0, 3.0};
  const auto pos = predicted_positions(keys);
  for (std::size_t i = 0; i < keys.size(); ++i) EXPECT_EQ(pos[i], i);
}

TEST(PredictedPositions, EmptyInput) {
  EXPECT_TRUE(predicted_positions({}).empty());
}

// Property: predicted_positions is always a permutation.
class PermutationProperty : public ::testing::TestWithParam<int> {};

TEST_P(PermutationProperty, IsPermutation) {
  std::vector<double> keys;
  unsigned state = static_cast<unsigned>(GetParam()) * 2654435761u;
  for (int i = 0; i < 50; ++i) {
    state = state * 1664525u + 1013904223u;
    keys.push_back(static_cast<double>(state % 17));  // plenty of ties
  }
  const auto pos = predicted_positions(keys);
  std::vector<bool> seen(pos.size(), false);
  for (std::size_t p : pos) {
    ASSERT_LT(p, pos.size());
    EXPECT_FALSE(seen[p]);
    seen[p] = true;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PermutationProperty, ::testing::Range(1, 11));

}  // namespace
}  // namespace cn::stats

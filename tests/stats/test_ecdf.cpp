#include "stats/ecdf.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace cn::stats {
namespace {

TEST(Ecdf, EmptyEvaluatesToZero) {
  Ecdf e;
  EXPECT_TRUE(e.empty());
  EXPECT_EQ(e.evaluate(5.0), 0.0);
}

TEST(Ecdf, EvaluateStepFunction) {
  const std::vector<double> v = {1, 2, 3, 4};
  const Ecdf e{std::span<const double>(v)};
  EXPECT_DOUBLE_EQ(e.evaluate(0.5), 0.0);
  EXPECT_DOUBLE_EQ(e.evaluate(1.0), 0.25);
  EXPECT_DOUBLE_EQ(e.evaluate(2.5), 0.5);
  EXPECT_DOUBLE_EQ(e.evaluate(4.0), 1.0);
  EXPECT_DOUBLE_EQ(e.evaluate(100.0), 1.0);
}

TEST(Ecdf, SurvivalComplementsEvaluate) {
  const std::vector<double> v = {1, 2, 3, 4, 5};
  const Ecdf e{std::span<const double>(v)};
  for (double x : {0.0, 2.0, 3.5, 6.0}) {
    EXPECT_DOUBLE_EQ(e.evaluate(x) + e.survival(x), 1.0);
  }
}

TEST(Ecdf, UnsortedInputIsSorted) {
  const std::vector<double> v = {4, 1, 3, 2};
  const Ecdf e{std::span<const double>(v)};
  EXPECT_DOUBLE_EQ(e.min(), 1.0);
  EXPECT_DOUBLE_EQ(e.max(), 4.0);
  EXPECT_DOUBLE_EQ(e.quantile(0.5), 2.5);
}

TEST(Ecdf, DuplicatesHandled) {
  const std::vector<double> v = {2, 2, 2, 5};
  const Ecdf e{std::span<const double>(v)};
  EXPECT_DOUBLE_EQ(e.evaluate(2.0), 0.75);
  EXPECT_DOUBLE_EQ(e.evaluate(1.9), 0.0);
}

TEST(Ecdf, PointsCoverFullRange) {
  std::vector<double> v;
  for (int i = 0; i < 2000; ++i) v.push_back(static_cast<double>(i));
  const Ecdf e{std::span<const double>(v)};
  const auto pts = e.points(100);
  ASSERT_FALSE(pts.empty());
  EXPECT_LE(pts.size(), 102u);
  EXPECT_DOUBLE_EQ(pts.front().x, 0.0);
  EXPECT_DOUBLE_EQ(pts.back().x, 1999.0);
  EXPECT_DOUBLE_EQ(pts.back().f, 1.0);
  // Monotone in both coordinates.
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GE(pts[i].x, pts[i - 1].x);
    EXPECT_GE(pts[i].f, pts[i - 1].f);
  }
}

TEST(Ecdf, QuantileEvaluateConsistency) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(static_cast<double>(i));
  const Ecdf e{std::span<const double>(v)};
  for (double q : {0.1, 0.25, 0.5, 0.9}) {
    const double x = e.quantile(q);
    EXPECT_NEAR(e.evaluate(x), q, 0.02) << "q=" << q;
  }
}

}  // namespace
}  // namespace cn::stats

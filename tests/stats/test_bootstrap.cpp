#include "stats/bootstrap.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "stats/descriptive.hpp"
#include "util/rng.hpp"

namespace cn::stats {
namespace {

TEST(Bootstrap, PointEqualsStatisticOnSample) {
  const std::vector<double> v = {1, 2, 3, 4, 5};
  const auto ci = bootstrap_mean_ci(v, 0.95, 200, 7);
  EXPECT_DOUBLE_EQ(ci.point, 3.0);
  EXPECT_EQ(ci.resamples, 200u);
}

TEST(Bootstrap, IntervalBracketsPoint) {
  Rng rng(3);
  std::vector<double> v;
  for (int i = 0; i < 500; ++i) v.push_back(rng.normal(10.0, 2.0));
  const auto ci = bootstrap_mean_ci(v);
  EXPECT_LE(ci.lo, ci.point);
  EXPECT_GE(ci.hi, ci.point);
  // ~95% CI half-width for n=500, sigma=2: ~0.18. Allow slack.
  EXPECT_LT(ci.hi - ci.lo, 0.6);
  EXPECT_GT(ci.hi - ci.lo, 0.1);
}

TEST(Bootstrap, CoversTrueMeanUsually) {
  // Repeat over seeds; the 95% CI should cover mu=5 nearly always.
  int covered = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed * 99);
    std::vector<double> v;
    for (int i = 0; i < 200; ++i) v.push_back(rng.exponential(0.2));  // mean 5
    const auto ci = bootstrap_mean_ci(v, 0.95, 400, seed);
    if (ci.lo <= 5.0 && 5.0 <= ci.hi) ++covered;
  }
  EXPECT_GE(covered, 17);  // ~19 expected
}

TEST(Bootstrap, DeterministicForSeed) {
  const std::vector<double> v = {3, 1, 4, 1, 5, 9, 2, 6};
  const auto a = bootstrap_mean_ci(v, 0.9, 300, 42);
  const auto b = bootstrap_mean_ci(v, 0.9, 300, 42);
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
}

TEST(Bootstrap, CustomStatistic) {
  // 1..20 plus one huge outlier; the median CI must not chase the outlier
  // (with a reasonable sample size, unlike the mean's CI).
  std::vector<double> v;
  for (int i = 1; i <= 20; ++i) v.push_back(static_cast<double>(i));
  v.push_back(1e6);
  const auto med_ci = bootstrap_ci(
      v, [](std::span<const double> s) { return median(s); }, 0.95, 400, 5);
  EXPECT_DOUBLE_EQ(med_ci.point, 11.0);
  EXPECT_LT(med_ci.hi, 21.0);
  const auto mean_ci = bootstrap_mean_ci(v, 0.95, 400, 5);
  EXPECT_GT(mean_ci.hi, 1000.0);  // the mean does chase it
}

TEST(Bootstrap, WiderIntervalAtHigherConfidence) {
  Rng rng(11);
  std::vector<double> v;
  for (int i = 0; i < 300; ++i) v.push_back(rng.normal(0.0, 1.0));
  const auto c90 = bootstrap_mean_ci(v, 0.90, 500, 3);
  const auto c99 = bootstrap_mean_ci(v, 0.99, 500, 3);
  EXPECT_GT(c99.hi - c99.lo, c90.hi - c90.lo);
}

}  // namespace
}  // namespace cn::stats

#include "stats/ks.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace cn::stats {
namespace {

TEST(KolmogorovSf, KnownValues) {
  // Q(1.3581) ~ 0.05 ; Q(1.2238) ~ 0.10 ; Q(1.6276) ~ 0.01.
  EXPECT_NEAR(kolmogorov_sf(1.3581), 0.05, 0.002);
  EXPECT_NEAR(kolmogorov_sf(1.2238), 0.10, 0.003);
  EXPECT_NEAR(kolmogorov_sf(1.6276), 0.01, 0.001);
  EXPECT_DOUBLE_EQ(kolmogorov_sf(0.0), 1.0);
  EXPECT_LT(kolmogorov_sf(3.0), 1e-7);
}

TEST(KsTwoSample, IdenticalSamplesHaveZeroDistance) {
  const std::vector<double> a = {1, 2, 3, 4, 5};
  const auto r = ks_two_sample(a, a);
  EXPECT_DOUBLE_EQ(r.statistic, 0.0);
  EXPECT_DOUBLE_EQ(r.p_value, 1.0);
}

TEST(KsTwoSample, DisjointSamplesHaveDistanceOne) {
  const std::vector<double> a = {1, 2, 3};
  const std::vector<double> b = {10, 11, 12};
  const auto r = ks_two_sample(a, b);
  EXPECT_DOUBLE_EQ(r.statistic, 1.0);
  EXPECT_LT(r.p_value, 0.1);
}

TEST(KsTwoSample, SameDistributionNotRejected) {
  Rng rng(5);
  std::vector<double> a, b;
  for (int i = 0; i < 2000; ++i) a.push_back(rng.lognormal(1.0, 0.7));
  for (int i = 0; i < 2000; ++i) b.push_back(rng.lognormal(1.0, 0.7));
  const auto r = ks_two_sample(a, b);
  EXPECT_LT(r.statistic, 0.06);
  EXPECT_GT(r.p_value, 0.01);
}

TEST(KsTwoSample, ShiftedDistributionRejected) {
  Rng rng(7);
  std::vector<double> a, b;
  for (int i = 0; i < 2000; ++i) a.push_back(rng.normal(0.0, 1.0));
  for (int i = 0; i < 2000; ++i) b.push_back(rng.normal(0.5, 1.0));
  const auto r = ks_two_sample(a, b);
  EXPECT_GT(r.statistic, 0.15);
  EXPECT_LT(r.p_value, 1e-6);
}

TEST(KsTwoSample, UnequalSampleSizes) {
  Rng rng(9);
  std::vector<double> a, b;
  for (int i = 0; i < 5000; ++i) a.push_back(rng.uniform01());
  for (int i = 0; i < 100; ++i) b.push_back(rng.uniform01());
  const auto r = ks_two_sample(a, b);
  EXPECT_EQ(r.n1, 5000u);
  EXPECT_EQ(r.n2, 100u);
  EXPECT_GT(r.p_value, 0.01);
}

// Calibration sweep: under H0 the p-value should exceed 0.05 in the
// overwhelming majority of seeds.
class KsCalibration : public ::testing::TestWithParam<int> {};

TEST_P(KsCalibration, NullNotOverRejected) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 1337);
  std::vector<double> a, b;
  for (int i = 0; i < 800; ++i) a.push_back(rng.exponential(1.0));
  for (int i = 0; i < 800; ++i) b.push_back(rng.exponential(1.0));
  const auto r = ks_two_sample(a, b);
  EXPECT_GT(r.p_value, 0.001);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KsCalibration, ::testing::Range(1, 13));

}  // namespace
}  // namespace cn::stats

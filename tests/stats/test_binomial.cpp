#include "stats/binomial.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace cn::stats {
namespace {

TEST(BinomialPmf, SumsToOne) {
  for (double p : {0.1, 0.5, 0.9}) {
    double sum = 0.0;
    for (std::uint64_t k = 0; k <= 20; ++k) sum += binomial_pmf(k, 20, p);
    EXPECT_NEAR(sum, 1.0, 1e-12) << "p=" << p;
  }
}

TEST(BinomialPmf, MatchesHandComputedValues) {
  // Binomial(4, 0.5): pmf = {1,4,6,4,1}/16.
  EXPECT_NEAR(binomial_pmf(0, 4, 0.5), 1.0 / 16, 1e-14);
  EXPECT_NEAR(binomial_pmf(2, 4, 0.5), 6.0 / 16, 1e-14);
  EXPECT_NEAR(binomial_pmf(4, 4, 0.5), 1.0 / 16, 1e-14);
}

TEST(BinomialPmf, DegenerateP) {
  EXPECT_DOUBLE_EQ(binomial_pmf(0, 10, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(1, 10, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(10, 10, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(9, 10, 1.0), 0.0);
}

TEST(BinomialCdf, BasicIdentities) {
  EXPECT_DOUBLE_EQ(binomial_cdf(20, 20, 0.3), 1.0);
  EXPECT_NEAR(binomial_cdf(0, 10, 0.5), std::pow(0.5, 10), 1e-14);
}

TEST(BinomialCdf, ComplementsSurvival) {
  for (std::uint64_t k = 0; k <= 30; ++k) {
    const double cdf = binomial_cdf(k, 30, 0.37);
    const double sf = binomial_sf(k + 1, 30, 0.37);
    EXPECT_NEAR(cdf + sf, 1.0, 1e-10) << "k=" << k;
  }
}

TEST(BinomialSf, KnownValue) {
  // Pr[B >= 8 | n=10, p=0.5] = (45 + 10 + 1)/1024.
  EXPECT_NEAR(binomial_sf(8, 10, 0.5), 56.0 / 1024.0, 1e-12);
}

TEST(BinomialBoundaries, KAtZeroAndBeyondN) {
  // sf(0) counts the whole support; anything past n is impossible.
  for (double p : {0.0, 0.3, 1.0}) {
    EXPECT_DOUBLE_EQ(binomial_sf(0, 25, p), 1.0) << "p=" << p;
    EXPECT_DOUBLE_EQ(binomial_sf(26, 25, p), 0.0) << "p=" << p;
  }
  EXPECT_DOUBLE_EQ(binomial_cdf(25, 25, 0.3), 1.0);
  EXPECT_DOUBLE_EQ(binomial_cdf(40, 25, 0.3), 1.0);  // k >= n saturates
}

TEST(BinomialBoundaries, DegenerateP) {
  // p=0: all mass at k=0. p=1: all mass at k=n. The log-space path must
  // not turn these into NaNs (log(0) terms are short-circuited).
  EXPECT_DOUBLE_EQ(binomial_cdf(0, 10, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_cdf(5, 10, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_sf(1, 10, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(binomial_sf(5, 10, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(binomial_cdf(9, 10, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(binomial_cdf(10, 10, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_sf(10, 10, 1.0), 1.0);
  // n=1 is the smallest legal trial count.
  EXPECT_DOUBLE_EQ(binomial_sf(1, 1, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_sf(1, 1, 0.0), 0.0);
  EXPECT_NEAR(binomial_sf(1, 1, 0.3), 0.3, 1e-15);
}

TEST(BinomialBoundaries, ClosedFormGoldens) {
  // cdf(2 | n=6, p=1/4) = (3^6 + 6*3^5 + 15*3^4) / 4^6 = 3402/4096.
  EXPECT_NEAR(binomial_cdf(2, 6, 0.25), 3402.0 / 4096.0, 1e-12);
  // sf(n) = p^n and cdf(0) = (1-p)^n, held to relative 1e-12 (the
  // values themselves are far below any absolute tolerance).
  EXPECT_NEAR(binomial_sf(50, 50, 0.37) / std::pow(0.37, 50), 1.0, 1e-12);
  EXPECT_NEAR(binomial_cdf(0, 80, 0.63) / std::pow(1.0 - 0.63, 80), 1.0,
              1e-12);
}

TEST(BinomialBoundaries, MillionTrialTailsStayInLogSpace) {
  constexpr std::uint64_t n = 1'000'000;
  // sf(1 | n, p) = 1 - (1-p)^n has an independent closed form via
  // expm1/log1p — a golden the summation path must hit to 1e-12.
  const double p_rare = 1e-7;
  EXPECT_NEAR(binomial_sf(1, n, p_rare),
              -std::expm1(static_cast<double>(n) * std::log1p(-p_rare)),
              1e-12);

  // A 40-sigma tail underflows double — it must come back as a clean
  // hard zero (log-space sum, then one exp), never NaN or negative.
  const double far = binomial_sf(520'000, n, 0.5);
  EXPECT_GE(far, 0.0);
  EXPECT_LT(far, 1e-300);
  EXPECT_FALSE(std::isnan(far));
  // The log-pmf itself stays finite out there.
  EXPECT_TRUE(std::isfinite(binomial_log_pmf(520'000, n, 0.5)));
  EXPECT_LT(binomial_log_pmf(520'000, n, 0.5), -700.0);

  // Near the mean both tails are O(1): the complement identity must
  // survive a million-term summation (whose rounding accumulates to a
  // few 1e-9 — fine for p-values, pinned so it cannot silently grow).
  const double cdf = binomial_cdf(500'000, n, 0.5);
  const double sf = binomial_sf(500'001, n, 0.5);
  EXPECT_NEAR(cdf + sf, 1.0, 1e-7);
  EXPECT_GT(cdf, 0.4);
  EXPECT_LT(cdf, 0.6);

  // And the survival function is monotone across the whole regime.
  EXPECT_GT(binomial_sf(500'500, n, 0.5), binomial_sf(501'500, n, 0.5));
  EXPECT_GT(binomial_sf(501'500, n, 0.5), binomial_sf(510'000, n, 0.5));
}

TEST(AccelerationTest, PaperMagnitudeExample) {
  // Table 2's F2Pool row: x=466 of y=839 c-blocks at theta0=0.1753 is
  // overwhelming evidence (reported p = 0.0000).
  const double p = acceleration_p_value(466, 839, 0.1753);
  EXPECT_LT(p, 1e-100);
  // And the deceleration p-value is ~1.
  EXPECT_GT(deceleration_p_value(466, 839, 0.1753), 0.9999);
}

TEST(AccelerationTest, NullBehaviourIsUniformish) {
  // x = expected value -> p around 0.5, certainly not significant.
  const double p = acceleration_p_value(100, 1000, 0.1);
  EXPECT_GT(p, 0.4);
  EXPECT_LT(p, 0.6);
}

TEST(AccelerationTest, ZeroXNeverSignificant) {
  EXPECT_DOUBLE_EQ(acceleration_p_value(0, 50, 0.2), 1.0);
}

TEST(DecelerationTest, DetectsCensorship) {
  // A 20%-hash-rate pool that mined none of 100 c-blocks.
  const double p = deceleration_p_value(0, 100, 0.2);
  EXPECT_LT(p, 1e-9);
}

TEST(DecelerationTest, Table3HuobiShape) {
  // Table 3: Huobi x=1, y=53, theta0=0.0955 -> p_decel ~ 0.0323 (not
  // significant at alpha=0.001).
  const double p = deceleration_p_value(1, 53, 0.0955);
  EXPECT_NEAR(p, 0.0323, 0.002);
  EXPECT_GT(p, 0.001);
}

TEST(BinomialLogPmf, StaysFiniteForHugeN) {
  const double lp = binomial_log_pmf(5'000, 50'000, 0.1);
  EXPECT_TRUE(std::isfinite(lp));
  EXPECT_LT(lp, 0.0);
}

// Normal approximation tracks the exact test for large y (paper §5.1.3).
struct ApproxCase {
  std::uint64_t x, y;
  double theta0;
};

class NormalApprox : public ::testing::TestWithParam<ApproxCase> {};

TEST_P(NormalApprox, TracksExactTest) {
  const auto& c = GetParam();
  const double exact = acceleration_p_value(c.x, c.y, c.theta0);
  const double approx = acceleration_p_value_normal(c.x, c.y, c.theta0);
  EXPECT_NEAR(approx, exact, 0.01)
      << "x=" << c.x << " y=" << c.y << " theta0=" << c.theta0;

  const double exact_d = deceleration_p_value(c.x, c.y, c.theta0);
  const double approx_d = deceleration_p_value_normal(c.x, c.y, c.theta0);
  EXPECT_NEAR(approx_d, exact_d, 0.01);
}

INSTANTIATE_TEST_SUITE_P(
    LargeSamples, NormalApprox,
    ::testing::Values(ApproxCase{200, 1000, 0.2}, ApproxCase{230, 1000, 0.2},
                      ApproxCase{170, 1000, 0.2}, ApproxCase{500, 5000, 0.1},
                      ApproxCase{550, 5000, 0.1}, ApproxCase{2500, 5000, 0.5},
                      ApproxCase{2600, 5000, 0.5}, ApproxCase{100, 800, 0.15}));

}  // namespace
}  // namespace cn::stats

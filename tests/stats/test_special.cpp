#include "stats/special.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace cn::stats {
namespace {

TEST(LogChoose, SmallValues) {
  EXPECT_NEAR(log_choose(5, 2), std::log(10.0), 1e-12);
  EXPECT_NEAR(log_choose(10, 5), std::log(252.0), 1e-12);
  EXPECT_DOUBLE_EQ(log_choose(7, 0), 0.0);
  EXPECT_DOUBLE_EQ(log_choose(7, 7), 0.0);
}

TEST(LogChoose, Symmetry) {
  EXPECT_NEAR(log_choose(100, 30), log_choose(100, 70), 1e-9);
}

TEST(LogChoose, LargeValuesFinite) {
  const double v = log_choose(1'000'000, 500'000);
  EXPECT_TRUE(std::isfinite(v));
  // ~ n*ln(2) for the central coefficient.
  EXPECT_NEAR(v, 1e6 * std::log(2.0), 20.0);
}

TEST(RegGamma, ComplementaryPair) {
  for (double a : {0.5, 1.0, 3.0, 10.0}) {
    for (double x : {0.1, 1.0, 5.0, 20.0}) {
      EXPECT_NEAR(reg_gamma_p(a, x) + reg_gamma_q(a, x), 1.0, 1e-12)
          << "a=" << a << " x=" << x;
    }
  }
}

TEST(RegGamma, ExponentialSpecialCase) {
  // P(1, x) = 1 - exp(-x).
  for (double x : {0.0, 0.5, 1.0, 4.0}) {
    EXPECT_NEAR(reg_gamma_p(1.0, x), 1.0 - std::exp(-x), 1e-12);
  }
}

TEST(ChiSquare, KnownQuantiles) {
  // Chi-square(2) survival at x is exp(-x/2).
  EXPECT_NEAR(chi_square_sf(5.991, 2), 0.05, 1e-3);
  // Chi-square(1): sf(3.841) ~ 0.05.
  EXPECT_NEAR(chi_square_sf(3.841, 1), 0.05, 1e-3);
  // Chi-square(10): sf(18.307) ~ 0.05.
  EXPECT_NEAR(chi_square_sf(18.307, 10), 0.05, 1e-3);
}

TEST(ChiSquare, EdgeCases) {
  EXPECT_DOUBLE_EQ(chi_square_sf(0.0, 4), 1.0);
  EXPECT_DOUBLE_EQ(chi_square_sf(-1.0, 4), 1.0);
  EXPECT_LT(chi_square_sf(1000.0, 4), 1e-100);
}

TEST(LogAddExp, Basic) {
  EXPECT_NEAR(log_add_exp(std::log(2.0), std::log(3.0)), std::log(5.0), 1e-12);
  EXPECT_NEAR(log_add_exp(0.0, 0.0), std::log(2.0), 1e-12);
}

TEST(LogAddExp, HandlesNegInfinity) {
  constexpr double ninf = -std::numeric_limits<double>::infinity();
  EXPECT_DOUBLE_EQ(log_add_exp(ninf, 1.5), 1.5);
  EXPECT_DOUBLE_EQ(log_add_exp(1.5, ninf), 1.5);
}

TEST(LogAddExp, NoOverflowForLargeInputs) {
  const double v = log_add_exp(1000.0, 1000.0);
  EXPECT_NEAR(v, 1000.0 + std::log(2.0), 1e-9);
}

TEST(Log1mExp, AccurateBothRegimes) {
  // log(1 - exp(-0.1))
  EXPECT_NEAR(log1m_exp(-0.1), std::log(1.0 - std::exp(-0.1)), 1e-12);
  // log(1 - exp(-50)) ~ -exp(-50)
  EXPECT_NEAR(log1m_exp(-50.0), -std::exp(-50.0), 1e-30);
  EXPECT_EQ(log1m_exp(0.0), -std::numeric_limits<double>::infinity());
}

}  // namespace
}  // namespace cn::stats

// Golden-value tests for the hypothesis-test stack (binomial, Fisher,
// KS, special functions) against references computed independently of
// this implementation — exact rational arithmetic (Fraction) where n is
// small, 60-digit Decimal arithmetic elsewhere. No scipy, no libm: the
// references share no code path with what they check.
//
// Tolerances: well-conditioned values are asserted to 1e-12 RELATIVE.
// The n = 10^6 extreme tails are asserted on the log scale with a wider
// budget: binomial_log_pmf seeds the tail recurrence from lgamma at
// arguments ~1e6, where lgamma's few-ulp error is ~1e-8 ABSOLUTE in the
// log (ulp(1.3e7) ~ 2e-9) — 1e-12 is not achievable there by any
// lgamma-based implementation, and pretending otherwise would just test
// the local libm build.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/binomial.hpp"
#include "stats/fisher.hpp"
#include "stats/ks.hpp"
#include "stats/normal.hpp"
#include "stats/special.hpp"

namespace cn::stats {
namespace {

/// EXPECT a relative error below @p rel (absolute below rel for values
/// near zero, where relative error is meaningless).
void expect_rel(double value, double golden, double rel,
                const char* what) {
  EXPECT_NEAR(value, golden, std::max(rel, rel * std::fabs(golden))) << what;
}

TEST(GoldenBinomial, ExactRationalReferences) {
  // References: Fraction arithmetic over the exact binary value of the
  // double literal (Fraction(0.3), not 3/10) — bit-honest to the input
  // the implementation actually receives.
  expect_rel(binomial_pmf(3, 10, 0.3), 0.26682793199999999, 1e-12, "pmf");
  expect_rel(binomial_cdf(3, 10, 0.3), 0.64961071840000006, 1e-12, "cdf");
  expect_rel(binomial_sf(7, 10, 0.3), 0.010592078399999998, 1e-12, "sf");
  expect_rel(binomial_pmf(0, 50, 0.02), 0.36416968008711703, 1e-12, "pmf0");
  expect_rel(binomial_cdf(60, 100, 0.5), 0.98239989989114762, 1e-12, "cdf100");
  expect_rel(binomial_sf(60, 100, 0.5), 0.028443966820490395, 1e-12, "sf100");
  // n = 1000: lgamma arguments ~1e3 push the log error to ~1e-12; give
  // the value one decade of headroom.
  expect_rel(binomial_sf(620, 1000, 0.6), 0.10382449783572575, 1e-11,
             "sf1000");
}

TEST(GoldenBinomial, ExtremeTailsAtMillionTrials) {
  // Pr[B >= 505000], B ~ Bin(1e6, 0.5): a 10-sigma tail, p ~ 7.7e-24.
  const double sf_mid = binomial_sf(505'000, 1'000'000, 0.5);
  ASSERT_GT(sf_mid, 0.0);
  EXPECT_NEAR(std::log(sf_mid), -53.222020345264198, 1e-6);

  // Pr[B >= 1200], B ~ Bin(1e6, 0.001): 6.3 sigma on a skewed binomial.
  const double sf_skew = binomial_sf(1'200, 1'000'000, 0.001);
  ASSERT_GT(sf_skew, 0.0);
  EXPECT_NEAR(std::log(sf_skew), -21.502049644022069, 1e-6);

  // The tails must remain monotone and complementary down there.
  EXPECT_LT(binomial_sf(505'100, 1'000'000, 0.5), sf_mid);
  EXPECT_NEAR(binomial_cdf(1'199, 1'000'000, 0.001) + sf_skew, 1.0, 1e-12);
}

TEST(GoldenBinomial, PaperTestsAreTheTails) {
  EXPECT_DOUBLE_EQ(acceleration_p_value(60, 100, 0.5),
                   binomial_sf(60, 100, 0.5));
  EXPECT_DOUBLE_EQ(deceleration_p_value(60, 100, 0.5),
                   binomial_cdf(60, 100, 0.5));
}

TEST(GoldenNormalApprox, ContinuityCorrectedPhi) {
  // Reference: Decimal erf series. Both inputs sit at the same |z|, so
  // the approximation must be exactly symmetric as well.
  expect_rel(acceleration_p_value_normal(520, 1000, 0.5),
             0.10873411307177115, 1e-12, "accel");
  expect_rel(deceleration_p_value_normal(480, 1000, 0.5),
             0.10873411307177115, 1e-12, "decel");
  EXPECT_DOUBLE_EQ(normal_cdf(0.0), 0.5);
  expect_rel(normal_cdf(-3.0), 0.0013498980316300946, 1e-12, "phi(-3)");
}

TEST(GoldenFisher, CombinedPValue) {
  // p-values chosen as exact powers of two so the only rounding in the
  // statistic X = -2*sum(log p) is log itself.
  const std::vector<double> ps = {0.03125, 0.5, 0.25, 0.125};
  expect_rel(fisher_combine(ps), 0.054476560039593801, 1e-12, "fisher");
}

TEST(GoldenChiSquare, EvenDofClosedForms) {
  // Reference: Q(k, x/2) = exp(-x/2) * sum_{j<k} (x/2)^j/j! in Decimal.
  expect_rel(chi_square_sf(3.0, 2), 0.22313016014842982, 1e-12, "dof2");
  expect_rel(chi_square_sf(10.0, 4), 0.040427681994512805, 1e-12, "dof4");
  expect_rel(chi_square_sf(50.0, 10), 2.6690834249044957e-07, 1e-12, "dof10");
  expect_rel(chi_square_sf(150.0, 100), 0.00090393204235400906, 1e-11,
             "dof100");
}

TEST(GoldenRegGamma, IntegerShape) {
  expect_rel(reg_gamma_q(3.0, 2.5), 0.54381311588332948, 1e-12, "q(3,2.5)");
  expect_rel(reg_gamma_p(3.0, 2.5), 0.45618688411667047, 1e-12, "p(3,2.5)");
  expect_rel(reg_gamma_q(100.0, 120.0), 0.027863739890520663, 1e-11,
             "q(100,120)");
  // Complement identity where both sides are away from 0 and 1.
  EXPECT_NEAR(reg_gamma_p(7.0, 6.5) + reg_gamma_q(7.0, 6.5), 1.0, 1e-14);
}

TEST(GoldenSpecial, LogGammaAndFriends) {
  // log_choose(1e6, 5e5): reference is ln of the exact 301030-digit
  // integer (Decimal.ln of math.comb). Value ~6.9e5, so 1e-12 relative
  // leaves lgamma's ~1e-9 absolute error three decades of room.
  expect_rel(log_choose(1'000'000, 500'000), 693140.04701306368, 1e-12,
             "choose1e6");
  expect_rel(log_choose(52, 5), 14.770621922970371, 1e-12, "choose52");
  EXPECT_DOUBLE_EQ(log_choose(10, 0), 0.0);
  EXPECT_DOUBLE_EQ(log_choose(10, 10), 0.0);

  // ln Gamma(1/2) = ln(pi)/2; Gamma(10.5) = 20! sqrt(pi) / (4^10 10!).
  expect_rel(log_gamma(0.5), 0.57236494292470008, 1e-12, "lgamma(.5)");
  expect_rel(log_gamma(10.5), 13.940625219403763, 1e-12, "lgamma(10.5)");
  expect_rel(log_gamma(1'000'000.0), 12815504.569147611, 1e-12, "lgamma(1e6)");

  expect_rel(log_add_exp(-1000.0, -1000.5), -999.5259230158199, 1e-12,
             "log_add_exp");
  // Both ends of log1m_exp: x -> 0- (catastrophic cancellation zone) and
  // deep negative (result is -exp(x) to first order).
  expect_rel(log1m_exp(-1e-10), -23.025850929990458, 1e-12, "log1m near0");
  expect_rel(log1m_exp(-50.0), -1.9287498479639178e-22, 1e-12, "log1m deep");
}

TEST(GoldenKolmogorov, SurvivalFunction) {
  // Reference: the alternating series summed in Decimal to 1e-55; the
  // implementation truncates at 1e-16 absolute, inside 1e-12 relative
  // for every lambda checked here.
  expect_rel(kolmogorov_sf(0.5), 0.96394524366487511, 1e-12, "l=.5");
  expect_rel(kolmogorov_sf(1.0), 0.2699996716773545, 1e-12, "l=1");
  expect_rel(kolmogorov_sf(1.5), 0.02221796261652513, 1e-12, "l=1.5");
  expect_rel(kolmogorov_sf(2.0), 0.00067092525577969533, 1e-12, "l=2");
  EXPECT_DOUBLE_EQ(kolmogorov_sf(0.0), 1.0);
}

TEST(GoldenKolmogorov, TwoSampleStatisticIsExact) {
  // D is a ratio of small integers — exactly representable, so the
  // merge-walk must produce it exactly: samples {1,2,3,4} vs {3,4,5,6}
  // give sup|F1-F2| = 1/2 at x just below 3.
  const std::vector<double> a = {1, 2, 3, 4};
  const std::vector<double> b = {3, 4, 5, 6};
  const KsResult r = ks_two_sample(a, b);
  EXPECT_DOUBLE_EQ(r.statistic, 0.5);
  // p must be exactly what the documented Stephens formula yields.
  const double ne = 4.0 * 4.0 / 8.0;
  const double lambda = (std::sqrt(ne) + 0.12 + 0.11 / std::sqrt(ne)) * 0.5;
  EXPECT_DOUBLE_EQ(r.p_value, kolmogorov_sf(lambda));
}

}  // namespace
}  // namespace cn::stats

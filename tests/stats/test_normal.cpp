#include "stats/normal.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace cn::stats {
namespace {

TEST(NormalCdf, KnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.0), 0.8413447, 1e-6);
  EXPECT_NEAR(normal_cdf(-1.0), 0.1586553, 1e-6);
  EXPECT_NEAR(normal_cdf(1.959964), 0.975, 1e-6);
}

TEST(NormalCdf, DeepTailsStayAccurate) {
  // erfc-based tails keep relative accuracy far out.
  EXPECT_NEAR(normal_sf(6.0) / 9.8659e-10, 1.0, 1e-3);
  EXPECT_GT(normal_sf(38.0), 0.0);
}

TEST(NormalCdf, Symmetry) {
  for (double z : {0.3, 1.7, 4.2}) {
    EXPECT_NEAR(normal_cdf(-z), normal_sf(z), 1e-15);
  }
}

TEST(NormalPdf, PeakValue) {
  EXPECT_NEAR(normal_pdf(0.0), 0.3989422804014327, 1e-15);
  EXPECT_NEAR(normal_pdf(2.0), normal_pdf(-2.0), 1e-18);
}

TEST(NormalQuantile, InvertsCdf) {
  for (double p : {0.001, 0.025, 0.2, 0.5, 0.8, 0.975, 0.999}) {
    EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-10) << "p=" << p;
  }
}

TEST(NormalQuantile, KnownValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-12);
  EXPECT_NEAR(normal_quantile(0.975), 1.959964, 1e-5);
  EXPECT_NEAR(normal_quantile(0.0013499), -3.0, 1e-4);
}

}  // namespace
}  // namespace cn::stats

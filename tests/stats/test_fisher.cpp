#include "stats/fisher.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace cn::stats {
namespace {

TEST(Fisher, SinglePValueRoundTrips) {
  // Combining one p-value returns (approximately) itself:
  // -2 ln p ~ chi2(2) whose sf at -2 ln p is exactly p.
  for (double p : {0.9, 0.5, 0.05, 0.001}) {
    EXPECT_NEAR(fisher_combine(std::vector<double>{p}), p, 1e-9);
  }
}

TEST(Fisher, ConsistentEvidenceCompounds) {
  const std::vector<double> p = {0.05, 0.05, 0.05};
  // X = -2 * 3 * ln(0.05) ~ 17.97, chi2(6) sf ~ 0.0063.
  const double combined = fisher_combine(p);
  EXPECT_LT(combined, 0.05);
  EXPECT_NEAR(combined, 0.0063, 0.0005);
}

TEST(Fisher, MixedEvidenceDilutes) {
  const std::vector<double> p = {0.01, 0.9, 0.9, 0.9};
  const double combined = fisher_combine(p);
  EXPECT_GT(combined, 0.01);
}

TEST(Fisher, AllOnesIsOne) {
  const std::vector<double> p = {1.0, 1.0};
  EXPECT_NEAR(fisher_combine(p), 1.0, 1e-12);
}

TEST(Fisher, ClampsZeroPValues) {
  const std::vector<double> p = {0.0, 0.5};
  const double combined = fisher_combine(p);
  EXPECT_GE(combined, 0.0);
  EXPECT_LT(combined, 1e-200);
}

}  // namespace
}  // namespace cn::stats

#include "btc/transaction.hpp"

#include <gtest/gtest.h>

namespace cn::btc {
namespace {

const Address kAlice = Address::derive("alice");
const Address kBob = Address::derive("bob");
const Address kCarol = Address::derive("carol");

TEST(Transaction, PaymentBasics) {
  const Transaction tx =
      make_payment(100, 250, Satoshi{500}, kAlice, kBob, Satoshi{10'000}, 1);
  EXPECT_EQ(tx.issued(), 100);
  EXPECT_EQ(tx.vsize(), 250u);
  EXPECT_EQ(tx.fee().value, 500);
  EXPECT_DOUBLE_EQ(tx.fee_rate().sat_per_vbyte(), 2.0);
  EXPECT_EQ(tx.total_output().value, 10'000);
  ASSERT_EQ(tx.inputs().size(), 1u);
  ASSERT_EQ(tx.outputs().size(), 1u);
}

TEST(Transaction, WalletPredicates) {
  const Transaction tx =
      make_payment(0, 250, Satoshi{500}, kAlice, kBob, Satoshi{10'000}, 2);
  EXPECT_TRUE(tx.spends_from(kAlice));
  EXPECT_FALSE(tx.spends_from(kBob));
  EXPECT_TRUE(tx.pays_to(kBob));
  EXPECT_FALSE(tx.pays_to(kAlice));
  EXPECT_TRUE(tx.involves(kAlice));
  EXPECT_TRUE(tx.involves(kBob));
  EXPECT_FALSE(tx.involves(kCarol));
}

TEST(Transaction, DistinctNoncesDistinctIds) {
  const Transaction a =
      make_payment(0, 250, Satoshi{500}, kAlice, kBob, Satoshi{1000}, 1);
  const Transaction b =
      make_payment(0, 250, Satoshi{500}, kAlice, kBob, Satoshi{1000}, 2);
  EXPECT_NE(a.id(), b.id());
}

TEST(Transaction, IdentityIsContentDerived) {
  const Transaction a =
      make_payment(0, 250, Satoshi{500}, kAlice, kBob, Satoshi{1000}, 7);
  const Transaction b =
      make_payment(0, 250, Satoshi{500}, kAlice, kBob, Satoshi{1000}, 7);
  EXPECT_EQ(a.id(), b.id());
}

TEST(Transaction, ChildSpendsParent) {
  const Transaction parent =
      make_payment(0, 250, Satoshi{250}, kAlice, kBob, Satoshi{5000}, 10);
  const Transaction child =
      make_child_payment(60, 200, Satoshi{2000}, parent, kCarol, Satoshi{4000}, 11);
  EXPECT_TRUE(child.spends_output_of(parent.id()));
  EXPECT_FALSE(parent.spends_output_of(child.id()));
  // Child's input owner is the parent's output wallet.
  EXPECT_TRUE(child.spends_from(kBob));
}

TEST(Transaction, MultiInputOutput) {
  std::vector<TxInput> ins{TxInput{kNullTxid, 0, kAlice},
                           TxInput{kNullTxid, 1, kBob}};
  std::vector<TxOutput> outs{TxOutput{kCarol, Satoshi{100}},
                             TxOutput{kAlice, Satoshi{50}}};
  const Transaction tx(0, 400, Satoshi{300}, std::move(ins), std::move(outs), 77);
  EXPECT_TRUE(tx.spends_from(kAlice));
  EXPECT_TRUE(tx.spends_from(kBob));
  EXPECT_TRUE(tx.pays_to(kAlice));  // change output
  EXPECT_EQ(tx.total_output().value, 150);
}

TEST(TransactionDeathTest, RejectsZeroVsize) {
  EXPECT_DEATH(
      make_payment(0, 0, Satoshi{1}, kAlice, kBob, Satoshi{1}, 1),
      "vsize_ > 0");
}

TEST(TransactionDeathTest, RejectsNegativeFee) {
  EXPECT_DEATH(
      make_payment(0, 100, Satoshi{-1}, kAlice, kBob, Satoshi{1}, 1),
      "fee_.value >= 0");
}

}  // namespace
}  // namespace cn::btc

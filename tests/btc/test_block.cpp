#include "btc/block.hpp"

#include <gtest/gtest.h>

#include "../helpers.hpp"

namespace cn::btc {
namespace {

using cn::test::block_with_rates;
using cn::test::tx_with_rate;

TEST(Block, AggregatesSizeAndFees) {
  const Block b = block_with_rates(100, {10.0, 5.0, 2.0});
  EXPECT_EQ(b.height(), 100u);
  EXPECT_EQ(b.tx_count(), 3u);
  EXPECT_EQ(b.total_vsize(), 750u);
  EXPECT_EQ(b.total_fees().value,
            static_cast<std::int64_t>((10.0 + 5.0 + 2.0) * 250));
  EXPECT_FALSE(b.is_empty());
}

TEST(Block, EmptyBlock) {
  Coinbase cb;
  cb.tag = "/TestPool/";
  cb.reward = Satoshi{625'000'000};
  const Block b(5, 600, cb, {});
  EXPECT_TRUE(b.is_empty());
  EXPECT_EQ(b.total_vsize(), 0u);
  EXPECT_EQ(b.total_fees().value, 0);
}

TEST(Block, PositionLookup) {
  const Block b = block_with_rates(7, {3.0, 2.0, 1.0});
  const Txid& second = b.txs()[1].id();
  const auto pos = b.position_of(second);
  ASSERT_TRUE(pos.has_value());
  EXPECT_EQ(*pos, 1u);
  EXPECT_FALSE(b.position_of(Txid::hash_of("absent")).has_value());
}

TEST(Block, CpfpDetection) {
  const Transaction parent = tx_with_rate(1.0, 250, 0, 501);
  const Transaction child = make_child_payment(
      10, 200, Satoshi{2000}, parent, Address::derive("dest"), Satoshi{100}, 502);
  const Transaction lone = tx_with_rate(5.0, 250, 0, 503);

  Coinbase cb;
  cb.tag = "/TestPool/";
  std::vector<Transaction> txs{parent, child, lone};
  const Block b(1, 600, cb, std::move(txs));

  EXPECT_FALSE(b.is_cpfp_at(0));
  EXPECT_TRUE(b.is_cpfp_at(1));
  EXPECT_FALSE(b.is_cpfp_at(2));
  const auto positions = b.cpfp_positions();
  ASSERT_EQ(positions.size(), 1u);
  EXPECT_EQ(positions[0], 1u);
}

TEST(Block, ChildWithoutInBlockParentIsNotCpfp) {
  const Transaction external_parent = tx_with_rate(1.0, 250, 0, 601);
  const Transaction child =
      make_child_payment(10, 200, Satoshi{2000}, external_parent,
                         Address::derive("dest"), Satoshi{100}, 602);
  Coinbase cb;
  std::vector<Transaction> txs{child};  // parent not in this block
  const Block b(1, 600, cb, std::move(txs));
  EXPECT_TRUE(b.cpfp_positions().empty());
}

TEST(BlockDeathTest, RejectsOversizedBlock) {
  std::vector<Transaction> txs;
  // 101 transactions of 10,000 vB each exceeds the 1,000,000 vB cap.
  for (int i = 0; i < 101; ++i) {
    txs.push_back(tx_with_rate(1.0, 10'000, 0, 700 + i));
  }
  Coinbase cb;
  EXPECT_DEATH(Block(1, 600, cb, std::move(txs)), "kMaxBlockVsize");
}

}  // namespace
}  // namespace cn::btc

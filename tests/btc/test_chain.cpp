#include "btc/chain.hpp"

#include <gtest/gtest.h>

#include "../helpers.hpp"

namespace cn::btc {
namespace {

using cn::test::block_with_rates;

TEST(Chain, AppendsAndIndexes) {
  Chain chain(100);
  chain.append(block_with_rates(100, {5.0, 3.0}));
  chain.append(block_with_rates(101, {7.0}));
  EXPECT_EQ(chain.size(), 2u);
  EXPECT_EQ(chain.next_height(), 102u);
  EXPECT_EQ(chain.total_tx_count(), 3u);
  EXPECT_EQ(chain.front().height(), 100u);
  EXPECT_EQ(chain.back().height(), 101u);
}

TEST(Chain, LocateFindsCommittedTx) {
  Chain chain(50);
  chain.append(block_with_rates(50, {5.0, 3.0, 1.0}));
  const Txid& id = chain.front().txs()[2].id();
  const auto loc = chain.locate(id);
  ASSERT_TRUE(loc.has_value());
  EXPECT_EQ(loc->block_height, 50u);
  EXPECT_EQ(loc->position, 2u);

  const Transaction* tx = chain.find_tx(id);
  ASSERT_NE(tx, nullptr);
  EXPECT_EQ(tx->id(), id);
}

TEST(Chain, LocateMissReturnsNullopt) {
  Chain chain(1);
  chain.append(block_with_rates(1, {2.0}));
  EXPECT_FALSE(chain.locate(Txid::hash_of("nope")).has_value());
  EXPECT_EQ(chain.find_tx(Txid::hash_of("nope")), nullptr);
}

TEST(Chain, AtHeight) {
  Chain chain(10);
  chain.append(block_with_rates(10, {1.0}));
  chain.append(block_with_rates(11, {2.0}));
  chain.append(block_with_rates(12, {3.0}));
  EXPECT_EQ(chain.at_height(11).height(), 11u);
  EXPECT_EQ(chain.at_height(12).txs()[0].fee_rate().sat_per_vbyte(), 3.0);
}

TEST(Chain, EmptyBlockCount) {
  Chain chain(1);
  chain.append(block_with_rates(1, {}));
  chain.append(block_with_rates(2, {1.0}));
  chain.append(block_with_rates(3, {}));
  EXPECT_EQ(chain.empty_block_count(), 2u);
}

TEST(Chain, DefaultConstructedAdoptsFirstHeight) {
  Chain chain;
  chain.append(block_with_rates(777, {1.0}));
  EXPECT_EQ(chain.next_height(), 778u);
  EXPECT_EQ(chain.front().height(), 777u);
}

TEST(ChainDeathTest, RejectsHeightGap) {
  Chain chain(10);
  chain.append(block_with_rates(10, {1.0}));
  EXPECT_DEATH(chain.append(block_with_rates(12, {1.0})), "next_height_");
}

}  // namespace
}  // namespace cn::btc

#include "btc/header.hpp"

#include <gtest/gtest.h>

#include "../helpers.hpp"
#include "btc/chain.hpp"
#include "btc/merkle.hpp"

namespace cn::btc {
namespace {

using cn::test::block_with_rates;

TEST(BlockHeader, HashChangesWithEveryField) {
  BlockHeader base;
  base.merkle_root = Txid::hash_of("root");
  base.height = 10;
  base.timestamp = 600;
  const BlockHash h = base.hash();

  BlockHeader changed = base;
  changed.prev_hash = Txid::hash_of("prev");
  EXPECT_NE(changed.hash(), h);
  changed = base;
  changed.merkle_root = Txid::hash_of("other-root");
  EXPECT_NE(changed.hash(), h);
  changed = base;
  changed.height = 11;
  EXPECT_NE(changed.hash(), h);
  changed = base;
  changed.timestamp = 601;
  EXPECT_NE(changed.hash(), h);
  EXPECT_EQ(base.hash(), h);  // deterministic
}

TEST(BlockSeal, ChainSealsOnAppend) {
  Chain chain(5);
  Block block = block_with_rates(5, {3.0, 1.0});
  EXPECT_FALSE(block.sealed());
  chain.append(std::move(block));
  EXPECT_TRUE(chain.front().sealed());
  EXPECT_TRUE(chain.front().header().prev_hash.is_null());
  EXPECT_EQ(chain.front().header().merkle_root,
            chain.front().compute_merkle_root());
}

TEST(BlockSeal, HeadersLink) {
  Chain chain(1);
  chain.append(block_with_rates(1, {2.0}));
  chain.append(block_with_rates(2, {3.0}));
  chain.append(block_with_rates(3, {}));
  EXPECT_EQ(chain.blocks()[1].header().prev_hash, chain.blocks()[0].hash());
  EXPECT_EQ(chain.blocks()[2].header().prev_hash, chain.blocks()[1].hash());
  EXPECT_EQ(chain.tip_hash(), chain.blocks()[2].hash());
  EXPECT_TRUE(chain.verify_integrity());
}

TEST(BlockSeal, MerkleRootCommitsToCoinbaseAndTxs) {
  const Block a = block_with_rates(1, {2.0, 3.0}, "/PoolA/");
  const Block b = block_with_rates(1, {2.0, 3.0}, "/PoolB/");
  // Same txs, different coinbase tag -> different root.
  EXPECT_NE(a.compute_merkle_root(), b.compute_merkle_root());
  // And each root verifies a member tx via proof against leaves.
  std::vector<Txid> leaves{a.coinbase_id()};
  for (const auto& tx : a.txs()) leaves.push_back(tx.id());
  const auto proof = merkle_proof(leaves, 1);
  EXPECT_TRUE(merkle_verify(a.txs()[0].id(), proof, a.compute_merkle_root()));
}

TEST(BlockSeal, EmptyChainTipIsNull) {
  Chain chain(1);
  EXPECT_TRUE(chain.tip_hash().is_null());
  EXPECT_TRUE(chain.verify_integrity());
}

TEST(BlockSealDeathTest, DoubleSealForbidden) {
  Block block = block_with_rates(1, {1.0});
  block.seal(kNullTxid);
  EXPECT_DEATH(block.seal(kNullTxid), "sealed_");
}

TEST(BlockSealDeathTest, HeaderBeforeSealForbidden) {
  const Block block = block_with_rates(1, {1.0});
  EXPECT_DEATH((void)block.header(), "sealed_");
}

}  // namespace
}  // namespace cn::btc

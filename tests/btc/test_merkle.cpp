#include "btc/merkle.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace cn::btc {
namespace {

std::vector<Txid> leaves(int n) {
  std::vector<Txid> out;
  for (int i = 0; i < n; ++i) out.push_back(Txid::hash_of("leaf" + std::to_string(i)));
  return out;
}

TEST(Merkle, EmptyIsNull) {
  EXPECT_TRUE(merkle_root({}).is_null());
}

TEST(Merkle, SingleLeafIsItself) {
  const auto l = leaves(1);
  EXPECT_EQ(merkle_root(l), l[0]);
}

TEST(Merkle, RootDependsOnContent) {
  auto l = leaves(4);
  const Txid root = merkle_root(l);
  l[2] = Txid::hash_of("tampered");
  EXPECT_NE(merkle_root(l), root);
}

TEST(Merkle, RootDependsOnOrder) {
  auto l = leaves(4);
  const Txid root = merkle_root(l);
  std::swap(l[0], l[1]);
  EXPECT_NE(merkle_root(l), root);
}

TEST(Merkle, OddCountDuplicatesLast) {
  // Bitcoin semantics: odd node pairs with itself. Just assert it is
  // deterministic and distinct from the even case.
  const auto three = leaves(3);
  const auto root3 = merkle_root(three);
  auto four = three;
  four.push_back(three[2]);  // explicit duplicate
  EXPECT_EQ(merkle_root(four), root3);
}

TEST(Merkle, DeterministicAcrossCalls) {
  const auto l = leaves(7);
  EXPECT_EQ(merkle_root(l), merkle_root(l));
}

class MerkleProofSweep : public ::testing::TestWithParam<int> {};

TEST_P(MerkleProofSweep, EveryLeafProves) {
  const int n = GetParam();
  const auto l = leaves(n);
  const Txid root = merkle_root(l);
  for (int i = 0; i < n; ++i) {
    const auto proof = merkle_proof(l, static_cast<std::size_t>(i));
    EXPECT_TRUE(merkle_verify(l[static_cast<std::size_t>(i)], proof, root))
        << "n=" << n << " i=" << i;
    // A different leaf must not verify with this proof (n > 1).
    if (n > 1) {
      const Txid other = Txid::hash_of("not-in-tree");
      EXPECT_FALSE(merkle_verify(other, proof, root));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MerkleProofSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 13, 16, 33));

TEST(MerkleProof, SizeIsLogarithmic) {
  const auto l = leaves(1024);
  EXPECT_EQ(merkle_proof(l, 0).size(), 10u);
  const auto l33 = leaves(33);
  EXPECT_EQ(merkle_proof(l33, 32).size(), 6u);  // ceil(log2(33)) = 6
}

TEST(MerkleProof, TamperedRootRejected) {
  const auto l = leaves(8);
  const auto proof = merkle_proof(l, 3);
  EXPECT_FALSE(merkle_verify(l[3], proof, Txid::hash_of("bogus-root")));
}

}  // namespace
}  // namespace cn::btc

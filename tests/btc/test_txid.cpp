#include "btc/txid.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace cn::btc {
namespace {

TEST(Txid, HashOfIsDeterministic) {
  EXPECT_EQ(Txid::hash_of("x"), Txid::hash_of("x"));
  EXPECT_NE(Txid::hash_of("x"), Txid::hash_of("y"));
}

TEST(Txid, NullDetection) {
  EXPECT_TRUE(kNullTxid.is_null());
  EXPECT_FALSE(Txid::hash_of("anything").is_null());
}

TEST(Txid, HexIs64Chars) {
  const std::string hex = Txid::hash_of("tx").to_hex();
  EXPECT_EQ(hex.size(), 64u);
  for (char c : hex) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'));
  }
}

TEST(Txid, ShortIdDistinguishes) {
  EXPECT_NE(Txid::hash_of("a").short_id(), Txid::hash_of("b").short_id());
}

TEST(Txid, UsableInUnorderedSet) {
  std::unordered_set<Txid> set;
  for (int i = 0; i < 100; ++i) set.insert(Txid::hash_of(std::to_string(i)));
  EXPECT_EQ(set.size(), 100u);
  EXPECT_TRUE(set.contains(Txid::hash_of("42")));
  EXPECT_FALSE(set.contains(Txid::hash_of("101")));
}

TEST(Address, DeriveDeterministic) {
  EXPECT_EQ(Address::derive("wallet-1"), Address::derive("wallet-1"));
  EXPECT_NE(Address::derive("wallet-1"), Address::derive("wallet-2"));
}

TEST(Address, NullIsReserved) {
  EXPECT_TRUE(kNullAddress.is_null());
  EXPECT_FALSE(Address::derive("x").is_null());
}

TEST(Address, ToStringFormat) {
  const std::string s = Address::derive("x").to_string();
  EXPECT_EQ(s.substr(0, 5), "addr:");
  EXPECT_EQ(s.size(), 5 + 16u);
}

TEST(Address, NoCollisionsInLargeSample) {
  std::unordered_set<Address> set;
  for (int i = 0; i < 100'000; ++i) {
    set.insert(Address::derive("user/" + std::to_string(i)));
  }
  EXPECT_EQ(set.size(), 100'000u);
}

}  // namespace
}  // namespace cn::btc

#include "btc/amount.hpp"

#include <gtest/gtest.h>

namespace cn::btc {
namespace {

TEST(Satoshi, Arithmetic) {
  Satoshi a{100}, b{40};
  EXPECT_EQ((a + b).value, 140);
  EXPECT_EQ((a - b).value, 60);
  a += b;
  EXPECT_EQ(a.value, 140);
  a -= Satoshi{200};
  EXPECT_TRUE(a.is_negative());
}

TEST(Satoshi, BtcConversion) {
  EXPECT_DOUBLE_EQ(kOneBtc.btc(), 1.0);
  EXPECT_DOUBLE_EQ(Satoshi{50'000'000}.btc(), 0.5);
  EXPECT_DOUBLE_EQ(from_btc_int(6).value, 6.0 * kSatPerBtc);
}

TEST(FeeRate, SatPerVbyte) {
  const FeeRate r(Satoshi{500}, 250);
  EXPECT_DOUBLE_EQ(r.sat_per_vbyte(), 2.0);
}

TEST(FeeRate, BtcPerKbUnitConversion) {
  // 1 sat/vB == 1e-5 BTC/KB (the paper's recommended minimum).
  const FeeRate r = FeeRate::from_sat_per_vb(1);
  EXPECT_DOUBLE_EQ(r.btc_per_kb(), 1e-5);
  // 100 sat/vB == 1e-3 BTC/KB (the paper's "exorbitant" threshold).
  EXPECT_DOUBLE_EQ(FeeRate::from_sat_per_vb(100).btc_per_kb(), 1e-3);
}

TEST(FeeRate, ExactComparisonAvoidsFloatTies) {
  // 1/3 vs 333333/1000000: floating point would call these equal at some
  // precision; exact rational comparison must not.
  const FeeRate a(Satoshi{1}, 3);
  const FeeRate b(Satoshi{333'333}, 1'000'000);
  EXPECT_TRUE(a > b);
}

TEST(FeeRate, ComparisonBasics) {
  const FeeRate low(Satoshi{250}, 250);   // 1 sat/vB
  const FeeRate high(Satoshi{500}, 250);  // 2 sat/vB
  EXPECT_TRUE(low < high);
  EXPECT_TRUE(high > low);
  EXPECT_TRUE(low == FeeRate(Satoshi{100}, 100));  // same ratio
}

TEST(FeeRate, InvalidComparesLowest) {
  const FeeRate invalid{};
  const FeeRate zero_fee(Satoshi{0}, 100);
  EXPECT_FALSE(invalid.valid());
  EXPECT_TRUE(invalid < zero_fee);
  EXPECT_TRUE(invalid == FeeRate{});
}

TEST(FeeRate, LargeValuesNoOverflow) {
  // 21M BTC fee over 1 MB: cross-multiplication needs 128 bits.
  const FeeRate huge(Satoshi{21'000'000LL * kSatPerBtc}, 1);
  const FeeRate big(Satoshi{20'000'000LL * kSatPerBtc}, 1'000'000);
  EXPECT_TRUE(huge > big);
}

TEST(FeeRate, ToString) {
  EXPECT_EQ(FeeRate(Satoshi{500}, 250).to_string(), "2.000 sat/vB");
}

}  // namespace
}  // namespace cn::btc

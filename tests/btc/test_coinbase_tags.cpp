#include "btc/coinbase_tags.hpp"

#include <gtest/gtest.h>

namespace cn::btc {
namespace {

TEST(CoinbaseTags, IdentifiesByMarker) {
  CoinbaseTagRegistry reg;
  reg.add("F2Pool", "/F2Pool/");
  const auto pool = reg.identify("Mined by /F2Pool/ v0.21");
  ASSERT_TRUE(pool.has_value());
  EXPECT_EQ(*pool, "F2Pool");
}

TEST(CoinbaseTags, CaseInsensitive) {
  CoinbaseTagRegistry reg;
  reg.add("ViaBTC", "/ViaBTC/");
  EXPECT_TRUE(reg.identify("/viabtc/ bla").has_value());
}

TEST(CoinbaseTags, UnknownTagReturnsNullopt) {
  CoinbaseTagRegistry reg;
  reg.add("F2Pool", "/F2Pool/");
  EXPECT_FALSE(reg.identify("no marker here").has_value());
  EXPECT_FALSE(reg.identify("").has_value());
}

TEST(CoinbaseTags, LongestMarkerWins) {
  CoinbaseTagRegistry reg;
  reg.add("BTC", "/BTC/");
  reg.add("BTC.com", "/BTC.com/");
  const auto pool = reg.identify("xx /BTC.com/ yy");
  ASSERT_TRUE(pool.has_value());
  EXPECT_EQ(*pool, "BTC.com");
}

TEST(CoinbaseTags, AliasResolution) {
  CoinbaseTagRegistry reg;
  reg.add("BitDeer", "/BitDeer/");
  reg.add_alias("BitDeer", "BTC.com");
  const auto pool = reg.identify("/BitDeer/");
  ASSERT_TRUE(pool.has_value());
  EXPECT_EQ(*pool, "BTC.com");
  EXPECT_EQ(reg.canonical("BitDeer"), "BTC.com");
  EXPECT_EQ(reg.canonical("F2Pool"), "F2Pool");
}

TEST(CoinbaseTags, PaperRegistryCoversTop20C) {
  const auto reg = CoinbaseTagRegistry::paper_registry();
  for (const char* pool : {"F2Pool", "Poolin", "BTC.com", "AntPool", "Huobi",
                           "ViaBTC", "1THash&58Coin", "Okex", "SlushPool",
                           "Binance Pool", "Lubian.com"}) {
    const auto found = reg.identify(conventional_marker(pool));
    ASSERT_TRUE(found.has_value()) << pool;
    EXPECT_EQ(*found, pool);
  }
}

TEST(CoinbaseTags, PaperRegistryAliases) {
  const auto reg = CoinbaseTagRegistry::paper_registry();
  EXPECT_EQ(*reg.identify("/BitDeer/"), "BTC.com");
  EXPECT_EQ(*reg.identify("/Buffett/"), "Lubian.com");
}

TEST(CoinbaseTags, ConventionalMarkerFormat) {
  EXPECT_EQ(conventional_marker("F2Pool"), "/F2Pool/");
}

}  // namespace
}  // namespace cn::btc

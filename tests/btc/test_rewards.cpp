#include "btc/rewards.hpp"

#include <gtest/gtest.h>

namespace cn::btc {
namespace {

TEST(Rewards, GenesisEraSubsidy) {
  EXPECT_EQ(block_subsidy(0).value, 50LL * kSatPerBtc);
  EXPECT_EQ(block_subsidy(209'999).value, 50LL * kSatPerBtc);
}

TEST(Rewards, HalvingBoundaries) {
  EXPECT_EQ(block_subsidy(210'000).value, 25LL * kSatPerBtc);
  EXPECT_EQ(block_subsidy(420'000).value, 1'250'000'000);  // 12.5 BTC
  EXPECT_EQ(block_subsidy(kThirdHalvingHeight).value, 625'000'000);  // 6.25 BTC
  EXPECT_EQ(block_subsidy(kThirdHalvingHeight - 1).value, 1'250'000'000);
}

TEST(Rewards, SubsidyVanishesAfter64Halvings) {
  EXPECT_EQ(block_subsidy(64 * kHalvingInterval).value, 0);
  EXPECT_EQ(block_subsidy(100 * kHalvingInterval).value, 0);
}

TEST(Rewards, TotalSupplyBelow21M) {
  // Sum of all subsidies must stay below 21M BTC.
  __int128 total = 0;
  for (std::uint64_t h = 0; h < 64; ++h) {
    total += static_cast<__int128>(block_subsidy(h * kHalvingInterval).value) *
             kHalvingInterval;
  }
  EXPECT_LT(total, static_cast<__int128>(21'000'000LL) * kSatPerBtc);
  EXPECT_GT(total, static_cast<__int128>(20'900'000LL) * kSatPerBtc);
}

TEST(Rewards, YearHeightAnchor) {
  EXPECT_EQ(approx_height_of_year(2020), 610'691u);
  EXPECT_EQ(approx_height_of_year(2021), 610'691u + 52'560u);
  EXPECT_EQ(approx_height_of_year(2019), 610'691u - 52'560u);
}

TEST(Rewards, YearOfHeightInvertsHeightOfYear) {
  for (int year : {2016, 2017, 2018, 2019, 2020, 2021}) {
    EXPECT_EQ(approx_year_of_height(approx_height_of_year(year)), year);
    EXPECT_EQ(approx_year_of_height(approx_height_of_year(year) + 1000), year);
  }
}

TEST(Rewards, HalvingFallsIn2020) {
  // The paper notes the May 11, 2020 halving; the height must map there.
  EXPECT_EQ(approx_year_of_height(kThirdHalvingHeight), 2020);
}

}  // namespace
}  // namespace cn::btc

#include "core/report.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace cn::core {
namespace {

TEST(FormatPValue, ThresholdsAndPrecision) {
  EXPECT_EQ(format_p_value(0.0), "<0.001");
  EXPECT_EQ(format_p_value(0.0009), "<0.001");
  EXPECT_EQ(format_p_value(0.0012), "0.0012");
  EXPECT_EQ(format_p_value(0.2856), "0.2856");
  EXPECT_EQ(format_p_value(1.0), "1.0000");
}

TEST(WriteCdfCsv, ProducesHeaderAndMonotoneRows) {
  const std::string path = ::testing::TempDir() + "/cn_cdf.csv";
  std::vector<double> samples;
  for (int i = 0; i < 100; ++i) samples.push_back(static_cast<double>(i));
  const stats::Ecdf ecdf{std::span<const double>(samples)};
  ASSERT_TRUE(write_cdf_csv(path, ecdf, "delay"));

  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "delay,cdf");
  double prev_f = -1.0;
  std::string line;
  int rows = 0;
  while (std::getline(in, line)) {
    const auto comma = line.find(',');
    ASSERT_NE(comma, std::string::npos);
    const double f = std::stod(line.substr(comma + 1));
    EXPECT_GE(f, prev_f);
    prev_f = f;
    ++rows;
  }
  EXPECT_GT(rows, 50);
  EXPECT_DOUBLE_EQ(prev_f, 1.0);
  std::remove(path.c_str());
}

TEST(WriteCdfCsv, FailsGracefully) {
  const stats::Ecdf empty;
  EXPECT_FALSE(write_cdf_csv("/no-such-dir-xyz/a.csv", empty, "x"));
}

TEST(TablePrinter, DoesNotCrash) {
  // Smoke: printing to a scratch FILE* produces non-empty output.
  TablePrinter table({"a", "bb"}, {6, 8});
  std::FILE* tmp = std::tmpfile();
  ASSERT_NE(tmp, nullptr);
  table.print_header(tmp);
  table.print_row({"1", "2"}, tmp);
  EXPECT_GT(std::ftell(tmp), 10);
  std::fclose(tmp);
}

}  // namespace
}  // namespace cn::core

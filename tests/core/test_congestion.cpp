#include "core/congestion.hpp"

#include <gtest/gtest.h>

#include <unordered_map>

#include "../helpers.hpp"

namespace cn::core {
namespace {

using cn::test::block_with_rates;
using cn::test::tx_with_rate;

/// Chain of 4 blocks at times 600, 1200, 1800, 2400.
btc::Chain four_block_chain() {
  btc::Chain chain(1);
  for (std::uint64_t h = 1; h <= 4; ++h) {
    chain.append(block_with_rates(h, {20.0, 5.0}, "/P/",
                                  600 * static_cast<SimTime>(h)));
  }
  return chain;
}

FirstSeenFn seen_map(const btc::Chain& chain,
                     const std::unordered_map<std::uint64_t, SimTime>& by_height) {
  // Maps every tx of block h to the same first-seen time.
  std::unordered_map<btc::Txid, SimTime> times;
  for (const auto& block : chain.blocks()) {
    const auto it = by_height.find(block.height());
    if (it == by_height.end()) continue;
    for (const auto& tx : block.txs()) times.emplace(tx.id(), it->second);
  }
  return [times](const btc::Txid& id) -> std::optional<SimTime> {
    const auto it = times.find(id);
    if (it == times.end()) return std::nullopt;
    return it->second;
  };
}

TEST(CollectSeenTxs, OmitsUnseen) {
  const auto chain = four_block_chain();
  const auto seen = collect_seen_txs(chain, seen_map(chain, {{1, 100}, {3, 1500}}));
  EXPECT_EQ(seen.size(), 4u);  // blocks 1 and 3 only, 2 txs each
}

TEST(CollectSeenTxs, RecordsRateAndBlock) {
  const auto chain = four_block_chain();
  const auto seen = collect_seen_txs(chain, seen_map(chain, {{2, 700}}));
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].block_height, 2u);
  EXPECT_DOUBLE_EQ(seen[0].fee_rate, 20.0);
  EXPECT_EQ(seen[0].first_seen, 700);
}

TEST(CollectSeenTxs, FlagsCpfpAndParent) {
  const auto parent = tx_with_rate(1.0, 250, 0, 6001);
  const auto child = btc::make_child_payment(
      10, 250, btc::Satoshi{10'000}, parent, btc::Address::derive("d"),
      btc::Satoshi{1}, 6002);
  btc::Coinbase cb;
  btc::Chain chain(1);
  chain.append(btc::Block(1, 600, cb,
                          {parent, child, tx_with_rate(5.0, 250, 0, 6003)}));
  const auto seen = collect_seen_txs(
      chain, [](const btc::Txid&) -> std::optional<SimTime> { return 0; });
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_TRUE(seen[0].cpfp_parent);
  EXPECT_FALSE(seen[0].cpfp);
  EXPECT_TRUE(seen[1].cpfp);
  EXPECT_FALSE(seen[2].cpfp);
  EXPECT_FALSE(seen[2].cpfp_parent);
}

TEST(CommitDelays, NextBlockIsOne) {
  const auto chain = four_block_chain();
  // Seen at t=100 (before block 1 at 600): delay = 1 block.
  const auto seen = collect_seen_txs(chain, seen_map(chain, {{1, 100}}));
  const auto delays = commit_delays_blocks(chain, seen);
  ASSERT_EQ(delays.size(), 2u);
  EXPECT_DOUBLE_EQ(delays[0], 1.0);
}

TEST(CommitDelays, SkippedBlocksCount) {
  const auto chain = four_block_chain();
  // Seen at t=100 but committed in block 3 (t=1800): blocks 1,2 passed.
  const auto seen = collect_seen_txs(chain, seen_map(chain, {{3, 100}}));
  const auto delays = commit_delays_blocks(chain, seen);
  ASSERT_EQ(delays.size(), 2u);
  EXPECT_DOUBLE_EQ(delays[0], 3.0);
}

TEST(CommitDelays, RaceClampsToOne) {
  const auto chain = four_block_chain();
  // Observer saw it after its commit block was mined (propagation race).
  const auto seen = collect_seen_txs(chain, seen_map(chain, {{1, 650}}));
  const auto delays = commit_delays_blocks(chain, seen);
  EXPECT_DOUBLE_EQ(delays[0], 1.0);
}

TEST(PendingAt, FiltersByLifetime) {
  const auto chain = four_block_chain();
  const auto seen = collect_seen_txs(chain, seen_map(chain, {{2, 700}, {4, 700}}));
  // At t=1000: both block-2 txs (commit at 1200) and block-4 txs (commit
  // at 2400) are pending.
  EXPECT_EQ(pending_at(seen, chain, 1000).size(), 4u);
  // At t=1200 the block-2 txs are committed.
  EXPECT_EQ(pending_at(seen, chain, 1200).size(), 2u);
  // At t=500 nothing has been seen yet.
  EXPECT_TRUE(pending_at(seen, chain, 500).empty());
}

TEST(FeeBand, PaperThresholds) {
  EXPECT_EQ(fee_band(1.0), FeeBand::kLow);
  EXPECT_EQ(fee_band(9.99), FeeBand::kLow);
  EXPECT_EQ(fee_band(10.0), FeeBand::kHigh);
  EXPECT_EQ(fee_band(99.9), FeeBand::kHigh);
  EXPECT_EQ(fee_band(100.0), FeeBand::kExorbitant);
}

TEST(FeeRatesAtLevel, UsesSnapshotSeries) {
  const auto chain = four_block_chain();
  const auto seen = collect_seen_txs(chain, seen_map(chain, {{1, 100}, {2, 700}}));
  node::SnapshotSeries series;
  series.record({50, 10, 50'000});    // none (unit 100k)
  series.record({650, 10, 350'000});  // high-ish: level medium
  const auto low = fee_rates_at_level(seen, series, 100'000,
                                      node::CongestionLevel::kNone);
  const auto med = fee_rates_at_level(seen, series, 100'000,
                                      node::CongestionLevel::kMedium);
  EXPECT_EQ(low.size(), 2u);  // block-1 txs seen at t=100
  EXPECT_EQ(med.size(), 2u);  // block-2 txs seen at t=700
}

TEST(DelaysForBand, AlignedFiltering) {
  const auto chain = four_block_chain();
  const auto seen = collect_seen_txs(chain, seen_map(chain, {{1, 100}}));
  const auto delays = commit_delays_blocks(chain, seen);
  // Rates are 20 (high band) and 5 (low band).
  EXPECT_EQ(delays_for_band(seen, delays, FeeBand::kHigh).size(), 1u);
  EXPECT_EQ(delays_for_band(seen, delays, FeeBand::kLow).size(), 1u);
  EXPECT_TRUE(delays_for_band(seen, delays, FeeBand::kExorbitant).empty());
}

TEST(FeeRatesOfPool, FiltersByBlockPredicate) {
  const auto chain = four_block_chain();
  const auto seen = collect_seen_txs(
      chain, [](const btc::Txid&) -> std::optional<SimTime> { return 0; });
  const auto rates = fee_rates_of_pool(
      seen, [](std::uint64_t height) { return height <= 2; });
  EXPECT_EQ(rates.size(), 4u);
}

}  // namespace
}  // namespace cn::core

#include "core/delay_model.hpp"

#include <gtest/gtest.h>

#include "core/congestion.hpp"
#include "sim/dataset.hpp"

namespace cn::core {
namespace {

/// Synthetic observations: delay = max(1, 60 / fee_rate) with a fixed
/// congestion level — strictly decreasing in fee.
struct SyntheticFixture {
  std::vector<SeenTx> txs;
  std::vector<double> delays;
  node::SnapshotSeries snapshots;

  SyntheticFixture() {
    snapshots.record({1, 10, 5'000'000});  // permanently "high" at 1MB unit
    for (int i = 0; i < 3000; ++i) {
      const double rate = 1.0 + (i % 100);
      SeenTx tx;
      tx.first_seen = 10 + i;
      tx.fee_rate = rate;
      txs.push_back(tx);
      delays.push_back(std::max(1.0, 60.0 / rate));
    }
  }
};

TEST(DelayModel, PredictsMonotoneDecreasingDelay) {
  SyntheticFixture f;
  const auto model = DelayModel::fit(f.txs, f.delays, f.snapshots, 1'000'000);
  EXPECT_EQ(model.sample_count(), 3000u);
  const double slow = model.predict_quantile(2.0, node::CongestionLevel::kHigh, 0.5);
  const double mid = model.predict_quantile(15.0, node::CongestionLevel::kHigh, 0.5);
  const double fast = model.predict_quantile(80.0, node::CongestionLevel::kHigh, 0.5);
  ASSERT_GT(slow, 0.0);
  EXPECT_GT(slow, mid);
  EXPECT_GT(mid, fast);
  EXPECT_NEAR(fast, 1.0, 0.5);
}

TEST(DelayModel, FeeForTargetInvertsPrediction) {
  SyntheticFixture f;
  const auto model = DelayModel::fit(f.txs, f.delays, f.snapshots, 1'000'000);
  const double fee = model.fee_for_target(2.0, node::CongestionLevel::kHigh, 0.9);
  ASSERT_GT(fee, 0.0);
  const double check = model.predict_quantile(fee, node::CongestionLevel::kHigh, 0.9);
  EXPECT_LE(check, 2.0);
  // A clearly cheaper fee must miss the target.
  EXPECT_GT(model.predict_quantile(fee / 8.0, node::CongestionLevel::kHigh, 0.9),
            2.0);
}

TEST(DelayModel, UnseenLevelReturnsNegative) {
  SyntheticFixture f;  // only kHigh has data
  const auto model = DelayModel::fit(f.txs, f.delays, f.snapshots, 1'000'000);
  EXPECT_LT(model.predict_quantile(10.0, node::CongestionLevel::kNone, 0.5), 0.0);
  EXPECT_LT(model.fee_for_target(2.0, node::CongestionLevel::kNone, 0.5), 0.0);
}

TEST(DelayModel, EmptyFitIsHarmless) {
  node::SnapshotSeries snapshots;
  const auto model = DelayModel::fit({}, {}, snapshots, 1'000'000);
  EXPECT_EQ(model.sample_count(), 0u);
  EXPECT_LT(model.predict_quantile(5.0, node::CongestionLevel::kNone, 0.5), 0.0);
}

TEST(DelayModel, SparseBinsBorrowNeighbours) {
  // One lonely observation: any nearby query should still answer.
  node::SnapshotSeries snapshots;
  snapshots.record({1, 1, 0});
  std::vector<SeenTx> txs(1);
  txs[0].first_seen = 5;
  txs[0].fee_rate = 10.0;
  const std::vector<double> delays = {4.0};
  DelayModel::Options options;
  options.min_samples = 1;
  const auto model = DelayModel::fit(txs, delays, snapshots, 1'000'000, options);
  EXPECT_NEAR(model.predict_quantile(9.0, node::CongestionLevel::kNone, 0.5), 4.0,
              1e-9);
  EXPECT_NEAR(model.predict_quantile(300.0, node::CongestionLevel::kNone, 0.5), 4.0,
              1e-9);
}

TEST(DelayModel, EndToEndOnSimulatedData) {
  const sim::SimResult world = sim::make_dataset(sim::DatasetKind::kA, 21, 0.15);
  const auto seen = collect_seen_txs(world.chain, [&](const btc::Txid& id) {
    return world.observer.first_seen(id);
  });
  const auto delays = commit_delays_blocks(world.chain, seen);
  const auto model = DelayModel::fit(seen, delays, world.observer.snapshots(),
                                     world.config.max_block_vsize);
  ASSERT_GT(model.sample_count(), 1000u);
  // Paying far more must not predict (meaningfully) slower commits.
  const double cheap =
      model.predict_quantile(1.5, node::CongestionLevel::kHigh, 0.9);
  const double rich =
      model.predict_quantile(200.0, node::CongestionLevel::kHigh, 0.9);
  ASSERT_GT(cheap, 0.0);
  ASSERT_GT(rich, 0.0);
  EXPECT_LE(rich, cheap);
}

}  // namespace
}  // namespace cn::core

#include "core/pair_violations.hpp"

#include <gtest/gtest.h>

namespace cn::core {
namespace {

SeenTx seen(SimTime t, double rate, std::uint64_t block, bool cpfp = false,
            bool cpfp_parent = false) {
  return SeenTx{t, rate, block, cpfp, cpfp_parent};
}

TEST(PairViolations, DetectsViolation) {
  // i: earlier, higher fee, LATER block than j -> violation.
  const std::vector<SeenTx> txs = {seen(0, 10.0, 5), seen(100, 2.0, 4)};
  const auto stats = count_pair_violations(txs, 0, false);
  EXPECT_EQ(stats.predicted_pairs, 1u);
  EXPECT_EQ(stats.violations, 1u);
  EXPECT_DOUBLE_EQ(stats.fraction(), 1.0);
}

TEST(PairViolations, NormCompliantPairNotCounted) {
  const std::vector<SeenTx> txs = {seen(0, 10.0, 4), seen(100, 2.0, 5)};
  const auto stats = count_pair_violations(txs, 0, false);
  EXPECT_EQ(stats.predicted_pairs, 1u);
  EXPECT_EQ(stats.violations, 0u);
}

TEST(PairViolations, SameBlockIsNotViolation) {
  const std::vector<SeenTx> txs = {seen(0, 10.0, 4), seen(100, 2.0, 4)};
  const auto stats = count_pair_violations(txs, 0, false);
  EXPECT_EQ(stats.violations, 0u);
}

TEST(PairViolations, LowerFeeFirstMakesNoPrediction) {
  // Earlier tx has LOWER fee: the norm predicts nothing about the pair.
  const std::vector<SeenTx> txs = {seen(0, 1.0, 9), seen(100, 5.0, 3)};
  const auto stats = count_pair_violations(txs, 0, false);
  EXPECT_EQ(stats.predicted_pairs, 0u);
  EXPECT_DOUBLE_EQ(stats.fraction(), 0.0);
}

TEST(PairViolations, EpsilonTightensArrivalConstraint) {
  // 5 seconds apart: counted at eps=0, excluded at eps=10s (could be a
  // propagation artefact, per the paper).
  const std::vector<SeenTx> txs = {seen(0, 10.0, 5), seen(5, 2.0, 4)};
  EXPECT_EQ(count_pair_violations(txs, 0, false).violations, 1u);
  EXPECT_EQ(count_pair_violations(txs, 10, false).violations, 0u);
  EXPECT_EQ(count_pair_violations(txs, 10, false).predicted_pairs, 0u);
}

TEST(PairViolations, CpfpExclusionDropsFlaggedTxs) {
  const std::vector<SeenTx> txs = {
      seen(0, 10.0, 5, /*cpfp=*/false, /*cpfp_parent=*/true),  // dropped
      seen(100, 2.0, 4),
      seen(200, 1.0, 6, /*cpfp=*/true),  // dropped
  };
  const auto with = count_pair_violations(txs, 0, false);
  const auto without = count_pair_violations(txs, 0, true);
  EXPECT_EQ(with.predicted_pairs, 3u);  // (0,1), (0,2) and (1,2)
  EXPECT_EQ(without.predicted_pairs, 0u);
}

TEST(PairViolations, UnsortedInputHandled) {
  // Same as DetectsViolation but given in reverse order.
  const std::vector<SeenTx> txs = {seen(100, 2.0, 4), seen(0, 10.0, 5)};
  const auto stats = count_pair_violations(txs, 0, false);
  EXPECT_EQ(stats.violations, 1u);
}

TEST(PairViolations, DownsamplingKeepsFractionStable) {
  // Construct a large set with a known ~50% violation rate among
  // predicted pairs, then check the subsample tracks it.
  std::vector<SeenTx> txs;
  unsigned state = 12345;
  for (int i = 0; i < 12'000; ++i) {
    state = state * 1664525u + 1013904223u;
    const double rate = 1.0 + static_cast<double>(state % 100);
    state = state * 1664525u + 1013904223u;
    const std::uint64_t block = 1 + state % 50;
    txs.push_back(seen(i * 10, rate, block));
  }
  const auto full = count_pair_violations(txs, 0, false, /*max_txs=*/0);
  const auto sampled = count_pair_violations(txs, 0, false, /*max_txs=*/2000);
  ASSERT_GT(full.predicted_pairs, 0u);
  ASSERT_GT(sampled.predicted_pairs, 0u);
  EXPECT_LT(sampled.predicted_pairs, full.predicted_pairs);
  EXPECT_NEAR(sampled.fraction(), full.fraction(), 0.05);
}

TEST(ViolationsByBlock, AttributesToTheEarlyCommittingBlock) {
  // i (better) committed in block 6; j (worse) jumped ahead in block 4.
  // Block 4's miner caused the violation.
  const std::vector<SeenTx> txs = {seen(0, 10.0, 6), seen(100, 2.0, 4),
                                   seen(200, 1.5, 5)};
  const auto by_block = violations_by_block(txs, 0, false);
  // Pairs: (0,1): violation -> block 4. (0,2): violation -> block 5.
  // (1,2): 2.0 > 1.5, b 4 < 5: compliant.
  ASSERT_EQ(by_block.size(), 2u);
  EXPECT_EQ(by_block.at(4), 1u);
  EXPECT_EQ(by_block.at(5), 1u);
}

TEST(ViolationsByBlock, TotalsMatchPairCount) {
  std::vector<SeenTx> txs;
  unsigned state = 99;
  for (int i = 0; i < 300; ++i) {
    state = state * 1664525u + 1013904223u;
    txs.push_back(seen(i * 20, 1.0 + state % 50, 1 + state % 12));
  }
  const auto stats = count_pair_violations(txs, 0, false, 0);
  const auto by_block = violations_by_block(txs, 0, false, 0);
  std::uint64_t total = 0;
  for (const auto& [height, n] : by_block) total += n;
  EXPECT_EQ(total, stats.violations);
}

TEST(PairViolations, EmptyAndSingleton) {
  EXPECT_EQ(count_pair_violations({}, 0, false).predicted_pairs, 0u);
  EXPECT_EQ(count_pair_violations({seen(0, 1.0, 1)}, 0, false).predicted_pairs, 0u);
}

}  // namespace
}  // namespace cn::core

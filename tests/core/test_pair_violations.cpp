#include "core/pair_violations.hpp"

#include <gtest/gtest.h>

namespace cn::core {
namespace {

SeenTx seen(SimTime t, double rate, std::uint64_t block, bool cpfp = false,
            bool cpfp_parent = false) {
  return SeenTx{t, rate, block, cpfp, cpfp_parent};
}

TEST(PairViolations, DetectsViolation) {
  // i: earlier, higher fee, LATER block than j -> violation.
  const std::vector<SeenTx> txs = {seen(0, 10.0, 5), seen(100, 2.0, 4)};
  const auto stats = count_pair_violations(txs, 0, false);
  EXPECT_EQ(stats.predicted_pairs, 1u);
  EXPECT_EQ(stats.violations, 1u);
  EXPECT_DOUBLE_EQ(stats.fraction(), 1.0);
}

TEST(PairViolations, NormCompliantPairNotCounted) {
  const std::vector<SeenTx> txs = {seen(0, 10.0, 4), seen(100, 2.0, 5)};
  const auto stats = count_pair_violations(txs, 0, false);
  EXPECT_EQ(stats.predicted_pairs, 1u);
  EXPECT_EQ(stats.violations, 0u);
}

TEST(PairViolations, SameBlockIsNotViolation) {
  const std::vector<SeenTx> txs = {seen(0, 10.0, 4), seen(100, 2.0, 4)};
  const auto stats = count_pair_violations(txs, 0, false);
  EXPECT_EQ(stats.violations, 0u);
}

TEST(PairViolations, LowerFeeFirstMakesNoPrediction) {
  // Earlier tx has LOWER fee: the norm predicts nothing about the pair.
  const std::vector<SeenTx> txs = {seen(0, 1.0, 9), seen(100, 5.0, 3)};
  const auto stats = count_pair_violations(txs, 0, false);
  EXPECT_EQ(stats.predicted_pairs, 0u);
  EXPECT_DOUBLE_EQ(stats.fraction(), 0.0);
}

TEST(PairViolations, EpsilonTightensArrivalConstraint) {
  // 5 seconds apart: counted at eps=0, excluded at eps=10s (could be a
  // propagation artefact, per the paper).
  const std::vector<SeenTx> txs = {seen(0, 10.0, 5), seen(5, 2.0, 4)};
  EXPECT_EQ(count_pair_violations(txs, 0, false).violations, 1u);
  EXPECT_EQ(count_pair_violations(txs, 10, false).violations, 0u);
  EXPECT_EQ(count_pair_violations(txs, 10, false).predicted_pairs, 0u);
}

TEST(PairViolations, CpfpExclusionDropsFlaggedTxs) {
  const std::vector<SeenTx> txs = {
      seen(0, 10.0, 5, /*cpfp=*/false, /*cpfp_parent=*/true),  // dropped
      seen(100, 2.0, 4),
      seen(200, 1.0, 6, /*cpfp=*/true),  // dropped
  };
  const auto with = count_pair_violations(txs, 0, false);
  const auto without = count_pair_violations(txs, 0, true);
  EXPECT_EQ(with.predicted_pairs, 3u);  // (0,1), (0,2) and (1,2)
  EXPECT_EQ(without.predicted_pairs, 0u);
}

TEST(PairViolations, UnsortedInputHandled) {
  // Same as DetectsViolation but given in reverse order.
  const std::vector<SeenTx> txs = {seen(100, 2.0, 4), seen(0, 10.0, 5)};
  const auto stats = count_pair_violations(txs, 0, false);
  EXPECT_EQ(stats.violations, 1u);
}

TEST(PairViolations, DownsamplingKeepsFractionStable) {
  // Construct a large set with a known ~50% violation rate among
  // predicted pairs, then check the subsample tracks it.
  std::vector<SeenTx> txs;
  unsigned state = 12345;
  for (int i = 0; i < 12'000; ++i) {
    state = state * 1664525u + 1013904223u;
    const double rate = 1.0 + static_cast<double>(state % 100);
    state = state * 1664525u + 1013904223u;
    const std::uint64_t block = 1 + state % 50;
    txs.push_back(seen(i * 10, rate, block));
  }
  const auto full = count_pair_violations(txs, 0, false, /*max_txs=*/0);
  const auto sampled = count_pair_violations(txs, 0, false, /*max_txs=*/2000);
  ASSERT_GT(full.predicted_pairs, 0u);
  ASSERT_GT(sampled.predicted_pairs, 0u);
  EXPECT_LT(sampled.predicted_pairs, full.predicted_pairs);
  EXPECT_NEAR(sampled.fraction(), full.fraction(), 0.05);
}

TEST(ViolationsByBlock, AttributesToTheEarlyCommittingBlock) {
  // i (better) committed in block 6; j (worse) jumped ahead in block 4.
  // Block 4's miner caused the violation.
  const std::vector<SeenTx> txs = {seen(0, 10.0, 6), seen(100, 2.0, 4),
                                   seen(200, 1.5, 5)};
  const auto by_block = violations_by_block(txs, 0, false);
  // Pairs: (0,1): violation -> block 4. (0,2): violation -> block 5.
  // (1,2): 2.0 > 1.5, b 4 < 5: compliant.
  ASSERT_EQ(by_block.size(), 2u);
  EXPECT_EQ(by_block.at(4), 1u);
  EXPECT_EQ(by_block.at(5), 1u);
}

TEST(ViolationsByBlock, TotalsMatchPairCount) {
  std::vector<SeenTx> txs;
  unsigned state = 99;
  for (int i = 0; i < 300; ++i) {
    state = state * 1664525u + 1013904223u;
    txs.push_back(seen(i * 20, 1.0 + state % 50, 1 + state % 12));
  }
  const auto stats = count_pair_violations(txs, 0, false, 0);
  const auto by_block = violations_by_block(txs, 0, false, 0);
  std::uint64_t total = 0;
  for (const auto& [height, n] : by_block) total += n;
  EXPECT_EQ(total, stats.violations);
}

TEST(PairViolations, EmptyAndSingleton) {
  EXPECT_EQ(count_pair_violations({}, 0, false).predicted_pairs, 0u);
  EXPECT_EQ(count_pair_violations({seen(0, 1.0, 1)}, 0, false).predicted_pairs, 0u);
}

// --- Fenwick vs brute-force cross-validation -------------------------------

namespace property {

/// Deterministic workload generator covering the nasty cases: duplicate
/// arrival times (epsilon boundary), duplicate fee-rates (strict-fee
/// tie-breaking), narrow block ranges, and CPFP flags.
std::vector<SeenTx> random_workload(unsigned seed, std::size_t n,
                                    SimTime time_range, int fee_levels,
                                    std::uint64_t block_levels,
                                    bool with_cpfp) {
  std::vector<SeenTx> txs;
  txs.reserve(n);
  unsigned state = seed;
  const auto next = [&state] {
    state = state * 1664525u + 1013904223u;
    return state;
  };
  for (std::size_t i = 0; i < n; ++i) {
    SeenTx t;
    t.first_seen = static_cast<SimTime>(next() % (time_range + 1));
    t.fee_rate = 1.0 + static_cast<double>(next() % fee_levels);
    t.block_height = 1 + next() % block_levels;
    if (with_cpfp) {
      t.cpfp = next() % 8 == 0;
      t.cpfp_parent = next() % 8 == 1;
    }
    txs.push_back(t);
  }
  return txs;
}

void expect_algorithms_agree(const std::vector<SeenTx>& txs, SimTime epsilon,
                             bool exclude_cpfp, const char* label) {
  const auto fast = count_pair_violations(txs, epsilon, exclude_cpfp, 0,
                                          PairAlgorithm::kFenwick);
  const auto slow = count_pair_violations(txs, epsilon, exclude_cpfp, 0,
                                          PairAlgorithm::kBruteForce);
  EXPECT_EQ(fast.predicted_pairs, slow.predicted_pairs) << label;
  EXPECT_EQ(fast.violations, slow.violations) << label;

  const auto fast_by_block =
      violations_by_block(txs, epsilon, exclude_cpfp, 0, PairAlgorithm::kFenwick);
  const auto slow_by_block = violations_by_block(txs, epsilon, exclude_cpfp, 0,
                                                 PairAlgorithm::kBruteForce);
  EXPECT_EQ(fast_by_block, slow_by_block) << label;
}

}  // namespace property

TEST(PairViolationsProperty, FenwickMatchesBruteForceOnRandomWorkloads) {
  for (unsigned seed : {1u, 7u, 42u, 1337u, 99991u}) {
    const auto txs = property::random_workload(seed, 400, 5'000, 60, 40, false);
    for (SimTime eps : {SimTime{0}, SimTime{1}, SimTime{13}, SimTime{600}}) {
      property::expect_algorithms_agree(txs, eps, false, "random workload");
    }
  }
}

TEST(PairViolationsProperty, AgreesUnderHeavyTies) {
  // Few distinct times/fees/blocks: the epsilon boundary (t_i + eps ==
  // t_j) and the strict fee comparison are hit constantly.
  for (unsigned seed : {3u, 17u, 2024u}) {
    const auto txs = property::random_workload(seed, 300, 20, 4, 3, false);
    for (SimTime eps : {SimTime{0}, SimTime{1}, SimTime{5}, SimTime{20}}) {
      property::expect_algorithms_agree(txs, eps, false, "heavy ties");
    }
  }
}

TEST(PairViolationsProperty, AgreesWithCpfpExclusion) {
  for (unsigned seed : {11u, 23u, 456u}) {
    const auto txs = property::random_workload(seed, 350, 3'000, 30, 25, true);
    property::expect_algorithms_agree(txs, 0, true, "cpfp excluded");
    property::expect_algorithms_agree(txs, 10, true, "cpfp excluded eps=10");
    property::expect_algorithms_agree(txs, 0, false, "cpfp kept");
  }
}

TEST(PairViolationsProperty, AgreesOnEpsilonExactBoundary) {
  // Pairs exactly eps apart must NOT be predicted (strict inequality).
  const std::vector<SeenTx> txs = {seen(0, 10.0, 5), seen(10, 2.0, 4),
                                   seen(20, 1.0, 3), seen(30, 5.0, 2)};
  for (SimTime eps : {SimTime{9}, SimTime{10}, SimTime{11}, SimTime{30}}) {
    property::expect_algorithms_agree(txs, eps, false, "exact boundary");
  }
  const auto at_eps10 =
      count_pair_violations(txs, 10, false, 0, PairAlgorithm::kFenwick);
  // (0,1) is exactly 10 apart -> excluded; (0,2), (0,3), (1,2), (1,3), (2,3)
  // have gaps 20/30/10/20/10 -> only gaps > 10 qualify, with f_i > f_j:
  // (0,2) predicted+violation, (0,3) predicted+violation, (1,3) gap 20 but
  // 2.0 < 5.0 -> no prediction.
  EXPECT_EQ(at_eps10.predicted_pairs, 2u);
  EXPECT_EQ(at_eps10.violations, 2u);
}

TEST(PairViolationsProperty, NegativeEpsilonClampedToZero) {
  const auto txs = property::random_workload(5u, 200, 1'000, 20, 10, false);
  const auto clamped =
      count_pair_violations(txs, -50, false, 0, PairAlgorithm::kFenwick);
  const auto zero = count_pair_violations(txs, 0, false, 0,
                                          PairAlgorithm::kBruteForce);
  EXPECT_EQ(clamped.predicted_pairs, zero.predicted_pairs);
  EXPECT_EQ(clamped.violations, zero.violations);
}

TEST(PairViolationsProperty, DownsamplingStillSupportedOptIn) {
  const auto txs = property::random_workload(21u, 1'000, 10'000, 50, 30, false);
  const auto fast = count_pair_violations(txs, 0, false, /*max_txs=*/250,
                                          PairAlgorithm::kFenwick);
  const auto slow = count_pair_violations(txs, 0, false, /*max_txs=*/250,
                                          PairAlgorithm::kBruteForce);
  EXPECT_EQ(fast.predicted_pairs, slow.predicted_pairs);
  EXPECT_EQ(fast.violations, slow.violations);
  // The sample really is smaller than the full set.
  const auto full = count_pair_violations(txs, 0, false, 0);
  EXPECT_LT(fast.predicted_pairs, full.predicted_pairs);
}

TEST(PairViolationsProperty, ByBlockTotalsMatchAcrossAlgorithms) {
  const auto txs = property::random_workload(31u, 500, 4'000, 40, 20, true);
  for (const bool exclude : {false, true}) {
    const auto stats =
        count_pair_violations(txs, 7, exclude, 0, PairAlgorithm::kFenwick);
    const auto by_block =
        violations_by_block(txs, 7, exclude, 0, PairAlgorithm::kFenwick);
    std::uint64_t total = 0;
    for (const auto& [height, n] : by_block) total += n;
    EXPECT_EQ(total, stats.violations);
  }
}

}  // namespace
}  // namespace cn::core

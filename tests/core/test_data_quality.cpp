#include "core/data_quality.hpp"

#include <gtest/gtest.h>

#include "../helpers.hpp"

namespace cn::core {
namespace {

// Observer online 15..600, down until 1800, online 1800..2400.
node::SnapshotSeries series_with_gap() {
  node::SnapshotSeries series;
  for (SimTime t = 15; t <= 600; t += 15) series.record({t, 1, 100});
  for (SimTime t = 1800; t <= 2400; t += 15) series.record({t, 1, 100});
  return series;
}

btc::Chain four_block_chain() {
  btc::Chain chain(100);
  chain.append(cn::test::block_with_rates(100, {5.0, 3.0}, "/A/", 600));
  chain.append(cn::test::block_with_rates(101, {4.0}, "/A/", 1200));
  chain.append(cn::test::block_with_rates(102, {2.0}, "/B/", 2400));
  chain.append(cn::test::block_with_rates(103, {1.0}, "/B/", 2460));
  return chain;
}

TEST(DataQuality, NoEvidenceMeansPerfectCoverage) {
  const auto chain = four_block_chain();
  const auto report = assess_data_quality(chain, nullptr, nullptr);
  EXPECT_FALSE(report.has_snapshots);
  EXPECT_FALSE(report.has_first_seen);
  EXPECT_TRUE(report.gaps.empty());
  EXPECT_DOUBLE_EQ(report.mean_coverage, 1.0);
  for (const auto& bc : report.blocks) {
    EXPECT_DOUBLE_EQ(bc.coverage, 1.0);
    EXPECT_FALSE(bc.in_snapshot_gap);
  }
}

TEST(DataQuality, SnapshotGapZeroesOverlappingBlocks) {
  const auto chain = four_block_chain();
  const auto series = series_with_gap();
  const auto report = assess_data_quality(chain, &series, nullptr);
  ASSERT_TRUE(report.has_snapshots);
  ASSERT_EQ(report.gaps.size(), 1u);
  EXPECT_EQ(report.gaps[0].from, 600);
  EXPECT_EQ(report.gaps[0].to, 1800);

  // Block 101 gathered txs in [600, 1200] and 102 in [1200, 2400]: both
  // overlap the outage. 103's window [2400, 2460] is fully observed.
  EXPECT_FALSE(report.find(100)->in_snapshot_gap);
  EXPECT_TRUE(report.find(101)->in_snapshot_gap);
  EXPECT_TRUE(report.find(102)->in_snapshot_gap);
  EXPECT_FALSE(report.find(103)->in_snapshot_gap);
  EXPECT_DOUBLE_EQ(report.coverage_at(101), 0.0);
  EXPECT_DOUBLE_EQ(report.coverage_at(103), 1.0);
  EXPECT_EQ(report.low_coverage_blocks(0.5), 2u);
  EXPECT_DOUBLE_EQ(report.mean_coverage, 0.5);
}

TEST(DataQuality, FirstSeenCoverageIsPerBlockFraction) {
  btc::Chain chain(10);
  auto block = cn::test::block_with_rates(10, {9.0, 7.0, 5.0, 3.0}, "/A/", 600);
  std::unordered_map<btc::Txid, SimTime> first_seen;
  first_seen.emplace(block.txs()[0].id(), 10);
  first_seen.emplace(block.txs()[2].id(), 20);
  chain.append(std::move(block));
  chain.append(cn::test::block_with_rates(11, {}, "/A/", 1200));  // empty

  const auto report = assess_data_quality(chain, nullptr, &first_seen);
  ASSERT_TRUE(report.has_first_seen);
  EXPECT_EQ(report.first_seen_txs, 2u);
  EXPECT_DOUBLE_EQ(report.find(10)->first_seen_coverage, 0.5);
  EXPECT_DOUBLE_EQ(report.coverage_at(10), 0.5);
  // An empty block has nothing to miss.
  EXPECT_DOUBLE_EQ(report.coverage_at(11), 1.0);
}

TEST(DataQuality, GapOverridesFirstSeenCoverage) {
  const auto chain = four_block_chain();
  const auto series = series_with_gap();
  std::unordered_map<btc::Txid, SimTime> first_seen;
  for (const auto& block : chain.blocks()) {
    for (const auto& tx : block.txs()) first_seen.emplace(tx.id(), 1);
  }
  const auto report = assess_data_quality(chain, &series, &first_seen);
  // Fully first-seen-covered, but the outage still zeroes block 101.
  EXPECT_DOUBLE_EQ(report.find(101)->first_seen_coverage, 1.0);
  EXPECT_DOUBLE_EQ(report.coverage_at(101), 0.0);
}

TEST(DataQuality, UnknownHeightHasNoEvidenceAgainstIt) {
  const auto report =
      assess_data_quality(four_block_chain(), nullptr, nullptr);
  EXPECT_DOUBLE_EQ(report.coverage_at(999), 1.0);
  EXPECT_EQ(report.find(999), nullptr);
}

TEST(SnapshotGaps, DetectsWindowsAgainstCadence) {
  const auto series = series_with_gap();
  const auto gaps = series.gaps(15, 2.0);
  ASSERT_EQ(gaps.size(), 1u);
  EXPECT_EQ(gaps[0].from, 600);
  EXPECT_EQ(gaps[0].to, 1800);
  // A generous factor swallows the outage.
  EXPECT_TRUE(series.gaps(15, 100.0).empty());
  // An on-cadence series has no gaps.
  node::SnapshotSeries steady;
  for (SimTime t = 15; t <= 150; t += 15) steady.record({t, 1, 1});
  EXPECT_TRUE(steady.gaps(15, 2.0).empty());
}

}  // namespace
}  // namespace cn::core

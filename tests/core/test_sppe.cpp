#include "core/sppe.hpp"

#include <gtest/gtest.h>

#include "../helpers.hpp"

namespace cn::core {
namespace {

using cn::test::block_with_rates;

TEST(Sppe, ZeroForPerfectOrdering) {
  const auto block = block_with_rates(1, {9, 7, 5, 3});
  const auto sppe = block_sppe(block);
  ASSERT_EQ(sppe.size(), 4u);
  for (double s : sppe) EXPECT_DOUBLE_EQ(s, 0.0);
}

TEST(Sppe, PositiveForHoistedLowFeeTx) {
  // A 1 sat/vB tx at the very top of a block of high-fee txs: predicted
  // bottom (rank 100), observed top (rank 0) -> SPPE = +100.
  const auto block = block_with_rates(1, {1, 50, 40, 30, 20});
  const auto sppe = block_sppe(block);
  EXPECT_DOUBLE_EQ(sppe[0], 100.0);
  // Everyone else was pushed down by one slot: small negative.
  for (std::size_t i = 1; i < sppe.size(); ++i) EXPECT_LT(sppe[i], 0.0);
}

TEST(Sppe, NegativeForBuriedHighFeeTx) {
  const auto block = block_with_rates(1, {50, 40, 30, 20, 90});
  const auto sppe = block_sppe(block);
  EXPECT_DOUBLE_EQ(sppe[4], -100.0);
}

TEST(Sppe, SumIsZero) {
  // Signed displacements over a permutation cancel.
  const auto block = block_with_rates(1, {3, 9, 1, 7, 5, 2, 8});
  const auto sppe = block_sppe(block);
  double sum = 0;
  for (double s : sppe) sum += s;
  EXPECT_NEAR(sum, 0.0, 1e-9);
}

TEST(Sppe, EmptyForTinyBlocks) {
  EXPECT_TRUE(block_sppe(block_with_rates(1, {})).empty());
  EXPECT_TRUE(block_sppe(block_with_rates(1, {1.0})).empty());
}

TEST(Sppe, TxSppeIndexesBlockSppe) {
  const auto block = block_with_rates(1, {1, 50, 40});
  EXPECT_DOUBLE_EQ(tx_sppe(block, 0), block_sppe(block)[0]);
}

TEST(MeanSppe, RestrictsToPool) {
  btc::Chain chain(1);
  chain.append(block_with_rates(1, {1, 50, 40}, "/Selfish/"));   // hoisted tx at 0
  chain.append(block_with_rates(2, {60, 50, 40}, "/Honest/"));   // clean

  btc::CoinbaseTagRegistry registry;
  registry.add("Selfish", "/Selfish/");
  registry.add("Honest", "/Honest/");
  const PoolAttribution attribution(chain, registry);

  // c-txs: position 0 in both blocks.
  const std::vector<TxRef> txs = {{1, 0}, {2, 0}};

  std::size_t count = 0;
  const double selfish = mean_sppe(chain, txs, attribution, "Selfish", &count);
  EXPECT_EQ(count, 1u);
  EXPECT_DOUBLE_EQ(selfish, 100.0);

  const double honest = mean_sppe(chain, txs, attribution, "Honest", &count);
  EXPECT_EQ(count, 1u);
  EXPECT_DOUBLE_EQ(honest, 0.0);

  // No pool restriction: averages both.
  const double all = mean_sppe(chain, txs, attribution, "", &count);
  EXPECT_EQ(count, 2u);
  EXPECT_DOUBLE_EQ(all, 50.0);
}

TEST(MeanSppe, EmptySetYieldsZeroCount) {
  btc::Chain chain(1);
  chain.append(block_with_rates(1, {5, 3}));
  btc::CoinbaseTagRegistry registry;
  const PoolAttribution attribution(chain, registry);
  std::size_t count = 99;
  const double m = mean_sppe(chain, {}, attribution, "", &count);
  EXPECT_EQ(count, 0u);
  EXPECT_DOUBLE_EQ(m, 0.0);
}

}  // namespace
}  // namespace cn::core

#include "core/wallet_inference.hpp"

#include <gtest/gtest.h>

#include "../helpers.hpp"

namespace cn::core {
namespace {

using cn::test::block_with_rates;
using cn::test::tx_with_rate;

btc::Block block_for_pool(std::uint64_t height, const std::string& pool,
                          const std::string& wallet_label,
                          std::vector<btc::Transaction> txs = {}) {
  btc::Coinbase cb;
  cb.tag = btc::conventional_marker(pool);
  cb.reward_address = btc::Address::derive(wallet_label);
  cb.reward = btc::Satoshi{625'000'000};
  return btc::Block(height, 600 * static_cast<SimTime>(height), cb, std::move(txs));
}

btc::CoinbaseTagRegistry small_registry() {
  btc::CoinbaseTagRegistry reg;
  reg.add("F2Pool", "/F2Pool/");
  reg.add("ViaBTC", "/ViaBTC/");
  return reg;
}

TEST(PoolAttribution, CountsAndShares) {
  btc::Chain chain(1);
  chain.append(block_for_pool(1, "F2Pool", "f2/w0"));
  chain.append(block_for_pool(2, "F2Pool", "f2/w1"));
  chain.append(block_for_pool(3, "ViaBTC", "via/w0"));
  const PoolAttribution attribution(chain, small_registry());
  EXPECT_EQ(attribution.total_blocks(), 3u);
  EXPECT_EQ(attribution.blocks_of("F2Pool"), 2u);
  EXPECT_EQ(attribution.blocks_of("ViaBTC"), 1u);
  EXPECT_EQ(attribution.blocks_of("Nobody"), 0u);
  EXPECT_NEAR(attribution.hash_share("F2Pool"), 2.0 / 3.0, 1e-12);
}

TEST(PoolAttribution, PoolOfHeight) {
  btc::Chain chain(10);
  chain.append(block_for_pool(10, "F2Pool", "w"));
  const PoolAttribution attribution(chain, small_registry());
  const auto pool = attribution.pool_of(10);
  ASSERT_TRUE(pool.has_value());
  EXPECT_EQ(*pool, "F2Pool");
  EXPECT_FALSE(attribution.pool_of(11).has_value());
}

TEST(PoolAttribution, UnidentifiedBlocks) {
  btc::Chain chain(1);
  chain.append(block_for_pool(1, "F2Pool", "w"));
  btc::Coinbase blank;  // anonymous block
  chain.append(btc::Block(2, 1200, blank, {}));
  const PoolAttribution attribution(chain, small_registry());
  EXPECT_EQ(attribution.unidentified_blocks(), 1u);
  EXPECT_FALSE(attribution.pool_of(2).has_value());
}

TEST(PoolAttribution, CollectsDistinctRewardWallets) {
  btc::Chain chain(1);
  chain.append(block_for_pool(1, "F2Pool", "f2/w0"));
  chain.append(block_for_pool(2, "F2Pool", "f2/w1"));
  chain.append(block_for_pool(3, "F2Pool", "f2/w0"));  // repeat
  const PoolAttribution attribution(chain, small_registry());
  EXPECT_EQ(attribution.wallets_of("F2Pool").size(), 2u);
  EXPECT_TRUE(attribution.wallets_of("Unknown").empty());
}

TEST(PoolAttribution, PoolsByBlocksOrdered) {
  btc::Chain chain(1);
  chain.append(block_for_pool(1, "ViaBTC", "w0"));
  chain.append(block_for_pool(2, "F2Pool", "w1"));
  chain.append(block_for_pool(3, "F2Pool", "w2"));
  const PoolAttribution attribution(chain, small_registry());
  const auto order = attribution.pools_by_blocks();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "F2Pool");
  EXPECT_EQ(order[1], "ViaBTC");
}

TEST(SelfInterest, FindsSpendsAndReceipts) {
  const auto wallet = btc::Address::derive("f2/w0");
  const auto user = btc::Address::derive("someone");

  // Payout from the pool wallet; deposit to the pool wallet; unrelated.
  auto payout = btc::make_payment(0, 250, btc::Satoshi{250}, wallet, user,
                                  btc::Satoshi{100}, 5001);
  auto deposit = btc::make_payment(0, 250, btc::Satoshi{250}, user, wallet,
                                   btc::Satoshi{100}, 5002);
  auto unrelated = tx_with_rate(5.0, 250, 0, 5003);

  btc::Chain chain(1);
  chain.append(block_for_pool(1, "F2Pool", "f2/w0",
                              {payout, unrelated, deposit}));
  const PoolAttribution attribution(chain, small_registry());

  const auto refs = self_interest_txs(chain, attribution, "F2Pool");
  ASSERT_EQ(refs.size(), 2u);
  EXPECT_EQ(refs[0].position, 0u);
  EXPECT_EQ(refs[1].position, 2u);
}

TEST(SelfInterest, FindsTxsInOtherPoolsBlocks) {
  // A ViaBTC block contains an F2Pool payout: it must still be reported
  // as an F2Pool self-interest transaction (that's the whole point of the
  // x/y test).
  const auto wallet = btc::Address::derive("f2/w0");
  auto payout = btc::make_payment(0, 250, btc::Satoshi{250}, wallet,
                                  btc::Address::derive("u"), btc::Satoshi{1}, 5011);
  btc::Chain chain(1);
  chain.append(block_for_pool(1, "F2Pool", "f2/w0"));  // teaches the wallet
  chain.append(block_for_pool(2, "ViaBTC", "via/w0", {payout}));
  const PoolAttribution attribution(chain, small_registry());
  const auto refs = self_interest_txs(chain, attribution, "F2Pool");
  ASSERT_EQ(refs.size(), 1u);
  EXPECT_EQ(refs[0].block_height, 2u);
}

TEST(SelfInterest, UnknownPoolYieldsNothing) {
  btc::Chain chain(1);
  chain.append(block_for_pool(1, "F2Pool", "w"));
  const PoolAttribution attribution(chain, small_registry());
  EXPECT_TRUE(self_interest_txs(chain, attribution, "NoSuchPool").empty());
}

TEST(TxsPayingTo, FiltersRecipients) {
  const auto scam = btc::Address::derive("scam");
  auto to_scam = btc::make_payment(0, 250, btc::Satoshi{500},
                                   btc::Address::derive("victim"), scam,
                                   btc::Satoshi{100}, 5021);
  auto normal = tx_with_rate(5.0, 250, 0, 5022);
  btc::Chain chain(1);
  chain.append(block_for_pool(1, "F2Pool", "w", {normal, to_scam}));
  const auto refs = txs_paying_to(chain, scam);
  ASSERT_EQ(refs.size(), 1u);
  EXPECT_EQ(refs[0].position, 1u);
}

}  // namespace
}  // namespace cn::core

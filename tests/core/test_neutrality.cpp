#include "core/neutrality.hpp"

#include <gtest/gtest.h>

#include "../helpers.hpp"

namespace cn::core {
namespace {

using cn::test::block_with_rates;

/// Builds a chain with one perfectly honest pool and one misbehaving
/// pool that hoists its own low-fee transactions to the top.
struct ScoreWorld {
  btc::Chain chain{1};
  btc::CoinbaseTagRegistry registry;

  ScoreWorld() {
    registry.add("Honest", "/Honest/");
    registry.add("Hoister", "/Hoister/");

    const btc::Address hoister_wallet = btc::Address::derive("hoister-wallet");
    for (int i = 0; i < 40; ++i) {
      const std::uint64_t h = chain.empty() ? 1 : chain.next_height();
      if (i % 2 == 0) {
        chain.append(block_with_rates(h, {50, 40, 30, 20, 10},
                                      "/Honest/", 600 * static_cast<SimTime>(h)));
      } else {
        // Hoister blocks: a 1 sat/vB self-payout leads every block.
        auto payout = btc::make_payment(
            0, 250, btc::Satoshi{250}, hoister_wallet,
            btc::Address::derive("u" + std::to_string(i)),
            btc::Satoshi{1'000'000}, 90'000 + static_cast<std::uint64_t>(i));
        std::vector<btc::Transaction> txs{payout};
        for (double rate : {50.0, 40.0, 30.0, 20.0}) {
          txs.push_back(cn::test::tx_with_rate(rate, 250, 0,
                                               91'000 + static_cast<std::uint64_t>(i) * 10 +
                                                   static_cast<std::uint64_t>(rate)));
        }
        btc::Coinbase cb;
        cb.tag = "/Hoister/";
        cb.reward_address = hoister_wallet;  // teaches the auditor the wallet
        cb.reward = btc::Satoshi{625'000'000};
        chain.append(btc::Block(h, 600 * static_cast<SimTime>(h), cb, std::move(txs)));
      }
    }
  }
};

TEST(Neutrality, MisbehaverRanksBelowHonest) {
  ScoreWorld world;
  const PoolAttribution attribution(world.chain, world.registry);
  const auto reports = neutrality_reports(world.chain, attribution);
  ASSERT_EQ(reports.size(), 2u);
  // Worst first.
  EXPECT_EQ(reports[0].pool, "Hoister");
  EXPECT_EQ(reports[1].pool, "Honest");
  EXPECT_LT(reports[0].score, reports[1].score - 10.0);
  EXPECT_GT(reports[1].score, 90.0);
}

TEST(Neutrality, HonestPoolHasCleanComponents) {
  ScoreWorld world;
  const PoolAttribution attribution(world.chain, world.registry);
  const auto reports = neutrality_reports(world.chain, attribution);
  const auto& honest = reports[1];
  EXPECT_DOUBLE_EQ(honest.mean_ppe, 0.0);
  EXPECT_DOUBLE_EQ(honest.boosted_tx_rate, 0.0);
  EXPECT_FALSE(honest.self_dealing_flagged);
  EXPECT_DOUBLE_EQ(honest.below_floor_block_rate, 0.0);
}

TEST(Neutrality, MisbehaverComponentsReflectHoisting) {
  ScoreWorld world;
  const PoolAttribution attribution(world.chain, world.registry);
  const auto reports = neutrality_reports(world.chain, attribution);
  const auto& hoister = reports[0];
  EXPECT_GT(hoister.mean_ppe, 0.0);
  EXPECT_GT(hoister.boosted_tx_rate, 0.1);  // 1 of 5 txs per block hoisted
  EXPECT_TRUE(hoister.self_dealing_flagged);
  EXPECT_LT(hoister.self_dealing_p, 0.001);
  EXPECT_GT(hoister.self_dealing_sppe, 90.0);
}

TEST(Neutrality, MinBlocksFilterSkipsSmallPools) {
  ScoreWorld world;
  const PoolAttribution attribution(world.chain, world.registry);
  NeutralityOptions options;
  options.min_blocks = 100;  // both pools have only 20
  EXPECT_TRUE(neutrality_reports(world.chain, attribution, options).empty());
}

TEST(Neutrality, ScoreMonotoneInPenalties) {
  NeutralityReport clean;
  clean.mean_ppe = 0.5;
  NeutralityReport dirty = clean;
  dirty.boosted_tx_rate = 0.02;
  dirty.self_dealing_p = 0.0001;
  dirty.self_dealing_sppe = 95.0;
  EXPECT_GT(neutrality_score(clean), neutrality_score(dirty));
  EXPECT_GE(neutrality_score(dirty), 0.0);
  EXPECT_LE(neutrality_score(clean), 100.0);
}

TEST(Neutrality, ScoreBoundedAtZero) {
  NeutralityReport terrible;
  terrible.mean_ppe = 100.0;
  terrible.boosted_tx_rate = 1.0;
  terrible.self_dealing_p = 0.0;
  terrible.self_dealing_sppe = 100.0;
  terrible.below_floor_block_rate = 1.0;
  EXPECT_DOUBLE_EQ(neutrality_score(terrible), 0.0);
}

}  // namespace
}  // namespace cn::core

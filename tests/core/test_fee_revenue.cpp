#include "core/fee_revenue.hpp"

#include <gtest/gtest.h>

#include "../helpers.hpp"
#include "btc/rewards.hpp"

namespace cn::core {
namespace {

using cn::test::block_with_rates;

TEST(FeeRevenue, ShareFormula) {
  btc::Chain chain(630'000);  // subsidy 6.25 BTC
  // One tx of 250 vB at 1000 sat/vB = 250,000 sat fees.
  chain.append(block_with_rates(630'000, {1000.0}));
  const auto shares = per_block_fee_share_percent(chain);
  ASSERT_EQ(shares.size(), 1u);
  const double fees = 250'000.0;
  const double subsidy = 625'000'000.0;
  EXPECT_NEAR(shares[0], fees / (fees + subsidy) * 100.0, 1e-9);
}

TEST(FeeRevenue, EmptyBlockIsZeroShare) {
  btc::Chain chain(630'000);
  chain.append(block_with_rates(630'000, {}));
  EXPECT_DOUBLE_EQ(per_block_fee_share_percent(chain)[0], 0.0);
}

TEST(FeeRevenue, HalvingDoublesShare) {
  // Same fees, half the subsidy -> roughly double the share.
  btc::Chain before(btc::kThirdHalvingHeight - 1);
  before.append(block_with_rates(btc::kThirdHalvingHeight - 1, {1000.0}));
  btc::Chain after(btc::kThirdHalvingHeight);
  after.append(block_with_rates(btc::kThirdHalvingHeight, {1000.0}));
  const double s_before = per_block_fee_share_percent(before)[0];
  const double s_after = per_block_fee_share_percent(after)[0];
  EXPECT_NEAR(s_after / s_before, 2.0, 0.01);
}

TEST(FeeRevenue, SummaryStats) {
  btc::Chain chain(630'000);
  chain.append(block_with_rates(630'000, {1000.0}));
  chain.append(block_with_rates(630'001, {}));
  chain.append(block_with_rates(630'002, {2000.0, 2000.0}));
  const auto s = fee_share_summary(chain);
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_GT(s.max, s.median);
}

TEST(FeeRevenue, HeightRangeSlicing) {
  btc::Chain chain(100);
  chain.append(block_with_rates(100, {10.0}));
  chain.append(block_with_rates(101, {10.0}));
  chain.append(block_with_rates(102, {10.0}));
  const auto all = fee_share_summary(chain);
  const auto slice = fee_share_summary(chain, 101, 101);
  EXPECT_EQ(all.count, 3u);
  EXPECT_EQ(slice.count, 1u);
}

}  // namespace
}  // namespace cn::core

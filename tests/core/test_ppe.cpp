#include "core/ppe.hpp"

#include <gtest/gtest.h>

#include "../helpers.hpp"

namespace cn::core {
namespace {

using cn::test::block_with_rates;
using cn::test::tx_with_rate;

TEST(Ppe, PerfectOrderingIsZero) {
  const auto block = block_with_rates(1, {10, 8, 6, 4, 2});
  const auto ppe = block_ppe(block);
  ASSERT_TRUE(ppe.has_value());
  EXPECT_DOUBLE_EQ(*ppe, 0.0);
}

TEST(Ppe, ReversedOrderingIsMaximal) {
  const auto block = block_with_rates(1, {1, 2, 3, 4});
  const auto ppe = block_ppe(block);
  ASSERT_TRUE(ppe.has_value());
  // Mean |pred - obs| over percentile ranks of a full reversal:
  // displacements (in rank points) are 100, 33.3, 33.3, 100 -> mean 66.7.
  EXPECT_NEAR(*ppe, 200.0 / 3.0, 1e-9);
}

TEST(Ppe, SingleSwapSmallError) {
  const auto block = block_with_rates(1, {10, 8, 9, 4});  // one adjacent swap
  const auto ppe = block_ppe(block);
  ASSERT_TRUE(ppe.has_value());
  EXPECT_GT(*ppe, 0.0);
  EXPECT_LT(*ppe, 20.0);
}

TEST(Ppe, TiesAreCharitable) {
  // All equal fee-rates: any order satisfies the norm.
  const auto block = block_with_rates(1, {5, 5, 5, 5});
  EXPECT_DOUBLE_EQ(*block_ppe(block), 0.0);
}

TEST(Ppe, UndefinedForTinyBlocks) {
  EXPECT_FALSE(block_ppe(block_with_rates(1, {})).has_value());
  EXPECT_FALSE(block_ppe(block_with_rates(1, {3.0})).has_value());
}

TEST(Ppe, CpfpExclusionRemovesFalsePositive) {
  // A 1 sat/vB child rides directly behind its high-fee parent (package
  // ordering): a gross "violation" if judged naively, none at all once
  // CPFP transactions are excluded.
  const auto parent = tx_with_rate(50.0, 250, 0, 4001);
  const auto child = btc::make_child_payment(
      10, 250, btc::Satoshi{250} /* 1 sat/vB */, parent,
      btc::Address::derive("d"), btc::Satoshi{100}, 4002);
  std::vector<btc::Transaction> txs{parent, child, tx_with_rate(40.0, 250, 0, 4003),
                                    tx_with_rate(20.0, 250, 0, 4004)};
  btc::Coinbase cb;
  const btc::Block block(1, 600, cb, std::move(txs));

  const auto naive = block_ppe(block, /*exclude_cpfp=*/false);
  const auto strict = block_ppe(block, /*exclude_cpfp=*/true);
  ASSERT_TRUE(naive.has_value());
  ASSERT_TRUE(strict.has_value());
  EXPECT_GT(*naive, 0.0);
  // Without the child, the block (50, 40, 20) is perfectly ordered.
  EXPECT_DOUBLE_EQ(*strict, 0.0);
}

TEST(Ppe, PredictedPositionsPermutation) {
  const auto block = block_with_rates(1, {3, 9, 1, 7, 5});
  const auto pairs = predicted_positions(block, false);
  ASSERT_EQ(pairs.size(), 5u);
  std::vector<bool> seen(5, false);
  for (const auto& p : pairs) {
    ASSERT_LT(p.predicted, 5u);
    EXPECT_FALSE(seen[p.predicted]);
    seen[p.predicted] = true;
  }
  // 9 (observed index 1) should be predicted first.
  EXPECT_EQ(pairs[1].predicted, 0u);
}

TEST(Ppe, ChainAggregatesSkipTinyBlocks) {
  btc::Chain chain(1);
  chain.append(block_with_rates(1, {5, 3, 1}));
  chain.append(block_with_rates(2, {}));      // skipped
  chain.append(block_with_rates(3, {2.0}));   // skipped
  chain.append(block_with_rates(4, {1, 9}));  // violation
  const auto ppes = chain_ppe(chain);
  ASSERT_EQ(ppes.size(), 2u);
  EXPECT_DOUBLE_EQ(ppes[0], 0.0);
  EXPECT_GT(ppes[1], 0.0);
}

}  // namespace
}  // namespace cn::core

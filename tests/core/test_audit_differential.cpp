// Differential suite for the columnar audit refactor: the staged
// pipeline over the AuditDataset (AuditEngine::kColumnar) must render a
// report byte-identical to the pre-refactor object-graph monolith
// (AuditEngine::kLegacy), at every thread count, on clean simulated data
// AND on a fault-injected lenient load. Plus the --stages contract:
// a deselected stage is reported as [SKIPPED], never silently absent.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "btc/intern.hpp"
#include "core/audit_pipeline.hpp"
#include "core/data_quality.hpp"
#include "io/dataset_io.hpp"
#include "sim/dataset.hpp"
#include "testing/fault_injector.hpp"

namespace cn::core {
namespace {

class AuditDifferentialTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    world_ = new sim::SimResult(sim::make_dataset(sim::DatasetKind::kC, 321, 0.25));
  }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
  }
  static sim::SimResult* world_;
};

sim::SimResult* AuditDifferentialTest::world_ = nullptr;

std::string rendered(const AuditReport& report, bool with_timings = false) {
  std::FILE* tmp = std::tmpfile();
  print_audit_report(report, tmp, with_timings);
  const long size = std::ftell(tmp);
  std::string out(static_cast<std::size_t>(size), '\0');
  std::rewind(tmp);
  const std::size_t read = std::fread(out.data(), 1, out.size(), tmp);
  std::fclose(tmp);
  out.resize(read);
  return out;
}

std::string run_rendered(const btc::Chain& chain, const DataQualityReport* quality,
                         AuditEngine engine, unsigned threads,
                         const btc::Address* watch = nullptr) {
  AuditOptions options;
  options.engine = engine;
  options.threads = threads;
  if (watch != nullptr) options.watch_addresses.push_back(*watch);
  const auto report = run_full_audit(
      chain, btc::CoinbaseTagRegistry::paper_registry(), quality, options);
  return rendered(report);
}

TEST_F(AuditDifferentialTest, EnginesRenderIdenticalBytesAtEveryThreadCount) {
  const std::string oracle = run_rendered(world_->chain, nullptr,
                                          AuditEngine::kLegacy, 1,
                                          &world_->scam_address);
  ASSERT_GT(oracle.size(), 200u);
  // threads: 1 = serial, 4 = fixed lanes, 0 = hardware concurrency.
  for (const unsigned threads : {1u, 4u, 0u}) {
    EXPECT_EQ(oracle, run_rendered(world_->chain, nullptr,
                                   AuditEngine::kColumnar, threads,
                                   &world_->scam_address))
        << "columnar(threads=" << threads << ") diverged from the oracle";
    EXPECT_EQ(oracle, run_rendered(world_->chain, nullptr,
                                   AuditEngine::kLegacy, threads,
                                   &world_->scam_address))
        << "legacy(threads=" << threads << ") is not thread-deterministic";
  }
}

TEST_F(AuditDifferentialTest, EnginesAgreeOnCorruptedLenientLoad) {
  const std::string clean = ::testing::TempDir() + "/cn_diff_clean";
  const std::string dirty = ::testing::TempDir() + "/cn_diff_dirty";
  std::filesystem::remove_all(clean);
  std::filesystem::remove_all(dirty);
  ASSERT_TRUE(io::export_chain(world_->chain, clean));
  ASSERT_TRUE(io::export_snapshots(world_->observer.snapshots(),
                                   clean + "/snapshots.csv"));
  ASSERT_TRUE(io::export_first_seen(world_->observer.first_seen_map(),
                                    clean + "/first_seen.csv"));

  cn::testing::FaultOptions faults;
  faults.row_corruption_rate = 0.02;
  faults.snapshot_gaps = 1;
  cn::testing::FaultInjector(77).inject_dataset(clean, dirty, faults);

  const auto chain = io::import_chain(dirty, io::LoadPolicy::kLenient);
  ASSERT_TRUE(chain.has_value()) << chain.report.summary();
  const auto snapshots =
      io::import_snapshots(dirty + "/snapshots.csv", io::LoadPolicy::kLenient);
  ASSERT_TRUE(snapshots.has_value());
  const auto first_seen =
      io::import_first_seen(dirty + "/first_seen.csv", io::LoadPolicy::kLenient);
  ASSERT_TRUE(first_seen.has_value());
  const auto quality = assess_data_quality(*chain, &*snapshots, &*first_seen);

  const std::string oracle =
      run_rendered(*chain, &quality, AuditEngine::kLegacy, 1);
  ASSERT_NE(oracle.find("data quality:"), std::string::npos);
  for (const unsigned threads : {1u, 4u, 0u}) {
    EXPECT_EQ(oracle,
              run_rendered(*chain, &quality, AuditEngine::kColumnar, threads))
        << "columnar(threads=" << threads
        << ") diverged from the oracle on the corrupted load";
  }
  std::filesystem::remove_all(clean);
  std::filesystem::remove_all(dirty);
}

TEST_F(AuditDifferentialTest, ImporterInternedTableChangesNothing) {
  const std::string dir = ::testing::TempDir() + "/cn_diff_intern";
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(io::export_chain(world_->chain, dir));

  btc::AddressTable addresses;
  const auto reloaded =
      io::import_chain(dir, io::LoadPolicy::kStrict, &addresses);
  ASSERT_TRUE(reloaded.has_value());
  EXPECT_GT(addresses.size(), 0u);
  // Every address the chain references came out interned.
  for (const btc::Block& block : reloaded->blocks()) {
    for (const btc::Transaction& tx : block.txs()) {
      for (const btc::TxInput& in : tx.inputs()) {
        EXPECT_NE(addresses.lookup(in.owner), btc::kNoAddressId);
      }
      for (const btc::TxOutput& out : tx.outputs()) {
        EXPECT_NE(addresses.lookup(out.to), btc::kNoAddressId);
      }
    }
  }

  AuditOptions with_table;
  with_table.threads = 1;
  with_table.interned_addresses = &addresses;
  AuditOptions without_table = with_table;
  without_table.interned_addresses = nullptr;
  const auto registry = btc::CoinbaseTagRegistry::paper_registry();
  EXPECT_EQ(rendered(run_full_audit(*reloaded, registry, with_table)),
            rendered(run_full_audit(*reloaded, registry, without_table)));
  std::filesystem::remove_all(dir);
}

// --- stage selection -------------------------------------------------------

class AuditStagesTest : public AuditDifferentialTest {};

TEST_F(AuditStagesTest, SkippedStageIsMarkedNotSilentlyAbsent) {
  AuditOptions options;
  options.threads = 1;
  options.stages = {"norm-stats"};  // everything else deselected
  options.watch_addresses.push_back(world_->scam_address);
  const auto report = run_full_audit(
      world_->chain, btc::CoinbaseTagRegistry::paper_registry(), options);

  EXPECT_FALSE(report.stage_skipped("build"));
  EXPECT_FALSE(report.stage_skipped("quality-mask"));
  EXPECT_FALSE(report.stage_skipped("norm-stats"));
  EXPECT_TRUE(report.stage_skipped("pool-tests"));
  EXPECT_TRUE(report.stage_skipped("screens"));
  EXPECT_TRUE(report.stage_skipped("darkfee"));
  EXPECT_TRUE(report.stage_skipped("neutrality"));
  EXPECT_TRUE(report.findings.empty());
  EXPECT_TRUE(report.screens.empty());
  EXPECT_TRUE(report.darkfee.empty());
  EXPECT_TRUE(report.neutrality.empty());

  const std::string text = rendered(report);
  EXPECT_NE(text.find("[SKIPPED]"), std::string::npos)
      << "skipped stages must be visible in the rendered report";
  // Norm statistics (the one selected analysis) still printed for real.
  EXPECT_EQ(text.find("norm-II adherence: [SKIPPED]"), std::string::npos);
}

TEST_F(AuditStagesTest, SkippingNormStatsMarksThatSectionToo) {
  AuditOptions options;
  options.threads = 1;
  options.stages = {"darkfee"};
  const auto report = run_full_audit(
      world_->chain, btc::CoinbaseTagRegistry::paper_registry(), options);
  EXPECT_TRUE(report.stage_skipped("norm-stats"));
  EXPECT_FALSE(report.stage_skipped("darkfee"));
  EXPECT_FALSE(report.darkfee.empty());
  const std::string text = rendered(report);
  EXPECT_NE(text.find("norm-II adherence: [SKIPPED]"), std::string::npos);
}

TEST_F(AuditStagesTest, AllStagesSelectedMatchesDefault) {
  AuditOptions all;
  all.threads = 1;
  all.stages = audit_stage_names();
  AuditOptions none;
  none.threads = 1;
  const auto registry = btc::CoinbaseTagRegistry::paper_registry();
  EXPECT_EQ(rendered(run_full_audit(world_->chain, registry, all)),
            rendered(run_full_audit(world_->chain, registry, none)));
}

TEST_F(AuditStagesTest, StagesAreTimedInExecutionOrder) {
  AuditOptions options;
  options.threads = 1;
  const auto report = run_full_audit(
      world_->chain, btc::CoinbaseTagRegistry::paper_registry(), options);
  ASSERT_EQ(report.stages.size(), audit_stage_names().size());
  for (std::size_t i = 0; i < report.stages.size(); ++i) {
    EXPECT_EQ(report.stages[i].name, audit_stage_names()[i]);
    EXPECT_TRUE(report.stages[i].ran);
    EXPECT_GE(report.stages[i].seconds, 0.0);
  }
  // The legacy oracle reports no stages (and never claims one skipped).
  AuditOptions legacy = options;
  legacy.engine = AuditEngine::kLegacy;
  const auto oracle = run_full_audit(
      world_->chain, btc::CoinbaseTagRegistry::paper_registry(), legacy);
  EXPECT_TRUE(oracle.stages.empty());
  EXPECT_FALSE(oracle.stage_skipped("darkfee"));

  // The timings footer renders on demand and never in the default form.
  EXPECT_EQ(rendered(report).find("stage timings"), std::string::npos);
  EXPECT_NE(rendered(report, /*with_timings=*/true).find("stage timings"),
            std::string::npos);
}

}  // namespace
}  // namespace cn::core

#include "core/audit_pipeline.hpp"

#include <gtest/gtest.h>

#include "sim/dataset.hpp"

namespace cn::core {
namespace {

class AuditPipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    world_ = new sim::SimResult(sim::make_dataset(sim::DatasetKind::kC, 321, 0.5));
  }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
  }
  static sim::SimResult* world_;
};

sim::SimResult* AuditPipelineTest::world_ = nullptr;

TEST_F(AuditPipelineTest, FindsPlantedMisbehaviour) {
  AuditOptions options;
  options.watch_addresses.push_back(world_->scam_address);
  const auto report = run_full_audit(
      world_->chain, btc::CoinbaseTagRegistry::paper_registry(), options);

  EXPECT_EQ(report.blocks, world_->chain.size());
  EXPECT_EQ(report.txs, world_->chain.total_tx_count());
  EXPECT_GT(report.ppe.count, 100u);
  EXPECT_LT(report.ppe.mean, 8.0);

  // The planted selfish pools must appear among the findings.
  const auto has_finding = [&](const std::string& owner, const std::string& miner) {
    for (const auto& f : report.findings) {
      if (f.tx_owner == owner && f.miner == miner) return true;
    }
    return false;
  };
  EXPECT_TRUE(has_finding("F2Pool", "F2Pool"));
  EXPECT_TRUE(has_finding("ViaBTC", "ViaBTC"));
  EXPECT_TRUE(has_finding("SlushPool", "ViaBTC"));         // collusion
  EXPECT_TRUE(has_finding("1THash&58Coin", "ViaBTC"));     // collusion
  // Honest pools never show up as selfish.
  EXPECT_FALSE(has_finding("Poolin", "Poolin"));
  EXPECT_FALSE(has_finding("AntPool", "AntPool"));

  // Collusion flag set exactly when owner != miner.
  for (const auto& f : report.findings) {
    EXPECT_EQ(f.collusion, f.tx_owner != f.miner);
    EXPECT_LT(f.test.p_accelerate, options.alpha);
    // Bootstrap CI brackets the point SPPE.
    EXPECT_LE(f.sppe_ci.lo, f.test.sppe + 1e-9);
    EXPECT_GE(f.sppe_ci.hi, f.test.sppe - 1e-9);
  }
}

TEST_F(AuditPipelineTest, ScamScreenIsClean) {
  AuditOptions options;
  options.watch_addresses.push_back(world_->scam_address);
  const auto report = run_full_audit(
      world_->chain, btc::CoinbaseTagRegistry::paper_registry(), options);
  ASSERT_EQ(report.screens.size(), 1u);
  EXPECT_GT(report.screens[0].tx_count, 10u);
  EXPECT_FALSE(report.screens[0].any_significant);
  EXPECT_FALSE(report.screens[0].per_pool.empty());
}

TEST_F(AuditPipelineTest, DarkFeeSuspicionRankedAndPlausible) {
  const auto report = run_full_audit(world_->chain,
                                     btc::CoinbaseTagRegistry::paper_registry());
  ASSERT_FALSE(report.darkfee.empty());
  // Ranked by flag rate, descending.
  for (std::size_t i = 1; i < report.darkfee.size(); ++i) {
    const auto rate = [](const DarkFeeSuspicion& d) {
      return d.txs ? static_cast<double>(d.flagged) / static_cast<double>(d.txs)
                   : 0.0;
    };
    EXPECT_GE(rate(report.darkfee[i - 1]), rate(report.darkfee[i]) - 1e-12);
  }
  // The acceleration-selling pools dominate the top ranks.
  std::uint64_t sellers_flagged = 0, others_flagged = 0;
  for (const auto& d : report.darkfee) {
    const bool seller = d.pool == "BTC.com" || d.pool == "AntPool" ||
                        d.pool == "ViaBTC" || d.pool == "F2Pool" ||
                        d.pool == "Poolin";
    (seller ? sellers_flagged : others_flagged) += d.flagged;
  }
  EXPECT_GT(sellers_flagged, 5 * std::max<std::uint64_t>(others_flagged, 1));
}

TEST_F(AuditPipelineTest, NeutralityRanksPlantsWorst) {
  const auto report = run_full_audit(world_->chain,
                                     btc::CoinbaseTagRegistry::paper_registry());
  ASSERT_GE(report.neutrality.size(), 5u);
  // The three worst scores all belong to planted misbehaving pools.
  for (std::size_t i = 0; i < 3; ++i) {
    const auto& pool = report.neutrality[i].pool;
    EXPECT_TRUE(pool == "F2Pool" || pool == "ViaBTC" ||
                pool == "1THash&58Coin" || pool == "SlushPool")
        << pool;
  }
}

TEST_F(AuditPipelineTest, PrintDoesNotCrash) {
  const auto report = run_full_audit(world_->chain,
                                     btc::CoinbaseTagRegistry::paper_registry());
  std::FILE* tmp = std::tmpfile();
  ASSERT_NE(tmp, nullptr);
  print_audit_report(report, tmp);
  EXPECT_GT(std::ftell(tmp), 200);
  std::fclose(tmp);
}

// --- threading determinism -------------------------------------------------

namespace determinism {

void expect_tests_identical(const PrioTestResult& a, const PrioTestResult& b) {
  EXPECT_EQ(a.pool, b.pool);
  EXPECT_EQ(a.theta0, b.theta0);
  EXPECT_EQ(a.x, b.x);
  EXPECT_EQ(a.y, b.y);
  EXPECT_EQ(a.p_accelerate, b.p_accelerate);
  EXPECT_EQ(a.p_decelerate, b.p_decelerate);
  EXPECT_EQ(a.sppe, b.sppe);
  EXPECT_EQ(a.sppe_count, b.sppe_count);
}

/// Field-exact equality over everything run_full_audit computes (options
/// excluded: they echo the input and differ in `threads` by design).
void expect_reports_identical(const AuditReport& a, const AuditReport& b) {
  EXPECT_EQ(a.blocks, b.blocks);
  EXPECT_EQ(a.txs, b.txs);
  EXPECT_EQ(a.unidentified_blocks, b.unidentified_blocks);
  EXPECT_EQ(a.ppe.mean, b.ppe.mean);
  EXPECT_EQ(a.ppe.stddev, b.ppe.stddev);
  EXPECT_EQ(a.ppe.count, b.ppe.count);

  ASSERT_EQ(a.findings.size(), b.findings.size());
  for (std::size_t i = 0; i < a.findings.size(); ++i) {
    EXPECT_EQ(a.findings[i].tx_owner, b.findings[i].tx_owner);
    EXPECT_EQ(a.findings[i].miner, b.findings[i].miner);
    EXPECT_EQ(a.findings[i].collusion, b.findings[i].collusion);
    expect_tests_identical(a.findings[i].test, b.findings[i].test);
    EXPECT_EQ(a.findings[i].sppe_ci.point, b.findings[i].sppe_ci.point);
    EXPECT_EQ(a.findings[i].sppe_ci.lo, b.findings[i].sppe_ci.lo);
    EXPECT_EQ(a.findings[i].sppe_ci.hi, b.findings[i].sppe_ci.hi);
    EXPECT_EQ(a.findings[i].sppe_ci.resamples, b.findings[i].sppe_ci.resamples);
  }

  ASSERT_EQ(a.screens.size(), b.screens.size());
  for (std::size_t i = 0; i < a.screens.size(); ++i) {
    EXPECT_EQ(a.screens[i].address, b.screens[i].address);
    EXPECT_EQ(a.screens[i].tx_count, b.screens[i].tx_count);
    EXPECT_EQ(a.screens[i].any_significant, b.screens[i].any_significant);
    ASSERT_EQ(a.screens[i].per_pool.size(), b.screens[i].per_pool.size());
    for (std::size_t p = 0; p < a.screens[i].per_pool.size(); ++p) {
      expect_tests_identical(a.screens[i].per_pool[p], b.screens[i].per_pool[p]);
    }
  }

  ASSERT_EQ(a.darkfee.size(), b.darkfee.size());
  for (std::size_t i = 0; i < a.darkfee.size(); ++i) {
    EXPECT_EQ(a.darkfee[i].pool, b.darkfee[i].pool);
    EXPECT_EQ(a.darkfee[i].txs, b.darkfee[i].txs);
    EXPECT_EQ(a.darkfee[i].flagged, b.darkfee[i].flagged);
  }

  ASSERT_EQ(a.neutrality.size(), b.neutrality.size());
  for (std::size_t i = 0; i < a.neutrality.size(); ++i) {
    EXPECT_EQ(a.neutrality[i].pool, b.neutrality[i].pool);
    EXPECT_EQ(a.neutrality[i].score, b.neutrality[i].score);
    EXPECT_EQ(a.neutrality[i].mean_ppe, b.neutrality[i].mean_ppe);
    EXPECT_EQ(a.neutrality[i].self_dealing_p, b.neutrality[i].self_dealing_p);
  }
}

std::string rendered(const AuditReport& report) {
  std::FILE* tmp = std::tmpfile();
  print_audit_report(report, tmp);
  const long size = std::ftell(tmp);
  std::string out(static_cast<std::size_t>(size), '\0');
  std::rewind(tmp);
  const std::size_t read = std::fread(out.data(), 1, out.size(), tmp);
  std::fclose(tmp);
  out.resize(read);
  return out;
}

}  // namespace determinism

TEST_F(AuditPipelineTest, ThreadedReportIsByteIdenticalToSerial) {
  AuditOptions serial_options;
  serial_options.watch_addresses.push_back(world_->scam_address);
  serial_options.threads = 1;
  AuditOptions threaded_options = serial_options;
  threaded_options.threads = 4;

  const auto registry = btc::CoinbaseTagRegistry::paper_registry();
  const auto serial = run_full_audit(world_->chain, registry, serial_options);
  const auto threaded = run_full_audit(world_->chain, registry, threaded_options);

  determinism::expect_reports_identical(serial, threaded);
  // The rendered reports agree byte for byte (options are not printed
  // beyond the shared dark-fee threshold).
  EXPECT_EQ(determinism::rendered(serial), determinism::rendered(threaded));

  // A second threaded run is also stable (no scheduling dependence).
  const auto again = run_full_audit(world_->chain, registry, threaded_options);
  determinism::expect_reports_identical(threaded, again);
}

TEST(AuditPipeline, EmptyChainYieldsEmptyReport) {
  btc::Chain chain(1);
  const auto report =
      run_full_audit(chain, btc::CoinbaseTagRegistry::paper_registry());
  EXPECT_EQ(report.blocks, 0u);
  EXPECT_TRUE(report.findings.empty());
  EXPECT_TRUE(report.neutrality.empty());
}

}  // namespace
}  // namespace cn::core

#include "core/audit_pipeline.hpp"

#include <gtest/gtest.h>

#include "sim/dataset.hpp"

namespace cn::core {
namespace {

class AuditPipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    world_ = new sim::SimResult(sim::make_dataset(sim::DatasetKind::kC, 321, 0.5));
  }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
  }
  static sim::SimResult* world_;
};

sim::SimResult* AuditPipelineTest::world_ = nullptr;

TEST_F(AuditPipelineTest, FindsPlantedMisbehaviour) {
  AuditOptions options;
  options.watch_addresses.push_back(world_->scam_address);
  const auto report = run_full_audit(
      world_->chain, btc::CoinbaseTagRegistry::paper_registry(), options);

  EXPECT_EQ(report.blocks, world_->chain.size());
  EXPECT_EQ(report.txs, world_->chain.total_tx_count());
  EXPECT_GT(report.ppe.count, 100u);
  EXPECT_LT(report.ppe.mean, 8.0);

  // The planted selfish pools must appear among the findings.
  const auto has_finding = [&](const std::string& owner, const std::string& miner) {
    for (const auto& f : report.findings) {
      if (f.tx_owner == owner && f.miner == miner) return true;
    }
    return false;
  };
  EXPECT_TRUE(has_finding("F2Pool", "F2Pool"));
  EXPECT_TRUE(has_finding("ViaBTC", "ViaBTC"));
  EXPECT_TRUE(has_finding("SlushPool", "ViaBTC"));         // collusion
  EXPECT_TRUE(has_finding("1THash&58Coin", "ViaBTC"));     // collusion
  // Honest pools never show up as selfish.
  EXPECT_FALSE(has_finding("Poolin", "Poolin"));
  EXPECT_FALSE(has_finding("AntPool", "AntPool"));

  // Collusion flag set exactly when owner != miner.
  for (const auto& f : report.findings) {
    EXPECT_EQ(f.collusion, f.tx_owner != f.miner);
    EXPECT_LT(f.test.p_accelerate, options.alpha);
    // Bootstrap CI brackets the point SPPE.
    EXPECT_LE(f.sppe_ci.lo, f.test.sppe + 1e-9);
    EXPECT_GE(f.sppe_ci.hi, f.test.sppe - 1e-9);
  }
}

TEST_F(AuditPipelineTest, ScamScreenIsClean) {
  AuditOptions options;
  options.watch_addresses.push_back(world_->scam_address);
  const auto report = run_full_audit(
      world_->chain, btc::CoinbaseTagRegistry::paper_registry(), options);
  ASSERT_EQ(report.screens.size(), 1u);
  EXPECT_GT(report.screens[0].tx_count, 10u);
  EXPECT_FALSE(report.screens[0].any_significant);
  EXPECT_FALSE(report.screens[0].per_pool.empty());
}

TEST_F(AuditPipelineTest, DarkFeeSuspicionRankedAndPlausible) {
  const auto report = run_full_audit(world_->chain,
                                     btc::CoinbaseTagRegistry::paper_registry());
  ASSERT_FALSE(report.darkfee.empty());
  // Ranked by flag rate, descending.
  for (std::size_t i = 1; i < report.darkfee.size(); ++i) {
    const auto rate = [](const DarkFeeSuspicion& d) {
      return d.txs ? static_cast<double>(d.flagged) / static_cast<double>(d.txs)
                   : 0.0;
    };
    EXPECT_GE(rate(report.darkfee[i - 1]), rate(report.darkfee[i]) - 1e-12);
  }
  // The acceleration-selling pools dominate the top ranks.
  std::uint64_t sellers_flagged = 0, others_flagged = 0;
  for (const auto& d : report.darkfee) {
    const bool seller = d.pool == "BTC.com" || d.pool == "AntPool" ||
                        d.pool == "ViaBTC" || d.pool == "F2Pool" ||
                        d.pool == "Poolin";
    (seller ? sellers_flagged : others_flagged) += d.flagged;
  }
  EXPECT_GT(sellers_flagged, 5 * std::max<std::uint64_t>(others_flagged, 1));
}

TEST_F(AuditPipelineTest, NeutralityRanksPlantsWorst) {
  const auto report = run_full_audit(world_->chain,
                                     btc::CoinbaseTagRegistry::paper_registry());
  ASSERT_GE(report.neutrality.size(), 5u);
  // The three worst scores all belong to planted misbehaving pools.
  for (std::size_t i = 0; i < 3; ++i) {
    const auto& pool = report.neutrality[i].pool;
    EXPECT_TRUE(pool == "F2Pool" || pool == "ViaBTC" ||
                pool == "1THash&58Coin" || pool == "SlushPool")
        << pool;
  }
}

TEST_F(AuditPipelineTest, PrintDoesNotCrash) {
  const auto report = run_full_audit(world_->chain,
                                     btc::CoinbaseTagRegistry::paper_registry());
  std::FILE* tmp = std::tmpfile();
  ASSERT_NE(tmp, nullptr);
  print_audit_report(report, tmp);
  EXPECT_GT(std::ftell(tmp), 200);
  std::fclose(tmp);
}

TEST(AuditPipeline, EmptyChainYieldsEmptyReport) {
  btc::Chain chain(1);
  const auto report =
      run_full_audit(chain, btc::CoinbaseTagRegistry::paper_registry());
  EXPECT_EQ(report.blocks, 0u);
  EXPECT_TRUE(report.findings.empty());
  EXPECT_TRUE(report.neutrality.empty());
}

}  // namespace
}  // namespace cn::core

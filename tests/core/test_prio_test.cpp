#include "core/prio_test.hpp"

#include <gtest/gtest.h>

#include "../helpers.hpp"

namespace cn::core {
namespace {

using cn::test::block_with_rates;

/// Builds a chain of @p n blocks where pool "Hog" mines every block whose
/// index is divisible by @p hog_every (its hash share ~ 1/hog_every), and
/// c-txs land in Hog blocks with probability controlled by the caller.
struct TestChain {
  btc::Chain chain{1};
  btc::CoinbaseTagRegistry registry;

  TestChain() {
    registry.add("Hog", "/Hog/");
    registry.add("Rest", "/Rest/");
  }

  void add_block(bool hog, std::vector<double> rates) {
    const std::uint64_t h = chain.empty() ? 1 : chain.next_height();
    chain.append(cn::test::block_with_rates(h, rates, hog ? "/Hog/" : "/Rest/",
                                            600 * static_cast<SimTime>(h)));
  }
};

TEST(PrioTest, CountCBlocksDedupes) {
  const std::vector<TxRef> refs = {{5, 0}, {5, 1}, {6, 0}};
  EXPECT_EQ(count_c_blocks(refs), 2u);
}

TEST(PrioTest, RestrictToHeights) {
  const std::vector<TxRef> refs = {{5, 0}, {6, 0}, {7, 0}};
  const auto slice = restrict_to_heights(refs, 6, 7);
  ASSERT_EQ(slice.size(), 2u);
  EXPECT_EQ(slice[0].block_height, 6u);
}

TEST(PrioTest, DetectsPlantedAcceleration) {
  TestChain world;
  // 100 blocks; Hog mines every 5th (share 0.2). All c-txs land in Hog
  // blocks at the top despite a bottom-tier fee.
  std::vector<TxRef> c_txs;
  for (int i = 0; i < 100; ++i) {
    const bool hog = i % 5 == 0;
    if (hog) {
      world.add_block(true, {1.0, 50.0, 40.0, 30.0});  // hoisted c-tx at 0
      c_txs.push_back(TxRef{world.chain.back().height(), 0});
    } else {
      world.add_block(false, {50.0, 40.0, 30.0, 20.0});
    }
  }
  const PoolAttribution attribution(world.chain, world.registry);
  const auto result =
      test_differential_prioritization(world.chain, attribution, "Hog", c_txs);
  EXPECT_EQ(result.y, 20u);
  EXPECT_EQ(result.x, 20u);
  EXPECT_NEAR(result.theta0, 0.2, 1e-12);
  EXPECT_LT(result.p_accelerate, 1e-12);
  EXPECT_GT(result.p_decelerate, 0.999);
  EXPECT_DOUBLE_EQ(result.sppe, 100.0);
  EXPECT_EQ(result.sppe_count, 20u);
}

TEST(PrioTest, NullWhenProportional) {
  TestChain world;
  std::vector<TxRef> c_txs;
  // c-txs land in every block (proportional to hash share by construction).
  for (int i = 0; i < 100; ++i) {
    world.add_block(i % 5 == 0, {50.0, 40.0, 5.0});
    c_txs.push_back(TxRef{world.chain.back().height(), 2});  // normal position
  }
  const PoolAttribution attribution(world.chain, world.registry);
  const auto result =
      test_differential_prioritization(world.chain, attribution, "Hog", c_txs);
  EXPECT_EQ(result.y, 100u);
  EXPECT_EQ(result.x, 20u);
  EXPECT_GT(result.p_accelerate, 0.3);
  EXPECT_GT(result.p_decelerate, 0.3);
  EXPECT_DOUBLE_EQ(result.sppe, 0.0);  // c-txs exactly where predicted
}

TEST(PrioTest, DetectsPlantedDeceleration) {
  TestChain world;
  std::vector<TxRef> c_txs;
  // Hog refuses c-txs: they only ever appear in Rest blocks.
  for (int i = 0; i < 200; ++i) {
    const bool hog = i % 4 == 0;  // share 0.25
    world.add_block(hog, {50.0, 40.0, 30.0});
    if (!hog) c_txs.push_back(TxRef{world.chain.back().height(), 1});
  }
  const PoolAttribution attribution(world.chain, world.registry);
  const auto result =
      test_differential_prioritization(world.chain, attribution, "Hog", c_txs);
  EXPECT_EQ(result.x, 0u);
  EXPECT_EQ(result.y, 150u);
  EXPECT_LT(result.p_decelerate, 1e-12);
  EXPECT_GT(result.p_accelerate, 0.999);
}

TEST(PrioTest, EmptyCsetInconclusive) {
  TestChain world;
  world.add_block(true, {5.0, 3.0});
  const PoolAttribution attribution(world.chain, world.registry);
  const auto result =
      test_differential_prioritization(world.chain, attribution, "Hog", {});
  EXPECT_EQ(result.y, 0u);
  EXPECT_DOUBLE_EQ(result.p_accelerate, 1.0);
  EXPECT_DOUBLE_EQ(result.p_decelerate, 1.0);
}

TEST(PrioTest, ThetaOverrideRespected) {
  TestChain world;
  std::vector<TxRef> c_txs;
  for (int i = 0; i < 50; ++i) {
    world.add_block(i % 2 == 0, {50.0, 1.0});
    if (i % 2 == 0) c_txs.push_back(TxRef{world.chain.back().height(), 1});
  }
  const PoolAttribution attribution(world.chain, world.registry);
  // With its true share (0.5) Hog mining all c-blocks is still striking...
  const auto with_true = test_differential_prioritization(
      world.chain, attribution, "Hog", c_txs);
  // ...but with a (wrong) override of 0.99 it is expected.
  const auto with_override = test_differential_prioritization(
      world.chain, attribution, "Hog", c_txs, 0.99);
  EXPECT_LT(with_true.p_accelerate, 1e-6);
  EXPECT_GT(with_override.p_accelerate, 0.5);
}

TEST(PrioTest, WindowedFisherDetectsPersistentEffect) {
  TestChain world;
  std::vector<TxRef> c_txs;
  for (int i = 0; i < 200; ++i) {
    const bool hog = i % 5 == 0;
    if (hog) {
      world.add_block(true, {1.0, 50.0, 40.0});
      c_txs.push_back(TxRef{world.chain.back().height(), 0});
    } else {
      world.add_block(false, {50.0, 40.0});
    }
  }
  const PoolAttribution attribution(world.chain, world.registry);
  const double p = windowed_acceleration_p_value(world.chain, attribution,
                                                 "Hog", c_txs, 4);
  EXPECT_LT(p, 1e-10);
}

TEST(PrioTest, WindowedFisherNullIsCalibratedish) {
  TestChain world;
  std::vector<TxRef> c_txs;
  for (int i = 0; i < 200; ++i) {
    world.add_block(i % 5 == 0, {50.0, 40.0, 5.0});
    c_txs.push_back(TxRef{world.chain.back().height(), 2});
  }
  const PoolAttribution attribution(world.chain, world.registry);
  const double p = windowed_acceleration_p_value(world.chain, attribution,
                                                 "Hog", c_txs, 4);
  EXPECT_GT(p, 0.05);
}

}  // namespace
}  // namespace cn::core

#include "core/darkfee.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "../helpers.hpp"

namespace cn::core {
namespace {

using cn::test::block_with_rates;

struct DarkFeeWorld {
  btc::Chain chain{1};
  btc::CoinbaseTagRegistry registry;
  std::unordered_set<btc::Txid> accelerated;

  DarkFeeWorld() {
    registry.add("BTC.com", "/BTC.com/");
    registry.add("Other", "/Other/");
    // 10 BTC.com blocks; the first tx of each is a hoisted 1 sat/vB tx
    // (accelerated, SPPE ~ +100); the rest are clean.
    for (std::uint64_t h = 1; h <= 10; ++h) {
      auto block = block_with_rates(h, {1.0, 50.0, 45.0, 40.0, 35.0, 30.0},
                                    "/BTC.com/", 600 * static_cast<SimTime>(h));
      accelerated.insert(block.txs()[0].id());
      chain.append(std::move(block));
    }
    // Other pool's blocks also contain hoisted txs, but those are NOT in
    // the service ledger (different pool's customers, unknowable).
    for (std::uint64_t h = 11; h <= 14; ++h) {
      chain.append(block_with_rates(h, {1.0, 50.0, 45.0}, "/Other/",
                                    600 * static_cast<SimTime>(h)));
    }
  }

  IsAcceleratedFn query() const {
    return [this](const btc::Txid& id) { return accelerated.contains(id); };
  }
};

TEST(DarkFee, BucketsCountAndValidate) {
  DarkFeeWorld world;
  const PoolAttribution attribution(world.chain, world.registry);
  const auto buckets = darkfee_buckets(world.chain, attribution, "BTC.com",
                                       world.query(), {99.0, 50.0, 1.0});
  ASSERT_EQ(buckets.size(), 3u);
  // SPPE >= 99: exactly the 10 hoisted txs, all accelerated.
  EXPECT_EQ(buckets[0].tx_count, 10u);
  EXPECT_EQ(buckets[0].accelerated, 10u);
  EXPECT_DOUBLE_EQ(buckets[0].accelerated_fraction(), 1.0);
  // Wider thresholds include more txs but no more accelerated ones:
  // purity decreases monotonically (the Table 4 shape).
  EXPECT_GE(buckets[1].tx_count, buckets[0].tx_count);
  EXPECT_GE(buckets[2].tx_count, buckets[1].tx_count);
  EXPECT_EQ(buckets[1].accelerated, 10u);
  EXPECT_LE(buckets[2].accelerated_fraction(), buckets[1].accelerated_fraction());
  EXPECT_LE(buckets[1].accelerated_fraction(), buckets[0].accelerated_fraction());
}

TEST(DarkFee, OnlyAuditedPoolsBlocksAreScanned) {
  DarkFeeWorld world;
  const PoolAttribution attribution(world.chain, world.registry);
  const auto buckets = darkfee_buckets(world.chain, attribution, "Other",
                                       world.query(), {99.0});
  ASSERT_EQ(buckets.size(), 1u);
  EXPECT_EQ(buckets[0].tx_count, 4u);      // hoisted txs in Other's blocks
  EXPECT_EQ(buckets[0].accelerated, 0u);   // none bought BTC.com's service
}

TEST(DarkFee, DetectAcceleratedReturnsRefs) {
  DarkFeeWorld world;
  const PoolAttribution attribution(world.chain, world.registry);
  const auto refs = detect_accelerated(world.chain, attribution, "BTC.com", 99.0);
  ASSERT_EQ(refs.size(), 10u);
  for (const auto& ref : refs) EXPECT_EQ(ref.position, 0u);
}

TEST(DarkFee, RandomSampleControlFindsAlmostNothing) {
  DarkFeeWorld world;
  const PoolAttribution attribution(world.chain, world.registry);
  // 10 accelerated of 60 BTC.com txs: a 20-tx sample has a few; the real
  // point is that the call is deterministic and bounded.
  const auto hits = accelerated_in_random_sample(world.chain, attribution,
                                                 "BTC.com", world.query(), 20, 7);
  EXPECT_LE(hits, 10u);
  const auto again = accelerated_in_random_sample(world.chain, attribution,
                                                  "BTC.com", world.query(), 20, 7);
  EXPECT_EQ(hits, again);
}

TEST(DarkFee, RandomSampleOfUnknownPoolIsZero) {
  DarkFeeWorld world;
  const PoolAttribution attribution(world.chain, world.registry);
  EXPECT_EQ(accelerated_in_random_sample(world.chain, attribution, "NoPool",
                                         world.query(), 100, 1),
            0u);
}

TEST(DarkFee, EmptyThresholdsYieldEmptyBuckets) {
  DarkFeeWorld world;
  const PoolAttribution attribution(world.chain, world.registry);
  EXPECT_TRUE(
      darkfee_buckets(world.chain, attribution, "BTC.com", world.query(), {})
          .empty());
}

}  // namespace
}  // namespace cn::core

// CNB1 binary columnar format (io/cnb.hpp): round-trip fidelity, the
// typed failure model (bad magic, truncation, checksums), and the
// strict/lenient split — strict pinpoints the first defective section by
// directory index, lenient drops corrupt OPTIONAL groups and still
// yields the chain, and a corrupt REQUIRED section is fatal either way.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "btc/coinbase_tags.hpp"
#include "core/audit_dataset.hpp"
#include "core/wallet_inference.hpp"
#include "helpers.hpp"
#include "io/cnb.hpp"
#include "io/dataset_io.hpp"
#include "node/snapshot.hpp"
#include "testing/fault_injector.hpp"
#include "util/thread_pool.hpp"

namespace cn::io {
namespace {

class CnbFormatTest : public ::testing::Test {
 protected:
  std::string path_ =
      ::testing::TempDir() + "/cn_cnb_" +
      ::testing::UnitTest::GetInstance()->current_test_info()->name() + ".cnb";
  void SetUp() override { std::filesystem::remove(path_); }
  void TearDown() override { std::filesystem::remove(path_); }

  btc::Chain three_block_chain() const {
    btc::Chain chain(100);
    chain.append(cn::test::block_with_rates(100, {9.0, 5.0, 2.0}, "/F2Pool/", 600));
    chain.append(cn::test::block_with_rates(101, {}, "", 1200));
    chain.append(cn::test::block_with_rates(102, {7.0}, "/ViaBTC/", 1900));
    return chain;
  }

  static std::string read_bytes(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    return bytes;
  }

  static void write_bytes(const std::string& path, const std::string& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  /// Flips one payload byte of the section with @p id. Returns the
  /// 1-based directory index a strict load must report.
  std::size_t corrupt_section(CnbSection id) {
    const auto info = inspect_cnb(path_);
    EXPECT_TRUE(info.has_value());
    std::string bytes = read_bytes(path_);
    for (std::size_t i = 0; i < info->sections.size(); ++i) {
      const CnbSectionInfo& s = info->sections[i];
      if (s.id == static_cast<std::uint32_t>(id)) {
        EXPECT_GT(s.byte_size, 0u);
        bytes[s.offset] = static_cast<char>(bytes[s.offset] ^ 0x5a);
        write_bytes(path_, bytes);
        return i + 1;
      }
    }
    ADD_FAILURE() << "section " << to_string(id) << " not in " << path_;
    return 0;
  }

  /// Patches one 32-byte directory entry in place via @p edit, which
  /// receives a pointer to the entry inside the file bytes (and the
  /// parsed CnbSectionInfo) and may rewrite any of its fields. Returns
  /// the 1-based directory index of the patched entry.
  template <typename Edit>
  std::size_t patch_entry(CnbSection id, Edit edit) {
    const auto info = inspect_cnb(path_);
    EXPECT_TRUE(info.has_value());
    std::string bytes = read_bytes(path_);
    for (std::size_t i = 0; i < info->sections.size(); ++i) {
      if (info->sections[i].id == static_cast<std::uint32_t>(id)) {
        edit(bytes.data() + kCnbHeaderBytes + 32 * i, bytes,
             info->sections[i]);
        write_bytes(path_, bytes);
        return i + 1;
      }
    }
    ADD_FAILURE() << "section " << to_string(id) << " not in " << path_;
    return 0;
  }

  /// Rebrands @p id's directory entry under @p new_id (payload intact).
  std::size_t rebrand_section(CnbSection id, std::uint32_t new_id) {
    return patch_entry(id, [&](char* entry, std::string&, const CnbSectionInfo&) {
      std::memcpy(entry, &new_id, sizeof new_id);
    });
  }

  btc::Chain write_with_snapshots() {
    const btc::Chain chain = three_block_chain();
    node::SnapshotSeries snapshots;
    snapshots.record({15, 3, 700});
    snapshots.record({30, 5, 1400});
    CnbWriteOptions options;
    options.snapshots = &snapshots;
    EXPECT_TRUE(write_cnb(chain, path_, options));
    return chain;
  }
};

TEST_F(CnbFormatTest, ChainAndSeriesRoundTripExactly) {
  const btc::Chain original = three_block_chain();
  node::SnapshotSeries snapshots;
  snapshots.record({15, 3, 700});
  snapshots.record({30, 5, 1400});
  FirstSeenMap first_seen;
  first_seen.emplace(btc::Txid::hash_of("a"), 100);
  first_seen.emplace(btc::Txid::hash_of("b"), 250);

  CnbWriteOptions options;
  options.snapshots = &snapshots;
  options.first_seen = &first_seen;
  std::string error;
  ASSERT_TRUE(write_cnb(original, path_, options, &error)) << error;

  const auto loaded = read_cnb(path_, LoadPolicy::kStrict);
  ASSERT_TRUE(loaded.has_value()) << loaded.report.summary();
  EXPECT_TRUE(loaded.report.clean());
  EXPECT_EQ(loaded->format, DatasetFormat::kCnb);

  ASSERT_EQ(loaded->chain.size(), original.size());
  for (std::size_t b = 0; b < original.size(); ++b) {
    const auto& ob = original.blocks()[b];
    const auto& lb = loaded->chain.blocks()[b];
    EXPECT_EQ(lb.height(), ob.height());
    EXPECT_EQ(lb.mined_at(), ob.mined_at());
    EXPECT_EQ(lb.coinbase().tag, ob.coinbase().tag);
    EXPECT_EQ(lb.coinbase().reward_address, ob.coinbase().reward_address);
    EXPECT_EQ(lb.coinbase().reward.value, ob.coinbase().reward.value);
    ASSERT_EQ(lb.tx_count(), ob.tx_count());
    for (std::size_t i = 0; i < ob.txs().size(); ++i) {
      EXPECT_EQ(lb.txs()[i].id(), ob.txs()[i].id());
      EXPECT_EQ(lb.txs()[i].fee().value, ob.txs()[i].fee().value);
      EXPECT_EQ(lb.txs()[i].vsize(), ob.txs()[i].vsize());
      EXPECT_EQ(lb.txs()[i].issued(), ob.txs()[i].issued());
    }
  }
  // Re-sealed headers must agree with the source chain.
  EXPECT_TRUE(loaded->chain.verify_integrity());
  EXPECT_EQ(loaded->chain.tip_hash(), original.tip_hash());

  ASSERT_TRUE(loaded->snapshots.has_value());
  ASSERT_EQ(loaded->snapshots->size(), 2u);
  EXPECT_EQ(loaded->snapshots->stats()[1].total_vsize, 1400u);
  ASSERT_TRUE(loaded->first_seen.has_value());
  EXPECT_EQ(*loaded->first_seen, first_seen);
  EXPECT_FALSE(loaded->audit_dataset.has_value());
}

TEST_F(CnbFormatTest, DerivedColumnsRoundTripBitwise) {
  const btc::Chain chain = three_block_chain();
  const auto registry = btc::CoinbaseTagRegistry::paper_registry();
  const core::PoolAttribution attribution(chain, registry);
  util::ThreadPool workers(1);
  const auto dataset = core::AuditDataset::build(chain, attribution, workers);

  CnbWriteOptions options;
  options.dataset = &dataset;
  options.registry_fingerprint = registry.fingerprint();
  std::string error;
  ASSERT_TRUE(write_cnb(chain, path_, options, &error)) << error;

  const auto loaded = read_cnb(path_, LoadPolicy::kStrict);
  ASSERT_TRUE(loaded.has_value()) << loaded.report.summary();
  ASSERT_TRUE(loaded->audit_dataset.has_value());
  EXPECT_EQ(loaded->registry_fingerprint, registry.fingerprint());
  EXPECT_EQ(loaded->prebuilt_for(registry), &*loaded->audit_dataset);

  const core::AuditDataset& r = *loaded->audit_dataset;
  ASSERT_EQ(r.block_count(), dataset.block_count());
  ASSERT_EQ(r.tx_count(), dataset.tx_count());
  ASSERT_EQ(r.pool_count(), dataset.pool_count());

  // memcmp over the spans so NaN cells (undefined PPE/SPPE) compare by
  // representation, exactly as the byte-identity guarantee demands.
  const auto bitwise_equal = [](auto a, auto b) {
    ASSERT_EQ(a.size(), b.size());
    if (!a.empty()) {
      EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size_bytes()), 0);
    }
  };
  bitwise_equal(r.block_heights(), dataset.block_heights());
  bitwise_equal(r.block_mined_at(), dataset.block_mined_at());
  bitwise_equal(r.block_pool(), dataset.block_pool());
  bitwise_equal(r.block_fees(), dataset.block_fees());
  bitwise_equal(r.block_ppe(), dataset.block_ppe());
  bitwise_equal(r.fee_rate(), dataset.fee_rate());
  bitwise_equal(r.vsize(), dataset.vsize());
  bitwise_equal(r.issued(), dataset.issued());
  bitwise_equal(r.txids(), dataset.txids());
  bitwise_equal(r.tx_flags(), dataset.tx_flags());
  bitwise_equal(r.sppe(), dataset.sppe());
  bitwise_equal(r.pools_by_blocks(), dataset.pools_by_blocks());
  for (core::PoolId p = 0; p < dataset.pool_count(); ++p) {
    EXPECT_EQ(r.pool_name(p), dataset.pool_name(p));
    EXPECT_EQ(r.pool_tx_count(p), dataset.pool_tx_count(p));
    bitwise_equal(r.blocks_of_pool(p), dataset.blocks_of_pool(p));
    bitwise_equal(r.self_interest_txs(p), dataset.self_interest_txs(p));
  }
  ASSERT_EQ(r.addresses().size(), dataset.addresses().size());
  for (core::TxIdx t = 0; t < dataset.tx_count(); ++t) {
    bitwise_equal(r.out_addrs_of(t), dataset.out_addrs_of(t));
    EXPECT_EQ(r.block_of(t), dataset.block_of(t));
  }
}

TEST_F(CnbFormatTest, InspectReportsHeaderAndSections) {
  const btc::Chain chain = three_block_chain();
  ASSERT_TRUE(write_cnb(chain, path_));
  std::string error;
  const auto info = inspect_cnb(path_, &error);
  ASSERT_TRUE(info.has_value()) << error;
  EXPECT_EQ(info->version, kCnbVersion);
  EXPECT_EQ(info->genesis_height, 100u);
  EXPECT_EQ(info->block_count, 3u);
  EXPECT_EQ(info->tx_count, chain.total_tx_count());
  // No observer/derived groups — only the always-stored sealed headers.
  EXPECT_EQ(info->flags, kCnbFlagSealedHeaders);
  EXPECT_FALSE(info->sections.empty());
  EXPECT_EQ(info->file_size, std::filesystem::file_size(path_));
}

TEST_F(CnbFormatTest, BadMagicIsTyped) {
  write_bytes(path_, std::string(256, 'x'));
  for (const LoadPolicy policy : {LoadPolicy::kStrict, LoadPolicy::kLenient}) {
    const auto loaded = read_cnb(path_, policy);
    EXPECT_FALSE(loaded.has_value());
    ASSERT_NE(loaded.report.first_error(), nullptr);
    EXPECT_EQ(loaded.report.first_error()->kind, LoadErrorKind::kBadMagic);
    EXPECT_EQ(loaded.report.first_error()->line, 0u);
  }
}

// The bugfix satellite: a truncated .cnb must surface as a typed
// LoadError under BOTH policies, never a crash.
TEST_F(CnbFormatTest, TruncatedFileIsTypedUnderBothPolicies) {
  ASSERT_TRUE(write_cnb(three_block_chain(), path_));
  const std::string bytes = read_bytes(path_);
  const auto info = inspect_cnb(path_);
  ASSERT_TRUE(info.has_value());

  // Shorter than the fixed header.
  write_bytes(path_, bytes.substr(0, 40));
  for (const LoadPolicy policy : {LoadPolicy::kStrict, LoadPolicy::kLenient}) {
    const auto loaded = read_cnb(path_, policy);
    EXPECT_FALSE(loaded.has_value());
    ASSERT_NE(loaded.report.first_error(), nullptr);
    EXPECT_EQ(loaded.report.first_error()->kind, LoadErrorKind::kTruncatedFile);
  }

  // Cut inside a REQUIRED section: the directory parses but the column
  // runs past EOF — fatal under both policies.
  std::uint64_t cut = 0;
  for (const CnbSectionInfo& s : info->sections) {
    if (s.id == static_cast<std::uint32_t>(CnbSection::kOutValueSat)) {
      cut = s.offset + 1;
    }
  }
  ASSERT_GT(cut, 0u);
  write_bytes(path_, bytes.substr(0, cut));
  for (const LoadPolicy policy : {LoadPolicy::kStrict, LoadPolicy::kLenient}) {
    const auto loaded = read_cnb(path_, policy);
    EXPECT_FALSE(loaded.has_value());
    ASSERT_NE(loaded.report.first_error(), nullptr);
    EXPECT_EQ(loaded.report.first_error()->kind, LoadErrorKind::kTruncatedFile);
  }

  // A cut that only claims the file's trailing OPTIONAL section (the
  // stored Merkle roots): still a typed defect — strict aborts, lenient
  // salvages the load by re-sealing the chain itself.
  write_bytes(path_, bytes.substr(0, bytes.size() - 9));
  const auto strict = read_cnb(path_, LoadPolicy::kStrict);
  EXPECT_FALSE(strict.has_value());
  ASSERT_NE(strict.report.first_error(), nullptr);
  EXPECT_EQ(strict.report.first_error()->kind, LoadErrorKind::kTruncatedFile);
  const auto lenient = read_cnb(path_, LoadPolicy::kLenient);
  ASSERT_TRUE(lenient.has_value()) << lenient.report.summary();
  EXPECT_GT(lenient.report.rows_skipped, 0u);
  EXPECT_TRUE(lenient->chain.verify_integrity());
  EXPECT_EQ(lenient->chain.tip_hash(), three_block_chain().tip_hash());
}

TEST_F(CnbFormatTest, UnsupportedVersionAndEndiannessRejected) {
  ASSERT_TRUE(write_cnb(three_block_chain(), path_));
  const std::string bytes = read_bytes(path_);

  std::string patched = bytes;
  patched[8] = 99;  // version u32 LE at offset 8
  write_bytes(path_, patched);
  auto loaded = read_cnb(path_, LoadPolicy::kLenient);
  EXPECT_FALSE(loaded.has_value());
  ASSERT_NE(loaded.report.first_error(), nullptr);
  EXPECT_EQ(loaded.report.first_error()->kind,
            LoadErrorKind::kUnsupportedVersion);

  patched = bytes;
  patched[12] = static_cast<char>(0xff);  // endianness tag at offset 12
  write_bytes(path_, patched);
  loaded = read_cnb(path_, LoadPolicy::kStrict);
  EXPECT_FALSE(loaded.has_value());
  ASSERT_NE(loaded.report.first_error(), nullptr);
  EXPECT_EQ(loaded.report.first_error()->kind,
            LoadErrorKind::kUnsupportedVersion);
}

TEST_F(CnbFormatTest, StrictPinpointsCorruptSectionByDirectoryIndex) {
  node::SnapshotSeries snapshots;
  snapshots.record({15, 3, 700});
  snapshots.record({30, 5, 1400});
  CnbWriteOptions options;
  options.snapshots = &snapshots;
  ASSERT_TRUE(write_cnb(three_block_chain(), path_, options));

  const std::string dirty = path_ + ".dirty";
  testing::FaultInjector injector(7);
  testing::InjectionLog log;
  testing::FaultOptions fault_options;
  fault_options.cnb_sections = 1;
  ASSERT_TRUE(injector.inject_cnb_file(path_, dirty, fault_options, log));
  ASSERT_EQ(log.faults.size(), 1u);
  EXPECT_EQ(log.faults[0].kind, testing::FaultKind::kCorruptSection);
  EXPECT_TRUE(log.faults[0].detectable);

  const auto loaded = read_cnb(dirty, LoadPolicy::kStrict);
  EXPECT_FALSE(loaded.has_value());
  ASSERT_NE(loaded.report.first_error(), nullptr);
  const LoadError& err = *loaded.report.first_error();
  EXPECT_EQ(err.kind, LoadErrorKind::kSectionChecksum);
  // The strict error's line is the same 1-based directory index the
  // injector logged, and the detail names the section.
  EXPECT_EQ(err.line, log.faults[0].line);
  EXPECT_NE(log.faults[0].detail.find("section "), std::string::npos);
  std::filesystem::remove(dirty);
}

TEST_F(CnbFormatTest, LenientDropsCorruptOptionalGroupKeepsChain) {
  const btc::Chain chain = three_block_chain();
  node::SnapshotSeries snapshots;
  snapshots.record({15, 3, 700});
  snapshots.record({30, 5, 1400});
  CnbWriteOptions options;
  options.snapshots = &snapshots;
  ASSERT_TRUE(write_cnb(chain, path_, options));
  corrupt_section(CnbSection::kSnapTime);

  // Strict: no value, the defect pinpointed.
  const auto strict = read_cnb(path_, LoadPolicy::kStrict);
  EXPECT_FALSE(strict.has_value());

  // Lenient: the snapshot group is dropped, the chain still loads.
  const auto lenient = read_cnb(path_, LoadPolicy::kLenient);
  ASSERT_TRUE(lenient.has_value()) << lenient.report.summary();
  EXPECT_FALSE(lenient.report.clean());
  EXPECT_GT(lenient.report.rows_skipped, 0u);
  EXPECT_FALSE(lenient->snapshots.has_value());
  EXPECT_EQ(lenient->chain.size(), chain.size());
  EXPECT_EQ(lenient->chain.tip_hash(), chain.tip_hash());
}

TEST_F(CnbFormatTest, CorruptMerkleSectionFallsBackToResealing) {
  const btc::Chain chain = three_block_chain();
  ASSERT_TRUE(write_cnb(chain, path_));
  const std::size_t dir_index = corrupt_section(CnbSection::kBlockMerkleRoot);

  // Strict: the sealed-header fast path is a section like any other.
  const auto strict = read_cnb(path_, LoadPolicy::kStrict);
  EXPECT_FALSE(strict.has_value());
  ASSERT_NE(strict.report.first_error(), nullptr);
  EXPECT_EQ(strict.report.first_error()->kind, LoadErrorKind::kSectionChecksum);
  EXPECT_EQ(strict.report.first_error()->line, dir_index);

  // Lenient: the roots are recomputable, so dropping the section only
  // costs the shortcut — the re-sealed chain is identical.
  const auto lenient = read_cnb(path_, LoadPolicy::kLenient);
  ASSERT_TRUE(lenient.has_value()) << lenient.report.summary();
  EXPECT_GT(lenient.report.rows_skipped, 0u);
  EXPECT_TRUE(lenient->chain.verify_integrity());
  EXPECT_EQ(lenient->chain.tip_hash(), chain.tip_hash());
}

TEST_F(CnbFormatTest, CorruptRequiredSectionIsFatalUnderBothPolicies) {
  ASSERT_TRUE(write_cnb(three_block_chain(), path_));
  const std::size_t dir_index = corrupt_section(CnbSection::kTxFeeSat);
  for (const LoadPolicy policy : {LoadPolicy::kStrict, LoadPolicy::kLenient}) {
    const auto loaded = read_cnb(path_, policy);
    EXPECT_FALSE(loaded.has_value());
    ASSERT_NE(loaded.report.first_error(), nullptr);
    EXPECT_EQ(loaded.report.first_error()->kind,
              LoadErrorKind::kSectionChecksum);
    EXPECT_EQ(loaded.report.first_error()->line, dir_index);
  }
}

TEST_F(CnbFormatTest, UnknownSectionIdIgnoredButRequiredOnesMissed) {
  ASSERT_TRUE(write_cnb(three_block_chain(), path_));
  const auto info = inspect_cnb(path_);
  ASSERT_TRUE(info.has_value());
  std::string bytes = read_bytes(path_);
  for (std::size_t i = 0; i < info->sections.size(); ++i) {
    if (info->sections[i].id ==
        static_cast<std::uint32_t>(CnbSection::kBlockMinedAt)) {
      // Rebrand the section under an id this version has never heard of:
      // forward compatibility says skip it, after which a required
      // section is simply missing.
      const std::size_t entry = kCnbHeaderBytes + 32 * i;
      const std::uint32_t unknown = 60'000;
      std::memcpy(bytes.data() + entry, &unknown, sizeof(unknown));
      break;
    }
  }
  write_bytes(path_, bytes);
  for (const LoadPolicy policy : {LoadPolicy::kStrict, LoadPolicy::kLenient}) {
    const auto loaded = read_cnb(path_, policy);
    EXPECT_FALSE(loaded.has_value());
    ASSERT_NE(loaded.report.first_error(), nullptr);
    EXPECT_EQ(loaded.report.first_error()->kind,
              LoadErrorKind::kMissingSection);
    EXPECT_NE(loaded.report.first_error()->detail.find("block-mined-at"),
              std::string::npos);
  }
}

// A group whose optional section is simply MISSING (not
// checksum-corrupt) must be poisoned whole: strict aborts, lenient
// drops the group. Before the fix lenient kept group_ok true and
// consumed the sibling columns half-loaded (out-of-bounds reads on the
// empty counts vector).
TEST_F(CnbFormatTest, LenientDropsGroupWhenOptionalSectionMissing) {
  const btc::Chain chain = write_with_snapshots();
  // Hide kSnapTxCount under an unrecognised id: the reader skips the
  // entry, leaving the snapshot group with times but no counts.
  rebrand_section(CnbSection::kSnapTxCount, 60'001);

  const auto strict = read_cnb(path_, LoadPolicy::kStrict);
  EXPECT_FALSE(strict.has_value());
  ASSERT_NE(strict.report.first_error(), nullptr);
  EXPECT_EQ(strict.report.first_error()->kind, LoadErrorKind::kMissingSection);

  const auto lenient = read_cnb(path_, LoadPolicy::kLenient);
  ASSERT_TRUE(lenient.has_value()) << lenient.report.summary();
  EXPECT_FALSE(lenient.report.clean());
  EXPECT_GT(lenient.report.rows_skipped, 0u);
  EXPECT_FALSE(lenient->snapshots.has_value());
  EXPECT_EQ(lenient->chain.size(), chain.size());
  EXPECT_EQ(lenient->chain.tip_hash(), chain.tip_hash());
}

// Same failure model for a checksum-clean section whose byte size
// disagrees with the group's implied element count.
TEST_F(CnbFormatTest, LenientDropsGroupWhenOptionalSectionWrongSized) {
  const btc::Chain chain = write_with_snapshots();
  // Shrink kSnapTxCount to one element, checksum recomputed so the only
  // defect is the size disagreeing with kSnapTime's count.
  const std::size_t dir_index = patch_entry(
      CnbSection::kSnapTxCount,
      [](char* entry, std::string& bytes, const CnbSectionInfo& s) {
        const std::uint64_t new_size = 8;
        const std::uint64_t checksum =
            cnb_checksum(bytes.data() + s.offset, new_size);
        std::memcpy(entry + 16, &new_size, sizeof new_size);
        std::memcpy(entry + 24, &checksum, sizeof checksum);
      });

  const auto strict = read_cnb(path_, LoadPolicy::kStrict);
  EXPECT_FALSE(strict.has_value());
  ASSERT_NE(strict.report.first_error(), nullptr);
  EXPECT_EQ(strict.report.first_error()->kind, LoadErrorKind::kSectionLayout);
  EXPECT_EQ(strict.report.first_error()->line, dir_index);

  const auto lenient = read_cnb(path_, LoadPolicy::kLenient);
  ASSERT_TRUE(lenient.has_value()) << lenient.report.summary();
  EXPECT_GT(lenient.report.rows_skipped, 0u);
  EXPECT_FALSE(lenient->snapshots.has_value());
  EXPECT_EQ(lenient->chain.tip_hash(), chain.tip_hash());
}

// The derived-columns flavour of the missing-section hole: an absent
// offsets column used to reach name_offsets.front() on an empty vector.
TEST_F(CnbFormatTest, LenientDropsDerivedGroupWhenOffsetsColumnMissing) {
  const btc::Chain chain = three_block_chain();
  const auto registry = btc::CoinbaseTagRegistry::paper_registry();
  const core::PoolAttribution attribution(chain, registry);
  util::ThreadPool workers(1);
  const auto dataset = core::AuditDataset::build(chain, attribution, workers);
  CnbWriteOptions options;
  options.dataset = &dataset;
  options.registry_fingerprint = registry.fingerprint();
  ASSERT_TRUE(write_cnb(chain, path_, options));
  rebrand_section(CnbSection::kPoolNameOffsets, 60'002);

  const auto strict = read_cnb(path_, LoadPolicy::kStrict);
  EXPECT_FALSE(strict.has_value());
  ASSERT_NE(strict.report.first_error(), nullptr);
  EXPECT_EQ(strict.report.first_error()->kind, LoadErrorKind::kMissingSection);

  const auto lenient = read_cnb(path_, LoadPolicy::kLenient);
  ASSERT_TRUE(lenient.has_value()) << lenient.report.summary();
  EXPECT_FALSE(lenient->audit_dataset.has_value());
  EXPECT_EQ(lenient->chain.tip_hash(), chain.tip_hash());
}

// A section offset the writer would never emit (not 8-byte aligned)
// must be rejected in the directory walk, never reinterpret_cast into a
// misaligned column view.
TEST_F(CnbFormatTest, MisalignedSectionOffsetIsTypedNotDereferenced) {
  const btc::Chain chain = write_with_snapshots();
  const std::size_t dir_index = patch_entry(
      CnbSection::kSnapTime,
      [](char* entry, std::string&, const CnbSectionInfo& s) {
        const std::uint64_t off = s.offset + 4;
        std::memcpy(entry + 8, &off, sizeof off);
      });

  const auto strict = read_cnb(path_, LoadPolicy::kStrict);
  EXPECT_FALSE(strict.has_value());
  ASSERT_NE(strict.report.first_error(), nullptr);
  EXPECT_EQ(strict.report.first_error()->kind, LoadErrorKind::kSectionLayout);
  EXPECT_EQ(strict.report.first_error()->line, dir_index);
  EXPECT_NE(strict.report.first_error()->detail.find("aligned"),
            std::string::npos);

  const auto lenient = read_cnb(path_, LoadPolicy::kLenient);
  ASSERT_TRUE(lenient.has_value()) << lenient.report.summary();
  EXPECT_FALSE(lenient->snapshots.has_value());
  EXPECT_EQ(lenient->chain.tip_hash(), chain.tip_hash());
}

// Duplicate directory entries: the first (already verified) entry wins;
// the duplicate is a recorded defect — droppable for an optional
// section in lenient mode, fatal like any defect under strict.
TEST_F(CnbFormatTest, DuplicateOptionalEntryKeepsFirstUnderLenient) {
  const btc::Chain chain = three_block_chain();
  node::SnapshotSeries snapshots;
  snapshots.record({15, 3, 700});
  snapshots.record({30, 5, 1400});
  FirstSeenMap first_seen;
  first_seen.emplace(btc::Txid::hash_of("a"), 100);
  first_seen.emplace(btc::Txid::hash_of("b"), 250);
  CnbWriteOptions options;
  options.snapshots = &snapshots;
  options.first_seen = &first_seen;
  ASSERT_TRUE(write_cnb(chain, path_, options));
  // Rebrand the first-seen time column as a SECOND kSnapTxCount entry.
  const std::size_t dir_index = rebrand_section(
      CnbSection::kFirstSeenTime,
      static_cast<std::uint32_t>(CnbSection::kSnapTxCount));

  const auto strict = read_cnb(path_, LoadPolicy::kStrict);
  EXPECT_FALSE(strict.has_value());
  ASSERT_NE(strict.report.first_error(), nullptr);
  EXPECT_EQ(strict.report.first_error()->kind, LoadErrorKind::kSectionLayout);
  EXPECT_EQ(strict.report.first_error()->line, dir_index);
  EXPECT_NE(strict.report.first_error()->detail.find("duplicate"),
            std::string::npos);

  const auto lenient = read_cnb(path_, LoadPolicy::kLenient);
  ASSERT_TRUE(lenient.has_value()) << lenient.report.summary();
  EXPECT_FALSE(lenient.report.clean());
  // Keep-first: the snapshot group still loads from its intact entry...
  ASSERT_TRUE(lenient->snapshots.has_value());
  ASSERT_EQ(lenient->snapshots->size(), 2u);
  EXPECT_EQ(lenient->snapshots->stats()[1].tx_count, 5u);
  // ...while the group that actually lost a section is dropped.
  EXPECT_FALSE(lenient->first_seen.has_value());
  EXPECT_EQ(lenient->chain.tip_hash(), chain.tip_hash());
}

// Duplicating a REQUIRED section is a file-level malformation lenient
// mode has no safe answer to — fatal under both policies.
TEST_F(CnbFormatTest, DuplicateRequiredEntryIsFatalUnderBothPolicies) {
  write_with_snapshots();
  const std::size_t dir_index = rebrand_section(
      CnbSection::kSnapTime,
      static_cast<std::uint32_t>(CnbSection::kBlockMinedAt));
  for (const LoadPolicy policy : {LoadPolicy::kStrict, LoadPolicy::kLenient}) {
    const auto loaded = read_cnb(path_, policy);
    EXPECT_FALSE(loaded.has_value());
    ASSERT_NE(loaded.report.first_error(), nullptr);
    EXPECT_EQ(loaded.report.first_error()->kind, LoadErrorKind::kSectionLayout);
    EXPECT_EQ(loaded.report.first_error()->line, dir_index);
    EXPECT_NE(loaded.report.first_error()->detail.find(
                  "duplicate section block-mined-at"),
              std::string::npos);
  }
}

// A crafted section_count must be bounds-checked against the file size
// before anything is sized by it (a 0xFFFFFFFF count is a ~137 GB
// reserve otherwise — std::bad_alloc, not a typed failure).
TEST_F(CnbFormatTest, InspectRejectsHugeSectionCountWithoutAllocating) {
  ASSERT_TRUE(write_cnb(three_block_chain(), path_));
  std::string bytes = read_bytes(path_);
  const std::uint32_t huge = 0xFFFFFFFFu;
  std::memcpy(bytes.data() + 16, &huge, sizeof huge);  // section_count
  write_bytes(path_, bytes);
  std::string error;
  const auto info = inspect_cnb(path_, &error);
  EXPECT_FALSE(info.has_value());
  EXPECT_NE(error.find("directory extends past EOF"), std::string::npos);
}

}  // namespace
}  // namespace cn::io

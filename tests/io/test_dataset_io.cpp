#include "io/dataset_io.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "../helpers.hpp"
#include "core/ppe.hpp"
#include "sim/dataset.hpp"
#include "util/csv.hpp"

namespace cn::io {
namespace {

class DatasetIoTest : public ::testing::Test {
 protected:
  std::string dir_ = ::testing::TempDir() + "/cn_io_test";
  void SetUp() override { std::filesystem::remove_all(dir_); }
  void TearDown() override { std::filesystem::remove_all(dir_); }
};

TEST_F(DatasetIoTest, ChainRoundTripsExactly) {
  btc::Chain original(100);
  original.append(cn::test::block_with_rates(100, {9.0, 5.0, 2.0}, "/F2Pool/", 600));
  original.append(cn::test::block_with_rates(101, {}, "", 1200));  // empty, anonymous
  original.append(cn::test::block_with_rates(102, {7.0}, "/ViaBTC/", 1900));

  ASSERT_TRUE(export_chain(original, dir_));
  const auto loaded = import_chain(dir_);
  ASSERT_TRUE(loaded.has_value());

  ASSERT_EQ(loaded->size(), original.size());
  for (std::size_t b = 0; b < original.size(); ++b) {
    const auto& ob = original.blocks()[b];
    const auto& lb = loaded->blocks()[b];
    EXPECT_EQ(lb.height(), ob.height());
    EXPECT_EQ(lb.mined_at(), ob.mined_at());
    EXPECT_EQ(lb.coinbase().tag, ob.coinbase().tag);
    EXPECT_EQ(lb.coinbase().reward_address, ob.coinbase().reward_address);
    EXPECT_EQ(lb.coinbase().reward.value, ob.coinbase().reward.value);
    ASSERT_EQ(lb.tx_count(), ob.tx_count());
    for (std::size_t i = 0; i < ob.txs().size(); ++i) {
      EXPECT_EQ(lb.txs()[i].id(), ob.txs()[i].id());
      EXPECT_EQ(lb.txs()[i].fee().value, ob.txs()[i].fee().value);
      EXPECT_EQ(lb.txs()[i].vsize(), ob.txs()[i].vsize());
      EXPECT_EQ(lb.txs()[i].issued(), ob.txs()[i].issued());
    }
  }
}

TEST_F(DatasetIoTest, CpfpStructureSurvivesRoundTrip) {
  // The audit's CPFP detection depends on input linkage; verify an
  // exported+imported chain yields identical PPE.
  const auto parent = cn::test::tx_with_rate(1.0, 250, 0, 8801);
  const auto child = btc::make_child_payment(10, 250, btc::Satoshi{10'000}, parent,
                                             btc::Address::derive("d"),
                                             btc::Satoshi{100}, 8802);
  btc::Coinbase cb;
  cb.tag = "/TestPool/";
  btc::Chain original(1);
  original.append(btc::Block(1, 600, cb,
                             {parent, child, cn::test::tx_with_rate(20, 250, 0, 8803),
                              cn::test::tx_with_rate(9, 250, 0, 8804)}));

  ASSERT_TRUE(export_chain(original, dir_));
  const auto loaded = import_chain(dir_);
  ASSERT_TRUE(loaded.has_value());

  EXPECT_EQ(loaded->blocks()[0].cpfp_positions(),
            original.blocks()[0].cpfp_positions());
  EXPECT_EQ(core::block_ppe(loaded->blocks()[0]),
            core::block_ppe(original.blocks()[0]));
}

TEST_F(DatasetIoTest, SimulatedDatasetRoundTrips) {
  const sim::SimResult world = sim::make_dataset(sim::DatasetKind::kA, 5, 0.03);
  ASSERT_TRUE(export_chain(world.chain, dir_));
  const auto loaded = import_chain(dir_);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), world.chain.size());
  EXPECT_EQ(loaded->total_tx_count(), world.chain.total_tx_count());
  // Audit measures agree exactly.
  EXPECT_EQ(core::chain_ppe(*loaded), core::chain_ppe(world.chain));
  // Re-sealed headers form a valid chain with identical Merkle roots.
  EXPECT_TRUE(loaded->verify_integrity());
  EXPECT_EQ(loaded->tip_hash(), world.chain.tip_hash());
}

TEST_F(DatasetIoTest, SnapshotsRoundTrip) {
  node::SnapshotSeries series;
  series.record({15, 3, 700});
  series.record({30, 5, 1400});
  ASSERT_TRUE(export_snapshots(series, dir_ + ".csv"));
  const auto loaded = import_snapshots(dir_ + ".csv");
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ(loaded->stats()[1].total_vsize, 1400u);
  std::filesystem::remove(dir_ + ".csv");
}

TEST_F(DatasetIoTest, FirstSeenRoundTrips) {
  FirstSeenMap map;
  map.emplace(btc::Txid::hash_of("a"), 100);
  map.emplace(btc::Txid::hash_of("b"), 250);
  ASSERT_TRUE(export_first_seen(map, dir_ + ".csv"));
  const auto loaded = import_first_seen(dir_ + ".csv");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, map);
  std::filesystem::remove(dir_ + ".csv");
}

TEST_F(DatasetIoTest, ImportMissingDirectoryFails) {
  EXPECT_FALSE(import_chain("/nonexistent-dir-xyz").has_value());
  EXPECT_FALSE(import_snapshots("/nonexistent-dir-xyz/s.csv").has_value());
  EXPECT_FALSE(import_first_seen("/nonexistent-dir-xyz/f.csv").has_value());
}

TEST_F(DatasetIoTest, ImportRejectsCorruptTxCount) {
  btc::Chain original(1);
  original.append(cn::test::block_with_rates(1, {5.0, 3.0}, "/P/", 600));
  ASSERT_TRUE(export_chain(original, dir_));
  // Corrupt: truncate txs.csv to header only.
  {
    CsvWriter csv(dir_ + "/txs.csv");
    csv.header({"height", "position", "txid", "issued", "vsize", "fee_sat"});
  }
  EXPECT_FALSE(import_chain(dir_).has_value());
}

TEST(CsvReader, ParsesQuotedFields) {
  const std::string path = ::testing::TempDir() + "/cn_reader.csv";
  {
    cn::CsvWriter csv(path);
    csv.field("a,b").field("line\nbreak").field("say \"hi\"");
    csv.end_row();
    csv.field("plain").field(std::int64_t{42});
    csv.end_row();
  }
  cn::CsvReader reader(path);
  std::vector<std::string> row;
  ASSERT_TRUE(reader.next_row(row));
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[0], "a,b");
  EXPECT_EQ(row[1], "line\nbreak");
  EXPECT_EQ(row[2], "say \"hi\"");
  ASSERT_TRUE(reader.next_row(row));
  EXPECT_EQ(row[1], "42");
  EXPECT_FALSE(reader.next_row(row));
  std::filesystem::remove(path);
}

TEST(TxidHex, RoundTripAndRejection) {
  const auto id = btc::Txid::hash_of("roundtrip");
  const auto parsed = btc::Txid::from_hex(id.to_hex());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, id);
  EXPECT_FALSE(btc::Txid::from_hex("abcd").has_value());
  EXPECT_FALSE(btc::Txid::from_hex(std::string(64, 'z')).has_value());
}

}  // namespace
}  // namespace cn::io

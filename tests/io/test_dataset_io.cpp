#include "io/dataset_io.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "../helpers.hpp"
#include "core/ppe.hpp"
#include "sim/dataset.hpp"
#include "util/csv.hpp"

namespace cn::io {
namespace {

std::vector<std::string> file_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

void write_file_lines(const std::string& path,
                      const std::vector<std::string>& lines) {
  std::ofstream out(path, std::ios::trunc);
  for (const auto& line : lines) out << line << '\n';
}

void append_line(const std::string& path, const std::string& line) {
  std::ofstream out(path, std::ios::app);
  out << line << '\n';
}

class DatasetIoTest : public ::testing::Test {
 protected:
  // Suffix with the test name: ctest shards gtest cases into separate
  // processes, so a shared directory would race under `ctest -j`.
  std::string dir_ =
      ::testing::TempDir() + "/cn_io_" +
      ::testing::UnitTest::GetInstance()->current_test_info()->name();
  void SetUp() override { std::filesystem::remove_all(dir_); }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  btc::Chain three_block_chain() const {
    btc::Chain chain(100);
    chain.append(cn::test::block_with_rates(100, {9.0, 5.0, 2.0}, "/F2Pool/", 600));
    chain.append(cn::test::block_with_rates(101, {}, "", 1200));
    chain.append(cn::test::block_with_rates(102, {7.0}, "/ViaBTC/", 1900));
    return chain;
  }
};

TEST_F(DatasetIoTest, ChainRoundTripsExactly) {
  btc::Chain original(100);
  original.append(cn::test::block_with_rates(100, {9.0, 5.0, 2.0}, "/F2Pool/", 600));
  original.append(cn::test::block_with_rates(101, {}, "", 1200));  // empty, anonymous
  original.append(cn::test::block_with_rates(102, {7.0}, "/ViaBTC/", 1900));

  ASSERT_TRUE(export_chain(original, dir_));
  const auto loaded = import_chain(dir_, LoadPolicy::kStrict);
  ASSERT_TRUE(loaded.has_value());

  ASSERT_EQ(loaded->size(), original.size());
  for (std::size_t b = 0; b < original.size(); ++b) {
    const auto& ob = original.blocks()[b];
    const auto& lb = loaded->blocks()[b];
    EXPECT_EQ(lb.height(), ob.height());
    EXPECT_EQ(lb.mined_at(), ob.mined_at());
    EXPECT_EQ(lb.coinbase().tag, ob.coinbase().tag);
    EXPECT_EQ(lb.coinbase().reward_address, ob.coinbase().reward_address);
    EXPECT_EQ(lb.coinbase().reward.value, ob.coinbase().reward.value);
    ASSERT_EQ(lb.tx_count(), ob.tx_count());
    for (std::size_t i = 0; i < ob.txs().size(); ++i) {
      EXPECT_EQ(lb.txs()[i].id(), ob.txs()[i].id());
      EXPECT_EQ(lb.txs()[i].fee().value, ob.txs()[i].fee().value);
      EXPECT_EQ(lb.txs()[i].vsize(), ob.txs()[i].vsize());
      EXPECT_EQ(lb.txs()[i].issued(), ob.txs()[i].issued());
    }
  }
}

TEST_F(DatasetIoTest, CpfpStructureSurvivesRoundTrip) {
  // The audit's CPFP detection depends on input linkage; verify an
  // exported+imported chain yields identical PPE.
  const auto parent = cn::test::tx_with_rate(1.0, 250, 0, 8801);
  const auto child = btc::make_child_payment(10, 250, btc::Satoshi{10'000}, parent,
                                             btc::Address::derive("d"),
                                             btc::Satoshi{100}, 8802);
  btc::Coinbase cb;
  cb.tag = "/TestPool/";
  btc::Chain original(1);
  original.append(btc::Block(1, 600, cb,
                             {parent, child, cn::test::tx_with_rate(20, 250, 0, 8803),
                              cn::test::tx_with_rate(9, 250, 0, 8804)}));

  ASSERT_TRUE(export_chain(original, dir_));
  const auto loaded = import_chain(dir_, LoadPolicy::kStrict);
  ASSERT_TRUE(loaded.has_value());

  EXPECT_EQ(loaded->blocks()[0].cpfp_positions(),
            original.blocks()[0].cpfp_positions());
  EXPECT_EQ(core::block_ppe(loaded->blocks()[0]),
            core::block_ppe(original.blocks()[0]));
}

TEST_F(DatasetIoTest, SimulatedDatasetRoundTrips) {
  const sim::SimResult world = sim::make_dataset(sim::DatasetKind::kA, 5, 0.03);
  ASSERT_TRUE(export_chain(world.chain, dir_));
  const auto loaded = import_chain(dir_, LoadPolicy::kStrict);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), world.chain.size());
  EXPECT_EQ(loaded->total_tx_count(), world.chain.total_tx_count());
  // Audit measures agree exactly.
  EXPECT_EQ(core::chain_ppe(*loaded), core::chain_ppe(world.chain));
  // Re-sealed headers form a valid chain with identical Merkle roots.
  EXPECT_TRUE(loaded->verify_integrity());
  EXPECT_EQ(loaded->tip_hash(), world.chain.tip_hash());
}

TEST_F(DatasetIoTest, SnapshotsRoundTrip) {
  node::SnapshotSeries series;
  series.record({15, 3, 700});
  series.record({30, 5, 1400});
  ASSERT_TRUE(export_snapshots(series, dir_ + ".csv"));
  const auto loaded = import_snapshots(dir_ + ".csv", LoadPolicy::kStrict);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ(loaded->stats()[1].total_vsize, 1400u);
  std::filesystem::remove(dir_ + ".csv");
}

TEST_F(DatasetIoTest, FirstSeenRoundTrips) {
  FirstSeenMap map;
  map.emplace(btc::Txid::hash_of("a"), 100);
  map.emplace(btc::Txid::hash_of("b"), 250);
  ASSERT_TRUE(export_first_seen(map, dir_ + ".csv"));
  const auto loaded = import_first_seen(dir_ + ".csv", LoadPolicy::kStrict);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, map);
  std::filesystem::remove(dir_ + ".csv");
}

TEST_F(DatasetIoTest, ImportMissingDirectoryFails) {
  EXPECT_FALSE(import_chain("/nonexistent-dir-xyz", LoadPolicy::kStrict).has_value());
  EXPECT_FALSE(import_snapshots("/nonexistent-dir-xyz/s.csv", LoadPolicy::kStrict).has_value());
  EXPECT_FALSE(import_first_seen("/nonexistent-dir-xyz/f.csv", LoadPolicy::kStrict).has_value());
}

TEST_F(DatasetIoTest, ImportRejectsCorruptTxCount) {
  btc::Chain original(1);
  original.append(cn::test::block_with_rates(1, {5.0, 3.0}, "/P/", 600));
  ASSERT_TRUE(export_chain(original, dir_));
  // Corrupt: truncate txs.csv to header only.
  {
    CsvWriter csv(dir_ + "/txs.csv");
    csv.header({"height", "position", "txid", "issued", "vsize", "fee_sat"});
  }
  EXPECT_FALSE(import_chain(dir_, LoadPolicy::kStrict).has_value());
}

TEST(CsvReader, ParsesQuotedFields) {
  const std::string path = ::testing::TempDir() + "/cn_reader.csv";
  {
    cn::CsvWriter csv(path);
    csv.field("a,b").field("line\nbreak").field("say \"hi\"");
    csv.end_row();
    csv.field("plain").field(std::int64_t{42});
    csv.end_row();
  }
  cn::CsvReader reader(path);
  std::vector<std::string> row;
  ASSERT_TRUE(reader.next_row(row));
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[0], "a,b");
  EXPECT_EQ(row[1], "line\nbreak");
  EXPECT_EQ(row[2], "say \"hi\"");
  ASSERT_TRUE(reader.next_row(row));
  EXPECT_EQ(row[1], "42");
  EXPECT_FALSE(reader.next_row(row));
  std::filesystem::remove(path);
}

TEST_F(DatasetIoTest, DuplicateBlockHeightIsSurfacedNotSwallowed) {
  ASSERT_TRUE(export_chain(three_block_chain(), dir_));
  const std::string blocks = dir_ + "/blocks.csv";
  const auto lines = file_lines(blocks);
  append_line(blocks, lines[1]);  // height 100 again, on line 5

  const auto strict = import_chain(dir_, LoadPolicy::kStrict);
  EXPECT_FALSE(strict.has_value());
  ASSERT_NE(strict.report.first_error(), nullptr);
  EXPECT_EQ(strict.report.first_error()->kind, LoadErrorKind::kDuplicateHeight);
  EXPECT_EQ(strict.report.first_error()->file, blocks);
  EXPECT_EQ(strict.report.first_error()->line, 5u);

  const auto lenient = import_chain(dir_, LoadPolicy::kLenient);
  ASSERT_TRUE(lenient.has_value());
  EXPECT_EQ(lenient->size(), 3u);  // first occurrence wins
  EXPECT_EQ(lenient.report.rows_skipped, 1u);
  EXPECT_FALSE(lenient.report.clean());
}

TEST_F(DatasetIoTest, DuplicateTxPositionIsSurfacedNotSwallowed) {
  const auto original = three_block_chain();
  ASSERT_TRUE(export_chain(original, dir_));
  const std::string txs = dir_ + "/txs.csv";
  // A fresh txid claiming an already-taken (height, position) slot.
  append_line(txs, "102,0," + btc::Txid::hash_of("impostor").to_hex() +
                       ",0,250,1000");

  const auto strict = import_chain(dir_, LoadPolicy::kStrict);
  EXPECT_FALSE(strict.has_value());
  ASSERT_NE(strict.report.first_error(), nullptr);
  EXPECT_EQ(strict.report.first_error()->kind,
            LoadErrorKind::kDuplicateTxPosition);
  EXPECT_EQ(strict.report.first_error()->file, txs);

  const auto lenient = import_chain(dir_, LoadPolicy::kLenient);
  ASSERT_TRUE(lenient.has_value());
  ASSERT_EQ(lenient->size(), 3u);
  EXPECT_EQ(lenient->blocks()[2].txs()[0].id(), original.blocks()[2].txs()[0].id());
}

TEST_F(DatasetIoTest, DuplicateTxidIsSurfacedNotSwallowed) {
  ASSERT_TRUE(export_chain(three_block_chain(), dir_));
  const std::string txs = dir_ + "/txs.csv";
  const auto lines = file_lines(txs);
  append_line(txs, lines[1]);  // full duplicate of the first tx row

  const auto strict = import_chain(dir_, LoadPolicy::kStrict);
  EXPECT_FALSE(strict.has_value());
  ASSERT_NE(strict.report.first_error(), nullptr);
  EXPECT_EQ(strict.report.first_error()->kind, LoadErrorKind::kDuplicateTxid);

  const auto lenient = import_chain(dir_, LoadPolicy::kLenient);
  ASSERT_TRUE(lenient.has_value());
  EXPECT_EQ(lenient->total_tx_count(), three_block_chain().total_tx_count());
}

TEST_F(DatasetIoTest, LenientRepairsOutOfOrderBlockRows) {
  ASSERT_TRUE(export_chain(three_block_chain(), dir_));
  const std::string blocks = dir_ + "/blocks.csv";
  auto lines = file_lines(blocks);
  std::swap(lines[1], lines[2]);  // heights now 101, 100, 102
  write_file_lines(blocks, lines);

  const auto strict = import_chain(dir_, LoadPolicy::kStrict);
  EXPECT_FALSE(strict.has_value());
  ASSERT_NE(strict.report.first_error(), nullptr);
  EXPECT_EQ(strict.report.first_error()->kind, LoadErrorKind::kOutOfOrderRow);
  EXPECT_EQ(strict.report.first_error()->line, 3u);

  const auto lenient = import_chain(dir_, LoadPolicy::kLenient);
  ASSERT_TRUE(lenient.has_value());
  ASSERT_EQ(lenient->size(), 3u);
  EXPECT_EQ(lenient->blocks()[0].height(), 100u);
  EXPECT_EQ(lenient->blocks()[2].height(), 102u);
  EXPECT_EQ(lenient.report.rows_repaired, 1u);
}

TEST_F(DatasetIoTest, TxCountMismatchPinpointsTheBlockRow) {
  ASSERT_TRUE(export_chain(three_block_chain(), dir_));
  const std::string txs = dir_ + "/txs.csv";
  auto lines = file_lines(txs);
  // Drop height 100's last tx (position 2): the surviving positions are
  // still 0..1, so only the block row's tx_count betrays the loss.
  lines.erase(lines.begin() + 3);
  write_file_lines(txs, lines);

  const auto strict = import_chain(dir_, LoadPolicy::kStrict);
  EXPECT_FALSE(strict.has_value());
  ASSERT_NE(strict.report.first_error(), nullptr);
  EXPECT_EQ(strict.report.first_error()->kind, LoadErrorKind::kTxCountMismatch);
  EXPECT_EQ(strict.report.first_error()->file, dir_ + "/blocks.csv");
  EXPECT_EQ(strict.report.first_error()->line, 2u);  // height 100's row

  const auto lenient = import_chain(dir_, LoadPolicy::kLenient);
  ASSERT_TRUE(lenient.has_value());
  EXPECT_EQ(lenient->blocks()[0].tx_count(), 2u);  // trusts the rows present
}

TEST_F(DatasetIoTest, LenientReconstructsMissingBlockRow) {
  ASSERT_TRUE(export_chain(three_block_chain(), dir_));
  const std::string blocks = dir_ + "/blocks.csv";
  auto lines = file_lines(blocks);
  lines.erase(lines.begin() + 2);  // delete height 101's block row
  write_file_lines(blocks, lines);

  EXPECT_FALSE(import_chain(dir_, LoadPolicy::kStrict).has_value());

  const auto lenient = import_chain(dir_, LoadPolicy::kLenient);
  ASSERT_TRUE(lenient.has_value());
  ASSERT_EQ(lenient->size(), 3u);  // placeholder keeps the chain contiguous
  EXPECT_EQ(lenient->blocks()[1].height(), 101u);
  // Interpolated between neighbours 600 and 1900.
  EXPECT_GT(lenient->blocks()[1].mined_at(), 600);
  EXPECT_LT(lenient->blocks()[1].mined_at(), 1900);
}

TEST_F(DatasetIoTest, LenientSortsOutOfOrderSnapshots) {
  std::filesystem::create_directories(dir_);
  write_file_lines(dir_ + "/snapshots.csv",
                   {"time,tx_count,total_vsize", "15,1,100", "45,3,300",
                    "30,2,200", "45,9,900"});

  const auto strict = import_snapshots(dir_ + "/snapshots.csv", LoadPolicy::kStrict);
  EXPECT_FALSE(strict.has_value());
  ASSERT_NE(strict.report.first_error(), nullptr);
  EXPECT_EQ(strict.report.first_error()->kind, LoadErrorKind::kOutOfOrderRow);
  EXPECT_EQ(strict.report.first_error()->line, 4u);

  const auto lenient =
      import_snapshots(dir_ + "/snapshots.csv", LoadPolicy::kLenient);
  ASSERT_TRUE(lenient.has_value());
  ASSERT_EQ(lenient->size(), 3u);  // sorted, duplicate time 45 dropped
  EXPECT_EQ(lenient->stats()[0].time, 15);
  EXPECT_EQ(lenient->stats()[1].time, 30);
  EXPECT_EQ(lenient->stats()[2].time, 45);
  EXPECT_EQ(lenient->stats()[2].tx_count, 3u);  // first occurrence wins
}

TEST_F(DatasetIoTest, FirstSeenDuplicateFirstWins) {
  std::filesystem::create_directories(dir_);
  const std::string id = btc::Txid::hash_of("dup").to_hex();
  write_file_lines(dir_ + "/fs.csv",
                   {"txid,first_seen", id + ",100", id + ",999"});

  EXPECT_FALSE(import_first_seen(dir_ + "/fs.csv", LoadPolicy::kStrict).has_value());

  const auto lenient = import_first_seen(dir_ + "/fs.csv", LoadPolicy::kLenient);
  ASSERT_TRUE(lenient.has_value());
  ASSERT_EQ(lenient->size(), 1u);
  EXPECT_EQ(lenient->at(*btc::Txid::from_hex(id)), 100);
}

TEST_F(DatasetIoTest, ExportIsAtomicNoTmpFilesRemain) {
  ASSERT_TRUE(export_chain(three_block_chain(), dir_));
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    EXPECT_NE(entry.path().extension(), ".tmp")
        << "temporary left behind: " << entry.path();
  }
}

TEST_F(DatasetIoTest, FailedExportLeavesNoFinalFiles) {
  // Occupy blocks.csv.tmp with a directory so the writer cannot open it.
  std::filesystem::create_directories(dir_ + "/blocks.csv.tmp");
  std::string error;
  EXPECT_FALSE(export_chain(three_block_chain(), dir_, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(std::filesystem::exists(dir_ + "/blocks.csv"));
  EXPECT_FALSE(std::filesystem::exists(dir_ + "/txs.csv"));
}

TEST_F(DatasetIoTest, CreateDirectoriesFailureIsDiagnosed) {
  // A regular file where the directory should go.
  std::filesystem::create_directories(dir_);
  { std::ofstream(dir_ + "/occupied") << "x"; }
  std::string error;
  EXPECT_FALSE(export_chain(three_block_chain(), dir_ + "/occupied/sub", &error));
  EXPECT_NE(error.find("create_directories"), std::string::npos) << error;
}

TEST_F(DatasetIoTest, LoadReportSummaryNamesTheFirstDefect) {
  ASSERT_TRUE(export_chain(three_block_chain(), dir_));
  const auto lines = file_lines(dir_ + "/blocks.csv");
  append_line(dir_ + "/blocks.csv", lines[1]);
  const auto strict = import_chain(dir_, LoadPolicy::kStrict);
  const std::string summary = strict.report.summary();
  EXPECT_NE(summary.find("first:"), std::string::npos) << summary;
  EXPECT_NE(summary.find("blocks.csv:5"), std::string::npos) << summary;
  EXPECT_NE(summary.find("duplicate-height"), std::string::npos) << summary;
}

TEST(TxidHex, RoundTripAndRejection) {
  const auto id = btc::Txid::hash_of("roundtrip");
  const auto parsed = btc::Txid::from_hex(id.to_hex());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, id);
  EXPECT_FALSE(btc::Txid::from_hex("abcd").has_value());
  EXPECT_FALSE(btc::Txid::from_hex(std::string(64, 'z')).has_value());
}

}  // namespace
}  // namespace cn::io

// StreamSource (io/stream_source.hpp): the daemon's ingest contract.
// ReplaySource must merge blocks and snapshots into one deterministic,
// seekable feed (the recovery cursor rests on it); RetryingSource must
// retry exactly the retryable statuses with backoff and pass terminal
// statuses through untouched. The hostile-feed half uses
// testing::FlakyStreamSource so the properties hold under injected
// transients, stalls, and poisoning.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "../helpers.hpp"
#include "io/dataset_source.hpp"
#include "io/stream_source.hpp"
#include "node/snapshot.hpp"
#include "testing/flaky_source.hpp"

namespace cn::io {
namespace {

// Three blocks (mined at 600 / 1200 / 1900) interleaved with three
// snapshots (600 / 700 / 1905). The tie at t=600 goes to the snapshot.
DatasetHandle make_handle() {
  DatasetHandle handle;
  btc::Chain chain(100);
  chain.append(cn::test::block_with_rates(100, {9.0, 5.0}, "/F2Pool/", 600));
  chain.append(cn::test::block_with_rates(101, {3.0}, "/ViaBTC/", 1200));
  chain.append(cn::test::block_with_rates(102, {7.0}, "/F2Pool/", 1900));
  handle.chain = std::move(chain);
  node::SnapshotSeries snaps;
  snaps.record({600, 10, 2'500'000});
  snaps.record({700, 4, 900'000});
  snaps.record({1905, 7, 1'600'000});
  handle.snapshots = std::move(snaps);
  return handle;
}

struct Expected {
  StreamEvent::Kind kind;
  SimTime time;
};

const std::vector<Expected> kMergedOrder = {
    {StreamEvent::Kind::kSnapshot, 600},  {StreamEvent::Kind::kBlock, 600},
    {StreamEvent::Kind::kSnapshot, 700},  {StreamEvent::Kind::kBlock, 1200},
    {StreamEvent::Kind::kBlock, 1900},    {StreamEvent::Kind::kSnapshot, 1905},
};

TEST(ReplaySourceTest, MergesSnapshotsBeforeBlocksWithSequentialSeq) {
  const DatasetHandle handle = make_handle();
  ReplaySource source(handle);
  ASSERT_EQ(source.size(), kMergedOrder.size());

  StreamEvent ev;
  for (std::size_t i = 0; i < kMergedOrder.size(); ++i) {
    ASSERT_EQ(source.next(ev, 100), StreamStatus::kOk) << "event " << i;
    EXPECT_EQ(ev.seq, i + 1);
    EXPECT_EQ(ev.kind, kMergedOrder[i].kind);
    EXPECT_EQ(ev.time, kMergedOrder[i].time);
    if (ev.kind == StreamEvent::Kind::kBlock) {
      ASSERT_NE(ev.block, nullptr);
      EXPECT_EQ(ev.block->mined_at(), kMergedOrder[i].time);
    }
  }
  EXPECT_EQ(source.next(ev, 100), StreamStatus::kEnd);
  // kEnd is sticky for a finite replay.
  EXPECT_EQ(source.next(ev, 100), StreamStatus::kEnd);
}

TEST(ReplaySourceTest, BlockEventsPointIntoTheHandle) {
  const DatasetHandle handle = make_handle();
  ReplaySource source(handle);
  StreamEvent ev;
  while (source.next(ev, 100) == StreamStatus::kOk) {
    if (ev.kind != StreamEvent::Kind::kBlock) continue;
    EXPECT_EQ(ev.block, &handle.chain.at_height(ev.block->height()));
  }
}

TEST(ReplaySourceTest, SeekResumesOnePastTheCursor) {
  const DatasetHandle handle = make_handle();
  ReplaySource source(handle);
  StreamEvent ev;
  for (std::uint64_t seq = 0; seq <= source.size(); ++seq) {
    ASSERT_TRUE(source.seek(seq)) << "seek(" << seq << ")";
    if (seq == source.size()) {
      EXPECT_EQ(source.next(ev, 100), StreamStatus::kEnd);
      continue;
    }
    ASSERT_EQ(source.next(ev, 100), StreamStatus::kOk);
    EXPECT_EQ(ev.seq, seq + 1);
    EXPECT_EQ(ev.kind, kMergedOrder[seq].kind);
    EXPECT_EQ(ev.time, kMergedOrder[seq].time);
  }
  // Seeking beyond the feed must be refused, not wrapped or clamped.
  EXPECT_FALSE(source.seek(source.size() + 1));
}

TEST(ReplaySourceTest, WorksWithoutSnapshots) {
  DatasetHandle handle = make_handle();
  handle.snapshots.reset();
  ReplaySource source(handle);
  EXPECT_EQ(source.size(), 3u);
  StreamEvent ev;
  std::uint64_t blocks = 0;
  while (source.next(ev, 100) == StreamStatus::kOk) {
    EXPECT_EQ(ev.kind, StreamEvent::Kind::kBlock);
    ++blocks;
  }
  EXPECT_EQ(blocks, 3u);
}

// --- RetryingSource -----------------------------------------------------

RetryPolicy fast_policy(int attempts) {
  RetryPolicy policy;
  policy.max_attempts = attempts;
  policy.base_backoff_ms = 1;
  policy.max_backoff_ms = 2;
  return policy;
}

TEST(RetryingSourceTest, RetriesTransientsUntilTheFeedDrains) {
  const DatasetHandle handle = make_handle();
  ReplaySource replay(handle);
  cn::testing::FlakyOptions flaky_options;
  flaky_options.transient_rate = 0.5;
  cn::testing::FlakyStreamSource flaky(replay, /*seed=*/7, flaky_options);
  RetryingSource source(flaky, fast_policy(16));

  StreamEvent ev;
  std::vector<std::uint64_t> seqs;
  while (source.next(ev, 100) == StreamStatus::kOk) seqs.push_back(ev.seq);
  // Every event arrives exactly once, in order, despite the failures.
  ASSERT_EQ(seqs.size(), kMergedOrder.size());
  for (std::size_t i = 0; i < seqs.size(); ++i) EXPECT_EQ(seqs[i], i + 1);
  EXPECT_GT(flaky.transient_failures(), 0u);
  EXPECT_EQ(source.retries(), flaky.transient_failures());
}

TEST(RetryingSourceTest, GivesUpAfterMaxAttempts) {
  const DatasetHandle handle = make_handle();
  ReplaySource replay(handle);
  cn::testing::FlakyOptions flaky_options;
  flaky_options.transient_rate = 1.0;  // every read fails
  cn::testing::FlakyStreamSource flaky(replay, 1, flaky_options);
  RetryingSource source(flaky, fast_policy(4));

  StreamEvent ev;
  EXPECT_EQ(source.next(ev, 100), StreamStatus::kTransient);
  EXPECT_EQ(source.retries(), 3u);  // attempts - 1
  // The cursor never advanced, so a healthy retry later still gets seq 1.
  EXPECT_EQ(flaky.transient_failures(), 4u);
}

TEST(RetryingSourceTest, StallsBecomeTimeoutsAndAreRetried) {
  const DatasetHandle handle = make_handle();
  ReplaySource replay(handle);
  cn::testing::FlakyOptions flaky_options;
  flaky_options.stall_every = 1;  // every read stalls...
  flaky_options.stall_ms = 30;    // ...for longer than the caller waits
  cn::testing::FlakyStreamSource flaky(replay, 1, flaky_options);

  StreamEvent ev;
  EXPECT_EQ(flaky.next(ev, 5), StreamStatus::kTimeout);
  EXPECT_EQ(flaky.stalls(), 1u);
  // A deadline that covers the stall absorbs it: the event is delivered.
  EXPECT_EQ(flaky.next(ev, 100), StreamStatus::kOk);
  EXPECT_EQ(ev.seq, 1u);
}

TEST(RetryingSourceTest, CorruptIsTerminalNeverRetried) {
  const DatasetHandle handle = make_handle();
  ReplaySource replay(handle);
  cn::testing::FlakyOptions flaky_options;
  flaky_options.corrupt_after = 2;
  cn::testing::FlakyStreamSource flaky(replay, 1, flaky_options);
  RetryingSource source(flaky, fast_policy(8));

  StreamEvent ev;
  ASSERT_EQ(source.next(ev, 100), StreamStatus::kOk);
  ASSERT_EQ(source.next(ev, 100), StreamStatus::kOk);
  EXPECT_EQ(source.next(ev, 100), StreamStatus::kCorrupt);
  EXPECT_EQ(source.retries(), 0u);  // terminal status: one attempt only
  // Poisoning is permanent.
  EXPECT_EQ(source.next(ev, 100), StreamStatus::kCorrupt);
}

TEST(RetryingSourceTest, EndPassesThroughWithoutRetry) {
  const DatasetHandle handle = make_handle();
  ReplaySource replay(handle);
  RetryingSource source(replay, fast_policy(8));
  StreamEvent ev;
  while (source.next(ev, 100) == StreamStatus::kOk) {
  }
  EXPECT_EQ(source.retries(), 0u);
}

}  // namespace
}  // namespace cn::io

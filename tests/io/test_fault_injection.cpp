// Property tests for the fault-injection harness (testing/fault_injector):
// whatever a seeded injector does to an exported data set at a bounded
// corruption rate, (a) lenient import still yields a usable chain, (b)
// strict import pinpoints the first detectable fault's exact file and
// line, and (c) the coverage-aware audit masks every block that overlaps
// an injected snapshot gap — byte-identically across thread counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "../helpers.hpp"
#include "core/audit_pipeline.hpp"
#include "core/data_quality.hpp"
#include "io/dataset_io.hpp"
#include "sim/dataset.hpp"
#include "testing/fault_injector.hpp"

namespace cn::io {
namespace {

// One simulated world shared by every test in this file (simulation is
// the expensive part; injection and import are cheap).
const sim::SimResult& shared_world() {
  static const sim::SimResult world = sim::make_dataset(sim::DatasetKind::kA, 5, 0.03);
  return world;
}

class FaultInjectionTest : public ::testing::Test {
 protected:
  // Suffix with the test name: ctest shards gtest cases into separate
  // processes, so a shared directory would race under `ctest -j`.
  std::string stem_ =
      ::testing::TempDir() + "/cn_fi_" +
      ::testing::UnitTest::GetInstance()->current_test_info()->name();
  std::string clean_ = stem_ + "_clean";
  std::string dirty_ = stem_ + "_dirty";

  void SetUp() override {
    std::filesystem::remove_all(clean_);
    std::filesystem::remove_all(dirty_);
    const sim::SimResult& world = shared_world();
    ASSERT_TRUE(export_chain(world.chain, clean_));
    ASSERT_TRUE(export_snapshots(world.observer.snapshots(),
                                 clean_ + "/snapshots.csv"));
    ASSERT_TRUE(export_first_seen(world.observer.first_seen_map(),
                                  clean_ + "/first_seen.csv"));
  }
  void TearDown() override {
    std::filesystem::remove_all(clean_);
    std::filesystem::remove_all(dirty_);
  }
};

TEST_F(FaultInjectionTest, SameSeedSameFaults) {
  cn::testing::FaultOptions options;
  options.row_corruption_rate = 0.03;
  options.snapshot_gaps = 1;
  const auto log_a =
      cn::testing::FaultInjector(99).inject_dataset(clean_, dirty_, options);
  const std::string dirty_b = dirty_ + "_b";
  const auto log_b =
      cn::testing::FaultInjector(99).inject_dataset(clean_, dirty_b, options);
  ASSERT_EQ(log_a.faults.size(), log_b.faults.size());
  for (std::size_t i = 0; i < log_a.faults.size(); ++i) {
    EXPECT_EQ(log_a.faults[i].kind, log_b.faults[i].kind);
    EXPECT_EQ(log_a.faults[i].line, log_b.faults[i].line);
    EXPECT_EQ(log_a.faults[i].detail, log_b.faults[i].detail);
  }
  std::filesystem::remove_all(dirty_b);
}

TEST_F(FaultInjectionTest, LenientImportNeverCrashesAtFivePercent) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u, 6u}) {
    std::filesystem::remove_all(dirty_);
    cn::testing::FaultOptions options;
    options.row_corruption_rate = 0.05;
    options.truncate_tail = seed % 2 == 0;
    options.snapshot_gaps = seed % 3;
    cn::testing::FaultInjector injector(seed);
    const auto log = injector.inject_dataset(clean_, dirty_, options);

    const auto chain = import_chain(dirty_, LoadPolicy::kLenient);
    ASSERT_TRUE(chain.has_value()) << "seed " << seed << ": "
                                   << chain.report.summary();
    EXPECT_GT(chain->size(), 0u);
    const auto snapshots =
        import_snapshots(dirty_ + "/snapshots.csv", LoadPolicy::kLenient);
    ASSERT_TRUE(snapshots.has_value()) << "seed " << seed;
    const auto first_seen =
        import_first_seen(dirty_ + "/first_seen.csv", LoadPolicy::kLenient);
    ASSERT_TRUE(first_seen.has_value()) << "seed " << seed;

    // Lenient mode records its decisions instead of hiding them.
    if (!log.faults.empty()) {
      EXPECT_FALSE(chain.report.clean() && snapshots.report.clean() &&
                   first_seen.report.clean())
          << "seed " << seed << " injected " << log.faults.size()
          << " faults but every report came back clean";
    }
  }
}

TEST_F(FaultInjectionTest, StrictImportPinpointsTheInjectedLine) {
  cn::testing::FaultOptions options;
  options.row_corruption_rate = 0.02;
  options.kinds = {cn::testing::FaultKind::kCorruptField};
  bool exercised = false;
  for (const std::uint64_t seed : {11u, 12u, 13u}) {
    std::filesystem::remove_all(dirty_);
    cn::testing::FaultInjector injector(seed);
    const auto log = injector.inject_dataset(clean_, dirty_, options);

    // The chain import reads blocks, txs, inputs, outputs in that order
    // and aborts at the first defect; predict it from the log.
    const std::vector<std::string> read_order = {
        dirty_ + "/blocks.csv", dirty_ + "/txs.csv", dirty_ + "/inputs.csv",
        dirty_ + "/outputs.csv"};
    std::map<std::string, std::size_t> first_line;
    for (const auto* fault : log.detectable()) {
      const auto it = first_line.find(fault->file);
      if (it == first_line.end() || fault->line < it->second) {
        first_line[fault->file] = fault->line;
      }
    }
    const auto expected = std::find_if(
        read_order.begin(), read_order.end(),
        [&](const std::string& f) { return first_line.count(f) != 0; });
    if (expected == read_order.end()) continue;  // no fault hit chain files
    exercised = true;

    const auto strict = import_chain(dirty_, LoadPolicy::kStrict);
    EXPECT_FALSE(strict.has_value()) << "seed " << seed;
    ASSERT_NE(strict.report.first_error(), nullptr) << "seed " << seed;
    EXPECT_EQ(strict.report.first_error()->file, *expected) << "seed " << seed;
    EXPECT_EQ(strict.report.first_error()->line, first_line[*expected])
        << "seed " << seed << ": " << strict.report.summary();
  }
  EXPECT_TRUE(exercised) << "no seed injected a detectable chain fault";
}

TEST_F(FaultInjectionTest, AuditMasksBlocksInInjectedSnapshotGaps) {
  cn::testing::FaultOptions options;
  options.row_corruption_rate = 0.0;  // isolate the gap effect
  options.snapshot_gaps = 1;
  options.gap_width = 3600;
  cn::testing::FaultInjector injector(21);
  const auto log = injector.inject_dataset(clean_, dirty_, options);
  ASSERT_EQ(log.count(cn::testing::FaultKind::kDeleteSnapshotWindow), 1u);
  const auto& gap = log.faults.front();

  const auto chain = import_chain(dirty_, LoadPolicy::kLenient);
  ASSERT_TRUE(chain.has_value());
  const auto snapshots =
      import_snapshots(dirty_ + "/snapshots.csv", LoadPolicy::kLenient);
  ASSERT_TRUE(snapshots.has_value());
  const auto quality = core::assess_data_quality(*chain, &*snapshots, nullptr);

  // Every block whose arrival window overlaps the deleted window must be
  // marked, and must land in the audit's masked set.
  core::AuditOptions audit_options;
  audit_options.threads = 1;
  const auto report =
      core::run_full_audit(*chain, btc::CoinbaseTagRegistry::paper_registry(),
                           &quality, audit_options);
  ASSERT_TRUE(report.has_quality);
  EXPECT_GE(report.snapshot_gaps, 1u);

  SimTime prev = chain->front().mined_at();
  std::size_t overlapping = 0;
  for (const btc::Block& block : chain->blocks()) {
    const SimTime from = std::min(prev, block.mined_at());
    const SimTime to = block.mined_at();
    prev = block.mined_at();
    if (!(from < gap.gap_to && gap.gap_from < to)) continue;
    ++overlapping;
    EXPECT_DOUBLE_EQ(quality.coverage_at(block.height()), 0.0)
        << "height " << block.height();
    EXPECT_TRUE(std::binary_search(report.low_coverage_heights.begin(),
                                   report.low_coverage_heights.end(),
                                   block.height()))
        << "height " << block.height() << " not masked";
  }
  EXPECT_GT(overlapping, 0u) << "gap " << gap.gap_from << ".." << gap.gap_to
                             << " overlapped no blocks";
}

TEST_F(FaultInjectionTest, QualityAwareAuditIsByteIdenticalAcrossThreads) {
  cn::testing::FaultOptions options;
  options.row_corruption_rate = 0.01;
  options.snapshot_gaps = 1;
  cn::testing::FaultInjector injector(33);
  injector.inject_dataset(clean_, dirty_, options);

  const auto chain = import_chain(dirty_, LoadPolicy::kLenient);
  ASSERT_TRUE(chain.has_value());
  const auto snapshots =
      import_snapshots(dirty_ + "/snapshots.csv", LoadPolicy::kLenient);
  ASSERT_TRUE(snapshots.has_value());
  const auto first_seen =
      import_first_seen(dirty_ + "/first_seen.csv", LoadPolicy::kLenient);
  ASSERT_TRUE(first_seen.has_value());
  const auto quality =
      core::assess_data_quality(*chain, &*snapshots, &*first_seen);

  const auto rendered = [&](unsigned threads) {
    core::AuditOptions audit_options;
    audit_options.threads = threads;
    const auto report =
        core::run_full_audit(*chain, btc::CoinbaseTagRegistry::paper_registry(),
                             &quality, audit_options);
    std::FILE* f = std::tmpfile();
    core::print_audit_report(report, f);
    std::fseek(f, 0, SEEK_SET);
    std::string text;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
    std::fclose(f);
    return text;
  };
  const std::string serial = rendered(1);
  EXPECT_EQ(serial, rendered(4));
  EXPECT_NE(serial.find("data quality:"), std::string::npos);
}

}  // namespace
}  // namespace cn::io

// WorldCache: content-addressed CNB1 materialization. The contracts
// under test are the ones cnsweep and every bench lean on: a hit is
// byte-identical to a fresh simulation, a defective entry is evicted
// and regenerated (never trusted), and concurrent misses on the same
// fingerprint simulate exactly once.
#include "io/world_cache.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "io/cnb.hpp"
#include "sim/engine.hpp"
#include "testing/fault_injector.hpp"
#include "util/thread_pool.hpp"

namespace cn {
namespace {

std::string read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

// A world small enough to simulate in well under a second; every test
// in this file regenerates it at least once.
sim::WorldSpec tiny_spec(std::uint64_t seed = 7) {
  return sim::baseline_spec(sim::DatasetKind::kA, seed, 0.05);
}

class WorldCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/cn_world_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

TEST_F(WorldCacheTest, MissThenHitSameWorld) {
  io::WorldCache cache(dir_);
  const sim::WorldSpec spec = tiny_spec();

  const io::World cold = cache.materialize(spec);
  EXPECT_FALSE(cold.cache_hit);
  ASSERT_TRUE(std::filesystem::exists(cache.path_for(spec)));

  const io::World warm = cache.materialize(spec);
  EXPECT_TRUE(warm.cache_hit);

  const io::WorldCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_GT(stats.sim_seconds, 0.0);

  // The generate path serves its result through the same load path a
  // warm caller takes, so cold and warm worlds must agree exactly.
  EXPECT_EQ(cold.chain.size(), warm.chain.size());
  EXPECT_EQ(cold.chain.total_tx_count(), warm.chain.total_tx_count());
  EXPECT_EQ(cold.snapshots.size(), warm.snapshots.size());
  EXPECT_EQ(cold.first_seen_map, warm.first_seen_map);
  EXPECT_EQ(cold.truth.spec_fingerprint, spec.fingerprint());
  EXPECT_EQ(cold.truth.scam_address, warm.truth.scam_address);
  EXPECT_EQ(cold.truth.accelerated_txids, warm.truth.accelerated_txids);
}

TEST_F(WorldCacheTest, EntryByteIdenticalToFreshSimulation) {
  io::WorldCache cache(dir_);
  const sim::WorldSpec spec = tiny_spec();
  (void)cache.materialize(spec);

  // Run the engine directly — the way every bench did before the cache —
  // and write the observables through the same CNB1 options generate()
  // uses. The cache entry must be byte-for-byte this file.
  sim::SimResult result = sim::Engine(spec.config()).run();
  io::SimWorldInfo truth;
  truth.spec_fingerprint = spec.fingerprint();
  truth.scam_address = result.scam_address;
  truth.accelerated_txids = result.acceleration.all_accelerated_sorted();
  io::CnbWriteOptions options;
  options.snapshots = &result.observer.snapshots();
  options.first_seen = &result.observer.first_seen_map();
  options.world = &truth;
  const std::string fresh = dir_ + "/fresh.cnb";
  std::string error;
  ASSERT_TRUE(io::write_cnb(result.chain, fresh, options, &error)) << error;

  const std::string cached_bytes = read_bytes(cache.path_for(spec));
  ASSERT_FALSE(cached_bytes.empty());
  EXPECT_EQ(cached_bytes, read_bytes(fresh));
}

TEST_F(WorldCacheTest, CorruptEntryEvictedAndRegenerated) {
  io::WorldCache cache(dir_);
  const sim::WorldSpec spec = tiny_spec();
  (void)cache.materialize(spec);
  const std::string entry = cache.path_for(spec);
  const std::string pristine = read_bytes(entry);

  // Flip bytes inside one section's payload; the directory checksum
  // stays stale so a strict load must reject the file.
  cn::testing::FaultInjector injector(spec.seed);
  cn::testing::FaultOptions fault_options;
  fault_options.cnb_sections = 1;
  cn::testing::InjectionLog log;
  const std::string dirty = entry + ".dirty";
  ASSERT_TRUE(injector.inject_cnb_file(entry, dirty, fault_options, log));
  ASSERT_FALSE(log.faults.empty());
  EXPECT_EQ(log.faults[0].kind, cn::testing::FaultKind::kCorruptSection);
  std::filesystem::rename(dirty, entry);
  ASSERT_NE(read_bytes(entry), pristine);

  const io::World world = cache.materialize(spec);
  EXPECT_FALSE(world.cache_hit);  // regenerated, not served corrupt
  const io::WorldCacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.hits, 0u);
  // Determinism: the regenerated entry is the original, byte for byte.
  EXPECT_EQ(read_bytes(entry), pristine);
}

TEST_F(WorldCacheTest, TruncatedEntryEvictedAndRegenerated) {
  io::WorldCache cache(dir_);
  const sim::WorldSpec spec = tiny_spec();
  (void)cache.materialize(spec);
  const std::string entry = cache.path_for(spec);
  const std::string pristine = read_bytes(entry);

  std::filesystem::resize_file(entry, pristine.size() / 2);

  (void)cache.materialize(spec);
  const io::WorldCacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(read_bytes(entry), pristine);
}

TEST_F(WorldCacheTest, RenamedEntryNeverMasqueradesAsAnotherWorld) {
  io::WorldCache cache(dir_);
  const sim::WorldSpec seven = tiny_spec(7);
  const sim::WorldSpec eight = tiny_spec(8);
  (void)cache.materialize(seven);

  // Plant seed-7's (perfectly valid) file at seed-8's address. The
  // stored spec fingerprint must out the impostor.
  std::filesystem::copy_file(cache.path_for(seven), cache.path_for(eight));

  const io::World world = cache.materialize(eight);
  EXPECT_FALSE(world.cache_hit);
  EXPECT_EQ(world.truth.spec_fingerprint, eight.fingerprint());
  const io::WorldCacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.misses, 2u);
}

TEST_F(WorldCacheTest, RacingJobsGenerateExactlyOnce) {
  io::WorldCache cache(dir_);
  const sim::WorldSpec spec = tiny_spec();

  constexpr std::size_t kJobs = 4;
  std::vector<io::World> worlds(kJobs);
  util::ThreadPool pool(kJobs);
  pool.parallel_for(kJobs, [&](std::size_t i) {
    worlds[i] = cache.materialize(spec);
  });

  const io::WorldCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, kJobs - 1);
  std::size_t generated = 0;
  for (const io::World& world : worlds) {
    if (!world.cache_hit) ++generated;
    EXPECT_EQ(world.chain.size(), worlds[0].chain.size());
    EXPECT_EQ(world.truth.spec_fingerprint, spec.fingerprint());
  }
  EXPECT_EQ(generated, 1u);
}

}  // namespace
}  // namespace cn

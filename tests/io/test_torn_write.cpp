// Torn-write regression suite (testing/fault_injector kTornWrite): a
// CNB1 writer killed mid-flush leaves either a truncated file or a
// zero-garbled section — the two shapes a crashed cnconvert or
// checkpoint writer can actually produce. The loaders' contract, over
// every seed: strict open_dataset reports a typed defect (never a wrong
// value), lenient drops the poisoned optional group and still yields a
// verified chain (or, when the tear hit a required chain section, fails
// typed) — and neither policy ever crashes or reads out of bounds.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>

#include "../helpers.hpp"
#include "io/cnb.hpp"
#include "io/dataset_source.hpp"
#include "node/snapshot.hpp"
#include "testing/fault_injector.hpp"

namespace cn::io {
namespace {

class TornWriteTest : public ::testing::Test {
 protected:
  std::string stem_ =
      ::testing::TempDir() + "/cn_torn_" +
      ::testing::UnitTest::GetInstance()->current_test_info()->name();
  std::string clean_ = stem_ + "_clean.cnb";
  std::string torn_ = stem_ + "_torn.cnb";

  void SetUp() override {
    std::filesystem::remove(clean_);
    std::filesystem::remove(torn_);
    btc::Chain chain(100);
    for (std::uint64_t h = 100; h < 106; ++h) {
      chain.append(cn::test::block_with_rates(
          h, {9.0, 5.0, 2.0}, h % 2 == 0 ? "/F2Pool/" : "/ViaBTC/",
          static_cast<SimTime>(600 * (h - 99))));
    }
    node::SnapshotSeries snapshots;
    snapshots.record({300, 4, 900'000});
    snapshots.record({900, 11, 2'400'000});
    FirstSeenMap first_seen;
    for (const btc::Block& block : chain.blocks()) {
      for (const btc::Transaction& tx : block.txs()) {
        first_seen.emplace(tx.id(), block.mined_at() - 30);
      }
    }
    CnbWriteOptions options;
    options.snapshots = &snapshots;
    options.first_seen = &first_seen;
    std::string error;
    ASSERT_TRUE(write_cnb(chain, clean_, options, &error)) << error;
  }
  void TearDown() override {
    std::filesystem::remove(clean_);
    std::filesystem::remove(torn_);
  }

  /// Tears the clean file with @p seed; returns the injected fault.
  cn::testing::InjectedFault tear(std::uint64_t seed) {
    std::filesystem::remove(torn_);
    cn::testing::FaultOptions options;
    options.torn_write = true;
    cn::testing::InjectionLog log;
    cn::testing::FaultInjector injector(seed);
    EXPECT_TRUE(injector.inject_cnb_file(clean_, torn_, options, log));
    EXPECT_EQ(log.faults.size(), 1u);
    EXPECT_EQ(log.faults.at(0).kind, cn::testing::FaultKind::kTornWrite);
    EXPECT_TRUE(log.faults.at(0).detectable);
    return log.faults.at(0);
  }

  /// Section id of the torn directory entry (fault.line is 1-based).
  std::uint32_t torn_section_id(const cn::testing::InjectedFault& fault) {
    const auto info = inspect_cnb(clean_);
    EXPECT_TRUE(info.has_value());
    EXPECT_GE(fault.line, 1u);
    EXPECT_LE(fault.line, info->sections.size());
    return info->sections.at(fault.line - 1).id;
  }
};

TEST_F(TornWriteTest, SameSeedTearsTheSameBytes) {
  const auto fault_a = tear(42);
  std::string torn_b = torn_ + "_b";
  cn::testing::FaultOptions options;
  options.torn_write = true;
  cn::testing::InjectionLog log;
  ASSERT_TRUE(
      cn::testing::FaultInjector(42).inject_cnb_file(clean_, torn_b, options, log));
  EXPECT_EQ(fault_a.line, log.faults.at(0).line);
  EXPECT_EQ(fault_a.detail, log.faults.at(0).detail);
  EXPECT_EQ(std::filesystem::file_size(torn_),
            std::filesystem::file_size(torn_b));
  std::filesystem::remove(torn_b);
}

TEST_F(TornWriteTest, StrictLoadReportsATypedDefectForEverySeed) {
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    tear(seed);
    const auto result = open_dataset(torn_, LoadPolicy::kStrict);
    ASSERT_FALSE(result.has_value()) << "seed " << seed;
    const LoadError* error = result.report.first_error();
    ASSERT_NE(error, nullptr) << "seed " << seed;
    // A tear is visible as a short file or a checksum/layout mismatch —
    // never as a silent success or an untyped failure.
    EXPECT_TRUE(error->kind == LoadErrorKind::kTruncatedFile ||
                error->kind == LoadErrorKind::kSectionChecksum ||
                error->kind == LoadErrorKind::kSectionLayout)
        << "seed " << seed << ": " << result.report.summary();
  }
}

TEST_F(TornWriteTest, LenientLoadDropsThePoisonedGroupOrFailsTyped) {
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    const auto fault = tear(seed);
    const std::uint32_t section = torn_section_id(fault);
    const auto result = open_dataset(torn_, LoadPolicy::kLenient);
    if (!result.has_value()) {
      // Only a tear through the required chain sections may withhold
      // the value — and then the report must say why.
      EXPECT_LT(section,
                static_cast<std::uint32_t>(CnbSection::kSnapTime))
          << "seed " << seed << " dropped the chain over an optional section";
      EXPECT_NE(result.report.first_error(), nullptr);
      continue;
    }
    // The chain survived; it must be internally consistent, and the
    // poisoned optional group must be gone rather than half-loaded.
    EXPECT_TRUE(result->chain.verify_integrity()) << "seed " << seed;
    const bool tore_snapshots =
        section >= static_cast<std::uint32_t>(CnbSection::kSnapTime) &&
        section <= static_cast<std::uint32_t>(CnbSection::kSnapVsize);
    if (tore_snapshots) {
      EXPECT_FALSE(result->snapshots.has_value()) << "seed " << seed;
    }
    EXPECT_FALSE(result.report.errors.empty()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace cn::io

// The unified io::open_dataset entry point (io/dataset_source.hpp):
// format sniffing, typed open failures, CSV/CNB1 equivalence, and the
// acceptance bar of the binary format — audit reports byte-identical
// across formats and thread counts, on clean AND fault-injected inputs.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "btc/coinbase_tags.hpp"
#include "core/audit_dataset.hpp"
#include "core/audit_pipeline.hpp"
#include "core/data_quality.hpp"
#include "core/wallet_inference.hpp"
#include "helpers.hpp"
#include "io/cnb.hpp"
#include "io/dataset_io.hpp"
#include "io/dataset_source.hpp"
#include "sim/dataset.hpp"
#include "testing/fault_injector.hpp"
#include "util/thread_pool.hpp"

namespace cn::io {
namespace {

std::string rendered(const core::AuditReport& report) {
  std::FILE* tmp = std::tmpfile();
  core::print_audit_report(report, tmp);
  const long size = std::ftell(tmp);
  std::string out(static_cast<std::size_t>(size), '\0');
  std::rewind(tmp);
  const std::size_t read = std::fread(out.data(), 1, out.size(), tmp);
  std::fclose(tmp);
  out.resize(read);
  return out;
}

/// run_full_audit over everything a handle carries, the way cnaudit's
/// report command wires it up.
std::string audited(const DatasetHandle& handle, unsigned threads) {
  const auto registry = btc::CoinbaseTagRegistry::paper_registry();
  core::AuditOptions options;
  options.threads = threads;
  options.interned_addresses = &handle.addresses;
  options.prebuilt_dataset = handle.prebuilt_for(registry);
  const core::DataQualityReport quality = core::assess_data_quality(
      handle.chain, handle.snapshots.has_value() ? &*handle.snapshots : nullptr,
      handle.first_seen.has_value() ? &*handle.first_seen : nullptr);
  return rendered(
      core::run_full_audit(handle.chain, registry, &quality, options));
}

class DatasetSourceTest : public ::testing::Test {
 protected:
  std::string dir_ =
      ::testing::TempDir() + "/cn_source_" +
      ::testing::UnitTest::GetInstance()->current_test_info()->name();
  void SetUp() override { std::filesystem::remove_all(dir_); }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// Exports a small simulated world (chain + both observer series) as
  /// CSV under dir_/csv and returns the directory path.
  std::string export_world() {
    world_ = sim::make_dataset(sim::DatasetKind::kA, 5, 0.03);
    const std::string csv = dir_ + "/csv";
    EXPECT_TRUE(export_chain(world_->chain, csv));
    EXPECT_TRUE(export_snapshots(world_->observer.snapshots(),
                                 csv + "/snapshots.csv"));
    EXPECT_TRUE(export_first_seen(world_->observer.first_seen_map(),
                                  csv + "/first_seen.csv"));
    return csv;
  }

  /// Writes @p handle as a CNB1 file with the derived audit columns
  /// embedded (built under the paper registry, like cnconvert does).
  std::string to_cnb(DatasetHandle handle, bool with_derived = true) {
    const std::string path = dir_ + "/world.cnb";
    if (with_derived && !handle.audit_dataset.has_value()) {
      const auto registry = btc::CoinbaseTagRegistry::paper_registry();
      const core::PoolAttribution attribution(handle.chain, registry);
      util::ThreadPool workers(1);
      handle.audit_dataset = core::AuditDataset::build(
          handle.chain, attribution, workers, &handle.addresses);
      handle.registry_fingerprint = registry.fingerprint();
    }
    std::string error;
    EXPECT_TRUE(write_cnb(handle, path, &error)) << error;
    return path;
  }

  std::optional<sim::SimResult> world_;
};

TEST_F(DatasetSourceTest, SniffsDirectoriesMagicAndExtension) {
  std::filesystem::create_directories(dir_);
  EXPECT_EQ(sniff_dataset_format(dir_), DatasetFormat::kCsv);

  const std::string cnb = dir_ + "/chain.bin";  // magic wins over extension
  btc::Chain chain(1);
  chain.append(cn::test::block_with_rates(1, {2.0}));
  ASSERT_TRUE(write_cnb(chain, cnb));
  EXPECT_EQ(sniff_dataset_format(cnb), DatasetFormat::kCnb);

  // Unreadable path: the .cnb extension is the fallback signal.
  EXPECT_EQ(sniff_dataset_format(dir_ + "/missing.cnb"), DatasetFormat::kCnb);
  EXPECT_EQ(sniff_dataset_format(dir_ + "/missing.csv"), std::nullopt);
}

TEST_F(DatasetSourceTest, OpenMissingPathIsTypedNotACrash) {
  for (const LoadPolicy policy : {LoadPolicy::kStrict, LoadPolicy::kLenient}) {
    const auto result = open_dataset(dir_ + "/nope", policy);
    EXPECT_FALSE(result.has_value());
    ASSERT_NE(result.report.first_error(), nullptr);
    EXPECT_EQ(result.report.first_error()->kind, LoadErrorKind::kFileOpen);
  }
}

TEST_F(DatasetSourceTest, CsvOpenMatchesTheImportersItWraps) {
  const std::string csv = export_world();
  const auto opened = open_dataset(csv);
  ASSERT_TRUE(opened.has_value()) << opened.report.summary();
  EXPECT_EQ(opened->format, DatasetFormat::kCsv);

  btc::AddressTable addresses;
  const auto imported = import_chain(csv, LoadPolicy::kStrict, &addresses);
  ASSERT_TRUE(imported.has_value());
  EXPECT_EQ(opened->chain.size(), imported->size());
  EXPECT_EQ(opened->chain.tip_hash(), imported->tip_hash());
  EXPECT_EQ(opened->addresses.size(), addresses.size());
  ASSERT_TRUE(opened->snapshots.has_value());
  EXPECT_EQ(opened->snapshots->size(),
            world_->observer.snapshots().size());
  ASSERT_TRUE(opened->first_seen.has_value());
  EXPECT_EQ(*opened->first_seen, world_->observer.first_seen_map());
  EXPECT_FALSE(opened->audit_dataset.has_value());
}

TEST_F(DatasetSourceTest, ExplicitFormatOverridesSniffing) {
  const std::string csv = export_world();
  // Forcing cnb on a directory must fail typed, not misparse.
  const auto forced =
      open_dataset(csv, LoadPolicy::kStrict, DatasetFormat::kCnb);
  EXPECT_FALSE(forced.has_value());
}

TEST_F(DatasetSourceTest, AuditReportsByteIdenticalAcrossFormatsAndThreads) {
  const std::string csv = export_world();
  auto from_csv = open_dataset(csv);
  ASSERT_TRUE(from_csv.has_value()) << from_csv.report.summary();

  const std::string cnb = to_cnb(*from_csv);
  auto from_cnb = open_dataset(cnb);
  ASSERT_TRUE(from_cnb.has_value()) << from_cnb.report.summary();
  ASSERT_TRUE(from_cnb->audit_dataset.has_value());
  ASSERT_NE(from_cnb->prebuilt_for(btc::CoinbaseTagRegistry::paper_registry()),
            nullptr);

  const std::string baseline = audited(*from_csv, 1);
  ASSERT_FALSE(baseline.empty());
  for (const unsigned threads : {1u, 4u, 0u}) {
    EXPECT_EQ(audited(*from_csv, threads), baseline) << threads;
    // The CNB1 path takes the prebuilt-dataset shortcut — same bytes.
    EXPECT_EQ(audited(*from_cnb, threads), baseline) << threads;
  }
}

TEST_F(DatasetSourceTest, FaultInjectedInputsStayByteIdenticalAcrossFormats) {
  const std::string csv = export_world();
  const std::string dirty = dir_ + "/dirty";
  testing::FaultInjector injector(7);
  testing::FaultOptions fault_options;
  fault_options.row_corruption_rate = 0.05;
  fault_options.snapshot_gaps = 1;
  const auto log = injector.inject_dataset(csv, dirty, fault_options);
  ASSERT_FALSE(log.faults.empty());

  auto from_csv = open_dataset(dirty, LoadPolicy::kLenient);
  ASSERT_TRUE(from_csv.has_value()) << from_csv.report.summary();
  EXPECT_FALSE(from_csv.report.clean());

  // What lenient salvaged, written as CNB1, must audit identically.
  const std::string cnb = to_cnb(*from_csv);
  auto from_cnb = open_dataset(cnb);
  ASSERT_TRUE(from_cnb.has_value()) << from_cnb.report.summary();

  const std::string baseline = audited(*from_csv, 1);
  for (const unsigned threads : {1u, 4u, 0u}) {
    EXPECT_EQ(audited(*from_csv, threads), baseline) << threads;
    EXPECT_EQ(audited(*from_cnb, threads), baseline) << threads;
  }
}

TEST_F(DatasetSourceTest, PrebuiltDatasetIsGatedOnRegistryFingerprint) {
  const std::string csv = export_world();
  auto handle = open_dataset(csv);
  ASSERT_TRUE(handle.has_value());

  const auto registry = btc::CoinbaseTagRegistry::paper_registry();
  // No dataset stored: nothing to reuse.
  EXPECT_EQ(handle->prebuilt_for(registry), nullptr);

  const core::PoolAttribution attribution(handle->chain, registry);
  util::ThreadPool workers(1);
  handle->audit_dataset =
      core::AuditDataset::build(handle->chain, attribution, workers);
  // Fingerprint still zero: a dataset of unknown provenance is not reused.
  EXPECT_EQ(handle->prebuilt_for(registry), nullptr);

  handle->registry_fingerprint = registry.fingerprint();
  EXPECT_EQ(handle->prebuilt_for(registry), &*handle->audit_dataset);
}

}  // namespace
}  // namespace cn::io

#include "util/sha256.hpp"

#include <gtest/gtest.h>

#include <string>

#include "util/hex.hpp"

namespace cn {
namespace {

std::string digest_hex(const Sha256Digest& d) {
  return hex_encode(std::span<const std::uint8_t>(d.data(), d.size()));
}

// FIPS 180-4 / NIST test vectors.
TEST(Sha256, EmptyString) {
  EXPECT_EQ(digest_hex(sha256("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(digest_hex(sha256("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(digest_hex(sha256(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(digest_hex(h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const std::string msg = "the quick brown fox jumps over the lazy dog";
  for (std::size_t split = 0; split <= msg.size(); ++split) {
    Sha256 h;
    h.update(std::string_view(msg).substr(0, split));
    h.update(std::string_view(msg).substr(split));
    EXPECT_EQ(h.finalize(), sha256(msg)) << "split at " << split;
  }
}

TEST(Sha256, ResetAllowsReuse) {
  Sha256 h;
  h.update("garbage");
  (void)h.finalize();
  h.reset();
  h.update("abc");
  EXPECT_EQ(h.finalize(), sha256("abc"));
}

TEST(Sha256, ExactBlockBoundary) {
  // 64-byte message exercises the no-buffer fast path + padding block.
  const std::string msg(64, 'x');
  Sha256 h;
  h.update(msg);
  EXPECT_EQ(h.finalize(), sha256(msg));
}

TEST(Sha256, DoubleHashDiffersFromSingle) {
  EXPECT_NE(sha256d("abc"), sha256("abc"));
  // sha256d = sha256(sha256(x)) exactly.
  const Sha256Digest inner = sha256("abc");
  EXPECT_EQ(sha256d("abc"),
            sha256(std::span<const std::uint8_t>(inner.data(), inner.size())));
}

TEST(Sha256, DistinctInputsDistinctDigests) {
  EXPECT_NE(sha256("a"), sha256("b"));
  EXPECT_NE(sha256(""), sha256(std::string(1, '\0')));
}

}  // namespace
}  // namespace cn

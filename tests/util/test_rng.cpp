#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace cn {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, ForkIsDeterministicAndIndependent) {
  Rng parent(7);
  Rng f1 = parent.fork("workload");
  Rng f2 = parent.fork("workload");
  Rng g = parent.fork("blocks");
  EXPECT_EQ(f1.next(), f2.next());
  EXPECT_NE(f1.next(), g.next());
}

TEST(Rng, Uniform01InRange) {
  Rng rng(42);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng rng(42);
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformBelowIsBounded) {
  Rng rng(9);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.uniform_below(17), 17u);
  }
  // n == 1 always yields 0.
  EXPECT_EQ(rng.uniform_below(1), 0u);
}

TEST(Rng, UniformBelowCoversAllValues) {
  Rng rng(11);
  std::vector<int> counts(8, 0);
  for (int i = 0; i < 8000; ++i) ++counts[rng.uniform_below(8)];
  for (int c : counts) EXPECT_GT(c, 800);  // each ~1000 expected
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const std::int64_t v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  const int n = 200'000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, LognormalMedian) {
  Rng rng(17);
  std::vector<double> xs;
  for (int i = 0; i < 50'001; ++i) xs.push_back(rng.lognormal(std::log(10.0), 0.8));
  std::nth_element(xs.begin(), xs.begin() + 25'000, xs.end());
  EXPECT_NEAR(xs[25'000], 10.0, 0.5);
}

TEST(Rng, ExponentialMean) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(0.5);
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(Rng, PoissonSmallMean) {
  Rng rng(23);
  double sum = 0.0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(3.0));
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(Rng, PoissonLargeMeanUsesApproximation) {
  Rng rng(29);
  double sum = 0.0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(200.0));
  EXPECT_NEAR(sum / n, 200.0, 2.0);
}

TEST(Rng, PoissonZeroMean) {
  Rng rng(31);
  EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, ParetoBoundedBelow) {
  Rng rng(37);
  for (int i = 0; i < 10'000; ++i) EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
}

TEST(Rng, ChanceEdgeCases) {
  Rng rng(41);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
  EXPECT_FALSE(rng.chance(-1.0));
  EXPECT_TRUE(rng.chance(2.0));
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(43);
  std::vector<double> weights = {0.0, 3.0, 1.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 40'000; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[1]) / counts[2], 3.0, 0.3);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(47);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto copy = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, copy);
}

TEST(StableHash, DeterministicAndSpread) {
  EXPECT_EQ(stable_hash64("pool"), stable_hash64("pool"));
  EXPECT_NE(stable_hash64("pool-a"), stable_hash64("pool-b"));
  EXPECT_NE(stable_hash64(""), stable_hash64("a"));
}

}  // namespace
}  // namespace cn

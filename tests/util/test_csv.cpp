#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace cn {
namespace {

std::string read_all(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(CsvEscape, PlainFieldUntouched) {
  EXPECT_EQ(csv_escape("hello"), "hello");
}

TEST(CsvEscape, QuotesFieldsWithSeparators) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvEscape, DoublesEmbeddedQuotes) {
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

class CsvWriterTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/cn_csv_test.csv";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(CsvWriterTest, WritesHeaderAndRows) {
  {
    CsvWriter csv(path_);
    ASSERT_TRUE(csv.ok());
    csv.header({"name", "value"});
    csv.field("pi").field(3.14159, 2);
    csv.end_row();
    csv.field("n").field(std::int64_t{-5});
    csv.end_row();
  }
  EXPECT_EQ(read_all(path_), "name,value\npi,3.14\nn,-5\n");
}

TEST_F(CsvWriterTest, QuotesSpecialFields) {
  {
    CsvWriter csv(path_);
    csv.field("a,b").field(std::uint64_t{7});
    csv.end_row();
  }
  EXPECT_EQ(read_all(path_), "\"a,b\",7\n");
}

TEST(CsvWriter, ReportsFailureForBadPath) {
  CsvWriter csv("/nonexistent-dir-xyz/file.csv");
  EXPECT_FALSE(csv.ok());
}

}  // namespace
}  // namespace cn

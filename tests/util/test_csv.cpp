#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace cn {
namespace {

std::string read_all(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(CsvEscape, PlainFieldUntouched) {
  EXPECT_EQ(csv_escape("hello"), "hello");
}

TEST(CsvEscape, QuotesFieldsWithSeparators) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvEscape, DoublesEmbeddedQuotes) {
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

class CsvWriterTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/cn_csv_test.csv";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(CsvWriterTest, WritesHeaderAndRows) {
  {
    CsvWriter csv(path_);
    ASSERT_TRUE(csv.ok());
    csv.header({"name", "value"});
    csv.field("pi").field(3.14159, 2);
    csv.end_row();
    csv.field("n").field(std::int64_t{-5});
    csv.end_row();
  }
  EXPECT_EQ(read_all(path_), "name,value\npi,3.14\nn,-5\n");
}

TEST_F(CsvWriterTest, QuotesSpecialFields) {
  {
    CsvWriter csv(path_);
    csv.field("a,b").field(std::uint64_t{7});
    csv.end_row();
  }
  EXPECT_EQ(read_all(path_), "\"a,b\",7\n");
}

TEST(CsvWriter, ReportsFailureForBadPath) {
  CsvWriter csv("/nonexistent-dir-xyz/file.csv");
  EXPECT_FALSE(csv.ok());
  EXPECT_FALSE(csv.close());
}

TEST_F(CsvWriterTest, CloseReportsSuccessAndIsIdempotent) {
  CsvWriter csv(path_);
  csv.field("a").end_row();
  EXPECT_TRUE(csv.close());
  EXPECT_TRUE(csv.close());  // second close keeps the verdict
}

class CsvReaderEdgeTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/cn_csv_edge.csv";
  void TearDown() override { std::remove(path_.c_str()); }

  void write_raw(const std::string& content) {
    std::ofstream out(path_, std::ios::binary);
    out << content;
  }
};

TEST_F(CsvReaderEdgeTest, HandlesCrlfLineEndings) {
  write_raw("a,b\r\n1,2\r\n3,4\r\n");
  CsvReader reader(path_);
  std::vector<std::string> row;
  ASSERT_TRUE(reader.next_row(row));
  EXPECT_EQ(row, (std::vector<std::string>{"a", "b"}));
  ASSERT_TRUE(reader.next_row(row));
  EXPECT_EQ(row, (std::vector<std::string>{"1", "2"}));
  ASSERT_TRUE(reader.next_row(row));
  EXPECT_EQ(row, (std::vector<std::string>{"3", "4"}));
  EXPECT_FALSE(reader.next_row(row));
}

TEST_F(CsvReaderEdgeTest, HandlesMissingTrailingNewline) {
  write_raw("a,b\n1,2");
  CsvReader reader(path_);
  std::vector<std::string> row;
  ASSERT_TRUE(reader.next_row(row));
  ASSERT_TRUE(reader.next_row(row));
  EXPECT_EQ(row, (std::vector<std::string>{"1", "2"}));
  EXPECT_FALSE(reader.truncated());  // complete record, just no newline
  EXPECT_FALSE(reader.next_row(row));
}

TEST_F(CsvReaderEdgeTest, FlagsUnterminatedQuoteAtEof) {
  write_raw("a,b\n1,\"unclosed");
  CsvReader reader(path_);
  std::vector<std::string> row;
  ASSERT_TRUE(reader.next_row(row));
  EXPECT_FALSE(reader.truncated());
  ASSERT_TRUE(reader.next_row(row));
  EXPECT_TRUE(reader.truncated());
  EXPECT_FALSE(reader.next_row(row));
}

TEST_F(CsvReaderEdgeTest, FlagsQuotedFieldCutMidNewline) {
  // A quoted field legitimately spans lines; EOF inside it is truncation.
  write_raw("a,b\n1,\"line\nbroke here");
  CsvReader reader(path_);
  std::vector<std::string> row;
  ASSERT_TRUE(reader.next_row(row));
  ASSERT_TRUE(reader.next_row(row));
  EXPECT_TRUE(reader.truncated());
  EXPECT_EQ(row[1], "line\nbroke here");
}

TEST_F(CsvReaderEdgeTest, TracksPhysicalLineNumbers) {
  write_raw("h1,h2\nr1,x\n\"multi\nline\",y\nr3,z\n");
  CsvReader reader(path_);
  std::vector<std::string> row;
  ASSERT_TRUE(reader.next_row(row));
  EXPECT_EQ(reader.line(), 1u);
  ASSERT_TRUE(reader.next_row(row));
  EXPECT_EQ(reader.line(), 2u);
  ASSERT_TRUE(reader.next_row(row));
  EXPECT_EQ(reader.line(), 3u);  // record starts on line 3, spans 3-4
  ASSERT_TRUE(reader.next_row(row));
  EXPECT_EQ(reader.line(), 5u);  // the embedded newline advanced the count
  EXPECT_EQ(row[0], "r3");
}

TEST_F(CsvReaderEdgeTest, EmptyFileYieldsNoRows) {
  write_raw("");
  CsvReader reader(path_);
  std::vector<std::string> row;
  EXPECT_FALSE(reader.next_row(row));
}

}  // namespace
}  // namespace cn

#include "util/strings.hpp"

#include <gtest/gtest.h>

namespace cn {
namespace {

TEST(Strings, WithCommas) {
  EXPECT_EQ(with_commas(std::uint64_t{0}), "0");
  EXPECT_EQ(with_commas(std::uint64_t{999}), "999");
  EXPECT_EQ(with_commas(std::uint64_t{1000}), "1,000");
  EXPECT_EQ(with_commas(std::uint64_t{1234567}), "1,234,567");
  EXPECT_EQ(with_commas(std::int64_t{-1234567}), "-1,234,567");
}

TEST(Strings, Fixed) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fixed(-0.5, 1), "-0.5");
  EXPECT_EQ(fixed(2.0, 0), "2");
}

TEST(Strings, Percent) {
  EXPECT_EQ(percent(0.1234), "12.34%");
  EXPECT_EQ(percent(1.0, 0), "100%");
}

TEST(Strings, Split) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(Strings, SplitNoSeparator) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\t\n a b \r"), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("/F2Pool/", "/F2"));
  EXPECT_FALSE(starts_with("F2", "/F2Pool/"));
}

TEST(Strings, ContainsIcase) {
  EXPECT_TRUE(contains_icase("Mined by /f2pool/ v1", "/F2Pool/"));
  EXPECT_TRUE(contains_icase("abc", ""));
  EXPECT_FALSE(contains_icase("short", "longer needle"));
  EXPECT_FALSE(contains_icase("viabtc", "slush"));
}

TEST(Strings, Padding) {
  EXPECT_EQ(pad_left("x", 3), "  x");
  EXPECT_EQ(pad_right("x", 3), "x  ");
  EXPECT_EQ(pad_left("abcd", 2), "abcd");
}

}  // namespace
}  // namespace cn

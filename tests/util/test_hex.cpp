#include "util/hex.hpp"

#include <gtest/gtest.h>

namespace cn {
namespace {

TEST(Hex, EncodesEmpty) {
  EXPECT_EQ(hex_encode({}), "");
}

TEST(Hex, EncodesBytes) {
  const std::uint8_t data[] = {0x00, 0x0f, 0xa5, 0xff};
  EXPECT_EQ(hex_encode(std::span<const std::uint8_t>(data, 4)), "000fa5ff");
}

TEST(Hex, DecodesLowerAndUpperCase) {
  const auto lower = hex_decode("deadbeef");
  const auto upper = hex_decode("DEADBEEF");
  ASSERT_TRUE(lower.has_value());
  ASSERT_TRUE(upper.has_value());
  EXPECT_EQ(*lower, *upper);
  EXPECT_EQ((*lower)[0], 0xde);
  EXPECT_EQ((*lower)[3], 0xef);
}

TEST(Hex, RoundTrips) {
  std::vector<std::uint8_t> bytes;
  for (int i = 0; i < 256; ++i) bytes.push_back(static_cast<std::uint8_t>(i));
  const auto decoded = hex_decode(hex_encode(bytes));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, bytes);
}

TEST(Hex, RejectsOddLength) {
  EXPECT_FALSE(hex_decode("abc").has_value());
}

TEST(Hex, RejectsNonHexCharacters) {
  EXPECT_FALSE(hex_decode("zz").has_value());
  EXPECT_FALSE(hex_decode("0g").has_value());
  EXPECT_FALSE(hex_decode("0x12").has_value());
}

TEST(Hex, DecodesEmptyToEmpty) {
  const auto decoded = hex_decode("");
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->empty());
}

TEST(Hex, IsHexPredicate) {
  EXPECT_TRUE(is_hex("00ff"));
  EXPECT_FALSE(is_hex(""));
  EXPECT_FALSE(is_hex("0"));
  EXPECT_FALSE(is_hex("0xff"));
}

}  // namespace
}  // namespace cn

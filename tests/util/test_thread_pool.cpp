#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace cn::util {
namespace {

TEST(ThreadPool, ResolveThreads) {
  EXPECT_GE(resolve_threads(0), 1u);
  EXPECT_EQ(resolve_threads(1), 1u);
  EXPECT_EQ(resolve_threads(7), 7u);
}

TEST(ThreadPool, SerialPoolSpawnsNoWorkers) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.threads(), 1u);
}

TEST(ThreadPool, DefaultResolvesHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.threads(), 1u);
}

TEST(ThreadPool, ParallelForVisitsEveryIndexExactlyOnce) {
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    constexpr std::size_t kN = 10'000;
    std::vector<std::atomic<int>> hits(kN);
    pool.parallel_for(kN, [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ThreadPool, ParallelForEdgeSizes) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.parallel_for(0, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
  pool.parallel_for(1, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 1);
  // Fewer items than lanes.
  pool.parallel_for(2, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 3);
}

TEST(ThreadPool, ParallelMapMatchesSerialByteForByte) {
  const auto fn = [](std::size_t i) {
    return static_cast<double>(i) * 1.5 + static_cast<double>(i % 7);
  };
  ThreadPool serial(1);
  ThreadPool parallel(4);
  const auto a = serial.parallel_map(5'000, fn);
  const auto b = parallel.parallel_map(5'000, fn);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]);
}

TEST(ThreadPool, SubmitRunsAllTasksBeforeDestruction) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // destructor drains the queue
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, RepeatedParallelForReusesWorkers) {
  ThreadPool pool(4);
  std::atomic<long long> sum{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(100, [&](std::size_t i) {
      sum.fetch_add(static_cast<long long>(i), std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(sum.load(), 50LL * (99 * 100 / 2));
}

TEST(ThreadPool, UnevenTaskCostsStillComplete) {
  ThreadPool pool(4);
  std::atomic<long long> sum{0};
  pool.parallel_for(64, [&](std::size_t i) {
    volatile long long spin = 0;
    for (std::size_t k = 0; k < i * 1000; ++k) spin += static_cast<long long>(k);
    sum.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 64);
}

TEST(ThreadPool, ExceptionFromTaskPropagatesToCaller) {
  for (unsigned threads : {1u, 4u}) {
    ThreadPool pool(threads);
    EXPECT_THROW(
        pool.parallel_for(100,
                          [](std::size_t i) {
                            if (i == 37) throw std::runtime_error("boom 37");
                          }),
        std::runtime_error)
        << "threads " << threads;
  }
}

TEST(ThreadPool, FirstExceptionWinsAndLaterIndicesAreSkipped) {
  ThreadPool pool(4);
  std::atomic<int> visited{0};
  try {
    pool.parallel_for(10'000, [&](std::size_t) {
      visited.fetch_add(1, std::memory_order_relaxed);
      throw std::runtime_error("every index throws");
    });
    FAIL() << "expected a rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "every index throws");
  }
  // Indices claimed after the first failure are abandoned, not run: with
  // every task throwing, only the handful in flight at failure time ran.
  EXPECT_LE(visited.load(), 64);
}

TEST(ThreadPool, CallerSideThrowDoesNotUnwindPastHelpers) {
  // Regression: fn(i) throwing on the CALLING thread must not unwind
  // parallel_for while workers still hold references to the stack-local
  // fn. The slow worker tasks below keep helpers busy across the throw;
  // the shared flag outliving the call is what ASan/TSan verify.
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.parallel_for(64,
                        [&](std::size_t i) {
                          if (i == 0) throw std::logic_error("caller throws");
                          std::this_thread::sleep_for(std::chrono::milliseconds(1));
                          completed.fetch_add(1, std::memory_order_relaxed);
                        }),
        std::logic_error);
  // Every non-throwing task either finished before the rethrow or was
  // skipped; none may still be running once parallel_for returned.
  const int after_return = completed.load();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(completed.load(), after_return) << "task outlived parallel_for";
}

TEST(ThreadPool, PoolIsReusableAfterAnException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(
                   8, [](std::size_t) { throw std::runtime_error("once"); }),
               std::runtime_error);
  std::atomic<int> ran{0};
  pool.parallel_for(1'000, [&](std::size_t) {
    ran.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(ran.load(), 1'000);
  const auto doubled = pool.parallel_map(
      100, [](std::size_t i) { return 2 * static_cast<int>(i); });
  ASSERT_EQ(doubled.size(), 100u);
  EXPECT_EQ(doubled[99], 198);
}

TEST(ThreadPool, ParallelMapPropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_map(50,
                                 [](std::size_t i) -> int {
                                   if (i == 49) throw std::out_of_range("map");
                                   return static_cast<int>(i);
                                 }),
               std::out_of_range);
}

TEST(ThreadPool, DestructionDrainsSlowQueuedTasks) {
  // Destroying the pool the instant the queue is full must block until
  // every task ran — tasks reference `ran`, which lives outside the pool.
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      pool.submit([&ran] {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        ran.fetch_add(1, std::memory_order_relaxed);
      });
    }
  }
  EXPECT_EQ(ran.load(), 32);
}

TEST(ThreadPool, SubmitFromWithinATaskIsDrained) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 8; ++i) {
      pool.submit([&] {
        pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
      });
    }
  }
  EXPECT_EQ(ran.load(), 8);
}

}  // namespace
}  // namespace cn::util

#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace cn::util {
namespace {

TEST(ThreadPool, ResolveThreads) {
  EXPECT_GE(resolve_threads(0), 1u);
  EXPECT_EQ(resolve_threads(1), 1u);
  EXPECT_EQ(resolve_threads(7), 7u);
}

TEST(ThreadPool, SerialPoolSpawnsNoWorkers) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.threads(), 1u);
}

TEST(ThreadPool, DefaultResolvesHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.threads(), 1u);
}

TEST(ThreadPool, ParallelForVisitsEveryIndexExactlyOnce) {
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    constexpr std::size_t kN = 10'000;
    std::vector<std::atomic<int>> hits(kN);
    pool.parallel_for(kN, [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ThreadPool, ParallelForEdgeSizes) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.parallel_for(0, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
  pool.parallel_for(1, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 1);
  // Fewer items than lanes.
  pool.parallel_for(2, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 3);
}

TEST(ThreadPool, ParallelMapMatchesSerialByteForByte) {
  const auto fn = [](std::size_t i) {
    return static_cast<double>(i) * 1.5 + static_cast<double>(i % 7);
  };
  ThreadPool serial(1);
  ThreadPool parallel(4);
  const auto a = serial.parallel_map(5'000, fn);
  const auto b = parallel.parallel_map(5'000, fn);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]);
}

TEST(ThreadPool, SubmitRunsAllTasksBeforeDestruction) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // destructor drains the queue
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, RepeatedParallelForReusesWorkers) {
  ThreadPool pool(4);
  std::atomic<long long> sum{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(100, [&](std::size_t i) {
      sum.fetch_add(static_cast<long long>(i), std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(sum.load(), 50LL * (99 * 100 / 2));
}

TEST(ThreadPool, UnevenTaskCostsStillComplete) {
  ThreadPool pool(4);
  std::atomic<long long> sum{0};
  pool.parallel_for(64, [&](std::size_t i) {
    volatile long long spin = 0;
    for (std::size_t k = 0; k < i * 1000; ++k) spin += static_cast<long long>(k);
    sum.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 64);
}

}  // namespace
}  // namespace cn::util

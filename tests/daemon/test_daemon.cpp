// AuditDaemon (daemon/daemon.hpp) end-to-end properties, in-process:
// the synchronous and pipelined modes seal byte-identical reports; a
// daemon restarted from a mid-stream checkpoint converges to the
// uninterrupted run's bytes (the chaos harness proves the same with
// real SIGKILLs — tools/test_chaos.cmake); torn checkpoints cold-start;
// a flaky feed drains through retry/backoff; a poisoned feed turns the
// daemon unhealthy; a dead feed trips the watchdog out of readiness;
// and the HTTP surface serves reports, health, and degradation stamps.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "../helpers.hpp"
#include "btc/coinbase_tags.hpp"
#include "daemon/daemon.hpp"
#include "daemon/http.hpp"
#include "io/dataset_source.hpp"
#include "io/stream_source.hpp"
#include "node/snapshot.hpp"
#include "testing/flaky_source.hpp"

namespace cn::daemon {
namespace {

const core::FirstSeenFn kNoFirstSeen =
    [](const btc::Txid&) -> std::optional<SimTime> { return std::nullopt; };

/// A 40-block two-pool feed with interleaved snapshots — enough events
/// for several checkpoint/seal cycles at the cadences used below.
io::DatasetHandle make_feed() {
  io::DatasetHandle handle;
  btc::Chain chain(900);
  for (std::uint64_t h = 900; h < 940; ++h) {
    std::vector<double> rates;
    switch (h % 3) {
      case 0: rates = {9.0, 6.0, 3.0}; break;
      case 1: rates = {2.0, 7.0}; break;
      default: rates = {5.0, 0.4, 4.0}; break;
    }
    chain.append(cn::test::block_with_rates(
        h, rates, h % 2 == 0 ? "/F2Pool/" : "/ViaBTC/",
        static_cast<SimTime>(600 * (h - 899))));
  }
  handle.chain = std::move(chain);
  node::SnapshotSeries snaps;
  for (SimTime t = 300; t <= 24'300; t += 600) {
    snaps.record({t, 5 + static_cast<std::uint64_t>(t % 7),
                  800'000 + static_cast<std::uint64_t>(t) * 37});
  }
  handle.snapshots = std::move(snaps);
  return handle;
}

DaemonConfig test_config() {
  DaemonConfig config;
  config.accumulators.neutrality.min_blocks = 2;
  config.checkpoint_every_blocks = 8;
  config.seal_every_blocks = 4;
  config.read_deadline_ms = 200;
  config.retry.max_attempts = 8;
  config.retry.base_backoff_ms = 1;
  config.retry.max_backoff_ms = 2;
  return config;
}

/// The uninterrupted reference report for the shared feed.
std::string reference_report(const io::DatasetHandle& feed) {
  io::ReplaySource source(feed);
  const auto registry = btc::CoinbaseTagRegistry::paper_registry();
  AuditDaemon daemon(source, registry, kNoFirstSeen, test_config());
  EXPECT_EQ(daemon.run_to_end(), io::StreamStatus::kEnd);
  return daemon.seal_report_json();
}

TEST(AuditDaemon, PipelinedModeSealsTheSameBytesAsSynchronous) {
  const io::DatasetHandle feed = make_feed();
  const std::string ref = reference_report(feed);
  ASSERT_FALSE(ref.empty());

  io::ReplaySource source(feed);
  const auto registry = btc::CoinbaseTagRegistry::paper_registry();
  DaemonConfig config = test_config();
  config.threads = 0;
  AuditDaemon daemon(source, registry, kNoFirstSeen, config);
  daemon.start();
  daemon.join();
  EXPECT_EQ(daemon.seal_report_json(), ref);
  const DaemonStats stats = daemon.stats();
  EXPECT_EQ(stats.blocks_applied, feed.chain.size());
  EXPECT_EQ(stats.snapshots_applied, feed.snapshots->size());
}

TEST(AuditDaemon, RestartFromCheckpointConvergesByteIdentically) {
  const io::DatasetHandle feed = make_feed();
  const std::string ref = reference_report(feed);
  const std::string ckpt =
      ::testing::TempDir() + "/cn_daemon_restart.ckpt";
  std::filesystem::remove(ckpt);
  const auto registry = btc::CoinbaseTagRegistry::paper_registry();

  // First incarnation: apply only a prefix (stop after ~19 blocks by
  // bounding the feed), leaving a mid-stream checkpoint behind.
  {
    io::DatasetHandle prefix = make_feed();
    btc::Chain shorter(900);
    for (std::uint64_t h = 900; h < 919; ++h) {
      shorter.append(feed.chain.at_height(h));
    }
    prefix.chain = std::move(shorter);
    io::ReplaySource source(prefix);
    DaemonConfig config = test_config();
    config.checkpoint_path = ckpt;
    AuditDaemon daemon(source, registry, kNoFirstSeen, config);
    std::string message;
    ASSERT_TRUE(daemon.recover(&message));
    EXPECT_EQ(daemon.run_to_end(), io::StreamStatus::kEnd);
    EXPECT_GT(daemon.stats().checkpoints_written, 0u);
  }

  // Second incarnation: full feed, recovered from the prefix's last
  // checkpoint — must converge to the uninterrupted bytes.
  {
    io::ReplaySource source(feed);
    DaemonConfig config = test_config();
    config.checkpoint_path = ckpt;
    AuditDaemon daemon(source, registry, kNoFirstSeen, config);
    std::string message;
    ASSERT_TRUE(daemon.recover(&message));
    EXPECT_NE(message.find("recovered"), std::string::npos) << message;
    EXPECT_GT(daemon.stats().recovered_seq, 0u);
    EXPECT_EQ(daemon.run_to_end(), io::StreamStatus::kEnd);
    EXPECT_EQ(daemon.seal_report_json(), ref);
  }
  std::filesystem::remove(ckpt);
}

TEST(AuditDaemon, TornCheckpointIsRejectedAndColdStarts) {
  const io::DatasetHandle feed = make_feed();
  const std::string ref = reference_report(feed);
  const std::string ckpt = ::testing::TempDir() + "/cn_daemon_torn.ckpt";
  {
    std::ofstream out(ckpt, std::ios::binary | std::ios::trunc);
    out << "CNCP1 but torn to shreds";
  }
  io::ReplaySource source(feed);
  const auto registry = btc::CoinbaseTagRegistry::paper_registry();
  DaemonConfig config = test_config();
  config.checkpoint_path = ckpt;
  AuditDaemon daemon(source, registry, kNoFirstSeen, config);
  std::string message;
  ASSERT_TRUE(daemon.recover(&message));
  EXPECT_NE(message.find("rejected"), std::string::npos) << message;
  EXPECT_TRUE(daemon.stats().checkpoint_rejected);
  EXPECT_EQ(daemon.run_to_end(), io::StreamStatus::kEnd);
  EXPECT_EQ(daemon.seal_report_json(), ref);
  std::filesystem::remove(ckpt);
}

TEST(AuditDaemon, FlakyFeedDrainsThroughRetries) {
  const io::DatasetHandle feed = make_feed();
  const std::string ref = reference_report(feed);

  io::ReplaySource replay(feed);
  cn::testing::FlakyOptions flaky_options;
  flaky_options.transient_rate = 0.3;
  cn::testing::FlakyStreamSource flaky(replay, 17, flaky_options);
  const auto registry = btc::CoinbaseTagRegistry::paper_registry();
  AuditDaemon daemon(flaky, registry, kNoFirstSeen, test_config());
  EXPECT_EQ(daemon.run_to_end(), io::StreamStatus::kEnd);
  EXPECT_GT(flaky.transient_failures(), 0u);
  EXPECT_EQ(daemon.seal_report_json(), ref);
  EXPECT_TRUE(daemon.healthy());
}

TEST(AuditDaemon, PoisonedFeedTurnsUnhealthy) {
  const io::DatasetHandle feed = make_feed();
  io::ReplaySource replay(feed);
  cn::testing::FlakyOptions flaky_options;
  flaky_options.corrupt_after = 10;
  cn::testing::FlakyStreamSource flaky(replay, 1, flaky_options);
  const auto registry = btc::CoinbaseTagRegistry::paper_registry();
  AuditDaemon daemon(flaky, registry, kNoFirstSeen, test_config());
  EXPECT_EQ(daemon.run_to_end(), io::StreamStatus::kCorrupt);
  EXPECT_FALSE(daemon.healthy());
  EXPECT_FALSE(daemon.ready());
  const HttpResponse health = daemon.handle({"GET", "/healthz"});
  EXPECT_EQ(health.status, 503);
}

// A feed that delivers a few events and then stops answering forever —
// the shape the watchdog exists for.
class DeadAfterSource : public io::StreamSource {
 public:
  DeadAfterSource(io::StreamSource& inner, std::uint64_t alive)
      : inner_(&inner), alive_(alive) {}
  io::StreamStatus next(io::StreamEvent& out, int deadline_ms) override {
    if (delivered_ >= alive_) {
      std::this_thread::sleep_for(std::chrono::milliseconds(deadline_ms));
      return io::StreamStatus::kTimeout;
    }
    const io::StreamStatus status = inner_->next(out, deadline_ms);
    if (status == io::StreamStatus::kOk) ++delivered_;
    return status;
  }
  bool seek(std::uint64_t seq) override { return inner_->seek(seq); }
  std::uint64_t size() const override { return inner_->size(); }

 private:
  io::StreamSource* inner_;
  std::uint64_t alive_;
  std::uint64_t delivered_ = 0;
};

TEST(AuditDaemon, WatchdogFailsReadinessWhenTheFeedGoesDead) {
  const io::DatasetHandle feed = make_feed();
  io::ReplaySource replay(feed);
  DeadAfterSource dead(replay, 5);
  const auto registry = btc::CoinbaseTagRegistry::paper_registry();
  DaemonConfig config = test_config();
  config.threads = 0;
  config.read_deadline_ms = 10;
  config.retry.max_attempts = 2;
  config.max_consecutive_failures = 1'000'000;  // keep polling, never fatal
  config.watchdog_stall_ms = 80;
  AuditDaemon daemon(dead, registry, kNoFirstSeen, config);
  daemon.start();

  // The five live events apply quickly; then the feed goes dead with
  // ingest still running, so the stall must surface within a few
  // watchdog intervals.
  bool became_unready = false;
  for (int i = 0; i < 100; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    if (daemon.stats().events_applied >= 5 && !daemon.ready()) {
      became_unready = true;
      break;
    }
  }
  EXPECT_TRUE(became_unready);
  const HttpResponse ready = daemon.handle({"GET", "/readyz"});
  EXPECT_EQ(ready.status, 503);
  EXPECT_NE(ready.body.find("stalled"), std::string::npos) << ready.body;
  EXPECT_TRUE(daemon.healthy());  // stalled, not dead
  daemon.stop();
}

// --- HTTP surface -------------------------------------------------------

std::string http_get_once(std::uint16_t port, const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return {};
  }
  const std::string request =
      "GET " + target + " HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n > 0) {
      response.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;
  }
  ::close(fd);
  return response;
}

std::string http_get(std::uint16_t port, const std::string& target) {
  // A loopback connect can still fail transiently on a loaded CI box;
  // retry the whole exchange a few times before reporting emptiness.
  for (int attempt = 0; attempt < 10; ++attempt) {
    std::string response = http_get_once(port, target);
    if (!response.empty()) return response;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return {};
}

TEST(AuditDaemon, HttpSurfaceServesReportHealthAndStaleness) {
  const io::DatasetHandle feed = make_feed();
  io::ReplaySource source(feed);
  const auto registry = btc::CoinbaseTagRegistry::paper_registry();
  AuditDaemon daemon(source, registry, kNoFirstSeen, test_config());

  HttpServer server;
  std::string error;
  ASSERT_TRUE(server.start(
      0, [&daemon](const HttpRequest& r) { return daemon.handle(r); }, &error))
      << error;
  ASSERT_GT(server.port(), 0);

  // Before anything is sealed, /report is an honest 503.
  std::string resp = http_get(server.port(), "/report");
  EXPECT_NE(resp.find("503"), std::string::npos) << resp;

  EXPECT_EQ(daemon.run_to_end(), io::StreamStatus::kEnd);
  const std::string sealed = daemon.seal_report_json();

  resp = http_get(server.port(), "/report");
  EXPECT_NE(resp.find("HTTP/1.1 200 OK"), std::string::npos) << resp;
  EXPECT_NE(resp.find("X-CN-Report-Version:"), std::string::npos) << resp;
  EXPECT_NE(resp.find("X-CN-Staleness-Blocks: 0"), std::string::npos) << resp;
  // The body is the sealed JSON, bit for bit.
  const std::size_t body_at = resp.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  EXPECT_EQ(resp.substr(body_at + 4), sealed);

  resp = http_get(server.port(), "/healthz");
  EXPECT_NE(resp.find("HTTP/1.1 200 OK"), std::string::npos);
  resp = http_get(server.port(), "/metrics");
  EXPECT_NE(resp.find("HTTP/1.1 200 OK"), std::string::npos);
  resp = http_get(server.port(), "/nonsense");
  EXPECT_NE(resp.find("404"), std::string::npos);
  EXPECT_GE(server.requests_served(), 5u);
  server.stop();
}

TEST(AuditDaemon, NonGetMethodsAreRejected) {
  const io::DatasetHandle feed = make_feed();
  io::ReplaySource source(feed);
  const auto registry = btc::CoinbaseTagRegistry::paper_registry();
  AuditDaemon daemon(source, registry, kNoFirstSeen, test_config());
  const HttpResponse resp = daemon.handle({"POST", "/report"});
  EXPECT_EQ(resp.status, 400);
}

}  // namespace
}  // namespace cn::daemon

// CNCP1 checkpoints (daemon/checkpoint.hpp): save/load round-trips the
// accumulators byte-exactly; every way a checkpoint can be wrong —
// missing, truncated, bit-flipped, wrong magic, written under different
// thresholds or a different tag registry — fails with the matching
// typed io::LoadError; and overwrites are atomic (the previous file
// survives a failed write).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "../helpers.hpp"
#include "btc/coinbase_tags.hpp"
#include "daemon/accumulators.hpp"
#include "daemon/checkpoint.hpp"
#include "io/load_report.hpp"

namespace cn::daemon {
namespace {

const core::FirstSeenFn kNoFirstSeen =
    [](const btc::Txid&) -> std::optional<SimTime> { return std::nullopt; };

class CheckpointTest : public ::testing::Test {
 protected:
  std::string path_ =
      ::testing::TempDir() + "/cn_ckpt_" +
      ::testing::UnitTest::GetInstance()->current_test_info()->name() + ".ckpt";
  btc::CoinbaseTagRegistry registry_ = btc::CoinbaseTagRegistry::paper_registry();

  void SetUp() override { std::filesystem::remove(path_); }
  void TearDown() override {
    std::filesystem::remove(path_);
    std::filesystem::remove(path_ + ".tmp");
  }

  AccumulatorOptions options() const {
    AccumulatorOptions o;
    o.neutrality.min_blocks = 2;
    return o;
  }

  AuditAccumulators populated(std::uint64_t blocks = 12) const {
    AuditAccumulators acc(registry_, options());
    std::uint64_t seq = 0;
    for (std::uint64_t h = 800; h < 800 + blocks; ++h) {
      acc.apply_block(cn::test::block_with_rates(
                          h, {8.0, 4.0, 2.0},
                          h % 2 == 0 ? "/F2Pool/" : "/ViaBTC/",
                          static_cast<SimTime>(600 * (h - 799))),
                      kNoFirstSeen, ++seq);
      acc.apply_snapshot({static_cast<SimTime>(600 * (h - 799) + 15), 5, 1'200'000},
                         ++seq);
    }
    return acc;
  }

  CheckpointLoad load_into(AuditAccumulators& acc) const {
    return load_checkpoint(acc, path_, options().fingerprint(),
                           registry_.fingerprint());
  }

  static std::vector<char> read_bytes(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::vector<char>((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  }
  static void write_bytes(const std::string& path, const std::vector<char>& b) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(b.data(), static_cast<std::streamsize>(b.size()));
  }
};

TEST_F(CheckpointTest, RoundTripRestoresByteIdenticalState) {
  AuditAccumulators acc = populated();
  std::string error;
  ASSERT_TRUE(save_checkpoint(acc, path_, &error)) << error;
  EXPECT_FALSE(std::filesystem::exists(path_ + ".tmp"));  // renamed away

  AuditAccumulators restored(registry_, options());
  const CheckpointLoad load = load_into(restored);
  ASSERT_TRUE(load.ok) << (load.error ? load.error->detail : "");
  EXPECT_EQ(load.seq, acc.last_seq());

  std::vector<std::uint8_t> a, b;
  acc.encode(a);
  restored.encode(b);
  EXPECT_EQ(a, b);
  EXPECT_EQ(AuditAccumulators::to_json(restored.seal()),
            AuditAccumulators::to_json(acc.seal()));
}

TEST_F(CheckpointTest, MissingFileIsFileOpen) {
  AuditAccumulators acc(registry_, options());
  const CheckpointLoad load = load_into(acc);
  ASSERT_FALSE(load.ok);
  ASSERT_TRUE(load.error.has_value());
  EXPECT_EQ(load.error->kind, io::LoadErrorKind::kFileOpen);
}

TEST_F(CheckpointTest, EveryTruncationFailsTyped) {
  AuditAccumulators acc = populated();
  ASSERT_TRUE(save_checkpoint(acc, path_));
  const std::vector<char> full = read_bytes(path_);
  ASSERT_GT(full.size(), 40u);  // 40-byte header plus a payload

  for (std::size_t len = 0; len < full.size(); len += 13) {
    write_bytes(path_, std::vector<char>(full.begin(),
                                         full.begin() + static_cast<long>(len)));
    AuditAccumulators victim(registry_, options());
    const CheckpointLoad load = load_into(victim);
    ASSERT_FALSE(load.ok) << "len " << len;
    ASSERT_TRUE(load.error.has_value()) << "len " << len;
    EXPECT_TRUE(load.error->kind == io::LoadErrorKind::kTruncatedFile ||
                load.error->kind == io::LoadErrorKind::kBadMagic)
        << "len " << len << ": " << load.error->detail;
  }
}

TEST_F(CheckpointTest, FlippedPayloadByteFailsChecksum) {
  AuditAccumulators acc = populated();
  ASSERT_TRUE(save_checkpoint(acc, path_));
  std::vector<char> bytes = read_bytes(path_);
  bytes[bytes.size() - 5] = static_cast<char>(bytes[bytes.size() - 5] ^ 0x40);
  write_bytes(path_, bytes);

  AuditAccumulators victim(registry_, options());
  const CheckpointLoad load = load_into(victim);
  ASSERT_FALSE(load.ok);
  ASSERT_TRUE(load.error.has_value());
  EXPECT_EQ(load.error->kind, io::LoadErrorKind::kSectionChecksum);
}

TEST_F(CheckpointTest, WrongMagicIsBadMagic) {
  AuditAccumulators acc = populated();
  ASSERT_TRUE(save_checkpoint(acc, path_));
  std::vector<char> bytes = read_bytes(path_);
  bytes[0] = 'X';
  write_bytes(path_, bytes);

  AuditAccumulators victim(registry_, options());
  const CheckpointLoad load = load_into(victim);
  ASSERT_FALSE(load.ok);
  EXPECT_EQ(load.error->kind, io::LoadErrorKind::kBadMagic);
}

TEST_F(CheckpointTest, ThresholdMismatchRefusesToResume) {
  AuditAccumulators acc = populated();
  ASSERT_TRUE(save_checkpoint(acc, path_));

  AccumulatorOptions other = options();
  other.neutrality.sppe_boost_threshold = 50.0;  // different rules
  AuditAccumulators victim(registry_, other);
  const CheckpointLoad load = load_checkpoint(
      victim, path_, other.fingerprint(), registry_.fingerprint());
  ASSERT_FALSE(load.ok);
  EXPECT_EQ(load.error->kind, io::LoadErrorKind::kUnsupportedVersion);
}

TEST_F(CheckpointTest, RegistryMismatchRefusesToResume) {
  AuditAccumulators acc = populated();
  ASSERT_TRUE(save_checkpoint(acc, path_));

  AuditAccumulators victim(registry_, options());
  const CheckpointLoad load = load_checkpoint(
      victim, path_, options().fingerprint(), registry_.fingerprint() ^ 1);
  ASSERT_FALSE(load.ok);
  EXPECT_EQ(load.error->kind, io::LoadErrorKind::kUnsupportedVersion);
}

TEST_F(CheckpointTest, OverwriteReplacesAtomically) {
  AuditAccumulators first = populated(6);
  ASSERT_TRUE(save_checkpoint(first, path_));
  AuditAccumulators second = populated(12);
  ASSERT_TRUE(save_checkpoint(second, path_));

  AuditAccumulators restored(registry_, options());
  const CheckpointLoad load = load_into(restored);
  ASSERT_TRUE(load.ok);
  EXPECT_EQ(load.seq, second.last_seq());
  EXPECT_EQ(restored.blocks(), 12u);
}

}  // namespace
}  // namespace cn::daemon

// AuditAccumulators (daemon/accumulators.hpp): the incremental twin of
// the batch neutrality scorecards. Properties: per-pool norms sealed
// after applying a chain block-by-block are bitwise equal to
// core::neutrality_reports over the same chain; self-interest tallies
// are prequential (wallets count only from the block that announced
// them); sealing is deterministic and idempotent; and the checkpoint
// encoding round-trips the full state byte-exactly while rejecting
// garbage with a message instead of crashing.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "../helpers.hpp"
#include "btc/coinbase_tags.hpp"
#include "core/neutrality.hpp"
#include "core/wallet_inference.hpp"
#include "daemon/accumulators.hpp"

namespace cn::daemon {
namespace {

const core::FirstSeenFn kNoFirstSeen =
    [](const btc::Txid&) -> std::optional<SimTime> { return std::nullopt; };

AccumulatorOptions test_options() {
  AccumulatorOptions options;
  options.neutrality.min_blocks = 2;
  return options;
}

/// A deterministic mixed-pool chain: 24 blocks over two identified pools
/// plus an unidentified miner, with fee patterns that exercise the boost
/// threshold and the sub-floor rule.
btc::Chain mixed_chain() {
  btc::Chain chain(500);
  for (std::uint64_t h = 500; h < 524; ++h) {
    std::vector<double> rates;
    switch (h % 4) {
      case 0: rates = {9.0, 7.0, 5.0, 3.0}; break;     // descending (clean)
      case 1: rates = {2.0, 8.0, 6.0}; break;          // a hoisted low payer
      case 2: rates = {5.0, 0.5, 4.0}; break;          // a sub-floor tx
      default: rates = {6.0}; break;
    }
    const char* tag = h % 3 == 0   ? "/F2Pool/"
                      : h % 3 == 1 ? "/ViaBTC/"
                                   : "/NoSuchPool/";
    chain.append(cn::test::block_with_rates(
        h, rates, tag, static_cast<SimTime>(600 * (h - 499))));
  }
  return chain;
}

AuditAccumulators accumulate(const btc::Chain& chain,
                             const btc::CoinbaseTagRegistry& registry) {
  AuditAccumulators acc(registry, test_options());
  std::uint64_t seq = 0;
  for (const btc::Block& block : chain.blocks()) {
    acc.apply_block(block, kNoFirstSeen, ++seq);
  }
  return acc;
}

TEST(AuditAccumulators, SealedNormsMatchBatchNeutralityBitwise) {
  const auto registry = btc::CoinbaseTagRegistry::paper_registry();
  const btc::Chain chain = mixed_chain();
  AuditAccumulators acc = accumulate(chain, registry);

  const core::PoolAttribution attribution(chain, registry);
  const std::vector<core::NeutralityReport> batch =
      core::neutrality_reports(chain, attribution, test_options().neutrality);

  const AuditAccumulators::Report sealed = acc.seal();
  ASSERT_EQ(sealed.neutrality.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const core::NeutralityReport& want = batch[i];
    const core::NeutralityReport& got = sealed.neutrality[i];
    EXPECT_EQ(got.pool, want.pool);
    EXPECT_EQ(got.blocks, want.blocks);
    EXPECT_EQ(got.txs, want.txs);
    // Bitwise: the accumulators mirror report_for_pool's arithmetic.
    EXPECT_EQ(got.mean_ppe, want.mean_ppe) << want.pool;
    EXPECT_EQ(got.boosted_tx_rate, want.boosted_tx_rate) << want.pool;
    EXPECT_EQ(got.below_floor_block_rate, want.below_floor_block_rate)
        << want.pool;
    // No self-interest traffic in this chain, so the prequential tallies
    // agree with batch exactly.
    EXPECT_EQ(got.self_dealing_p, want.self_dealing_p) << want.pool;
    EXPECT_EQ(got.self_dealing_flagged, want.self_dealing_flagged);
    EXPECT_EQ(got.score, want.score) << want.pool;
  }
  EXPECT_EQ(sealed.blocks, chain.size());
  EXPECT_EQ(sealed.version, chain.size());  // seq of the last applied block
}

TEST(AuditAccumulators, SelfInterestIsPrequential) {
  const auto registry = btc::CoinbaseTagRegistry::paper_registry();
  AuditAccumulators acc(registry, test_options());

  // Block 1: a payment TO F2Pool's reward wallet, mined by ViaBTC,
  // BEFORE F2Pool ever announced that wallet. Must not count.
  {
    std::vector<btc::Transaction> txs;
    txs.push_back(cn::test::tx_with_rate(5.0, 250, 0, 1, "alice",
                                         "/F2Pool//reward"));
    btc::Coinbase cb;
    cb.tag = "/ViaBTC/";
    cb.reward_address = btc::Address::derive("/ViaBTC//reward");
    cb.reward = btc::Satoshi{625'000'000};
    acc.apply_block(btc::Block(100, 600, std::move(cb), std::move(txs)),
                    kNoFirstSeen, 1);
  }
  // Block 2: F2Pool announces its wallet (coinbase reward address).
  acc.apply_block(cn::test::block_with_rates(101, {4.0}, "/F2Pool/", 1200),
                  kNoFirstSeen, 2);
  // Block 3: the same payment shape again, mined by ViaBTC — now the
  // wallet is known, so it is a c-block for F2Pool (y += 1, x += 0).
  {
    std::vector<btc::Transaction> txs;
    txs.push_back(cn::test::tx_with_rate(5.0, 250, 0, 2, "alice",
                                         "/F2Pool//reward"));
    btc::Coinbase cb;
    cb.tag = "/ViaBTC/";
    cb.reward_address = btc::Address::derive("/ViaBTC//reward");
    cb.reward = btc::Satoshi{625'000'000};
    acc.apply_block(btc::Block(102, 1800, std::move(cb), std::move(txs)),
                    kNoFirstSeen, 3);
  }
  // Block 4: F2Pool commits a payment to its own wallet (x and y += 1).
  // A second transaction rides along so block SPPE is defined (it is
  // empty for blocks under 2 txs) and the own-tx SPPE tally counts.
  {
    std::vector<btc::Transaction> txs;
    txs.push_back(cn::test::tx_with_rate(5.0, 250, 0, 3, "alice",
                                         "/F2Pool//reward"));
    txs.push_back(cn::test::tx_with_rate(8.0, 250, 0, 4, "carol", "dave"));
    btc::Coinbase cb;
    cb.tag = "/F2Pool/";
    cb.reward_address = btc::Address::derive("/F2Pool//reward");
    cb.reward = btc::Satoshi{625'000'000};
    acc.apply_block(btc::Block(103, 2400, std::move(cb), std::move(txs)),
                    kNoFirstSeen, 4);
  }

  ASSERT_EQ(acc.pool_count(), 2u);
  const PoolState* f2pool = nullptr;
  for (std::size_t i = 0; i < acc.pool_count(); ++i) {
    if (acc.pool(i).name == "F2Pool") f2pool = &acc.pool(i);
  }
  ASSERT_NE(f2pool, nullptr);
  EXPECT_EQ(f2pool->self_y, 2u);  // blocks 3 and 4; block 1 predates the wallet
  EXPECT_EQ(f2pool->self_x, 1u);  // block 4 only
  EXPECT_EQ(f2pool->own_sppe_count, 1u);
}

TEST(AuditAccumulators, SnapshotsFeedCongestionAndMempoolStats) {
  const auto registry = btc::CoinbaseTagRegistry::paper_registry();
  AuditAccumulators acc(registry, test_options());
  // Levels relative to the 1 MB default unit: none, low, medium, high.
  acc.apply_snapshot({15, 10, 500'000}, 1);
  acc.apply_snapshot({30, 20, 1'500'000}, 2);
  acc.apply_snapshot({45, 30, 3'000'000}, 3);
  acc.apply_snapshot({60, 40, 5'000'000}, 4);

  const AuditAccumulators::Report report = acc.seal();
  EXPECT_EQ(report.snapshots, 4u);
  EXPECT_EQ(report.mean_pending_txs, 25.0);
  EXPECT_EQ(report.max_total_vsize, 5'000'000u);
  for (int level = 0; level < 4; ++level) {
    EXPECT_EQ(report.congestion_levels[level], 1u) << "level " << level;
  }
  EXPECT_EQ(report.version, 4u);
}

TEST(AuditAccumulators, SealIsIdempotentAndJsonDeterministic) {
  const auto registry = btc::CoinbaseTagRegistry::paper_registry();
  const btc::Chain chain = mixed_chain();
  AuditAccumulators acc = accumulate(chain, registry);
  const std::string a = AuditAccumulators::to_json(acc.seal());
  const std::string b = AuditAccumulators::to_json(acc.seal());
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"schema\":\"cnauditd/v1\""), std::string::npos);

  // An independently accumulated copy seals to the same bytes.
  AuditAccumulators again = accumulate(chain, registry);
  EXPECT_EQ(AuditAccumulators::to_json(again.seal()), a);
}

TEST(AuditAccumulators, EncodeDecodeRoundTripsByteExactly) {
  const auto registry = btc::CoinbaseTagRegistry::paper_registry();
  const btc::Chain chain = mixed_chain();
  AuditAccumulators acc = accumulate(chain, registry);
  acc.apply_snapshot({15, 10, 2'500'000}, 1000);

  std::vector<std::uint8_t> encoded;
  acc.encode(encoded);
  ASSERT_FALSE(encoded.empty());

  AuditAccumulators restored(registry, test_options());
  std::string error;
  ASSERT_TRUE(restored.decode(encoded.data(), encoded.size(), &error)) << error;
  EXPECT_EQ(restored.last_seq(), acc.last_seq());
  EXPECT_EQ(restored.blocks(), acc.blocks());
  EXPECT_EQ(restored.txs(), acc.txs());

  std::vector<std::uint8_t> re_encoded;
  restored.encode(re_encoded);
  EXPECT_EQ(re_encoded, encoded);
  EXPECT_EQ(AuditAccumulators::to_json(restored.seal()),
            AuditAccumulators::to_json(acc.seal()));

  // The restored accumulator keeps accumulating identically.
  AuditAccumulators parallel = accumulate(chain, registry);
  parallel.apply_snapshot({15, 10, 2'500'000}, 1000);
  const btc::Block more =
      cn::test::block_with_rates(524, {6.0, 3.0}, "/F2Pool/", 99'000);
  restored.apply_block(more, kNoFirstSeen, 1001);
  parallel.apply_block(more, kNoFirstSeen, 1001);
  EXPECT_EQ(AuditAccumulators::to_json(restored.seal()),
            AuditAccumulators::to_json(parallel.seal()));
}

TEST(AuditAccumulators, DecodeRejectsGarbageWithoutCrashing) {
  const auto registry = btc::CoinbaseTagRegistry::paper_registry();
  AuditAccumulators acc = accumulate(mixed_chain(), registry);
  std::vector<std::uint8_t> encoded;
  acc.encode(encoded);

  // Every truncation length (stride 7 keeps the loop fast) must fail
  // cleanly — no crash, no OOB, an error message set.
  for (std::size_t len = 0; len < encoded.size(); len += 7) {
    AuditAccumulators victim(registry, test_options());
    std::string error;
    EXPECT_FALSE(victim.decode(encoded.data(), len, &error)) << "len " << len;
    EXPECT_FALSE(error.empty()) << "len " << len;
  }
  // Trailing garbage is a defect too: the payload must consume exactly.
  std::vector<std::uint8_t> padded = encoded;
  padded.push_back(0xAB);
  AuditAccumulators victim(registry, test_options());
  std::string error;
  EXPECT_FALSE(victim.decode(padded.data(), padded.size(), &error));
}

TEST(AuditAccumulators, OptionsFingerprintSeparatesThresholds) {
  AccumulatorOptions a = test_options();
  AccumulatorOptions b = test_options();
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  b.neutrality.sppe_boost_threshold = 75.0;
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  AccumulatorOptions c = test_options();
  c.pair_epsilon = 30;
  EXPECT_NE(a.fingerprint(), c.fingerprint());
}

}  // namespace
}  // namespace cn::daemon

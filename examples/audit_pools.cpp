// Pool-behaviour audit: the paper's §5.2/§5.3 methodology as a reusable
// command-line workflow.
//
//   $ ./audit_pools [seed] [scale]
//
// Pipeline (identical to what an auditor with chain access would run):
//   1. attribute every block to a pool via coinbase markers;
//   2. collect each pool's reward wallets from its coinbases;
//   3. extract self-interest transactions (spending from / paying to
//      those wallets);
//   4. run the one-sided binomial tests for differential acceleration
//      and deceleration, pool by pool — including cross-pool tests that
//      expose collusion (pool m accelerating pool n's transactions);
//   5. corroborate flagged pairs with the SPPE position measure.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/prio_test.hpp"
#include "core/report.hpp"
#include "core/sppe.hpp"
#include "core/wallet_inference.hpp"
#include "sim/dataset.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace cn;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2021;
  const double scale = argc > 2 ? std::strtod(argv[2], nullptr) : 0.6;

  std::printf("Simulating a year-2020-style network (seed %llu, scale %.2f)...\n",
              static_cast<unsigned long long>(seed), scale);
  const sim::SimResult world = sim::make_dataset(sim::DatasetKind::kC, seed, scale);
  std::printf("  %zu blocks, %llu committed transactions\n\n", world.chain.size(),
              static_cast<unsigned long long>(world.chain.total_tx_count()));

  const auto registry = btc::CoinbaseTagRegistry::paper_registry();
  const core::PoolAttribution attribution(world.chain, registry);

  // Audit every ordered (tx-owner, miner) pair among the large pools.
  const auto pools = attribution.pools_by_blocks();
  std::vector<std::string> large;
  for (const auto& pool : pools) {
    if (attribution.hash_share(pool) >= 0.03) large.push_back(pool);
  }

  std::printf("Cross-pool acceleration audit (rows: whose txs; cols: who mined "
              "them disproportionately; alpha = 0.001):\n\n");
  core::TablePrinter table({"txs of", "accelerated by", "x", "y", "p-accel",
                            "SPPE", "verdict"},
                           {16, 16, 6, 6, 9, 9, 22});
  table.print_header();

  int findings = 0;
  for (const auto& owner : large) {
    const auto txs = core::self_interest_txs(world.chain, attribution, owner);
    if (txs.size() < 10) continue;
    for (const auto& miner : large) {
      const auto r = core::test_differential_prioritization(world.chain,
                                                            attribution, miner, txs);
      const bool flagged = r.p_accelerate < 0.001 && r.sppe > 25.0;
      if (!flagged) continue;
      ++findings;
      const char* verdict = owner == miner ? "SELFISH" : "COLLUSION";
      table.print_row({owner, miner, std::to_string(r.x), std::to_string(r.y),
                       core::format_p_value(r.p_accelerate), fixed(r.sppe, 1),
                       verdict});
    }
  }
  if (findings == 0) std::printf("  (no differential prioritization found)\n");

  // Deceleration screen: does anyone refuse anyone's transactions?
  std::printf("\nDeceleration screen (censorship would show up here; the paper "
              "— and this simulation — plant none):\n");
  int decel_findings = 0;
  for (const auto& owner : large) {
    const auto txs = core::self_interest_txs(world.chain, attribution, owner);
    if (txs.size() < 20) continue;
    for (const auto& miner : large) {
      const auto r = core::test_differential_prioritization(world.chain,
                                                            attribution, miner, txs);
      if (r.p_decelerate < 0.001) {
        std::printf("  %s decelerates %s's txs (p=%s)\n", miner.c_str(),
                    owner.c_str(), core::format_p_value(r.p_decelerate).c_str());
        ++decel_findings;
      }
    }
  }
  if (decel_findings == 0) {
    std::printf("  (none found)\n");
  } else {
    std::printf("  note: the test is RELATIVE (paper §5.1.1) — when two pools\n"
                "  snap up a transaction set, every *other* pool's share of its\n"
                "  c-blocks drops below its hash rate and reads as deceleration.\n"
                "  Corroborate with SPPE before concluding censorship: a true\n"
                "  censor never mines the set at all (x = 0).\n");
  }

  std::printf("\n%d acceleration finding(s). Expected plants: F2Pool, ViaBTC,\n"
              "1THash&58Coin and SlushPool accelerating their own transactions,\n"
              "plus ViaBTC accelerating its two partners' (Table 2).\n",
              findings);
  return 0;
}

// Dark-fee hunt: the paper's §5.4 detector as a workflow.
//
//   $ ./darkfee_hunt [seed] [scale]
//
// For every pool that sells acceleration, flag committed transactions
// whose SPPE says "top of the block, but the public fee says bottom",
// then validate the flags against the service's public was-it-accelerated
// query — exactly how the paper validated against BTC.com's pushtx API.
// Finishes with the economics: the dark revenue each pool collected.
#include <cstdio>
#include <cstdlib>

#include "core/darkfee.hpp"
#include "core/report.hpp"
#include "core/wallet_inference.hpp"
#include "sim/dataset.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace cn;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 99;
  const double scale = argc > 2 ? std::strtod(argv[2], nullptr) : 0.6;

  std::printf("Simulating a network with dark-fee acceleration services "
              "(seed %llu)...\n\n", static_cast<unsigned long long>(seed));
  const sim::SimResult world = sim::make_dataset(sim::DatasetKind::kC, seed, scale);
  const auto registry = btc::CoinbaseTagRegistry::paper_registry();
  const core::PoolAttribution attribution(world.chain, registry);
  const auto is_accel = [&](const btc::Txid& id) {
    return world.acceleration.is_accelerated(id);
  };

  std::printf("Ground truth: %zu transactions were accelerated off-chain.\n\n",
              world.acceleration.total_accelerated());

  core::TablePrinter table({"pool", "flagged@99", "confirmed", "precision",
                            "flagged@90", "precision@90"},
                           {12, 12, 11, 11, 12, 14});
  table.print_header();
  for (const char* pool : {"BTC.com", "AntPool", "ViaBTC", "F2Pool", "Poolin"}) {
    const auto buckets = core::darkfee_buckets(world.chain, attribution, pool,
                                               is_accel, {99.0, 90.0});
    table.print_row({pool, with_commas(buckets[0].tx_count),
                     with_commas(buckets[0].accelerated),
                     percent(buckets[0].accelerated_fraction(), 1),
                     with_commas(buckets[1].tx_count),
                     percent(buckets[1].accelerated_fraction(), 1)});
  }

  // Control: honest pools should have (almost) nothing to flag.
  std::printf("\nControls:\n");
  for (const char* pool : {"Huobi", "Okex"}) {
    const auto refs = core::detect_accelerated(world.chain, attribution, pool, 99.0);
    std::printf("  %-8s (no acceleration service): %zu transactions flagged\n",
                pool, refs.size());
  }
  const auto random_hits = core::accelerated_in_random_sample(
      world.chain, attribution, "BTC.com", is_accel, 1000, seed);
  std::printf("  random 1000-tx sample of BTC.com blocks: %llu accelerated "
              "(paper: 0)\n",
              static_cast<unsigned long long>(random_hits));

  // The economics the paper highlights: the pool keeps the dark fee even
  // when someone else mines the transaction.
  std::printf("\nDark-fee revenue (off-chain, invisible to other miners):\n");
  for (const char* pool : {"BTC.com", "AntPool", "ViaBTC", "F2Pool", "Poolin"}) {
    const auto revenue = world.acceleration.revenue_of(pool);
    std::printf("  %-8s %12s sat (%.4f BTC)\n", pool,
                with_commas(revenue.value).c_str(), revenue.btc());
  }
  return 0;
}

// Congestion study (paper §4.1): how congested is the Mempool, how long
// do transactions wait, and does paying more actually help?
//
//   $ ./congestion_study [seed]
//
// Reproduces, on simulated data sets A and B, the analyses behind
// Figures 3, 4 and 5: Mempool occupancy over time, commit-delay
// distributions, and fee-rate distributions conditioned on congestion.
#include <cstdio>
#include <cstdlib>

#include "core/congestion.hpp"
#include "core/delay_model.hpp"
#include "core/report.hpp"
#include "sim/dataset.hpp"
#include "stats/ecdf.hpp"

namespace {

void study(cn::sim::DatasetKind kind, const char* name, std::uint64_t seed) {
  std::printf("=== data set %s ===\n", name);
  cn::sim::SimResult world = cn::sim::make_dataset(kind, seed, 1.0);
  const auto& snaps = world.observer.snapshots();
  const std::uint64_t unit = world.config.max_block_vsize;

  std::printf("blocks: %zu   committed txs: %llu   snapshots: %zu\n",
              world.chain.size(),
              static_cast<unsigned long long>(world.chain.total_tx_count()),
              snaps.size());
  std::printf("Mempool congested (>1 block budget) %.1f%% of the time; "
              "peak backlog %.1fx the block budget\n",
              snaps.fraction_above(unit) * 100.0,
              static_cast<double>(snaps.max_vsize()) / static_cast<double>(unit));

  // Commit delays (Fig 4a).
  const auto first_seen = [&world](const cn::btc::Txid& id) {
    return world.observer.first_seen(id);
  };
  const auto seen = cn::core::collect_seen_txs(world.chain, first_seen);
  const auto delays = cn::core::commit_delays_blocks(world.chain, seen);
  const cn::stats::Ecdf delay_cdf{std::span<const double>(delays)};
  std::printf("commit delays: %.1f%% next-block, %.1f%% wait >=3 blocks, "
              "%.1f%% wait >=10 blocks\n",
              delay_cdf.evaluate(1.0) * 100.0,
              delay_cdf.survival(2.0) * 100.0,
              delay_cdf.survival(9.0) * 100.0);

  // Fee-rates by congestion level at issue time (Fig 4c / 11).
  static const char* kLevels[] = {"<=1x (none)", "(1,2]x", "(2,4]x", ">4x"};
  std::printf("median fee-rate (sat/vB) by congestion at issue:\n");
  for (int level = 0; level <= 3; ++level) {
    const auto rates = cn::core::fee_rates_at_level(
        seen, snaps, unit, static_cast<cn::node::CongestionLevel>(level));
    if (rates.empty()) {
      std::printf("  %-12s (no transactions)\n", kLevels[level]);
      continue;
    }
    const cn::stats::Ecdf cdf{std::span<const double>(rates)};
    std::printf("  %-12s n=%-7zu median=%-7.2f p90=%.2f\n", kLevels[level],
                cdf.size(), cdf.quantile(0.5), cdf.quantile(0.9));
  }

  // Wallet-style advice from the fitted fee->delay model: what must a
  // user pay to commit within 2 blocks, 90% of the time?
  {
    const auto model = cn::core::DelayModel::fit(seen, delays, snaps, unit);
    std::printf("fee needed for <=2-block commit (p90), by congestion:\n");
    static const char* kNames[] = {"none", "low", "medium", "high"};
    for (int level = 0; level <= 3; ++level) {
      const double fee = model.fee_for_target(
          2.0, static_cast<cn::node::CongestionLevel>(level), 0.9);
      if (fee < 0) {
        std::printf("  %-7s (no data)\n", kNames[level]);
      } else {
        std::printf("  %-7s >= %.1f sat/vB\n", kNames[level], fee);
      }
    }
  }

  // Delays by fee band (Fig 5 / 12).
  static const char* kBands[] = {"low (<10 sat/vB)", "high (10-100)",
                                 "exorbitant (>=100)"};
  std::printf("commit delay by fee band:\n");
  for (int band = 0; band <= 2; ++band) {
    const auto d = cn::core::delays_for_band(seen, delays,
                                             static_cast<cn::core::FeeBand>(band));
    if (d.empty()) {
      std::printf("  %-20s (no transactions)\n", kBands[band]);
      continue;
    }
    const cn::stats::Ecdf cdf{std::span<const double>(d)};
    std::printf("  %-20s n=%-7zu next-block=%.1f%%  median=%.1f  p90=%.1f blocks\n",
                kBands[band], cdf.size(), cdf.evaluate(1.0) * 100.0,
                cdf.quantile(0.5), cdf.quantile(0.9));
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;
  study(cn::sim::DatasetKind::kA, "A (default node, Feb-Mar 2019 profile)", seed);
  study(cn::sim::DatasetKind::kB, "B (permissive node, June 2019 profile)", seed);
  return 0;
}

// Chain-neutrality watchdog: the paper's §6.1 proposal in action.
//
//   $ ./neutrality_report [seed] [scale]
//
// Produces the per-pool scorecard a third-party observer could publish
// periodically: ordering fidelity, opaque-boost rate, self-dealing test,
// fee-floor discipline, and a composite neutrality score. The planted
// misbehaving pools (F2Pool, ViaBTC, 1THash&58Coin, SlushPool) should
// sink to the bottom of the ranking; honest pools should score ~95+.
#include <cstdio>
#include <cstdlib>

#include "core/neutrality.hpp"
#include "core/report.hpp"
#include "sim/dataset.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace cn;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;
  const double scale = argc > 2 ? std::strtod(argv[2], nullptr) : 0.6;

  std::printf("Simulating a year-2020-style network (seed %llu)...\n\n",
              static_cast<unsigned long long>(seed));
  const sim::SimResult world = sim::make_dataset(sim::DatasetKind::kC, seed, scale);
  const auto registry = btc::CoinbaseTagRegistry::paper_registry();
  const core::PoolAttribution attribution(world.chain, registry);

  const auto reports = core::neutrality_reports(world.chain, attribution);

  std::printf("Chain-neutrality scorecard (worst first):\n\n");
  core::TablePrinter table({"pool", "blocks", "PPE%", "boost%", "self-p",
                            "floor%", "score"},
                           {16, 9, 8, 9, 9, 9, 8});
  table.print_header();
  for (const auto& r : reports) {
    table.print_row({r.pool, with_commas(r.blocks), fixed(r.mean_ppe, 2),
                     fixed(r.boosted_tx_rate * 100.0, 3),
                     core::format_p_value(r.self_dealing_p),
                     fixed(r.below_floor_block_rate * 100.0, 1),
                     fixed(r.score, 1)});
  }

  std::printf("\nlegend: PPE%% = mean intra-block ordering error; boost%% = txs "
              "placed far above their fee rank\n(SPPE>=90); self-p = "
              "acceleration test on the pool's own txs; floor%% = blocks\n"
              "containing sub-1 sat/vB txs; score = 100 minus calibrated "
              "penalties.\n");
  return 0;
}

// Quickstart: simulate a small Bitcoin network with planted misbehaviour,
// then audit it with the library's detectors — the whole pipeline in one
// file.
//
//   $ ./quickstart [seed]
//
// Steps:
//   1. run a scaled-down "data set C"-style simulation (pools, policies,
//      congestion, an observer node);
//   2. attribute blocks to pools from coinbase markers;
//   3. check norm adherence (PPE);
//   4. test each large pool for differential prioritization of its own
//      (self-interest) transactions;
//   5. hunt for dark-fee (accelerated) transactions via SPPE.
#include <cstdio>
#include <cstdlib>

#include "core/darkfee.hpp"
#include "core/ppe.hpp"
#include "core/prio_test.hpp"
#include "core/report.hpp"
#include "core/wallet_inference.hpp"
#include "sim/dataset.hpp"
#include "stats/descriptive.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  // 1. Simulate. Scale 0.25 keeps this under a few seconds (~360 blocks).
  std::printf("Simulating a data-set-C-style network (seed %llu)...\n",
              static_cast<unsigned long long>(seed));
  cn::sim::SimResult world = cn::sim::make_dataset(cn::sim::DatasetKind::kC, seed, 0.25);
  std::printf("  blocks mined: %zu, transactions committed: %llu (issued %llu)\n\n",
              world.chain.size(),
              static_cast<unsigned long long>(world.chain.total_tx_count()),
              static_cast<unsigned long long>(world.issued_count));

  // 2. Attribute blocks from coinbase markers (no ground truth involved).
  const auto registry = cn::btc::CoinbaseTagRegistry::paper_registry();
  const cn::core::PoolAttribution attribution(world.chain, registry);
  std::printf("Top pools by mined blocks:\n");
  const auto pools = attribution.pools_by_blocks();
  for (std::size_t i = 0; i < pools.size() && i < 5; ++i) {
    std::printf("  %-16s %5llu blocks (%.2f%% hash share), %zu reward wallets\n",
                pools[i].c_str(),
                static_cast<unsigned long long>(attribution.blocks_of(pools[i])),
                attribution.hash_share(pools[i]) * 100.0,
                attribution.wallets_of(pools[i]).size());
  }
  std::printf("  unidentified blocks: %llu\n\n",
              static_cast<unsigned long long>(attribution.unidentified_blocks()));

  // 3. Norm adherence: position prediction error.
  const std::vector<double> ppe = cn::core::chain_ppe(world.chain);
  const auto ppe_summary = cn::stats::summarize(ppe);
  std::printf("PPE (fee-rate ordering error): mean %.2f%%, p75 %.2f%%\n\n",
              ppe_summary.mean, ppe_summary.p75);

  // 4. Differential prioritization of self-interest transactions.
  std::printf("Self-interest prioritization tests (p<0.001 = misbehaving):\n");
  cn::core::TablePrinter table({"pool", "theta0", "x", "y", "p-accel", "SPPE"},
                               {16, 9, 7, 7, 10, 9});
  table.print_header();
  for (std::size_t i = 0; i < pools.size() && i < 8; ++i) {
    const auto txs = cn::core::self_interest_txs(world.chain, attribution, pools[i]);
    if (txs.empty()) continue;
    const auto result = cn::core::test_differential_prioritization(
        world.chain, attribution, pools[i], txs);
    table.print_row({pools[i], cn::fixed(result.theta0, 4),
                     std::to_string(result.x), std::to_string(result.y),
                     cn::core::format_p_value(result.p_accelerate),
                     cn::fixed(result.sppe, 2)});
  }

  // 5. Dark-fee hunting on BTC.com (the paper's Table 4 protocol).
  std::printf("\nDark-fee detection for BTC.com (SPPE >= 99):\n");
  const auto is_accel = [&world](const cn::btc::Txid& id) {
    return world.acceleration.is_accelerated(id);
  };
  const auto buckets = cn::core::darkfee_buckets(world.chain, attribution,
                                                 "BTC.com", is_accel, {99.0});
  for (const auto& b : buckets) {
    std::printf("  %llu txs flagged, %llu (%.1f%%) confirmed accelerated by the "
                "service's public API\n",
                static_cast<unsigned long long>(b.tx_count),
                static_cast<unsigned long long>(b.accelerated),
                b.accelerated_fraction() * 100.0);
  }
  std::printf("\nDone. See bench/ for full reproductions of every table and figure.\n");
  return 0;
}

# CTest script: the cnauditd chaos harness.
#
# Proves the daemon's headline crash-safety invariant: SIGKILL at ANY
# point (emulated by armed CN_CRASH_AT kill points, which _exit(137)
# with no destructors — observably identical to SIGKILL), then restart
# from the last checkpoint, converges to a final report byte-identical
# to an uninterrupted run's. Kill points cover the apply path and every
# stage of the atomic checkpoint dance (before fsync, before rename,
# after rename).
if(NOT DEFINED CNAUDIT OR NOT DEFINED CNAUDITD)
  message(FATAL_ERROR "pass -DCNAUDIT=<path> -DCNAUDITD=<path>")
endif()

set(workdir "${CMAKE_CURRENT_BINARY_DIR}/cnauditd_chaos_test")
file(REMOVE_RECURSE "${workdir}")
file(MAKE_DIRECTORY "${workdir}")
set(data "${workdir}/data")

execute_process(
  COMMAND "${CNAUDIT}" simulate --dataset A --seed 11 --scale 0.1 --out "${data}"
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "simulate failed (${rc}): ${out}${err}")
endif()

# --- reference: one uninterrupted oneshot run, no checkpointing -------
execute_process(
  COMMAND "${CNAUDITD}" --input "${data}" --oneshot --out "${workdir}/ref.json"
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "reference run failed (${rc}): ${out}${err}")
endif()
file(READ "${workdir}/ref.json" ref)
string(LENGTH "${ref}" ref_len)
if(ref_len EQUAL 0)
  message(FATAL_ERROR "reference report is empty")
endif()

# The pipelined mode (--threads 0) must produce the same bytes.
execute_process(
  COMMAND "${CNAUDITD}" --input "${data}" --oneshot --threads 0
          --out "${workdir}/ref_threaded.json"
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "threaded reference run failed (${rc}): ${out}${err}")
endif()
file(READ "${workdir}/ref_threaded.json" ref_threaded)
if(NOT ref_threaded STREQUAL ref)
  message(FATAL_ERROR "--threads 0 report diverged from --threads 1 report")
endif()

# --- chaos: kill at a point, restart clean, require identical bytes ---
# Each entry is one CN_CRASH_AT spec; checkpoints every 8 blocks so
# several checkpoint cycles happen inside the small data set.
set(kill_specs
  "daemon.apply:3"
  "daemon.apply:29"
  "daemon.apply:101"
  "checkpoint.pre_fsync:1"
  "checkpoint.pre_rename:1"
  "checkpoint.pre_rename:3"
  "checkpoint.post_rename:1"
  "daemon.post_checkpoint:2"
)
foreach(spec IN LISTS kill_specs)
  set(ckpt "${workdir}/single.ckpt")
  set(report "${workdir}/single.json")
  file(REMOVE "${ckpt}" "${ckpt}.tmp" "${report}")
  execute_process(
    COMMAND "${CMAKE_COMMAND}" -E env "CN_CRASH_AT=${spec}"
            "${CNAUDITD}" --input "${data}" --oneshot
            --checkpoint "${ckpt}" --checkpoint-every 8 --out "${report}"
    RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
  if(rc EQUAL 0)
    # The countdown outlived the feed (expected for the deepest apply
    # kill on very small runs) — the run completing cleanly is fine,
    # but the report must still match.
    file(READ "${report}" got)
    if(NOT got STREQUAL ref)
      message(FATAL_ERROR "un-killed run under ${spec} diverged from reference")
    endif()
  else()
    if(NOT rc EQUAL 137)
      message(FATAL_ERROR "kill point ${spec} exited ${rc}, expected 137")
    endif()
    # Restart without the kill switch: must recover and converge.
    execute_process(
      COMMAND "${CNAUDITD}" --input "${data}" --oneshot
              --checkpoint "${ckpt}" --checkpoint-every 8 --out "${report}"
      RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR "restart after ${spec} failed (${rc}): ${out}${err}")
    endif()
    file(READ "${report}" got)
    if(NOT got STREQUAL ref)
      message(FATAL_ERROR "report after crash at ${spec} is not byte-identical to the reference")
    endif()
  endif()
endforeach()

# --- progressive chaos: repeated kills against ONE checkpoint file ----
# Every restart inherits the previous crash's checkpoint; the daemon
# must make forward progress through a whole sequence of kills and
# still converge to the reference bytes.
set(ckpt "${workdir}/progressive.ckpt")
set(report "${workdir}/progressive.json")
file(REMOVE "${ckpt}" "${ckpt}.tmp" "${report}")
foreach(spec "daemon.apply:11" "checkpoint.pre_rename:1" "daemon.apply:37"
             "checkpoint.pre_fsync:2" "daemon.apply:5")
  execute_process(
    COMMAND "${CMAKE_COMMAND}" -E env "CN_CRASH_AT=${spec}"
            "${CNAUDITD}" --input "${data}" --oneshot
            --checkpoint "${ckpt}" --checkpoint-every 8 --out "${report}"
    RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
  if(NOT rc EQUAL 137 AND NOT rc EQUAL 0)
    message(FATAL_ERROR "progressive kill ${spec} exited ${rc}, expected 137 or 0")
  endif()
endforeach()
execute_process(
  COMMAND "${CNAUDITD}" --input "${data}" --oneshot
          --checkpoint "${ckpt}" --checkpoint-every 8 --out "${report}"
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "final progressive run failed (${rc}): ${out}${err}")
endif()
file(READ "${report}" got)
if(NOT got STREQUAL ref)
  message(FATAL_ERROR "progressive-chaos report is not byte-identical to the reference")
endif()

# --- torn checkpoint: recovery must reject garbage and cold-start -----
set(ckpt "${workdir}/torn.ckpt")
set(report "${workdir}/torn.json")
file(WRITE "${ckpt}" "CNCP1 but actually torn garbage")
execute_process(
  COMMAND "${CNAUDITD}" --input "${data}" --oneshot
          --checkpoint "${ckpt}" --checkpoint-every 8 --out "${report}"
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "run with torn checkpoint failed (${rc}): ${out}${err}")
endif()
string(FIND "${err}" "checkpoint rejected" found)
if(found EQUAL -1)
  message(FATAL_ERROR "torn checkpoint was not reported as rejected: ${err}")
endif()
file(READ "${report}" got)
if(NOT got STREQUAL ref)
  message(FATAL_ERROR "report after torn checkpoint diverged from the reference")
endif()

file(REMOVE_RECURSE "${workdir}")

// cnsweep — the scenario-matrix runner (DESIGN.md §14).
//
// One command reproduces every figure, table and ablation in
// EXPERIMENTS.md: expand the job matrix, group the worlds the jobs need
// by content-address fingerprint, generate each missing world exactly
// once through io::WorldCache, then fan the bench binaries out across a
// thread pool — each one finds its worlds warm in $CN_WORLD_DIR and
// spends its time on analysis instead of simulation.
//
//   cnsweep                      # full matrix, default seed/scales
//   cnsweep --smoke              # tiny CI matrix (3 benches, scale 0.1)
//   cnsweep --resume             # skip jobs whose .ok marker exists
//   cnsweep --jobs 4             # bench subprocess parallelism
//   cnsweep --seed 7 --scale 0.5 # override every bench's env knobs
//
// Outputs: bench_out/sweep/<bench>.log per job, one consolidated
// bench_out/BENCH_sweep.json (job statuses, cache hit/miss/eviction
// counts, wall time spent simulating vs total, and — when a previous
// sweep report exists — the speedup against it, which across a
// cold-then-warm pair of runs is exactly the cache's cold-vs-warm
// speedup), plus the cn::obs metrics/trace documents next to it.
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"
#include "worlds.hpp"

namespace {

using namespace cn;
namespace fs = std::filesystem;

struct Options {
  bool smoke = false;
  bool resume = false;
  unsigned jobs = 0;  ///< 0 = hardware concurrency
  std::optional<std::uint64_t> seed;
  std::optional<double> scale;
  std::string bench_dir;  ///< defaults to <cnsweep dir>/../bench
};

[[noreturn]] void usage_error(const char* what) {
  std::fprintf(stderr, "error: %s\n", what);
  std::fprintf(stderr,
               "usage: cnsweep [--smoke] [--resume] [--jobs N] [--seed N] "
               "[--scale X] [--bench-dir PATH]\n");
  std::exit(2);
}

std::uint64_t parse_u64(const char* flag, const char* s) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0' || errno == ERANGE) {
    std::fprintf(stderr, "error: %s='%s' is not an unsigned integer\n", flag, s);
    std::exit(2);
  }
  return v;
}

double parse_scale(const char* flag, const char* s) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s || *end != '\0' || errno == ERANGE || !std::isfinite(v) ||
      v <= 0.0) {
    std::fprintf(stderr, "error: %s='%s' is not a positive number\n", flag, s);
    std::exit(2);
  }
  return v;
}

Options parse_args(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage_error((arg + " needs a value").c_str());
      return argv[++i];
    };
    if (arg == "--smoke") {
      options.smoke = true;
    } else if (arg == "--resume") {
      options.resume = true;
    } else if (arg == "--jobs") {
      options.jobs = static_cast<unsigned>(parse_u64("--jobs", value()));
    } else if (arg == "--seed") {
      options.seed = parse_u64("--seed", value());
    } else if (arg == "--scale") {
      options.scale = parse_scale("--scale", value());
    } else if (arg == "--bench-dir") {
      options.bench_dir = value();
    } else {
      usage_error(("unknown argument '" + arg + "'").c_str());
    }
  }
  return options;
}

/// Where the bench binaries live: next to this binary's directory, under
/// ../bench — the build-tree layout (build/tools/cnsweep, build/bench/*).
std::string default_bench_dir(const char* argv0) {
  std::error_code ec;
  fs::path self = fs::path(argv0);
  const fs::path parent = self.parent_path();
  return (parent.empty() ? fs::path(".") : parent / ".." / "bench").string();
}

/// The CI matrix: two benches sharing worlds A+B plus one on C, all at
/// scale 0.1 — small enough for a cold run in seconds, rich enough to
/// exercise dedup (fig03 and fig05 want the same two worlds). The
/// evasion sweep rides along so the adversary-zoo worlds (evasive,
/// withholding) go through the same cold/warm cache cycle; at this
/// scale its detector-power gates are advisory (see
/// bench_ablation_evasion.cpp).
constexpr const char* kSmokeBenches[] = {
    "bench_fig03_congestion", "bench_fig05_delay_by_feerate",
    "bench_tab03_scam", "bench_ablation_evasion"};
constexpr double kSmokeScale = 0.1;

struct Job {
  const cn::bench::SweepEntry* entry = nullptr;
  double scale = 1.0;          ///< effective scale for spec expansion
  bool scale_forced = false;   ///< pass CN_SCALE to the subprocess
  bool skipped = false;        ///< --resume found an .ok marker
  int exit_code = -1;
  double seconds = 0.0;
};

std::string shell_quote(const std::string& s) {
  std::string out = "'";
  for (const char c : s) {
    if (c == '\'') {
      out += "'\\''";
    } else {
      out += c;
    }
  }
  out += "'";
  return out;
}

/// Pulls "wall_seconds": <v> out of a previous sweep report, so a warm
/// rerun can state its speedup over the cold run it followed.
std::optional<double> previous_wall_seconds(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  const std::string key = "\"wall_seconds\":";
  const std::size_t at = text.find(key);
  if (at == std::string::npos) return std::nullopt;
  const double v = std::strtod(text.c_str() + at + key.size(), nullptr);
  return v > 0.0 ? std::optional<double>(v) : std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  const auto sweep_start = std::chrono::steady_clock::now();
  Options options = parse_args(argc, argv);
  if (options.bench_dir.empty()) {
    options.bench_dir = default_bench_dir(argv[0]);
  }
  const std::uint64_t seed = options.seed.value_or(42);

  // The driver and every bench subprocess must agree on the cache
  // directory; honour an inherited CN_WORLD_DIR, else pick the default.
  const char* env_world_dir = std::getenv("CN_WORLD_DIR");
  const std::string world_dir =
      env_world_dir != nullptr && *env_world_dir != '\0'
          ? std::string(env_world_dir)
          : std::string("bench_out/worlds");
  setenv("CN_WORLD_DIR", world_dir.c_str(), 1);

  // --- expand the matrix --------------------------------------------------
  std::vector<Job> jobs;
  for (const cn::bench::SweepEntry& entry : cn::bench::sweep_matrix()) {
    if (options.smoke) {
      bool wanted = false;
      for (const char* name : kSmokeBenches) {
        wanted = wanted || std::strcmp(entry.bench, name) == 0;
      }
      if (!wanted) continue;
    }
    Job job;
    job.entry = &entry;
    if (options.scale.has_value()) {
      job.scale = *options.scale;
      job.scale_forced = true;
    } else if (options.smoke) {
      job.scale = kSmokeScale;
      job.scale_forced = true;
    } else {
      job.scale = entry.default_scale;
    }
    jobs.push_back(job);
  }
  if (jobs.empty()) usage_error("the matrix expanded to zero jobs");

  // Group the worlds the jobs will request by fingerprint: each unique
  // world is generated once, no matter how many benches want it.
  std::map<std::uint64_t, sim::WorldSpec> worlds;
  std::size_t requested = 0;
  for (const Job& job : jobs) {
    for (sim::WorldSpec& spec : job.entry->specs(seed, job.scale)) {
      ++requested;
      worlds.emplace(spec.fingerprint(), std::move(spec));
    }
  }
  std::vector<sim::WorldSpec> unique_specs;
  unique_specs.reserve(worlds.size());
  for (auto& [fingerprint, spec] : worlds) unique_specs.push_back(spec);

  std::printf("cnsweep: %zu bench jobs, %zu world requests, %zu unique worlds\n",
              jobs.size(), requested, unique_specs.size());
  std::printf("         cache %s, benches %s\n", world_dir.c_str(),
              options.bench_dir.c_str());

  util::ThreadPool pool(options.jobs);

  // --- phase 1: materialize every missing world ---------------------------
  io::WorldCache& cache = cn::bench::world_cache();
  std::vector<char> generate_failed(unique_specs.size(), 0);
  {
    const obs::Span span("sweep.generate_worlds");
    pool.parallel_for(unique_specs.size(), [&](std::size_t i) {
      try {
        const io::World world = cache.materialize(unique_specs[i]);
        std::fprintf(stderr, "world %-40s %s\n",
                     unique_specs[i].label().c_str(),
                     world.cache_hit ? "(cache hit)" : "(simulated)");
      } catch (const std::exception& e) {
        generate_failed[i] = 1;
        std::fprintf(stderr, "error: world %s: %s\n",
                     unique_specs[i].label().c_str(), e.what());
      }
    });
  }
  const io::WorldCacheStats cache_stats = cache.stats();
  std::size_t worlds_failed = 0;
  for (const char failed : generate_failed) worlds_failed += failed;
  std::printf("worlds: %llu hits, %llu simulated, %llu evicted, %.1f s in "
              "the engine\n",
              static_cast<unsigned long long>(cache_stats.hits),
              static_cast<unsigned long long>(cache_stats.misses),
              static_cast<unsigned long long>(cache_stats.evictions),
              cache_stats.sim_seconds);

  // --- phase 2: fan the bench binaries out --------------------------------
  const std::string sweep_dir = "bench_out/sweep";
  std::error_code ec;
  fs::create_directories(sweep_dir, ec);
  {
    const obs::Span span("sweep.run_benches");
    pool.parallel_for(jobs.size(), [&](std::size_t i) {
      Job& job = jobs[i];
      const std::string name = job.entry->bench;
      const std::string marker = sweep_dir + "/" + name + ".ok";
      if (options.resume && fs::exists(marker, ec)) {
        job.skipped = true;
        job.exit_code = 0;
        return;
      }
      const std::string log = sweep_dir + "/" + name + ".log";
      std::string cmd = "CN_SEED=" + std::to_string(seed);
      if (job.scale_forced) {
        char scale_buf[32];
        std::snprintf(scale_buf, sizeof scale_buf, "%.17g", job.scale);
        cmd += std::string(" CN_SCALE=") + scale_buf;
      }
      cmd += " CN_WORLD_DIR=" + shell_quote(world_dir);
      // --benchmark_filter='^$': skip the google-benchmark tail — the
      // sweep wants the analysis/report output, not the micro-benches.
      cmd += " " + shell_quote((fs::path(options.bench_dir) / name).string());
      cmd += " --benchmark_filter='^$'";
      cmd += " > " + shell_quote(log) + " 2>&1";
      const auto start = std::chrono::steady_clock::now();
      const int rc = std::system(cmd.c_str());
      job.seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      job.exit_code = rc == 0 ? 0 : 1;
      if (job.exit_code == 0) {
        std::FILE* f = std::fopen(marker.c_str(), "w");
        if (f != nullptr) std::fclose(f);
      } else {
        std::remove(marker.c_str());
      }
      std::printf("  %-32s %s %7.1f s%s\n", name.c_str(),
                  job.exit_code == 0 ? "ok  " : "FAIL", job.seconds,
                  job.exit_code == 0 ? "" : ("  (see " + log + ")").c_str());
      std::fflush(stdout);
    });
  }

  std::size_t failed = 0, skipped = 0;
  double bench_seconds = 0.0;
  for (const Job& job : jobs) {
    failed += job.exit_code != 0;
    skipped += job.skipped;
    bench_seconds += job.seconds;
  }

  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    sweep_start)
          .count();
  const double sim_fraction =
      wall > 0.0 ? cache_stats.sim_seconds / wall : 0.0;

  // --- consolidated report ------------------------------------------------
  const std::string report_path = "bench_out/BENCH_sweep.json";
  const std::optional<double> prev_wall = previous_wall_seconds(report_path);
  const std::string tmp = report_path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot create %s: %s\n", tmp.c_str(),
                 std::strerror(errno));
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"sweep\",\n");
  std::fprintf(f, "  \"seed\": %llu,\n", static_cast<unsigned long long>(seed));
  std::fprintf(f, "  \"smoke\": %s,\n", options.smoke ? "true" : "false");
  std::fprintf(f, "  \"jobs\": [");
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const Job& job = jobs[i];
    std::fprintf(f,
                 "%s\n    {\"bench\": \"%s\", \"scale\": %.17g, "
                 "\"status\": \"%s\", \"seconds\": %.3f}",
                 i == 0 ? "" : ",", job.entry->bench, job.scale,
                 job.skipped ? "skipped" : (job.exit_code == 0 ? "ok" : "failed"),
                 job.seconds);
  }
  std::fprintf(f, "\n  ],\n  \"metrics\": {\n");
  std::fprintf(f, "    \"wall_seconds\": %.6f,\n", wall);
  std::fprintf(f, "    \"bench_seconds\": %.6f,\n", bench_seconds);
  std::fprintf(f, "    \"sim_seconds\": %.6f,\n", cache_stats.sim_seconds);
  std::fprintf(f, "    \"sim_fraction\": %.6f,\n", sim_fraction);
  std::fprintf(f, "    \"worlds_requested\": %zu,\n", requested);
  std::fprintf(f, "    \"worlds_unique\": %zu,\n", unique_specs.size());
  std::fprintf(f, "    \"worlds_failed\": %zu,\n", worlds_failed);
  std::fprintf(f, "    \"cache_hits\": %llu,\n",
               static_cast<unsigned long long>(cache_stats.hits));
  std::fprintf(f, "    \"cache_misses\": %llu,\n",
               static_cast<unsigned long long>(cache_stats.misses));
  std::fprintf(f, "    \"cache_evictions\": %llu,\n",
               static_cast<unsigned long long>(cache_stats.evictions));
  if (prev_wall.has_value()) {
    std::fprintf(f, "    \"prev_wall_seconds\": %.6f,\n", *prev_wall);
    std::fprintf(f, "    \"speedup_vs_prev\": %.3f,\n",
                 wall > 0.0 ? *prev_wall / wall : 0.0);
  }
  std::fprintf(f, "    \"jobs_total\": %zu,\n", jobs.size());
  std::fprintf(f, "    \"jobs_skipped\": %zu,\n", skipped);
  std::fprintf(f, "    \"jobs_failed\": %zu\n", failed);
  std::fprintf(f, "  }\n}\n");
  const bool write_failed = std::ferror(f) != 0;
  if (std::fclose(f) != 0 || write_failed) {
    std::fprintf(stderr, "error: write failed for %s\n", tmp.c_str());
    std::remove(tmp.c_str());
    return 1;
  }
  fs::rename(tmp, report_path, ec);
  if (ec) {
    std::fprintf(stderr, "error: rename to %s failed: %s\n",
                 report_path.c_str(), ec.message().c_str());
    std::remove(tmp.c_str());
    return 1;
  }

  obs::write_metrics_json("bench_out/BENCH_sweep.metrics.json");
  obs::write_trace_json("bench_out/BENCH_sweep.trace.json");

  std::printf("\nsweep: %zu jobs (%zu skipped, %zu failed) in %.1f s — "
              "%.1f s (%.1f%%) simulating\n",
              jobs.size(), skipped, failed, wall, cache_stats.sim_seconds,
              sim_fraction * 100.0);
  if (prev_wall.has_value() && wall > 0.0) {
    std::printf("sweep: %.1fx vs previous run (%.1f s)\n", *prev_wall / wall,
                *prev_wall);
  }
  std::printf("JSON: %s\n", report_path.c_str());
  return (failed > 0 || worlds_failed > 0) ? 1 : 0;
}

#!/usr/bin/env bash
# CI driver: builds the release and asan presets, runs the full test
# suite under both (the detector-calibration and detector-power suites
# get their own labelled ASan pass, and the evasion bench's ROC gates
# are checked from BENCH_detector_power.json), gates the observability
# overhead on the bit bench_audit
# writes to bench_out/BENCH_audit.json, re-runs the concurrency-sensitive
# tests (the ThreadPool, the lock-free obs registry, the parallel audit
# pipeline, the columnar-vs-legacy differential suite, the
# fault-injection property suite, and the sharded simulation engine's
# determinism suite plus its bench smoke sweep) under tsan, runs the
# fault-injection
# suite under asan plus the ingestion throughput bench, exercises the
# CNB1 leg (round-trip suite under asan, cnconvert-built fixtures feeding
# the legacy-vs-columnar differential from a binary source, and the 20x
# ingest-throughput gate from bench_dataset_build), runs the cnauditd
# daemon leg (the labelled suite plus the kill-point chaos harness under
# asan, and the >=10x incremental-update gate from bench_daemon), runs
# the cnsweep smoke matrix cold then warm (warm must be all cache hits,
# <10% sim time, byte-identical bench CSVs), and smoke-builds the
# -DCN_OBS_DISABLE=ON configuration.
#
# Usage: tools/ci.sh [--quick]
#   --quick   skip the sanitizer configurations (release build + ctest only)
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 4)"
QUICK=0
[[ "${1:-}" == "--quick" ]] && QUICK=1

run() {
  echo "+ $*" >&2
  "$@"
}

echo "=== release: configure + build + ctest ==="
run cmake --preset release
run cmake --build --preset release -j "${JOBS}"
run ctest --preset release -j "${JOBS}"

if [[ "${QUICK}" == "1" ]]; then
  echo "=== quick mode: skipping sanitizer builds ==="
  exit 0
fi

echo "=== observability overhead gate (bench_audit) ==="
# bench_audit measures the columnar audit with obs on vs off and writes
# obs_overhead_ok (overhead <= 2%) and obs_reports_byte_identical into
# its JSON; a FATAL divergence already exits non-zero above, the gate
# here catches a >2% slowdown that is not otherwise fatal.
run env CN_SCALE=0.3 ./build-release/bench/bench_audit --benchmark_filter='^$'
python3 - <<'EOF'
import json, sys
with open("bench_out/BENCH_audit.json") as f:
    metrics = json.load(f)["metrics"]
for bit in ("obs_overhead_ok", "obs_reports_byte_identical"):
    if metrics.get(bit) != 1.0:
        sys.exit(f"observability gate failed: {bit}={metrics.get(bit)} "
                 f"(overhead {metrics.get('obs_overhead_fraction')})")
print(f"obs overhead {metrics['obs_overhead_fraction']:+.4f} (budget 0.02), "
      "reports byte-identical")
EOF

echo "=== asan+ubsan: configure + build + ctest ==="
run cmake --preset asan
run cmake --build --preset asan -j "${JOBS}"
run ctest --preset asan -j "${JOBS}" -LE calibration

echo "=== detector calibration + power under asan ==="
# The ground-truth calibration suite (planted selfish / low-fee-tolerant
# / honest worlds) and the evasion power suite (theta-throttled
# adversaries, withholding worlds, zero-evasion byte-identity) run in
# their own labelled pass so failures are unmistakably a detector
# regression, not a unit-test flake. CN_SMOKE=1 halves the power
# suite's world durations — the statistical separations it asserts
# survive the shorter sims, and ASan is ~5x slower.
run env CN_SMOKE=1 ctest --preset asan -j "${JOBS}" -L calibration

echo "=== detector power gate (bench_ablation_evasion --smoke) ==="
# The reduced grid (theta in {0,1}, one seed) at the default 0.4 scale
# still enforces the pinned ROC gates in-process (exit non-zero on
# failure); the json check guards the emitted bits so an edit to the
# bench's own enforcement cannot slip through CI.
run ./build-release/bench/bench_ablation_evasion --smoke
python3 - <<'EOF'
import json, sys
with open("bench_out/BENCH_detector_power.json") as f:
    metrics = json.load(f)["metrics"]
if metrics.get("gates_enforced") != 1.0:
    sys.exit("detector power gates were not enforced (scale too small?)")
for bit in ("gate_power_monotone_in_budget", "gate_power_full_selfish",
            "gate_fpr_at_alpha"):
    if metrics.get(bit) != 1.0:
        sys.exit(f"detector power gate failed: {bit}={metrics.get(bit)}")
print(f"power {metrics['power_theta_100']:.2f} at theta=1, "
      f"FPR {metrics['false_positive_rate']:.3f} "
      f"(alpha {metrics['alpha']})")
EOF

echo "=== fault injection: property tests under asan + ingest bench ==="
# Lenient import must survive any seeded corruption asan-clean; strict
# import must pinpoint injected faults (see tests/io/test_fault_injection.cpp).
run ./build-asan/tests/cn_tests_io --gtest_filter='FaultInjection*'
# Strict-vs-lenient ingestion throughput at 1% corruption; emits
# bench_out/BENCH_fault_ingest.json for the perf trajectory.
run ./build-release/bench/bench_fault_ingest

echo "=== CNB1 binary format: round-trip suite under asan ==="
# The CNB1 header/section/corruption suite and the DatasetSource
# sniffing/ownership tests are exactly where a lifetime bug in the
# mmap-backed loader would hide; run them asan-clean.
run ./build-asan/tests/cn_tests_io --gtest_filter='CnbFormat*:DatasetSource*'

echo "=== CNB1 fixtures via cnconvert + audit differential from binary ==="
# Build a binary fixture with the conversion tool, then prove the
# legacy-vs-columnar differential holds when the audit loads from CNB1,
# and that converting back to CSV reads the same report bytes.
CNB_WORK="$(mktemp -d)"
trap 'rm -rf "${CNB_WORK}"' EXIT
run ./build-release/tools/cnaudit simulate --dataset A --seed 11 --scale 0.1 \
    --out "${CNB_WORK}/csv"
run ./build-release/tools/cnconvert --input "${CNB_WORK}/csv" \
    --output "${CNB_WORK}/world.cnb"
# The "loaded ... from <path>" banner names the input path, so drop it
# before comparing reports read from different sources.
./build-release/tools/cnaudit report --input "${CNB_WORK}/world.cnb" \
    --engine legacy | sed '/^loaded /d' > "${CNB_WORK}/legacy.txt"
./build-release/tools/cnaudit report --input "${CNB_WORK}/world.cnb" \
    --engine columnar | sed '/^loaded /d' > "${CNB_WORK}/columnar.txt"
run cmp "${CNB_WORK}/legacy.txt" "${CNB_WORK}/columnar.txt"
run ./build-release/tools/cnconvert --input "${CNB_WORK}/world.cnb" \
    --output "${CNB_WORK}/csv2" --format csv
./build-release/tools/cnaudit report --input "${CNB_WORK}/csv2" \
    --engine columnar | sed '/^loaded /d' > "${CNB_WORK}/columnar2.txt"
run cmp "${CNB_WORK}/columnar.txt" "${CNB_WORK}/columnar2.txt"

echo "=== CNB1 ingest throughput gate (bench_dataset_build) ==="
# The bench exits non-zero below the 20x audit-ready ingest target; the
# json check guards the emitted bit so a silent edit to the bench's own
# gate cannot slip through CI.
run ./build-release/bench/bench_dataset_build --benchmark_filter='^$'
python3 - <<'EOF'
import json, sys
with open("bench_out/BENCH_dataset_build.json") as f:
    metrics = json.load(f)["metrics"]
if metrics.get("ingest_speedup_ok") != 1.0:
    sys.exit(f"CNB1 ingest gate failed: {metrics.get('ingest_speedup')}x "
             "(need >= 20x)")
print(f"CNB1 ingest {metrics['ingest_speedup']:.1f}x CSV "
      f"(raw load {metrics['load_speedup']:.1f}x, "
      f"{metrics['cnb_bytes_per_tx']:.0f} B/tx)")
EOF

echo "=== cnauditd: daemon suite + chaos harness under asan ==="
# The daemon's checkpoint/recovery dance, bounded-queue backpressure,
# and serving thread are the newest crash-and-concurrency surface.
# `-L daemon` picks up cn_tests_daemon plus cli.chaos, whose kill
# points (_exit(137) mid-apply, mid-fsync, mid-rename) emulate SIGKILL
# and require the restarted daemon to converge to byte-identical
# reports — here it drives the asan-built binaries explicitly so a
# heap bug on the recovery path cannot hide behind a passing exit code.
run ctest --preset asan -j "${JOBS}" -L daemon --output-on-failure

echo "=== cnauditd incremental-update gate (bench_daemon) ==="
# One incremental block update must stay >= 10x cheaper than rebuilding
# the report from scratch (the bench exits non-zero below the gate);
# the json check guards the emitted bit like the other perf gates.
run env CN_SCALE=0.15 ./build-release/bench/bench_daemon --benchmark_filter='^$'
python3 - <<'EOF'
import json, sys
with open("bench_out/BENCH_daemon.json") as f:
    metrics = json.load(f)["metrics"]
if metrics.get("incremental_speedup_ok") != 1.0:
    sys.exit(f"daemon incremental gate failed: "
             f"{metrics.get('incremental_speedup')}x (need >= 10x)")
print(f"daemon incremental update {metrics['incremental_speedup']:.1f}x "
      f"rebuild (recovery {metrics['recovery_speedup']:.1f}x, "
      f"{metrics['queries_per_s'] / 1e3:.0f}k queries/s)")
EOF

echo "=== cnsweep: shared-world smoke matrix (cold, then warm) ==="
# The cold run simulates each unique world once into the content-
# addressed cache; the warm rerun must be all cache hits, spend <10% of
# wall time simulating, and reproduce byte-identical bench reports
# (the DESIGN.md §14 contract).
rm -rf bench_out/worlds bench_out/sweep
run ./build-release/tools/cnsweep --smoke
python3 - <<'EOF'
import json, sys
with open("bench_out/BENCH_sweep.json") as f:
    m = json.load(f)["metrics"]
if m["jobs_failed"] or m["worlds_failed"]:
    sys.exit(f"cold sweep had failures: {m}")
if m["cache_misses"] < 1:
    sys.exit("cold sweep simulated nothing — the cache was not cold")
print(f"cold: {m['cache_misses']:.0f} worlds simulated in "
      f"{m['wall_seconds']:.1f}s ({m['sim_fraction'] * 100:.0f}% sim)")
EOF
SWEEP_SNAP="$(mktemp -d)"
cp bench_out/fig03_*.csv bench_out/fig05_*.csv "${SWEEP_SNAP}/"
rm -rf bench_out/sweep  # drop the --resume markers, keep the worlds
run ./build-release/tools/cnsweep --smoke
python3 - <<'EOF'
import json, sys
with open("bench_out/BENCH_sweep.json") as f:
    m = json.load(f)["metrics"]
if m["jobs_failed"] or m["worlds_failed"]:
    sys.exit(f"warm sweep had failures: {m}")
if m["cache_misses"] != 0 or m["cache_hits"] < 1:
    sys.exit(f"warm sweep was not served from cache: hits="
             f"{m['cache_hits']} misses={m['cache_misses']}")
if m["sim_fraction"] >= 0.10:
    sys.exit(f"warm sweep spent {m['sim_fraction'] * 100:.0f}% of wall "
             "time simulating (budget 10%)")
print(f"warm: {m['cache_hits']:.0f} cache hits, 0 misses, "
      f"{m['wall_seconds']:.1f}s "
      f"({m.get('speedup_vs_prev', 0):.1f}x vs cold)")
EOF
for f in "${SWEEP_SNAP}"/*.csv; do
  run cmp "$f" "bench_out/$(basename "$f")"
done
rm -rf "${SWEEP_SNAP}"

echo "=== tsan: configure + build + concurrency tests ==="
run cmake --preset tsan
run cmake --build --preset tsan -j "${JOBS}" --target cn_tests_util cn_tests_core cn_tests_io cn_tests_obs
run ./build-tsan/tests/cn_tests_util --gtest_filter='ThreadPool*'
# The lock-free metric registry (per-thread shards, CAS-installed chunks)
# is exactly the kind of code tsan exists for.
run ./build-tsan/tests/cn_tests_obs
# The parallel audit fan-outs, the columnar-vs-legacy differential suite
# (parallel AuditDataset build + staged pipeline), and the fault-injection
# property tests all drive the thread pool; run them race-checked.
run ./build-tsan/tests/cn_tests_core --gtest_filter='AuditPipeline*:AuditDifferential*:AuditStages*'
run ./build-tsan/tests/cn_tests_io --gtest_filter='FaultInjection*'

echo "=== tsan: sharded simulation engine ==="
# The sharded engine's cross-shard hand-offs (per-lane message queues
# drained at the window barrier, the observer lane, the merged event
# order) are the newest concurrent code in the tree; run the
# determinism suite and the scaling bench's smoke sweep race-checked.
run cmake --build --preset tsan -j "${JOBS}" --target cn_tests_sim_determinism bench_sim_scale
run ./build-tsan/tests/cn_tests_sim_determinism
run ./build-tsan/bench/bench_sim_scale --smoke

echo "=== obs disabled: -DCN_OBS_DISABLE=ON compiles and passes ==="
# The compile-time kill switch turns every handle into an empty inline
# body; verify that configuration still builds and that the obs suite's
# disabled-mode expectations (empty snapshot, inert spans) hold.
run cmake -B build-obsoff -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DCN_OBS_DISABLE=ON
run cmake --build build-obsoff -j "${JOBS}" --target cn_tests_obs cn_tests_util
run ./build-obsoff/tests/cn_tests_obs
run ./build-obsoff/tests/cn_tests_util --gtest_filter='ThreadPool*'

echo "=== all configurations passed ==="

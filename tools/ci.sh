#!/usr/bin/env bash
# CI driver: builds the release and asan presets, runs the full test
# suite under both, re-runs the concurrency-sensitive tests (the
# ThreadPool, the parallel audit pipeline, the columnar-vs-legacy
# differential suite, and the fault-injection property suite) under
# tsan, and runs the fault-injection suite under asan plus the
# ingestion throughput bench (bench_out/BENCH_fault_ingest.json).
#
# Usage: tools/ci.sh [--quick]
#   --quick   skip the sanitizer configurations (release build + ctest only)
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 4)"
QUICK=0
[[ "${1:-}" == "--quick" ]] && QUICK=1

run() {
  echo "+ $*" >&2
  "$@"
}

echo "=== release: configure + build + ctest ==="
run cmake --preset release
run cmake --build --preset release -j "${JOBS}"
run ctest --preset release -j "${JOBS}"

if [[ "${QUICK}" == "1" ]]; then
  echo "=== quick mode: skipping sanitizer builds ==="
  exit 0
fi

echo "=== asan+ubsan: configure + build + ctest ==="
run cmake --preset asan
run cmake --build --preset asan -j "${JOBS}"
run ctest --preset asan -j "${JOBS}"

echo "=== fault injection: property tests under asan + ingest bench ==="
# Lenient import must survive any seeded corruption asan-clean; strict
# import must pinpoint injected faults (see tests/io/test_fault_injection.cpp).
run ./build-asan/tests/cn_tests_io --gtest_filter='FaultInjection*'
# Strict-vs-lenient ingestion throughput at 1% corruption; emits
# bench_out/BENCH_fault_ingest.json for the perf trajectory.
run ./build-release/bench/bench_fault_ingest

echo "=== tsan: configure + build + concurrency tests ==="
run cmake --preset tsan
run cmake --build --preset tsan -j "${JOBS}" --target cn_tests_util cn_tests_core cn_tests_io
run ./build-tsan/tests/cn_tests_util --gtest_filter='ThreadPool*'
# The parallel audit fan-outs, the columnar-vs-legacy differential suite
# (parallel AuditDataset build + staged pipeline), and the fault-injection
# property tests all drive the thread pool; run them race-checked.
run ./build-tsan/tests/cn_tests_core --gtest_filter='AuditPipeline*:AuditDifferential*:AuditStages*'
run ./build-tsan/tests/cn_tests_io --gtest_filter='FaultInjection*'

echo "=== all configurations passed ==="

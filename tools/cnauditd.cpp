// cnauditd — the always-on chain-neutrality audit daemon.
//
//   cnauditd --input PATH [--policy strict|lenient]
//            [--checkpoint PATH] [--checkpoint-every N] [--seal-every N]
//            [--threads 0|1] [--oneshot] [--out PATH]
//            [--serve] [--http-port N]
//            [--read-deadline-ms N] [--metrics-out PATH]
//
// Consumes the data set as an ordered event stream (blocks merged with
// Mempool snapshots), applies each event to incremental audit
// accumulators, and checkpoints progress atomically every
// --checkpoint-every blocks. Killed at ANY instant — including mid-
// checkpoint — a restart with the same flags resumes from the last
// durable checkpoint and produces the same final report, byte for byte,
// as an uninterrupted run (tools/test_chaos.cmake proves this under
// armed kill points; see CN_CRASH_AT in src/testing/crash_points.hpp).
//
//   --oneshot (default)  drain the feed, write the sealed JSON report
//                        to --out (stdout when omitted), exit.
//   --serve              also bind 127.0.0.1:--http-port (0 =
//                        ephemeral; the bound port is printed) serving
//                        /report /healthz /readyz /metrics, and keep
//                        serving after the feed drains until SIGINT or
//                        SIGTERM.
//   --threads 1          synchronous pull-apply loop (default);
//   --threads 0          pipelined: ingest thread with per-read
//                        deadline + retry/backoff, bounded queue with
//                        blocking backpressure, apply thread, watchdog
//                        thread that fails /readyz when apply stalls.
//                        Reports are identical across both.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <thread>

#include "btc/coinbase_tags.hpp"
#include "daemon/daemon.hpp"
#include "io/dataset_source.hpp"
#include "io/stream_source.hpp"
#include "obs/export.hpp"
#include "obs/registry.hpp"
#include "testing/crash_points.hpp"

namespace {

using namespace cn;

/// "--key value" / "--key=value" option map; positional args rejected.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        ok_ = false;
        bad_ = key;
        return;
      }
      if (const auto eq = key.find('='); eq != std::string::npos) {
        values_[key.substr(2, eq - 2)] = key.substr(eq + 1);
        continue;
      }
      // Valueless switches.
      const std::string name = key.substr(2);
      if (name == "oneshot" || name == "serve") {
        values_[name] = "1";
        continue;
      }
      if (i + 1 >= argc) {
        ok_ = false;
        bad_ = key;
        return;
      }
      values_[name] = argv[++i];
    }
  }

  bool ok() const { return ok_; }
  const std::string& bad() const { return bad_; }
  bool has(const std::string& key) const { return values_.count(key) != 0; }

  std::optional<std::string> get(const std::string& key) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return std::nullopt;
    return it->second;
  }
  std::string get_or(const std::string& key, const std::string& fallback) const {
    return get(key).value_or(fallback);
  }
  std::uint64_t get_u64(const std::string& key, std::uint64_t fallback) const {
    const auto v = get(key);
    return v ? std::strtoull(v->c_str(), nullptr, 10) : fallback;
  }

 private:
  std::map<std::string, std::string> values_;
  bool ok_ = true;
  std::string bad_;
};

int usage() {
  std::fprintf(
      stderr,
      "usage: cnauditd --input PATH [--policy strict|lenient]\n"
      "                [--checkpoint PATH] [--checkpoint-every N] [--seal-every N]\n"
      "                [--threads 0|1] [--oneshot] [--out PATH]\n"
      "                [--serve] [--http-port N]\n"
      "                [--read-deadline-ms N] [--metrics-out PATH]\n");
  return 2;
}

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

bool write_file(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv, 1);
  if (!args.ok()) {
    std::fprintf(stderr, "cnauditd: bad argument '%s'\n", args.bad().c_str());
    return usage();
  }
  const auto input = args.get("input");
  if (!input) {
    std::fprintf(stderr, "cnauditd: --input PATH is required\n");
    return usage();
  }
  const std::string policy_s = args.get_or("policy", "strict");
  if (policy_s != "strict" && policy_s != "lenient") {
    std::fprintf(stderr, "cnauditd: unknown --policy '%s'\n", policy_s.c_str());
    return usage();
  }
  const io::LoadPolicy policy =
      policy_s == "strict" ? io::LoadPolicy::kStrict : io::LoadPolicy::kLenient;

  testing::arm_crash_points_from_env();

  auto loaded = io::open_dataset(*input, policy);
  if (!loaded.report.clean()) {
    std::fprintf(stderr, "cnauditd: %s: %s\n", input->c_str(),
                 loaded.report.summary().c_str());
  }
  if (!loaded) {
    std::fprintf(stderr, "cnauditd: failed to load a data set from %s\n",
                 input->c_str());
    return 1;
  }
  const io::DatasetHandle& handle = *loaded.value;

  daemon::DaemonConfig config;
  config.checkpoint_path = args.get_or("checkpoint", "");
  config.checkpoint_every_blocks = args.get_u64("checkpoint-every", 32);
  config.seal_every_blocks = args.get_u64("seal-every", 16);
  config.read_deadline_ms =
      static_cast<int>(args.get_u64("read-deadline-ms", 1000));
  config.threads = static_cast<int>(args.get_u64("threads", 1));
  if (config.threads != 0 && config.threads != 1) {
    std::fprintf(stderr, "cnauditd: --threads must be 0 or 1\n");
    return usage();
  }

  const auto registry = btc::CoinbaseTagRegistry::paper_registry();
  io::ReplaySource replay(handle);
  core::FirstSeenFn first_seen;
  if (handle.first_seen.has_value()) {
    const io::FirstSeenMap* map = &*handle.first_seen;
    first_seen = [map](const btc::Txid& id) -> std::optional<SimTime> {
      const auto it = map->find(id);
      if (it == map->end()) return std::nullopt;
      return it->second;
    };
  }

  daemon::AuditDaemon daemon(replay, registry, first_seen, config);
  std::string recover_msg;
  daemon.recover(&recover_msg);
  std::fprintf(stderr, "cnauditd: %s (%llu events in feed)\n",
               recover_msg.c_str(),
               static_cast<unsigned long long>(replay.size()));

  const bool serve = args.has("serve");
  daemon::HttpServer http;
  if (serve) {
    std::string error;
    const auto port = static_cast<std::uint16_t>(args.get_u64("http-port", 0));
    if (!http.start(port, [&daemon](const daemon::HttpRequest& r) {
          return daemon.handle(r);
        }, &error)) {
      std::fprintf(stderr, "cnauditd: http: %s\n", error.c_str());
      return 1;
    }
    std::fprintf(stderr, "cnauditd: serving on 127.0.0.1:%u\n", http.port());
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
  }

  if (config.threads == 1) {
    daemon.run_to_end();
  } else {
    daemon.start();
    daemon.join();
  }

  int rc = 0;
  if (!daemon.healthy()) {
    std::fprintf(stderr, "cnauditd: ingest failed (fatal error)\n");
    rc = 1;
  }

  const std::string report = daemon.seal_report_json();
  const daemon::DaemonStats stats = daemon.stats();
  std::fprintf(stderr,
               "cnauditd: applied %llu events (%llu blocks, %llu snapshots), "
               "%llu checkpoints, %llu seals\n",
               static_cast<unsigned long long>(stats.events_applied),
               static_cast<unsigned long long>(stats.blocks_applied),
               static_cast<unsigned long long>(stats.snapshots_applied),
               static_cast<unsigned long long>(stats.checkpoints_written),
               static_cast<unsigned long long>(stats.seals));

  if (const auto out = args.get("out")) {
    if (!write_file(*out, report)) {
      std::fprintf(stderr, "cnauditd: could not write %s\n", out->c_str());
      rc = 1;
    }
  } else if (!serve) {
    std::fwrite(report.data(), 1, report.size(), stdout);
    std::fputc('\n', stdout);
  }

  if (serve) {
    std::fprintf(stderr, "cnauditd: feed drained; serving until SIGINT/SIGTERM\n");
    while (g_stop == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    http.stop();
  }

  if (const auto metrics = args.get("metrics-out")) {
    if (!obs::write_metrics_json(*metrics)) {
      std::fprintf(stderr, "cnauditd: could not write %s\n", metrics->c_str());
    }
  }
  return rc;
}

// cnconvert — convert data sets between the CSV export layout and the
// CNB1 binary columnar format (io/cnb.hpp).
//
//   cnconvert --input PATH --output PATH [--format csv|cnb]
//             [--policy strict|lenient] [--no-derived] [--threads N]
//
// The input format is sniffed (directory = CSV, magic/.cnb = CNB1); the
// output format defaults to cnb unless --output names a directory-style
// path, and --format overrides it. Converting CSV -> cnb embeds the
// derived core::AuditDataset columns (built under the paper registry
// and keyed by its fingerprint) so a later `cnaudit report` can skip
// the dataset build stage; --no-derived writes the relational sections
// only. Converting -> csv writes the standard export directory
// (blocks/txs/inputs/outputs + any snapshot/first-seen series the
// source carried). Both directions are atomic: bytes land in temporary
// files renamed into place only after every write succeeded.
#include <cstdio>
#include <cstring>
#include <map>
#include <optional>
#include <string>

#include "btc/coinbase_tags.hpp"
#include "core/audit_dataset.hpp"
#include "core/wallet_inference.hpp"
#include "io/cnb.hpp"
#include "io/dataset_io.hpp"
#include "io/dataset_source.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace cn;

int usage() {
  std::fprintf(stderr,
               "usage: cnconvert --input PATH --output PATH [--format csv|cnb]\n"
               "                 [--policy strict|lenient] [--no-derived]\n"
               "                 [--threads N]\n"
               "converts a CSV export directory to a CNB1 file or back;\n"
               "--no-derived skips embedding the derived audit columns\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> args;
  bool no_derived = false;
  for (int i = 1; i < argc; ++i) {
    const std::string key = argv[i];
    if (key == "--no-derived") {
      no_derived = true;
      continue;
    }
    if (key.rfind("--", 0) != 0 || i + 1 >= argc) return usage();
    args[key.substr(2)] = argv[++i];
  }
  if (!args.count("input") || !args.count("output")) return usage();
  const std::string& in_path = args["input"];
  const std::string& out_path = args["output"];

  io::LoadPolicy policy = io::LoadPolicy::kStrict;
  if (args.count("policy")) {
    if (args["policy"] == "lenient") {
      policy = io::LoadPolicy::kLenient;
    } else if (args["policy"] != "strict") {
      std::fprintf(stderr, "cnconvert: unknown --policy '%s'\n",
                   args["policy"].c_str());
      return usage();
    }
  }

  // Output format: explicit flag first, else cnb unless the target looks
  // like (or already is) a directory.
  io::DatasetFormat out_format = io::DatasetFormat::kCnb;
  if (args.count("format")) {
    const auto parsed = io::parse_dataset_format(args["format"]);
    if (!parsed) {
      std::fprintf(stderr, "cnconvert: unknown --format '%s' (want csv|cnb)\n",
                   args["format"].c_str());
      return usage();
    }
    out_format = *parsed;
  } else if (const auto sniffed = io::sniff_dataset_format(out_path);
             sniffed == io::DatasetFormat::kCsv) {
    out_format = io::DatasetFormat::kCsv;
  }

  auto result = io::open_dataset(in_path, policy);
  if (!result.report.clean()) {
    std::fprintf(stderr, "cnconvert: %s: %s\n", in_path.c_str(),
                 result.report.summary().c_str());
  }
  if (!result) {
    std::fprintf(stderr, "cnconvert: failed to load a data set from %s\n",
                 in_path.c_str());
    return 1;
  }
  io::DatasetHandle& data = *result;
  std::printf("loaded %zu blocks, %llu transactions from %s (%s)\n",
              data.chain.size(),
              static_cast<unsigned long long>(data.chain.total_tx_count()),
              in_path.c_str(), io::to_string(data.format));

  std::string error;
  if (out_format == io::DatasetFormat::kCsv) {
    if (!io::export_chain(data.chain, out_path, &error)) {
      std::fprintf(stderr, "cnconvert: %s\n", error.c_str());
      return 1;
    }
    if (data.snapshots.has_value() &&
        !io::export_snapshots(*data.snapshots, out_path + "/snapshots.csv",
                              &error)) {
      std::fprintf(stderr, "cnconvert: %s\n", error.c_str());
      return 1;
    }
    if (data.first_seen.has_value() &&
        !io::export_first_seen(*data.first_seen, out_path + "/first_seen.csv",
                               &error)) {
      std::fprintf(stderr, "cnconvert: %s\n", error.c_str());
      return 1;
    }
    std::printf("wrote CSV export directory %s\n", out_path.c_str());
    return 0;
  }

  if (no_derived) {
    data.audit_dataset.reset();
    data.registry_fingerprint = 0;
  } else if (!data.audit_dataset.has_value()) {
    // Build the derived columns once at conversion time so every later
    // load skips the audit pipeline's dominant stage.
    const auto registry = btc::CoinbaseTagRegistry::paper_registry();
    const core::PoolAttribution attribution(data.chain, registry);
    unsigned threads = 0;
    if (args.count("threads")) {
      threads = static_cast<unsigned>(
          std::strtoul(args["threads"].c_str(), nullptr, 10));
    }
    util::ThreadPool workers(threads);
    data.audit_dataset = core::AuditDataset::build(
        data.chain, attribution, workers,
        data.addresses.size() > 0 ? &data.addresses : nullptr);
    data.registry_fingerprint = registry.fingerprint();
  }

  if (!io::write_cnb(data, out_path, &error)) {
    std::fprintf(stderr, "cnconvert: %s\n", error.c_str());
    return 1;
  }
  const auto info = io::inspect_cnb(out_path, &error);
  if (!info) {
    std::fprintf(stderr, "cnconvert: wrote %s but cannot inspect it: %s\n",
                 out_path.c_str(), error.c_str());
    return 1;
  }
  std::printf("wrote %s: %zu section(s), %llu bytes%s\n", out_path.c_str(),
              info->sections.size(),
              static_cast<unsigned long long>(info->file_size),
              (info->flags & io::kCnbFlagAuditDataset) != 0
                  ? " (derived audit columns embedded)"
                  : "");
  return 0;
}

# CTest script: exercises the cnaudit CLI end to end
# (simulate -> export -> audit/ppe/neutrality/darkfee on the export).
if(NOT DEFINED CNAUDIT)
  message(FATAL_ERROR "pass -DCNAUDIT=<path>")
endif()

set(workdir "${CMAKE_CURRENT_BINARY_DIR}/cnaudit_cli_test")
file(REMOVE_RECURSE "${workdir}")

execute_process(
  COMMAND "${CNAUDIT}" simulate --dataset A --seed 11 --scale 0.1 --out "${workdir}"
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "simulate failed (${rc}): ${out}${err}")
endif()

foreach(subcommand audit report ppe neutrality darkfee)
  execute_process(
    COMMAND "${CNAUDIT}" ${subcommand} --data "${workdir}"
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${subcommand} failed (${rc}): ${out}${err}")
  endif()
  string(FIND "${out}" "loaded" found)
  if(found EQUAL -1)
    message(FATAL_ERROR "${subcommand} did not load the export: ${out}")
  endif()
endforeach()

# Stage selection: a deselected stage must be visibly [SKIPPED], and an
# unknown stage name must be rejected.
execute_process(
  COMMAND "${CNAUDIT}" report --data "${workdir}" --stages norm-stats,darkfee
          --timings on
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "report --stages failed (${rc}): ${out}${err}")
endif()
string(FIND "${out}" "[SKIPPED]" found)
if(found EQUAL -1)
  message(FATAL_ERROR "report --stages printed no [SKIPPED] marker: ${out}")
endif()
string(FIND "${out}" "stage timings" found)
if(found EQUAL -1)
  message(FATAL_ERROR "report --timings on printed no stage-timings footer: ${out}")
endif()
execute_process(
  COMMAND "${CNAUDIT}" report --data "${workdir}" --stages frobnicate
  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_VARIABLE err)
if(rc EQUAL 0)
  message(FATAL_ERROR "unknown --stages name unexpectedly succeeded")
endif()
string(FIND "${err}" "unknown stage" found)
if(found EQUAL -1)
  message(FATAL_ERROR "unknown stage error missing: ${err}")
endif()

# The legacy oracle engine must render the exact same report bytes.
execute_process(
  COMMAND "${CNAUDIT}" report --data "${workdir}" --engine legacy
  RESULT_VARIABLE rc OUTPUT_VARIABLE legacy_out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "report --engine legacy failed (${rc}): ${legacy_out}${err}")
endif()
execute_process(
  COMMAND "${CNAUDIT}" report --data "${workdir}" --engine columnar
  RESULT_VARIABLE rc OUTPUT_VARIABLE columnar_out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "report --engine columnar failed (${rc}): ${columnar_out}${err}")
endif()
if(NOT columnar_out STREQUAL legacy_out)
  message(FATAL_ERROR "legacy and columnar reports diverged:\n--- legacy ---\n${legacy_out}\n--- columnar ---\n${columnar_out}")
endif()

# Unknown command must fail with usage.
execute_process(COMMAND "${CNAUDIT}" frobnicate RESULT_VARIABLE rc
                OUTPUT_QUIET ERROR_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "unknown command unexpectedly succeeded")
endif()

# Fault-injection round trip: corrupt the export, then lenient import
# must still produce a report while strict import must refuse it.
if(DEFINED CNINJECT)
  set(dirty "${workdir}_dirty")
  file(REMOVE_RECURSE "${dirty}")
  execute_process(
    COMMAND "${CNINJECT}" --in "${workdir}" --out "${dirty}"
            --seed 7 --rate 0.02 --kinds corrupt --gaps 1
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "cninject failed (${rc}): ${out}${err}")
  endif()
  string(FIND "${out}" "corrupt-field" found)
  if(found EQUAL -1)
    message(FATAL_ERROR "cninject injected no corrupt-field faults: ${out}")
  endif()

  execute_process(
    COMMAND "${CNAUDIT}" report --data "${dirty}" --policy lenient
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "lenient report on dirty data failed (${rc}): ${out}${err}")
  endif()
  string(FIND "${out}" "data quality" found)
  if(found EQUAL -1)
    message(FATAL_ERROR "lenient report printed no data-quality line: ${out}")
  endif()

  execute_process(
    COMMAND "${CNAUDIT}" report --data "${dirty}" --policy strict
    RESULT_VARIABLE rc OUTPUT_QUIET ERROR_VARIABLE err)
  if(rc EQUAL 0)
    message(FATAL_ERROR "strict report on dirty data unexpectedly succeeded")
  endif()
  string(FIND "${err}" "first:" found)
  if(found EQUAL -1)
    message(FATAL_ERROR "strict failure did not pinpoint a defect: ${err}")
  endif()
  file(REMOVE_RECURSE "${dirty}")
endif()

file(REMOVE_RECURSE "${workdir}")

# CTest script: exercises the cnaudit CLI end to end
# (simulate -> export -> audit/ppe/neutrality/darkfee on the export).
if(NOT DEFINED CNAUDIT)
  message(FATAL_ERROR "pass -DCNAUDIT=<path>")
endif()

set(workdir "${CMAKE_CURRENT_BINARY_DIR}/cnaudit_cli_test")
file(REMOVE_RECURSE "${workdir}")

execute_process(
  COMMAND "${CNAUDIT}" simulate --dataset A --seed 11 --scale 0.1 --out "${workdir}"
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "simulate failed (${rc}): ${out}${err}")
endif()

foreach(subcommand audit report ppe neutrality darkfee)
  execute_process(
    COMMAND "${CNAUDIT}" ${subcommand} --data "${workdir}"
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${subcommand} failed (${rc}): ${out}${err}")
  endif()
  string(FIND "${out}" "loaded" found)
  if(found EQUAL -1)
    message(FATAL_ERROR "${subcommand} did not load the export: ${out}")
  endif()
endforeach()

# Stage selection: a deselected stage must be visibly [SKIPPED], and an
# unknown stage name must be rejected.
execute_process(
  COMMAND "${CNAUDIT}" report --data "${workdir}" --stages norm-stats,darkfee
          --timings on
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "report --stages failed (${rc}): ${out}${err}")
endif()
string(FIND "${out}" "[SKIPPED]" found)
if(found EQUAL -1)
  message(FATAL_ERROR "report --stages printed no [SKIPPED] marker: ${out}")
endif()
string(FIND "${out}" "stage timings" found)
if(found EQUAL -1)
  message(FATAL_ERROR "report --timings on printed no stage-timings footer: ${out}")
endif()
execute_process(
  COMMAND "${CNAUDIT}" report --data "${workdir}" --stages frobnicate
  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_VARIABLE err)
if(rc EQUAL 0)
  message(FATAL_ERROR "unknown --stages name unexpectedly succeeded")
endif()
string(FIND "${err}" "unknown stage" found)
if(found EQUAL -1)
  message(FATAL_ERROR "unknown stage error missing: ${err}")
endif()

# The legacy oracle engine must render the exact same report bytes.
execute_process(
  COMMAND "${CNAUDIT}" report --data "${workdir}" --engine legacy
  RESULT_VARIABLE rc OUTPUT_VARIABLE legacy_out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "report --engine legacy failed (${rc}): ${legacy_out}${err}")
endif()
execute_process(
  COMMAND "${CNAUDIT}" report --data "${workdir}" --engine columnar
  RESULT_VARIABLE rc OUTPUT_VARIABLE columnar_out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "report --engine columnar failed (${rc}): ${columnar_out}${err}")
endif()
if(NOT columnar_out STREQUAL legacy_out)
  message(FATAL_ERROR "legacy and columnar reports diverged:\n--- legacy ---\n${legacy_out}\n--- columnar ---\n${columnar_out}")
endif()

# Unknown command must fail with usage.
execute_process(COMMAND "${CNAUDIT}" frobnicate RESULT_VARIABLE rc
                OUTPUT_QUIET ERROR_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "unknown command unexpectedly succeeded")
endif()

# CNB1 conversion round trip: CSV -> cnb -> CSV, with the audit reading
# identical report bytes from all three sources via the unified --input.
# The "loaded ... from <path>" banner names the input path, so it is
# stripped before the byte comparison; everything below it must match.
function(strip_loaded_banner report out_var)
  string(REGEX REPLACE "^loaded [^\n]*\n" "" report "${report}")
  set("${out_var}" "${report}" PARENT_SCOPE)
endfunction()
if(DEFINED CNCONVERT)
  set(cnb "${workdir}.cnb")
  set(csv2 "${workdir}_from_cnb")
  file(REMOVE "${cnb}")
  file(REMOVE_RECURSE "${csv2}")
  execute_process(
    COMMAND "${CNCONVERT}" --input "${workdir}" --output "${cnb}"
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "cnconvert csv->cnb failed (${rc}): ${out}${err}")
  endif()
  execute_process(
    COMMAND "${CNAUDIT}" report --input "${workdir}"
    RESULT_VARIABLE rc OUTPUT_VARIABLE csv_report ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "report --input csv failed (${rc}): ${err}")
  endif()
  strip_loaded_banner("${csv_report}" csv_report)
  execute_process(
    COMMAND "${CNAUDIT}" report --input "${cnb}"
    RESULT_VARIABLE rc OUTPUT_VARIABLE cnb_report ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "report --input cnb failed (${rc}): ${err}")
  endif()
  strip_loaded_banner("${cnb_report}" cnb_report)
  if(NOT cnb_report STREQUAL csv_report)
    message(FATAL_ERROR "CNB1 report diverged from the CSV report:\n--- csv ---\n${csv_report}\n--- cnb ---\n${cnb_report}")
  endif()
  execute_process(
    COMMAND "${CNCONVERT}" --input "${cnb}" --output "${csv2}" --format csv
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "cnconvert cnb->csv failed (${rc}): ${out}${err}")
  endif()
  execute_process(
    COMMAND "${CNAUDIT}" report --input "${csv2}"
    RESULT_VARIABLE rc OUTPUT_VARIABLE csv2_report ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "report --input converted-csv failed (${rc}): ${err}")
  endif()
  strip_loaded_banner("${csv2_report}" csv2_report)
  if(NOT csv2_report STREQUAL csv_report)
    message(FATAL_ERROR "round-tripped CSV report diverged from the original")
  endif()
  file(REMOVE "${cnb}")
  file(REMOVE_RECURSE "${csv2}")
endif()

# Fault-injection round trip: corrupt the export, then lenient import
# must still produce a report while strict import must refuse it.
if(DEFINED CNINJECT)
  set(dirty "${workdir}_dirty")
  file(REMOVE_RECURSE "${dirty}")
  execute_process(
    COMMAND "${CNINJECT}" --in "${workdir}" --out "${dirty}"
            --seed 7 --rate 0.02 --kinds corrupt --gaps 1
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "cninject failed (${rc}): ${out}${err}")
  endif()
  string(FIND "${out}" "corrupt-field" found)
  if(found EQUAL -1)
    message(FATAL_ERROR "cninject injected no corrupt-field faults: ${out}")
  endif()

  execute_process(
    COMMAND "${CNAUDIT}" report --data "${dirty}" --policy lenient
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "lenient report on dirty data failed (${rc}): ${out}${err}")
  endif()
  string(FIND "${out}" "data quality" found)
  if(found EQUAL -1)
    message(FATAL_ERROR "lenient report printed no data-quality line: ${out}")
  endif()

  execute_process(
    COMMAND "${CNAUDIT}" report --data "${dirty}" --policy strict
    RESULT_VARIABLE rc OUTPUT_QUIET ERROR_VARIABLE err)
  if(rc EQUAL 0)
    message(FATAL_ERROR "strict report on dirty data unexpectedly succeeded")
  endif()
  string(FIND "${err}" "first:" found)
  if(found EQUAL -1)
    message(FATAL_ERROR "strict failure did not pinpoint a defect: ${err}")
  endif()
  file(REMOVE_RECURSE "${dirty}")
endif()

file(REMOVE_RECURSE "${workdir}")

# CTest script: exercises the cnaudit CLI end to end
# (simulate -> export -> audit/ppe/neutrality/darkfee on the export).
if(NOT DEFINED CNAUDIT)
  message(FATAL_ERROR "pass -DCNAUDIT=<path>")
endif()

set(workdir "${CMAKE_CURRENT_BINARY_DIR}/cnaudit_cli_test")
file(REMOVE_RECURSE "${workdir}")

execute_process(
  COMMAND "${CNAUDIT}" simulate --dataset A --seed 11 --scale 0.1 --out "${workdir}"
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "simulate failed (${rc}): ${out}${err}")
endif()

foreach(subcommand audit report ppe neutrality darkfee)
  execute_process(
    COMMAND "${CNAUDIT}" ${subcommand} --data "${workdir}"
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${subcommand} failed (${rc}): ${out}${err}")
  endif()
  string(FIND "${out}" "loaded" found)
  if(found EQUAL -1)
    message(FATAL_ERROR "${subcommand} did not load the export: ${out}")
  endif()
endforeach()

# Unknown command must fail with usage.
execute_process(COMMAND "${CNAUDIT}" frobnicate RESULT_VARIABLE rc
                OUTPUT_QUIET ERROR_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "unknown command unexpectedly succeeded")
endif()

file(REMOVE_RECURSE "${workdir}")

// cnaudit — command-line front end to the chainneutrality library.
//
//   cnaudit simulate  --dataset A|B|C [--seed N] [--scale X]
//                     [--threads N] --out DIR
//       Simulate a data set and export it (blocks/txs/inputs/outputs CSV
//       plus Mempool snapshots and the observer's first-seen log).
//       --threads 0 runs the sharded engine on all hardware threads
//       (deterministic for a fixed seed); the default 1 is the serial
//       engine, byte-identical to the pre-sharding simulator.
//
//   cnaudit audit      --input PATH [--alpha P] [--min-share F]
//       Load a data set and run the §5 cross-pool differential-
//       prioritization audit (Table 2 style), printing findings.
//
//   cnaudit report     --input PATH [--alpha P] [--threads N]
//                      [--min-coverage F] [--stages CSV]
//                      [--engine columnar|legacy] [--timings on|off]
//       The whole §4-§5 methodology in one shot (run_full_audit):
//       PPE, cross-pool findings with bootstrap CIs, dark-fee
//       suspicion, and the neutrality scorecard. When the data set
//       carries Mempool snapshots / first-seen series they are graded
//       into a data-quality report: blocks under --min-coverage are
//       masked from the norm statistics and findings resting on them
//       are downgraded to "insufficient data". --stages selects which
//       analysis stages run (comma-separated names from
//       audit_stage_names(); skipped stages print as [SKIPPED]);
//       --engine legacy runs the pre-columnar oracle instead;
//       --timings on appends the per-stage wall-time footer (off by
//       default so the output stays byte-reproducible run to run).
//
// Every data-loading subcommand takes --input PATH: either a CSV export
// directory or a CNB1 binary columnar file (io/cnb.hpp). The format is
// sniffed from the path; --format csv|cnb overrides the sniff. --data is
// the historical alias for --input. A CNB1 file that embeds derived
// audit columns (cnconvert's default) lets `report` skip the dataset
// build stage outright. All of them take --policy strict|lenient
// (default strict). Strict aborts at the first defective row or section
// and pinpoints it; lenient skips or repairs defects, prints a
// diagnostic summary, and still loads the data set.
//
// Observability (DESIGN.md §10): every subcommand accepts
//   --metrics-out PATH   write the cn::obs metric registry as JSON after
//                        the command finishes; the span timeline goes to
//                        PATH with ".json" replaced by ".trace.json"
//                        (Chrome trace format) unless --trace-out PATH
//                        overrides it.
//   --obs on|off         runtime switch (default on); off makes every
//                        metric/span a no-op and the exports empty.
// Options may be spelled "--key value" or "--key=value".
//
//   cnaudit neutrality --input PATH
//       Print the per-pool chain-neutrality scorecard (§6.1).
//
//   cnaudit ppe        --input PATH
//       Norm-adherence summary: PPE distribution over all blocks and the
//       top pools (Figure 7 style).
//
//   cnaudit darkfee    --input PATH [--pool NAME] [--sppe T]
//       Flag suspected dark-fee (accelerated) transactions by SPPE
//       (Table 4's detector; validation against a service API requires
//       the service, so only counts and positions are reported).
//
// Every subcommand works on exported data, so audits can be re-run (or
// written by others, e.g. in Python against the same CSVs) without
// re-simulating.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/audit_pipeline.hpp"
#include "core/darkfee.hpp"
#include "core/neutrality.hpp"
#include "core/ppe.hpp"
#include "core/prio_test.hpp"
#include "core/report.hpp"
#include "core/sppe.hpp"
#include "core/wallet_inference.hpp"
#include "io/dataset_io.hpp"
#include "io/dataset_source.hpp"
#include "obs/export.hpp"
#include "obs/registry.hpp"
#include "sim/dataset.hpp"
#include "stats/descriptive.hpp"
#include "stats/ecdf.hpp"
#include "util/strings.hpp"

namespace {

using namespace cn;

/// "--key value" / "--key=value" option map; positional args rejected.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        ok_ = false;
        bad_ = key;
        return;
      }
      if (const auto eq = key.find('='); eq != std::string::npos) {
        values_[key.substr(2, eq - 2)] = key.substr(eq + 1);
        continue;
      }
      if (i + 1 >= argc) {
        ok_ = false;
        bad_ = key;
        return;
      }
      values_[key.substr(2)] = argv[++i];
    }
  }

  bool ok() const { return ok_; }
  const std::string& bad() const { return bad_; }

  std::optional<std::string> get(const std::string& key) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return std::nullopt;
    return it->second;
  }
  std::string get_or(const std::string& key, const std::string& fallback) const {
    return get(key).value_or(fallback);
  }
  double get_double(const std::string& key, double fallback) const {
    const auto v = get(key);
    return v ? std::strtod(v->c_str(), nullptr) : fallback;
  }
  std::uint64_t get_u64(const std::string& key, std::uint64_t fallback) const {
    const auto v = get(key);
    return v ? std::strtoull(v->c_str(), nullptr, 10) : fallback;
  }

 private:
  std::map<std::string, std::string> values_;
  bool ok_ = true;
  std::string bad_;
};

int usage() {
  std::fprintf(stderr,
               "usage: cnaudit <simulate|audit|report|neutrality|ppe|darkfee> [--key value ...]\n"
               "  simulate   --dataset A|B|C [--seed N] [--scale X] [--threads N]\n"
               "             [--timeout-s S] --out DIR\n"
               "  audit      --input PATH [--alpha P] [--min-share F]\n"
               "  report     --input PATH [--alpha P] [--threads N] [--min-coverage F]\n"
               "             [--stages CSV] [--engine columnar|legacy] [--timings on|off]\n"
               "  neutrality --input PATH\n"
               "  ppe        --input PATH\n"
               "  darkfee    --input PATH [--pool NAME] [--sppe T]\n"
               "--input takes a CSV export directory or a .cnb file (sniffed;\n"
               "--format csv|cnb overrides, --data is a deprecated alias) and\n"
               "commands also take --policy strict|lenient (default strict)\n"
               "every command takes --metrics-out PATH [--trace-out PATH] [--obs on|off]\n");
  return 2;
}

std::optional<io::LoadPolicy> parse_policy(const Args& args) {
  const std::string s = args.get_or("policy", "strict");
  if (s == "strict") return io::LoadPolicy::kStrict;
  if (s == "lenient") return io::LoadPolicy::kLenient;
  std::fprintf(stderr, "cnaudit: unknown --policy '%s' (want strict|lenient)\n",
               s.c_str());
  return std::nullopt;
}

std::optional<io::DatasetHandle> load_dataset(const Args& args) {
  auto path = args.get("input");
  if (!path) path = args.get("data");  // historical alias for --input
  if (!path) {
    std::fprintf(stderr, "cnaudit: --input PATH is required\n");
    return std::nullopt;
  }
  const auto policy = parse_policy(args);
  if (!policy) return std::nullopt;
  std::optional<io::DatasetFormat> format;
  if (const auto f = args.get("format")) {
    format = io::parse_dataset_format(*f);
    if (!format) {
      std::fprintf(stderr, "cnaudit: unknown --format '%s' (want csv|cnb)\n",
                   f->c_str());
      return std::nullopt;
    }
  }
  auto result = io::open_dataset(*path, *policy, format);
  if (!result.report.clean()) {
    std::fprintf(stderr, "cnaudit: %s: %s\n", path->c_str(),
                 result.report.summary().c_str());
  }
  if (!result) {
    std::fprintf(stderr, "cnaudit: failed to load a data set from %s\n",
                 path->c_str());
    return std::nullopt;
  }
  std::printf("loaded %zu blocks, %llu transactions from %s\n\n",
              result->chain.size(),
              static_cast<unsigned long long>(result->chain.total_tx_count()),
              path->c_str());
  return std::move(result.value);
}

int cmd_simulate(const Args& args) {
  const std::string kind_str = args.get_or("dataset", "C");
  sim::DatasetKind kind;
  if (kind_str == "A") {
    kind = sim::DatasetKind::kA;
  } else if (kind_str == "B") {
    kind = sim::DatasetKind::kB;
  } else if (kind_str == "C") {
    kind = sim::DatasetKind::kC;
  } else {
    std::fprintf(stderr, "cnaudit: unknown --dataset %s\n", kind_str.c_str());
    return 2;
  }
  const auto out = args.get("out");
  if (!out) {
    std::fprintf(stderr, "cnaudit: --out DIR is required\n");
    return 2;
  }
  const std::uint64_t seed = args.get_u64("seed", 42);
  const double scale = args.get_double("scale", 0.5);
  // 0 = all hardware threads (sharded engine), 1 = the serial engine
  // (byte-identical to the pre-sharding simulator). Sharded output is
  // deterministic for a fixed seed but differs from the serial event
  // interleaving, so the default stays serial.
  const unsigned threads = static_cast<unsigned>(args.get_u64("threads", 1));
  // Wall-clock budget; 0 (default) = unlimited. An exceeded budget is a
  // typed failure with partial-progress diagnostics, not a silent hang.
  const double timeout_s = args.get_double("timeout-s", 0.0);

  std::printf("simulating data set %s (seed %llu, scale %.2f, threads %u)...\n",
              kind_str.c_str(), static_cast<unsigned long long>(seed), scale,
              threads);
  sim::EngineConfig config = sim::dataset_config(kind, seed, scale);
  config.threads = threads;
  config.deadline_s = timeout_s;
  const sim::SimResult world = sim::Engine(config).run();
  if (world.timeout.timed_out) {
    std::fprintf(stderr, "cnaudit: simulate timeout: %s\n",
                 world.timeout.describe().c_str());
    return 3;
  }
  std::printf("  %zu blocks, %llu committed transactions\n", world.chain.size(),
              static_cast<unsigned long long>(world.chain.total_tx_count()));

  if (!io::export_chain(world.chain, *out) ||
      !io::export_snapshots(world.observer.snapshots(), *out + "/snapshots.csv") ||
      !io::export_first_seen(world.observer.first_seen_map(),
                             *out + "/first_seen.csv")) {
    std::fprintf(stderr, "cnaudit: export to %s failed\n", out->c_str());
    return 1;
  }
  std::printf("exported to %s (blocks/txs/inputs/outputs/snapshots/first_seen)\n",
              out->c_str());
  return 0;
}

int cmd_audit(const Args& args) {
  const auto data = load_dataset(args);
  if (!data) return 1;
  const btc::Chain& chain = data->chain;
  const double alpha = args.get_double("alpha", 0.001);
  const double min_share = args.get_double("min-share", 0.03);

  const auto registry = btc::CoinbaseTagRegistry::paper_registry();
  const core::PoolAttribution attribution(chain, registry);

  std::vector<std::string> pools;
  for (const auto& pool : attribution.pools_by_blocks()) {
    if (attribution.hash_share(pool) >= min_share) pools.push_back(pool);
  }

  core::TablePrinter table({"txs of", "miner", "x", "y", "p-accel", "p-decel",
                            "SPPE", "verdict"},
                           {16, 16, 6, 6, 9, 9, 8, 12});
  table.print_header();
  int findings = 0;
  for (const auto& owner : pools) {
    const auto txs = core::self_interest_txs(chain, attribution, owner);
    if (txs.size() < 10) continue;
    for (const auto& miner : pools) {
      const auto r =
          core::test_differential_prioritization(chain, attribution, miner, txs);
      const bool accel = r.p_accelerate < alpha && r.sppe > 25.0;
      const bool decel = r.p_decelerate < alpha && r.x == 0;
      if (!accel && !decel) continue;
      ++findings;
      table.print_row({owner, miner, std::to_string(r.x), std::to_string(r.y),
                       core::format_p_value(r.p_accelerate),
                       core::format_p_value(r.p_decelerate), fixed(r.sppe, 1),
                       accel ? (owner == miner ? "SELFISH" : "COLLUSION")
                             : "CENSORSHIP?"});
    }
  }
  std::printf("\n%d finding(s) at alpha=%.4g.\n", findings, alpha);
  return 0;
}

int cmd_report(const Args& args) {
  const std::string timings = args.get_or("timings", "off");
  if (timings != "on" && timings != "off") {
    std::fprintf(stderr, "cnaudit: unknown --timings '%s' (want on|off)\n",
                 timings.c_str());
    return 2;
  }
  const bool with_timings = timings == "on";

  const auto data = load_dataset(args);
  if (!data) return 1;
  const btc::Chain& chain = data->chain;
  core::AuditOptions options;
  options.alpha = args.get_double("alpha", 0.001);
  // 0 = all hardware threads, 1 = serial; the report is byte-identical
  // at any setting (DESIGN.md §7.2, §9).
  options.threads = static_cast<unsigned>(args.get_u64("threads", 0));
  options.min_coverage = args.get_double("min-coverage", options.min_coverage);
  // The loader interned every address it touched; the build stage reuses
  // the table instead of re-hashing the address universe.
  options.interned_addresses = &data->addresses;
  // A data set that carries the observer's first-seen log also gets the
  // block-withholding stage (core/withholding.hpp).
  if (data->first_seen.has_value()) options.first_seen = &*data->first_seen;

  const std::string engine = args.get_or("engine", "columnar");
  if (engine == "legacy") {
    options.engine = core::AuditEngine::kLegacy;
  } else if (engine != "columnar") {
    std::fprintf(stderr, "cnaudit: unknown --engine '%s' (want columnar|legacy)\n",
                 engine.c_str());
    return 2;
  }
  if (const auto stages = args.get("stages")) {
    const auto& known = core::audit_stage_names();
    for (const std::string_view name : split(*stages, ',')) {
      const std::string_view stage = trim(name);
      if (stage.empty()) continue;
      if (std::find(known.begin(), known.end(), stage) == known.end()) {
        std::string all;
        for (const std::string& k : known) {
          if (!all.empty()) all += ",";
          all += k;
        }
        std::fprintf(stderr, "cnaudit: unknown stage '%.*s' (known: %s)\n",
                     static_cast<int>(stage.size()), stage.data(), all.c_str());
        return 2;
      }
      options.stages.emplace_back(stage);
    }
  }

  const auto registry = btc::CoinbaseTagRegistry::paper_registry();
  // A CNB1 source that embeds derived audit columns built under this
  // registry lets the build stage adopt them instead of rebuilding.
  options.prebuilt_dataset = data->prebuilt_for(registry);

  // Grade coverage from whichever observer series the data set carries;
  // with neither present the audit keeps the historical perfect-coverage
  // behaviour.
  if (data->snapshots.has_value() || data->first_seen.has_value()) {
    const core::DataQualityReport quality = core::assess_data_quality(
        chain, data->snapshots.has_value() ? &*data->snapshots : nullptr,
        data->first_seen.has_value() ? &*data->first_seen : nullptr);
    const auto report = core::run_full_audit(chain, registry, &quality, options);
    core::print_audit_report(report, stdout, with_timings);
    return 0;
  }
  const auto report = core::run_full_audit(chain, registry, options);
  core::print_audit_report(report, stdout, with_timings);
  return 0;
}

int cmd_neutrality(const Args& args) {
  const auto data = load_dataset(args);
  if (!data) return 1;
  const btc::Chain& chain = data->chain;
  const auto registry = btc::CoinbaseTagRegistry::paper_registry();
  const core::PoolAttribution attribution(chain, registry);
  const auto reports = core::neutrality_reports(chain, attribution);

  core::TablePrinter table({"pool", "blocks", "PPE%", "boost%", "self-p",
                            "floor%", "score"},
                           {16, 9, 8, 9, 9, 9, 8});
  table.print_header();
  for (const auto& r : reports) {
    table.print_row({r.pool, with_commas(r.blocks), fixed(r.mean_ppe, 2),
                     fixed(r.boosted_tx_rate * 100.0, 3),
                     core::format_p_value(r.self_dealing_p),
                     fixed(r.below_floor_block_rate * 100.0, 1),
                     fixed(r.score, 1)});
  }
  return 0;
}

int cmd_ppe(const Args& args) {
  const auto data = load_dataset(args);
  if (!data) return 1;
  const auto ppe = core::chain_ppe(data->chain);
  const auto s = stats::summarize(ppe);
  const stats::Ecdf cdf{std::span<const double>(ppe)};
  core::print_summary_row("PPE (all)", s);
  if (!cdf.empty()) {
    std::printf("80%% of blocks below %.2f%%; share of blocks under 5%%: %s\n",
                cdf.quantile(0.8), percent(cdf.evaluate(5.0)).c_str());
  }
  return 0;
}

int cmd_darkfee(const Args& args) {
  const auto data = load_dataset(args);
  if (!data) return 1;
  const btc::Chain& chain = data->chain;
  const double threshold = args.get_double("sppe", 99.0);
  const auto registry = btc::CoinbaseTagRegistry::paper_registry();
  const core::PoolAttribution attribution(chain, registry);

  std::vector<std::string> pools;
  if (const auto pool = args.get("pool")) {
    pools.push_back(*pool);
  } else {
    for (const auto& p : attribution.pools_by_blocks()) {
      if (attribution.blocks_of(p) >= 10) pools.push_back(p);
    }
  }
  core::TablePrinter table({"pool", "txs", "flagged", "rate"}, {16, 11, 9, 10});
  table.print_header();
  for (const auto& pool : pools) {
    const auto flagged = core::detect_accelerated(chain, attribution, pool, threshold);
    std::uint64_t txs = 0;
    for (const auto& block : chain.blocks()) {
      const auto owner = attribution.pool_of(block.height());
      if (owner.has_value() && *owner == pool) txs += block.tx_count();
    }
    if (txs == 0) continue;
    table.print_row({pool, with_commas(txs),
                     with_commas(static_cast<std::uint64_t>(flagged.size())),
                     percent(static_cast<double>(flagged.size()) /
                             static_cast<double>(txs), 3)});
  }
  std::printf("\nflagged = committed transactions with SPPE >= %.1f (placed far\n"
              "above their public fee rank). Validate against an acceleration\n"
              "service's public query where one exists (paper §5.4.2).\n",
              threshold);
  return 0;
}

std::string default_trace_path(const std::string& metrics_path) {
  std::string base = metrics_path;
  if (base.size() >= 5 && base.compare(base.size() - 5, 5, ".json") == 0) {
    base.resize(base.size() - 5);
  }
  return base + ".trace.json";
}

/// Writes metrics.json (+ trace) after the subcommand ran, so the export
/// covers everything the command did. Returns false on I/O failure.
bool export_observability(const Args& args) {
  const auto metrics_path = args.get("metrics-out");
  if (!metrics_path) return true;
  const std::string trace_path =
      args.get_or("trace-out", default_trace_path(*metrics_path));
  bool ok = true;
  if (!obs::write_metrics_json(*metrics_path)) {
    std::fprintf(stderr, "cnaudit: could not write %s\n", metrics_path->c_str());
    ok = false;
  }
  if (!obs::write_trace_json(trace_path)) {
    std::fprintf(stderr, "cnaudit: could not write %s\n", trace_path.c_str());
    ok = false;
  }
  return ok;
}

int run_command(const std::string& command, const Args& args) {
  if (command == "simulate") return cmd_simulate(args);
  if (command == "audit") return cmd_audit(args);
  if (command == "report") return cmd_report(args);
  if (command == "neutrality") return cmd_neutrality(args);
  if (command == "ppe") return cmd_ppe(args);
  if (command == "darkfee") return cmd_darkfee(args);
  std::fprintf(stderr, "cnaudit: unknown command '%s'\n", command.c_str());
  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const Args args(argc, argv, 2);
  if (!args.ok()) {
    std::fprintf(stderr, "cnaudit: bad argument '%s'\n", args.bad().c_str());
    return usage();
  }
  const std::string obs_switch = args.get_or("obs", "on");
  if (obs_switch != "on" && obs_switch != "off") {
    std::fprintf(stderr, "cnaudit: unknown --obs '%s' (want on|off)\n",
                 obs_switch.c_str());
    return 2;
  }
  obs::set_enabled(obs_switch == "on");

  const int rc = run_command(command, args);
  if (!export_observability(args) && rc == 0) return 1;
  return rc;
}

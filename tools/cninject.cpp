// cninject — deterministic fault injection for exported data sets.
//
//   cninject --input PATH --output PATH [--seed N] [--rate F]
//            [--kinds LIST] [--gaps N] [--gap-width T] [--truncate 0|1]
//            [--sections N]
//
// Copies the data set at --input to --output while injecting faults
// drawn from a seeded RNG (see src/testing/fault_injector.hpp), then
// prints the injection log: one line per fault with the output file and
// line it landed on. The same --seed always produces the same faults,
// so a logged failure is replayable with nothing but the original data
// set and the seed.
//
// When --input is a CSV export directory, row faults apply:
//   --kinds   comma-separated subset of corrupt,drop,dup,swap
//             (default: all four)
//   --rate    per-row fault probability (default 0.01)
//   --gaps    observer-outage windows to delete from snapshots.csv
//   --truncate 1 cuts each row file mid-record at a random point
//
// When --input is a CNB1 binary file (io/cnb.hpp), the section-
// corruption mode runs instead:
//   --sections N  flip a payload byte in N distinct sections (default 1;
//                 each logged with the directory index a strict
//                 io::read_cnb pinpoints)
//   --truncate 1  additionally cut the file mid-section
//
// --in/--out are historical aliases for --input/--output.
//
// Typical round trip:
//   cnaudit simulate --dataset C --out clean
//   cninject --input clean --output dirty --seed 7 --rate 0.02 --gaps 2
//   cnaudit report --input dirty --policy lenient  # loads, masks gaps
//   cnaudit report --input dirty --policy strict   # pinpoints a fault
#include <cstdio>
#include <cstdlib>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "io/dataset_source.hpp"
#include "testing/fault_injector.hpp"

namespace {

using namespace cn;

int usage() {
  std::fprintf(stderr,
               "usage: cninject --input PATH --output PATH [--seed N] [--rate F]\n"
               "                [--kinds corrupt,drop,dup,swap] [--gaps N]\n"
               "                [--gap-width T] [--truncate 0|1] [--sections N]\n"
               "CSV directories get row faults; .cnb files get the\n"
               "section-corruption mode (--sections payload-byte flips)\n");
  return 2;
}

std::optional<std::vector<testing::FaultKind>> parse_kinds(const std::string& s) {
  std::vector<testing::FaultKind> kinds;
  std::string cur;
  const auto flush = [&]() -> bool {
    if (cur.empty()) return true;
    if (cur == "corrupt") kinds.push_back(testing::FaultKind::kCorruptField);
    else if (cur == "drop") kinds.push_back(testing::FaultKind::kDropRow);
    else if (cur == "dup") kinds.push_back(testing::FaultKind::kDuplicateRow);
    else if (cur == "swap") kinds.push_back(testing::FaultKind::kSwapRows);
    else return false;
    cur.clear();
    return true;
  };
  for (char c : s) {
    if (c == ',') {
      if (!flush()) return std::nullopt;
    } else {
      cur.push_back(c);
    }
  }
  if (!flush()) return std::nullopt;
  return kinds;
}

}  // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string key = argv[i];
    if (key.rfind("--", 0) != 0 || i + 1 >= argc) return usage();
    args[key.substr(2)] = argv[++i];
  }
  if (args.count("input")) args["in"] = args["input"];
  if (args.count("output")) args["out"] = args["output"];
  if (!args.count("in") || !args.count("out")) return usage();

  const std::uint64_t seed =
      args.count("seed") ? std::strtoull(args["seed"].c_str(), nullptr, 10) : 42;
  testing::FaultOptions options;
  if (args.count("rate")) {
    options.row_corruption_rate = std::strtod(args["rate"].c_str(), nullptr);
  }
  if (args.count("kinds")) {
    const auto kinds = parse_kinds(args["kinds"]);
    if (!kinds) {
      std::fprintf(stderr, "cninject: bad --kinds '%s'\n", args["kinds"].c_str());
      return usage();
    }
    options.kinds = *kinds;
  }
  if (args.count("gaps")) {
    options.snapshot_gaps = std::strtoull(args["gaps"].c_str(), nullptr, 10);
  }
  if (args.count("gap-width")) {
    options.gap_width = std::strtoll(args["gap-width"].c_str(), nullptr, 10);
  }
  if (args.count("truncate")) options.truncate_tail = args["truncate"] == "1";
  if (args.count("sections")) {
    options.cnb_sections = std::strtoull(args["sections"].c_str(), nullptr, 10);
  }

  testing::FaultInjector injector(seed);
  testing::InjectionLog log;
  if (io::sniff_dataset_format(args["in"]) == io::DatasetFormat::kCnb) {
    if (!injector.inject_cnb_file(args["in"], args["out"], options, log)) {
      std::fprintf(stderr, "cninject: could not read CNB1 file %s\n",
                   args["in"].c_str());
      return 1;
    }
  } else {
    log = injector.inject_dataset(args["in"], args["out"], options);
  }
  log.seed = seed;

  std::printf("injected %zu fault(s) with seed %llu (%zu strict-detectable)\n",
              log.faults.size(), static_cast<unsigned long long>(seed),
              log.detectable().size());
  for (const auto& f : log.faults) {
    if (f.kind == testing::FaultKind::kDeleteSnapshotWindow) {
      std::printf("  %-22s %s:%zu  %s (gap %lld..%lld)\n", to_string(f.kind),
                  f.file.c_str(), f.line, f.detail.c_str(),
                  static_cast<long long>(f.gap_from),
                  static_cast<long long>(f.gap_to));
    } else {
      std::printf("  %-22s %s:%zu  %s%s\n", to_string(f.kind), f.file.c_str(),
                  f.line, f.detail.c_str(), f.detectable ? "  [detectable]" : "");
    }
  }
  return 0;
}

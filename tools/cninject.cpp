// cninject — deterministic fault injection for exported data sets.
//
//   cninject --in DIR --out DIR [--seed N] [--rate F] [--kinds LIST]
//            [--gaps N] [--gap-width T] [--truncate 0|1]
//
// Copies the data set at --in to --out while injecting faults drawn
// from a seeded RNG (see src/testing/fault_injector.hpp), then prints
// the injection log: one line per fault with the output file and line
// it landed on. The same --seed always produces the same faults, so a
// logged failure is replayable with nothing but the original data set
// and the seed.
//
//   --kinds   comma-separated subset of corrupt,drop,dup,swap
//             (default: all four)
//   --rate    per-row fault probability (default 0.01)
//   --gaps    observer-outage windows to delete from snapshots.csv
//   --truncate 1 cuts each row file mid-record at a random point
//
// Typical round trip:
//   cnaudit simulate --dataset C --out clean
//   cninject --in clean --out dirty --seed 7 --rate 0.02 --gaps 2
//   cnaudit report --data dirty --policy lenient   # loads, masks gaps
//   cnaudit report --data dirty --policy strict    # pinpoints a fault
#include <cstdio>
#include <cstdlib>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "testing/fault_injector.hpp"

namespace {

using namespace cn;

int usage() {
  std::fprintf(stderr,
               "usage: cninject --in DIR --out DIR [--seed N] [--rate F]\n"
               "                [--kinds corrupt,drop,dup,swap] [--gaps N]\n"
               "                [--gap-width T] [--truncate 0|1]\n");
  return 2;
}

std::optional<std::vector<testing::FaultKind>> parse_kinds(const std::string& s) {
  std::vector<testing::FaultKind> kinds;
  std::string cur;
  const auto flush = [&]() -> bool {
    if (cur.empty()) return true;
    if (cur == "corrupt") kinds.push_back(testing::FaultKind::kCorruptField);
    else if (cur == "drop") kinds.push_back(testing::FaultKind::kDropRow);
    else if (cur == "dup") kinds.push_back(testing::FaultKind::kDuplicateRow);
    else if (cur == "swap") kinds.push_back(testing::FaultKind::kSwapRows);
    else return false;
    cur.clear();
    return true;
  };
  for (char c : s) {
    if (c == ',') {
      if (!flush()) return std::nullopt;
    } else {
      cur.push_back(c);
    }
  }
  if (!flush()) return std::nullopt;
  return kinds;
}

}  // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string key = argv[i];
    if (key.rfind("--", 0) != 0 || i + 1 >= argc) return usage();
    args[key.substr(2)] = argv[++i];
  }
  if (!args.count("in") || !args.count("out")) return usage();

  const std::uint64_t seed =
      args.count("seed") ? std::strtoull(args["seed"].c_str(), nullptr, 10) : 42;
  testing::FaultOptions options;
  if (args.count("rate")) {
    options.row_corruption_rate = std::strtod(args["rate"].c_str(), nullptr);
  }
  if (args.count("kinds")) {
    const auto kinds = parse_kinds(args["kinds"]);
    if (!kinds) {
      std::fprintf(stderr, "cninject: bad --kinds '%s'\n", args["kinds"].c_str());
      return usage();
    }
    options.kinds = *kinds;
  }
  if (args.count("gaps")) {
    options.snapshot_gaps = std::strtoull(args["gaps"].c_str(), nullptr, 10);
  }
  if (args.count("gap-width")) {
    options.gap_width = std::strtoll(args["gap-width"].c_str(), nullptr, 10);
  }
  if (args.count("truncate")) options.truncate_tail = args["truncate"] == "1";

  testing::FaultInjector injector(seed);
  testing::InjectionLog log =
      injector.inject_dataset(args["in"], args["out"], options);
  log.seed = seed;

  std::printf("injected %zu fault(s) with seed %llu (%zu strict-detectable)\n",
              log.faults.size(), static_cast<unsigned long long>(seed),
              log.detectable().size());
  for (const auto& f : log.faults) {
    if (f.kind == testing::FaultKind::kDeleteSnapshotWindow) {
      std::printf("  %-22s %s:%zu  %s (gap %lld..%lld)\n", to_string(f.kind),
                  f.file.c_str(), f.line, f.detail.c_str(),
                  static_cast<long long>(f.gap_from),
                  static_cast<long long>(f.gap_to));
    } else {
      std::printf("  %-22s %s:%zu  %s%s\n", to_string(f.kind), f.file.c_str(),
                  f.line, f.detail.c_str(), f.detectable ? "  [detectable]" : "");
    }
  }
  return 0;
}

# Empty dependencies file for darkfee_hunt.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/darkfee_hunt.dir/darkfee_hunt.cpp.o"
  "CMakeFiles/darkfee_hunt.dir/darkfee_hunt.cpp.o.d"
  "darkfee_hunt"
  "darkfee_hunt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/darkfee_hunt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

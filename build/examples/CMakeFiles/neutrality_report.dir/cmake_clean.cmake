file(REMOVE_RECURSE
  "CMakeFiles/neutrality_report.dir/neutrality_report.cpp.o"
  "CMakeFiles/neutrality_report.dir/neutrality_report.cpp.o.d"
  "neutrality_report"
  "neutrality_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neutrality_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

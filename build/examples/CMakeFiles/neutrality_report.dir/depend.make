# Empty dependencies file for neutrality_report.
# This may be replaced when dependencies are built.

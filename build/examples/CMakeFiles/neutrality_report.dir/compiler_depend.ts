# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for neutrality_report.

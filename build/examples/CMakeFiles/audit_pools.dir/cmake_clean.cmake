file(REMOVE_RECURSE
  "CMakeFiles/audit_pools.dir/audit_pools.cpp.o"
  "CMakeFiles/audit_pools.dir/audit_pools.cpp.o.d"
  "audit_pools"
  "audit_pools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/audit_pools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for audit_pools.
# This may be replaced when dependencies are built.

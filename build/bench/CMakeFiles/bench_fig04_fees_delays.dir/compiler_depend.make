# Empty compiler generated dependencies file for bench_fig04_fees_delays.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_tab05_fee_revenue.dir/bench_tab05_fee_revenue.cpp.o"
  "CMakeFiles/bench_tab05_fee_revenue.dir/bench_tab05_fee_revenue.cpp.o.d"
  "bench_tab05_fee_revenue"
  "bench_tab05_fee_revenue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab05_fee_revenue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_tab05_fee_revenue.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_tab04_darkfee.dir/bench_tab04_darkfee.cpp.o"
  "CMakeFiles/bench_tab04_darkfee.dir/bench_tab04_darkfee.cpp.o.d"
  "bench_tab04_darkfee"
  "bench_tab04_darkfee.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab04_darkfee.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

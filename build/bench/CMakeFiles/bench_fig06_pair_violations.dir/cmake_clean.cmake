file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_pair_violations.dir/bench_fig06_pair_violations.cpp.o"
  "CMakeFiles/bench_fig06_pair_violations.dir/bench_fig06_pair_violations.cpp.o.d"
  "bench_fig06_pair_violations"
  "bench_fig06_pair_violations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_pair_violations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

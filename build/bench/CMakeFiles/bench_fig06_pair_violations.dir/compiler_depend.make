# Empty compiler generated dependencies file for bench_fig06_pair_violations.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_ablation_detection.
# This may be replaced when dependencies are built.

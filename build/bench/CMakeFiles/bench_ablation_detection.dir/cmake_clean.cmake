file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_detection.dir/bench_ablation_detection.cpp.o"
  "CMakeFiles/bench_ablation_detection.dir/bench_ablation_detection.cpp.o.d"
  "bench_ablation_detection"
  "bench_ablation_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig08_wallets.
# This may be replaced when dependencies are built.

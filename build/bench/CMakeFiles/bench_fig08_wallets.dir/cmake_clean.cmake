file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_wallets.dir/bench_fig08_wallets.cpp.o"
  "CMakeFiles/bench_fig08_wallets.dir/bench_fig08_wallets.cpp.o.d"
  "bench_fig08_wallets"
  "bench_fig08_wallets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_wallets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

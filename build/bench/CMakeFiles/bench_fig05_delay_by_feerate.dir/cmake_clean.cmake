file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_delay_by_feerate.dir/bench_fig05_delay_by_feerate.cpp.o"
  "CMakeFiles/bench_fig05_delay_by_feerate.dir/bench_fig05_delay_by_feerate.cpp.o.d"
  "bench_fig05_delay_by_feerate"
  "bench_fig05_delay_by_feerate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_delay_by_feerate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_fig05_delay_by_feerate.
# This may be replaced when dependencies are built.

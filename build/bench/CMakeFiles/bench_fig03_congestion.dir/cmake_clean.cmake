file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_congestion.dir/bench_fig03_congestion.cpp.o"
  "CMakeFiles/bench_fig03_congestion.dir/bench_fig03_congestion.cpp.o.d"
  "bench_fig03_congestion"
  "bench_fig03_congestion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_congestion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_ppe_norm_shift.dir/bench_fig01_ppe_norm_shift.cpp.o"
  "CMakeFiles/bench_fig01_ppe_norm_shift.dir/bench_fig01_ppe_norm_shift.cpp.o.d"
  "bench_fig01_ppe_norm_shift"
  "bench_fig01_ppe_norm_shift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_ppe_norm_shift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_fig01_ppe_norm_shift.
# This may be replaced when dependencies are built.

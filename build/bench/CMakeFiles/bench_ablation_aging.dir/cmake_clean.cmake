file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_aging.dir/bench_ablation_aging.cpp.o"
  "CMakeFiles/bench_ablation_aging.dir/bench_ablation_aging.cpp.o.d"
  "bench_ablation_aging"
  "bench_ablation_aging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_aging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_ablation_aging.
# This may be replaced when dependencies are built.

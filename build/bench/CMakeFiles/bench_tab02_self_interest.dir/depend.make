# Empty dependencies file for bench_tab02_self_interest.
# This may be replaced when dependencies are built.

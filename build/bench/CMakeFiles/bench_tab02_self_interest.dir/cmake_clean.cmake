file(REMOVE_RECURSE
  "CMakeFiles/bench_tab02_self_interest.dir/bench_tab02_self_interest.cpp.o"
  "CMakeFiles/bench_tab02_self_interest.dir/bench_tab02_self_interest.cpp.o.d"
  "bench_tab02_self_interest"
  "bench_tab02_self_interest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab02_self_interest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

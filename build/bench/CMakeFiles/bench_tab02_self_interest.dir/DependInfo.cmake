
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_tab02_self_interest.cpp" "bench/CMakeFiles/bench_tab02_self_interest.dir/bench_tab02_self_interest.cpp.o" "gcc" "bench/CMakeFiles/bench_tab02_self_interest.dir/bench_tab02_self_interest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cn_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cn_node.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cn_btc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cn_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for bench_tab03_scam.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_tab03_scam.dir/bench_tab03_scam.cpp.o"
  "CMakeFiles/bench_tab03_scam.dir/bench_tab03_scam.cpp.o.d"
  "bench_tab03_scam"
  "bench_tab03_scam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab03_scam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_ppe_pools.dir/bench_fig07_ppe_pools.cpp.o"
  "CMakeFiles/bench_fig07_ppe_pools.dir/bench_fig07_ppe_pools.cpp.o.d"
  "bench_fig07_ppe_pools"
  "bench_fig07_ppe_pools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_ppe_pools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig07_ppe_pools.
# This may be replaced when dependencies are built.

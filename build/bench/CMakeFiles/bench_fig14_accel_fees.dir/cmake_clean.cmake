file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_accel_fees.dir/bench_fig14_accel_fees.cpp.o"
  "CMakeFiles/bench_fig14_accel_fees.dir/bench_fig14_accel_fees.cpp.o.d"
  "bench_fig14_accel_fees"
  "bench_fig14_accel_fees.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_accel_fees.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

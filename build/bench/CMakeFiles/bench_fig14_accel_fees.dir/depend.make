# Empty dependencies file for bench_fig14_accel_fees.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_pool_shares.dir/bench_fig02_pool_shares.cpp.o"
  "CMakeFiles/bench_fig02_pool_shares.dir/bench_fig02_pool_shares.cpp.o.d"
  "bench_fig02_pool_shares"
  "bench_fig02_pool_shares.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_pool_shares.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_fig02_pool_shares.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_tab01_datasets.dir/bench_tab01_datasets.cpp.o"
  "CMakeFiles/bench_tab01_datasets.dir/bench_tab01_datasets.cpp.o.d"
  "bench_tab01_datasets"
  "bench_tab01_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab01_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libcn_core.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/cn_core.dir/core/audit_pipeline.cpp.o"
  "CMakeFiles/cn_core.dir/core/audit_pipeline.cpp.o.d"
  "CMakeFiles/cn_core.dir/core/congestion.cpp.o"
  "CMakeFiles/cn_core.dir/core/congestion.cpp.o.d"
  "CMakeFiles/cn_core.dir/core/darkfee.cpp.o"
  "CMakeFiles/cn_core.dir/core/darkfee.cpp.o.d"
  "CMakeFiles/cn_core.dir/core/delay_model.cpp.o"
  "CMakeFiles/cn_core.dir/core/delay_model.cpp.o.d"
  "CMakeFiles/cn_core.dir/core/fee_revenue.cpp.o"
  "CMakeFiles/cn_core.dir/core/fee_revenue.cpp.o.d"
  "CMakeFiles/cn_core.dir/core/neutrality.cpp.o"
  "CMakeFiles/cn_core.dir/core/neutrality.cpp.o.d"
  "CMakeFiles/cn_core.dir/core/pair_violations.cpp.o"
  "CMakeFiles/cn_core.dir/core/pair_violations.cpp.o.d"
  "CMakeFiles/cn_core.dir/core/ppe.cpp.o"
  "CMakeFiles/cn_core.dir/core/ppe.cpp.o.d"
  "CMakeFiles/cn_core.dir/core/prio_test.cpp.o"
  "CMakeFiles/cn_core.dir/core/prio_test.cpp.o.d"
  "CMakeFiles/cn_core.dir/core/report.cpp.o"
  "CMakeFiles/cn_core.dir/core/report.cpp.o.d"
  "CMakeFiles/cn_core.dir/core/sppe.cpp.o"
  "CMakeFiles/cn_core.dir/core/sppe.cpp.o.d"
  "CMakeFiles/cn_core.dir/core/wallet_inference.cpp.o"
  "CMakeFiles/cn_core.dir/core/wallet_inference.cpp.o.d"
  "libcn_core.a"
  "libcn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

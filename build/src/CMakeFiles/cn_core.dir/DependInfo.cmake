
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/audit_pipeline.cpp" "src/CMakeFiles/cn_core.dir/core/audit_pipeline.cpp.o" "gcc" "src/CMakeFiles/cn_core.dir/core/audit_pipeline.cpp.o.d"
  "/root/repo/src/core/congestion.cpp" "src/CMakeFiles/cn_core.dir/core/congestion.cpp.o" "gcc" "src/CMakeFiles/cn_core.dir/core/congestion.cpp.o.d"
  "/root/repo/src/core/darkfee.cpp" "src/CMakeFiles/cn_core.dir/core/darkfee.cpp.o" "gcc" "src/CMakeFiles/cn_core.dir/core/darkfee.cpp.o.d"
  "/root/repo/src/core/delay_model.cpp" "src/CMakeFiles/cn_core.dir/core/delay_model.cpp.o" "gcc" "src/CMakeFiles/cn_core.dir/core/delay_model.cpp.o.d"
  "/root/repo/src/core/fee_revenue.cpp" "src/CMakeFiles/cn_core.dir/core/fee_revenue.cpp.o" "gcc" "src/CMakeFiles/cn_core.dir/core/fee_revenue.cpp.o.d"
  "/root/repo/src/core/neutrality.cpp" "src/CMakeFiles/cn_core.dir/core/neutrality.cpp.o" "gcc" "src/CMakeFiles/cn_core.dir/core/neutrality.cpp.o.d"
  "/root/repo/src/core/pair_violations.cpp" "src/CMakeFiles/cn_core.dir/core/pair_violations.cpp.o" "gcc" "src/CMakeFiles/cn_core.dir/core/pair_violations.cpp.o.d"
  "/root/repo/src/core/ppe.cpp" "src/CMakeFiles/cn_core.dir/core/ppe.cpp.o" "gcc" "src/CMakeFiles/cn_core.dir/core/ppe.cpp.o.d"
  "/root/repo/src/core/prio_test.cpp" "src/CMakeFiles/cn_core.dir/core/prio_test.cpp.o" "gcc" "src/CMakeFiles/cn_core.dir/core/prio_test.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/CMakeFiles/cn_core.dir/core/report.cpp.o" "gcc" "src/CMakeFiles/cn_core.dir/core/report.cpp.o.d"
  "/root/repo/src/core/sppe.cpp" "src/CMakeFiles/cn_core.dir/core/sppe.cpp.o" "gcc" "src/CMakeFiles/cn_core.dir/core/sppe.cpp.o.d"
  "/root/repo/src/core/wallet_inference.cpp" "src/CMakeFiles/cn_core.dir/core/wallet_inference.cpp.o" "gcc" "src/CMakeFiles/cn_core.dir/core/wallet_inference.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cn_node.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cn_btc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cn_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

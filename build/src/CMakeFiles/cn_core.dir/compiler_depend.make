# Empty compiler generated dependencies file for cn_core.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/acceleration.cpp" "src/CMakeFiles/cn_sim.dir/sim/acceleration.cpp.o" "gcc" "src/CMakeFiles/cn_sim.dir/sim/acceleration.cpp.o.d"
  "/root/repo/src/sim/dataset.cpp" "src/CMakeFiles/cn_sim.dir/sim/dataset.cpp.o" "gcc" "src/CMakeFiles/cn_sim.dir/sim/dataset.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/CMakeFiles/cn_sim.dir/sim/engine.cpp.o" "gcc" "src/CMakeFiles/cn_sim.dir/sim/engine.cpp.o.d"
  "/root/repo/src/sim/network.cpp" "src/CMakeFiles/cn_sim.dir/sim/network.cpp.o" "gcc" "src/CMakeFiles/cn_sim.dir/sim/network.cpp.o.d"
  "/root/repo/src/sim/policy.cpp" "src/CMakeFiles/cn_sim.dir/sim/policy.cpp.o" "gcc" "src/CMakeFiles/cn_sim.dir/sim/policy.cpp.o.d"
  "/root/repo/src/sim/pool.cpp" "src/CMakeFiles/cn_sim.dir/sim/pool.cpp.o" "gcc" "src/CMakeFiles/cn_sim.dir/sim/pool.cpp.o.d"
  "/root/repo/src/sim/workload.cpp" "src/CMakeFiles/cn_sim.dir/sim/workload.cpp.o" "gcc" "src/CMakeFiles/cn_sim.dir/sim/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cn_node.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cn_btc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cn_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

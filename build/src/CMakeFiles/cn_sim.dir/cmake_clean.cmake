file(REMOVE_RECURSE
  "CMakeFiles/cn_sim.dir/sim/acceleration.cpp.o"
  "CMakeFiles/cn_sim.dir/sim/acceleration.cpp.o.d"
  "CMakeFiles/cn_sim.dir/sim/dataset.cpp.o"
  "CMakeFiles/cn_sim.dir/sim/dataset.cpp.o.d"
  "CMakeFiles/cn_sim.dir/sim/engine.cpp.o"
  "CMakeFiles/cn_sim.dir/sim/engine.cpp.o.d"
  "CMakeFiles/cn_sim.dir/sim/network.cpp.o"
  "CMakeFiles/cn_sim.dir/sim/network.cpp.o.d"
  "CMakeFiles/cn_sim.dir/sim/policy.cpp.o"
  "CMakeFiles/cn_sim.dir/sim/policy.cpp.o.d"
  "CMakeFiles/cn_sim.dir/sim/pool.cpp.o"
  "CMakeFiles/cn_sim.dir/sim/pool.cpp.o.d"
  "CMakeFiles/cn_sim.dir/sim/workload.cpp.o"
  "CMakeFiles/cn_sim.dir/sim/workload.cpp.o.d"
  "libcn_sim.a"
  "libcn_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cn_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

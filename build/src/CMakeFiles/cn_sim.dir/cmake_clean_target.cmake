file(REMOVE_RECURSE
  "libcn_sim.a"
)

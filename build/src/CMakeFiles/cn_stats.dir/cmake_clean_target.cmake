file(REMOVE_RECURSE
  "libcn_stats.a"
)

# Empty compiler generated dependencies file for cn_stats.
# This may be replaced when dependencies are built.

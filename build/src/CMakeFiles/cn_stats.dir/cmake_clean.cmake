file(REMOVE_RECURSE
  "CMakeFiles/cn_stats.dir/stats/binomial.cpp.o"
  "CMakeFiles/cn_stats.dir/stats/binomial.cpp.o.d"
  "CMakeFiles/cn_stats.dir/stats/bootstrap.cpp.o"
  "CMakeFiles/cn_stats.dir/stats/bootstrap.cpp.o.d"
  "CMakeFiles/cn_stats.dir/stats/descriptive.cpp.o"
  "CMakeFiles/cn_stats.dir/stats/descriptive.cpp.o.d"
  "CMakeFiles/cn_stats.dir/stats/ecdf.cpp.o"
  "CMakeFiles/cn_stats.dir/stats/ecdf.cpp.o.d"
  "CMakeFiles/cn_stats.dir/stats/fisher.cpp.o"
  "CMakeFiles/cn_stats.dir/stats/fisher.cpp.o.d"
  "CMakeFiles/cn_stats.dir/stats/histogram.cpp.o"
  "CMakeFiles/cn_stats.dir/stats/histogram.cpp.o.d"
  "CMakeFiles/cn_stats.dir/stats/ks.cpp.o"
  "CMakeFiles/cn_stats.dir/stats/ks.cpp.o.d"
  "CMakeFiles/cn_stats.dir/stats/normal.cpp.o"
  "CMakeFiles/cn_stats.dir/stats/normal.cpp.o.d"
  "CMakeFiles/cn_stats.dir/stats/rank.cpp.o"
  "CMakeFiles/cn_stats.dir/stats/rank.cpp.o.d"
  "CMakeFiles/cn_stats.dir/stats/special.cpp.o"
  "CMakeFiles/cn_stats.dir/stats/special.cpp.o.d"
  "libcn_stats.a"
  "libcn_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cn_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

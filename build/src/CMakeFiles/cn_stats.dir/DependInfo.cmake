
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/binomial.cpp" "src/CMakeFiles/cn_stats.dir/stats/binomial.cpp.o" "gcc" "src/CMakeFiles/cn_stats.dir/stats/binomial.cpp.o.d"
  "/root/repo/src/stats/bootstrap.cpp" "src/CMakeFiles/cn_stats.dir/stats/bootstrap.cpp.o" "gcc" "src/CMakeFiles/cn_stats.dir/stats/bootstrap.cpp.o.d"
  "/root/repo/src/stats/descriptive.cpp" "src/CMakeFiles/cn_stats.dir/stats/descriptive.cpp.o" "gcc" "src/CMakeFiles/cn_stats.dir/stats/descriptive.cpp.o.d"
  "/root/repo/src/stats/ecdf.cpp" "src/CMakeFiles/cn_stats.dir/stats/ecdf.cpp.o" "gcc" "src/CMakeFiles/cn_stats.dir/stats/ecdf.cpp.o.d"
  "/root/repo/src/stats/fisher.cpp" "src/CMakeFiles/cn_stats.dir/stats/fisher.cpp.o" "gcc" "src/CMakeFiles/cn_stats.dir/stats/fisher.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "src/CMakeFiles/cn_stats.dir/stats/histogram.cpp.o" "gcc" "src/CMakeFiles/cn_stats.dir/stats/histogram.cpp.o.d"
  "/root/repo/src/stats/ks.cpp" "src/CMakeFiles/cn_stats.dir/stats/ks.cpp.o" "gcc" "src/CMakeFiles/cn_stats.dir/stats/ks.cpp.o.d"
  "/root/repo/src/stats/normal.cpp" "src/CMakeFiles/cn_stats.dir/stats/normal.cpp.o" "gcc" "src/CMakeFiles/cn_stats.dir/stats/normal.cpp.o.d"
  "/root/repo/src/stats/rank.cpp" "src/CMakeFiles/cn_stats.dir/stats/rank.cpp.o" "gcc" "src/CMakeFiles/cn_stats.dir/stats/rank.cpp.o.d"
  "/root/repo/src/stats/special.cpp" "src/CMakeFiles/cn_stats.dir/stats/special.cpp.o" "gcc" "src/CMakeFiles/cn_stats.dir/stats/special.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/node/block_template.cpp" "src/CMakeFiles/cn_node.dir/node/block_template.cpp.o" "gcc" "src/CMakeFiles/cn_node.dir/node/block_template.cpp.o.d"
  "/root/repo/src/node/fee_estimator.cpp" "src/CMakeFiles/cn_node.dir/node/fee_estimator.cpp.o" "gcc" "src/CMakeFiles/cn_node.dir/node/fee_estimator.cpp.o.d"
  "/root/repo/src/node/legacy_priority.cpp" "src/CMakeFiles/cn_node.dir/node/legacy_priority.cpp.o" "gcc" "src/CMakeFiles/cn_node.dir/node/legacy_priority.cpp.o.d"
  "/root/repo/src/node/mempool.cpp" "src/CMakeFiles/cn_node.dir/node/mempool.cpp.o" "gcc" "src/CMakeFiles/cn_node.dir/node/mempool.cpp.o.d"
  "/root/repo/src/node/observer.cpp" "src/CMakeFiles/cn_node.dir/node/observer.cpp.o" "gcc" "src/CMakeFiles/cn_node.dir/node/observer.cpp.o.d"
  "/root/repo/src/node/snapshot.cpp" "src/CMakeFiles/cn_node.dir/node/snapshot.cpp.o" "gcc" "src/CMakeFiles/cn_node.dir/node/snapshot.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cn_btc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cn_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

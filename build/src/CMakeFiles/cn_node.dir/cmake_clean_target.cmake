file(REMOVE_RECURSE
  "libcn_node.a"
)

# Empty compiler generated dependencies file for cn_node.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/cn_node.dir/node/block_template.cpp.o"
  "CMakeFiles/cn_node.dir/node/block_template.cpp.o.d"
  "CMakeFiles/cn_node.dir/node/fee_estimator.cpp.o"
  "CMakeFiles/cn_node.dir/node/fee_estimator.cpp.o.d"
  "CMakeFiles/cn_node.dir/node/legacy_priority.cpp.o"
  "CMakeFiles/cn_node.dir/node/legacy_priority.cpp.o.d"
  "CMakeFiles/cn_node.dir/node/mempool.cpp.o"
  "CMakeFiles/cn_node.dir/node/mempool.cpp.o.d"
  "CMakeFiles/cn_node.dir/node/observer.cpp.o"
  "CMakeFiles/cn_node.dir/node/observer.cpp.o.d"
  "CMakeFiles/cn_node.dir/node/snapshot.cpp.o"
  "CMakeFiles/cn_node.dir/node/snapshot.cpp.o.d"
  "libcn_node.a"
  "libcn_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cn_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

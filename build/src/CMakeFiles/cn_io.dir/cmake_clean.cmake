file(REMOVE_RECURSE
  "CMakeFiles/cn_io.dir/io/dataset_io.cpp.o"
  "CMakeFiles/cn_io.dir/io/dataset_io.cpp.o.d"
  "libcn_io.a"
  "libcn_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cn_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

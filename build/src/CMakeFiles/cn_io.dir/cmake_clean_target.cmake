file(REMOVE_RECURSE
  "libcn_io.a"
)

# Empty compiler generated dependencies file for cn_io.
# This may be replaced when dependencies are built.

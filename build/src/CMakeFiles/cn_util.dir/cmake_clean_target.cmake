file(REMOVE_RECURSE
  "libcn_util.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/cn_util.dir/util/csv.cpp.o"
  "CMakeFiles/cn_util.dir/util/csv.cpp.o.d"
  "CMakeFiles/cn_util.dir/util/hex.cpp.o"
  "CMakeFiles/cn_util.dir/util/hex.cpp.o.d"
  "CMakeFiles/cn_util.dir/util/rng.cpp.o"
  "CMakeFiles/cn_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/cn_util.dir/util/sha256.cpp.o"
  "CMakeFiles/cn_util.dir/util/sha256.cpp.o.d"
  "CMakeFiles/cn_util.dir/util/strings.cpp.o"
  "CMakeFiles/cn_util.dir/util/strings.cpp.o.d"
  "libcn_util.a"
  "libcn_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cn_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for cn_util.
# This may be replaced when dependencies are built.

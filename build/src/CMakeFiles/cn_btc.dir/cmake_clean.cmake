file(REMOVE_RECURSE
  "CMakeFiles/cn_btc.dir/btc/amount.cpp.o"
  "CMakeFiles/cn_btc.dir/btc/amount.cpp.o.d"
  "CMakeFiles/cn_btc.dir/btc/block.cpp.o"
  "CMakeFiles/cn_btc.dir/btc/block.cpp.o.d"
  "CMakeFiles/cn_btc.dir/btc/chain.cpp.o"
  "CMakeFiles/cn_btc.dir/btc/chain.cpp.o.d"
  "CMakeFiles/cn_btc.dir/btc/coinbase_tags.cpp.o"
  "CMakeFiles/cn_btc.dir/btc/coinbase_tags.cpp.o.d"
  "CMakeFiles/cn_btc.dir/btc/header.cpp.o"
  "CMakeFiles/cn_btc.dir/btc/header.cpp.o.d"
  "CMakeFiles/cn_btc.dir/btc/merkle.cpp.o"
  "CMakeFiles/cn_btc.dir/btc/merkle.cpp.o.d"
  "CMakeFiles/cn_btc.dir/btc/rewards.cpp.o"
  "CMakeFiles/cn_btc.dir/btc/rewards.cpp.o.d"
  "CMakeFiles/cn_btc.dir/btc/transaction.cpp.o"
  "CMakeFiles/cn_btc.dir/btc/transaction.cpp.o.d"
  "CMakeFiles/cn_btc.dir/btc/txid.cpp.o"
  "CMakeFiles/cn_btc.dir/btc/txid.cpp.o.d"
  "libcn_btc.a"
  "libcn_btc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cn_btc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libcn_btc.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/btc/amount.cpp" "src/CMakeFiles/cn_btc.dir/btc/amount.cpp.o" "gcc" "src/CMakeFiles/cn_btc.dir/btc/amount.cpp.o.d"
  "/root/repo/src/btc/block.cpp" "src/CMakeFiles/cn_btc.dir/btc/block.cpp.o" "gcc" "src/CMakeFiles/cn_btc.dir/btc/block.cpp.o.d"
  "/root/repo/src/btc/chain.cpp" "src/CMakeFiles/cn_btc.dir/btc/chain.cpp.o" "gcc" "src/CMakeFiles/cn_btc.dir/btc/chain.cpp.o.d"
  "/root/repo/src/btc/coinbase_tags.cpp" "src/CMakeFiles/cn_btc.dir/btc/coinbase_tags.cpp.o" "gcc" "src/CMakeFiles/cn_btc.dir/btc/coinbase_tags.cpp.o.d"
  "/root/repo/src/btc/header.cpp" "src/CMakeFiles/cn_btc.dir/btc/header.cpp.o" "gcc" "src/CMakeFiles/cn_btc.dir/btc/header.cpp.o.d"
  "/root/repo/src/btc/merkle.cpp" "src/CMakeFiles/cn_btc.dir/btc/merkle.cpp.o" "gcc" "src/CMakeFiles/cn_btc.dir/btc/merkle.cpp.o.d"
  "/root/repo/src/btc/rewards.cpp" "src/CMakeFiles/cn_btc.dir/btc/rewards.cpp.o" "gcc" "src/CMakeFiles/cn_btc.dir/btc/rewards.cpp.o.d"
  "/root/repo/src/btc/transaction.cpp" "src/CMakeFiles/cn_btc.dir/btc/transaction.cpp.o" "gcc" "src/CMakeFiles/cn_btc.dir/btc/transaction.cpp.o.d"
  "/root/repo/src/btc/txid.cpp" "src/CMakeFiles/cn_btc.dir/btc/txid.cpp.o" "gcc" "src/CMakeFiles/cn_btc.dir/btc/txid.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for cn_btc.
# This may be replaced when dependencies are built.

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/cn_tests_util[1]_include.cmake")
include("/root/repo/build/tests/cn_tests_stats[1]_include.cmake")
include("/root/repo/build/tests/cn_tests_node[1]_include.cmake")
include("/root/repo/build/tests/cn_tests_sim[1]_include.cmake")
include("/root/repo/build/tests/cn_tests_io[1]_include.cmake")
include("/root/repo/build/tests/cn_tests_core[1]_include.cmake")
include("/root/repo/build/tests/cn_tests_btc[1]_include.cmake")
add_test(integration.audit_end_to_end "/root/repo/build/tests/cn_tests_integration")
set_tests_properties(integration.audit_end_to_end PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;74;add_test;/root/repo/tests/CMakeLists.txt;0;")

file(REMOVE_RECURSE
  "CMakeFiles/cn_tests_btc.dir/btc/test_amount.cpp.o"
  "CMakeFiles/cn_tests_btc.dir/btc/test_amount.cpp.o.d"
  "CMakeFiles/cn_tests_btc.dir/btc/test_block.cpp.o"
  "CMakeFiles/cn_tests_btc.dir/btc/test_block.cpp.o.d"
  "CMakeFiles/cn_tests_btc.dir/btc/test_chain.cpp.o"
  "CMakeFiles/cn_tests_btc.dir/btc/test_chain.cpp.o.d"
  "CMakeFiles/cn_tests_btc.dir/btc/test_coinbase_tags.cpp.o"
  "CMakeFiles/cn_tests_btc.dir/btc/test_coinbase_tags.cpp.o.d"
  "CMakeFiles/cn_tests_btc.dir/btc/test_header.cpp.o"
  "CMakeFiles/cn_tests_btc.dir/btc/test_header.cpp.o.d"
  "CMakeFiles/cn_tests_btc.dir/btc/test_merkle.cpp.o"
  "CMakeFiles/cn_tests_btc.dir/btc/test_merkle.cpp.o.d"
  "CMakeFiles/cn_tests_btc.dir/btc/test_rewards.cpp.o"
  "CMakeFiles/cn_tests_btc.dir/btc/test_rewards.cpp.o.d"
  "CMakeFiles/cn_tests_btc.dir/btc/test_transaction.cpp.o"
  "CMakeFiles/cn_tests_btc.dir/btc/test_transaction.cpp.o.d"
  "CMakeFiles/cn_tests_btc.dir/btc/test_txid.cpp.o"
  "CMakeFiles/cn_tests_btc.dir/btc/test_txid.cpp.o.d"
  "cn_tests_btc"
  "cn_tests_btc.pdb"
  "cn_tests_btc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cn_tests_btc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for cn_tests_btc.
# This may be replaced when dependencies are built.

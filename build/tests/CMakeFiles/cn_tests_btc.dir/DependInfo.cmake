
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/btc/test_amount.cpp" "tests/CMakeFiles/cn_tests_btc.dir/btc/test_amount.cpp.o" "gcc" "tests/CMakeFiles/cn_tests_btc.dir/btc/test_amount.cpp.o.d"
  "/root/repo/tests/btc/test_block.cpp" "tests/CMakeFiles/cn_tests_btc.dir/btc/test_block.cpp.o" "gcc" "tests/CMakeFiles/cn_tests_btc.dir/btc/test_block.cpp.o.d"
  "/root/repo/tests/btc/test_chain.cpp" "tests/CMakeFiles/cn_tests_btc.dir/btc/test_chain.cpp.o" "gcc" "tests/CMakeFiles/cn_tests_btc.dir/btc/test_chain.cpp.o.d"
  "/root/repo/tests/btc/test_coinbase_tags.cpp" "tests/CMakeFiles/cn_tests_btc.dir/btc/test_coinbase_tags.cpp.o" "gcc" "tests/CMakeFiles/cn_tests_btc.dir/btc/test_coinbase_tags.cpp.o.d"
  "/root/repo/tests/btc/test_header.cpp" "tests/CMakeFiles/cn_tests_btc.dir/btc/test_header.cpp.o" "gcc" "tests/CMakeFiles/cn_tests_btc.dir/btc/test_header.cpp.o.d"
  "/root/repo/tests/btc/test_merkle.cpp" "tests/CMakeFiles/cn_tests_btc.dir/btc/test_merkle.cpp.o" "gcc" "tests/CMakeFiles/cn_tests_btc.dir/btc/test_merkle.cpp.o.d"
  "/root/repo/tests/btc/test_rewards.cpp" "tests/CMakeFiles/cn_tests_btc.dir/btc/test_rewards.cpp.o" "gcc" "tests/CMakeFiles/cn_tests_btc.dir/btc/test_rewards.cpp.o.d"
  "/root/repo/tests/btc/test_transaction.cpp" "tests/CMakeFiles/cn_tests_btc.dir/btc/test_transaction.cpp.o" "gcc" "tests/CMakeFiles/cn_tests_btc.dir/btc/test_transaction.cpp.o.d"
  "/root/repo/tests/btc/test_txid.cpp" "tests/CMakeFiles/cn_tests_btc.dir/btc/test_txid.cpp.o" "gcc" "tests/CMakeFiles/cn_tests_btc.dir/btc/test_txid.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cn_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cn_node.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cn_btc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cn_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_audit_pipeline.cpp" "tests/CMakeFiles/cn_tests_core.dir/core/test_audit_pipeline.cpp.o" "gcc" "tests/CMakeFiles/cn_tests_core.dir/core/test_audit_pipeline.cpp.o.d"
  "/root/repo/tests/core/test_congestion.cpp" "tests/CMakeFiles/cn_tests_core.dir/core/test_congestion.cpp.o" "gcc" "tests/CMakeFiles/cn_tests_core.dir/core/test_congestion.cpp.o.d"
  "/root/repo/tests/core/test_darkfee.cpp" "tests/CMakeFiles/cn_tests_core.dir/core/test_darkfee.cpp.o" "gcc" "tests/CMakeFiles/cn_tests_core.dir/core/test_darkfee.cpp.o.d"
  "/root/repo/tests/core/test_delay_model.cpp" "tests/CMakeFiles/cn_tests_core.dir/core/test_delay_model.cpp.o" "gcc" "tests/CMakeFiles/cn_tests_core.dir/core/test_delay_model.cpp.o.d"
  "/root/repo/tests/core/test_fee_revenue.cpp" "tests/CMakeFiles/cn_tests_core.dir/core/test_fee_revenue.cpp.o" "gcc" "tests/CMakeFiles/cn_tests_core.dir/core/test_fee_revenue.cpp.o.d"
  "/root/repo/tests/core/test_neutrality.cpp" "tests/CMakeFiles/cn_tests_core.dir/core/test_neutrality.cpp.o" "gcc" "tests/CMakeFiles/cn_tests_core.dir/core/test_neutrality.cpp.o.d"
  "/root/repo/tests/core/test_pair_violations.cpp" "tests/CMakeFiles/cn_tests_core.dir/core/test_pair_violations.cpp.o" "gcc" "tests/CMakeFiles/cn_tests_core.dir/core/test_pair_violations.cpp.o.d"
  "/root/repo/tests/core/test_ppe.cpp" "tests/CMakeFiles/cn_tests_core.dir/core/test_ppe.cpp.o" "gcc" "tests/CMakeFiles/cn_tests_core.dir/core/test_ppe.cpp.o.d"
  "/root/repo/tests/core/test_prio_test.cpp" "tests/CMakeFiles/cn_tests_core.dir/core/test_prio_test.cpp.o" "gcc" "tests/CMakeFiles/cn_tests_core.dir/core/test_prio_test.cpp.o.d"
  "/root/repo/tests/core/test_report.cpp" "tests/CMakeFiles/cn_tests_core.dir/core/test_report.cpp.o" "gcc" "tests/CMakeFiles/cn_tests_core.dir/core/test_report.cpp.o.d"
  "/root/repo/tests/core/test_sppe.cpp" "tests/CMakeFiles/cn_tests_core.dir/core/test_sppe.cpp.o" "gcc" "tests/CMakeFiles/cn_tests_core.dir/core/test_sppe.cpp.o.d"
  "/root/repo/tests/core/test_wallet_inference.cpp" "tests/CMakeFiles/cn_tests_core.dir/core/test_wallet_inference.cpp.o" "gcc" "tests/CMakeFiles/cn_tests_core.dir/core/test_wallet_inference.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cn_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cn_node.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cn_btc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cn_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/cn_tests_core.dir/core/test_audit_pipeline.cpp.o"
  "CMakeFiles/cn_tests_core.dir/core/test_audit_pipeline.cpp.o.d"
  "CMakeFiles/cn_tests_core.dir/core/test_congestion.cpp.o"
  "CMakeFiles/cn_tests_core.dir/core/test_congestion.cpp.o.d"
  "CMakeFiles/cn_tests_core.dir/core/test_darkfee.cpp.o"
  "CMakeFiles/cn_tests_core.dir/core/test_darkfee.cpp.o.d"
  "CMakeFiles/cn_tests_core.dir/core/test_delay_model.cpp.o"
  "CMakeFiles/cn_tests_core.dir/core/test_delay_model.cpp.o.d"
  "CMakeFiles/cn_tests_core.dir/core/test_fee_revenue.cpp.o"
  "CMakeFiles/cn_tests_core.dir/core/test_fee_revenue.cpp.o.d"
  "CMakeFiles/cn_tests_core.dir/core/test_neutrality.cpp.o"
  "CMakeFiles/cn_tests_core.dir/core/test_neutrality.cpp.o.d"
  "CMakeFiles/cn_tests_core.dir/core/test_pair_violations.cpp.o"
  "CMakeFiles/cn_tests_core.dir/core/test_pair_violations.cpp.o.d"
  "CMakeFiles/cn_tests_core.dir/core/test_ppe.cpp.o"
  "CMakeFiles/cn_tests_core.dir/core/test_ppe.cpp.o.d"
  "CMakeFiles/cn_tests_core.dir/core/test_prio_test.cpp.o"
  "CMakeFiles/cn_tests_core.dir/core/test_prio_test.cpp.o.d"
  "CMakeFiles/cn_tests_core.dir/core/test_report.cpp.o"
  "CMakeFiles/cn_tests_core.dir/core/test_report.cpp.o.d"
  "CMakeFiles/cn_tests_core.dir/core/test_sppe.cpp.o"
  "CMakeFiles/cn_tests_core.dir/core/test_sppe.cpp.o.d"
  "CMakeFiles/cn_tests_core.dir/core/test_wallet_inference.cpp.o"
  "CMakeFiles/cn_tests_core.dir/core/test_wallet_inference.cpp.o.d"
  "cn_tests_core"
  "cn_tests_core.pdb"
  "cn_tests_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cn_tests_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

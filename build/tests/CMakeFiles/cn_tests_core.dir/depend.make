# Empty dependencies file for cn_tests_core.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/stats/test_binomial.cpp" "tests/CMakeFiles/cn_tests_stats.dir/stats/test_binomial.cpp.o" "gcc" "tests/CMakeFiles/cn_tests_stats.dir/stats/test_binomial.cpp.o.d"
  "/root/repo/tests/stats/test_bootstrap.cpp" "tests/CMakeFiles/cn_tests_stats.dir/stats/test_bootstrap.cpp.o" "gcc" "tests/CMakeFiles/cn_tests_stats.dir/stats/test_bootstrap.cpp.o.d"
  "/root/repo/tests/stats/test_descriptive.cpp" "tests/CMakeFiles/cn_tests_stats.dir/stats/test_descriptive.cpp.o" "gcc" "tests/CMakeFiles/cn_tests_stats.dir/stats/test_descriptive.cpp.o.d"
  "/root/repo/tests/stats/test_ecdf.cpp" "tests/CMakeFiles/cn_tests_stats.dir/stats/test_ecdf.cpp.o" "gcc" "tests/CMakeFiles/cn_tests_stats.dir/stats/test_ecdf.cpp.o.d"
  "/root/repo/tests/stats/test_fisher.cpp" "tests/CMakeFiles/cn_tests_stats.dir/stats/test_fisher.cpp.o" "gcc" "tests/CMakeFiles/cn_tests_stats.dir/stats/test_fisher.cpp.o.d"
  "/root/repo/tests/stats/test_histogram.cpp" "tests/CMakeFiles/cn_tests_stats.dir/stats/test_histogram.cpp.o" "gcc" "tests/CMakeFiles/cn_tests_stats.dir/stats/test_histogram.cpp.o.d"
  "/root/repo/tests/stats/test_ks.cpp" "tests/CMakeFiles/cn_tests_stats.dir/stats/test_ks.cpp.o" "gcc" "tests/CMakeFiles/cn_tests_stats.dir/stats/test_ks.cpp.o.d"
  "/root/repo/tests/stats/test_normal.cpp" "tests/CMakeFiles/cn_tests_stats.dir/stats/test_normal.cpp.o" "gcc" "tests/CMakeFiles/cn_tests_stats.dir/stats/test_normal.cpp.o.d"
  "/root/repo/tests/stats/test_rank.cpp" "tests/CMakeFiles/cn_tests_stats.dir/stats/test_rank.cpp.o" "gcc" "tests/CMakeFiles/cn_tests_stats.dir/stats/test_rank.cpp.o.d"
  "/root/repo/tests/stats/test_special.cpp" "tests/CMakeFiles/cn_tests_stats.dir/stats/test_special.cpp.o" "gcc" "tests/CMakeFiles/cn_tests_stats.dir/stats/test_special.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cn_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cn_node.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cn_btc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cn_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

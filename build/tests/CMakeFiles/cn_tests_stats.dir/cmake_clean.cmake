file(REMOVE_RECURSE
  "CMakeFiles/cn_tests_stats.dir/stats/test_binomial.cpp.o"
  "CMakeFiles/cn_tests_stats.dir/stats/test_binomial.cpp.o.d"
  "CMakeFiles/cn_tests_stats.dir/stats/test_bootstrap.cpp.o"
  "CMakeFiles/cn_tests_stats.dir/stats/test_bootstrap.cpp.o.d"
  "CMakeFiles/cn_tests_stats.dir/stats/test_descriptive.cpp.o"
  "CMakeFiles/cn_tests_stats.dir/stats/test_descriptive.cpp.o.d"
  "CMakeFiles/cn_tests_stats.dir/stats/test_ecdf.cpp.o"
  "CMakeFiles/cn_tests_stats.dir/stats/test_ecdf.cpp.o.d"
  "CMakeFiles/cn_tests_stats.dir/stats/test_fisher.cpp.o"
  "CMakeFiles/cn_tests_stats.dir/stats/test_fisher.cpp.o.d"
  "CMakeFiles/cn_tests_stats.dir/stats/test_histogram.cpp.o"
  "CMakeFiles/cn_tests_stats.dir/stats/test_histogram.cpp.o.d"
  "CMakeFiles/cn_tests_stats.dir/stats/test_ks.cpp.o"
  "CMakeFiles/cn_tests_stats.dir/stats/test_ks.cpp.o.d"
  "CMakeFiles/cn_tests_stats.dir/stats/test_normal.cpp.o"
  "CMakeFiles/cn_tests_stats.dir/stats/test_normal.cpp.o.d"
  "CMakeFiles/cn_tests_stats.dir/stats/test_rank.cpp.o"
  "CMakeFiles/cn_tests_stats.dir/stats/test_rank.cpp.o.d"
  "CMakeFiles/cn_tests_stats.dir/stats/test_special.cpp.o"
  "CMakeFiles/cn_tests_stats.dir/stats/test_special.cpp.o.d"
  "cn_tests_stats"
  "cn_tests_stats.pdb"
  "cn_tests_stats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cn_tests_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

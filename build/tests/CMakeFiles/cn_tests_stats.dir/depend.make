# Empty dependencies file for cn_tests_stats.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/cn_tests_integration.dir/integration/test_audit_end_to_end.cpp.o"
  "CMakeFiles/cn_tests_integration.dir/integration/test_audit_end_to_end.cpp.o.d"
  "cn_tests_integration"
  "cn_tests_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cn_tests_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

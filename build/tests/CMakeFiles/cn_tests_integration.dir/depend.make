# Empty dependencies file for cn_tests_integration.
# This may be replaced when dependencies are built.

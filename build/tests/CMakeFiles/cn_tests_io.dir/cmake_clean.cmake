file(REMOVE_RECURSE
  "CMakeFiles/cn_tests_io.dir/io/test_dataset_io.cpp.o"
  "CMakeFiles/cn_tests_io.dir/io/test_dataset_io.cpp.o.d"
  "cn_tests_io"
  "cn_tests_io.pdb"
  "cn_tests_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cn_tests_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

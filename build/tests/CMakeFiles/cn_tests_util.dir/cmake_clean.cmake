file(REMOVE_RECURSE
  "CMakeFiles/cn_tests_util.dir/util/test_csv.cpp.o"
  "CMakeFiles/cn_tests_util.dir/util/test_csv.cpp.o.d"
  "CMakeFiles/cn_tests_util.dir/util/test_hex.cpp.o"
  "CMakeFiles/cn_tests_util.dir/util/test_hex.cpp.o.d"
  "CMakeFiles/cn_tests_util.dir/util/test_rng.cpp.o"
  "CMakeFiles/cn_tests_util.dir/util/test_rng.cpp.o.d"
  "CMakeFiles/cn_tests_util.dir/util/test_sha256.cpp.o"
  "CMakeFiles/cn_tests_util.dir/util/test_sha256.cpp.o.d"
  "CMakeFiles/cn_tests_util.dir/util/test_strings.cpp.o"
  "CMakeFiles/cn_tests_util.dir/util/test_strings.cpp.o.d"
  "cn_tests_util"
  "cn_tests_util.pdb"
  "cn_tests_util[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cn_tests_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for cn_tests_util.
# This may be replaced when dependencies are built.

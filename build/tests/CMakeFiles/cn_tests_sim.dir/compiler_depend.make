# Empty compiler generated dependencies file for cn_tests_sim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/cn_tests_sim.dir/sim/test_acceleration.cpp.o"
  "CMakeFiles/cn_tests_sim.dir/sim/test_acceleration.cpp.o.d"
  "CMakeFiles/cn_tests_sim.dir/sim/test_dataset.cpp.o"
  "CMakeFiles/cn_tests_sim.dir/sim/test_dataset.cpp.o.d"
  "CMakeFiles/cn_tests_sim.dir/sim/test_engine.cpp.o"
  "CMakeFiles/cn_tests_sim.dir/sim/test_engine.cpp.o.d"
  "CMakeFiles/cn_tests_sim.dir/sim/test_network.cpp.o"
  "CMakeFiles/cn_tests_sim.dir/sim/test_network.cpp.o.d"
  "CMakeFiles/cn_tests_sim.dir/sim/test_policy.cpp.o"
  "CMakeFiles/cn_tests_sim.dir/sim/test_policy.cpp.o.d"
  "CMakeFiles/cn_tests_sim.dir/sim/test_pool.cpp.o"
  "CMakeFiles/cn_tests_sim.dir/sim/test_pool.cpp.o.d"
  "CMakeFiles/cn_tests_sim.dir/sim/test_workload.cpp.o"
  "CMakeFiles/cn_tests_sim.dir/sim/test_workload.cpp.o.d"
  "cn_tests_sim"
  "cn_tests_sim.pdb"
  "cn_tests_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cn_tests_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/cn_tests_node.dir/node/test_block_template.cpp.o"
  "CMakeFiles/cn_tests_node.dir/node/test_block_template.cpp.o.d"
  "CMakeFiles/cn_tests_node.dir/node/test_fee_estimator.cpp.o"
  "CMakeFiles/cn_tests_node.dir/node/test_fee_estimator.cpp.o.d"
  "CMakeFiles/cn_tests_node.dir/node/test_legacy_priority.cpp.o"
  "CMakeFiles/cn_tests_node.dir/node/test_legacy_priority.cpp.o.d"
  "CMakeFiles/cn_tests_node.dir/node/test_mempool.cpp.o"
  "CMakeFiles/cn_tests_node.dir/node/test_mempool.cpp.o.d"
  "CMakeFiles/cn_tests_node.dir/node/test_mempool_limits.cpp.o"
  "CMakeFiles/cn_tests_node.dir/node/test_mempool_limits.cpp.o.d"
  "CMakeFiles/cn_tests_node.dir/node/test_observer.cpp.o"
  "CMakeFiles/cn_tests_node.dir/node/test_observer.cpp.o.d"
  "CMakeFiles/cn_tests_node.dir/node/test_snapshot.cpp.o"
  "CMakeFiles/cn_tests_node.dir/node/test_snapshot.cpp.o.d"
  "cn_tests_node"
  "cn_tests_node.pdb"
  "cn_tests_node[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cn_tests_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for cn_tests_node.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/node/test_block_template.cpp" "tests/CMakeFiles/cn_tests_node.dir/node/test_block_template.cpp.o" "gcc" "tests/CMakeFiles/cn_tests_node.dir/node/test_block_template.cpp.o.d"
  "/root/repo/tests/node/test_fee_estimator.cpp" "tests/CMakeFiles/cn_tests_node.dir/node/test_fee_estimator.cpp.o" "gcc" "tests/CMakeFiles/cn_tests_node.dir/node/test_fee_estimator.cpp.o.d"
  "/root/repo/tests/node/test_legacy_priority.cpp" "tests/CMakeFiles/cn_tests_node.dir/node/test_legacy_priority.cpp.o" "gcc" "tests/CMakeFiles/cn_tests_node.dir/node/test_legacy_priority.cpp.o.d"
  "/root/repo/tests/node/test_mempool.cpp" "tests/CMakeFiles/cn_tests_node.dir/node/test_mempool.cpp.o" "gcc" "tests/CMakeFiles/cn_tests_node.dir/node/test_mempool.cpp.o.d"
  "/root/repo/tests/node/test_mempool_limits.cpp" "tests/CMakeFiles/cn_tests_node.dir/node/test_mempool_limits.cpp.o" "gcc" "tests/CMakeFiles/cn_tests_node.dir/node/test_mempool_limits.cpp.o.d"
  "/root/repo/tests/node/test_observer.cpp" "tests/CMakeFiles/cn_tests_node.dir/node/test_observer.cpp.o" "gcc" "tests/CMakeFiles/cn_tests_node.dir/node/test_observer.cpp.o.d"
  "/root/repo/tests/node/test_snapshot.cpp" "tests/CMakeFiles/cn_tests_node.dir/node/test_snapshot.cpp.o" "gcc" "tests/CMakeFiles/cn_tests_node.dir/node/test_snapshot.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cn_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cn_node.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cn_btc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cn_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

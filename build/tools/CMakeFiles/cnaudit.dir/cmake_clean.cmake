file(REMOVE_RECURSE
  "CMakeFiles/cnaudit.dir/cnaudit.cpp.o"
  "CMakeFiles/cnaudit.dir/cnaudit.cpp.o.d"
  "cnaudit"
  "cnaudit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnaudit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for cnaudit.
# This may be replaced when dependencies are built.

# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli.roundtrip "/usr/bin/cmake" "-DCNAUDIT=/root/repo/build/tools/cnaudit" "-P" "/root/repo/tools/test_cli.cmake")
set_tests_properties(cli.roundtrip PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;4;add_test;/root/repo/tools/CMakeLists.txt;0;")

// Evasion-aware detector calibration (ROADMAP item 4): ROC-style power
// sweep of the paper's binomial self-interest test against an adversary
// that throttles its own-wallet boosts to dodge it ("On the
// Effectiveness of Mempool-based Transaction Auditing").
//
// For each retained-selfishness intensity theta in [0,1] (the evasion
// budget is 1 - theta) we simulate seed-matched worlds — theta=0 IS the
// honest detection control, sharing its cached world bytes — and record
// the fraction of replicate seeds where F2Pool's self-interest test is
// significant at alpha. The pinned gates (also bits in
// BENCH_detector_power.json, checked by tools/ci.sh):
//   * detector power is monotonically non-increasing in the evasion
//     budget (non-decreasing in theta),
//   * power ~= 1.0 at theta=1 (full selfishness),
//   * the false-positive rate on the honest controls is <= alpha.
// A second section runs the block-withholding detector
// (core/withholding.hpp) on a withholding world against its seed-matched
// honest-publication twin.
//
// `--smoke` runs a reduced grid (theta in {0,1}, one seed) for CI.
#include "common.hpp"
#include "worlds.hpp"

#include <cmath>
#include <cstring>

#include "core/prio_test.hpp"
#include "core/report.hpp"
#include "core/wallet_inference.hpp"
#include "core/withholding.hpp"
#include "util/strings.hpp"

namespace {

using namespace cn;

constexpr double kAlpha = 0.001;
constexpr double kSelfPerBlock = 0.5;

core::PrioTestResult f2pool_test(const io::World& world) {
  const auto registry = btc::CoinbaseTagRegistry::paper_registry();
  const core::PoolAttribution attribution(world.chain, registry);
  const auto txs = core::self_interest_txs(world.chain, attribution, "F2Pool");
  return core::test_differential_prioritization(world.chain, attribution,
                                                "F2Pool", txs);
}

struct ThetaPoint {
  double theta = 0.0;
  double power = 0.0;         ///< fraction of seeds with p < alpha
  double mean_log10_p = 0.0;  ///< mean -log10(p) across seeds
};

ThetaPoint run_theta(std::uint64_t seed, double theta, double scale,
                     std::size_t replicates, bench::JsonReport& json,
                     core::TablePrinter& table) {
  ThetaPoint point;
  point.theta = theta;
  for (std::size_t s = 0; s < replicates; ++s) {
    const auto world = bench::world_for(
        bench::worlds::evasion(seed + s, theta, kSelfPerBlock, scale));
    json.add("txs", static_cast<double>(world.chain.total_tx_count()));
    json.add("blocks", static_cast<double>(world.chain.size()));
    const auto r = f2pool_test(world);
    table.print_row({fixed(theta, 2), fixed(1.0 - theta, 2),
                     std::to_string(seed + s), std::to_string(r.x),
                     std::to_string(r.y),
                     core::format_p_value(r.p_accelerate), fixed(r.sppe, 1)});
    if (r.p_accelerate < kAlpha) point.power += 1.0;
    point.mean_log10_p += -std::log10(std::max(r.p_accelerate, 1e-300));
  }
  point.power /= static_cast<double>(replicates);
  point.mean_log10_p /= static_cast<double>(replicates);
  return point;
}

/// Flag rate of @p pool in @p reports (0 when the pool was not judged).
double flag_rate_of(const std::vector<core::WithholdingReport>& reports,
                    const std::string& pool) {
  for (const auto& r : reports) {
    if (r.pool == pool) return r.flagged_rate;
  }
  return 0.0;
}

int run(bool smoke) {
  bench::banner("Evasion sweep — detector power vs evasion budget",
                "(beyond the paper: ROC curves for the binomial test "
                "against throttled self-interest)");
  const std::uint64_t seed = bench::seed_from_env();
  const double scale = bench::scale_from_env(0.4);
  const std::size_t replicates = smoke ? 1 : 3;
  const std::vector<double> thetas =
      smoke ? std::vector<double>{0.0, 1.0}
            : std::vector<double>{0.0, 0.25, 0.5, 0.75, 1.0};

  bench::JsonReport json("detector_power");
  json.metric("alpha", kAlpha);
  json.metric("replicates", static_cast<double>(replicates));
  json.metric("smoke", smoke ? 1.0 : 0.0);

  std::printf("A. binomial-test power vs retained selfishness theta "
              "(F2Pool, %zu seed(s) per point):\n", replicates);
  core::TablePrinter table(
      {"theta", "budget", "seed", "x", "y", "p-accel", "SPPE"},
      {7, 7, 8, 6, 6, 10, 9});
  table.print_header();
  std::vector<ThetaPoint> curve;
  for (const double theta : thetas) {
    curve.push_back(run_theta(seed, theta, scale, replicates, json, table));
  }
  std::printf("\n   evasion-budget -> power curve:\n");
  for (const ThetaPoint& p : curve) {
    char key[48];
    std::snprintf(key, sizeof key, "power_theta_%03d",
                  static_cast<int>(p.theta * 100.0 + 0.5));
    json.metric(key, p.power);
    std::snprintf(key, sizeof key, "mean_neglog10p_theta_%03d",
                  static_cast<int>(p.theta * 100.0 + 0.5));
    json.metric(key, p.mean_log10_p);
    std::printf("   budget %.2f (theta %.2f)  power %.2f  "
                "mean -log10(p) %.1f\n",
                1.0 - p.theta, p.theta, p.power, p.mean_log10_p);
  }

  // The pinned golden assertions (acceptance criteria).
  bool monotone = true;
  for (std::size_t i = 1; i < curve.size(); ++i) {
    // theta ascending == evasion budget descending: power must not drop.
    if (curve[i].power < curve[i - 1].power) monotone = false;
  }
  const double power_full = curve.back().power;
  const double fpr = curve.front().power;  // theta=0 IS the honest control
  json.metric("false_positive_rate", fpr);
  const bool gate_monotone = monotone;
  const bool gate_full = power_full >= 0.999;
  const bool gate_fpr = fpr <= kAlpha;
  json.metric("gate_power_monotone_in_budget", gate_monotone ? 1.0 : 0.0);
  json.metric("gate_power_full_selfish", gate_full ? 1.0 : 0.0);
  json.metric("gate_fpr_at_alpha", gate_fpr ? 1.0 : 0.0);
  bench::compare("power monotone non-increasing in budget", "yes",
                 gate_monotone ? "yes" : "NO");
  bench::compare("power at theta=1 (full selfishness)", "~1.0",
                 fixed(power_full, 2) + (gate_full ? "" : "  (GATE FAILED)"));
  bench::compare("false-positive rate on honest controls",
                 "<= " + fixed(kAlpha, 3), fixed(fpr, 3));

  // --- B: block-withholding detector on a withholding world --------------
  bool gate_withholding = true;
  if (!smoke) {
    std::printf("\nB. block-withholding detector (missing-mempool overlap):\n");
    const auto registry = btc::CoinbaseTagRegistry::paper_registry();
    double rate_honest = 0.0;
    double rate_withheld = 0.0;
    for (const double delay_s : {0.0, 120.0}) {
      const auto world = bench::world_for(
          bench::worlds::withholding(seed, delay_s, kSelfPerBlock, scale));
      json.add("txs", static_cast<double>(world.chain.total_tx_count()));
      json.add("blocks", static_cast<double>(world.chain.size()));
      const core::PoolAttribution attribution(world.chain, registry);
      const auto reports = core::withholding_reports(
          world.chain, attribution, world.first_seen_map);
      std::printf("   delay %.0fs:\n", delay_s);
      for (const auto& r : reports) {
        std::printf("     %-16s %5llu of %5llu blocks flagged (%s) p=%s\n",
                    r.pool.c_str(),
                    static_cast<unsigned long long>(r.flagged),
                    static_cast<unsigned long long>(r.blocks),
                    percent(r.flagged_rate, 1).c_str(),
                    core::format_p_value(r.p_value).c_str());
      }
      const double rate = flag_rate_of(reports, "F2Pool");
      if (delay_s == 0.0) {
        rate_honest = rate;
      } else {
        rate_withheld = rate;
      }
    }
    json.metric("withhold_flag_rate_honest", rate_honest);
    json.metric("withhold_flag_rate_withheld", rate_withheld);
    gate_withholding = rate_withheld > rate_honest;
    json.metric("gate_withholding_detected", gate_withholding ? 1.0 : 0.0);
    bench::compare("withheld-vs-honest F2Pool flag rate", "higher",
                   percent(rate_withheld, 1) + " vs " +
                       percent(rate_honest, 1));
  }

  // Below ~0.25 scale the worlds are too small for the binomial test to
  // be reliably powered (cnsweep --smoke runs the matrix at 0.1), so the
  // gates are recorded in the JSON but only enforced at analysis scales.
  const bool enforce = scale >= 0.25;
  json.metric("gates_enforced", enforce ? 1.0 : 0.0);
  if (enforce &&
      !(gate_monotone && gate_full && gate_fpr && gate_withholding)) {
    std::fprintf(stderr, "error: detector-power gate(s) failed "
                         "(see BENCH_detector_power.json)\n");
    json.flush();
    return 1;
  }
  return 0;
}

void BM_WithholdingDetector(benchmark::State& state) {
  static const sim::SimResult world =
      sim::make_dataset(sim::DatasetKind::kC, 3, 0.05);
  static const auto registry = btc::CoinbaseTagRegistry::paper_registry();
  static const core::PoolAttribution attribution(world.chain, registry);
  static const auto first_seen = world.observer.first_seen_map();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::withholding_reports(world.chain, attribution, first_seen));
  }
}
BENCHMARK(BM_WithholdingDetector)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const int rc = run(smoke);
  if (rc != 0) return rc;
  if (smoke) return 0;  // skip microbenchmarks; --smoke is not a gbench flag
  return cn::bench::run_microbenchmarks(argc, argv);
}

// Ablation studies for the audit methodology (DESIGN.md §5 extensions).
//
// Four questions the paper's method raises but cannot answer on fixed
// real-world data — a simulator with ground truth can:
//   A. How much self-interest volume does the binomial test need before
//      a selfish pool becomes detectable (power curve)?
//   B. Is the test calibrated — does it stay silent when the same pool
//      does NOT misbehave (boost ablated)?
//   C. How much of the pairwise-violation signal is explained by P2P
//      propagation skew (propagation ablated)?
//   D. Does Fisher windowing (§5.1.3) preserve detection under drifting
//      hash rates (window-count sweep)?
#include "common.hpp"
#include "worlds.hpp"

#include "core/congestion.hpp"
#include "core/pair_violations.hpp"
#include "core/prio_test.hpp"
#include "core/wallet_inference.hpp"
#include "util/strings.hpp"

namespace {

using namespace cn;

io::World run_variant(std::uint64_t seed, double self_per_block,
                      bool selfish_enabled, bool propagation_enabled) {
  return bench::world_for(bench::worlds::detection(
      seed, self_per_block, selfish_enabled, propagation_enabled));
}

core::PrioTestResult f2pool_test(const io::World& world) {
  const auto registry = btc::CoinbaseTagRegistry::paper_registry();
  const core::PoolAttribution attribution(world.chain, registry);
  const auto txs = core::self_interest_txs(world.chain, attribution, "F2Pool");
  return core::test_differential_prioritization(world.chain, attribution,
                                                "F2Pool", txs);
}

void BM_NeutralAttributionPipeline(benchmark::State& state) {
  static const sim::SimResult world = sim::make_dataset(sim::DatasetKind::kC, 3, 0.05);
  static const auto registry = btc::CoinbaseTagRegistry::paper_registry();
  for (auto _ : state) {
    const core::PoolAttribution attribution(world.chain, registry);
    benchmark::DoNotOptimize(
        core::self_interest_txs(world.chain, attribution, "F2Pool"));
  }
}
BENCHMARK(BM_NeutralAttributionPipeline)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bench::banner("Ablations — power, calibration, and signal attribution",
                "(extensions beyond the paper, enabled by ground truth)");
  const std::uint64_t seed = bench::seed_from_env();
  bench::JsonReport json("ablation_detection");

  // --- A: power curve over self-interest volume --------------------------
  std::printf("A. detection power vs self-interest tx volume (F2Pool, selfish ON):\n");
  core::TablePrinter power({"self-txs/block", "x", "y", "p-accel", "SPPE"},
                           {16, 6, 6, 10, 9});
  power.print_header();
  for (double volume : {0.02, 0.08, 0.2, 0.5}) {
    const auto world = run_variant(seed, volume, true, true);
    json.add("txs", static_cast<double>(world.chain.total_tx_count()));
    json.add("blocks", static_cast<double>(world.chain.size()));
    const auto r = f2pool_test(world);
    power.print_row({fixed(volume, 2), std::to_string(r.x), std::to_string(r.y),
                     core::format_p_value(r.p_accelerate), fixed(r.sppe, 1)});
  }
  std::printf("   (expected: p collapses toward 0 as volume grows)\n\n");

  // --- B: calibration with the boost ablated -----------------------------
  std::printf("B. calibration: same pool, selfish boost ABLATED:\n");
  core::TablePrinter calib({"seed", "x", "y", "p-accel", "SPPE"},
                           {8, 6, 6, 10, 9});
  calib.print_header();
  int false_positives = 0;
  for (std::uint64_t s = 0; s < 3; ++s) {
    const auto world = run_variant(seed + s, 0.5, false, true);
    json.add("txs", static_cast<double>(world.chain.total_tx_count()));
    json.add("blocks", static_cast<double>(world.chain.size()));
    const auto r = f2pool_test(world);
    calib.print_row({std::to_string(seed + s), std::to_string(r.x),
                     std::to_string(r.y), core::format_p_value(r.p_accelerate),
                     fixed(r.sppe, 1)});
    if (r.p_accelerate < 0.001) ++false_positives;
  }
  bench::compare("false positives across seeds", "0",
                 std::to_string(false_positives));
  std::printf("\n");

  // --- C: how much violation signal is propagation skew? -----------------
  std::printf("C. pairwise violations with/without P2P propagation skew:\n");
  for (const bool propagation : {true, false}) {
    const auto world = run_variant(seed, 0.3, true, propagation);
    json.add("txs", static_cast<double>(world.chain.total_tx_count()));
    json.add("blocks", static_cast<double>(world.chain.size()));
    const auto seen = core::collect_seen_txs(
        world.chain,
        [&](const btc::Txid& id) { return world.first_seen(id); });
    const auto pending =
        core::pending_at(seen, world.chain, world.config.duration / 2);
    const auto stats = core::count_pair_violations(pending, 0, true);
    std::printf("   propagation %-3s  predicted=%llu  violations=%llu  "
                "fraction=%s\n",
                propagation ? "ON" : "OFF",
                static_cast<unsigned long long>(stats.predicted_pairs),
                static_cast<unsigned long long>(stats.violations),
                percent(stats.fraction(), 3).c_str());
  }
  std::printf("   (expected: the non-CPFP fraction shrinks when every pool "
              "sees every tx instantly)\n\n");

  // --- D: Fisher window-count sweep ---------------------------------------
  std::printf("D. windowed Fisher combination (F2Pool, selfish ON):\n");
  {
    const auto world = run_variant(seed, 0.5, true, true);
    json.add("txs", static_cast<double>(world.chain.total_tx_count()));
    json.add("blocks", static_cast<double>(world.chain.size()));
    const auto registry = btc::CoinbaseTagRegistry::paper_registry();
    const core::PoolAttribution attribution(world.chain, registry);
    const auto txs = core::self_interest_txs(world.chain, attribution, "F2Pool");
    for (unsigned windows : {1u, 2u, 4u, 8u}) {
      const double p = core::windowed_acceleration_p_value(
          world.chain, attribution, "F2Pool", txs, windows);
      std::printf("   windows=%u  combined p=%s\n", windows,
                  core::format_p_value(p).c_str());
    }
  }
  std::printf("   (expected: significant at every window count)\n");

  return cn::bench::run_microbenchmarks(argc, argv);
}

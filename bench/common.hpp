// Shared scaffolding for the reproduction benches.
//
// Every bench binary reproduces one table or figure of the paper: it
// simulates the corresponding data set, runs the audit, prints a
// "paper vs measured" report to stdout, writes plottable CSVs under
// ./bench_out/, and finally runs a couple of google-benchmark
// micro-benchmarks of the library primitives it exercises.
//
// Environment knobs (all optional):
//   CN_SEED  — simulation seed (default 42)
//   CN_SCALE — data-set scale factor (default 1.0)
#pragma once

#include <benchmark/benchmark.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "core/report.hpp"
#include "obs/export.hpp"
#include "sim/dataset.hpp"

namespace cn::bench {

// A bench run with a half-parsed seed or scale silently measures the
// wrong world (CN_SEED=abc used to coerce to 0), so both knobs reject
// anything but a complete, in-range number — one line to stderr, exit 2.
inline std::uint64_t seed_from_env() {
  const char* s = std::getenv("CN_SEED");
  if (s == nullptr) return 42;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0' || errno == ERANGE) {
    std::fprintf(stderr, "error: CN_SEED='%s' is not an unsigned integer\n", s);
    std::exit(2);
  }
  return v;
}

inline double scale_from_env(double fallback = 1.0) {
  const char* s = std::getenv("CN_SCALE");
  if (s == nullptr) return fallback;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s || *end != '\0' || errno == ERANGE || !std::isfinite(v) ||
      v <= 0.0) {
    std::fprintf(stderr, "error: CN_SCALE='%s' is not a positive number\n", s);
    std::exit(2);
  }
  return v;
}

/// Directory for CSV exports; created on first use.
inline std::string out_dir() {
  static const std::string dir = [] {
    std::error_code ec;
    std::filesystem::create_directories("bench_out", ec);
    return std::string("bench_out");
  }();
  return dir;
}

/// Machine-readable companion to the human-readable bench output.
///
/// Every bench binary owns one JsonReport for its lifetime; on
/// destruction (or an explicit flush) it writes
/// `bench_out/BENCH_<name>.json` so successive PRs can track the perf
/// trajectory without scraping stdout. Schema (all values numbers):
///
///   {
///     "bench": "<name>",
///     "seed": <CN_SEED>,
///     "scale": <CN_SCALE>,
///     "wall_seconds": <total main() wall time>,
///     "metrics": { "<key>": <value>, ... }   // insertion order
///   }
///
/// When a "txs" metric was recorded, flush() derives "txs_per_s" from it
/// and the wall time. Wall-clock use is confined to this harness — the
/// simulation itself stays deterministic.
///
/// flush() also exports the cn::obs observability documents next to the
/// report — BENCH_<name>.metrics.json and BENCH_<name>.trace.json
/// (DESIGN.md §10) — so every bench run ships the registry counters and
/// the stage timeline it produced.
class JsonReport {
 public:
  explicit JsonReport(std::string name)
      : name_(std::move(name)), start_(std::chrono::steady_clock::now()) {}

  JsonReport(const JsonReport&) = delete;
  JsonReport& operator=(const JsonReport&) = delete;

  ~JsonReport() { flush(); }

  /// Adds @p delta to a metric, creating it at zero. For benches that
  /// simulate several worlds (data sets A/B/C, year slices, ablation
  /// variants) and want an aggregate "txs"/"blocks" total.
  void add(const std::string& key, double delta) {
    for (auto& [k, v] : metrics_) {
      if (k == key) {
        v += delta;
        return;
      }
    }
    metrics_.emplace_back(key, delta);
  }

  /// Records (or overwrites) one numeric metric.
  void metric(const std::string& key, double value) {
    for (auto& [k, v] : metrics_) {
      if (k == key) {
        v = value;
        return;
      }
    }
    metrics_.emplace_back(key, value);
  }

  void flush() {
    if (flushed_) return;
    flushed_ = true;
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
            .count();
    for (const auto& [k, v] : metrics_) {
      if (k == "txs" && wall > 0.0) {
        metric("txs_per_s", v / wall);
        break;
      }
    }
    // Atomic like the CSV/CNB1 exports: write <path>.tmp, rename into
    // place only after every byte landed, and say WHY on failure — a
    // perf-trajectory tracker reading a torn or silently-missing report
    // is worse than one reading none.
    const std::string path = out_dir() + "/BENCH_" + name_ + ".json";
    const std::string tmp = path + ".tmp";
    std::FILE* f = std::fopen(tmp.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: BENCH report: cannot create %s: %s\n",
                   tmp.c_str(), std::strerror(errno));
      return;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n", name_.c_str());
    std::fprintf(f, "  \"seed\": %llu,\n",
                 static_cast<unsigned long long>(seed_from_env()));
    std::fprintf(f, "  \"scale\": %.17g,\n", scale_from_env());
    std::fprintf(f, "  \"wall_seconds\": %.6f,\n", wall);
    std::fprintf(f, "  \"metrics\": {");
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      const double v = std::isfinite(metrics_[i].second) ? metrics_[i].second : 0.0;
      std::fprintf(f, "%s\n    \"%s\": %.17g", i == 0 ? "" : ",",
                   metrics_[i].first.c_str(), v);
    }
    std::fprintf(f, "%s}\n}\n", metrics_.empty() ? "" : "\n  ");
    const bool write_failed = std::ferror(f) != 0;
    if (std::fclose(f) != 0 || write_failed) {
      std::fprintf(stderr, "error: BENCH report: write failed for %s: %s\n",
                   tmp.c_str(), std::strerror(errno));
      std::remove(tmp.c_str());
      return;
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
      std::fprintf(stderr, "error: BENCH report: rename to %s failed: %s\n",
                   path.c_str(), ec.message().c_str());
      std::remove(tmp.c_str());
      return;
    }
    std::printf("JSON: %s\n", path.c_str());

    obs::write_metrics_json(out_dir() + "/BENCH_" + name_ + ".metrics.json");
    obs::write_trace_json(out_dir() + "/BENCH_" + name_ + ".trace.json");
  }

 private:
  std::string name_;
  std::chrono::steady_clock::time_point start_;
  std::vector<std::pair<std::string, double>> metrics_;
  bool flushed_ = false;
};

inline void banner(const char* experiment, const char* claim) {
  std::printf("================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper: %s\n", claim);
  std::printf("================================================================\n");
}

/// One "paper vs measured" line.
inline void compare(const char* metric, const std::string& paper,
                    const std::string& measured) {
  std::printf("  %-44s paper: %-18s measured: %s\n", metric, paper.c_str(),
              measured.c_str());
}

/// Runs registered google-benchmark micro-benchmarks (call at the end of
/// main, after the experiment output).
inline int run_microbenchmarks(int argc, char** argv) {
  std::printf("\n--- micro-benchmarks -------------------------------------------\n");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace cn::bench

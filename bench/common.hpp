// Shared scaffolding for the reproduction benches.
//
// Every bench binary reproduces one table or figure of the paper: it
// simulates the corresponding data set, runs the audit, prints a
// "paper vs measured" report to stdout, writes plottable CSVs under
// ./bench_out/, and finally runs a couple of google-benchmark
// micro-benchmarks of the library primitives it exercises.
//
// Environment knobs (all optional):
//   CN_SEED  — simulation seed (default 42)
//   CN_SCALE — data-set scale factor (default 1.0)
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "core/report.hpp"
#include "sim/dataset.hpp"

namespace cn::bench {

inline std::uint64_t seed_from_env() {
  const char* s = std::getenv("CN_SEED");
  return s != nullptr ? std::strtoull(s, nullptr, 10) : 42;
}

inline double scale_from_env(double fallback = 1.0) {
  const char* s = std::getenv("CN_SCALE");
  return s != nullptr ? std::strtod(s, nullptr) : fallback;
}

/// Directory for CSV exports; created on first use.
inline std::string out_dir() {
  static const std::string dir = [] {
    std::error_code ec;
    std::filesystem::create_directories("bench_out", ec);
    return std::string("bench_out");
  }();
  return dir;
}

inline void banner(const char* experiment, const char* claim) {
  std::printf("================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper: %s\n", claim);
  std::printf("================================================================\n");
}

/// One "paper vs measured" line.
inline void compare(const char* metric, const std::string& paper,
                    const std::string& measured) {
  std::printf("  %-44s paper: %-18s measured: %s\n", metric, paper.c_str(),
              measured.c_str());
}

/// Runs registered google-benchmark micro-benchmarks (call at the end of
/// main, after the experiment output).
inline int run_microbenchmarks(int argc, char** argv) {
  std::printf("\n--- micro-benchmarks -------------------------------------------\n");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace cn::bench

// Table 2 — differential prioritization of self-interest transactions.
//
// Paper claims: F2Pool, ViaBTC, 1THash&58Coin and SlushPool accelerate
// their own transactions (acceleration p-value 0.0000, SPPE 78-99%);
// ViaBTC *collusively* accelerates 1THash&58Coin's and SlushPool's
// transactions; no other top-10 pool shows the effect.
#include "common.hpp"
#include "worlds.hpp"

#include "core/prio_test.hpp"
#include "core/wallet_inference.hpp"
#include "stats/binomial.hpp"
#include "util/strings.hpp"

namespace {

void BM_ExactBinomialTest(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(cn::stats::acceleration_p_value(466, 839, 0.1753));
  }
}
BENCHMARK(BM_ExactBinomialTest);

void BM_PrioTestFull(benchmark::State& state) {
  using namespace cn;
  static const sim::SimResult world = sim::make_dataset(sim::DatasetKind::kC, 3, 0.1);
  static const auto registry = btc::CoinbaseTagRegistry::paper_registry();
  static const core::PoolAttribution attribution(world.chain, registry);
  static const auto txs = core::self_interest_txs(world.chain, attribution, "F2Pool");
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::test_differential_prioritization(
        world.chain, attribution, "F2Pool", txs));
  }
}
BENCHMARK(BM_PrioTestFull)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  using namespace cn;
  bench::banner("Table 2 — self-interest differential prioritization",
                "F2Pool/ViaBTC/1THash&58Coin/SlushPool accelerate their own "
                "txs (p=0.0000, SPPE 78-99); ViaBTC colludes for partners");

  const std::uint64_t seed = bench::seed_from_env();
  const double scale = bench::scale_from_env(1.0);
  bench::JsonReport json("tab02_self_interest");
  const io::World world = bench::world_for(
      bench::worlds::baseline(sim::DatasetKind::kC, seed, scale));
  json.metric("txs", static_cast<double>(world.chain.total_tx_count()));
  json.metric("blocks", static_cast<double>(world.chain.size()));
  const auto registry = btc::CoinbaseTagRegistry::paper_registry();
  const core::PoolAttribution attribution(world.chain, registry);

  core::TablePrinter table({"txs of", "tested pool", "theta0", "x", "y",
                            "p-accel", "p-decel", "SPPE"},
                           {16, 16, 9, 6, 6, 9, 9, 9});
  table.print_header();

  const auto print_test = [&](const std::string& tx_owner,
                              const std::string& pool) {
    const auto txs = core::self_interest_txs(world.chain, attribution, tx_owner);
    const auto r = core::test_differential_prioritization(world.chain, attribution,
                                                          pool, txs);
    table.print_row({tx_owner, pool, fixed(r.theta0, 4), std::to_string(r.x),
                     std::to_string(r.y), core::format_p_value(r.p_accelerate),
                     core::format_p_value(r.p_decelerate), fixed(r.sppe, 2)});
    return r;
  };

  // The paper's Table 2 rows.
  std::printf("(paper rows: all flagged with p=0.0000 and SPPE 45-99)\n");
  print_test("F2Pool", "F2Pool");
  print_test("ViaBTC", "ViaBTC");
  print_test("1THash&58Coin", "ViaBTC");
  print_test("1THash&58Coin", "1THash&58Coin");
  print_test("SlushPool", "SlushPool");
  print_test("SlushPool", "ViaBTC");

  // Calibration: the large honest pools, tested on their own txs.
  std::printf("\n(control rows: honest pools — no significant acceleration expected)\n");
  table.print_header();
  int false_positives = 0;
  for (const char* pool : {"Poolin", "BTC.com", "AntPool", "Huobi", "Okex",
                           "Binance Pool"}) {
    const auto r = print_test(pool, pool);
    if (r.y >= 10 && r.p_accelerate < 0.001) ++false_positives;
  }
  bench::compare("honest pools falsely flagged", "0", std::to_string(false_positives));

  // Long-horizon variant (§5.1.3): Fisher-combined windowed test.
  const auto f2 = core::self_interest_txs(world.chain, attribution, "F2Pool");
  const double fisher_p = core::windowed_acceleration_p_value(
      world.chain, attribution, "F2Pool", f2, 4);
  bench::compare("F2Pool windowed Fisher p-value", "(extension; ~0)",
                 core::format_p_value(fisher_p));

  return cn::bench::run_microbenchmarks(argc, argv);
}

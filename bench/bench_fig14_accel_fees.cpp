// Figure 14 (+ §G) — acceleration-service prices vs public transaction
// fees, for a live Mempool snapshot.
//
// Paper claims: BTC.com's quoted acceleration fee is on average 566x
// (median 117x) the transaction's public fee; quotes range from ~0.5x to
// ~430,000x; had buyers offered the quote as a public fee, every miner
// would have prioritized them (the quote exceeds every pending fee-rate).
#include "common.hpp"
#include "worlds.hpp"

#include "core/congestion.hpp"
#include "stats/descriptive.hpp"
#include "stats/ecdf.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace {

void BM_Quote(benchmark::State& state) {
  using namespace cn;
  const sim::AccelerationService service;
  Rng rng(1);
  const auto tx = btc::make_payment(0, 250, btc::Satoshi{500},
                                    btc::Address::derive("a"),
                                    btc::Address::derive("b"),
                                    btc::Satoshi{1000}, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(service.quote(tx, rng));
  }
}
BENCHMARK(BM_Quote);

}  // namespace

int main(int argc, char** argv) {
  using namespace cn;
  bench::banner("Figure 14 — acceleration fees vs public fees",
                "quotes average 566x (median 117x) the public fee; quoted "
                "total outranks every pending fee-rate");

  const std::uint64_t seed = bench::seed_from_env();
  const double scale = bench::scale_from_env(0.4);
  bench::JsonReport json("fig14_accel_fees");

  // Recreate the paper's setup: take a Mempool snapshot mid-run and quote
  // every pending transaction through the acceleration service.
  const io::World world = bench::world_for(
      bench::worlds::baseline(sim::DatasetKind::kC, seed, scale));
  json.metric("txs", static_cast<double>(world.chain.total_tx_count()));
  json.metric("blocks", static_cast<double>(world.chain.size()));
  const auto seen = core::collect_seen_txs(
      world.chain,
      [&](const btc::Txid& id) { return world.first_seen(id); });
  const SimTime snapshot_time = world.config.duration / 2;
  const auto pending = core::pending_at(seen, world.chain, snapshot_time);
  json.metric("pending_at_snapshot", static_cast<double>(pending.size()));

  sim::AccelerationService service(world.config.quote_model);
  Rng rng(seed ^ 0xacce1);

  std::vector<double> public_rates, quoted_rates, multipliers;
  // Quote a representative pending transaction population. The SeenTx view
  // has rates; reconstruct fee/size at the mean tx size for quoting.
  const std::uint32_t vsize = 250;
  for (std::size_t i = 0; i < pending.size(); ++i) {
    const auto fee = btc::Satoshi{
        static_cast<std::int64_t>(pending[i].fee_rate * vsize)};
    const auto tx = btc::make_payment(0, vsize, fee, btc::Address::derive("q"),
                                      btc::Address::derive("r"),
                                      btc::Satoshi{1000}, 900'000 + i);
    const btc::Satoshi quote = service.quote(tx, rng);
    const double public_fee = std::max(static_cast<double>(fee.value), 1.0);
    const double quoted_total_rate =
        (static_cast<double>(quote.value) + public_fee) / vsize;
    public_rates.push_back(pending[i].fee_rate);
    quoted_rates.push_back(quoted_total_rate);
    multipliers.push_back(static_cast<double>(quote.value) / public_fee);
  }

  const auto m = stats::summarize(multipliers);
  bench::compare("pending txs quoted", "23,341 of 26,332",
                 with_commas(multipliers.size()));
  bench::compare("mean multiplier", "566.3x", fixed(m.mean, 1) + "x");
  bench::compare("median multiplier", "116.64x", fixed(m.median, 2) + "x");
  bench::compare("p25 multiplier", "51.64x", fixed(m.p25, 2) + "x");
  bench::compare("p75 multiplier", "351.8x", fixed(m.p75, 2) + "x");
  bench::compare("max multiplier", "428,800x", fixed(m.max, 0) + "x");
  // §5.4.1's framing: accelerated totals would outrank the ordinary
  // fee-rate competition. Compare the distributions.
  {
    const stats::Ecdf pub{std::span<const double>(public_rates)};
    const stats::Ecdf quo{std::span<const double>(quoted_rates)};
    bench::compare("median quoted total vs p99 public fee-rate",
                   "quote outranks the Mempool",
                   fixed(quo.quantile(0.5), 1) + " vs " + fixed(pub.quantile(0.99), 1) +
                       " sat/vB");
  }

  const stats::Ecdf public_cdf{std::span<const double>(public_rates)};
  const stats::Ecdf quoted_cdf{std::span<const double>(quoted_rates)};
  core::print_cdf_summary("public fee-rate (sat/vB)", public_cdf);
  core::print_cdf_summary("accelerated total rate (sat/vB)", quoted_cdf);
  core::write_cdf_csv(bench::out_dir() + "/fig14_public_rates.csv", public_cdf,
                      "sat_per_vb");
  core::write_cdf_csv(bench::out_dir() + "/fig14_quoted_rates.csv", quoted_cdf,
                      "sat_per_vb");
  std::printf("CSV: %s/fig14_*.csv\n", bench::out_dir().c_str());

  return cn::bench::run_microbenchmarks(argc, argv);
}

// Figure 2 — blocks mined and transactions confirmed by the top-20
// mining pools in data sets A, B and C, attributed from coinbase markers.
//
// Paper claim: top-20 pools cover 94.97% / 93.52% / 98.08% of all blocks;
// the top-5 orderings are (A) BTC.com, AntPool, F2Pool, Poolin, SlushPool
// and (C) F2Pool, Poolin, BTC.com, AntPool, Huobi.
#include "common.hpp"
#include "worlds.hpp"

#include "core/wallet_inference.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"

namespace {

void report(cn::sim::DatasetKind kind, const char* name, std::uint64_t seed,
            double scale, cn::CsvWriter& csv, cn::bench::JsonReport& json) {
  using namespace cn;
  const io::World world =
      bench::world_for(bench::worlds::baseline(kind, seed, scale));
  json.add("txs", static_cast<double>(world.chain.total_tx_count()));
  json.add("blocks", static_cast<double>(world.chain.size()));
  const auto registry = btc::CoinbaseTagRegistry::paper_registry();
  const core::PoolAttribution attribution(world.chain, registry);

  // Transactions confirmed per pool.
  std::unordered_map<std::string, std::uint64_t> txs_by_pool;
  for (const auto& block : world.chain.blocks()) {
    const auto pool = attribution.pool_of(block.height());
    if (pool.has_value()) txs_by_pool[*pool] += block.tx_count();
  }

  std::printf("--- data set %s: top pools by blocks mined ---\n", name);
  core::TablePrinter table({"pool", "blocks", "share%", "cfg%", "txs"},
                           {16, 9, 9, 9, 11});
  table.print_header();
  const auto order = attribution.pools_by_blocks();
  double top20 = 0.0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    const double share = attribution.hash_share(order[i]);
    if (i < 20) top20 += share;
    double configured = 0.0;
    for (const auto& spec : world.config.pools) {
      if (spec.name == order[i]) configured = spec.hash_share;
    }
    if (i < 10) {
      table.print_row({order[i], with_commas(attribution.blocks_of(order[i])),
                       fixed(share * 100.0, 2), fixed(configured, 2),
                       with_commas(txs_by_pool[order[i]])});
    }
    csv.field(std::string(name)).field(order[i]);
    csv.field(attribution.blocks_of(order[i])).field(share * 100.0, 3);
    csv.field(txs_by_pool[order[i]]);
    csv.end_row();
  }
  bench::compare("top-20 combined share",
                 kind == sim::DatasetKind::kA   ? "94.97%"
                 : kind == sim::DatasetKind::kB ? "93.52%"
                                                : "98.08%",
                 percent(top20));
  bench::compare("unidentified blocks",
                 kind == sim::DatasetKind::kC ? "1.32%" : "(unreported)",
                 percent(static_cast<double>(attribution.unidentified_blocks()) /
                         static_cast<double>(attribution.total_blocks())));
  std::printf("\n");
}

void BM_Attribution(benchmark::State& state) {
  using namespace cn;
  static const sim::SimResult world = sim::make_dataset(sim::DatasetKind::kA, 3, 0.05);
  static const auto registry = btc::CoinbaseTagRegistry::paper_registry();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::PoolAttribution(world.chain, registry));
  }
}
BENCHMARK(BM_Attribution)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  using namespace cn;
  bench::banner("Figure 2 — pool block/tx distribution in A, B, C",
                "top-20 pools mine ~94-98% of blocks; per-set top-5 order as "
                "listed in the paper");

  CsvWriter csv(bench::out_dir() + "/fig02_pool_shares.csv");
  csv.header({"dataset", "pool", "blocks", "share_percent", "txs"});

  const std::uint64_t seed = bench::seed_from_env();
  bench::JsonReport json("fig02_pool_shares");
  report(sim::DatasetKind::kA, "A", seed, bench::scale_from_env(0.6), csv, json);
  report(sim::DatasetKind::kB, "B", seed, bench::scale_from_env(0.6), csv, json);
  report(sim::DatasetKind::kC, "C", seed, bench::scale_from_env(0.6), csv, json);
  std::printf("CSV: %s/fig02_pool_shares.csv\n", bench::out_dir().c_str());

  return cn::bench::run_microbenchmarks(argc, argv);
}

// Figure 4 (+ Figures 10, 11) — commit delays, fee-rate distributions,
// and fee-rates conditioned on the congestion level at issue time.
//
// Paper claims: ~65% (A) / ~60% (B) of transactions commit in the next
// block while 15-20% wait 3+ blocks and 5-10% wait 10+; fee-rates span
// four orders of magnitude; fee-rate distributions are strictly ordered
// by congestion level; per-pool fee distributions barely differ (Fig 10).
#include "common.hpp"
#include "worlds.hpp"

#include "core/congestion.hpp"
#include "core/wallet_inference.hpp"
#include "stats/ecdf.hpp"
#include "stats/ks.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"

namespace {

void BM_CollectSeenTxs(benchmark::State& state) {
  using namespace cn;
  static const sim::SimResult world = sim::make_dataset(sim::DatasetKind::kA, 3, 0.1);
  const auto lookup = [&](const btc::Txid& id) { return world.observer.first_seen(id); };
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::collect_seen_txs(world.chain, lookup));
  }
}
BENCHMARK(BM_CollectSeenTxs)->Unit(benchmark::kMillisecond);

void BM_CommitDelays(benchmark::State& state) {
  using namespace cn;
  static const sim::SimResult world = sim::make_dataset(sim::DatasetKind::kA, 3, 0.1);
  static const auto seen = core::collect_seen_txs(
      world.chain, [&](const btc::Txid& id) { return world.observer.first_seen(id); });
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::commit_delays_blocks(world.chain, seen));
  }
}
BENCHMARK(BM_CommitDelays)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  using namespace cn;
  bench::banner("Figure 4 / 10 / 11 — delays, fee-rates, congestion response",
                "65%/60% next-block; fees higher under congestion (strict "
                "ordering); pool fee distributions similar");

  const std::uint64_t seed = bench::seed_from_env();
  const double scale = bench::scale_from_env(1.0);
  bench::JsonReport json("fig04_fees_delays");

  for (const auto& [kind, name, paper_next] :
       {std::tuple{sim::DatasetKind::kA, "A", "65%"},
        std::tuple{sim::DatasetKind::kB, "B", "60%"}}) {
    const io::World world =
        bench::world_for(bench::worlds::baseline(kind, seed, scale));
    const auto first_seen = [&](const btc::Txid& id) {
      return world.first_seen(id);
    };
    const auto seen = core::collect_seen_txs(world.chain, first_seen);
    json.add("txs", static_cast<double>(world.chain.total_tx_count()));
    json.add("blocks", static_cast<double>(world.chain.size()));
    const auto delays = core::commit_delays_blocks(world.chain, seen);
    const stats::Ecdf delay_cdf{std::span<const double>(delays)};

    std::printf("--- data set %s ---\n", name);
    bench::compare("committed in the next block (Fig 4a)", paper_next,
                   percent(delay_cdf.evaluate(1.0)));
    bench::compare("wait >= 3 blocks",
                   std::string(name) == "A" ? "~15%" : "~20%",
                   percent(delay_cdf.survival(2.0)));
    bench::compare("wait >= 10 blocks",
                   std::string(name) == "A" ? "~5%" : "~10%",
                   percent(delay_cdf.survival(9.0)));
    core::write_cdf_csv(bench::out_dir() + "/fig04a_delays_" + name + ".csv",
                        delay_cdf, "delay_blocks");

    // Fee-rate CDF (Fig 4b).
    const auto rates = core::all_fee_rates(seen);
    const stats::Ecdf rate_cdf{std::span<const double>(rates)};
    core::print_cdf_summary(std::string("fee-rate sat/vB (Fig 4b), ") + name,
                            rate_cdf);
    core::write_cdf_csv(bench::out_dir() + "/fig04b_feerates_" + name + ".csv",
                        rate_cdf, "sat_per_vb");

    // Fee-rate by congestion level at issue (Fig 4c / Fig 11).
    std::printf("  fee-rate by congestion level at issue (Fig 4c):\n");
    static const char* kLevels[] = {"none", "low", "medium", "high"};
    double prev_median = 0.0;
    bool ordered = true;
    for (int level = 0; level <= 3; ++level) {
      const auto lvl_rates = core::fee_rates_at_level(
          seen, world.snapshots, world.config.max_block_vsize,
          static_cast<node::CongestionLevel>(level));
      if (lvl_rates.empty()) continue;
      const stats::Ecdf cdf{std::span<const double>(lvl_rates)};
      std::printf("    %-7s n=%-8zu median=%-8.2f p90=%.2f\n", kLevels[level],
                  cdf.size(), cdf.quantile(0.5), cdf.quantile(0.9));
      ordered = ordered && cdf.quantile(0.5) >= prev_median;
      prev_median = cdf.quantile(0.5);
      core::write_cdf_csv(bench::out_dir() + "/fig04c_" + name + "_level" +
                              std::to_string(level) + ".csv",
                          cdf, "sat_per_vb");
    }
    bench::compare("medians strictly ordered by congestion", "yes",
                   ordered ? "yes" : "NO");

    // Per-pool fee-rate distributions (Fig 10; data set A in the paper).
    // The paper argues visually that the distributions barely differ;
    // the KS statistic across pool pairs formalizes that.
    if (kind == sim::DatasetKind::kA) {
      const auto registry = btc::CoinbaseTagRegistry::paper_registry();
      const core::PoolAttribution attribution(world.chain, registry);
      std::printf("  per-pool fee-rate medians (Fig 10; should be similar):\n");
      const auto order = attribution.pools_by_blocks();
      std::vector<std::vector<double>> pool_rate_sets;
      for (std::size_t i = 0; i < order.size() && i < 5; ++i) {
        auto pool_rates = core::fee_rates_of_pool(
            seen, [&](std::uint64_t h) {
              const auto p = attribution.pool_of(h);
              return p.has_value() && *p == order[i];
            });
        if (pool_rates.empty()) continue;
        const stats::Ecdf cdf{std::span<const double>(pool_rates)};
        std::printf("    %-14s median=%-8.2f p75=%.2f\n", order[i].c_str(),
                    cdf.quantile(0.5), cdf.quantile(0.75));
        pool_rate_sets.push_back(std::move(pool_rates));
      }
      double max_ks = 0.0;
      for (std::size_t i = 0; i < pool_rate_sets.size(); ++i) {
        for (std::size_t j = i + 1; j < pool_rate_sets.size(); ++j) {
          max_ks = std::max(max_ks,
                            stats::ks_two_sample(pool_rate_sets[i],
                                                 pool_rate_sets[j]).statistic);
        }
      }
      bench::compare("max pairwise KS distance across top-5 pools",
                     "\"no major differences\"", fixed(max_ks, 4));
    }
    std::printf("\n");
  }
  std::printf("CSV: %s/fig04*.csv\n", bench::out_dir().c_str());

  return cn::bench::run_microbenchmarks(argc, argv);
}

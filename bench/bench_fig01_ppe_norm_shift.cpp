// Figure 1 — CDF of the error in predicting a transaction's position
// under the greedy fee-rate norm, before vs after April 2016.
//
// Paper claim: ordering closely tracks the fee-rate norm after Bitcoin
// Core's April-2016 switch to fee-rate-based selection, and deviates
// wildly before it (coin-age priority era).
//
// Reproduction: simulate the same network twice — once with every pool
// running the GBT builder, once with the pre-2016 coin-age priority
// builder — and compare the per-block PPE distributions.
#include "common.hpp"
#include "worlds.hpp"

#include "core/ppe.hpp"
#include "stats/descriptive.hpp"
#include "stats/ecdf.hpp"
#include "util/strings.hpp"

namespace {

// --- micro-benchmarks -----------------------------------------------------

const cn::btc::Chain& micro_chain() {
  static const cn::btc::Chain chain = [] {
    auto config = cn::sim::dataset_config(cn::sim::DatasetKind::kA, 7, 0.05);
    cn::sim::set_all_builders(config, cn::sim::BuilderKind::kGbt);
    return cn::sim::Engine(std::move(config)).run().chain;
  }();
  return chain;
}

void BM_BlockPpe(benchmark::State& state) {
  const auto& chain = micro_chain();
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& block = chain.blocks()[i++ % chain.size()];
    benchmark::DoNotOptimize(cn::core::block_ppe(block));
  }
}
BENCHMARK(BM_BlockPpe);

void BM_ChainPpe(benchmark::State& state) {
  const auto& chain = micro_chain();
  for (auto _ : state) {
    benchmark::DoNotOptimize(cn::core::chain_ppe(chain));
  }
}
BENCHMARK(BM_ChainPpe);

}  // namespace

int main(int argc, char** argv) {
  using namespace cn;
  bench::banner("Figure 1 — position-prediction error, pre- vs post-April-2016",
                "post-2016 ordering tracks the fee-rate norm; pre-2016 does not");

  const std::uint64_t seed = bench::seed_from_env();
  const double scale = bench::scale_from_env(0.5);
  bench::JsonReport json("fig01_ppe_norm_shift");

  const io::World modern =
      bench::world_for(bench::worlds::era(sim::BuilderKind::kGbt, seed, scale));
  const io::World legacy = bench::world_for(
      bench::worlds::era(sim::BuilderKind::kLegacyPriority, seed, scale));
  json.metric("txs", static_cast<double>(modern.chain.total_tx_count() +
                                         legacy.chain.total_tx_count()));
  json.metric("blocks",
              static_cast<double>(modern.chain.size() + legacy.chain.size()));

  const std::vector<double> modern_ppe = core::chain_ppe(modern.chain);
  const std::vector<double> legacy_ppe = core::chain_ppe(legacy.chain);
  const stats::Ecdf modern_cdf{std::span<const double>(modern_ppe)};
  const stats::Ecdf legacy_cdf{std::span<const double>(legacy_ppe)};

  bench::compare("post-2016 era: mean PPE", "small (2.65% in 2020 data)",
                 fixed(stats::mean(modern_ppe), 2) + "%");
  bench::compare("post-2016 era: P[PPE < 5%]", "~high (80% below 4.03%)",
                 percent(modern_cdf.evaluate(5.0)));
  bench::compare("pre-2016 era: mean PPE", "large (norm not in place)",
                 fixed(stats::mean(legacy_ppe), 2) + "%");
  bench::compare("pre-2016 era: P[PPE < 5%]", "~low",
                 percent(legacy_cdf.evaluate(5.0)));
  bench::compare("era separation (legacy mean / modern mean)", ">> 1",
                 fixed(stats::mean(legacy_ppe) / std::max(stats::mean(modern_ppe), 1e-9), 1) + "x");

  core::print_cdf_summary("PPE CDF, GBT era", modern_cdf);
  core::print_cdf_summary("PPE CDF, coin-age era", legacy_cdf);

  core::write_cdf_csv(bench::out_dir() + "/fig01_ppe_gbt.csv", modern_cdf, "ppe_percent");
  core::write_cdf_csv(bench::out_dir() + "/fig01_ppe_legacy.csv", legacy_cdf, "ppe_percent");
  std::printf("CSV: %s/fig01_ppe_{gbt,legacy}.csv\n", bench::out_dir().c_str());

  return cn::bench::run_microbenchmarks(argc, argv);
}

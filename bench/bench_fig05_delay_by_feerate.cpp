// Figure 5 (+ Figure 12) — commit-delay distributions by fee-rate band.
//
// Paper claim: paying more consistently buys lower commit delay — the
// delay CDFs for low (<1e-4 BTC/KB), high (1e-4..1e-3) and exorbitant
// (>1e-3) fee bands are strictly ordered.
#include "common.hpp"
#include "worlds.hpp"

#include "core/congestion.hpp"
#include "stats/ecdf.hpp"
#include "util/strings.hpp"

namespace {

void BM_DelaysForBand(benchmark::State& state) {
  using namespace cn;
  static const sim::SimResult world = sim::make_dataset(sim::DatasetKind::kA, 3, 0.1);
  static const auto seen = core::collect_seen_txs(
      world.chain, [&](const btc::Txid& id) { return world.observer.first_seen(id); });
  static const auto delays = core::commit_delays_blocks(world.chain, seen);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::delays_for_band(seen, delays, core::FeeBand::kHigh));
  }
}
BENCHMARK(BM_DelaysForBand)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  using namespace cn;
  bench::banner("Figure 5 / Figure 12 — commit delay by fee band",
                "delay distributions strictly ordered: exorbitant < high < low");

  const std::uint64_t seed = bench::seed_from_env();
  const double scale = bench::scale_from_env(1.0);
  bench::JsonReport json("fig05_delay_by_feerate");

  for (const auto& [kind, name] : {std::pair{sim::DatasetKind::kA, "A"},
                                   std::pair{sim::DatasetKind::kB, "B"}}) {
    const io::World world =
        bench::world_for(bench::worlds::baseline(kind, seed, scale));
    const auto seen = core::collect_seen_txs(
        world.chain,
        [&](const btc::Txid& id) { return world.first_seen(id); });
    const auto delays = core::commit_delays_blocks(world.chain, seen);
    json.add("txs", static_cast<double>(world.chain.total_tx_count()));
    json.add("blocks", static_cast<double>(world.chain.size()));

    std::printf("--- data set %s ---\n", name);
    static const char* kBands[] = {"low <1e-4 BTC/KB", "high 1e-4..1e-3",
                                   "exorbitant >=1e-3"};
    double prev_next_block = -1.0;
    bool ordered = true;
    for (int band = 0; band <= 2; ++band) {
      const auto d = core::delays_for_band(seen, delays,
                                           static_cast<core::FeeBand>(band));
      if (d.empty()) {
        std::printf("  %-20s (no transactions)\n", kBands[band]);
        continue;
      }
      const stats::Ecdf cdf{std::span<const double>(d)};
      const double next_block = cdf.evaluate(1.0);
      std::printf("  %-20s n=%-8zu next-block=%-7s p90=%.1f blocks\n",
                  kBands[band], cdf.size(), percent(next_block).c_str(),
                  cdf.quantile(0.9));
      // Each pricier band should commit next-block at least as often as
      // the cheaper band before it (small tolerance for sampling noise).
      ordered = ordered && next_block >= prev_next_block - 0.02;
      prev_next_block = next_block;
      core::write_cdf_csv(bench::out_dir() + "/fig05_delay_band" +
                              std::to_string(band) + "_" + name + ".csv",
                          cdf, "delay_blocks");
    }
    bench::compare("higher fee band => faster commits", "yes",
                   ordered ? "yes" : "NO");
    std::printf("\n");
  }
  std::printf("CSV: %s/fig05_*.csv\n", bench::out_dir().c_str());

  return cn::bench::run_microbenchmarks(argc, argv);
}

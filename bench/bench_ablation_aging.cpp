// §6.1 open question #1, answered quantitatively:
//   "Should the waiting time of transactions also be considered [by the
//    prioritization norm] to avoid indefinitely delaying some
//    transactions?"
//
// We run the same congested network under three ordering norms — pure
// fee-rate (the status quo), and fee-rate with an aging bonus of 5% and
// 20% per waiting hour — and measure the trade-off:
//   * starvation relief: commit-delay p90/p99 of the LOW fee band;
//   * miner cost: total fees collected across all blocks;
//   * norm drift: PPE measured against the pure fee-rate norm (an
//     aging chain *looks* non-compliant to a fee-rate auditor).
#include "common.hpp"
#include "worlds.hpp"

#include "core/congestion.hpp"
#include "core/ppe.hpp"
#include "stats/descriptive.hpp"
#include "stats/ecdf.hpp"
#include "util/strings.hpp"

namespace {

using namespace cn;

struct Outcome {
  double low_band_p90 = 0.0;
  double low_band_p99 = 0.0;
  double low_band_next = 0.0;
  double starved_share = 0.0;  ///< low-band txs waiting > 50 blocks
  std::size_t low_committed = 0;  ///< low-band txs that committed at all
  double total_fees_btc = 0.0;
  double mean_ppe = 0.0;
  std::uint64_t txs = 0;
  std::uint64_t blocks = 0;
};

Outcome run_with_aging(double age_weight, std::uint64_t seed, double scale) {
  const io::World world =
      bench::world_for(bench::worlds::aging(age_weight, seed, scale));

  Outcome out;
  const auto seen = core::collect_seen_txs(
      world.chain,
      [&](const btc::Txid& id) { return world.first_seen(id); });
  const auto delays = core::commit_delays_blocks(world.chain, seen);
  const auto low = core::delays_for_band(seen, delays, core::FeeBand::kLow);
  if (!low.empty()) {
    const stats::Ecdf cdf{std::span<const double>(low)};
    out.low_band_p90 = cdf.quantile(0.90);
    out.low_band_p99 = cdf.quantile(0.99);
    out.low_band_next = cdf.evaluate(1.0);
    out.starved_share = cdf.survival(50.0);
    out.low_committed = low.size();
  }
  btc::Satoshi fees{};
  for (const auto& block : world.chain.blocks()) fees += block.total_fees();
  out.total_fees_btc = fees.btc();
  out.mean_ppe = stats::mean(core::chain_ppe(world.chain));
  out.txs = world.chain.total_tx_count();
  out.blocks = world.chain.size();
  return out;
}

void BM_AgedTemplate(benchmark::State& state) {
  node::Mempool pool(1);
  for (int i = 0; i < 400; ++i) {
    pool.accept(btc::make_payment(i, 250, btc::Satoshi{250 + i},
                                  btc::Address::derive("a"),
                                  btc::Address::derive("b"), btc::Satoshi{1},
                                  50'000 + static_cast<std::uint64_t>(i)),
                i);
  }
  node::TemplateOptions options;
  options.age_weight_per_hour = 0.2;
  options.now = 7200;
  for (auto _ : state) {
    benchmark::DoNotOptimize(node::build_template(pool, options));
  }
}
BENCHMARK(BM_AgedTemplate)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bench::banner("Ablation — aging-aware ordering (the §6.1 waiting-time question)",
                "(extension: what would the norm cost if it considered age?)");

  const std::uint64_t seed = bench::seed_from_env();
  const double scale = bench::scale_from_env(0.5);
  bench::JsonReport json("ablation_aging");

  core::TablePrinter table({"age bonus/h", "low committed", "low next%",
                            "low p99", ">50blk%", "fees (BTC)", "PPE%"},
                           {13, 15, 11, 10, 9, 13, 8});
  table.print_header();

  Outcome baseline{};
  Outcome strongest{};
  for (double w : {0.0, 0.20, 1.0}) {
    const Outcome o = run_with_aging(w, seed, scale);
    json.add("txs", static_cast<double>(o.txs));
    json.add("blocks", static_cast<double>(o.blocks));
    if (w == 0.0) baseline = o;
    strongest = o;
    table.print_row({percent(w, 0),
                     with_commas(static_cast<std::uint64_t>(o.low_committed)),
                     percent(o.low_band_next, 1), fixed(o.low_band_p99, 1),
                     percent(o.starved_share, 1), fixed(o.total_fees_btc, 4),
                     fixed(o.mean_ppe, 2)});
  }

  bench::compare("low-band txs rescued into commitment, 0 -> 100%/h",
                 "(fairness question)",
                 with_commas(static_cast<std::uint64_t>(baseline.low_committed)) +
                     " -> " +
                     with_commas(static_cast<std::uint64_t>(strongest.low_committed)));
  bench::compare("miner fee revenue change at 100%/h", "(cost question)",
                 percent(strongest.total_fees_btc /
                                 std::max(baseline.total_fees_btc, 1e-9) - 1.0, 2));
  bench::compare("apparent norm drift (PPE vs fee-rate norm)",
                 "(auditability question)",
                 fixed(baseline.mean_ppe, 2) + " -> " + fixed(strongest.mean_ppe, 2) + "%");

  std::printf(
      "\nreading: capacity, not ordering, bounds aggregate delay — but aging\n"
      "rescues transactions that would otherwise NEVER commit (higher\n"
      "committed count; the fatter measured tail is those rescues being\n"
      "counted at all). The cost to miners is ~1-2%% of fees; the catch is\n"
      "auditability: a fee-rate auditor reads aging as deviation (PPE\n"
      "inflates ~10x), so the NORM itself must specify aging — exactly the\n"
      "paper's chain-neutrality argument.\n");

  return cn::bench::run_microbenchmarks(argc, argv);
}

// Table 5 — miners' relative revenue from transaction fees, 2016-2020.
//
// Paper claims (mean fee share of total block revenue): 2016: 2.48%,
// 2017: 11.77% (congestion peak), 2018: 3.19%, 2019: 2.75%, 2020: 6.29%;
// blocks after the May 2020 halving average 8.90% — fee revenue's weight
// is growing.
//
// Reproduction: one simulated slice per year, each with an era-calibrated
// fee regime (2017 hot, 2018-19 cool, 2020 warming) and the correct
// subsidy for that year's block heights (halvings included). Fee shares
// use a subsidy scaled by the block-size scaling factor (DESIGN.md).
#include "common.hpp"
#include "worlds.hpp"

#include "btc/rewards.hpp"
#include "core/fee_revenue.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"

namespace {

// Era calibration lives in bench/worlds.hpp (worlds::kTab05Years) so the
// sweep driver pre-generates exactly the year slices this bench loads.
using cn::bench::worlds::YearRegime;

cn::io::World run_year_slice(std::uint64_t genesis, const YearRegime& regime,
                             std::uint64_t engine_seed, double scale) {
  using namespace cn;
  return bench::world_for(
      bench::worlds::year_slice(genesis, regime, engine_seed, scale));
}

void BM_FeeShareSummary(benchmark::State& state) {
  using namespace cn;
  static const sim::SimResult world = sim::make_dataset(sim::DatasetKind::kC, 3, 0.1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::fee_share_summary(world.chain, 0.1));
  }
}
BENCHMARK(BM_FeeShareSummary)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  using namespace cn;
  bench::banner("Table 5 — fee share of miner revenue, 2016-2020",
                "mean fee share: 2.48 / 11.77 / 3.19 / 2.75 / 6.29 %; "
                "post-halving 2020 blocks: 8.90%");

  const std::uint64_t seed = bench::seed_from_env();
  const double scale = bench::scale_from_env(1.0);
  bench::JsonReport json("tab05_fee_revenue");

  CsvWriter csv(bench::out_dir() + "/tab05_fee_revenue.csv");
  csv.header({"year", "blocks", "mean", "std", "median", "p75", "max", "paper_mean"});

  core::TablePrinter table({"year", "blocks", "mean%", "std", "med%", "p75%",
                            "max%", "paper mean%"},
                           {6, 9, 8, 8, 8, 8, 9, 13});
  table.print_header();

  for (const YearRegime& regime : bench::worlds::kTab05Years) {
    const std::uint64_t genesis = btc::approx_height_of_year(regime.year);
    const io::World world = run_year_slice(
        genesis, regime, seed + static_cast<std::uint64_t>(regime.year), scale);
    json.add("txs", static_cast<double>(world.chain.total_tx_count()));
    json.add("blocks", static_cast<double>(world.chain.size()));
    const double subsidy_scale =
        static_cast<double>(world.config.max_block_vsize) / 1'000'000.0;
    const auto s = core::fee_share_summary(world.chain, subsidy_scale);
    table.print_row({std::to_string(regime.year), with_commas(world.chain.size()),
                     fixed(s.mean, 2), fixed(s.stddev, 2), fixed(s.median, 2),
                     fixed(s.p75, 2), fixed(s.max, 2),
                     fixed(regime.paper_mean_percent, 2)});
    csv.field(std::int64_t{regime.year}).field(world.chain.size());
    csv.field(s.mean, 3).field(s.stddev, 3).field(s.median, 3);
    csv.field(s.p75, 3).field(s.max, 3).field(regime.paper_mean_percent, 2);
    csv.end_row();
  }

  // Post-halving 2020 slice (subsidy 6.25 BTC): same regime as 2020 but
  // started past the halving height.
  {
    const YearRegime& regime = bench::worlds::kTab05PostHalving;
    const io::World world =
        run_year_slice(btc::kThirdHalvingHeight + 100, regime, seed + 7, scale);
    json.add("txs", static_cast<double>(world.chain.total_tx_count()));
    json.add("blocks", static_cast<double>(world.chain.size()));
    const double subsidy_scale =
        static_cast<double>(world.config.max_block_vsize) / 1'000'000.0;
    const auto s = core::fee_share_summary(world.chain, subsidy_scale);
    bench::compare("post-halving mean fee share", "8.90% (std 6.54)",
                   fixed(s.mean, 2) + "% (std " + fixed(s.stddev, 2) + ")");
  }

  bench::compare("2017 the outlier year; 2020 > 2018/2019 > 2016", "yes",
                 "see table");
  std::printf("CSV: %s/tab05_fee_revenue.csv\n", bench::out_dir().c_str());

  return cn::bench::run_microbenchmarks(argc, argv);
}

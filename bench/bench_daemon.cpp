// cnauditd serving-path benchmark (the always-on watchdog the paper's
// §6.1 calls for): what does it cost to KEEP the audit current, instead
// of recomputing it?
//
// We simulate data set C (the paper's largest), replay it through the
// daemon's incremental accumulators, and measure the three numbers an
// operator plans around:
//   * per-block update latency — apply one committed block to the
//     running scorecards (the steady-state cost of staying current);
//   * recovery time — restore the accumulators from a CNCP1 checkpoint
//     after a crash, vs replaying the feed from genesis;
//   * query throughput — /report serves from the sealed cache.
// The headline gate: one incremental block update must be >= 10x faster
// than rebuilding the report from scratch, at data-set-C scale — the
// bench exits non-zero otherwise, and CI checks the emitted bit.
#include "common.hpp"
#include "worlds.hpp"

#include <cstdint>
#include <string>
#include <vector>

#include "btc/coinbase_tags.hpp"
#include "daemon/accumulators.hpp"
#include "daemon/checkpoint.hpp"
#include "daemon/daemon.hpp"
#include "io/dataset_source.hpp"
#include "io/stream_source.hpp"
#include "util/strings.hpp"

namespace {

using namespace cn;

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

daemon::AccumulatorOptions accumulator_options() {
  daemon::AccumulatorOptions options;
  options.neutrality.min_blocks = 10;
  return options;
}

/// One full pass of the feed through fresh accumulators plus a seal —
/// exactly what answering a query by batch rebuild costs.
double time_full_rebuild(const io::DatasetHandle& handle,
                         const btc::CoinbaseTagRegistry& registry,
                         const core::FirstSeenFn& first_seen) {
  const auto start = Clock::now();
  daemon::AuditAccumulators acc(registry, accumulator_options());
  io::ReplaySource source(handle);
  io::StreamEvent ev;
  while (source.next(ev, 1000) == io::StreamStatus::kOk) {
    if (ev.kind == io::StreamEvent::Kind::kBlock) {
      acc.apply_block(*ev.block, first_seen, ev.seq);
    } else {
      acc.apply_snapshot(ev.snapshot, ev.seq);
    }
  }
  benchmark::DoNotOptimize(daemon::AuditAccumulators::to_json(acc.seal()));
  return seconds_since(start);
}

// Shared state for the micro-benchmarks (built once in main).
daemon::AuditAccumulators* g_acc = nullptr;

void BM_CheckpointEncode(benchmark::State& state) {
  std::vector<std::uint8_t> buffer;
  for (auto _ : state) {
    buffer.clear();
    g_acc->encode(buffer);
    benchmark::DoNotOptimize(buffer.data());
  }
}
BENCHMARK(BM_CheckpointEncode)->Unit(benchmark::kMillisecond);

void BM_SealedReportToJson(benchmark::State& state) {
  const daemon::AuditAccumulators::Report report = g_acc->seal();
  for (auto _ : state) {
    benchmark::DoNotOptimize(daemon::AuditAccumulators::to_json(report));
  }
}
BENCHMARK(BM_SealedReportToJson)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bench::banner("cnauditd — incremental audit vs batch rebuild",
                "(extension: the always-on watchdog the paper's §6.1 proposes)");

  const std::uint64_t seed = bench::seed_from_env();
  const double scale = bench::scale_from_env(0.25);
  bench::JsonReport json("daemon");

  std::printf("materializing data set C (seed %llu, scale %.2f)...\n",
              static_cast<unsigned long long>(seed), scale);
  io::World world = bench::world_for(
      bench::worlds::baseline(sim::DatasetKind::kC, seed, scale));

  io::DatasetHandle handle;
  handle.chain = std::move(world.chain);
  handle.snapshots = world.snapshots;
  const core::FirstSeenFn first_seen = [&world](const btc::Txid& id) {
    return world.first_seen(id);
  };
  const auto registry = btc::CoinbaseTagRegistry::paper_registry();

  const std::uint64_t blocks = handle.chain.size();
  const std::uint64_t txs = handle.chain.total_tx_count();
  json.metric("blocks", static_cast<double>(blocks));
  json.metric("txs", static_cast<double>(txs));

  // --- steady state: per-event incremental application ------------------
  daemon::AuditAccumulators acc(registry, accumulator_options());
  double block_apply_s = 0.0;
  double snapshot_apply_s = 0.0;
  std::uint64_t snapshots = 0;
  {
    io::ReplaySource source(handle);
    io::StreamEvent ev;
    while (source.next(ev, 1000) == io::StreamStatus::kOk) {
      const auto start = Clock::now();
      if (ev.kind == io::StreamEvent::Kind::kBlock) {
        acc.apply_block(*ev.block, first_seen, ev.seq);
        block_apply_s += seconds_since(start);
      } else {
        acc.apply_snapshot(ev.snapshot, ev.seq);
        snapshot_apply_s += seconds_since(start);
        ++snapshots;
      }
    }
  }
  const double block_mean_us =
      blocks > 0 ? block_apply_s * 1e6 / static_cast<double>(blocks) : 0.0;
  json.metric("block_apply_mean_us", block_mean_us);
  json.metric("snapshot_apply_mean_us",
              snapshots > 0 ? snapshot_apply_s * 1e6 / static_cast<double>(snapshots)
                            : 0.0);

  // Sealing: the first seal pays the exact pair-violation recount; a
  // repeat at the same stream position is memoized.
  const auto seal_cold_start = Clock::now();
  std::string sealed_json = daemon::AuditAccumulators::to_json(acc.seal());
  const double seal_cold_s = seconds_since(seal_cold_start);
  const auto seal_warm_start = Clock::now();
  benchmark::DoNotOptimize(daemon::AuditAccumulators::to_json(acc.seal()));
  const double seal_warm_s = seconds_since(seal_warm_start);
  json.metric("seal_cold_ms", seal_cold_s * 1e3);
  json.metric("seal_warm_ms", seal_warm_s * 1e3);

  // --- the rebuild alternative ------------------------------------------
  const double rebuild_s = time_full_rebuild(handle, registry, first_seen);
  json.metric("rebuild_s", rebuild_s);
  const double block_mean_s = block_mean_us / 1e6;
  const double speedup = block_mean_s > 0.0 ? rebuild_s / block_mean_s : 0.0;
  json.metric("incremental_speedup", speedup);
  const bool speedup_ok = speedup >= 10.0;
  json.metric("incremental_speedup_ok", speedup_ok ? 1.0 : 0.0);

  // --- crash recovery ----------------------------------------------------
  const std::string ckpt = bench::out_dir() + "/bench_daemon.ckpt";
  std::string error;
  if (!daemon::save_checkpoint(acc, ckpt, &error)) {
    std::fprintf(stderr, "checkpoint save failed: %s\n", error.c_str());
    return 1;
  }
  double recovery_s = 0.0;
  {
    const auto start = Clock::now();
    daemon::AuditAccumulators restored(registry, accumulator_options());
    const daemon::CheckpointLoad load = daemon::load_checkpoint(
        restored, ckpt, accumulator_options().fingerprint(),
        registry.fingerprint());
    io::ReplaySource source(handle);
    const bool sought = load.ok && source.seek(load.seq);
    recovery_s = seconds_since(start);
    if (!sought) {
      std::fprintf(stderr, "checkpoint recovery failed\n");
      return 1;
    }
  }
  json.metric("recovery_s", recovery_s);
  json.metric("recovery_speedup",
              recovery_s > 0.0 ? rebuild_s / recovery_s : 0.0);
  json.metric("checkpoint_bytes",
              static_cast<double>(std::filesystem::file_size(ckpt)));

  // --- query throughput: /report from the sealed cache ------------------
  double queries_per_s = 0.0;
  {
    io::ReplaySource source(handle);
    daemon::DaemonConfig config;
    config.accumulators = accumulator_options();
    daemon::AuditDaemon served(source, registry, first_seen, config);
    if (served.run_to_end() != io::StreamStatus::kEnd) {
      std::fprintf(stderr, "daemon replay did not reach feed end\n");
      return 1;
    }
    (void)served.seal_report_json();
    constexpr int kQueries = 20'000;
    const auto start = Clock::now();
    for (int i = 0; i < kQueries; ++i) {
      benchmark::DoNotOptimize(served.handle({"GET", "/report"}));
    }
    queries_per_s = kQueries / seconds_since(start);
  }
  json.metric("queries_per_s", queries_per_s);

  bench::compare("per-block incremental update", "(stay current)",
                 cn::fixed(block_mean_us, 1) + " us");
  bench::compare("full rebuild to answer one query", "(the alternative)",
                 cn::fixed(rebuild_s * 1e3, 1) + " ms");
  bench::compare("incremental speedup (gate >= 10x)", "(headline)",
                 cn::fixed(speedup, 1) + "x");
  bench::compare("checkpoint recovery vs replay", "(crash restart)",
                 cn::fixed(recovery_s * 1e3, 2) + " ms vs " +
                     cn::fixed(rebuild_s * 1e3, 1) + " ms");
  bench::compare("report queries served", "(scraper load)",
                 cn::fixed(queries_per_s / 1e3, 1) + "k/s");

  if (!speedup_ok) {
    std::fprintf(stderr,
                 "FATAL: incremental update only %.1fx faster than rebuild "
                 "(gate: 10x)\n",
                 speedup);
    json.flush();
    return 1;
  }

  g_acc = &acc;
  return cn::bench::run_microbenchmarks(argc, argv);
}

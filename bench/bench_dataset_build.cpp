// AuditDataset build cost: the columnar audit's one-time overhead —
// wall time to intern pools/addresses and lay out the per-block spans,
// and the resulting bytes per transaction — reported separately from
// BENCH_audit.json so the pipeline speedup is never silently bought
// with an unaccounted build phase.
#include "common.hpp"
#include "worlds.hpp"

#include <algorithm>
#include <filesystem>

#include "btc/intern.hpp"
#include "core/audit_dataset.hpp"
#include "core/wallet_inference.hpp"
#include "io/cnb.hpp"
#include "io/dataset_source.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace cn;

const io::World* g_world = nullptr;
const core::PoolAttribution* g_attribution = nullptr;

void BM_DatasetBuild(benchmark::State& state) {
  util::ThreadPool workers(0);
  for (auto _ : state) {
    auto ds = core::AuditDataset::build(g_world->chain, *g_attribution, workers);
    benchmark::DoNotOptimize(ds);
  }
}
BENCHMARK(BM_DatasetBuild)->Unit(benchmark::kMillisecond);

void BM_AttributionBuild(benchmark::State& state) {
  const auto registry = btc::CoinbaseTagRegistry::paper_registry();
  for (auto _ : state) {
    core::PoolAttribution attribution(g_world->chain, registry);
    benchmark::DoNotOptimize(attribution);
  }
}
BENCHMARK(BM_AttributionBuild)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  cn::bench::JsonReport json("dataset_build");
  cn::bench::banner("AuditDataset build: columnar view construction overhead",
                    "(engineering bench; no paper counterpart)");

  const std::uint64_t seed = cn::bench::seed_from_env();
  const double scale = cn::bench::scale_from_env(0.5);
  const io::World world = cn::bench::world_for(
      cn::bench::worlds::baseline(sim::DatasetKind::kC, seed, scale));
  const core::PoolAttribution attribution(
      world.chain, btc::CoinbaseTagRegistry::paper_registry());
  g_world = &world;
  g_attribution = &attribution;

  const double txs = static_cast<double>(world.chain.total_tx_count());
  std::printf("world: %zu blocks, %.0f transactions\n\n", world.chain.size(), txs);
  json.metric("blocks", static_cast<double>(world.chain.size()));
  json.metric("txs", txs);

  util::ThreadPool workers(0);
  constexpr int kReps = 5;
  double best = 1e300;
  std::size_t bytes = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto ds = core::AuditDataset::build(world.chain, attribution, workers);
    best = std::min(
        best,
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count());
    bytes = ds.memory_bytes();
  }

  const double bytes_per_tx = txs > 0 ? static_cast<double>(bytes) / txs : 0.0;
  std::printf("  build (best of %d): %8.3f s\n", kReps, best);
  std::printf("  footprint:          %8.1f MiB (%.1f bytes/tx)\n",
              static_cast<double>(bytes) / (1024.0 * 1024.0), bytes_per_tx);
  json.metric("build_seconds", best);
  json.metric("memory_bytes", static_cast<double>(bytes));
  json.metric("bytes_per_tx", bytes_per_tx);

  // --- CSV vs CNB1 ingest (the DESIGN.md §11 acceptance gate) ---
  // "Ingest" is everything between a path on disk and an audit-ready
  // dataset: the CSV side parses text, attributes pools, and builds the
  // columnar view; the CNB1 side verifies checksums and copies columns
  // out — the derived sections ride inside the file. The hard gate
  // asserts the binary path ingests the same rows at >= 20x the CSV
  // throughput, so a regression in either loader fails this bench.
  const auto registry = btc::CoinbaseTagRegistry::paper_registry();
  namespace fs = std::filesystem;
  const fs::path ingest_dir = fs::path(cn::bench::out_dir()) / "ingest";
  std::error_code ec;
  fs::remove_all(ingest_dir, ec);
  const std::string csv_dir = (ingest_dir / "csv").string();
  const std::string cnb_path = (ingest_dir / "dataset.cnb").string();

  std::string io_error;
  bool exported =
      io::export_chain(world.chain, csv_dir, &io_error) &&
      io::export_snapshots(world.snapshots,
                           csv_dir + "/snapshots.csv", &io_error) &&
      io::export_first_seen(world.first_seen_map,
                            csv_dir + "/first_seen.csv", &io_error);
  if (exported) {
    const auto dataset =
        core::AuditDataset::build(world.chain, attribution, workers);
    io::CnbWriteOptions cnb_options;
    cnb_options.snapshots = &world.snapshots;
    cnb_options.first_seen = &world.first_seen_map;
    cnb_options.dataset = &dataset;
    cnb_options.registry_fingerprint = registry.fingerprint();
    exported = io::write_cnb(world.chain, cnb_path, cnb_options, &io_error);
  }
  if (!exported) {
    std::fprintf(stderr, "FATAL: ingest fixture export failed: %s\n",
                 io_error.c_str());
    return 1;
  }

  // Identical logical rows on both sides: the relational tables plus the
  // optional series (the CNB1 file stores the same data as columns).
  std::uint64_t inputs = 0, outputs = 0;
  for (const btc::Block& block : world.chain.blocks()) {
    for (const btc::Transaction& tx : block.txs()) {
      inputs += tx.inputs().size();
      outputs += tx.outputs().size();
    }
  }
  const double rows =
      static_cast<double>(world.chain.size()) + txs +
      static_cast<double>(inputs) + static_cast<double>(outputs) +
      static_cast<double>(world.snapshots.size()) +
      static_cast<double>(world.first_seen_map.size());

  // Raw load: open_dataset alone (no attribution / build on either side).
  const auto time_open = [](const std::string& path, int reps) {
    double load_best = 1e300;
    for (int rep = 0; rep < reps; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      const auto loaded = io::open_dataset(path, io::LoadPolicy::kStrict);
      const double s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      if (!loaded.has_value()) return -1.0;
      load_best = std::min(load_best, s);
    }
    return load_best;
  };
  const double load_csv_s = time_open(csv_dir, 2);
  const double load_cnb_s = time_open(cnb_path, 5);

  // Audit-ready ingest. CSV: load + pool attribution + dataset build.
  // CNB1: load alone — prebuilt_for() must hand back the stored dataset,
  // otherwise the embedded columns were silently unusable.
  double ingest_csv_s = 1e300;
  for (int rep = 0; rep < 2; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto loaded = io::open_dataset(csv_dir, io::LoadPolicy::kStrict);
    if (!loaded.has_value()) { ingest_csv_s = -1.0; break; }
    const core::PoolAttribution attr(loaded->chain, registry);
    const auto ds = core::AuditDataset::build(loaded->chain, attr, workers);
    benchmark::DoNotOptimize(ds);
    ingest_csv_s = std::min(
        ingest_csv_s,
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count());
  }
  double ingest_cnb_s = 1e300;
  for (int rep = 0; rep < 5; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto loaded = io::open_dataset(cnb_path, io::LoadPolicy::kStrict);
    if (!loaded.has_value() || loaded->prebuilt_for(registry) == nullptr) {
      ingest_cnb_s = -1.0;
      break;
    }
    ingest_cnb_s = std::min(
        ingest_cnb_s,
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count());
  }
  if (load_csv_s <= 0.0 || load_cnb_s <= 0.0 || ingest_csv_s <= 0.0 ||
      ingest_cnb_s <= 0.0) {
    std::fprintf(stderr, "FATAL: an ingest path failed to load cleanly\n");
    return 1;
  }

  const double cnb_bytes = static_cast<double>(fs::file_size(cnb_path, ec));
  const double load_speedup = load_csv_s / load_cnb_s;
  const double ingest_speedup = ingest_csv_s / ingest_cnb_s;
  const bool ingest_ok = ingest_speedup >= 20.0;
  std::printf("\n--- ingest: CSV directory vs CNB1 binary ---\n");
  std::printf("  raw load    csv: %8.3f s   cnb: %8.3f s   (%.1fx)\n",
              load_csv_s, load_cnb_s, load_speedup);
  std::printf("  audit-ready csv: %8.3f s   cnb: %8.3f s   (%.1fx, gate 20x %s)\n",
              ingest_csv_s, ingest_cnb_s, ingest_speedup,
              ingest_ok ? "OK" : "FAILED");
  std::printf("  throughput  csv: %8.0f rows/s   cnb: %8.0f rows/s\n",
              rows / ingest_csv_s, rows / ingest_cnb_s);
  std::printf("  cnb file:   %8.1f MiB (%.1f bytes/tx)\n",
              cnb_bytes / (1024.0 * 1024.0), txs > 0 ? cnb_bytes / txs : 0.0);
  json.metric("load_seconds_csv", load_csv_s);
  json.metric("load_seconds_cnb", load_cnb_s);
  json.metric("load_speedup", load_speedup);
  json.metric("ingest_rows", rows);
  json.metric("ingest_seconds_csv", ingest_csv_s);
  json.metric("ingest_seconds_cnb", ingest_cnb_s);
  json.metric("ingest_rows_per_s_csv", rows / ingest_csv_s);
  json.metric("ingest_rows_per_s_cnb", rows / ingest_cnb_s);
  json.metric("ingest_speedup", ingest_speedup);
  json.metric("ingest_speedup_ok", ingest_ok ? 1.0 : 0.0);
  json.metric("cnb_file_bytes", cnb_bytes);
  json.metric("cnb_bytes_per_tx", txs > 0 ? cnb_bytes / txs : 0.0);
  if (!ingest_ok) {
    std::fprintf(stderr,
                 "FATAL: CNB1 ingest speedup %.1fx is below the 20x gate\n",
                 ingest_speedup);
    return 1;
  }

  return cn::bench::run_microbenchmarks(argc, argv);
}

// AuditDataset build cost: the columnar audit's one-time overhead —
// wall time to intern pools/addresses and lay out the per-block spans,
// and the resulting bytes per transaction — reported separately from
// BENCH_audit.json so the pipeline speedup is never silently bought
// with an unaccounted build phase.
#include "common.hpp"

#include <algorithm>

#include "btc/intern.hpp"
#include "core/audit_dataset.hpp"
#include "core/wallet_inference.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace cn;

const sim::SimResult* g_world = nullptr;
const core::PoolAttribution* g_attribution = nullptr;

void BM_DatasetBuild(benchmark::State& state) {
  util::ThreadPool workers(0);
  for (auto _ : state) {
    auto ds = core::AuditDataset::build(g_world->chain, *g_attribution, workers);
    benchmark::DoNotOptimize(ds);
  }
}
BENCHMARK(BM_DatasetBuild)->Unit(benchmark::kMillisecond);

void BM_AttributionBuild(benchmark::State& state) {
  const auto registry = btc::CoinbaseTagRegistry::paper_registry();
  for (auto _ : state) {
    core::PoolAttribution attribution(g_world->chain, registry);
    benchmark::DoNotOptimize(attribution);
  }
}
BENCHMARK(BM_AttributionBuild)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  cn::bench::JsonReport json("dataset_build");
  cn::bench::banner("AuditDataset build: columnar view construction overhead",
                    "(engineering bench; no paper counterpart)");

  const std::uint64_t seed = cn::bench::seed_from_env();
  const double scale = cn::bench::scale_from_env(0.5);
  const sim::SimResult world = sim::make_dataset(sim::DatasetKind::kC, seed, scale);
  const core::PoolAttribution attribution(
      world.chain, btc::CoinbaseTagRegistry::paper_registry());
  g_world = &world;
  g_attribution = &attribution;

  const double txs = static_cast<double>(world.chain.total_tx_count());
  std::printf("world: %zu blocks, %.0f transactions\n\n", world.chain.size(), txs);
  json.metric("blocks", static_cast<double>(world.chain.size()));
  json.metric("txs", txs);

  util::ThreadPool workers(0);
  constexpr int kReps = 5;
  double best = 1e300;
  std::size_t bytes = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto ds = core::AuditDataset::build(world.chain, attribution, workers);
    best = std::min(
        best,
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count());
    bytes = ds.memory_bytes();
  }

  const double bytes_per_tx = txs > 0 ? static_cast<double>(bytes) / txs : 0.0;
  std::printf("  build (best of %d): %8.3f s\n", kReps, best);
  std::printf("  footprint:          %8.1f MiB (%.1f bytes/tx)\n",
              static_cast<double>(bytes) / (1024.0 * 1024.0), bytes_per_tx);
  json.metric("build_seconds", best);
  json.metric("memory_bytes", static_cast<double>(bytes));
  json.metric("bytes_per_tx", bytes_per_tx);

  return cn::bench::run_microbenchmarks(argc, argv);
}

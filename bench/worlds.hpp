// Shared world construction for the reproduction benches (DESIGN.md §14).
//
// Every bench used to run its own sim::Engine; now each describes the
// world it needs as a sim::WorldSpec and calls bench::world_for(), which
// routes through the content-addressed io::WorldCache under
// $CN_WORLD_DIR (default bench_out/worlds). Benches that want the SAME
// world — fig03/04/05 all analyze baseline data set A at the same seed
// and scale — get the same fingerprint and hence one simulation total.
//
// The spec constructors live here, next to the sweep matrix that
// cnsweep uses to pre-generate every world a run will need, so the
// benches and the driver can never disagree about a fingerprint.
//
// Deliberately NOT a google-benchmark dependency: tools/cnsweep.cpp
// includes this header too.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "btc/rewards.hpp"
#include "io/world_cache.hpp"
#include "sim/world_spec.hpp"

namespace cn::bench {

/// The process-wide cache every bench shares. The directory comes from
/// CN_WORLD_DIR so cnsweep's subprocess jobs hit the worlds the driver
/// pre-generated.
inline io::WorldCache& world_cache() {
  static io::WorldCache* cache = [] {
    const char* dir = std::getenv("CN_WORLD_DIR");
    return new io::WorldCache(dir != nullptr && *dir != '\0'
                                  ? std::string(dir)
                                  : std::string("bench_out/worlds"));
  }();
  return *cache;
}

/// Materializes @p spec through the shared cache. The hit/miss line
/// goes to stderr so bench stdout (the paper-vs-measured tables) stays
/// independent of cache state.
inline io::World world_for(const sim::WorldSpec& spec) {
  io::World world = world_cache().materialize(spec);
  std::fprintf(stderr, "world %-40s %s %s\n", spec.label().c_str(),
               world_cache().path_for(spec).c_str(),
               world.cache_hit ? "(cache hit)" : "(simulated)");
  return world;
}

namespace worlds {

/// Unmodified data set — the workhorse spec (fig02-08, tab01-04, fig14,
/// audit/daemon/ingest infrastructure benches).
inline sim::WorldSpec baseline(sim::DatasetKind kind, std::uint64_t seed,
                               double scale) {
  return sim::baseline_spec(kind, seed, scale);
}

/// Figure 1's era contrast on data set A. The GBT era IS the baseline
/// world (every pool's default builder is GBT), so it deliberately maps
/// to the baseline fingerprint and shares that cache entry.
inline sim::WorldSpec era(sim::BuilderKind builder, std::uint64_t seed,
                          double scale) {
  if (builder == sim::BuilderKind::kGbt) {
    return baseline(sim::DatasetKind::kA, seed, scale);
  }
  sim::WorldSpec spec = baseline(sim::DatasetKind::kA, seed, scale);
  spec.scenario = "era-legacy";
  spec.set("builder", 1.0);
  return spec;
}

/// Aging-ablation world (data set A, every pool ordering with an aging
/// bonus). Zero bonus is the pure fee-rate norm — the baseline world.
inline sim::WorldSpec aging(double age_weight_per_hour, std::uint64_t seed,
                            double scale) {
  if (age_weight_per_hour == 0.0) {
    return baseline(sim::DatasetKind::kA, seed, scale);
  }
  sim::WorldSpec spec = baseline(sim::DatasetKind::kA, seed, scale);
  spec.scenario = "aging";
  spec.set("age_weight_per_hour", age_weight_per_hour);
  return spec;
}

/// Detection-ablation world: data set C (0.4 scale unless overridden)
/// with the scam window removed and the planted behaviours dialled
/// explicitly. bench_ablation_detection always uses the default scale;
/// the evasion sweep passes its own so `cnsweep --smoke` stays cheap.
inline sim::WorldSpec detection(std::uint64_t seed, double self_per_block,
                                bool selfish_enabled,
                                bool propagation_enabled,
                                double scale = 0.4) {
  sim::WorldSpec spec = baseline(sim::DatasetKind::kC, seed, scale);
  spec.scenario = "detection";
  spec.set("scam", 0.0);
  spec.set("self_interest_per_block", self_per_block);
  spec.set("selfish", selfish_enabled ? 1.0 : 0.0);
  spec.set("propagation_exclusion", propagation_enabled ? 1.0 : 0.0);
  return spec;
}

/// Evasion-sweep world (ROADMAP item 4): the detection scenario with
/// every selfish pool throttling its own-wallet boosts to intensity
/// theta in [0,1]. theta=0 IS the honest detection control — it returns
/// that exact spec, so the two share one fingerprint and one cached
/// world (the era(kGbt)/aging(0) idiom). The power sweep's evasion
/// budget is 1 - theta.
inline sim::WorldSpec evasion(std::uint64_t seed, double theta,
                              double self_per_block = 0.5,
                              double scale = 0.4) {
  if (theta == 0.0) {
    return detection(seed, self_per_block, false, true, scale);
  }
  sim::WorldSpec spec = baseline(sim::DatasetKind::kC, seed, scale);
  spec.scenario = "detection";
  spec.set("scam", 0.0);
  spec.set("self_interest_per_block", self_per_block);
  spec.set("propagation_exclusion", 1.0);
  spec.set("evasion_theta", theta);
  return spec;
}

/// Block-withholding world: the selfish detection world whose
/// misbehaving pools additionally withhold published blocks by
/// @p delay_s seconds. delay 0 is the plain selfish detection world
/// (shared fingerprint).
inline sim::WorldSpec withholding(std::uint64_t seed, double delay_s,
                                  double self_per_block = 0.5,
                                  double scale = 0.4) {
  sim::WorldSpec spec = detection(seed, self_per_block, true, true, scale);
  if (delay_s != 0.0) {
    spec.scenario = "withholding";
    spec.set("withhold_delay_s", delay_s);
  }
  return spec;
}

/// Table 5 year-slice regimes (era-calibrated fee pressure; see
/// bench_tab05_fee_revenue.cpp for the paper numbers they reproduce).
struct YearRegime {
  int year;
  double paper_mean_percent;
  double anchor_multiplier;  ///< scales all fee anchors
  double utilization;
};

inline constexpr YearRegime kTab05Years[] = {
    {2016, 2.48, 3.0, 0.70},  {2017, 11.77, 3.6, 0.92},
    {2018, 3.19, 1.7, 0.70},  {2019, 2.75, 1.55, 0.72},
    {2020, 6.29, 3.8, 0.82},
};
inline constexpr YearRegime kTab05PostHalving{2020, 8.90, 2.0, 0.82};

/// One Table 5 slice: data set C machinery at 0.2x the bench scale,
/// restarted at @p genesis with a year-calibrated regime and the
/// planted behaviours (scam window, surge bursts) stripped.
inline sim::WorldSpec year_slice(std::uint64_t genesis,
                                 const YearRegime& regime,
                                 std::uint64_t engine_seed, double scale) {
  sim::WorldSpec spec =
      baseline(sim::DatasetKind::kC, engine_seed, 0.2 * scale);
  spec.scenario = "year-slice";
  spec.set("genesis_height", static_cast<double>(genesis));
  spec.set("scam", 0.0);
  spec.set("clear_bursts", 1.0);
  spec.set("utilization", regime.utilization);
  spec.set("anchor_multiplier", regime.anchor_multiplier);
  return spec;
}

}  // namespace worlds

/// One sweep job: a bench binary plus the exact worlds it will request
/// at a given (seed, scale). cnsweep pre-generates the union of these
/// (deduplicated by fingerprint) before fanning the binaries out, so
/// every subprocess runs warm.
struct SweepEntry {
  const char* bench;     ///< executable name under build/bench/
  double default_scale;  ///< the bench's own scale_from_env() fallback
  std::vector<sim::WorldSpec> (*specs)(std::uint64_t seed, double scale);
};

/// The full EXPERIMENTS.md matrix: every figure/table/ablation bench
/// plus the infrastructure gates. bench_sim_scale is deliberately
/// absent — it benchmarks the engine itself, so serving it from a cache
/// would measure nothing.
inline const std::vector<SweepEntry>& sweep_matrix() {
  using sim::DatasetKind;
  using sim::WorldSpec;
  static const std::vector<SweepEntry>* matrix = new std::vector<SweepEntry>{
      {"bench_fig01_ppe_norm_shift", 0.5,
       [](std::uint64_t seed, double scale) {
         return std::vector<WorldSpec>{
             worlds::era(sim::BuilderKind::kGbt, seed, scale),
             worlds::era(sim::BuilderKind::kLegacyPriority, seed, scale)};
       }},
      {"bench_tab01_datasets", 1.0,
       [](std::uint64_t seed, double scale) {
         return std::vector<WorldSpec>{
             worlds::baseline(DatasetKind::kA, seed, scale),
             worlds::baseline(DatasetKind::kB, seed, scale),
             worlds::baseline(DatasetKind::kC, seed, scale)};
       }},
      {"bench_fig02_pool_shares", 0.6,
       [](std::uint64_t seed, double scale) {
         return std::vector<WorldSpec>{
             worlds::baseline(DatasetKind::kA, seed, scale),
             worlds::baseline(DatasetKind::kB, seed, scale),
             worlds::baseline(DatasetKind::kC, seed, scale)};
       }},
      {"bench_fig03_congestion", 1.0,
       [](std::uint64_t seed, double scale) {
         return std::vector<WorldSpec>{
             worlds::baseline(DatasetKind::kA, seed, scale),
             worlds::baseline(DatasetKind::kB, seed, scale)};
       }},
      {"bench_fig04_fees_delays", 1.0,
       [](std::uint64_t seed, double scale) {
         return std::vector<WorldSpec>{
             worlds::baseline(DatasetKind::kA, seed, scale),
             worlds::baseline(DatasetKind::kB, seed, scale)};
       }},
      {"bench_fig05_delay_by_feerate", 1.0,
       [](std::uint64_t seed, double scale) {
         return std::vector<WorldSpec>{
             worlds::baseline(DatasetKind::kA, seed, scale),
             worlds::baseline(DatasetKind::kB, seed, scale)};
       }},
      {"bench_fig06_pair_violations", 1.0,
       [](std::uint64_t seed, double scale) {
         return std::vector<WorldSpec>{
             worlds::baseline(DatasetKind::kA, seed, scale)};
       }},
      {"bench_fig07_ppe_pools", 1.0,
       [](std::uint64_t seed, double scale) {
         return std::vector<WorldSpec>{
             worlds::baseline(DatasetKind::kC, seed, scale)};
       }},
      {"bench_fig08_wallets", 1.0,
       [](std::uint64_t seed, double scale) {
         return std::vector<WorldSpec>{
             worlds::baseline(DatasetKind::kC, seed, scale)};
       }},
      {"bench_tab02_self_interest", 1.0,
       [](std::uint64_t seed, double scale) {
         return std::vector<WorldSpec>{
             worlds::baseline(DatasetKind::kC, seed, scale)};
       }},
      {"bench_tab03_scam", 1.0,
       [](std::uint64_t seed, double scale) {
         return std::vector<WorldSpec>{
             worlds::baseline(DatasetKind::kC, seed, scale)};
       }},
      {"bench_tab04_darkfee", 1.0,
       [](std::uint64_t seed, double scale) {
         return std::vector<WorldSpec>{
             worlds::baseline(DatasetKind::kC, seed, scale)};
       }},
      {"bench_tab05_fee_revenue", 1.0,
       [](std::uint64_t seed, double scale) {
         std::vector<WorldSpec> out;
         for (const worlds::YearRegime& regime : worlds::kTab05Years) {
           out.push_back(worlds::year_slice(
               btc::approx_height_of_year(regime.year), regime,
               seed + static_cast<std::uint64_t>(regime.year), scale));
         }
         out.push_back(worlds::year_slice(btc::kThirdHalvingHeight + 100,
                                          worlds::kTab05PostHalving, seed + 7,
                                          scale));
         return out;
       }},
      {"bench_fig14_accel_fees", 0.4,
       [](std::uint64_t seed, double scale) {
         return std::vector<WorldSpec>{
             worlds::baseline(DatasetKind::kC, seed, scale)};
       }},
      {"bench_ablation_detection", 1.0,
       [](std::uint64_t seed, double) {
         // The ablation pins its own 0.4 scale (see worlds::detection).
         std::vector<WorldSpec> out;
         for (const double volume : {0.02, 0.08, 0.2, 0.5}) {
           out.push_back(worlds::detection(seed, volume, true, true));
         }
         for (std::uint64_t s = 0; s < 3; ++s) {
           out.push_back(worlds::detection(seed + s, 0.5, false, true));
         }
         out.push_back(worlds::detection(seed, 0.3, true, true));
         out.push_back(worlds::detection(seed, 0.3, true, false));
         return out;
       }},
      {"bench_ablation_evasion", 0.4,
       [](std::uint64_t seed, double scale) {
         // Mirrors bench_ablation_evasion.cpp's full grid. theta=0
         // deliberately maps onto bench_ablation_detection's honest
         // controls (same fingerprints, one simulation total), and the
         // delay-0 withholding world onto its selfish world.
         std::vector<WorldSpec> out;
         for (const double theta : {0.0, 0.25, 0.5, 0.75, 1.0}) {
           for (std::uint64_t s = 0; s < 3; ++s) {
             out.push_back(worlds::evasion(seed + s, theta, 0.5, scale));
           }
         }
         out.push_back(worlds::withholding(seed, 0.0, 0.5, scale));
         out.push_back(worlds::withholding(seed, 120.0, 0.5, scale));
         return out;
       }},
      {"bench_ablation_aging", 0.5,
       [](std::uint64_t seed, double scale) {
         std::vector<WorldSpec> out;
         for (const double w : {0.0, 0.20, 1.0}) {
           out.push_back(worlds::aging(w, seed, scale));
         }
         return out;
       }},
      {"bench_audit", 0.5,
       [](std::uint64_t seed, double scale) {
         return std::vector<WorldSpec>{
             worlds::baseline(DatasetKind::kC, seed, scale)};
       }},
      {"bench_dataset_build", 0.5,
       [](std::uint64_t seed, double scale) {
         return std::vector<WorldSpec>{
             worlds::baseline(DatasetKind::kC, seed, scale)};
       }},
      {"bench_fault_ingest", 0.25,
       [](std::uint64_t seed, double scale) {
         return std::vector<WorldSpec>{
             worlds::baseline(DatasetKind::kA, seed, scale)};
       }},
      {"bench_daemon", 0.25,
       [](std::uint64_t seed, double scale) {
         return std::vector<WorldSpec>{
             worlds::baseline(DatasetKind::kC, seed, scale)};
       }},
  };
  return *matrix;
}

}  // namespace cn::bench

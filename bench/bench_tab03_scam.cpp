// Table 3 (+ Figure 13) — differential prioritization of scam-payment
// transactions during the July 2020 Twitter-scam window.
//
// Paper claims: 386 scam payments confirmed across 53 blocks by 12
// miners; NO top pool shows statistically significant acceleration or
// deceleration (all p > 0.001) — miners did not discriminate scam
// payments; AntPool's within-block SPPE was the only (weak) outlier.
#include "common.hpp"
#include "worlds.hpp"

#include <algorithm>

#include "core/prio_test.hpp"
#include "core/wallet_inference.hpp"
#include "util/strings.hpp"

namespace {

void BM_TxsPayingTo(benchmark::State& state) {
  using namespace cn;
  static const sim::SimResult world = sim::make_dataset(sim::DatasetKind::kC, 3, 0.1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::txs_paying_to(world.chain, world.scam_address));
  }
}
BENCHMARK(BM_TxsPayingTo)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  using namespace cn;
  bench::banner("Table 3 / Figure 13 — scam-payment transactions",
                "no significant acceleration or deceleration by any top pool "
                "(miners do not distinguish scam payments)");

  const std::uint64_t seed = bench::seed_from_env();
  const double scale = bench::scale_from_env(1.0);
  bench::JsonReport json("tab03_scam");
  const io::World world = bench::world_for(
      bench::worlds::baseline(sim::DatasetKind::kC, seed, scale));
  json.metric("txs", static_cast<double>(world.chain.total_tx_count()));
  json.metric("blocks", static_cast<double>(world.chain.size()));
  const auto registry = btc::CoinbaseTagRegistry::paper_registry();

  // Scam-window slice (the paper tests within July 14 - Aug 9 blocks).
  const auto& scam_cfg = *world.config.workload.scam;
  std::uint64_t first_h = 0, last_h = 0;
  for (const auto& block : world.chain.blocks()) {
    if (block.mined_at() < scam_cfg.start) continue;
    if (block.mined_at() >= scam_cfg.end + 2 * kDay) break;  // commit tail
    if (first_h == 0) first_h = block.height();
    last_h = block.height();
  }

  const auto scam_all = core::txs_paying_to(world.chain, world.scam_address());
  const auto scam_refs = core::restrict_to_heights(scam_all, first_h, last_h);
  const std::uint64_t c_blocks = core::count_c_blocks(scam_refs);

  bench::compare("scam payments confirmed", "386", with_commas(scam_all.size()));
  bench::compare("blocks containing them", "53", with_commas(c_blocks));

  // Window-local attribution (hash shares within the scam window, as the
  // paper's Fig 13 reports them).
  const core::PoolAttribution attribution(world.chain, registry);

  core::TablePrinter table({"pool", "theta0", "x", "y", "p-accel", "p-decel",
                            "SPPE"},
                           {16, 9, 6, 6, 9, 9, 10});
  table.print_header();
  int flagged = 0;
  const auto order = attribution.pools_by_blocks();
  for (std::size_t i = 0; i < order.size() && i < 9; ++i) {
    const auto r = core::test_differential_prioritization(
        world.chain, attribution, order[i], scam_refs);
    table.print_row({order[i], fixed(r.theta0, 4), std::to_string(r.x),
                     std::to_string(r.y), core::format_p_value(r.p_accelerate),
                     core::format_p_value(r.p_decelerate), fixed(r.sppe, 2)});
    if (r.p_accelerate < 0.001 || r.p_decelerate < 0.001) ++flagged;
  }
  bench::compare("pools with significant scam effect", "0", std::to_string(flagged));

  return cn::bench::run_microbenchmarks(argc, argv);
}

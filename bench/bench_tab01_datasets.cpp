// Table 1 — the three data sets: time span, block heights, block count,
// transaction count, CPFP share, empty blocks.
//
// Absolute counts are scaled down (DESIGN.md documents the scaling); the
// *ratios* (transactions per block, CPFP percentage, empty-block share)
// are the comparable quantities.
#include "common.hpp"
#include "worlds.hpp"

#include "util/strings.hpp"

namespace {

struct PaperRow {
  const char* name;
  std::uint64_t blocks;
  std::uint64_t txs;
  double cpfp_percent;
  std::uint64_t empty_blocks;
};

constexpr PaperRow kPaper[] = {
    {"A", 3119, 6'816'375, 26.45, 38},
    {"B", 4520, 10'484'201, 23.17, 18},
    {"C", 53'214, 112'489'054, 19.11, 240},
};

void BM_DatasetBuildTiny(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cn::sim::make_dataset(cn::sim::DatasetKind::kA, seed++, 0.02));
  }
}
BENCHMARK(BM_DatasetBuildTiny)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  using namespace cn;
  bench::banner("Table 1 — data sets A, B, C",
                "three captures: A (3119 blocks), B (4520), C (53214); "
                "CPFP 26/23/19%; 38/18/240 empty blocks");

  const std::uint64_t seed = bench::seed_from_env();
  const double scale = bench::scale_from_env(1.0);
  bench::JsonReport json("tab01_datasets");

  core::TablePrinter table({"set", "blocks", "txs committed", "txs/block",
                            "CPFP%", "empty", "paper CPFP%", "paper empty/blk"},
                           {5, 9, 15, 11, 8, 7, 13, 17});
  table.print_header();

  const sim::DatasetKind kinds[] = {sim::DatasetKind::kA, sim::DatasetKind::kB,
                                    sim::DatasetKind::kC};
  for (int i = 0; i < 3; ++i) {
    const io::World world =
        bench::world_for(bench::worlds::baseline(kinds[i], seed, scale));
    json.add("txs", static_cast<double>(world.chain.total_tx_count()));
    json.add("blocks", static_cast<double>(world.chain.size()));
    std::uint64_t cpfp = 0;
    for (const auto& block : world.chain.blocks()) {
      cpfp += block.cpfp_positions().size();
    }
    const double cpfp_pct = world.chain.total_tx_count() == 0
                                ? 0.0
                                : 100.0 * static_cast<double>(cpfp) /
                                      static_cast<double>(world.chain.total_tx_count());
    const double txs_per_block =
        static_cast<double>(world.chain.total_tx_count()) /
        static_cast<double>(world.chain.size());
    const double paper_empty_rate = static_cast<double>(kPaper[i].empty_blocks) /
                                    static_cast<double>(kPaper[i].blocks);
    table.print_row({kPaper[i].name, with_commas(world.chain.size()),
                     with_commas(world.chain.total_tx_count()),
                     fixed(txs_per_block, 1), fixed(cpfp_pct, 2),
                     with_commas(world.chain.empty_block_count()),
                     fixed(kPaper[i].cpfp_percent, 2),
                     fixed(paper_empty_rate * 100.0, 2) + "%"});
  }
  std::printf("\nnote: counts are scaled-down simulations (see DESIGN.md); "
              "compare the ratio columns.\n");

  return cn::bench::run_microbenchmarks(argc, argv);
}

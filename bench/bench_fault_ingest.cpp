// Fault-tolerant ingestion throughput: strict import of a clean export
// vs lenient import of the same export at 1% injected row corruption.
//
// The robustness layer (load_report.hpp) must not make the common case —
// clean data, strict policy — slower than the historical importer, and
// lenient recovery must stay within the same order of magnitude while
// skipping/repairing defective rows. Emits
// bench_out/BENCH_fault_ingest.json with rows/s for both paths.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>

#include "common.hpp"
#include "worlds.hpp"

#include "io/dataset_io.hpp"
#include "testing/fault_injector.hpp"

namespace {

using namespace cn;

std::uint64_t dataset_rows(const std::string& dir) {
  std::uint64_t rows = 0;
  for (const char* name : {"blocks.csv", "txs.csv", "inputs.csv", "outputs.csv"}) {
    std::FILE* f = std::fopen((dir + "/" + name).c_str(), "rb");
    if (f == nullptr) continue;
    int c;
    std::uint64_t lines = 0;
    while ((c = std::fgetc(f)) != EOF) {
      if (c == '\n') ++lines;
    }
    std::fclose(f);
    if (lines > 0) rows += lines - 1;  // minus header
  }
  return rows;
}

struct TimedImport {
  double seconds = 0.0;
  std::size_t blocks = 0;
  std::uint64_t defects = 0;
};

TimedImport timed_import(const std::string& dir, io::LoadPolicy policy) {
  const auto start = std::chrono::steady_clock::now();
  const auto result = io::import_chain(dir, policy);
  TimedImport timed;
  timed.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (result.has_value()) timed.blocks = result->size();
  timed.defects = static_cast<std::uint64_t>(result.report.errors.size());
  return timed;
}

void BM_FaultInjectTiny(benchmark::State& state) {
  const std::string src = cn::bench::out_dir() + "/fault_inject_bm_src";
  const std::string dst = cn::bench::out_dir() + "/fault_inject_bm_dst";
  const sim::SimResult world = sim::make_dataset(sim::DatasetKind::kA, 1, 0.02);
  if (!io::export_chain(world.chain, src)) {
    state.SkipWithError("export failed");
    return;
  }
  cn::testing::FaultOptions options;
  options.row_corruption_rate = 0.05;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    cn::testing::FaultInjector injector(seed++);
    benchmark::DoNotOptimize(injector.inject_dataset(src, dst, options));
  }
  std::filesystem::remove_all(src);
  std::filesystem::remove_all(dst);
}
BENCHMARK(BM_FaultInjectTiny)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  cn::bench::banner("fault-tolerant ingestion (strict clean vs lenient @1% corruption)",
                    "the measurement pipeline must survive lossy captures (§3)");
  cn::bench::JsonReport json("fault_ingest");

  const std::uint64_t seed = cn::bench::seed_from_env();
  const double scale = cn::bench::scale_from_env(0.25);
  const io::World world = cn::bench::world_for(
      cn::bench::worlds::baseline(sim::DatasetKind::kA, seed, scale));

  const std::string clean = cn::bench::out_dir() + "/fault_ingest_clean";
  const std::string dirty = cn::bench::out_dir() + "/fault_ingest_dirty";
  std::filesystem::remove_all(clean);
  std::filesystem::remove_all(dirty);
  if (!io::export_chain(world.chain, clean)) {
    std::fprintf(stderr, "export failed\n");
    return 1;
  }

  cn::testing::FaultOptions options;
  options.row_corruption_rate = 0.01;
  cn::testing::FaultInjector injector(seed);
  const auto log = injector.inject_dataset(clean, dirty, options);

  const std::uint64_t rows = dataset_rows(clean);
  const TimedImport strict = timed_import(clean, io::LoadPolicy::kStrict);
  const TimedImport lenient = timed_import(dirty, io::LoadPolicy::kLenient);

  const double strict_rps = strict.seconds > 0 ? rows / strict.seconds : 0.0;
  const double lenient_rps = lenient.seconds > 0 ? rows / lenient.seconds : 0.0;
  std::printf("  rows: %llu   injected faults: %zu\n",
              static_cast<unsigned long long>(rows), log.faults.size());
  std::printf("  strict  (clean): %8.0f rows/s  (%zu blocks, %.3fs)\n",
              strict_rps, strict.blocks, strict.seconds);
  std::printf("  lenient (dirty): %8.0f rows/s  (%zu blocks, %.3fs, %llu defects)\n",
              lenient_rps, lenient.blocks, lenient.seconds,
              static_cast<unsigned long long>(lenient.defects));

  json.metric("rows", static_cast<double>(rows));
  json.metric("injected_faults", static_cast<double>(log.faults.size()));
  json.metric("strict_rows_per_s", strict_rps);
  json.metric("lenient_rows_per_s", lenient_rps);
  json.metric("lenient_defects", static_cast<double>(lenient.defects));

  std::filesystem::remove_all(clean);
  std::filesystem::remove_all(dirty);
  return cn::bench::run_microbenchmarks(argc, argv);
}

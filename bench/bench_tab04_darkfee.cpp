// Table 4 — detecting dark-fee (accelerated) transactions in BTC.com's
// blocks via SPPE, validated against the service's public query API.
//
// Paper claims: of BTC.com transactions with SPPE >= 100/99/90/50/1 %,
// 73.89 / 64.98 / 18.12 / 1.06 / 0.16 % are confirmed accelerated — high
// SPPE is a strong acceleration signal; a 1000-tx random sample contains
// none.
#include "common.hpp"
#include "worlds.hpp"

#include "core/darkfee.hpp"
#include "core/sppe.hpp"
#include "core/wallet_inference.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"

namespace {

void BM_BlockSppe(benchmark::State& state) {
  using namespace cn;
  static const sim::SimResult world = sim::make_dataset(sim::DatasetKind::kC, 3, 0.05);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& block = world.chain.blocks()[i++ % world.chain.size()];
    benchmark::DoNotOptimize(core::block_sppe(block));
  }
}
BENCHMARK(BM_BlockSppe);

}  // namespace

int main(int argc, char** argv) {
  using namespace cn;
  bench::banner("Table 4 — SPPE-based dark-fee detection (BTC.com)",
                "% accelerated falls with the SPPE threshold: 73.9 / 65.0 / "
                "18.1 / 1.1 / 0.2 %; random sample: 0 of 1000");

  const std::uint64_t seed = bench::seed_from_env();
  const double scale = bench::scale_from_env(1.0);
  bench::JsonReport json("tab04_darkfee");
  const io::World world = bench::world_for(
      bench::worlds::baseline(sim::DatasetKind::kC, seed, scale));
  json.metric("txs", static_cast<double>(world.chain.total_tx_count()));
  json.metric("blocks", static_cast<double>(world.chain.size()));
  const auto registry = btc::CoinbaseTagRegistry::paper_registry();
  const core::PoolAttribution attribution(world.chain, registry);
  const auto is_accel = [&](const btc::Txid& id) {
    return world.is_accelerated(id);
  };

  static const double kPaperPct[] = {73.89, 64.98, 18.12, 1.06, 0.16};
  const auto buckets = core::darkfee_buckets(world.chain, attribution, "BTC.com",
                                             is_accel, {100.0, 99.0, 90.0, 50.0, 1.0});

  CsvWriter csv(bench::out_dir() + "/tab04_darkfee.csv");
  csv.header({"sppe_threshold", "txs", "accelerated", "percent"});
  core::TablePrinter table({"SPPE >=", "# txs", "# acc", "% acc", "paper %"},
                           {9, 10, 9, 9, 10});
  table.print_header();
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const auto& b = buckets[i];
    table.print_row({fixed(b.sppe_threshold, 0) + "%", with_commas(b.tx_count),
                     with_commas(b.accelerated),
                     fixed(b.accelerated_fraction() * 100.0, 2),
                     fixed(kPaperPct[i], 2)});
    csv.field(b.sppe_threshold, 0).field(b.tx_count).field(b.accelerated);
    csv.field(b.accelerated_fraction() * 100.0, 3);
    csv.end_row();
  }

  bool monotone = true;
  for (std::size_t i = 1; i < buckets.size(); ++i) {
    // Tolerance: the SPPE==100 bucket holds only a few dozen
    // transactions, so adjacent-threshold noise of ~0.15 is expected
    // (the paper's own 100-vs-99 step is nearly flat).
    monotone = monotone && buckets[i].accelerated_fraction() <=
                               buckets[i - 1].accelerated_fraction() + 0.15;
  }
  bench::compare("% accelerated monotone in threshold", "yes", monotone ? "yes" : "NO");

  const auto random_hits = core::accelerated_in_random_sample(
      world.chain, attribution, "BTC.com", is_accel, 1000, seed ^ 0xdead);
  bench::compare("accelerated in 1000-tx random sample", "0",
                 std::to_string(random_hits));

  // Bonus: the detector generalizes to the other service-selling pools.
  std::printf("\n  other acceleration-selling pools at SPPE >= 99 (extension):\n");
  for (const char* pool : {"AntPool", "ViaBTC", "F2Pool", "Poolin"}) {
    const auto other = core::darkfee_buckets(world.chain, attribution, pool,
                                             is_accel, {99.0});
    std::printf("    %-10s %6llu flagged, %5.1f%% confirmed accelerated\n", pool,
                static_cast<unsigned long long>(other[0].tx_count),
                other[0].accelerated_fraction() * 100.0);
  }
  std::printf("CSV: %s/tab04_darkfee.csv\n", bench::out_dir().c_str());

  return cn::bench::run_microbenchmarks(argc, argv);
}

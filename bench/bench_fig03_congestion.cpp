// Figure 3 (+ Figure 9) — congestion is typical: transaction volume vs
// block capacity over time, the Mempool-size distribution in A and B,
// and the Mempool-size time series (including B's late-June surges).
//
// Paper claims: Mempool above one block budget ~75% of the time in A and
// ~92% in B; peaks exceed 15x the budget; B fluctuates far more than A.
#include "common.hpp"
#include "worlds.hpp"

#include "stats/ecdf.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"

namespace {

void BM_SnapshotFraction(benchmark::State& state) {
  using namespace cn;
  static const sim::SimResult world = sim::make_dataset(sim::DatasetKind::kA, 3, 0.1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(world.observer.snapshots().fraction_above(100'000));
  }
}
BENCHMARK(BM_SnapshotFraction);

}  // namespace

int main(int argc, char** argv) {
  using namespace cn;
  bench::banner("Figure 3 / Figure 9 — Mempool congestion in A and B",
                "congested ~75% (A) and ~92% (B) of the time; peaks >15x a "
                "block; B swings ~3x harder than A");

  const std::uint64_t seed = bench::seed_from_env();
  const double scale = bench::scale_from_env(1.0);
  bench::JsonReport json("fig03_congestion");

  CsvWriter series_csv(bench::out_dir() + "/fig03_mempool_series.csv");
  series_csv.header({"dataset", "time_s", "tx_count", "vsize_vb"});
  CsvWriter growth_csv(bench::out_dir() + "/fig03_growth.csv");
  growth_csv.header({"dataset", "time_s", "cumulative_blocks", "cumulative_txs"});

  for (const auto& [kind, name, paper_frac] :
       {std::tuple{sim::DatasetKind::kA, "A", "75%"},
        std::tuple{sim::DatasetKind::kB, "B", "92%"}}) {
    const io::World world =
        bench::world_for(bench::worlds::baseline(kind, seed, scale));
    const auto& snaps = world.snapshots;
    const std::uint64_t unit = world.config.max_block_vsize;
    json.add("txs", static_cast<double>(world.chain.total_tx_count()));
    json.add("blocks", static_cast<double>(world.chain.size()));
    std::uint64_t peak_entries = 0;
    for (const auto& s : snaps.stats()) {
      peak_entries = std::max<std::uint64_t>(peak_entries, s.tx_count);
    }
    json.metric(std::string("peak_entries_") + name,
                static_cast<double>(peak_entries));
    json.metric(std::string("peak_vsize_") + name,
                static_cast<double>(snaps.max_vsize()));

    std::printf("--- data set %s ---\n", name);
    bench::compare("fraction of time congested (>1 block)", paper_frac,
                   percent(snaps.fraction_above(unit)));
    bench::compare("peak backlog (multiples of block budget)",
                   std::string(name) == "A" ? ">15x (Fig 3c)" : "larger than A (Fig 9)",
                   fixed(static_cast<double>(snaps.max_vsize()) /
                             static_cast<double>(unit), 1) + "x");

    // Mempool-size distribution (Fig 3b).
    std::vector<double> sizes;
    sizes.reserve(snaps.size());
    for (const auto& s : snaps.stats()) {
      sizes.push_back(static_cast<double>(s.total_vsize) /
                      static_cast<double>(unit));
    }
    const stats::Ecdf size_cdf{std::span<const double>(sizes)};
    core::print_cdf_summary(std::string("Mempool size (block budgets), ") + name,
                            size_cdf);
    core::write_cdf_csv(bench::out_dir() + "/fig03_mempool_cdf_" + name + ".csv",
                        size_cdf, "budgets");

    // Time series (Fig 3c / Fig 9), thinned for plotting.
    const std::size_t stride = std::max<std::size_t>(snaps.size() / 2000, 1);
    for (std::size_t i = 0; i < snaps.size(); i += stride) {
      const auto& s = snaps.stats()[i];
      series_csv.field(std::string(name));
      series_csv.field(s.time).field(s.tx_count).field(s.total_vsize);
      series_csv.end_row();
    }

    // Cumulative growth (Fig 3a proxy at simulation scale): blocks grow
    // linearly; transaction arrivals outpace them during surges.
    std::uint64_t blocks_so_far = 0, txs_so_far = 0;
    for (const auto& block : world.chain.blocks()) {
      ++blocks_so_far;
      txs_so_far += block.tx_count();
      if (blocks_so_far % 25 == 0) {
        growth_csv.field(std::string(name)).field(block.mined_at());
        growth_csv.field(blocks_so_far).field(txs_so_far);
        growth_csv.end_row();
      }
    }
    std::printf("\n");
  }
  std::printf("CSV: %s/fig03_*.csv\n", bench::out_dir().c_str());

  return cn::bench::run_microbenchmarks(argc, argv);
}

// Figure 7 — position-prediction error over data set C: the overall CDF
// and the CDFs of the six largest pools.
//
// Paper claims: mean PPE 2.65% (std 2.89); 80% of blocks below 4.03%;
// all large pools broadly follow the norm, with ViaBTC deviating
// slightly more than the rest (its selfish/collusive/dark-fee placements
// shift its blocks' orderings).
#include "common.hpp"
#include "worlds.hpp"

#include "core/ppe.hpp"
#include "core/wallet_inference.hpp"
#include "stats/descriptive.hpp"
#include "stats/ecdf.hpp"
#include "util/strings.hpp"

namespace {

void BM_PredictedPositions(benchmark::State& state) {
  using namespace cn;
  static const sim::SimResult world = sim::make_dataset(sim::DatasetKind::kC, 3, 0.05);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& block = world.chain.blocks()[i++ % world.chain.size()];
    benchmark::DoNotOptimize(core::predicted_positions(block, true));
  }
}
BENCHMARK(BM_PredictedPositions);

}  // namespace

int main(int argc, char** argv) {
  using namespace cn;
  bench::banner("Figure 7 — PPE over data set C, overall and per-pool",
                "mean PPE 2.65% (std 2.89), 80% of blocks < 4.03%; ViaBTC "
                "deviates slightly more");

  const std::uint64_t seed = bench::seed_from_env();
  const double scale = bench::scale_from_env(1.0);
  bench::JsonReport json("fig07_ppe_pools");
  const io::World world = bench::world_for(
      bench::worlds::baseline(sim::DatasetKind::kC, seed, scale));
  json.metric("txs", static_cast<double>(world.chain.total_tx_count()));
  json.metric("blocks", static_cast<double>(world.chain.size()));

  const std::vector<double> all_ppe = core::chain_ppe(world.chain);
  const auto summary = stats::summarize(all_ppe);
  const stats::Ecdf cdf{std::span<const double>(all_ppe)};

  bench::compare("mean PPE", "2.65%", fixed(summary.mean, 2) + "%");
  bench::compare("std PPE", "2.89", fixed(summary.stddev, 2));
  bench::compare("80th-percentile PPE", "4.03%", fixed(cdf.quantile(0.8), 2) + "%");
  bench::compare("blocks with a defined PPE", "99.55%", "see count below");
  core::print_cdf_summary("PPE, all blocks", cdf);
  core::write_cdf_csv(bench::out_dir() + "/fig07_ppe_all.csv", cdf, "ppe_percent");

  // Per-pool CDFs for the six largest pools (Fig 7b).
  const auto registry = btc::CoinbaseTagRegistry::paper_registry();
  const core::PoolAttribution attribution(world.chain, registry);
  const auto order = attribution.pools_by_blocks();
  std::printf("\n  per-pool PPE (top-6 by hash rate):\n");
  for (std::size_t i = 0; i < order.size() && i < 6; ++i) {
    std::vector<double> pool_ppe;
    for (const auto& block : world.chain.blocks()) {
      const auto owner = attribution.pool_of(block.height());
      if (!owner.has_value() || *owner != order[i]) continue;
      const auto ppe = core::block_ppe(block);
      if (ppe.has_value()) pool_ppe.push_back(*ppe);
    }
    if (pool_ppe.empty()) continue;
    const auto s = stats::summarize(pool_ppe);
    std::printf("    %-16s blocks=%-6zu mean=%-6.2f p80=%.2f\n", order[i].c_str(),
                pool_ppe.size(), s.mean,
                stats::quantile(pool_ppe, 0.8));
    const stats::Ecdf pool_cdf{std::span<const double>(pool_ppe)};
    core::write_cdf_csv(bench::out_dir() + "/fig07_ppe_" + order[i] + ".csv",
                        pool_cdf, "ppe_percent");
  }
  std::printf("\nCSV: %s/fig07_ppe_*.csv\n", bench::out_dir().c_str());

  return cn::bench::run_microbenchmarks(argc, argv);
}

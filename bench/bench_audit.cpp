// Columnar-vs-legacy run_full_audit: wall time of the staged pipeline
// over the AuditDataset against the pre-refactor object-graph monolith
// (AuditEngine::kLegacy), with a byte-equality check of the rendered
// reports — the speedup only counts if the output is provably unchanged.
#include "common.hpp"
#include "worlds.hpp"

#include <algorithm>
#include <cstring>
#include <filesystem>

#include "core/audit_pipeline.hpp"
#include "core/wallet_inference.hpp"
#include "io/cnb.hpp"
#include "io/dataset_source.hpp"
#include "obs/registry.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace cn;

const io::World* g_world = nullptr;

std::string rendered(const core::AuditReport& report) {
  std::FILE* tmp = std::tmpfile();
  core::print_audit_report(report, tmp);
  const long size = std::ftell(tmp);
  std::string out(static_cast<std::size_t>(size), '\0');
  std::rewind(tmp);
  const std::size_t read = std::fread(out.data(), 1, out.size(), tmp);
  std::fclose(tmp);
  out.resize(read);
  return out;
}

core::AuditOptions options_for(core::AuditEngine engine) {
  core::AuditOptions options;
  options.engine = engine;
  options.watch_addresses.push_back(g_world->scam_address());
  return options;
}

void BM_AuditLegacy(benchmark::State& state) {
  const auto options = options_for(core::AuditEngine::kLegacy);
  const auto registry = btc::CoinbaseTagRegistry::paper_registry();
  for (auto _ : state) {
    auto report = core::run_full_audit(g_world->chain, registry, options);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_AuditLegacy)->Unit(benchmark::kMillisecond);

void BM_AuditColumnar(benchmark::State& state) {
  const auto options = options_for(core::AuditEngine::kColumnar);
  const auto registry = btc::CoinbaseTagRegistry::paper_registry();
  for (auto _ : state) {
    auto report = core::run_full_audit(g_world->chain, registry, options);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_AuditColumnar)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  cn::bench::JsonReport json("audit");
  cn::bench::banner("run_full_audit: staged columnar pipeline vs legacy monolith",
                    "(engineering bench; the paper's §4-§5 methodology end to end)");

  const std::uint64_t seed = cn::bench::seed_from_env();
  const double scale = cn::bench::scale_from_env(0.5);
  const io::World world = cn::bench::world_for(
      cn::bench::worlds::baseline(sim::DatasetKind::kC, seed, scale));
  g_world = &world;
  std::printf("world: %zu blocks, %llu transactions\n\n", world.chain.size(),
              static_cast<unsigned long long>(world.chain.total_tx_count()));
  json.metric("blocks", static_cast<double>(world.chain.size()));
  json.metric("txs", static_cast<double>(world.chain.total_tx_count()));

  const auto registry = btc::CoinbaseTagRegistry::paper_registry();
  const auto timed = [&](core::AuditEngine engine, core::AuditReport* out) {
    constexpr int kReps = 3;
    double best = 1e300;
    for (int rep = 0; rep < kReps; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      auto report = core::run_full_audit(g_world->chain, registry,
                                         options_for(engine));
      best = std::min(
          best, std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              t0)
                    .count());
      if (out != nullptr) *out = std::move(report);
    }
    return best;
  };

  core::AuditReport legacy_report, columnar_report;
  const double legacy_s = timed(core::AuditEngine::kLegacy, &legacy_report);
  const double columnar_s = timed(core::AuditEngine::kColumnar, &columnar_report);
  const bool bytes_equal = rendered(legacy_report) == rendered(columnar_report);

  std::printf("  legacy monolith:   %8.3f s\n", legacy_s);
  std::printf("  columnar pipeline: %8.3f s   (%.2fx, reports %s)\n",
              columnar_s, legacy_s / columnar_s,
              bytes_equal ? "byte-identical" : "DIVERGED");
  std::printf("\n--- columnar stage timings ---\n");
  for (const core::AuditStage& s : columnar_report.stages) {
    std::printf("  %-14s %8.3f s\n", s.name.c_str(), s.seconds);
    json.metric("stage_" + s.name + "_seconds", s.seconds);
  }

  json.metric("legacy_seconds", legacy_s);
  json.metric("columnar_seconds", columnar_s);
  json.metric("speedup", legacy_s / columnar_s);
  json.metric("reports_byte_identical", bytes_equal ? 1.0 : 0.0);
  if (!bytes_equal) {
    std::fprintf(stderr, "FATAL: columnar report diverged from the legacy oracle\n");
    return 1;
  }

  // Observability overhead gate (DESIGN.md §10): the instrumented audit
  // must stay within 2% of the same audit with the runtime obs switch
  // off, and the report must not change by a byte either way. On/off
  // reps are interleaved and each side takes its minimum, so clock
  // drift, frequency scaling and cache warmth cancel instead of being
  // billed to the instrumentation.
  const auto timed_once = [&](core::AuditReport* out) {
    const auto t0 = std::chrono::steady_clock::now();
    auto report = core::run_full_audit(g_world->chain, registry,
                                       options_for(core::AuditEngine::kColumnar));
    const double s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (out != nullptr) *out = std::move(report);
    return s;
  };
  core::AuditReport lit_report, dark_report;
  double lit_s = 1e300;
  double dark_s = 1e300;
  constexpr int kObsPairs = 5;
  for (int rep = 0; rep < kObsPairs; ++rep) {
    cn::obs::set_enabled(true);
    lit_s = std::min(lit_s, timed_once(&lit_report));
    cn::obs::set_enabled(false);
    dark_s = std::min(dark_s, timed_once(&dark_report));
  }
  cn::obs::set_enabled(true);
  const bool obs_bytes_equal = rendered(dark_report) == rendered(lit_report);
  const double overhead = dark_s > 0.0 ? lit_s / dark_s - 1.0 : 0.0;
  const bool overhead_ok = overhead <= 0.02;
  std::printf("\n--- observability overhead ---\n");
  std::printf("  obs on:  %8.3f s\n  obs off: %8.3f s   (%+.2f%%, budget 2%%, "
              "reports %s)\n",
              lit_s, dark_s, overhead * 100.0,
              obs_bytes_equal ? "byte-identical" : "DIVERGED");
  json.metric("obs_enabled_seconds", lit_s);
  json.metric("obs_disabled_seconds", dark_s);
  json.metric("obs_overhead_fraction", overhead);
  json.metric("obs_overhead_ok", overhead_ok ? 1.0 : 0.0);
  json.metric("obs_reports_byte_identical", obs_bytes_equal ? 1.0 : 0.0);
  if (!obs_bytes_equal) {
    std::fprintf(stderr, "FATAL: report changed when observability was disabled\n");
    return 1;
  }

  // --- CNB1 prebuilt-dataset path (DESIGN.md §11) ---
  // Round-trip the world through a CNB1 file with the derived columns
  // embedded, audit from the stored dataset, and hold it to three
  // promises: the report stays byte-identical to the in-memory columnar
  // audit, the build stage collapses to pointer-fixup cost (< 5% of the
  // audit wall-clock), and the numbers land in the BENCH json.
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(cn::bench::out_dir(), ec);
  const std::string cnb_path =
      (fs::path(cn::bench::out_dir()) / "audit_world.cnb").string();
  {
    util::ThreadPool workers(0);
    const core::PoolAttribution attribution(world.chain, registry);
    const auto dataset =
        core::AuditDataset::build(world.chain, attribution, workers);
    io::CnbWriteOptions cnb_options;
    cnb_options.dataset = &dataset;
    cnb_options.registry_fingerprint = registry.fingerprint();
    std::string io_error;
    if (!io::write_cnb(world.chain, cnb_path, cnb_options, &io_error)) {
      std::fprintf(stderr, "FATAL: write_cnb: %s\n", io_error.c_str());
      return 1;
    }
  }

  const auto t_load = std::chrono::steady_clock::now();
  const auto loaded = io::open_dataset(cnb_path, io::LoadPolicy::kStrict);
  const double cnb_load_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_load)
          .count();
  const core::AuditDataset* prebuilt =
      loaded.has_value() ? loaded->prebuilt_for(registry) : nullptr;
  if (prebuilt == nullptr) {
    std::fprintf(stderr, "FATAL: CNB1 load yielded no usable prebuilt dataset\n");
    return 1;
  }

  core::AuditReport prebuilt_report;
  double prebuilt_s = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    auto options = options_for(core::AuditEngine::kColumnar);
    options.prebuilt_dataset = prebuilt;
    const auto t0 = std::chrono::steady_clock::now();
    auto report = core::run_full_audit(loaded->chain, registry, options);
    prebuilt_s = std::min(
        prebuilt_s,
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count());
    prebuilt_report = std::move(report);
  }
  const bool cnb_bytes_equal =
      rendered(prebuilt_report) == rendered(columnar_report);

  double build_stage_s = 0.0;
  for (const core::AuditStage& s : prebuilt_report.stages) {
    if (s.name == "build") build_stage_s = s.seconds;
  }
  // The budget is against the audit users actually wait for: a stored
  // dataset must shrink the build stage to < 5% of the columnar audit's
  // wall-clock (it used to BE ~94% of it — the cost this format erases).
  const double build_fraction =
      columnar_s > 0.0 ? build_stage_s / columnar_s : 0.0;
  const bool build_fraction_ok = build_fraction < 0.05;
  std::printf("\n--- CNB1 prebuilt dataset ---\n");
  std::printf("  load:  %8.3f s   audit: %8.3f s   (reports %s)\n", cnb_load_s,
              prebuilt_s, cnb_bytes_equal ? "byte-identical" : "DIVERGED");
  std::printf("  build stage: %.4f s = %.2f%% of the %.3f s columnar audit "
              "(budget 5%%, %s)\n",
              build_stage_s, build_fraction * 100.0, columnar_s,
              build_fraction_ok ? "OK" : "FAILED");
  json.metric("cnb_load_seconds", cnb_load_s);
  json.metric("cnb_audit_seconds", prebuilt_s);
  json.metric("cnb_stage_build_seconds", build_stage_s);
  json.metric("cnb_build_fraction", build_fraction);
  json.metric("cnb_build_fraction_ok", build_fraction_ok ? 1.0 : 0.0);
  json.metric("cnb_reports_byte_identical", cnb_bytes_equal ? 1.0 : 0.0);
  if (!cnb_bytes_equal) {
    std::fprintf(stderr,
                 "FATAL: CNB1 prebuilt report diverged from the columnar "
                 "oracle\n");
    return 1;
  }
  if (!build_fraction_ok) {
    std::fprintf(stderr,
                 "FATAL: build stage is %.2f%% of the columnar audit "
                 "(budget 5%%)\n",
                 build_fraction * 100.0);
    return 1;
  }

  return cn::bench::run_microbenchmarks(argc, argv);
}

// Figure 8 — (a) reward-wallet counts per pool and (b) inferred
// self-interest transaction counts per pool, over data set C.
//
// Paper claims: pools use multiple reward wallets (SlushPool 56, Poolin
// 23, ...); 12,121 transactions (~0.011% of all) are inferred as pool
// self-interest transactions, led by Poolin, Okex and Huobi; BitDeer and
// Buffett share wallets with BTC.com and Lubian.com respectively (the
// registry folds them together).
#include "common.hpp"
#include "worlds.hpp"

#include "core/wallet_inference.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"

namespace {

void BM_SelfInterestScan(benchmark::State& state) {
  using namespace cn;
  static const sim::SimResult world = sim::make_dataset(sim::DatasetKind::kC, 3, 0.1);
  static const auto registry = btc::CoinbaseTagRegistry::paper_registry();
  static const core::PoolAttribution attribution(world.chain, registry);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::self_interest_txs(world.chain, attribution, "F2Pool"));
  }
}
BENCHMARK(BM_SelfInterestScan)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  using namespace cn;
  bench::banner("Figure 8 — pool reward wallets & self-interest transactions",
                "multiple wallets per pool; ~0.011% of all txs are pool "
                "self-interest txs");

  const std::uint64_t seed = bench::seed_from_env();
  const double scale = bench::scale_from_env(1.0);
  bench::JsonReport json("fig08_wallets");
  const io::World world = bench::world_for(
      bench::worlds::baseline(sim::DatasetKind::kC, seed, scale));
  json.metric("txs", static_cast<double>(world.chain.total_tx_count()));
  json.metric("blocks", static_cast<double>(world.chain.size()));
  const auto registry = btc::CoinbaseTagRegistry::paper_registry();
  const core::PoolAttribution attribution(world.chain, registry);

  CsvWriter csv(bench::out_dir() + "/fig08_wallets.csv");
  csv.header({"pool", "blocks", "reward_wallets", "self_interest_txs"});

  core::TablePrinter table({"pool", "blocks", "wallets", "self-txs"},
                           {16, 9, 9, 10});
  table.print_header();
  std::uint64_t total_self = 0;
  for (const auto& pool : attribution.pools_by_blocks()) {
    const auto txs = core::self_interest_txs(world.chain, attribution, pool);
    total_self += txs.size();
    table.print_row({pool, with_commas(attribution.blocks_of(pool)),
                     std::to_string(attribution.wallets_of(pool).size()),
                     with_commas(static_cast<std::uint64_t>(txs.size()))});
    csv.field(pool).field(attribution.blocks_of(pool));
    csv.field(static_cast<std::uint64_t>(attribution.wallets_of(pool).size()));
    csv.field(static_cast<std::uint64_t>(txs.size()));
    csv.end_row();
  }

  const double self_share =
      static_cast<double>(total_self) /
      static_cast<double>(std::max<std::uint64_t>(world.chain.total_tx_count(), 1));
  json.metric("self_interest_txs", static_cast<double>(total_self));
  bench::compare("total inferred self-interest txs", "12,121 (0.011%)",
                 with_commas(total_self) + " (" + percent(self_share, 3) + ")");
  std::printf("CSV: %s/fig08_wallets.csv\n", bench::out_dir().c_str());

  return cn::bench::run_microbenchmarks(argc, argv);
}

// Sharded simulation engine scaling: world size x thread count sweep.
//
// The PR-7 engine splits transaction generation across per-shard event
// lanes that synchronize at a conservative time-window barrier, so sim
// throughput should scale with cores while threads=1 stays byte-
// identical to the seed engine. This bench records txs/s, events/s and
// blocks/s for every (world, threads) cell into BENCH_sim_scale.json
// and enforces the >=10x parallel-speedup gate on hosts that can
// physically express it (>=16 hardware threads; a conservative-window
// engine cannot exceed ~1x per core, so gating 10x on a smaller host
// would only measure the machine). On smaller hosts the ratio is still
// recorded and the gate is reported as skipped, with the reason.
//
//   --smoke   tiny world, determinism checks only, no perf gates, no
//             micro-benchmarks. This is the CI/TSan leg: it drives the
//             serial and sharded paths (including a repeat run compared
//             for equality) fast enough to run under sanitizers.
#include "common.hpp"

#include <cstring>
#include <thread>

#include "obs/registry.hpp"
#include "sim/dataset.hpp"
#include "sim/engine.hpp"
#include "sim/engine_seed.hpp"

namespace {

using namespace cn;

double counter_value(const char* name) {
  for (const auto& m : obs::snapshot()) {
    if (m.name == name) return m.value;
  }
  return 0.0;
}

struct RunCell {
  double seconds = 0.0;
  double txs = 0.0;
  double blocks = 0.0;
  double events = 0.0;
  sim::SimResult result;
};

/// One engine run; @p threads < 0 selects the in-tree seed (oracle)
/// engine instead of the sharded one.
RunCell run_once(sim::DatasetKind kind, std::uint64_t seed, double scale,
                 int threads) {
  sim::EngineConfig cfg = sim::dataset_config(kind, seed, scale);
  const double events_before = counter_value("sim.engine.events");
  const auto t0 = std::chrono::steady_clock::now();
  RunCell cell;
  if (threads < 0) {
    cell.result = sim::SeedEngine(cfg).run();
  } else {
    cfg.threads = static_cast<unsigned>(threads);
    cell.result = sim::Engine(cfg).run();
  }
  cell.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  cell.txs = static_cast<double>(cell.result.chain.total_tx_count());
  cell.blocks = static_cast<double>(cell.result.chain.size());
  cell.events = counter_value("sim.engine.events") - events_before;
  return cell;
}

bool same_world(const sim::SimResult& a, const sim::SimResult& b) {
  if (a.chain.size() != b.chain.size()) return false;
  for (std::size_t i = 0; i < a.chain.size(); ++i) {
    const auto& ba = a.chain.blocks()[i];
    const auto& bb = b.chain.blocks()[i];
    if (ba.tx_count() != bb.tx_count()) return false;
    for (std::size_t j = 0; j < ba.tx_count(); ++j) {
      if (!(ba.txs()[j].id() == bb.txs()[j].id())) return false;
    }
  }
  if (a.issued_count != b.issued_count) return false;
  if (a.observer.first_seen_map().size() != b.observer.first_seen_map().size())
    return false;
  for (const auto& [id, t] : a.observer.first_seen_map()) {
    const auto other = b.observer.first_seen(id);
    if (!other.has_value() || *other != t) return false;
  }
  return true;
}

std::uint64_t g_seed = 42;

void BM_EngineSerialSmall(benchmark::State& state) {
  for (auto _ : state) {
    sim::EngineConfig cfg =
        sim::dataset_config(sim::DatasetKind::kA, g_seed, 0.05);
    cfg.threads = 1;
    auto r = sim::Engine(cfg).run();
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_EngineSerialSmall)->Unit(benchmark::kMillisecond);

void BM_EngineShardedSmall(benchmark::State& state) {
  for (auto _ : state) {
    sim::EngineConfig cfg =
        sim::dataset_config(sim::DatasetKind::kA, g_seed, 0.05);
    cfg.threads = 0;  // all hardware threads
    auto r = sim::Engine(cfg).run();
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_EngineShardedSmall)->Unit(benchmark::kMillisecond);

int run_smoke(std::uint64_t seed) {
  cn::bench::JsonReport json("sim_scale_smoke");
  cn::bench::banner("sim engine scaling (smoke): serial/sharded determinism",
                    "(engineering bench; no paper counterpart)");
  const double scale = 0.1;
  const RunCell oracle = run_once(sim::DatasetKind::kA, seed, scale, -1);
  const RunCell serial = run_once(sim::DatasetKind::kA, seed, scale, 1);
  const RunCell shard_a = run_once(sim::DatasetKind::kA, seed, scale, 2);
  const RunCell shard_b = run_once(sim::DatasetKind::kA, seed, scale, 2);

  const bool serial_ok = same_world(oracle.result, serial.result);
  const bool sharded_ok = same_world(shard_a.result, shard_b.result);
  std::printf("  threads=1 == seed engine:       %s\n",
              serial_ok ? "OK" : "FAILED");
  std::printf("  threads=2 run-to-run identical: %s\n",
              sharded_ok ? "OK" : "FAILED");
  json.metric("serial_matches_seed", serial_ok ? 1.0 : 0.0);
  json.metric("sharded_deterministic", sharded_ok ? 1.0 : 0.0);
  json.metric("txs", serial.txs);
  json.metric("blocks", serial.blocks);
  if (!serial_ok || !sharded_ok) {
    std::fprintf(stderr, "FATAL: smoke determinism check failed\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed = cn::bench::seed_from_env();
  g_seed = seed;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return run_smoke(seed);
  }

  cn::bench::JsonReport json("sim_scale");
  cn::bench::banner("sim engine scaling: world size x thread count",
                    "(engineering bench; no paper counterpart)");
  const double scale = cn::bench::scale_from_env(0.5);
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("host: %u hardware threads\n\n", hw);
  json.metric("hardware_threads", static_cast<double>(hw));

  struct World {
    const char* name;
    sim::DatasetKind kind;
    double scale;
  };
  const World worlds[] = {
      {"small", sim::DatasetKind::kA, 0.5 * scale},
      {"medium", sim::DatasetKind::kB, 1.0 * scale},
      {"large", sim::DatasetKind::kC, 2.0 * scale},
  };
  // threads: -1 = seed engine baseline, then the sweep. 0 resolves to
  // every hardware thread.
  const int thread_cells[] = {-1, 1, 2, 0};

  double large_t1_rate = 0.0, large_t0_rate = 0.0;
  for (const World& w : worlds) {
    std::printf("world %-6s (kind=%c, scale=%.3g)\n", w.name,
                "ABC"[static_cast<int>(w.kind)], w.scale);
    for (int threads : thread_cells) {
      const RunCell cell = run_once(w.kind, seed, w.scale, threads);
      const double txs_per_s = cell.txs / cell.seconds;
      const double events_per_s = cell.events / cell.seconds;
      const double blocks_per_s = cell.blocks / cell.seconds;
      char label[32];
      if (threads < 0) {
        std::snprintf(label, sizeof(label), "seed");
      } else {
        std::snprintf(label, sizeof(label), "t%d", threads);
      }
      std::printf(
          "  %-5s %8.3f s   %9.0f txs/s   %9.0f events/s   %6.2f blocks/s\n",
          label, cell.seconds, txs_per_s, events_per_s, blocks_per_s);
      const std::string key = std::string(w.name) + "." + label;
      json.metric(key + ".seconds", cell.seconds);
      json.metric(key + ".txs_per_s", txs_per_s);
      json.metric(key + ".events_per_s", events_per_s);
      json.metric(key + ".blocks_per_s", blocks_per_s);
      json.add("txs", cell.txs);
      json.add("blocks", cell.blocks);
      if (std::strcmp(w.name, "large") == 0 && threads == 1)
        large_t1_rate = txs_per_s;
      if (std::strcmp(w.name, "large") == 0 && threads == 0)
        large_t0_rate = txs_per_s;
    }
  }

  // --- the >=10x parallel gate ---
  // A conservative time-window engine scales at most ~1x per core, so
  // 10x requires >=16 hardware threads to be physically expressible
  // (with barrier overhead eating the slack). On smaller hosts the
  // ratio is recorded but the gate is explicitly skipped — failing it
  // there would measure the machine, not the engine.
  const double speedup =
      large_t1_rate > 0.0 ? large_t0_rate / large_t1_rate : 0.0;
  const bool host_capable = hw >= 16;
  std::printf("\n  large world threads=0 vs threads=1: %.2fx\n", speedup);
  json.metric("parallel_speedup_large", speedup);
  json.metric("parallel_gate_skipped", host_capable ? 0.0 : 1.0);
  if (host_capable) {
    const bool ok = speedup >= 10.0;
    std::printf("  parallel gate (>=10x): %s\n", ok ? "OK" : "FAILED");
    json.metric("parallel_gate_ok", ok ? 1.0 : 0.0);
    if (!ok) {
      std::fprintf(stderr,
                   "FATAL: parallel speedup %.2fx is below the 10x gate\n",
                   speedup);
      return 1;
    }
  } else {
    std::printf(
        "  parallel gate (>=10x): SKIPPED — host has %u hardware threads; "
        "a conservative-window engine needs >=16 to express 10x\n",
        hw);
  }

  return cn::bench::run_microbenchmarks(argc, argv);
}

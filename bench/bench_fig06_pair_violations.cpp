// Figure 6 — fraction of transaction pairs violating the fee-rate
// selection norm, across 30 randomly sampled Mempool snapshots.
//
// Paper claims: a small but non-trivial fraction of pairs violate the
// norm in every snapshot; the fraction shrinks (but does not vanish)
// when the arrival constraint is tightened by epsilon = 10 s / 10 min,
// and shrinks further when CPFP-dependent transactions are discarded.
#include "common.hpp"
#include "worlds.hpp"

#include <algorithm>

#include "core/congestion.hpp"
#include "core/wallet_inference.hpp"
#include "stats/ecdf.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace {

std::vector<cn::core::SeenTx> synthetic_txs(std::size_t n) {
  using namespace cn;
  std::vector<core::SeenTx> txs;
  txs.reserve(n);
  Rng rng(1);
  for (std::size_t i = 0; i < n; ++i) {
    txs.push_back(core::SeenTx{static_cast<SimTime>(i), rng.uniform(1.0, 100.0),
                               1 + rng.uniform_below(40), false, false});
  }
  return txs;
}

void BM_PairViolationsFenwick(benchmark::State& state) {
  using namespace cn;
  const auto txs = synthetic_txs(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::count_pair_violations(
        txs, 0, false, 0, core::PairAlgorithm::kFenwick));
  }
}
BENCHMARK(BM_PairViolationsFenwick)
    ->Arg(500)
    ->Arg(2000)
    ->Arg(100'000)
    ->Unit(benchmark::kMillisecond);

void BM_PairViolationsBruteForce(benchmark::State& state) {
  using namespace cn;
  const auto txs = synthetic_txs(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::count_pair_violations(
        txs, 0, false, 0, core::PairAlgorithm::kBruteForce));
  }
}
BENCHMARK(BM_PairViolationsBruteForce)
    ->Arg(500)
    ->Arg(2000)
    ->Unit(benchmark::kMillisecond);

/// One timed run of each algorithm at n = 100k (downsampling disabled);
/// returns {fenwick_seconds, brute_seconds} and checks they agree.
std::pair<double, double> speedup_at_100k() {
  using namespace cn;
  const auto txs = synthetic_txs(100'000);
  const auto timed = [&](core::PairAlgorithm algorithm) {
    const auto start = std::chrono::steady_clock::now();
    const auto stats = core::count_pair_violations(txs, 0, false, 0, algorithm);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    return std::make_pair(seconds, stats);
  };
  const auto [fenwick_s, fenwick_stats] = timed(core::PairAlgorithm::kFenwick);
  const auto [brute_s, brute_stats] = timed(core::PairAlgorithm::kBruteForce);
  if (fenwick_stats.predicted_pairs != brute_stats.predicted_pairs ||
      fenwick_stats.violations != brute_stats.violations) {
    std::printf("  !! ALGORITHM MISMATCH at n=100k\n");
  }
  return {fenwick_s, brute_s};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cn;
  bench::banner("Figure 6 — pairwise selection-norm violations (data set A)",
                "non-trivial violating fraction in every snapshot; shrinks "
                "under epsilon tightening and CPFP exclusion");

  const std::uint64_t seed = bench::seed_from_env();
  const double scale = bench::scale_from_env(1.0);
  bench::JsonReport json("fig06_pair_violations");

  const io::World world = bench::world_for(
      bench::worlds::baseline(sim::DatasetKind::kA, seed, scale));
  json.metric("txs", static_cast<double>(world.chain.total_tx_count()));
  json.metric("blocks", static_cast<double>(world.chain.size()));
  const auto seen = core::collect_seen_txs(
      world.chain,
      [&](const btc::Txid& id) { return world.first_seen(id); });

  // Sample 30 snapshot times uniformly at random, as the paper does.
  Rng rng(seed ^ 0xf16f16);
  const auto& snaps = world.snapshots;
  std::vector<SimTime> sample_times;
  for (int i = 0; i < 30; ++i) {
    sample_times.push_back(
        snaps.stats()[rng.uniform_below(snaps.size())].time);
  }

  struct Config {
    const char* label;
    SimTime epsilon;
    bool exclude_cpfp;
  };
  const Config configs[] = {
      {"all txs, eps=0", 0, false},
      {"all txs, eps=10s", 10, false},
      {"all txs, eps=10min", 10 * kMinute, false},
      {"non-CPFP, eps=0", 0, true},
      {"non-CPFP, eps=10s", 10, true},
      {"non-CPFP, eps=10min", 10 * kMinute, true},
  };

  CsvWriter csv(bench::out_dir() + "/fig06_pair_violations.csv");
  csv.header({"config", "snapshot_time", "predicted_pairs", "violations",
              "fraction"});

  for (const Config& config : configs) {
    std::vector<double> fractions;
    for (SimTime t : sample_times) {
      const auto pending = core::pending_at(seen, world.chain, t);
      const auto stats = core::count_pair_violations(pending, config.epsilon,
                                                     config.exclude_cpfp);
      if (stats.predicted_pairs == 0) continue;
      fractions.push_back(stats.fraction());
      csv.field(std::string(config.label)).field(t);
      csv.field(stats.predicted_pairs).field(stats.violations);
      csv.field(stats.fraction(), 6);
      csv.end_row();
    }
    const stats::Ecdf cdf{std::span<const double>(fractions)};
    if (cdf.empty()) {
      std::printf("  %-22s (no predicted pairs)\n", config.label);
      continue;
    }
    std::printf("  %-22s snapshots=%-3zu median=%-8s p90=%-8s max=%s\n",
                config.label, cdf.size(), percent(cdf.quantile(0.5)).c_str(),
                percent(cdf.quantile(0.9)).c_str(), percent(cdf.max()).c_str());
  }

  bench::compare("violations in (almost) every snapshot", "yes (Fig 6)", "see rows above");
  bench::compare("epsilon / CPFP filtering reduces fraction", "yes", "compare rows");

  // Extension: attribute the non-CPFP violations to the pools whose
  // blocks absorbed the worse-qualified transaction early. The planted
  // misbehaving pools should dominate per-block.
  {
    const auto registry = btc::CoinbaseTagRegistry::paper_registry();
    const core::PoolAttribution attribution(world.chain, registry);
    std::unordered_map<std::string, std::uint64_t> by_pool;
    for (SimTime t : sample_times) {
      const auto pending = core::pending_at(seen, world.chain, t);
      for (const auto& [height, n] :
           core::violations_by_block(pending, 0, /*exclude_cpfp=*/true)) {
        const auto pool = attribution.pool_of(height);
        by_pool[pool.value_or("(unknown)")] += n;
      }
    }
    std::printf("\n  non-CPFP violations per mined block, by pool (extension):\n");
    std::vector<std::pair<std::string, double>> rates;
    for (const auto& [pool, n] : by_pool) {
      const std::uint64_t blocks = attribution.blocks_of(pool);
      if (blocks < 10) continue;
      rates.emplace_back(pool, static_cast<double>(n) / static_cast<double>(blocks));
    }
    std::sort(rates.begin(), rates.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    for (std::size_t i = 0; i < rates.size() && i < 6; ++i) {
      std::printf("    %-16s %.2f violations/block\n", rates[i].first.c_str(),
                  rates[i].second);
    }
  }
  std::printf("CSV: %s/fig06_pair_violations.csv\n", bench::out_dir().c_str());

  // Exact counting at scale: Fenwick/CDQ vs the O(n^2) reference at
  // n = 100k with downsampling disabled.
  {
    const auto [fenwick_s, brute_s] = speedup_at_100k();
    std::printf("\n  exact counting, n=100k, no downsampling:\n");
    std::printf("    fenwick  %8.3f s\n    brute    %8.3f s\n    speedup  %.1fx\n",
                fenwick_s, brute_s, fenwick_s > 0 ? brute_s / fenwick_s : 0.0);
    json.metric("fenwick_seconds_100k", fenwick_s);
    json.metric("brute_seconds_100k", brute_s);
    json.metric("speedup_100k", fenwick_s > 0 ? brute_s / fenwick_s : 0.0);
  }

  return cn::bench::run_microbenchmarks(argc, argv);
}

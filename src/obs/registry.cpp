#include "obs/registry.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>

#include "util/assert.hpp"

namespace cn::obs {

namespace {

std::atomic<bool> g_enabled{true};

}  // namespace

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

const std::vector<double>& latency_seconds_buckets() {
  static const std::vector<double> kBuckets = {
      1e-6, 4e-6, 16e-6, 64e-6, 256e-6, 1e-3, 4e-3,
      16e-3, 64e-3, 0.25, 1.0, 4.0, 16.0, 64.0, 128.0};
  return kBuckets;
}

const std::vector<double>& depth_buckets() {
  static const std::vector<double> kBuckets = {0, 1, 2, 4, 8, 16, 32, 64, 128, 256};
  return kBuckets;
}

#if !defined(CN_OBS_DISABLE)

namespace detail {
namespace {

/// Atomic double add (shard-local, so the CAS loop almost never spins).
void atomic_add(std::atomic<double>& slot, double delta) noexcept {
  double cur = slot.load(std::memory_order_relaxed);
  while (!slot.compare_exchange_weak(cur, cur + delta,
                                     std::memory_order_relaxed)) {
  }
}

/// One thread's slice of every counter/histogram. Chunked so growth
/// never moves existing atomics: a fixed pointer table of lazily
/// allocated chunks, readable lock-free by the scrape thread.
struct Shard {
  static constexpr std::size_t kChunkBits = 8;
  static constexpr std::size_t kChunkSize = 1u << kChunkBits;  // slots/chunk
  static constexpr std::size_t kMaxChunks = 64;                // 16384 slots

  struct Chunk {
    std::atomic<std::uint64_t> u64[kChunkSize]{};
    std::atomic<double> f64[kChunkSize]{};
  };

  std::atomic<Chunk*> chunks[kMaxChunks]{};

  Chunk* chunk_for_slot(std::uint32_t slot) noexcept {
    const std::size_t c = slot >> kChunkBits;
    CN_ASSERT(c < kMaxChunks);
    Chunk* got = chunks[c].load(std::memory_order_acquire);
    if (got != nullptr) return got;
    auto fresh = std::make_unique<Chunk>();
    Chunk* expected = nullptr;
    if (chunks[c].compare_exchange_strong(expected, fresh.get(),
                                          std::memory_order_acq_rel)) {
      return fresh.release();
    }
    return expected;  // another thread won the install race
  }

  std::uint64_t read_u64(std::uint32_t slot) const noexcept {
    const Chunk* c = chunks[slot >> kChunkBits].load(std::memory_order_acquire);
    return c == nullptr
               ? 0
               : c->u64[slot & (kChunkSize - 1)].load(std::memory_order_relaxed);
  }
  double read_f64(std::uint32_t slot) const noexcept {
    const Chunk* c = chunks[slot >> kChunkBits].load(std::memory_order_acquire);
    return c == nullptr
               ? 0.0
               : c->f64[slot & (kChunkSize - 1)].load(std::memory_order_relaxed);
  }
  void zero() noexcept {
    for (auto& slot : chunks) {
      Chunk* c = slot.load(std::memory_order_acquire);
      if (c == nullptr) continue;
      for (auto& v : c->u64) v.store(0, std::memory_order_relaxed);
      for (auto& v : c->f64) v.store(0.0, std::memory_order_relaxed);
    }
  }
};

struct MetricInfo {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  /// First shard slot: counters use 1 u64 slot; histograms use
  /// uppers.size()+1 u64 slots (bucket counts incl. overflow) followed by
  /// 1 u64 (count) and 1 f64 (sum, at the same slot index).
  std::uint32_t slot = 0;
  std::vector<double> uppers;  // histogram only
};

class RegistryImpl {
 public:
  static constexpr std::size_t kMaxMetrics = 4096;

  static RegistryImpl& instance() {
    static RegistryImpl* impl = new RegistryImpl();  // leaked: outlives TLS dtors
    return *impl;
  }

  MetricId intern(std::string_view name, MetricKind kind,
                  const std::vector<double>* uppers) {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = by_name_.find(std::string(name));
    if (it != by_name_.end()) {
      CN_ASSERT(info(it->second).kind == kind);
      return it->second;
    }
    CN_ASSERT(metric_count_.load(std::memory_order_relaxed) < kMaxMetrics);
    auto info = std::make_unique<MetricInfo>();
    info->name = std::string(name);
    info->kind = kind;
    info->slot = next_slot_;
    if (kind == MetricKind::kHistogram) {
      CN_ASSERT(uppers != nullptr && !uppers->empty());
      CN_ASSERT(std::is_sorted(uppers->begin(), uppers->end()));
      info->uppers = *uppers;
      // buckets (incl. overflow) + count slot (u64) / sum slot (f64).
      next_slot_ += static_cast<std::uint32_t>(uppers->size()) + 2;
    } else {
      next_slot_ += 1;
    }
    const MetricId id =
        static_cast<MetricId>(metric_count_.load(std::memory_order_relaxed));
    by_name_.emplace(info->name, id);
    // Publish pointer first, count last: hot-path readers index only
    // below the published count.
    metrics_[id].store(info.release(), std::memory_order_release);
    metric_count_.store(id + 1, std::memory_order_release);
    return id;
  }

  /// The calling thread's shard, created (or recycled) on first use.
  Shard& local_shard() {
    thread_local ShardLease lease(*this);
    return *lease.shard;
  }

  /// Lock-free: MetricInfo is immutable once published.
  const MetricInfo& info(MetricId id) const noexcept {
    return *metrics_[id].load(std::memory_order_acquire);
  }

  std::vector<MetricValue> snapshot() {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::size_t n = metric_count_.load(std::memory_order_acquire);
    std::vector<MetricValue> out;
    out.reserve(n);
    for (std::size_t id = 0; id < n; ++id) {
      const MetricInfo& m = info(static_cast<MetricId>(id));
      MetricValue v;
      v.name = m.name;
      v.kind = m.kind;
      switch (m.kind) {
        case MetricKind::kCounter: {
          std::uint64_t total = 0;
          for (const auto& s : shards_) total += s->read_u64(m.slot);
          v.value = static_cast<double>(total);
          break;
        }
        case MetricKind::kGauge:
          v.value = gauges_.count(m.slot) ? gauges_.at(m.slot) : 0.0;
          break;
        case MetricKind::kHistogram: {
          const std::size_t nb = m.uppers.size() + 1;
          v.bucket_uppers = m.uppers;
          v.bucket_counts.assign(nb, 0);
          for (const auto& s : shards_) {
            for (std::size_t b = 0; b < nb; ++b) {
              v.bucket_counts[b] +=
                  s->read_u64(m.slot + static_cast<std::uint32_t>(b));
            }
            const auto tail = m.slot + static_cast<std::uint32_t>(nb);
            v.count += s->read_u64(tail);
            v.sum += s->read_f64(tail);
          }
          break;
        }
      }
      out.push_back(std::move(v));
    }
    std::sort(out.begin(), out.end(),
              [](const MetricValue& a, const MetricValue& b) {
                return a.name < b.name;
              });
    return out;
  }

  void gauge_set(std::uint32_t slot, double value) {
    std::lock_guard<std::mutex> lock(mutex_);
    gauges_[slot] = value;
  }

  void reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& s : shards_) s->zero();
    gauges_.clear();
  }

 private:
  /// Ties a shard to a thread's lifetime; on thread exit the shard goes
  /// back to the free list (its counts are cumulative and stay merged).
  struct ShardLease {
    RegistryImpl& reg;
    Shard* shard;
    explicit ShardLease(RegistryImpl& r) : reg(r), shard(r.acquire_shard()) {}
    ~ShardLease() { reg.release_shard(shard); }
  };

  Shard* acquire_shard() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!free_shards_.empty()) {
      Shard* s = free_shards_.back();
      free_shards_.pop_back();
      return s;
    }
    shards_.push_back(std::make_unique<Shard>());
    return shards_.back().get();
  }

  void release_shard(Shard* s) {
    std::lock_guard<std::mutex> lock(mutex_);
    free_shards_.push_back(s);
  }

  mutable std::mutex mutex_;
  std::map<std::string, MetricId> by_name_;
  std::atomic<MetricInfo*> metrics_[kMaxMetrics]{};
  std::atomic<std::size_t> metric_count_{0};
  std::uint32_t next_slot_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;  ///< all ever created
  std::vector<Shard*> free_shards_;             ///< recyclable (thread exited)
  std::map<std::uint32_t, double> gauges_;
};

}  // namespace

MetricId intern_counter(std::string_view name) {
  return RegistryImpl::instance().intern(name, MetricKind::kCounter, nullptr);
}

MetricId intern_gauge(std::string_view name) {
  return RegistryImpl::instance().intern(name, MetricKind::kGauge, nullptr);
}

MetricId intern_histogram(std::string_view name,
                          const std::vector<double>& uppers) {
  return RegistryImpl::instance().intern(name, MetricKind::kHistogram, &uppers);
}

void counter_add(MetricId id, std::uint64_t delta) noexcept {
  RegistryImpl& reg = RegistryImpl::instance();
  const MetricInfo& info = reg.info(id);
  Shard& shard = reg.local_shard();
  shard.chunk_for_slot(info.slot)
      ->u64[info.slot & (Shard::kChunkSize - 1)]
      .fetch_add(delta, std::memory_order_relaxed);
}

void gauge_set(MetricId id, double value) noexcept {
  RegistryImpl& reg = RegistryImpl::instance();
  reg.gauge_set(reg.info(id).slot, value);
}

void histogram_observe(MetricId id, double value) noexcept {
  RegistryImpl& reg = RegistryImpl::instance();
  const MetricInfo& info = reg.info(id);
  Shard& shard = reg.local_shard();
  const auto it =
      std::lower_bound(info.uppers.begin(), info.uppers.end(), value);
  const std::uint32_t bucket =
      info.slot + static_cast<std::uint32_t>(it - info.uppers.begin());
  shard.chunk_for_slot(bucket)
      ->u64[bucket & (Shard::kChunkSize - 1)]
      .fetch_add(1, std::memory_order_relaxed);
  const std::uint32_t tail =
      info.slot + static_cast<std::uint32_t>(info.uppers.size()) + 1;
  Shard::Chunk* tc = shard.chunk_for_slot(tail);
  tc->u64[tail & (Shard::kChunkSize - 1)].fetch_add(1,
                                                    std::memory_order_relaxed);
  atomic_add(tc->f64[tail & (Shard::kChunkSize - 1)], value);
}

}  // namespace detail

std::vector<MetricValue> snapshot() {
  return detail::RegistryImpl::instance().snapshot();
}

void reset_for_test() { detail::RegistryImpl::instance().reset(); }

#else  // CN_OBS_DISABLE

std::vector<MetricValue> snapshot() { return {}; }
void reset_for_test() {}

#endif  // CN_OBS_DISABLE

}  // namespace cn::obs

// Metric / trace serialization (DESIGN.md §10).
//
// Two documents, written on demand (cnaudit --metrics-out, bench
// harness, tests):
//
//   metrics.json — every registered metric, merged across shards.
//     Schema-stable by construction: keys are the sorted metric names,
//     values are plain numbers (counters/gauges) or
//     {buckets, counts, count, sum} objects (histograms). The default
//     document carries NO wall-clock timestamps, so two runs of the
//     same deterministic workload differ only where genuinely
//     nondeterministic quantities (latency histograms, seconds gauges)
//     differ — never in the key set.
//
//   trace.json — the Timeline's spans in Chrome "trace event" format
//     (chrome://tracing, ui.perfetto.dev): complete ("ph":"X") events
//     with microsecond start/duration, one row per recording thread,
//     parent span ids under "args".
//
// Writers return false on I/O failure and never throw.
#pragma once

#include <string>

namespace cn::obs {

/// Serializes the current Registry snapshot (see registry.hpp) to
/// @p path. @p with_meta adds a "wall_unix_seconds" stamp — off by
/// default so documents stay reproducible.
bool write_metrics_json(const std::string& path, bool with_meta = false);

/// Serializes the Timeline to @p path in Chrome trace format.
bool write_trace_json(const std::string& path);

/// The metrics document as a string (what write_metrics_json writes;
/// exposed for the determinism tests).
std::string metrics_json_string(bool with_meta = false);

}  // namespace cn::obs

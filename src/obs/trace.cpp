#include "obs/trace.hpp"

#include <atomic>
#include <chrono>
#include <mutex>
#include <utility>

#include "obs/registry.hpp"

namespace cn::obs {

namespace {

struct TimelineState {
  std::mutex mutex;
  std::vector<TraceEvent> events;
  std::chrono::steady_clock::time_point epoch;
  bool epoch_set = false;
  std::atomic<std::uint32_t> next_span{1};
  std::atomic<std::uint32_t> next_thread{0};
};

TimelineState& timeline() {
  static TimelineState* state = new TimelineState();  // outlives TLS dtors
  return *state;
}

std::uint64_t now_ns(TimelineState& tl) {
  // Epoch is armed lazily under the mutex so the first span starts at 0.
  const auto now = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(tl.mutex);
    if (!tl.epoch_set) {
      tl.epoch = now;
      tl.epoch_set = true;
    }
  }
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now - tl.epoch)
          .count());
}

std::uint32_t local_thread_index() {
  thread_local const std::uint32_t index =
      timeline().next_thread.fetch_add(1, std::memory_order_relaxed);
  return index;
}

/// Innermost open span of this thread (0 = none).
std::uint32_t& open_span() {
  thread_local std::uint32_t top = 0;
  return top;
}

}  // namespace

std::vector<TraceEvent> timeline_events() {
  TimelineState& tl = timeline();
  std::lock_guard<std::mutex> lock(tl.mutex);
  return tl.events;
}

void timeline_clear() {
  TimelineState& tl = timeline();
  std::lock_guard<std::mutex> lock(tl.mutex);
  tl.events.clear();
  tl.epoch_set = false;
}

#if !defined(CN_OBS_DISABLE)

Span::Span(std::string name) {
  if (!enabled()) return;
  TimelineState& tl = timeline();
  name_ = std::move(name);
  id_ = tl.next_span.fetch_add(1, std::memory_order_relaxed);
  start_ns_ = now_ns(tl);
  // Temporarily becomes the thread's innermost span; the previous top is
  // recovered in the destructor by recording parent here.
  parent_ = open_span();
  open_span() = id_;
}

Span::~Span() {
  if (id_ == 0) return;
  TimelineState& tl = timeline();
  TraceEvent event;
  event.name = std::move(name_);
  event.start_ns = start_ns_;
  event.dur_ns = now_ns(tl) - start_ns_;
  event.thread = local_thread_index();
  event.id = id_;
  event.parent = parent_;
  open_span() = parent_;
  std::lock_guard<std::mutex> lock(tl.mutex);
  tl.events.push_back(std::move(event));
}

#endif  // CN_OBS_DISABLE

}  // namespace cn::obs

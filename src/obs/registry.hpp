// Process-wide metric registry (DESIGN.md §10).
//
// The audit pipeline is a staged fan-out over a thread pool; watching it
// at production scale needs counters that cost ~one relaxed atomic add
// on the hot path and never serialize writers. The design is the usual
// per-thread-shard scheme:
//
//   * a metric is interned once by name into a dense MetricId;
//   * every thread owns a Shard — a chunked array of atomics indexed by
//     MetricId. Writes touch only the calling thread's shard (a relaxed
//     fetch_add on an uncontended cache line);
//   * scraping (Registry::snapshot) walks all shards and sums. Shards of
//     exited threads are recycled, never freed, so totals survive
//     worker churn (a ThreadPool per audit call is the norm).
//
// Metric kinds:
//   * Counter   — monotonic u64, shard-summed;
//   * Gauge     — last-written double, stored centrally (set from one
//                 thread at a time: sizes, rates, ratios);
//   * Histogram — fixed upper-bound buckets declared at registration,
//                 per-shard bucket counts + count + sum.
//
// Naming scheme: lower-case dotted paths, subsystem first —
// "io.ingest.rows_read", "util.thread_pool.task_seconds",
// "audit.stage.build.seconds". Stable names are the schema: the
// determinism suite asserts the exported key set does not wobble across
// runs or thread counts.
//
// Switches:
//   * runtime  — obs::set_enabled(false) turns every record call into a
//     single relaxed load-and-branch;
//   * compile  — building with -DCN_OBS_DISABLE compiles handles to
//     empty inline bodies (zero code on the hot path). Exports then
//     produce valid but empty documents, and audit reports are
//     byte-identical either way (instrumentation never feeds back into
//     results).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cn::obs {

/// Runtime master switch (default on). Disabling keeps every handle
/// valid; record calls become a load + branch.
bool enabled() noexcept;
void set_enabled(bool on) noexcept;

#if !defined(CN_OBS_DISABLE)

namespace detail {

using MetricId = std::uint32_t;
inline constexpr MetricId kNoMetric = ~MetricId{0};

MetricId intern_counter(std::string_view name);
MetricId intern_gauge(std::string_view name);
/// @p uppers — ascending finite bucket upper bounds; a +inf overflow
/// bucket is implicit. Re-registering the same name must pass the same
/// bounds.
MetricId intern_histogram(std::string_view name,
                          const std::vector<double>& uppers);

void counter_add(MetricId id, std::uint64_t delta) noexcept;
void gauge_set(MetricId id, double value) noexcept;
void histogram_observe(MetricId id, double value) noexcept;

}  // namespace detail

/// Cheap copyable handle to a named counter. Construction interns the
/// name (mutex-guarded, do it once, e.g. via a function-local static);
/// add() is the lock-free hot path.
class Counter {
 public:
  Counter() = default;
  explicit Counter(std::string_view name)
      : id_(detail::intern_counter(name)) {}

  void add(std::uint64_t delta = 1) const noexcept {
    if (id_ != detail::kNoMetric && enabled()) detail::counter_add(id_, delta);
  }

 private:
  detail::MetricId id_ = detail::kNoMetric;
};

class Gauge {
 public:
  Gauge() = default;
  explicit Gauge(std::string_view name) : id_(detail::intern_gauge(name)) {}

  void set(double value) const noexcept {
    if (id_ != detail::kNoMetric && enabled()) detail::gauge_set(id_, value);
  }

 private:
  detail::MetricId id_ = detail::kNoMetric;
};

class Histogram {
 public:
  Histogram() = default;
  Histogram(std::string_view name, const std::vector<double>& uppers)
      : id_(detail::intern_histogram(name, uppers)) {}

  void observe(double value) const noexcept {
    if (id_ != detail::kNoMetric && enabled()) {
      detail::histogram_observe(id_, value);
    }
  }

 private:
  detail::MetricId id_ = detail::kNoMetric;
};

#else  // CN_OBS_DISABLE: handles compile to nothing.

class Counter {
 public:
  Counter() = default;
  explicit Counter(std::string_view) {}
  void add(std::uint64_t = 1) const noexcept {}
};

class Gauge {
 public:
  Gauge() = default;
  explicit Gauge(std::string_view) {}
  void set(double) const noexcept {}
};

class Histogram {
 public:
  Histogram() = default;
  Histogram(std::string_view, const std::vector<double>&) {}
  void observe(double) const noexcept {}
};

#endif  // CN_OBS_DISABLE

/// Exponential seconds buckets suitable for task/stage latencies
/// (1 us .. ~2 min, x4 steps).
const std::vector<double>& latency_seconds_buckets();

/// Small linear buckets for queue depths (0..256, power-of-two edges).
const std::vector<double>& depth_buckets();

// --- scrape side (always compiled; empty under CN_OBS_DISABLE) -------

enum class MetricKind { kCounter, kGauge, kHistogram };

/// One merged metric at scrape time.
struct MetricValue {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;                  ///< counter total / gauge level
  std::vector<double> bucket_uppers;   ///< histogram only
  std::vector<std::uint64_t> bucket_counts;  ///< +1 overflow bucket
  std::uint64_t count = 0;             ///< histogram sample count
  double sum = 0.0;                    ///< histogram sample sum
};

/// Merges every shard and returns all metrics sorted by name (the sort
/// makes the export schema-stable by construction).
std::vector<MetricValue> snapshot();

/// Zeroes every counter/histogram shard and gauge. Tests only — the
/// production registry is cumulative for the process lifetime.
void reset_for_test();

}  // namespace cn::obs

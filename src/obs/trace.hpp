// RAII stage tracing (DESIGN.md §10).
//
// A Span marks one timed region — an audit stage, a CSV import, a
// dataset build — and records {name, wall time, thread id, parent span}
// into the process-wide in-memory Timeline on destruction. Spans nest
// via a thread-local stack, so sub-stages automatically attach to the
// enclosing stage, and the exported trace.json (Chrome "trace event"
// format, load via chrome://tracing or https://ui.perfetto.dev)
// reconstructs the full flame graph per thread.
//
// Spans are deliberately coarse: one per stage or file, never one per
// transaction — the hot path stays on obs::Counter. Recording is a
// short mutex-guarded append (spans are rare); when obs is disabled at
// runtime, constructing a Span is a relaxed load and two branches, and
// under CN_OBS_DISABLE it compiles away entirely.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cn::obs {

/// One completed span in the timeline.
struct TraceEvent {
  std::string name;
  std::uint64_t start_ns = 0;  ///< since Timeline epoch (steady clock)
  std::uint64_t dur_ns = 0;
  std::uint32_t thread = 0;    ///< dense per-process thread index
  std::uint32_t id = 0;        ///< span id (1-based; 0 = none)
  std::uint32_t parent = 0;    ///< enclosing span id, 0 at top level
};

/// Completed spans in completion order. The epoch is the first call into
/// the timeline after process start (or the last clear()).
std::vector<TraceEvent> timeline_events();

/// Drops all recorded spans and re-arms the epoch. Tests and long-lived
/// servers scrape-and-clear between windows.
void timeline_clear();

#if !defined(CN_OBS_DISABLE)

class Span {
 public:
  explicit Span(std::string name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  std::string name_;
  std::uint64_t start_ns_ = 0;
  std::uint32_t id_ = 0;      ///< 0 when obs was disabled at construction
  std::uint32_t parent_ = 0;  ///< enclosing span at construction time
};

#else

class Span {
 public:
  explicit Span(const std::string&) {}
};

#endif  // CN_OBS_DISABLE

}  // namespace cn::obs

#include "obs/export.hpp"

#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <string>

#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace cn::obs {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
}

void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "0";
    return;
  }
  char buf[40];
  // %.17g round-trips doubles; trim a trailing ".0"-less integer form.
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

bool write_file(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::size_t wrote = std::fwrite(body.data(), 1, body.size(), f);
  const bool ok = wrote == body.size() && std::fclose(f) == 0;
  if (!ok && wrote != body.size()) std::fclose(f);
  return ok;
}

}  // namespace

std::string metrics_json_string(bool with_meta) {
  const std::vector<MetricValue> metrics = snapshot();
  std::string out;
  out.reserve(4096);
  out += "{\n  \"schema\": \"cn.obs.metrics/1\",\n";
  if (with_meta) {
    out += "  \"wall_unix_seconds\": ";
    append_number(
        out, std::chrono::duration<double>(
                 std::chrono::system_clock::now().time_since_epoch())
                 .count());
    out += ",\n";
  }

  const auto emit_section = [&](const char* title, MetricKind kind,
                                bool trailing_comma) {
    out += "  \"";
    out += title;
    out += "\": {";
    bool first = true;
    for (const MetricValue& m : metrics) {
      if (m.kind != kind) continue;
      out += first ? "\n" : ",\n";
      first = false;
      out += "    \"";
      append_escaped(out, m.name);
      out += "\": ";
      if (kind == MetricKind::kHistogram) {
        out += "{\"buckets\": [";
        for (std::size_t i = 0; i < m.bucket_uppers.size(); ++i) {
          if (i > 0) out += ", ";
          append_number(out, m.bucket_uppers[i]);
        }
        out += "], \"counts\": [";
        for (std::size_t i = 0; i < m.bucket_counts.size(); ++i) {
          if (i > 0) out += ", ";
          append_u64(out, m.bucket_counts[i]);
        }
        out += "], \"count\": ";
        append_u64(out, m.count);
        out += ", \"sum\": ";
        append_number(out, m.sum);
        out += "}";
      } else if (kind == MetricKind::kCounter) {
        append_u64(out, static_cast<std::uint64_t>(m.value));
      } else {
        append_number(out, m.value);
      }
    }
    out += first ? "}" : "\n  }";
    out += trailing_comma ? ",\n" : "\n";
  };

  emit_section("counters", MetricKind::kCounter, true);
  emit_section("gauges", MetricKind::kGauge, true);
  emit_section("histograms", MetricKind::kHistogram, false);
  out += "}\n";
  return out;
}

bool write_metrics_json(const std::string& path, bool with_meta) {
  return write_file(path, metrics_json_string(with_meta));
}

bool write_trace_json(const std::string& path) {
  const std::vector<TraceEvent> events = timeline_events();
  std::string out;
  out.reserve(256 + events.size() * 128);
  out += "{\"traceEvents\": [";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    out += i == 0 ? "\n" : ",\n";
    out += "  {\"name\": \"";
    append_escaped(out, e.name);
    out += "\", \"cat\": \"cn\", \"ph\": \"X\", \"pid\": 1, \"tid\": ";
    append_u64(out, e.thread);
    out += ", \"ts\": ";
    append_number(out, static_cast<double>(e.start_ns) / 1000.0);
    out += ", \"dur\": ";
    append_number(out, static_cast<double>(e.dur_ns) / 1000.0);
    out += ", \"args\": {\"span\": ";
    append_u64(out, e.id);
    out += ", \"parent\": ";
    append_u64(out, e.parent);
    out += "}}";
  }
  out += events.empty() ? "]" : "\n]";
  out += ", \"displayTimeUnit\": \"ms\"}\n";
  return write_file(path, out);
}

}  // namespace cn::obs

#include "daemon/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#include "daemon/wire.hpp"
#include "testing/crash_points.hpp"

namespace cn::daemon {

namespace {

constexpr char kMagic[6] = {'C', 'N', 'C', 'P', '1', '\0'};
constexpr std::uint16_t kVersion = 1;

bool fsync_path(const std::string& path, std::string* error) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (error != nullptr) *error = path + ": open for fsync: " + std::strerror(errno);
    return false;
  }
  const bool ok = ::fsync(fd) == 0;
  if (!ok && error != nullptr) *error = path + ": fsync: " + std::strerror(errno);
  ::close(fd);
  return ok;
}

io::LoadError make_error(io::LoadErrorKind kind, const std::string& path,
                         std::string detail) {
  io::LoadError e;
  e.kind = kind;
  e.file = path;
  e.detail = std::move(detail);
  return e;
}

}  // namespace

bool save_checkpoint(const AuditAccumulators& acc, const std::string& path,
                     std::string* error) {
  std::vector<std::uint8_t> payload;
  acc.encode(payload);

  std::vector<std::uint8_t> file;
  file.reserve(payload.size() + 64);
  ByteWriter w(file);
  for (char c : kMagic) w.u8(static_cast<std::uint8_t>(c));
  w.u8(static_cast<std::uint8_t>(kVersion & 0xff));
  w.u8(static_cast<std::uint8_t>(kVersion >> 8));
  w.u64(acc.options().fingerprint());
  // The registry itself is not serialized — the daemon re-creates it —
  // but its fingerprint guards against resuming with different tags.
  w.u64(acc.registry_fingerprint());
  w.u64(payload.size());
  w.u64(fnv1a(payload.data(), payload.size()));
  file.insert(file.end(), payload.begin(), payload.end());

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      if (error != nullptr) *error = tmp + ": cannot open for writing";
      return false;
    }
    out.write(reinterpret_cast<const char*>(file.data()),
              static_cast<std::streamsize>(file.size()));
    if (!out) {
      if (error != nullptr) *error = tmp + ": short write";
      return false;
    }
  }
  testing::crash_point("checkpoint.pre_fsync");
  if (!fsync_path(tmp, error)) return false;
  testing::crash_point("checkpoint.pre_rename");
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    if (error != nullptr) *error = tmp + " -> " + path + ": rename: " + ec.message();
    return false;
  }
  testing::crash_point("checkpoint.post_rename");
  // Durable rename: fsync the containing directory so the new directory
  // entry survives power loss too (best-effort; some filesystems refuse
  // to open directories).
  const std::filesystem::path dir = std::filesystem::path(path).parent_path();
  if (!dir.empty()) fsync_path(dir.string(), nullptr);
  return true;
}

CheckpointLoad load_checkpoint(AuditAccumulators& acc, const std::string& path,
                               std::uint64_t expected_config,
                               std::uint64_t expected_registry) {
  CheckpointLoad result;

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    result.error = make_error(io::LoadErrorKind::kFileOpen, path,
                              "checkpoint file missing or unreadable");
    return result;
  }
  std::vector<std::uint8_t> file((std::istreambuf_iterator<char>(in)),
                                 std::istreambuf_iterator<char>());
  in.close();

  ByteReader r(file.data(), file.size());
  char magic[6] = {};
  for (char& c : magic) {
    std::uint8_t b = 0;
    if (!r.u8(b)) {
      result.error = make_error(io::LoadErrorKind::kTruncatedFile, path,
                                "shorter than the CNCP1 magic");
      return result;
    }
    c = static_cast<char>(b);
  }
  if (std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    result.error = make_error(io::LoadErrorKind::kBadMagic, path,
                              "not a CNCP1 checkpoint");
    return result;
  }
  std::uint8_t vlo = 0, vhi = 0;
  std::uint64_t config_fpr = 0, registry_fpr = 0, payload_size = 0, checksum = 0;
  if (!r.u8(vlo) || !r.u8(vhi) || !r.u64(config_fpr) || !r.u64(registry_fpr) ||
      !r.u64(payload_size) || !r.u64(checksum)) {
    result.error = make_error(io::LoadErrorKind::kTruncatedFile, path,
                              "header extends past EOF");
    return result;
  }
  const std::uint16_t version = static_cast<std::uint16_t>(vlo | (vhi << 8));
  if (version != kVersion) {
    result.error = make_error(io::LoadErrorKind::kUnsupportedVersion, path,
                              "checkpoint version " + std::to_string(version));
    return result;
  }
  if (config_fpr != expected_config) {
    result.error =
        make_error(io::LoadErrorKind::kUnsupportedVersion, path,
                   "checkpoint was written under different accumulator options");
    return result;
  }
  if (registry_fpr != expected_registry) {
    result.error =
        make_error(io::LoadErrorKind::kUnsupportedVersion, path,
                   "checkpoint was written under a different coinbase-tag registry");
    return result;
  }
  if (payload_size != r.remaining()) {
    result.error = make_error(
        io::LoadErrorKind::kTruncatedFile, path,
        "payload is " + std::to_string(r.remaining()) + " bytes, header says " +
            std::to_string(payload_size));
    return result;
  }
  const std::uint8_t* payload = file.data() + (file.size() - payload_size);
  if (fnv1a(payload, payload_size) != checksum) {
    result.error = make_error(io::LoadErrorKind::kSectionChecksum, path,
                              "payload checksum mismatch");
    return result;
  }
  std::string decode_error;
  if (!acc.decode(payload, payload_size, &decode_error)) {
    result.error = make_error(io::LoadErrorKind::kSectionLayout, path,
                              "payload decode: " + decode_error);
    return result;
  }
  result.ok = true;
  result.seq = acc.last_seq();
  return result;
}

}  // namespace cn::daemon

// cnauditd's engine: ingest -> apply -> serve, crash-safe.
//
// The daemon consumes a StreamSource (blocks + mempool snapshots),
// applies each event to the incremental AuditAccumulators, persists
// atomic checkpoints on a block cadence, and serves sealed JSON reports
// plus health/readiness over HTTP (tools/cnauditd.cpp wires the
// routes). Two execution modes share every line of apply logic:
//
//   threads=1  synchronous: run_to_end() pulls and applies on the
//              caller's thread (the --oneshot path, and the mode the
//              chaos harness kills);
//   threads=0  pipelined: an ingest thread pulls (with per-read
//              deadline + retry/backoff) into a BoundedQueue — blocking
//              push IS the backpressure — an apply thread drains it,
//              and a watchdog thread fails readiness when apply stops
//              making progress while work is pending.
//
// Overload behavior (the robustness headline): when the queue depth
// crosses the shed watermark the daemon stops re-sealing reports
// (sealing does the O(n log^2 n) pair recount — the expensive query
// work) and serves the last sealed body with degraded/staleness stamps
// in HTTP headers. Bodies stay byte-deterministic; only freshness
// degrades.
//
// Thread discipline: accumulators_ is touched exclusively by the apply
// side (run_to_end caller or the apply thread); queries read only the
// cached sealed report under report_mu_. stats_ fields are atomics.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "daemon/accumulators.hpp"
#include "daemon/bounded_queue.hpp"
#include "daemon/checkpoint.hpp"
#include "daemon/http.hpp"
#include "io/stream_source.hpp"

namespace cn::daemon {

struct DaemonConfig {
  AccumulatorOptions accumulators;

  /// Checkpoint file path; empty disables checkpointing.
  std::string checkpoint_path;
  std::uint64_t checkpoint_every_blocks = 32;
  /// Re-seal (refresh the served report) every N applied blocks.
  std::uint64_t seal_every_blocks = 16;

  int read_deadline_ms = 1'000;
  io::RetryPolicy retry;
  /// Give up (fatal) after this many consecutive exhausted-retry reads.
  int max_consecutive_failures = 100;

  std::size_t queue_capacity = 256;
  /// Queue depth above which seals are skipped and reads degraded.
  std::size_t shed_watermark = 192;

  int threads = 1;  ///< 1 = synchronous, 0 = pipelined (ingest/apply/watchdog)
  int watchdog_stall_ms = 5'000;
};

/// Monotonic run counters (all readable while the daemon runs).
struct DaemonStats {
  std::uint64_t events_applied = 0;
  std::uint64_t blocks_applied = 0;
  std::uint64_t snapshots_applied = 0;
  std::uint64_t checkpoints_written = 0;
  std::uint64_t seals = 0;
  std::uint64_t seals_shed = 0;       ///< seal points skipped under overload
  std::uint64_t degraded_reads = 0;
  std::uint64_t read_failures = 0;    ///< exhausted-retry next() calls
  std::uint64_t recovered_seq = 0;    ///< checkpoint seq resumed from (0 = cold)
  bool checkpoint_rejected = false;   ///< a checkpoint existed but was unusable
};

class AuditDaemon {
 public:
  /// @p source and @p registry must outlive the daemon. @p first_seen
  /// resolves observer arrival times (may be empty).
  AuditDaemon(io::StreamSource& source, const btc::CoinbaseTagRegistry& registry,
              core::FirstSeenFn first_seen, DaemonConfig config);
  ~AuditDaemon();

  /// Restores from the configured checkpoint (when present and valid)
  /// and seeks the source to one past the restored sequence number. An
  /// unusable checkpoint (torn, wrong fingerprint) is discarded — the
  /// daemon cold-starts, which is always safe because replay is
  /// deterministic. Returns false only on a hard source error.
  /// @p message receives a one-line description either way.
  bool recover(std::string* message = nullptr);

  // --- synchronous mode (threads = 1) --------------------------------

  /// Pulls and applies until the feed ends (kEnd), a fatal error, or
  /// stop(). Returns the terminal stream status.
  io::StreamStatus run_to_end();

  // --- pipelined mode (threads = 0) ----------------------------------

  void start();          ///< spawn ingest + apply + watchdog threads
  void join();           ///< wait for the feed to drain, then stop threads
  void stop();           ///< request shutdown and join (idempotent)

  // --- query surface (thread-safe) -----------------------------------

  /// Routes /report, /healthz, /readyz, /metrics.
  HttpResponse handle(const HttpRequest& request);

  /// Seals a fresh report NOW on the calling thread. Only valid in
  /// synchronous mode or after join() (see thread discipline above).
  std::string seal_report_json();

  bool healthy() const noexcept { return !fatal_.load(); }
  /// Ready = started, not stalled, not shedding, no fatal error.
  bool ready() const noexcept;

  DaemonStats stats() const;
  const AuditAccumulators& accumulators() const noexcept { return accumulators_; }

 private:
  void apply_event(const io::StreamEvent& event);
  void maybe_checkpoint();
  void seal_and_cache();
  void ingest_loop();
  void apply_loop();
  void watchdog_loop();
  bool shedding() const noexcept;

  io::RetryingSource source_;
  const btc::CoinbaseTagRegistry* registry_;
  core::FirstSeenFn first_seen_;
  DaemonConfig config_;
  AuditAccumulators accumulators_;

  BoundedQueue<io::StreamEvent> queue_;
  std::thread ingest_thread_;
  std::thread apply_thread_;
  std::thread watchdog_thread_;
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> ingest_done_{false};
  std::atomic<bool> apply_done_{false};
  std::atomic<bool> started_{false};
  std::atomic<bool> fatal_{false};
  std::atomic<bool> stalled_{false};

  // Stats counters (relaxed; read via stats()).
  std::atomic<std::uint64_t> events_applied_{0};
  std::atomic<std::uint64_t> blocks_applied_{0};
  std::atomic<std::uint64_t> snapshots_applied_{0};
  std::atomic<std::uint64_t> checkpoints_written_{0};
  std::atomic<std::uint64_t> seals_{0};
  std::atomic<std::uint64_t> seals_shed_{0};
  std::atomic<std::uint64_t> degraded_reads_{0};
  std::atomic<std::uint64_t> read_failures_{0};
  std::atomic<std::uint64_t> recovered_seq_{0};
  std::atomic<bool> checkpoint_rejected_{false};
  /// accumulators_.blocks() mirrored for lock-free staleness stamps.
  std::atomic<std::uint64_t> acc_blocks_{0};

  // Cached sealed report (served by /report).
  mutable std::mutex report_mu_;
  std::string cached_report_;
  std::uint64_t cached_version_ = 0;
  std::uint64_t cached_blocks_ = 0;  ///< blocks_applied_ at seal time
};

}  // namespace cn::daemon

// Incremental audit accumulators — the daemon's event-sourced twin of
// core::run_full_audit's per-pool scorecards.
//
// The batch pipeline scans a finished chain; cnauditd sees one block at
// a time and must answer queries between blocks. This module keeps, per
// pool, exactly the partial sums core's report_for_pool would hold after
// the same prefix of blocks (PPE sum, boosted-tx and floor-discipline
// counts, self-dealing c-block counts), applies one block in O(block),
// and materializes a full worst-first scorecard on demand ("sealing").
//
// One semantic deliberately differs from batch: self-interest flagging
// is *prequential*. The batch audit knows every wallet a pool ever
// names; the daemon flags a transaction against the wallets known when
// its block is applied — the honest online-observer stance (a watchdog
// cannot use wallets announced in next month's coinbases). mean_ppe,
// boosted rate, and floor rate are bitwise equal to batch; self-dealing
// x/y may lag batch early in a stream and converge as wallets are
// learned. DESIGN.md §13 records this contract.
//
// Everything here is deterministic and serializable: apply order is
// defined (attribute + learn wallet, then norms, then self-interest),
// doubles round-trip bit-exactly through encode/decode, and report JSON
// is rendered with a fixed format — the foundations of the crash-safety
// invariant (kill anywhere, restart from checkpoint, byte-identical
// report).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "btc/chain.hpp"
#include "btc/coinbase_tags.hpp"
#include "core/congestion.hpp"
#include "core/neutrality.hpp"
#include "core/pair_violations.hpp"
#include "node/snapshot.hpp"

namespace cn::daemon {

struct AccumulatorOptions {
  core::NeutralityOptions neutrality;  ///< same thresholds as batch
  /// Arrival slack for the pair-violation count (core's epsilon).
  SimTime pair_epsilon = 0;
  bool pair_exclude_cpfp = true;
  /// Block budget the congestion bins are relative to.
  std::uint64_t congestion_unit_vsize = 1'000'000;

  /// Order-insensitive digest of every threshold above. Checkpoints
  /// embed it; restoring under different options is a typed error, not
  /// a silently wrong report.
  std::uint64_t fingerprint() const noexcept;
};

/// Running per-pool state, in intern (first-block-seen) order.
struct PoolState {
  std::string name;
  std::uint64_t blocks = 0;
  std::uint64_t txs = 0;
  double ppe_sum = 0.0;
  std::uint64_t ppe_blocks = 0;
  std::uint64_t boosted = 0;       ///< txs with SPPE >= boost threshold
  std::uint64_t floor_blocks = 0;  ///< blocks with an unrescued sub-floor tx
  // Prequential self-dealing tallies (x, y of the §5.1 binomial test).
  std::uint64_t self_x = 0;  ///< c-blocks this pool mined
  std::uint64_t self_y = 0;  ///< all c-blocks for this pool's wallets
  double own_sppe_sum = 0.0;
  std::uint64_t own_sppe_count = 0;
  /// Reward wallets learned from this pool's coinbases so far.
  std::unordered_set<btc::Address> wallets;
};

class AuditAccumulators {
 public:
  AuditAccumulators(const btc::CoinbaseTagRegistry& registry,
                    AccumulatorOptions options = {});

  /// Applies one committed block. @p first_seen resolves observer
  /// arrival times for the pair-violation log (entries it cannot
  /// resolve are skipped, exactly like core::collect_seen_txs).
  /// @p seq is the stream sequence number the block arrived as; it
  /// becomes the report version and the checkpoint recovery cursor.
  void apply_block(const btc::Block& block, const core::FirstSeenFn& first_seen,
                   std::uint64_t seq);

  /// Applies one mempool snapshot observation.
  void apply_snapshot(const node::MempoolStat& snapshot, std::uint64_t seq);

  std::uint64_t last_seq() const noexcept { return last_seq_; }
  std::uint64_t blocks() const noexcept { return total_blocks_; }
  std::uint64_t txs() const noexcept { return total_txs_; }
  std::uint64_t snapshots() const noexcept { return snapshot_count_; }
  std::size_t pool_count() const noexcept { return pools_.size(); }
  const PoolState& pool(std::size_t i) const { return pools_[i]; }

  /// A sealed, self-consistent report of everything applied so far.
  /// `version` is last_seq(), so a restarted daemon that reaches the
  /// same stream position seals the same version. Pair-violation stats
  /// are exact (recomputed from the event log via the Fenwick counter,
  /// memoized per stream position).
  struct Report {
    std::uint64_t version = 0;  ///< last applied stream seq
    std::uint64_t blocks = 0;
    std::uint64_t txs = 0;
    std::uint64_t unidentified_blocks = 0;
    std::uint64_t snapshots = 0;
    core::PairViolationStats pairs;
    double mean_pending_txs = 0.0;
    std::uint64_t max_total_vsize = 0;
    std::uint64_t congestion_levels[4] = {0, 0, 0, 0};
    std::vector<core::NeutralityReport> neutrality;  ///< worst first
  };
  Report seal() const;

  /// Deterministic JSON rendering: fixed key order, %.17g doubles,
  /// minimal escaping — two equal Reports always produce equal bytes.
  static std::string to_json(const Report& report);

  // --- checkpoint support --------------------------------------------

  /// Serializes the full accumulator state (bit-exact doubles, wallets
  /// sorted by address so equal states encode to equal bytes).
  void encode(std::vector<std::uint8_t>& out) const;

  /// Restores state from encode()'s output. On failure returns false
  /// with *error set; the accumulator is left in an unspecified state
  /// and must be discarded.
  bool decode(const std::uint8_t* data, std::size_t size, std::string* error);

  const AccumulatorOptions& options() const noexcept { return options_; }
  std::uint64_t registry_fingerprint() const noexcept {
    return registry_->fingerprint();
  }

 private:
  std::uint32_t intern(const std::string& name);
  void learn_wallet(std::uint32_t pool, btc::Address address);

  const btc::CoinbaseTagRegistry* registry_;
  AccumulatorOptions options_;

  std::vector<PoolState> pools_;
  std::unordered_map<std::string, std::uint32_t> pool_ids_;
  /// Reverse wallet index: address -> pools that announced it (almost
  /// always one; kept as a vector for correctness when tags collide).
  std::unordered_map<btc::Address, std::vector<std::uint32_t>> wallet_owner_;

  std::uint64_t total_blocks_ = 0;
  std::uint64_t total_txs_ = 0;
  std::uint64_t unidentified_ = 0;
  std::uint64_t last_seq_ = 0;

  std::uint64_t snapshot_count_ = 0;
  std::uint64_t pending_tx_sum_ = 0;
  std::uint64_t max_total_vsize_ = 0;
  std::uint64_t congestion_levels_[4] = {0, 0, 0, 0};

  /// Event-sourced pair-violation log (checkpointed). Exact stats are
  /// recomputed at seal time by core::count_pair_violations and
  /// memoized by log length — an online 2D dominance structure would
  /// buy nothing while the log has to be durable anyway.
  std::vector<core::SeenTx> seen_txs_;
  mutable std::size_t pair_memo_size_ = ~std::size_t{0};
  mutable core::PairViolationStats pair_memo_;
};

}  // namespace cn::daemon

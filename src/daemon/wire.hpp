// Byte-level encode/decode helpers shared by the daemon's checkpoint
// writer and the accumulator state serializer.
//
// Everything is little-endian fixed-width; doubles travel as their raw
// IEEE-754 bit pattern so a restored accumulator resumes from *exactly*
// the partial sums the crashed process had — bit-for-bit, which the
// chaos harness's byte-identical-report invariant depends on.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace cn::daemon {

class ByteWriter {
 public:
  explicit ByteWriter(std::vector<std::uint8_t>& out) : out_(&out) {}

  void u8(std::uint8_t v) { out_->push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out_->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out_->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void str(const std::string& s) {
    u64(s.size());
    out_->insert(out_->end(), s.begin(), s.end());
  }

 private:
  std::vector<std::uint8_t>* out_;
};

/// Bounds-checked reader: every accessor returns false (leaving @p out
/// untouched) instead of reading past the end, so truncated checkpoints
/// surface as typed decode failures, never as OOB reads.
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::size_t remaining() const noexcept { return size_ - pos_; }

  bool u8(std::uint8_t& out) {
    if (remaining() < 1) return false;
    out = data_[pos_++];
    return true;
  }
  bool u32(std::uint32_t& out) {
    if (remaining() < 4) return false;
    out = 0;
    for (int i = 0; i < 4; ++i) out |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
    return true;
  }
  bool u64(std::uint64_t& out) {
    if (remaining() < 8) return false;
    out = 0;
    for (int i = 0; i < 8; ++i) out |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
    return true;
  }
  bool i64(std::int64_t& out) {
    std::uint64_t raw = 0;
    if (!u64(raw)) return false;
    out = static_cast<std::int64_t>(raw);
    return true;
  }
  bool f64(double& out) {
    std::uint64_t bits = 0;
    if (!u64(bits)) return false;
    std::memcpy(&out, &bits, sizeof out);
    return true;
  }
  bool str(std::string& out) {
    std::uint64_t n = 0;
    if (!u64(n) || remaining() < n) return false;
    out.assign(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return true;
  }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// FNV-1a over a byte range — the checkpoint payload checksum. Not
/// cryptographic; it only needs to catch torn/garbled writes.
inline std::uint64_t fnv1a(const std::uint8_t* data, std::size_t size) noexcept {
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace cn::daemon

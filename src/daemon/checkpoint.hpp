// Crash-safe accumulator checkpoints (the CNCP1 format).
//
// cnauditd's durability contract: at any instant the checkpoint file on
// disk is a complete, verifiable snapshot of the accumulators as of some
// stream sequence number — never a half-written one. Writes go through
// the classic atomic dance: serialize to `<path>.tmp`, fsync the file,
// rename over `<path>` (atomic on POSIX), fsync the directory. A crash
// before the rename leaves the previous checkpoint; a crash after leaves
// the new one; there is no third state.
//
// Layout (all little-endian):
//   "CNCP1\0"            6-byte magic
//   u16 version          format version (1)
//   u64 config_fpr       AccumulatorOptions::fingerprint() — restoring
//                        under different thresholds is a typed error
//   u64 registry_fpr     CoinbaseTagRegistry::fingerprint()
//   u64 payload_size
//   u64 payload_fnv1a    checksum of the payload bytes
//   payload              AuditAccumulators::encode()
//
// Load failures reuse io::LoadError verbatim (kBadMagic, kTruncatedFile,
// kSectionChecksum, ...) so daemon logs speak the same defect language
// as the dataset loaders.
#pragma once

#include <optional>
#include <string>

#include "daemon/accumulators.hpp"
#include "io/load_report.hpp"

namespace cn::daemon {

/// Atomically persists @p acc to @p path. Returns false with *error set
/// on any I/O failure (the previous checkpoint, if any, is untouched).
bool save_checkpoint(const AuditAccumulators& acc, const std::string& path,
                     std::string* error = nullptr);

struct CheckpointLoad {
  bool ok = false;
  std::optional<io::LoadError> error;  ///< set when !ok
  std::uint64_t seq = 0;               ///< acc.last_seq() after a good load
};

/// Restores @p acc from @p path. On any defect @p acc is reset-decoded
/// state and must be discarded by the caller; the typed error says what
/// was wrong (a missing file is kFileOpen — the normal cold-start case).
/// @p expected_config / @p expected_registry are the running daemon's
/// fingerprints; mismatches fail with kUnsupportedVersion rather than
/// resuming sums computed under different rules.
CheckpointLoad load_checkpoint(AuditAccumulators& acc, const std::string& path,
                               std::uint64_t expected_config,
                               std::uint64_t expected_registry);

}  // namespace cn::daemon

#include "daemon/http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "obs/registry.hpp"

namespace cn::daemon {

namespace {

ssize_t read_retry(int fd, char* buf, std::size_t n) {
  ssize_t r;
  do {
    r = ::read(fd, buf, n);
  } while (r < 0 && errno == EINTR);
  return r;
}

bool write_all(int fd, const char* buf, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::write(fd, buf + off, n - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(w);
  }
  return true;
}

}  // namespace

const char* http_status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 503: return "Service Unavailable";
    default: return "Internal Server Error";
  }
}

HttpServer::~HttpServer() { stop(); }

bool HttpServer::start(std::uint16_t port, Handler handler, std::string* error) {
  handler_ = std::move(handler);
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    if (error != nullptr) *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    if (error != nullptr) *error = std::string("bind: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::listen(listen_fd_, 16) < 0) {
    if (error != nullptr) *error = std::string("listen: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  running_.store(true);
  thread_ = std::thread([this] { serve_loop(); });
  return true;
}

void HttpServer::stop() {
  if (!running_.exchange(false)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  // shutdown() unblocks a pending accept(); close() alone may not.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
}

void HttpServer::serve_loop() {
  static const obs::Counter requests("daemon.http.requests");
  while (running_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener shut down
    }
    timeval tv{};
    tv.tv_sec = 5;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
    handle_connection(fd);
    ::close(fd);
    requests.add();
    served_.fetch_add(1);
  }
}

void HttpServer::handle_connection(int fd) {
  // Read until the end of the request head (no bodies: GET only).
  std::string head;
  char buf[1024];
  while (head.find("\r\n\r\n") == std::string::npos && head.size() < 16 * 1024) {
    const ssize_t r = read_retry(fd, buf, sizeof buf);
    if (r <= 0) break;
    head.append(buf, static_cast<std::size_t>(r));
  }

  HttpResponse resp;
  const std::size_t line_end = head.find("\r\n");
  std::size_t sp1 = std::string::npos, sp2 = std::string::npos;
  if (line_end != std::string::npos) {
    sp1 = head.find(' ');
    if (sp1 != std::string::npos && sp1 < line_end) sp2 = head.find(' ', sp1 + 1);
  }
  if (sp2 == std::string::npos || sp2 > line_end) {
    resp.status = 400;
    resp.content_type = "text/plain";
    resp.body = "malformed request line\n";
  } else {
    HttpRequest req;
    req.method = head.substr(0, sp1);
    req.target = head.substr(sp1 + 1, sp2 - sp1 - 1);
    resp = handler_(req);
  }

  char header[512];
  int n = std::snprintf(header, sizeof header,
                        "HTTP/1.1 %d %s\r\n"
                        "Content-Type: %s\r\n"
                        "Content-Length: %zu\r\n"
                        "Connection: close\r\n",
                        resp.status, http_status_text(resp.status),
                        resp.content_type.c_str(), resp.body.size());
  std::string out(header, static_cast<std::size_t>(n));
  for (const auto& [name, value] : resp.headers) {
    out += name;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  out += "\r\n";
  out += resp.body;
  write_all(fd, out.data(), out.size());
}

}  // namespace cn::daemon

// Bounded MPMC queue with blocking push — the daemon's backpressure
// primitive.
//
// The ingest thread pushes stream events; the apply thread pops them.
// When the apply side falls behind, push() blocks instead of buffering
// without bound: backpressure propagates to the source reads, memory
// stays bounded, and the queue depth becomes the overload signal the
// load-shedding logic watches.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>

namespace cn::daemon {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Blocks while the queue is full. Returns false when the queue was
  /// closed before the item could be enqueued.
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while the queue is empty. Returns nullopt once the queue is
  /// closed AND drained (close() lets queued items flush first).
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Wakes every waiter; pending items remain poppable.
  void close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  std::size_t capacity() const noexcept { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace cn::daemon

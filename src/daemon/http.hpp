// Minimal HTTP/1.1 serving loop for cnauditd's query surface.
//
// Deliberately tiny: one accept thread, one request per connection
// (Connection: close), GET-only targets, no TLS, no keep-alive. The
// daemon's reports are small JSON documents read by a scraper or a
// human with curl; a request router and a socket loop are all that is
// warranted. Robustness over features: read timeouts on every
// connection, EINTR-safe syscall wrappers, and a stop() that unblocks
// accept() so shutdown never hangs.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace cn::daemon {

struct HttpRequest {
  std::string method;  ///< "GET"
  std::string target;  ///< "/report", query string included verbatim
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  /// Extra headers (name, value) — staleness stamps travel here so the
  /// body bytes stay comparable across degraded/fresh serves.
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
};

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpServer() = default;
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds 127.0.0.1:@p port (0 = ephemeral) and spawns the accept
  /// loop. Returns false with *error set on bind failure.
  bool start(std::uint16_t port, Handler handler, std::string* error);

  /// Port actually bound (after start with port 0).
  std::uint16_t port() const noexcept { return port_; }

  /// Closes the listener and joins the accept thread. Idempotent.
  void stop();

  std::uint64_t requests_served() const noexcept { return served_.load(); }

 private:
  void serve_loop();
  void handle_connection(int fd);

  Handler handler_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> served_{0};
};

/// Standard reason phrase for the handful of statuses the daemon emits.
const char* http_status_text(int status);

}  // namespace cn::daemon

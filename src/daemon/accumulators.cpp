#include "daemon/accumulators.hpp"

#include <algorithm>
#include <cstdio>

#include "core/ppe.hpp"
#include "core/sppe.hpp"
#include "daemon/wire.hpp"
#include "stats/binomial.hpp"

namespace cn::daemon {

namespace {

// Flag bits for the serialized SeenTx log.
constexpr std::uint8_t kSeenCpfp = 1u << 0;
constexpr std::uint8_t kSeenCpfpParent = 1u << 1;

void json_escape(const std::string& s, std::string& out) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void json_double(double v, std::string& out) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

void json_u64(std::uint64_t v, std::string& out) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

}  // namespace

std::uint64_t AccumulatorOptions::fingerprint() const noexcept {
  std::vector<std::uint8_t> bytes;
  ByteWriter w(bytes);
  w.f64(neutrality.sppe_boost_threshold);
  w.u64(neutrality.min_blocks);
  w.f64(neutrality.alpha);
  w.i64(pair_epsilon);
  w.u8(pair_exclude_cpfp ? 1 : 0);
  w.u64(congestion_unit_vsize);
  return fnv1a(bytes.data(), bytes.size());
}

AuditAccumulators::AuditAccumulators(const btc::CoinbaseTagRegistry& registry,
                                     AccumulatorOptions options)
    : registry_(&registry), options_(options) {}

std::uint32_t AuditAccumulators::intern(const std::string& name) {
  const auto [it, inserted] =
      pool_ids_.try_emplace(name, static_cast<std::uint32_t>(pools_.size()));
  if (inserted) {
    pools_.emplace_back();
    pools_.back().name = name;
  }
  return it->second;
}

void AuditAccumulators::learn_wallet(std::uint32_t pool, btc::Address address) {
  if (!pools_[pool].wallets.insert(address).second) return;
  auto& owners = wallet_owner_[address];
  if (std::find(owners.begin(), owners.end(), pool) == owners.end()) {
    owners.push_back(pool);
  }
}

void AuditAccumulators::apply_block(const btc::Block& block,
                                    const core::FirstSeenFn& first_seen,
                                    std::uint64_t seq) {
  last_seq_ = seq;
  ++total_blocks_;
  total_txs_ += block.tx_count();

  // (1) Attribute and learn the coinbase wallet FIRST, so a pool's own
  // block can flag transactions paying its freshly-announced wallet —
  // the closest prequential analogue of the batch retrospective scan.
  const auto owner_name = registry_->identify(block.coinbase().tag);
  std::uint32_t owner = ~std::uint32_t{0};
  if (owner_name.has_value()) {
    owner = intern(*owner_name);
    learn_wallet(owner, block.coinbase().reward_address);
  } else {
    ++unidentified_;
  }

  // (2) Per-pool ordering norms — identical arithmetic to
  // core::report_for_pool, one block at a time.
  const std::vector<std::size_t> cpfp = block.cpfp_positions();
  std::unordered_set<btc::Txid> rescued_parents;
  for (std::size_t pos : cpfp) {
    for (const btc::TxInput& in : block.txs()[pos].inputs()) {
      if (!in.prev_txid.is_null()) rescued_parents.insert(in.prev_txid);
    }
  }
  const std::vector<double> sppe = core::block_sppe(block);
  if (owner != ~std::uint32_t{0}) {
    PoolState& p = pools_[owner];
    ++p.blocks;
    p.txs += block.tx_count();
    if (const auto ppe = core::block_ppe(block); ppe.has_value()) {
      p.ppe_sum += *ppe;
      ++p.ppe_blocks;
    }
    for (double s : sppe) {
      if (s >= options_.neutrality.sppe_boost_threshold) ++p.boosted;
    }
    for (const btc::Transaction& tx : block.txs()) {
      if (tx.fee_rate() < btc::FeeRate::from_sat_per_vb(1) &&
          !rescued_parents.contains(tx.id())) {
        ++p.floor_blocks;
        break;
      }
    }
  }

  // (3) Self-interest scan against every pool's currently-known wallets
  // (prequential: see the header contract). One pass over the block's
  // transactions collects, per pool, whether this block is a c-block
  // and the SPPE of own transactions inside own blocks.
  std::unordered_set<std::uint32_t> c_pools;
  for (std::size_t i = 0; i < block.txs().size(); ++i) {
    const btc::Transaction& tx = block.txs()[i];
    // The pools this transaction involves (spends from or pays to).
    std::unordered_set<std::uint32_t> involved;
    for (const btc::TxInput& in : tx.inputs()) {
      const auto it = wallet_owner_.find(in.owner);
      if (it != wallet_owner_.end()) involved.insert(it->second.begin(), it->second.end());
    }
    for (const btc::TxOutput& out : tx.outputs()) {
      const auto it = wallet_owner_.find(out.to);
      if (it != wallet_owner_.end()) involved.insert(it->second.begin(), it->second.end());
    }
    for (std::uint32_t pool : involved) {
      c_pools.insert(pool);
      if (pool == owner && i < sppe.size()) {
        pools_[pool].own_sppe_sum += sppe[i];
        ++pools_[pool].own_sppe_count;
      }
    }
  }
  for (std::uint32_t pool : c_pools) {
    ++pools_[pool].self_y;
    if (pool == owner) ++pools_[pool].self_x;
  }

  // (4) Append this block's observer-visible transactions to the
  // pair-violation event log (mirrors core::collect_seen_txs).
  std::unordered_set<std::size_t> parent_positions;
  if (!cpfp.empty()) {
    for (std::size_t i = 0; i < block.txs().size(); ++i) {
      if (rescued_parents.contains(block.txs()[i].id())) parent_positions.insert(i);
    }
  }
  std::size_t next_cpfp = 0;
  for (std::size_t i = 0; i < block.txs().size(); ++i) {
    const bool is_cpfp = next_cpfp < cpfp.size() && cpfp[next_cpfp] == i;
    if (is_cpfp) ++next_cpfp;
    const auto seen = first_seen ? first_seen(block.txs()[i].id()) : std::nullopt;
    if (!seen.has_value()) continue;
    core::SeenTx t;
    t.first_seen = *seen;
    t.fee_rate = block.txs()[i].fee_rate().sat_per_vbyte();
    t.block_height = block.height();
    t.cpfp = is_cpfp;
    t.cpfp_parent = parent_positions.contains(i);
    seen_txs_.push_back(t);
  }
}

void AuditAccumulators::apply_snapshot(const node::MempoolStat& snapshot,
                                       std::uint64_t seq) {
  last_seq_ = seq;
  ++snapshot_count_;
  pending_tx_sum_ += snapshot.tx_count;
  max_total_vsize_ = std::max(max_total_vsize_, snapshot.total_vsize);
  const auto level = node::congestion_level(snapshot.total_vsize,
                                            options_.congestion_unit_vsize);
  ++congestion_levels_[static_cast<int>(level)];
}

AuditAccumulators::Report AuditAccumulators::seal() const {
  Report report;
  report.version = last_seq_;
  report.blocks = total_blocks_;
  report.txs = total_txs_;
  report.unidentified_blocks = unidentified_;
  report.snapshots = snapshot_count_;
  if (snapshot_count_ > 0) {
    report.mean_pending_txs = static_cast<double>(pending_tx_sum_) /
                              static_cast<double>(snapshot_count_);
  }
  report.max_total_vsize = max_total_vsize_;
  for (int i = 0; i < 4; ++i) report.congestion_levels[i] = congestion_levels_[i];

  if (pair_memo_size_ != seen_txs_.size()) {
    pair_memo_ = core::count_pair_violations(seen_txs_, options_.pair_epsilon,
                                             options_.pair_exclude_cpfp);
    pair_memo_size_ = seen_txs_.size();
  }
  report.pairs = pair_memo_;

  const core::NeutralityOptions& n = options_.neutrality;
  for (const PoolState& p : pools_) {
    if (p.blocks < n.min_blocks || p.blocks == 0) continue;
    core::NeutralityReport r;
    r.pool = p.name;
    r.blocks = p.blocks;
    r.txs = p.txs;
    if (p.ppe_blocks > 0) {
      r.mean_ppe = p.ppe_sum / static_cast<double>(p.ppe_blocks);
    }
    if (p.txs > 0) {
      r.boosted_tx_rate =
          static_cast<double>(p.boosted) / static_cast<double>(p.txs);
    }
    r.below_floor_block_rate =
        static_cast<double>(p.floor_blocks) / static_cast<double>(p.blocks);
    if (p.self_y > 0 && total_blocks_ > 0) {
      const double theta0 = static_cast<double>(p.blocks) /
                            static_cast<double>(total_blocks_);
      r.self_dealing_p = stats::acceleration_p_value(p.self_x, p.self_y, theta0);
      if (p.own_sppe_count > 0) {
        r.self_dealing_sppe =
            p.own_sppe_sum / static_cast<double>(p.own_sppe_count);
      }
      r.self_dealing_flagged = r.self_dealing_p < n.alpha && p.self_y >= n.min_blocks;
    }
    r.score = core::neutrality_score(r, n);
    report.neutrality.push_back(std::move(r));
  }
  std::sort(report.neutrality.begin(), report.neutrality.end(),
            [](const core::NeutralityReport& a, const core::NeutralityReport& b) {
              if (a.score != b.score) return a.score < b.score;
              return a.pool < b.pool;
            });
  return report;
}

std::string AuditAccumulators::to_json(const Report& report) {
  std::string out;
  out.reserve(1024 + report.neutrality.size() * 256);
  out += "{\"schema\":\"cnauditd/v1\",\"version\":";
  json_u64(report.version, out);
  out += ",\"blocks\":";
  json_u64(report.blocks, out);
  out += ",\"txs\":";
  json_u64(report.txs, out);
  out += ",\"unidentified_blocks\":";
  json_u64(report.unidentified_blocks, out);
  out += ",\"snapshots\":";
  json_u64(report.snapshots, out);
  out += ",\"congestion\":{\"mean_pending_txs\":";
  json_double(report.mean_pending_txs, out);
  out += ",\"max_total_vsize\":";
  json_u64(report.max_total_vsize, out);
  out += ",\"levels\":[";
  for (int i = 0; i < 4; ++i) {
    if (i > 0) out += ',';
    json_u64(report.congestion_levels[i], out);
  }
  out += "]},\"pairs\":{\"predicted\":";
  json_u64(report.pairs.predicted_pairs, out);
  out += ",\"violations\":";
  json_u64(report.pairs.violations, out);
  out += ",\"fraction\":";
  json_double(report.pairs.fraction(), out);
  out += "},\"pools\":[";
  bool first = true;
  for (const core::NeutralityReport& r : report.neutrality) {
    if (!first) out += ',';
    first = false;
    out += "{\"pool\":\"";
    json_escape(r.pool, out);
    out += "\",\"blocks\":";
    json_u64(r.blocks, out);
    out += ",\"txs\":";
    json_u64(r.txs, out);
    out += ",\"mean_ppe\":";
    json_double(r.mean_ppe, out);
    out += ",\"boosted_tx_rate\":";
    json_double(r.boosted_tx_rate, out);
    out += ",\"self_dealing_p\":";
    json_double(r.self_dealing_p, out);
    out += ",\"self_dealing_sppe\":";
    json_double(r.self_dealing_sppe, out);
    out += ",\"self_dealing_flagged\":";
    out += r.self_dealing_flagged ? "true" : "false";
    out += ",\"below_floor_block_rate\":";
    json_double(r.below_floor_block_rate, out);
    out += ",\"score\":";
    json_double(r.score, out);
    out += '}';
  }
  out += "]}";
  return out;
}

void AuditAccumulators::encode(std::vector<std::uint8_t>& out) const {
  ByteWriter w(out);
  w.u64(last_seq_);
  w.u64(total_blocks_);
  w.u64(total_txs_);
  w.u64(unidentified_);
  w.u64(snapshot_count_);
  w.u64(pending_tx_sum_);
  w.u64(max_total_vsize_);
  for (int i = 0; i < 4; ++i) w.u64(congestion_levels_[i]);

  w.u64(pools_.size());
  for (const PoolState& p : pools_) {
    w.str(p.name);
    w.u64(p.blocks);
    w.u64(p.txs);
    w.f64(p.ppe_sum);
    w.u64(p.ppe_blocks);
    w.u64(p.boosted);
    w.u64(p.floor_blocks);
    w.u64(p.self_x);
    w.u64(p.self_y);
    w.f64(p.own_sppe_sum);
    w.u64(p.own_sppe_count);
    // Sorted so equal states serialize to equal bytes regardless of
    // hash-set iteration order.
    std::vector<btc::Address> wallets(p.wallets.begin(), p.wallets.end());
    std::sort(wallets.begin(), wallets.end());
    w.u64(wallets.size());
    for (const btc::Address& a : wallets) w.u64(a.value);
  }

  w.u64(seen_txs_.size());
  for (const core::SeenTx& t : seen_txs_) {
    w.i64(t.first_seen);
    w.f64(t.fee_rate);
    w.u64(t.block_height);
    std::uint8_t flags = 0;
    if (t.cpfp) flags |= kSeenCpfp;
    if (t.cpfp_parent) flags |= kSeenCpfpParent;
    w.u8(flags);
  }
}

bool AuditAccumulators::decode(const std::uint8_t* data, std::size_t size,
                               std::string* error) {
  const auto fail = [error](const char* what) {
    if (error != nullptr) *error = what;
    return false;
  };
  ByteReader r(data, size);

  pools_.clear();
  pool_ids_.clear();
  wallet_owner_.clear();
  seen_txs_.clear();
  pair_memo_size_ = ~std::size_t{0};

  if (!r.u64(last_seq_) || !r.u64(total_blocks_) || !r.u64(total_txs_) ||
      !r.u64(unidentified_) || !r.u64(snapshot_count_) ||
      !r.u64(pending_tx_sum_) || !r.u64(max_total_vsize_)) {
    return fail("truncated accumulator totals");
  }
  for (int i = 0; i < 4; ++i) {
    if (!r.u64(congestion_levels_[i])) return fail("truncated congestion bins");
  }

  std::uint64_t pool_count = 0;
  if (!r.u64(pool_count)) return fail("truncated pool count");
  // Sanity bound: each pool costs >= 11*8 bytes on the wire.
  if (pool_count > size / 88 + 1) return fail("implausible pool count");
  pools_.reserve(pool_count);
  for (std::uint64_t i = 0; i < pool_count; ++i) {
    PoolState p;
    std::uint64_t wallet_count = 0;
    if (!r.str(p.name) || !r.u64(p.blocks) || !r.u64(p.txs) ||
        !r.f64(p.ppe_sum) || !r.u64(p.ppe_blocks) || !r.u64(p.boosted) ||
        !r.u64(p.floor_blocks) || !r.u64(p.self_x) || !r.u64(p.self_y) ||
        !r.f64(p.own_sppe_sum) || !r.u64(p.own_sppe_count) ||
        !r.u64(wallet_count)) {
      return fail("truncated pool record");
    }
    if (wallet_count > r.remaining() / 8) return fail("implausible wallet count");
    const std::uint32_t id = static_cast<std::uint32_t>(pools_.size());
    if (!pool_ids_.try_emplace(p.name, id).second) {
      return fail("duplicate pool name");
    }
    for (std::uint64_t wi = 0; wi < wallet_count; ++wi) {
      std::uint64_t raw = 0;
      if (!r.u64(raw)) return fail("truncated wallet list");
      const btc::Address a{raw};
      p.wallets.insert(a);
      wallet_owner_[a].push_back(id);
    }
    pools_.push_back(std::move(p));
  }

  std::uint64_t seen_count = 0;
  if (!r.u64(seen_count)) return fail("truncated event-log length");
  if (seen_count > r.remaining() / 25) return fail("implausible event-log length");
  seen_txs_.reserve(seen_count);
  for (std::uint64_t i = 0; i < seen_count; ++i) {
    core::SeenTx t;
    std::uint8_t flags = 0;
    if (!r.i64(t.first_seen) || !r.f64(t.fee_rate) || !r.u64(t.block_height) ||
        !r.u8(flags)) {
      return fail("truncated event-log entry");
    }
    t.cpfp = (flags & kSeenCpfp) != 0;
    t.cpfp_parent = (flags & kSeenCpfpParent) != 0;
    seen_txs_.push_back(t);
  }
  if (r.remaining() != 0) return fail("trailing bytes after accumulator state");
  return true;
}

}  // namespace cn::daemon

#include "daemon/daemon.hpp"

#include <chrono>

#include "obs/export.hpp"
#include "obs/registry.hpp"
#include "testing/crash_points.hpp"

namespace cn::daemon {

namespace {

const obs::Counter& events_counter() {
  static const obs::Counter c("daemon.events_applied");
  return c;
}
const obs::Counter& checkpoint_counter() {
  static const obs::Counter c("daemon.checkpoints");
  return c;
}
const obs::Counter& shed_counter() {
  static const obs::Counter c("daemon.seals_shed");
  return c;
}
const obs::Gauge& queue_gauge() {
  static const obs::Gauge g("daemon.queue_depth");
  return g;
}

}  // namespace

AuditDaemon::AuditDaemon(io::StreamSource& source,
                         const btc::CoinbaseTagRegistry& registry,
                         core::FirstSeenFn first_seen, DaemonConfig config)
    : source_(source, config.retry),
      registry_(&registry),
      first_seen_(std::move(first_seen)),
      config_(config),
      accumulators_(registry, config.accumulators),
      queue_(config.queue_capacity) {}

AuditDaemon::~AuditDaemon() { stop(); }

bool AuditDaemon::recover(std::string* message) {
  if (config_.checkpoint_path.empty()) {
    if (message != nullptr) *message = "checkpointing disabled; cold start";
    return true;
  }
  CheckpointLoad load = load_checkpoint(
      accumulators_, config_.checkpoint_path,
      config_.accumulators.fingerprint(), registry_->fingerprint());
  if (!load.ok) {
    // Any unusable checkpoint (missing, torn, mismatched fingerprints)
    // means a cold start. Replay is deterministic, so starting over is
    // always correct — just slower. decode() may have left partial
    // state; rebuild from scratch.
    accumulators_ = AuditAccumulators(*registry_, config_.accumulators);
    const bool missing = load.error.has_value() &&
                         load.error->kind == io::LoadErrorKind::kFileOpen;
    if (!missing) checkpoint_rejected_.store(true);
    if (message != nullptr) {
      *message = missing ? "no checkpoint; cold start"
                         : "checkpoint rejected (" +
                               (load.error ? load.error->detail : std::string()) +
                               "); cold start";
    }
    return true;
  }
  if (!source_.seek(load.seq)) {
    // Feed shorter than the checkpoint — e.g. the daemon was pointed at
    // a truncated replay. Cold-start rather than serve sums the feed
    // cannot reproduce.
    accumulators_ = AuditAccumulators(*registry_, config_.accumulators);
    checkpoint_rejected_.store(true);
    source_.seek(0);
    if (message != nullptr) {
      *message = "checkpoint seq " + std::to_string(load.seq) +
                 " beyond feed end; cold start";
    }
    return true;
  }
  recovered_seq_.store(load.seq);
  acc_blocks_.store(accumulators_.blocks(), std::memory_order_relaxed);
  if (message != nullptr) {
    *message = "recovered from checkpoint at seq " + std::to_string(load.seq);
  }
  return true;
}

void AuditDaemon::apply_event(const io::StreamEvent& event) {
  testing::crash_point("daemon.apply");
  if (event.kind == io::StreamEvent::Kind::kBlock) {
    accumulators_.apply_block(*event.block, first_seen_, event.seq);
    blocks_applied_.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t blocks = accumulators_.blocks();
    acc_blocks_.store(blocks, std::memory_order_relaxed);
    // Both cadences key off the *accumulated* block count, which
    // survives restarts — so a recovered daemon checkpoints and seals
    // at the same stream positions the uninterrupted run would.
    if (config_.checkpoint_every_blocks > 0 &&
        blocks % config_.checkpoint_every_blocks == 0) {
      maybe_checkpoint();
    }
    if (config_.seal_every_blocks > 0 &&
        blocks % config_.seal_every_blocks == 0) {
      if (shedding()) {
        seals_shed_.fetch_add(1, std::memory_order_relaxed);
        shed_counter().add();
      } else {
        seal_and_cache();
      }
    }
  } else {
    accumulators_.apply_snapshot(event.snapshot, event.seq);
    snapshots_applied_.fetch_add(1, std::memory_order_relaxed);
  }
  events_applied_.fetch_add(1, std::memory_order_relaxed);
  events_counter().add();
}

void AuditDaemon::maybe_checkpoint() {
  if (config_.checkpoint_path.empty()) return;
  std::string error;
  if (!save_checkpoint(accumulators_, config_.checkpoint_path, &error)) {
    // A daemon that cannot persist progress must not pretend to be
    // durable: flag fatal so readiness fails and the operator notices.
    fatal_.store(true);
    return;
  }
  testing::crash_point("daemon.post_checkpoint");
  checkpoints_written_.fetch_add(1, std::memory_order_relaxed);
  checkpoint_counter().add();
}

void AuditDaemon::seal_and_cache() {
  const AuditAccumulators::Report report = accumulators_.seal();
  std::string json = AuditAccumulators::to_json(report);
  std::lock_guard<std::mutex> lock(report_mu_);
  cached_report_ = std::move(json);
  cached_version_ = report.version;
  cached_blocks_ = report.blocks;
  seals_.fetch_add(1, std::memory_order_relaxed);
}

io::StreamStatus AuditDaemon::run_to_end() {
  started_.store(true);
  int consecutive_failures = 0;
  io::StreamEvent event;
  io::StreamStatus status = io::StreamStatus::kEnd;
  while (!stop_requested_.load(std::memory_order_relaxed)) {
    status = source_.next(event, config_.read_deadline_ms);
    if (status == io::StreamStatus::kOk) {
      consecutive_failures = 0;
      apply_event(event);
      if (fatal_.load()) break;
      continue;
    }
    if (status == io::StreamStatus::kEnd) break;
    if (status == io::StreamStatus::kCorrupt) {
      fatal_.store(true);
      break;
    }
    // Retries already exhausted inside RetryingSource; count and keep
    // trying until the failure budget runs out.
    read_failures_.fetch_add(1, std::memory_order_relaxed);
    if (++consecutive_failures >= config_.max_consecutive_failures) {
      fatal_.store(true);
      break;
    }
  }
  ingest_done_.store(true);
  apply_done_.store(true);
  return status;
}

void AuditDaemon::start() {
  started_.store(true);
  ingest_thread_ = std::thread([this] { ingest_loop(); });
  apply_thread_ = std::thread([this] { apply_loop(); });
  watchdog_thread_ = std::thread([this] { watchdog_loop(); });
}

void AuditDaemon::ingest_loop() {
  int consecutive_failures = 0;
  io::StreamEvent event;
  while (!stop_requested_.load(std::memory_order_relaxed)) {
    const io::StreamStatus status = source_.next(event, config_.read_deadline_ms);
    if (status == io::StreamStatus::kOk) {
      consecutive_failures = 0;
      queue_gauge().set(static_cast<double>(queue_.size()));
      if (!queue_.push(event)) break;  // queue closed: shutting down
      continue;
    }
    if (status == io::StreamStatus::kEnd) break;
    if (status == io::StreamStatus::kCorrupt) {
      fatal_.store(true);
      break;
    }
    read_failures_.fetch_add(1, std::memory_order_relaxed);
    if (++consecutive_failures >= config_.max_consecutive_failures) {
      fatal_.store(true);
      break;
    }
  }
  ingest_done_.store(true);
  queue_.close();  // lets the apply side drain what is queued
}

void AuditDaemon::apply_loop() {
  while (true) {
    std::optional<io::StreamEvent> event = queue_.pop();
    if (!event.has_value()) break;  // closed and drained
    apply_event(*event);
    if (fatal_.load()) break;
  }
  apply_done_.store(true);
}

void AuditDaemon::watchdog_loop() {
  const auto interval =
      std::chrono::milliseconds(std::max(config_.watchdog_stall_ms / 4, 10));
  std::uint64_t last_progress = events_applied_.load();
  auto last_change = std::chrono::steady_clock::now();
  while (!stop_requested_.load(std::memory_order_relaxed) &&
         !(ingest_done_.load() && apply_done_.load())) {
    std::this_thread::sleep_for(interval);
    const std::uint64_t now_applied = events_applied_.load();
    const auto now = std::chrono::steady_clock::now();
    if (now_applied != last_progress) {
      last_progress = now_applied;
      last_change = now;
      stalled_.store(false);
      continue;
    }
    // No progress. That is only a stall when there is work to do:
    // events queued, or ingest still running (it may be blocked on a
    // dead source — exactly the case readiness must surface).
    const bool work_pending = queue_.size() > 0 || !ingest_done_.load();
    if (work_pending &&
        now - last_change > std::chrono::milliseconds(config_.watchdog_stall_ms)) {
      stalled_.store(true);
    }
  }
}

void AuditDaemon::join() {
  if (ingest_thread_.joinable()) ingest_thread_.join();
  if (apply_thread_.joinable()) apply_thread_.join();
  if (watchdog_thread_.joinable()) watchdog_thread_.join();
}

void AuditDaemon::stop() {
  stop_requested_.store(true);
  queue_.close();
  join();
}

bool AuditDaemon::ready() const noexcept {
  return started_.load() && !fatal_.load() && !stalled_.load() && !shedding();
}

bool AuditDaemon::shedding() const noexcept {
  return queue_.size() > config_.shed_watermark;
}

std::string AuditDaemon::seal_report_json() {
  seal_and_cache();
  std::lock_guard<std::mutex> lock(report_mu_);
  return cached_report_;
}

DaemonStats AuditDaemon::stats() const {
  DaemonStats s;
  s.events_applied = events_applied_.load();
  s.blocks_applied = blocks_applied_.load();
  s.snapshots_applied = snapshots_applied_.load();
  s.checkpoints_written = checkpoints_written_.load();
  s.seals = seals_.load();
  s.seals_shed = seals_shed_.load();
  s.degraded_reads = degraded_reads_.load();
  s.read_failures = read_failures_.load();
  s.recovered_seq = recovered_seq_.load();
  s.checkpoint_rejected = checkpoint_rejected_.load();
  return s;
}

HttpResponse AuditDaemon::handle(const HttpRequest& request) {
  HttpResponse resp;
  if (request.method != "GET") {
    resp.status = 400;
    resp.content_type = "text/plain";
    resp.body = "only GET is supported\n";
    return resp;
  }
  const std::string target = request.target.substr(0, request.target.find('?'));

  if (target == "/report") {
    std::lock_guard<std::mutex> lock(report_mu_);
    if (cached_report_.empty()) {
      resp.status = 503;
      resp.content_type = "text/plain";
      resp.body = "no report sealed yet\n";
      return resp;
    }
    resp.body = cached_report_;
    resp.headers.emplace_back("X-CN-Report-Version",
                              std::to_string(cached_version_));
    const std::uint64_t applied_blocks =
        acc_blocks_.load(std::memory_order_relaxed);
    const std::uint64_t staleness =
        applied_blocks > cached_blocks_ ? applied_blocks - cached_blocks_ : 0;
    if (shedding() || staleness > config_.seal_every_blocks) {
      degraded_reads_.fetch_add(1, std::memory_order_relaxed);
      resp.headers.emplace_back("X-CN-Degraded", "true");
    }
    resp.headers.emplace_back("X-CN-Staleness-Blocks", std::to_string(staleness));
    return resp;
  }
  if (target == "/healthz") {
    resp.content_type = "text/plain";
    if (healthy()) {
      resp.body = "ok\n";
    } else {
      resp.status = 503;
      resp.body = "fatal error; see logs\n";
    }
    return resp;
  }
  if (target == "/readyz") {
    resp.content_type = "text/plain";
    if (ready()) {
      resp.body = "ready\n";
    } else {
      resp.status = 503;
      resp.body = std::string("not ready: ") +
                  (!started_.load()      ? "not started"
                   : fatal_.load()       ? "fatal error"
                   : stalled_.load()     ? "ingest stalled"
                   : shedding()          ? "overloaded (shedding)"
                                         : "unknown") +
                  "\n";
    }
    return resp;
  }
  if (target == "/metrics") {
    resp.body = obs::metrics_json_string();
    return resp;
  }
  resp.status = 404;
  resp.content_type = "text/plain";
  resp.body = "unknown target\n";
  return resp;
}

}  // namespace cn::daemon

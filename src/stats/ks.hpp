// Two-sample Kolmogorov-Smirnov test.
//
// Figure 10 of the paper argues visually that fee-rate distributions of
// transactions committed by different pools "show no major differences".
// The KS test turns that into a statistic: the max CDF distance D and an
// asymptotic p-value for H0 "both samples draw from one distribution".
#pragma once

#include <span>

namespace cn::stats {

struct KsResult {
  double statistic = 0.0;  ///< sup |F1(x) - F2(x)|
  double p_value = 1.0;    ///< asymptotic (Kolmogorov distribution)
  std::size_t n1 = 0;
  std::size_t n2 = 0;
};

/// Two-sample KS test. Requires both samples non-empty; inputs need not
/// be sorted. The p-value uses the Kolmogorov asymptotic series with the
/// usual effective-size correction, accurate for n1, n2 >~ 25.
KsResult ks_two_sample(std::span<const double> a, std::span<const double> b);

/// Survival function of the Kolmogorov distribution:
/// Q(lambda) = 2 * sum_{k>=1} (-1)^{k-1} exp(-2 k^2 lambda^2).
double kolmogorov_sf(double lambda) noexcept;

}  // namespace cn::stats

// Binomial distribution in log space, plus the paper's one-sided exact
// binomial tests (§5.1):
//
//   acceleration:  H0: theta = theta0  vs  H1: theta > theta0,
//                  p = Pr[B >= x],  B ~ Binomial(y, theta0)
//   deceleration:  H1: theta < theta0,  p = Pr[B <= x]
//
// where y = number of blocks containing at least one c-transaction and
// x = how many of those were mined by the pool under test.
#pragma once

#include <cstdint>

namespace cn::stats {

/// log Pr[B = k] for B ~ Binomial(n, p); p in [0, 1].
double binomial_log_pmf(std::uint64_t k, std::uint64_t n, double p) noexcept;

/// Pr[B = k].
double binomial_pmf(std::uint64_t k, std::uint64_t n, double p) noexcept;

/// Pr[B <= k] via log-space summation over the smaller tail.
double binomial_cdf(std::uint64_t k, std::uint64_t n, double p) noexcept;

/// Pr[B >= k].
double binomial_sf(std::uint64_t k, std::uint64_t n, double p) noexcept;

/// One-sided exact test p-values as defined in the paper.
double acceleration_p_value(std::uint64_t x, std::uint64_t y, double theta0) noexcept;
double deceleration_p_value(std::uint64_t x, std::uint64_t y, double theta0) noexcept;

/// Normal approximation of the acceleration p-value (paper §5.1.3), with
/// the usual 1/2 continuity correction:
///   p ≈ Phi((y*theta0 - x + 0.5) / sqrt(y*theta0*(1-theta0))).
double acceleration_p_value_normal(std::uint64_t x, std::uint64_t y,
                                   double theta0) noexcept;
double deceleration_p_value_normal(std::uint64_t x, std::uint64_t y,
                                   double theta0) noexcept;

}  // namespace cn::stats

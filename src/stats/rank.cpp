#include "stats/rank.hpp"

#include <algorithm>
#include <numeric>

#include "util/assert.hpp"

namespace cn::stats {

double percentile_rank(std::size_t index, std::size_t n) noexcept {
  CN_ASSERT(n >= 1);
  CN_ASSERT(index < n);
  if (n == 1) return 0.0;
  return static_cast<double>(index) * 100.0 / static_cast<double>(n - 1);
}

std::vector<std::size_t> descending_order(std::span<const double> keys) {
  std::vector<std::size_t> order(keys.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return keys[a] > keys[b]; });
  return order;
}

std::vector<std::size_t> predicted_positions(std::span<const double> keys) {
  const std::vector<std::size_t> order = descending_order(keys);
  std::vector<std::size_t> position(keys.size());
  for (std::size_t rank = 0; rank < order.size(); ++rank) position[order[rank]] = rank;
  return position;
}

}  // namespace cn::stats

// Descriptive statistics used throughout the audit toolkit: Kahan-summed
// means, standard deviations, quantiles, and the five-number summaries the
// paper reports (e.g. Table 5's mean/std/min/percentiles/max rows).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace cn::stats {

/// Kahan (compensated) summation; exact enough for millions of terms.
double kahan_sum(std::span<const double> values) noexcept;

/// Arithmetic mean; returns 0 for empty input.
double mean(std::span<const double> values) noexcept;

/// Sample standard deviation (n-1 denominator); 0 for fewer than 2 values.
double sample_stddev(std::span<const double> values) noexcept;

/// Population standard deviation (n denominator); 0 for empty input.
double population_stddev(std::span<const double> values) noexcept;

/// Quantile with linear interpolation between closest ranks (type 7,
/// the numpy/R default). @p q in [0, 1]. Requires non-empty input;
/// the input need not be sorted.
double quantile(std::span<const double> values, double q);

/// Quantile on data the caller has already sorted ascending.
double quantile_sorted(std::span<const double> sorted, double q) noexcept;

double median(std::span<const double> values);

/// Five-number-plus summary mirroring the paper's table rows.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  // sample stddev
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double max = 0.0;
};

/// Computes a Summary; returns an all-zero summary for empty input.
Summary summarize(std::span<const double> values);

}  // namespace cn::stats

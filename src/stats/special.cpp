#include "stats/special.hpp"

#include <cmath>
#include <limits>

#include "util/assert.hpp"

namespace cn::stats {

double log_gamma(double x) noexcept {
  CN_ASSERT(x > 0.0);
#if defined(__GLIBC__) || defined(__APPLE__)
  // lgamma() writes the global signgam, so concurrent audit tasks race on
  // it; the reentrant variant reports the sign through a local instead
  // (always +1 here since x > 0).
  int sign = 0;
  return ::lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}

double log_choose(std::uint64_t n, std::uint64_t k) noexcept {
  CN_ASSERT(k <= n);
  if (k == 0 || k == n) return 0.0;
  return log_gamma(static_cast<double>(n) + 1.0) -
         log_gamma(static_cast<double>(k) + 1.0) -
         log_gamma(static_cast<double>(n - k) + 1.0);
}

namespace {

// Series representation of P(a, x), valid (fast-converging) for x < a + 1.
double gamma_p_series(double a, double x) noexcept {
  const double log_prefactor = a * std::log(x) - x - log_gamma(a);
  double term = 1.0 / a;
  double sum = term;
  double ap = a;
  for (int i = 0; i < 1000; ++i) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::fabs(term) < std::fabs(sum) * 1e-16) break;
  }
  return std::exp(log_prefactor) * sum;
}

// Continued-fraction representation of Q(a, x) (Lentz), valid for x >= a + 1.
double gamma_q_cf(double a, double x) noexcept {
  const double log_prefactor = a * std::log(x) - x - log_gamma(a);
  constexpr double tiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / tiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 1000; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < tiny) d = tiny;
    c = b + an / c;
    if (std::fabs(c) < tiny) c = tiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < 1e-16) break;
  }
  return std::exp(log_prefactor) * h;
}

}  // namespace

double reg_gamma_p(double a, double x) noexcept {
  CN_ASSERT(a > 0.0 && x >= 0.0);
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return gamma_p_series(a, x);
  return 1.0 - gamma_q_cf(a, x);
}

double reg_gamma_q(double a, double x) noexcept {
  CN_ASSERT(a > 0.0 && x >= 0.0);
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - gamma_p_series(a, x);
  return gamma_q_cf(a, x);
}

double chi_square_sf(double x, unsigned dof) noexcept {
  CN_ASSERT(dof > 0);
  if (x <= 0.0) return 1.0;
  return reg_gamma_q(static_cast<double>(dof) / 2.0, x / 2.0);
}

double log_add_exp(double a, double b) noexcept {
  if (a == -std::numeric_limits<double>::infinity()) return b;
  if (b == -std::numeric_limits<double>::infinity()) return a;
  const double m = a > b ? a : b;
  return m + std::log1p(std::exp(-std::fabs(a - b)));
}

double log1m_exp(double x) noexcept {
  CN_ASSERT(x <= 0.0);
  if (x == 0.0) return -std::numeric_limits<double>::infinity();
  // Mächler's recommendation: use log(-expm1(x)) for x > -ln 2, else log1p(-exp(x)).
  constexpr double ln2 = 0.6931471805599453;
  if (x > -ln2) return std::log(-std::expm1(x));
  return std::log1p(-std::exp(x));
}

}  // namespace cn::stats

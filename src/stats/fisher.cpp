#include "stats/fisher.hpp"

#include <cmath>

#include "stats/special.hpp"
#include "util/assert.hpp"

namespace cn::stats {

double fisher_combine(std::span<const double> p_values) noexcept {
  CN_ASSERT(!p_values.empty());
  double statistic = 0.0;
  for (double p : p_values) {
    CN_ASSERT(p >= 0.0 && p <= 1.0);
    const double clamped = p < kMinP ? kMinP : p;
    statistic += -2.0 * std::log(clamped);
  }
  const unsigned dof = static_cast<unsigned>(2 * p_values.size());
  return chi_square_sf(statistic, dof);
}

}  // namespace cn::stats

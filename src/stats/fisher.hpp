// Fisher's method for combining p-values from independent tests
// (paper §5.1.3: combining per-window binomial tests when hash rates
// drift over long horizons).
#pragma once

#include <span>

namespace cn::stats {

/// Combines independent p-values via Fisher's method:
///   X = -2 * sum(log p_i)  ~  chi-square with 2k dof under H0.
/// p-values of exactly 0 are clamped to kMinP to keep the statistic finite.
/// Requires a non-empty input with all p in [0, 1].
double fisher_combine(std::span<const double> p_values) noexcept;

/// Smallest p-value Fisher combination will accept without clamping.
inline constexpr double kMinP = 1e-300;

}  // namespace cn::stats

// Fixed-bin and log-spaced histograms for congestion and fee-rate
// distributions.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace cn::stats {

/// Linear-bin histogram over [lo, hi); samples outside the range land in
/// saturating under/overflow bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  void add_all(std::span<const double> xs) noexcept;

  std::size_t bin_count() const noexcept { return counts_.size(); }
  std::uint64_t underflow() const noexcept { return underflow_; }
  std::uint64_t overflow() const noexcept { return overflow_; }
  std::uint64_t count(std::size_t bin) const;
  std::uint64_t total() const noexcept { return total_; }

  /// Inclusive-lower bound of a bin.
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;

  /// Fraction of all samples (including under/overflow) in the bin.
  double fraction(std::size_t bin) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

/// Histogram with logarithmically spaced bin edges over [lo, hi);
/// appropriate for fee-rates spanning many orders of magnitude.
class LogHistogram {
 public:
  /// Requires 0 < lo < hi.
  LogHistogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;

  std::size_t bin_count() const noexcept { return counts_.size(); }
  std::uint64_t count(std::size_t bin) const;
  std::uint64_t total() const noexcept { return total_; }
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;

 private:
  double log_lo_;
  double log_hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace cn::stats

#include "stats/bootstrap.hpp"

#include <algorithm>
#include <vector>

#include "stats/descriptive.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace cn::stats {

BootstrapCi bootstrap_ci(std::span<const double> sample, const Statistic& statistic,
                         double level, std::size_t resamples, std::uint64_t seed) {
  CN_ASSERT(!sample.empty());
  CN_ASSERT(level > 0.0 && level < 1.0);
  CN_ASSERT(resamples >= 10);

  BootstrapCi out;
  out.point = statistic(sample);
  out.resamples = resamples;

  Rng rng(seed);
  std::vector<double> draws;
  draws.reserve(resamples);
  std::vector<double> resample(sample.size());
  for (std::size_t r = 0; r < resamples; ++r) {
    for (double& x : resample) {
      x = sample[rng.uniform_below(sample.size())];
    }
    draws.push_back(statistic(resample));
  }
  std::sort(draws.begin(), draws.end());
  const double alpha = (1.0 - level) / 2.0;
  out.lo = quantile_sorted(draws, alpha);
  out.hi = quantile_sorted(draws, 1.0 - alpha);
  return out;
}

BootstrapCi bootstrap_mean_ci(std::span<const double> sample, double level,
                              std::size_t resamples, std::uint64_t seed) {
  return bootstrap_ci(sample, [](std::span<const double> s) { return mean(s); },
                      level, resamples, seed);
}

}  // namespace cn::stats

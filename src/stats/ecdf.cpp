#include "stats/ecdf.hpp"

#include <algorithm>

#include "stats/descriptive.hpp"
#include "util/assert.hpp"

namespace cn::stats {

Ecdf::Ecdf(std::span<const double> samples)
    : sorted_(samples.begin(), samples.end()) {
  std::sort(sorted_.begin(), sorted_.end());
}

double Ecdf::evaluate(double x) const noexcept {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Ecdf::quantile(double q) const {
  CN_ASSERT(!sorted_.empty());
  return quantile_sorted(std::span<const double>(sorted_), q);
}

double Ecdf::min() const {
  CN_ASSERT(!sorted_.empty());
  return sorted_.front();
}

double Ecdf::max() const {
  CN_ASSERT(!sorted_.empty());
  return sorted_.back();
}

std::vector<Ecdf::Point> Ecdf::points(std::size_t max_points) const {
  std::vector<Point> out;
  if (sorted_.empty() || max_points == 0) return out;
  const std::size_t n = sorted_.size();
  const std::size_t step = n <= max_points ? 1 : n / max_points;
  out.reserve(n / step + 2);
  for (std::size_t i = 0; i < n; i += step) {
    out.push_back({sorted_[i], static_cast<double>(i + 1) / static_cast<double>(n)});
  }
  if (out.back().x != sorted_.back() || out.back().f != 1.0) {
    out.push_back({sorted_.back(), 1.0});
  }
  return out;
}

}  // namespace cn::stats

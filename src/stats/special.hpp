// Special functions needed by the hypothesis tests: log-gamma based
// binomial coefficients, regularized incomplete gamma (for chi-square
// survival in Fisher's method), and the error function wrappers used by
// the normal CDF. Everything works in log space so tests stay accurate
// for the large counts that arise when auditing a year of blocks.
#pragma once

#include <cstdint>

namespace cn::stats {

/// log(n choose k); requires 0 <= k <= n.
double log_choose(std::uint64_t n, std::uint64_t k) noexcept;

/// log(Gamma(x)) for x > 0 (thin wrapper over std::lgamma, asserted finite).
double log_gamma(double x) noexcept;

/// Regularized lower incomplete gamma P(a, x) for a > 0, x >= 0.
/// Series expansion for x < a + 1, continued fraction otherwise.
double reg_gamma_p(double a, double x) noexcept;

/// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
double reg_gamma_q(double a, double x) noexcept;

/// Survival function of the chi-square distribution with @p dof degrees of
/// freedom evaluated at @p x: Pr[X >= x].
double chi_square_sf(double x, unsigned dof) noexcept;

/// log(exp(a) + exp(b)) without overflow.
double log_add_exp(double a, double b) noexcept;

/// log(1 - exp(x)) for x <= 0, accurate near both ends.
double log1m_exp(double x) noexcept;

}  // namespace cn::stats

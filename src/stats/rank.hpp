// Position and percentile-rank helpers underlying PPE and SPPE.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace cn::stats {

/// Percentile rank of position @p index within a block of @p n items:
/// 0 for the first position, 100 for the last. Requires n >= 1 and
/// index < n. For n == 1 the rank is 0.
double percentile_rank(std::size_t index, std::size_t n) noexcept;

/// Returns a permutation `order` such that `order[rank]` is the index of
/// the rank-th item when sorting by @p keys descending. Ties keep the
/// original (stable) order, matching a deterministic template builder.
std::vector<std::size_t> descending_order(std::span<const double> keys);

/// Inverse of descending_order: position[i] = predicted rank of item i.
std::vector<std::size_t> predicted_positions(std::span<const double> keys);

}  // namespace cn::stats

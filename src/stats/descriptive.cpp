#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace cn::stats {

double kahan_sum(std::span<const double> values) noexcept {
  double sum = 0.0;
  double compensation = 0.0;
  for (double v : values) {
    const double y = v - compensation;
    const double t = sum + y;
    compensation = (t - sum) - y;
    sum = t;
  }
  return sum;
}

double mean(std::span<const double> values) noexcept {
  if (values.empty()) return 0.0;
  return kahan_sum(values) / static_cast<double>(values.size());
}

namespace {

double sum_sq_dev(std::span<const double> values, double m) noexcept {
  double sum = 0.0;
  double compensation = 0.0;
  for (double v : values) {
    const double d = (v - m) * (v - m);
    const double y = d - compensation;
    const double t = sum + y;
    compensation = (t - sum) - y;
    sum = t;
  }
  return sum;
}

}  // namespace

double sample_stddev(std::span<const double> values) noexcept {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  return std::sqrt(sum_sq_dev(values, m) / static_cast<double>(values.size() - 1));
}

double population_stddev(std::span<const double> values) noexcept {
  if (values.empty()) return 0.0;
  const double m = mean(values);
  return std::sqrt(sum_sq_dev(values, m) / static_cast<double>(values.size()));
}

double quantile_sorted(std::span<const double> sorted, double q) noexcept {
  CN_ASSERT(!sorted.empty());
  CN_ASSERT(q >= 0.0 && q <= 1.0);
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

double quantile(std::span<const double> values, double q) {
  CN_ASSERT(!values.empty());
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  return quantile_sorted(sorted, q);
}

double median(std::span<const double> values) { return quantile(values, 0.5); }

Summary summarize(std::span<const double> values) {
  Summary s;
  if (values.empty()) return s;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  s.count = sorted.size();
  s.mean = mean(values);
  s.stddev = sample_stddev(values);
  s.min = sorted.front();
  s.p25 = quantile_sorted(sorted, 0.25);
  s.median = quantile_sorted(sorted, 0.50);
  s.p75 = quantile_sorted(sorted, 0.75);
  s.max = sorted.back();
  return s;
}

}  // namespace cn::stats

#include "stats/ks.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/assert.hpp"

namespace cn::stats {

double kolmogorov_sf(double lambda) noexcept {
  if (lambda <= 0.0) return 1.0;
  double sum = 0.0;
  double sign = 1.0;
  for (int k = 1; k <= 100; ++k) {
    const double term = std::exp(-2.0 * k * k * lambda * lambda);
    sum += sign * term;
    if (term < 1e-16) break;
    sign = -sign;
  }
  const double q = 2.0 * sum;
  return std::clamp(q, 0.0, 1.0);
}

KsResult ks_two_sample(std::span<const double> a, std::span<const double> b) {
  CN_ASSERT(!a.empty() && !b.empty());
  std::vector<double> sa(a.begin(), a.end());
  std::vector<double> sb(b.begin(), b.end());
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());

  KsResult r;
  r.n1 = sa.size();
  r.n2 = sb.size();

  // Merge-walk both sorted samples tracking the CDF gap.
  std::size_t i = 0, j = 0;
  double d = 0.0;
  while (i < sa.size() && j < sb.size()) {
    const double x = std::min(sa[i], sb[j]);
    while (i < sa.size() && sa[i] <= x) ++i;
    while (j < sb.size() && sb[j] <= x) ++j;
    const double f1 = static_cast<double>(i) / static_cast<double>(sa.size());
    const double f2 = static_cast<double>(j) / static_cast<double>(sb.size());
    d = std::max(d, std::fabs(f1 - f2));
  }
  r.statistic = d;

  const double n1 = static_cast<double>(r.n1);
  const double n2 = static_cast<double>(r.n2);
  const double ne = n1 * n2 / (n1 + n2);
  // Stephens' effective-size refinement.
  const double lambda = (std::sqrt(ne) + 0.12 + 0.11 / std::sqrt(ne)) * d;
  r.p_value = kolmogorov_sf(lambda);
  return r;
}

}  // namespace cn::stats

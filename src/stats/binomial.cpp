#include "stats/binomial.hpp"

#include <cmath>
#include <limits>

#include "stats/normal.hpp"
#include "stats/special.hpp"
#include "util/assert.hpp"

namespace cn::stats {

double binomial_log_pmf(std::uint64_t k, std::uint64_t n, double p) noexcept {
  CN_ASSERT(p >= 0.0 && p <= 1.0);
  constexpr double neg_inf = -std::numeric_limits<double>::infinity();
  if (k > n) return neg_inf;
  if (p == 0.0) return k == 0 ? 0.0 : neg_inf;
  if (p == 1.0) return k == n ? 0.0 : neg_inf;
  return log_choose(n, k) + static_cast<double>(k) * std::log(p) +
         static_cast<double>(n - k) * std::log1p(-p);
}

double binomial_pmf(std::uint64_t k, std::uint64_t n, double p) noexcept {
  return std::exp(binomial_log_pmf(k, n, p));
}

namespace {

// Sums Pr[B = a] + ... + Pr[B = b] in log space. The per-term recurrence
//   pmf(k+1) = pmf(k) * (n-k)/(k+1) * p/(1-p)
// avoids n calls to lgamma.
double tail_sum(std::uint64_t a, std::uint64_t b, std::uint64_t n, double p) noexcept {
  if (a > b) return 0.0;
  double log_term = binomial_log_pmf(a, n, p);
  double log_sum = log_term;
  const double log_odds = std::log(p) - std::log1p(-p);
  for (std::uint64_t k = a; k < b; ++k) {
    log_term += std::log(static_cast<double>(n - k)) -
                std::log(static_cast<double>(k + 1)) + log_odds;
    log_sum = log_add_exp(log_sum, log_term);
  }
  return std::exp(log_sum);
}

}  // namespace

double binomial_cdf(std::uint64_t k, std::uint64_t n, double p) noexcept {
  CN_ASSERT(p >= 0.0 && p <= 1.0);
  if (k >= n) return 1.0;
  if (p == 0.0) return 1.0;
  if (p == 1.0) return 0.0;  // k < n here
  // Sum whichever tail is smaller for accuracy and speed.
  const double mean = static_cast<double>(n) * p;
  if (static_cast<double>(k) <= mean) return tail_sum(0, k, n, p);
  const double upper = tail_sum(k + 1, n, n, p);
  return upper >= 1.0 ? 0.0 : 1.0 - upper;
}

double binomial_sf(std::uint64_t k, std::uint64_t n, double p) noexcept {
  CN_ASSERT(p >= 0.0 && p <= 1.0);
  if (k == 0) return 1.0;
  if (k > n) return 0.0;
  if (p == 0.0) return 0.0;  // k >= 1
  if (p == 1.0) return 1.0;  // k <= n
  const double mean = static_cast<double>(n) * p;
  if (static_cast<double>(k) > mean) return tail_sum(k, n, n, p);
  const double lower = tail_sum(0, k - 1, n, p);
  return lower >= 1.0 ? 0.0 : 1.0 - lower;
}

double acceleration_p_value(std::uint64_t x, std::uint64_t y, double theta0) noexcept {
  CN_ASSERT(x <= y);
  return binomial_sf(x, y, theta0);
}

double deceleration_p_value(std::uint64_t x, std::uint64_t y, double theta0) noexcept {
  CN_ASSERT(x <= y);
  return binomial_cdf(x, y, theta0);
}

double acceleration_p_value_normal(std::uint64_t x, std::uint64_t y,
                                   double theta0) noexcept {
  CN_ASSERT(x <= y);
  CN_ASSERT(theta0 > 0.0 && theta0 < 1.0);
  const double ny = static_cast<double>(y);
  const double mu = ny * theta0;
  const double sigma = std::sqrt(ny * theta0 * (1.0 - theta0));
  // Pr[B >= x] ≈ Phi((mu - x + 0.5) / sigma)
  return normal_cdf((mu - static_cast<double>(x) + 0.5) / sigma);
}

double deceleration_p_value_normal(std::uint64_t x, std::uint64_t y,
                                   double theta0) noexcept {
  CN_ASSERT(x <= y);
  CN_ASSERT(theta0 > 0.0 && theta0 < 1.0);
  const double ny = static_cast<double>(y);
  const double mu = ny * theta0;
  const double sigma = std::sqrt(ny * theta0 * (1.0 - theta0));
  // Pr[B <= x] ≈ Phi((x + 0.5 - mu) / sigma)
  return normal_cdf((static_cast<double>(x) + 0.5 - mu) / sigma);
}

}  // namespace cn::stats

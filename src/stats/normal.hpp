// Standard normal distribution helpers for the large-sample approximation
// of the binomial tests (paper §5.1.3).
#pragma once

namespace cn::stats {

/// Standard normal PDF.
double normal_pdf(double z) noexcept;

/// Standard normal CDF Phi(z) via erfc (accurate in both tails).
double normal_cdf(double z) noexcept;

/// Standard normal survival function 1 - Phi(z).
double normal_sf(double z) noexcept;

/// Inverse standard normal CDF (Acklam's rational approximation refined by
/// one Newton step); p in (0, 1).
double normal_quantile(double p) noexcept;

}  // namespace cn::stats

// Nonparametric bootstrap confidence intervals.
//
// The paper reports point estimates (SPPE means, violation fractions)
// without uncertainty; with a seeded resampler we can attach percentile
// confidence intervals to any statistic of an i.i.d.-ish sample.
#pragma once

#include <cstdint>
#include <functional>
#include <span>

namespace cn::stats {

struct BootstrapCi {
  double point = 0.0;  ///< statistic on the original sample
  double lo = 0.0;     ///< lower percentile bound
  double hi = 0.0;     ///< upper percentile bound
  std::size_t resamples = 0;
};

/// Statistic evaluated on a (resampled) data set.
using Statistic = std::function<double(std::span<const double>)>;

/// Percentile-method bootstrap CI at confidence @p level (e.g. 0.95) with
/// @p resamples draws. Deterministic given @p seed. Requires a non-empty
/// sample and level in (0, 1).
BootstrapCi bootstrap_ci(std::span<const double> sample, const Statistic& statistic,
                         double level = 0.95, std::size_t resamples = 1000,
                         std::uint64_t seed = 1);

/// Convenience: CI for the mean.
BootstrapCi bootstrap_mean_ci(std::span<const double> sample, double level = 0.95,
                              std::size_t resamples = 1000, std::uint64_t seed = 1);

}  // namespace cn::stats

// Empirical CDFs. Every figure in the paper is a CDF; this type builds
// them once and supports evaluation, inverse evaluation (quantiles), and
// export as (x, F(x)) pairs for the CSV emitters.
#pragma once

#include <span>
#include <vector>

namespace cn::stats {

class Ecdf {
 public:
  Ecdf() = default;

  /// Builds from (possibly unsorted) samples. Empty input yields an empty
  /// ECDF for which evaluate() returns 0.
  explicit Ecdf(std::span<const double> samples);

  bool empty() const noexcept { return sorted_.empty(); }
  std::size_t size() const noexcept { return sorted_.size(); }

  /// F(x) = fraction of samples <= x.
  double evaluate(double x) const noexcept;

  /// Inverse CDF (quantile) with linear interpolation; q in [0,1].
  /// Requires a non-empty ECDF.
  double quantile(double q) const;

  double min() const;
  double max() const;

  /// Fraction of samples strictly greater than x.
  double survival(double x) const noexcept { return 1.0 - evaluate(x); }

  /// Downsamples to at most @p max_points (x, F(x)) pairs, always keeping
  /// the extremes; handy for plotting/export.
  struct Point {
    double x;
    double f;
  };
  std::vector<Point> points(std::size_t max_points = 512) const;

  /// Access to the sorted sample vector (for tests and reuse).
  const std::vector<double>& sorted_samples() const noexcept { return sorted_; }

 private:
  std::vector<double> sorted_;
};

}  // namespace cn::stats

#include "stats/histogram.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace cn::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  CN_ASSERT(lo < hi);
  CN_ASSERT(bins > 0);
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto bin = static_cast<std::size_t>((x - lo_) / width);
  if (bin >= counts_.size()) bin = counts_.size() - 1;  // float edge
  ++counts_[bin];
}

void Histogram::add_all(std::span<const double> xs) noexcept {
  for (double x : xs) add(x);
}

std::uint64_t Histogram::count(std::size_t bin) const {
  CN_ASSERT(bin < counts_.size());
  return counts_[bin];
}

double Histogram::bin_lo(std::size_t bin) const {
  CN_ASSERT(bin < counts_.size());
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const {
  CN_ASSERT(bin < counts_.size());
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bin + 1);
}

double Histogram::fraction(std::size_t bin) const {
  CN_ASSERT(bin < counts_.size());
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_[bin]) / static_cast<double>(total_);
}

LogHistogram::LogHistogram(double lo, double hi, std::size_t bins)
    : log_lo_(std::log(lo)), log_hi_(std::log(hi)), counts_(bins, 0) {
  CN_ASSERT(lo > 0.0 && lo < hi);
  CN_ASSERT(bins > 0);
}

void LogHistogram::add(double x) noexcept {
  ++total_;
  if (x <= 0.0) return;
  const double lx = std::log(x);
  if (lx < log_lo_ || lx >= log_hi_) return;
  const double width = (log_hi_ - log_lo_) / static_cast<double>(counts_.size());
  auto bin = static_cast<std::size_t>((lx - log_lo_) / width);
  if (bin >= counts_.size()) bin = counts_.size() - 1;
  ++counts_[bin];
}

std::uint64_t LogHistogram::count(std::size_t bin) const {
  CN_ASSERT(bin < counts_.size());
  return counts_[bin];
}

double LogHistogram::bin_lo(std::size_t bin) const {
  CN_ASSERT(bin < counts_.size());
  const double width = (log_hi_ - log_lo_) / static_cast<double>(counts_.size());
  return std::exp(log_lo_ + width * static_cast<double>(bin));
}

double LogHistogram::bin_hi(std::size_t bin) const {
  CN_ASSERT(bin < counts_.size());
  const double width = (log_hi_ - log_lo_) / static_cast<double>(counts_.size());
  return std::exp(log_lo_ + width * static_cast<double>(bin + 1));
}

}  // namespace cn::stats

#include "io/stream_source.hpp"

#include <chrono>
#include <thread>

#include "obs/registry.hpp"
#include "util/assert.hpp"

namespace cn::io {

const char* to_string(StreamStatus status) {
  switch (status) {
    case StreamStatus::kOk: return "ok";
    case StreamStatus::kEnd: return "end";
    case StreamStatus::kTimeout: return "timeout";
    case StreamStatus::kTransient: return "transient";
    case StreamStatus::kCorrupt: return "corrupt";
  }
  return "?";
}

ReplaySource::ReplaySource(const DatasetHandle& handle) : handle_(&handle) {}

std::uint64_t ReplaySource::size() const {
  const std::uint64_t blocks = handle_->chain.size();
  const std::uint64_t snaps =
      handle_->snapshots.has_value() ? handle_->snapshots->size() : 0;
  return blocks + snaps;
}

StreamStatus ReplaySource::next(StreamEvent& out, int /*deadline_ms*/) {
  const auto blocks = handle_->chain.blocks();
  const auto snaps = handle_->snapshots.has_value()
                         ? handle_->snapshots->stats()
                         : std::span<const node::MempoolStat>{};

  const bool have_block = block_cursor_ < blocks.size();
  const bool have_snap = snapshot_cursor_ < snaps.size();
  if (!have_block && !have_snap) return StreamStatus::kEnd;

  // Snapshots at or before the next block's mined_at go first (ties to
  // the snapshot): the observer's record precedes the block event.
  bool take_snap = have_snap;
  if (have_block && have_snap) {
    take_snap = snaps[snapshot_cursor_].time <= blocks[block_cursor_].mined_at();
  }

  out = StreamEvent{};
  out.seq = next_seq_++;
  if (take_snap) {
    out.kind = StreamEvent::Kind::kSnapshot;
    out.snapshot = snaps[snapshot_cursor_++];
    out.time = out.snapshot.time;
  } else {
    out.kind = StreamEvent::Kind::kBlock;
    out.block = &blocks[block_cursor_++];
    out.time = out.block->mined_at();
  }
  return StreamStatus::kOk;
}

bool ReplaySource::seek(std::uint64_t seq) {
  if (seq > size()) return false;
  // The merge is deterministic, so replay it from the top; O(seq) cursor
  // bumps with no event materialization — microseconds even for
  // million-event feeds.
  block_cursor_ = 0;
  snapshot_cursor_ = 0;
  next_seq_ = 1;
  const auto blocks = handle_->chain.blocks();
  const auto snaps = handle_->snapshots.has_value()
                         ? handle_->snapshots->stats()
                         : std::span<const node::MempoolStat>{};
  while (next_seq_ <= seq) {
    const bool have_block = block_cursor_ < blocks.size();
    const bool have_snap = snapshot_cursor_ < snaps.size();
    CN_ASSERT(have_block || have_snap);
    bool take_snap = have_snap;
    if (have_block && have_snap) {
      take_snap =
          snaps[snapshot_cursor_].time <= blocks[block_cursor_].mined_at();
    }
    if (take_snap) {
      ++snapshot_cursor_;
    } else {
      ++block_cursor_;
    }
    ++next_seq_;
  }
  return true;
}

namespace {

struct StreamMetrics {
  obs::Counter retries{"io.stream.retries"};
  obs::Counter backoff_ms{"io.stream.backoff_ms"};
  obs::Counter exhausted{"io.stream.retry_exhausted"};
};

StreamMetrics& stream_metrics() {
  static StreamMetrics m;
  return m;
}

}  // namespace

RetryingSource::RetryingSource(StreamSource& inner, RetryPolicy policy)
    : inner_(&inner), policy_(policy) {
  if (policy_.max_attempts < 1) policy_.max_attempts = 1;
  if (policy_.base_backoff_ms < 0) policy_.base_backoff_ms = 0;
  if (policy_.backoff_multiplier < 1.0) policy_.backoff_multiplier = 1.0;
}

StreamStatus RetryingSource::next(StreamEvent& out, int deadline_ms) {
  double backoff = static_cast<double>(policy_.base_backoff_ms);
  StreamStatus status = StreamStatus::kTransient;
  for (int attempt = 0; attempt < policy_.max_attempts; ++attempt) {
    if (attempt > 0) {
      const auto sleep_ms = static_cast<int>(
          std::min(backoff, static_cast<double>(policy_.max_backoff_ms)));
      if (sleep_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
        stream_metrics().backoff_ms.add(static_cast<std::uint64_t>(sleep_ms));
      }
      backoff *= policy_.backoff_multiplier;
      ++retries_;
      stream_metrics().retries.add();
    }
    status = inner_->next(out, deadline_ms);
    if (status != StreamStatus::kTimeout && status != StreamStatus::kTransient) {
      return status;
    }
  }
  stream_metrics().exhausted.add();
  return status;
}

}  // namespace cn::io

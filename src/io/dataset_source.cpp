#include "io/dataset_source.hpp"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>

#include "btc/coinbase_tags.hpp"
#include "io/cnb.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace cn::io {

namespace {

struct SourceMetrics {
  obs::Counter opens{"io.dataset_source.opens"};
  obs::Counter opens_failed{"io.dataset_source.opens_failed"};
  obs::Counter csv{"io.dataset_source.format.csv"};
  obs::Counter cnb{"io.dataset_source.format.cnb"};
};

SourceMetrics& source_metrics() {
  static SourceMetrics* m = new SourceMetrics();  // interned once per process
  return *m;
}

/// Folds a sub-load's diagnostics into the aggregate report.
void merge(LoadReport& into, const LoadReport& part) {
  into.errors.insert(into.errors.end(), part.errors.begin(),
                     part.errors.end());
  into.rows_read += part.rows_read;
  into.rows_skipped += part.rows_skipped;
  into.rows_repaired += part.rows_repaired;
  into.ok = into.ok && part.ok;
}

LoadResult<DatasetHandle> open_csv(const std::string& dir, LoadPolicy policy) {
  LoadResult<DatasetHandle> result;
  result.report.policy = policy;
  DatasetHandle handle;
  handle.format = DatasetFormat::kCsv;

  auto chain = import_chain(dir, policy, &handle.addresses);
  merge(result.report, chain.report);
  if (!chain.has_value()) return result;
  handle.chain = std::move(*chain.value);

  // The optional series load like cnaudit always has: present files are
  // read under the same policy; absent files are simply not part of the
  // data set. Strict treats a defective present file as a defect of the
  // whole set; lenient drops the series and keeps the chain.
  const std::string snapshots_path = dir + "/snapshots.csv";
  if (std::filesystem::exists(snapshots_path)) {
    auto snapshots = import_snapshots(snapshots_path, policy);
    merge(result.report, snapshots.report);
    if (snapshots.has_value()) {
      handle.snapshots = std::move(*snapshots.value);
    } else if (policy == LoadPolicy::kStrict) {
      return result;
    }
  }
  const std::string first_seen_path = dir + "/first_seen.csv";
  if (std::filesystem::exists(first_seen_path)) {
    auto first_seen = import_first_seen(first_seen_path, policy);
    merge(result.report, first_seen.report);
    if (first_seen.has_value()) {
      handle.first_seen = std::move(*first_seen.value);
    } else if (policy == LoadPolicy::kStrict) {
      return result;
    }
  }
  result.value = std::move(handle);
  return result;
}

}  // namespace

const char* to_string(DatasetFormat format) {
  switch (format) {
    case DatasetFormat::kCsv: return "csv";
    case DatasetFormat::kCnb: return "cnb";
  }
  return "unknown";
}

std::optional<DatasetFormat> parse_dataset_format(std::string_view name) {
  if (name == "csv") return DatasetFormat::kCsv;
  if (name == "cnb") return DatasetFormat::kCnb;
  return std::nullopt;
}

const core::AuditDataset* DatasetHandle::prebuilt_for(
    const btc::CoinbaseTagRegistry& registry) const {
  if (!audit_dataset.has_value()) return nullptr;
  if (registry.fingerprint() != registry_fingerprint) return nullptr;
  return &*audit_dataset;
}

std::optional<DatasetFormat> sniff_dataset_format(const std::string& path) {
  std::error_code ec;
  if (std::filesystem::is_directory(path, ec)) return DatasetFormat::kCsv;
  std::ifstream in(path, std::ios::binary);
  if (in) {
    std::uint8_t magic[sizeof kCnbMagic] = {};
    in.read(reinterpret_cast<char*>(magic), sizeof magic);
    if (in.gcount() == static_cast<std::streamsize>(sizeof magic) &&
        std::memcmp(magic, kCnbMagic, sizeof magic) == 0) {
      return DatasetFormat::kCnb;
    }
  }
  // A .cnb path that failed the magic read still routes to the CNB1
  // loader so its typed diagnostics (kTruncatedFile, kBadMagic) apply.
  if (std::filesystem::path(path).extension() == ".cnb") {
    return DatasetFormat::kCnb;
  }
  return std::nullopt;
}

LoadResult<DatasetHandle> open_dataset(const std::string& path,
                                       LoadPolicy policy,
                                       std::optional<DatasetFormat> format) {
  const obs::Span span("io.open_dataset");
  SourceMetrics& m = source_metrics();
  m.opens.add();
  if (!format.has_value()) format = sniff_dataset_format(path);
  if (!format.has_value()) {
    LoadResult<DatasetHandle> result;
    result.report.policy = policy;
    result.report.ok = false;
    result.report.errors.push_back(
        LoadError{LoadErrorKind::kFileOpen, path, 0,
                  "neither a data-set directory nor a CNB1 file", false});
    m.opens_failed.add();
    return result;
  }
  (*format == DatasetFormat::kCsv ? m.csv : m.cnb).add();
  auto result = *format == DatasetFormat::kCsv ? open_csv(path, policy)
                                               : read_cnb(path, policy);
  if (!result.has_value()) m.opens_failed.add();
  return result;
}

}  // namespace cn::io

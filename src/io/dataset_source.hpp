// The one way to load a data set.
//
// Historically every consumer (cnaudit, benches, test fixtures) stitched
// a data set together from three importer calls — chain directory,
// snapshots.csv, first_seen.csv — and each grew its own error handling.
// DatasetSource collapses that into a single factory:
//
//   auto source = io::open_dataset(path, policy);
//
// where @p path is either a CSV export directory (io/dataset_io.hpp) or
// a single CNB1 binary columnar file (io/cnb.hpp). The format is sniffed
// from the path (directory vs file magic); callers that know better can
// pass it explicitly. The result carries everything the path contained:
// the chain, the optional snapshot / first-seen series, the interned
// address table, and — CNB1 only — a prebuilt core::AuditDataset that
// lets the audit pipeline skip its dominant build stage entirely.
//
// Ownership/lifetime contract (DESIGN.md §11): a DatasetHandle OWNS all
// of its data. The CNB1 loader maps the file, verifies every section
// checksum (which forces the full read anyway), copies the columns out,
// and unmaps before returning — no view in the handle ever points into
// the file, so the handle outlives the path, the file, and the mapping.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "btc/chain.hpp"
#include "btc/intern.hpp"
#include "core/audit_dataset.hpp"
#include "io/dataset_io.hpp"
#include "io/load_report.hpp"
#include "node/snapshot.hpp"

namespace cn::btc {
class CoinbaseTagRegistry;
}

namespace cn::io {

enum class DatasetFormat {
  kCsv,  ///< directory of relational CSV files (io/dataset_io.hpp)
  kCnb,  ///< single CNB1 binary columnar file (io/cnb.hpp)
};

/// Stable label ("csv" / "cnb").
const char* to_string(DatasetFormat format);

/// Parses a --format CLI value; nullopt on anything but "csv" / "cnb".
std::optional<DatasetFormat> parse_dataset_format(std::string_view name);

/// CNB1 only (flag bit 4): the simulator ground truth a cached world
/// carries — what a real auditor lacks but the detector-validation
/// benches need — so a cache hit can stand in for a fresh SimResult.
struct SimWorldInfo {
  /// sim::WorldSpec::fingerprint() of the spec that generated the file;
  /// the cache cross-checks it against the requested spec so a renamed
  /// or stale file can never masquerade as the wrong world.
  std::uint64_t spec_fingerprint = 0;
  btc::Address scam_address{};          ///< 0 when no scam was planted
  std::vector<btc::Txid> accelerated_txids;  ///< sorted by byte order

  /// The public "was this txid accelerated?" query, answered from the
  /// stored sorted list (the on-disk twin of
  /// sim::AccelerationService::is_accelerated).
  bool is_accelerated(const btc::Txid& id) const noexcept {
    return std::binary_search(accelerated_txids.begin(),
                              accelerated_txids.end(), id);
  }
};

/// Everything a data-set path contained, with owning storage.
struct DatasetHandle {
  DatasetFormat format = DatasetFormat::kCsv;
  btc::Chain chain;
  std::optional<node::SnapshotSeries> snapshots;
  std::optional<FirstSeenMap> first_seen;
  /// Every address the load touched, interned in load order (the same
  /// table import_chain builds); pass to AuditOptions::interned_addresses.
  btc::AddressTable addresses;

  /// CNB1 only: the derived audit columns stored alongside the chain,
  /// valid for the registry identified by registry_fingerprint.
  std::optional<core::AuditDataset> audit_dataset;
  std::uint64_t registry_fingerprint = 0;

  /// CNB1 only: simulator ground truth for cached worlds.
  std::optional<SimWorldInfo> sim_world;

  /// The stored audit dataset, or nullptr when none was stored or it was
  /// derived under a different CoinbaseTagRegistry than @p registry (the
  /// pool interning would not line up, so the caller must rebuild).
  const core::AuditDataset* prebuilt_for(
      const btc::CoinbaseTagRegistry& registry) const;
};

/// Determines how a path would be loaded: an existing directory is CSV; a
/// file starting with the CNB1 magic — or, failing a read, one with a
/// ".cnb" extension — is CNB1. nullopt when the path matches neither.
std::optional<DatasetFormat> sniff_dataset_format(const std::string& path);

/// Loads a data set from @p path under @p policy. Strict fails at the
/// first defect anywhere in the set (report.first_error() pinpoints it);
/// lenient degrades: defective CSV rows are skipped/repaired, corrupt
/// optional CNB1 sections (snapshots, first-seen, derived audit columns)
/// are dropped with the chain still loading, and only an unusable chain
/// withholds the value. Pass @p format to skip sniffing.
LoadResult<DatasetHandle> open_dataset(
    const std::string& path, LoadPolicy policy = LoadPolicy::kStrict,
    std::optional<DatasetFormat> format = std::nullopt);

}  // namespace cn::io

#include "io/world_cache.hpp"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "io/cnb.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"

namespace cn::io {

namespace {

struct WorldCacheMetrics {
  obs::Counter hits{"io.world_cache.hits"};
  obs::Counter misses{"io.world_cache.misses"};
  obs::Counter evictions{"io.world_cache.evictions"};
};

WorldCacheMetrics& world_cache_metrics() {
  static WorldCacheMetrics* m = new WorldCacheMetrics();
  return *m;
}

}  // namespace

WorldCache::WorldCache(std::string dir) : dir_(std::move(dir)) {}

std::string WorldCache::path_for(const sim::WorldSpec& spec) const {
  char name[32];
  std::snprintf(name, sizeof name, "%016llx.cnb",
                static_cast<unsigned long long>(spec.fingerprint()));
  return dir_ + "/" + name;
}

WorldCacheStats WorldCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::optional<World> WorldCache::try_load(const sim::WorldSpec& spec,
                                          std::uint64_t fingerprint,
                                          const std::string& path) {
  const obs::Span span("io.world_cache.load");
  // Strict: a cache entry with ANY defect is regenerated, never patched
  // around — lenient degradation is for irreplaceable real data, not
  // for a file we can rebuild from its own address.
  auto loaded = open_dataset(path, LoadPolicy::kStrict, DatasetFormat::kCnb);
  if (!loaded.value.has_value()) return std::nullopt;
  DatasetHandle& handle = *loaded.value;
  if (!handle.snapshots || !handle.first_seen || !handle.sim_world) {
    return std::nullopt;  // not a world file (or groups dropped)
  }
  if (handle.sim_world->spec_fingerprint != fingerprint) {
    return std::nullopt;  // renamed or stale entry addressing a different world
  }
  World world;
  world.spec = spec;
  world.config = spec.config();
  world.chain = std::move(handle.chain);
  world.snapshots = std::move(*handle.snapshots);
  world.first_seen_map = std::move(*handle.first_seen);
  world.truth = std::move(*handle.sim_world);
  return world;
}

World WorldCache::generate(const sim::WorldSpec& spec,
                           std::uint64_t fingerprint,
                           const std::string& path) {
  const obs::Span span("io.world_cache.generate");
  const auto start = std::chrono::steady_clock::now();
  sim::SimResult result = sim::Engine(spec.config()).run();
  const double sim_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.sim_seconds += sim_seconds;
  }

  SimWorldInfo truth;
  truth.spec_fingerprint = fingerprint;
  truth.scam_address = result.scam_address;
  truth.accelerated_txids = result.acceleration.all_accelerated_sorted();

  CnbWriteOptions options;
  options.snapshots = &result.observer.snapshots();
  options.first_seen = &result.observer.first_seen_map();
  options.world = &truth;
  std::string error;
  if (!write_cnb(result.chain, path, options, &error)) {
    throw std::runtime_error("world cache: cannot write " + path + ": " +
                             error);
  }
  // Serve the freshly written entry through the same load path a warm
  // caller takes, so cold and warm worlds are identical by construction
  // (and a write that cannot round-trip fails loudly right here).
  std::optional<World> world = try_load(spec, fingerprint, path);
  if (!world) {
    throw std::runtime_error(
        "world cache: just-written entry failed verification: " + path);
  }
  return std::move(*world);
}

World WorldCache::materialize(const sim::WorldSpec& spec) {
  const std::uint64_t fingerprint = spec.fingerprint();
  const std::string path = path_for(spec);
  std::shared_ptr<std::mutex> gate;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = locks_[fingerprint];
    if (slot == nullptr) slot = std::make_shared<std::mutex>();
    gate = slot;
  }
  // Per-fingerprint critical section: the first caller to a missing
  // world simulates; racers block here and then hit the fresh entry.
  std::lock_guard<std::mutex> world_lock(*gate);

  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (std::filesystem::exists(path, ec)) {
    if (std::optional<World> world = try_load(spec, fingerprint, path)) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.hits;
      }
      world_cache_metrics().hits.add();
      world->cache_hit = true;
      return std::move(*world);
    }
    // Corrupt, truncated, or stale: evict and fall through to regenerate.
    std::filesystem::remove(path, ec);
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.evictions;
    }
    world_cache_metrics().evictions.add();
  }
  World world = generate(spec, fingerprint, path);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.misses;
  }
  world_cache_metrics().misses.add();
  world.cache_hit = false;
  return world;
}

}  // namespace cn::io

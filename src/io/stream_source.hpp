// Streaming feed of audit events — the serving layer's ingest API.
//
// A batch audit loads a whole data set and scans it; the always-on
// daemon (src/daemon) instead *pulls* an ordered stream of events —
// mined blocks interleaved with the observer's 15 s Mempool snapshots —
// and applies each one incrementally. StreamSource is that pull API:
//
//   StreamEvent ev;
//   while (source.next(ev, /*deadline_ms=*/1000) == StreamStatus::kOk)
//     apply(ev);
//
// Every event carries a monotonically increasing sequence number (its
// 1-based position in the merged feed), which is the daemon's recovery
// cursor: a checkpoint records the last applied sequence number, and a
// restarted daemon calls seek(seq) to resume exactly one event past it.
// Replaying the same feed always yields the same (seq, event) pairs —
// the chaos harness's byte-identical-convergence invariant rests on
// this.
//
// Failure semantics mirror a production feed rather than a local file:
//   kOk        an event was produced;
//   kEnd       the feed is exhausted (replay sources are finite);
//   kTimeout   the source could not produce an event within the
//              caller's deadline — retryable;
//   kTransient a recoverable read failure (flaky disk/socket) —
//              retryable;
//   kCorrupt   the source is poisoned and no further reads can succeed.
//
// RetryingSource wraps any source with the standard production policy:
// per-read deadlines plus retry-with-exponential-backoff on kTimeout /
// kTransient, giving up only after RetryPolicy::max_attempts.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "btc/block.hpp"
#include "io/dataset_source.hpp"
#include "node/snapshot.hpp"
#include "util/time.hpp"

namespace cn::io {

enum class StreamStatus {
  kOk,         ///< an event was produced
  kEnd,        ///< feed exhausted (finite replay source)
  kTimeout,    ///< no event within the deadline — retryable
  kTransient,  ///< recoverable read failure — retryable
  kCorrupt,    ///< source poisoned; no further read can succeed
};

/// Stable lower-case label ("ok", "end", "timeout", "transient",
/// "corrupt").
const char* to_string(StreamStatus status);

/// One feed event. Block events point into source-owned storage: the
/// pointer stays valid for the lifetime of the source (the daemon's
/// ingest queue holds events across pulls), never past it.
struct StreamEvent {
  enum class Kind : std::uint8_t { kBlock, kSnapshot };
  Kind kind = Kind::kBlock;
  /// 1-based position in the merged feed; strictly increasing.
  std::uint64_t seq = 0;
  /// Event time (block mined_at / snapshot time).
  SimTime time = 0;
  const btc::Block* block = nullptr;  ///< kBlock only; source-owned
  node::MempoolStat snapshot{};       ///< kSnapshot only
};

class StreamSource {
 public:
  virtual ~StreamSource() = default;

  /// Pulls the next event. @p deadline_ms bounds how long the source may
  /// block before giving up with kTimeout (best effort; replay sources
  /// return instantly). On kOk, @p out is filled; on any other status it
  /// is untouched and the cursor did not advance, so the call may be
  /// retried.
  virtual StreamStatus next(StreamEvent& out, int deadline_ms) = 0;

  /// Repositions the cursor so the next successful next() yields the
  /// event with sequence number @p seq + 1 (seek(0) rewinds). Returns
  /// false when the feed is shorter than @p seq.
  virtual bool seek(std::uint64_t seq) = 0;

  /// Total events in the feed (0 when unknown/unbounded).
  virtual std::uint64_t size() const = 0;
};

/// Replay source over a loaded data set: every block of the chain, in
/// height order, merged with the snapshot series in time order.
/// Snapshots at or before a block's mined_at sort before the block
/// (the observer records a snapshot before it sees the block); ties
/// between a snapshot and a block at the same instant go to the
/// snapshot. The merge is pure (no state beyond the two cursors), so
/// seek() is O(1) arithmetic over the two counts.
class ReplaySource : public StreamSource {
 public:
  /// @p handle must outlive the source; block pointers handed out by
  /// next() point into it.
  explicit ReplaySource(const DatasetHandle& handle);

  StreamStatus next(StreamEvent& out, int deadline_ms) override;
  bool seek(std::uint64_t seq) override;
  std::uint64_t size() const override;

  const DatasetHandle& dataset() const noexcept { return *handle_; }

 private:
  const DatasetHandle* handle_;
  std::uint64_t block_cursor_ = 0;     ///< next block index
  std::uint64_t snapshot_cursor_ = 0;  ///< next snapshot index
  std::uint64_t next_seq_ = 1;
};

/// Production retry policy: per-read deadline plus exponential backoff
/// between attempts on retryable failures.
struct RetryPolicy {
  int max_attempts = 5;          ///< total tries per next() call
  int base_backoff_ms = 10;      ///< sleep before the first retry
  double backoff_multiplier = 2.0;
  int max_backoff_ms = 2'000;    ///< backoff ceiling
};

/// Decorator adding RetryPolicy semantics to any StreamSource. kTimeout
/// and kTransient results are retried (with backoff) up to
/// policy.max_attempts; the final failure status is passed through.
/// kCorrupt and kEnd are never retried. Retries and backoff sleeps are
/// counted in the cn::obs registry ("io.stream.retries",
/// "io.stream.backoff_ms").
class RetryingSource : public StreamSource {
 public:
  RetryingSource(StreamSource& inner, RetryPolicy policy);

  StreamStatus next(StreamEvent& out, int deadline_ms) override;
  bool seek(std::uint64_t seq) override { return inner_->seek(seq); }
  std::uint64_t size() const override { return inner_->size(); }

  /// Total retries performed over this source's lifetime.
  std::uint64_t retries() const noexcept { return retries_; }

 private:
  StreamSource* inner_;
  RetryPolicy policy_;
  std::uint64_t retries_ = 0;
};

}  // namespace cn::io

// Structured diagnostics for data-set ingestion.
//
// The paper's own substrate was lossy (15 s Mempool snapshots, node
// restarts, outage windows), so audits must reason about imperfect data
// instead of rejecting it. Importers return a LoadResult: the loaded
// value (when one could be produced) plus a LoadReport listing every
// malformed row, duplicate key, and repair decision with its file and
// 1-based physical line.
//
// Two policies:
//   kStrict  — the first defect aborts the load; the report pinpoints it.
//   kLenient — defective rows are skipped or repaired (out-of-order rows
//              re-sorted, duplicate keys first-wins, missing block rows
//              reconstructed); every decision is recorded in the report
//              and the load still yields a usable value.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace cn::io {

enum class LoadPolicy {
  kStrict,   ///< fail at the first defect, with its exact location
  kLenient,  ///< skip/repair defects, record every decision
};

enum class LoadErrorKind {
  kFileOpen,           ///< file missing or unreadable
  kMissingHeader,      ///< file empty (no header row)
  kBadFieldCount,      ///< row has the wrong number of fields
  kBadNumber,          ///< numeric field failed to parse
  kBadTxid,            ///< txid field is not 64 hex chars
  kDuplicateHeight,    ///< second blocks.csv row for the same height
  kDuplicateTxPosition,///< second txs.csv row for the same (height, position)
  kDuplicateTxid,      ///< txid appears twice in txs.csv / first_seen.csv
  kOutOfOrderRow,      ///< key order violates the export invariant
  kTxCountMismatch,    ///< block's tx_count disagrees with its txs.csv rows
  kBadPositionSequence,///< a block's positions are not 0..n-1 after sorting
  kMissingBlockRow,    ///< txs exist for a height with no blocks.csv row,
                       ///< or a height hole inside the block range
  kUnterminatedQuote,  ///< record ended at EOF inside a quoted field
  // Binary (CNB1, see io/cnb.hpp) defects. `line` holds the 1-based
  // section-directory index for per-section defects, 0 for file-level
  // ones; `detail` names the section.
  kBadMagic,           ///< file does not start with the CNB1 magic
  kUnsupportedVersion, ///< version or endianness tag this build can't read
  kTruncatedFile,      ///< header, directory, or section extends past EOF
  kSectionChecksum,    ///< a section's payload fails its checksum
  kSectionLayout,      ///< section size/counts violate the format contract
  kMissingSection,     ///< a required section is absent from the directory
  kMmapFailed,         ///< the OS refused to map the file (e.g. ENOMEM)
};

/// Stable lower-case label for a LoadErrorKind (e.g. "duplicate-height").
const char* to_string(LoadErrorKind kind);

struct LoadError {
  LoadErrorKind kind{};
  std::string file;       ///< path as opened
  std::size_t line = 0;   ///< 1-based physical line; 0 = whole file
  std::string detail;     ///< human-readable specifics
  bool repaired = false;  ///< lenient mode recovered instead of failing
};

struct LoadReport {
  LoadPolicy policy = LoadPolicy::kStrict;
  std::vector<LoadError> errors;   ///< in discovery order
  std::uint64_t rows_read = 0;     ///< data rows consumed (headers excluded)
  std::uint64_t rows_skipped = 0;  ///< lenient: rows dropped
  std::uint64_t rows_repaired = 0; ///< lenient: rows kept after a fix
  bool ok = true;                  ///< false when a strict load aborted

  bool clean() const noexcept { return errors.empty(); }
  const LoadError* first_error() const noexcept {
    return errors.empty() ? nullptr : &errors.front();
  }
  /// One-line digest: "3 defects (2 skipped, 1 repaired); first: txs.csv:17
  /// bad-number".
  std::string summary() const;
};

/// Outcome of an import: the value (absent when the load failed — always
/// in strict mode after a defect, and in lenient mode only when the data
/// was unusable, e.g. a missing file) plus the full diagnostic report.
template <typename T>
struct LoadResult {
  std::optional<T> value;
  LoadReport report;

  bool has_value() const noexcept { return value.has_value(); }
  explicit operator bool() const noexcept { return value.has_value(); }
  T& operator*() noexcept { return *value; }
  const T& operator*() const noexcept { return *value; }
  T* operator->() noexcept { return &*value; }
  const T* operator->() const noexcept { return &*value; }
};

}  // namespace cn::io

#include "io/load_report.hpp"

namespace cn::io {

const char* to_string(LoadErrorKind kind) {
  switch (kind) {
    case LoadErrorKind::kFileOpen: return "file-open";
    case LoadErrorKind::kMissingHeader: return "missing-header";
    case LoadErrorKind::kBadFieldCount: return "bad-field-count";
    case LoadErrorKind::kBadNumber: return "bad-number";
    case LoadErrorKind::kBadTxid: return "bad-txid";
    case LoadErrorKind::kDuplicateHeight: return "duplicate-height";
    case LoadErrorKind::kDuplicateTxPosition: return "duplicate-tx-position";
    case LoadErrorKind::kDuplicateTxid: return "duplicate-txid";
    case LoadErrorKind::kOutOfOrderRow: return "out-of-order-row";
    case LoadErrorKind::kTxCountMismatch: return "tx-count-mismatch";
    case LoadErrorKind::kBadPositionSequence: return "bad-position-sequence";
    case LoadErrorKind::kMissingBlockRow: return "missing-block-row";
    case LoadErrorKind::kUnterminatedQuote: return "unterminated-quote";
    case LoadErrorKind::kBadMagic: return "bad-magic";
    case LoadErrorKind::kUnsupportedVersion: return "unsupported-version";
    case LoadErrorKind::kTruncatedFile: return "truncated-file";
    case LoadErrorKind::kSectionChecksum: return "section-checksum";
    case LoadErrorKind::kSectionLayout: return "section-layout";
    case LoadErrorKind::kMissingSection: return "missing-section";
    case LoadErrorKind::kMmapFailed: return "mmap-failed";
  }
  return "unknown";
}

std::string LoadReport::summary() const {
  std::string out = std::to_string(errors.size()) + " defect" +
                    (errors.size() == 1 ? "" : "s") + " (" +
                    std::to_string(rows_skipped) + " skipped, " +
                    std::to_string(rows_repaired) + " repaired)";
  if (const LoadError* first = first_error()) {
    out += "; first: " + first->file;
    if (first->line > 0) out += ":" + std::to_string(first->line);
    out += " ";
    out += to_string(first->kind);
    if (!first->detail.empty()) out += " (" + first->detail + ")";
  }
  return out;
}

}  // namespace cn::io

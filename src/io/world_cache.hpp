// WorldCache — content-addressed CNB1 materialization of WorldSpecs.
//
// The simulator is the repo's wall-clock bottleneck (~20 s to generate
// what the audit consumes in 0.3 s), and before this cache every bench
// binary re-simulated its own world from scratch. materialize() turns
// "simulate" into "load": the spec's FNV-1a fingerprint addresses a
// CNB1 file under <dir>/<fingerprint>.cnb; a hit is a checksum-verified
// zero-copy open_dataset() load, a miss runs the engine once, writes
// the file atomically (tmp + rename, the CNB1 writer's policy), and
// then loads it back — so the World a cold caller gets is by
// construction byte-identical to what every warm caller will get.
//
// Trust model: a cache entry is never trusted. Every section checksum
// is verified on load, and the stored spec fingerprint must match the
// requested spec; a corrupt, truncated, renamed, or stale entry is
// evicted and regenerated.
//
// Concurrency: per-fingerprint locking — two ThreadPool jobs racing on
// the same missing world generate it exactly once (the loser of the
// race takes a cache hit); different fingerprints generate in parallel.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "btc/chain.hpp"
#include "io/dataset_source.hpp"
#include "node/snapshot.hpp"
#include "sim/world_spec.hpp"

namespace cn::io {

/// A fully materialized world: the observables a CNB1 file stores plus
/// the engine config re-derived from the spec (configs are cheap and
/// deterministic, so they are never stored). The accessors mirror what
/// benches used to read off a fresh sim::SimResult.
struct World {
  sim::WorldSpec spec;
  sim::EngineConfig config;
  btc::Chain chain;
  node::SnapshotSeries snapshots;
  FirstSeenMap first_seen_map;
  SimWorldInfo truth;
  bool cache_hit = false;

  std::optional<SimTime> first_seen(const btc::Txid& id) const {
    const auto it = first_seen_map.find(id);
    if (it == first_seen_map.end()) return std::nullopt;
    return it->second;
  }
  bool is_accelerated(const btc::Txid& id) const noexcept {
    return truth.is_accelerated(id);
  }
  const btc::Address& scam_address() const noexcept {
    return truth.scam_address;
  }
};

struct WorldCacheStats {
  std::uint64_t hits = 0;       ///< served from an existing entry
  std::uint64_t misses = 0;     ///< simulations actually run
  std::uint64_t evictions = 0;  ///< corrupt/stale entries removed
  double sim_seconds = 0.0;     ///< wall time spent inside the engine
};

class WorldCache {
 public:
  /// @p dir — where the .cnb entries live; created on first use.
  explicit WorldCache(std::string dir = "bench_out/worlds");

  WorldCache(const WorldCache&) = delete;
  WorldCache& operator=(const WorldCache&) = delete;

  /// The entry path a spec addresses: <dir>/<fingerprint-hex>.cnb.
  std::string path_for(const sim::WorldSpec& spec) const;

  /// Returns the world for @p spec, simulating it at most once per
  /// process AND at most once per cache directory lifetime (whichever
  /// caller arrives first generates; everyone else loads). Throws
  /// std::runtime_error when the engine output cannot be written or
  /// read back — a cache that cannot round-trip must not limp on.
  World materialize(const sim::WorldSpec& spec);

  const std::string& dir() const noexcept { return dir_; }
  WorldCacheStats stats() const;

 private:
  std::optional<World> try_load(const sim::WorldSpec& spec,
                                std::uint64_t fingerprint,
                                const std::string& path);
  World generate(const sim::WorldSpec& spec, std::uint64_t fingerprint,
                 const std::string& path);

  std::string dir_;
  mutable std::mutex mu_;  ///< guards stats_ and locks_
  WorldCacheStats stats_;
  /// One gate per fingerprint so concurrent misses on the same world
  /// serialize while distinct worlds generate in parallel.
  std::unordered_map<std::uint64_t, std::shared_ptr<std::mutex>> locks_;
};

}  // namespace cn::io

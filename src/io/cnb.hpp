// CNB1 — the versioned binary columnar on-disk format (DESIGN.md §11).
//
// A CNB1 file is the byte-layout twin of the audit substrate: the same
// per-block / per-transaction column arrays and CSR spans that
// core::AuditDataset holds in memory, laid out little-endian in one
// file so that loading is a checksum pass plus bulk column copies
// instead of a CSV parse (the CSV path tops out at ~137 k rows/s; this
// path is memory-bandwidth bound).
//
// File layout:
//   [ 64-byte header ]
//   [ section directory: section_count × 32-byte entries ]
//   [ section payloads, each 8-byte aligned, in directory order ]
//
// Header (all fields little-endian):
//   offset  size  field
//        0     8  magic "CNB1\r\n\x1a\n" (the PNG trick: text-mode
//                 transfer mangles the \r\n and truncation eats the ^Z)
//        8     4  version (this writer: 1)
//       12     4  endianness tag 0x01020304 as written by the producer
//       16     4  section_count
//       20     4  header_bytes (= 64; room to grow within a version)
//       24     8  genesis_height   (block heights are contiguous by
//                 construction — Chain::append enforces it — so ordinal
//                 b has height genesis_height + b and no height column
//                 is stored)
//       32     8  block_count
//       40     8  tx_count
//       48     8  flags (bit 0 snapshots, bit 1 first-seen, bit 2
//                 derived audit-dataset sections, bit 3 sealed block
//                 headers present, bit 4 simulator ground truth for
//                 cached worlds)
//       56     8  registry_fingerprint (CoinbaseTagRegistry::fingerprint
//                 of the registry the derived sections were built under;
//                 0 when flags bit 2 is clear)
//
// Directory entry: {section_id u32, reserved u32, offset u64,
// byte_size u64, checksum u64}. The checksum is four interleaved
// FNV-1a-64 lanes over u64 words, folded into one digest (cnb_checksum
// below) — cheap enough that verifying every section on load costs one
// streaming read even on a single core.
//
// Versioning / forward compatibility: readers MUST reject a different
// magic, endianness tag, or major version, and MUST ignore directory
// entries whose section_id they do not recognise — a newer writer may
// append new optional sections without breaking old readers. Removing
// or re-typing a section requires a version bump. Duplicate directory
// entries keep the first occurrence; the duplicate itself is a defect
// (droppable in lenient mode for optional sections, fatal for required
// ones). Payload offsets MUST be 8-byte aligned — the reader rejects a
// misaligned entry (kSectionLayout) rather than form a misaligned view.
//
// Failure model: every defect surfaces as a typed LoadError (never a
// crash) — kBadMagic / kUnsupportedVersion / kTruncatedFile /
// kMmapFailed at file level, kSectionChecksum / kSectionLayout /
// kMissingSection per section with `line` = the 1-based directory index
// and `detail` naming the section. Strict aborts at the first defect in
// file order; lenient drops corrupt OPTIONAL section groups (snapshots,
// first-seen, derived audit columns) and still yields the chain, per
// the §8 strict/lenient contract.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "io/dataset_source.hpp"
#include "io/load_report.hpp"

namespace cn::io {

inline constexpr std::uint8_t kCnbMagic[8] = {'C', 'N', 'B', '1',
                                              '\r', '\n', 0x1a, '\n'};
inline constexpr std::uint32_t kCnbVersion = 1;
inline constexpr std::uint32_t kCnbEndianTag = 0x01020304;
inline constexpr std::uint32_t kCnbHeaderBytes = 64;

// Header flag bits.
inline constexpr std::uint64_t kCnbFlagSnapshots = 1u << 0;
inline constexpr std::uint64_t kCnbFlagFirstSeen = 1u << 1;
inline constexpr std::uint64_t kCnbFlagAuditDataset = 1u << 2;
inline constexpr std::uint64_t kCnbFlagSealedHeaders = 1u << 3;
inline constexpr std::uint64_t kCnbFlagSimWorld = 1u << 4;

/// Section ids. Relational sections (< 64) round-trip to the CSV export;
/// derived sections (>= 64) cache core::AuditDataset columns that a
/// loader may also rebuild from the relational ones. Columns that would
/// be byte-identical to a relational section (txids, vsizes, issue
/// times, the tx/output CSR begins) are stored once, relationally.
enum class CnbSection : std::uint32_t {
  // --- relational: blocks (count = block_count) ---
  kBlockMinedAt = 1,     ///< i64[nb]
  kBlockRewardAddr = 2,  ///< u64[nb]
  kBlockRewardSat = 3,   ///< i64[nb]
  kBlockTagOffsets = 4,  ///< u64[nb+1] into kBlockTagBytes
  kBlockTagBytes = 5,    ///< u8[*] concatenated coinbase tags
  kBlockTxBegin = 6,     ///< u64[nb+1] CSR: txs of block b
  // --- relational: transactions (count = tx_count) ---
  kTxId = 7,      ///< 32 B[nt]
  kTxIssued = 8,  ///< i64[nt]
  kTxVsize = 9,   ///< u32[nt]
  kTxFeeSat = 10, ///< i64[nt]
  // --- relational: inputs (CSR over transactions) ---
  kTxInBegin = 11,   ///< u64[nt+1]
  kInPrevTxid = 12,  ///< 32 B[ni]
  kInPrevVout = 13,  ///< u32[ni]
  kInOwner = 14,     ///< u64[ni]
  // --- relational: outputs (CSR over transactions) ---
  kTxOutBegin = 15,  ///< u64[nt+1]
  kOutTo = 16,       ///< u64[no]
  kOutValueSat = 17, ///< i64[no]
  // --- optional: sealed block headers (flag bit 3) ---
  kBlockMerkleRoot = 23,  ///< 32 B[nb] Merkle roots as sealed by Chain::append;
                          ///< lets a loader adopt headers instead of
                          ///< re-hashing every txid (prev-hashes re-derive
                          ///< from the header chain itself)
  // --- optional: snapshot series (flag bit 0) ---
  kSnapTime = 18,     ///< i64[ns], strictly increasing
  kSnapTxCount = 19,  ///< u64[ns]
  kSnapVsize = 20,    ///< u64[ns]
  // --- optional: first-seen series (flag bit 1) ---
  kFirstSeenTxid = 21,  ///< 32 B[nf], sorted by byte order for determinism
  kFirstSeenTime = 22,  ///< i64[nf]
  // --- optional: simulator ground truth (flag bit 4; cached worlds) ---
  kWorldSpecFingerprint = 24,  ///< u64[1] sim::WorldSpec::fingerprint()
  kWorldScamAddress = 25,      ///< u64[1] planted scam address (0 = none)
  kWorldAcceleratedTxid = 26,  ///< 32 B[k], sorted by byte order
  // --- optional: derived audit-dataset columns (flag bit 2) ---
  kPoolNameOffsets = 64,    ///< u64[np+1] into kPoolNameBytes
  kPoolNameBytes = 65,      ///< u8[*]
  kPoolsByBlocks = 66,      ///< u32[np] pool ids by descending block count
  kBlockPool = 67,          ///< u32[nb]
  kBlockFees = 68,          ///< i64[nb]
  kBlockPpe = 69,           ///< f64[nb], NaN = undefined
  kTxFeeRate = 70,          ///< f64[nt]
  kTxFlags = 71,            ///< u8[nt]
  kTxSppe = 72,             ///< f64[nt], NaN = undefined
  kOutAddrId = 73,          ///< u32[no] interned AddressId per output
  kAddrById = 74,           ///< u64[na] address table in id order
  kPoolBlocksBegin = 75,    ///< u64[np+1]
  kPoolBlocksIdx = 76,      ///< u32[*] ascending block ordinals per pool
  kPoolTxCounts = 77,       ///< u64[np]
  kSelfInterestBegin = 78,  ///< u64[np+1]
  kSelfInterestIdx = 79,    ///< u32[*] ascending TxIdx per pool
};

/// Stable label for a section id ("block-mined-at", ...); "unknown" for
/// ids this build does not recognise.
const char* to_string(CnbSection section);

/// The checksum the format uses: four interleaved FNV-1a-64 lanes over
/// u64 words (little-endian, zero-padded tail), folded into one digest
/// and then over the byte length — the independent lanes hide the
/// multiply latency so the verify pass stays memory-bound.
std::uint64_t cnb_checksum(const void* data, std::size_t size) noexcept;

/// One parsed directory entry.
struct CnbSectionInfo {
  std::uint32_t id = 0;  ///< raw section id (may be unrecognised)
  std::uint64_t offset = 0;
  std::uint64_t byte_size = 0;
  std::uint64_t checksum = 0;
};

/// Parsed header + directory, with no payload validation. The cheap
/// inspection tools (cninject's section-corruption mode, cnconvert's
/// summary) use this; read_cnb does the full checksum/layout pass.
struct CnbInfo {
  std::uint32_t version = 0;
  std::uint64_t genesis_height = 0;
  std::uint64_t block_count = 0;
  std::uint64_t tx_count = 0;
  std::uint64_t flags = 0;
  std::uint64_t registry_fingerprint = 0;
  std::uint64_t file_size = 0;
  std::vector<CnbSectionInfo> sections;  ///< in directory order
};

/// Parses the header and directory of @p path without touching payloads.
/// Returns nullopt (and a reason in @p error) on open failure, bad
/// magic/version, or a directory that extends past EOF.
std::optional<CnbInfo> inspect_cnb(const std::string& path,
                                   std::string* error = nullptr);

/// What write_cnb stores beyond the chain itself.
struct CnbWriteOptions {
  const node::SnapshotSeries* snapshots = nullptr;
  const FirstSeenMap* first_seen = nullptr;
  /// Derived audit columns to embed; requires registry_fingerprint to
  /// identify the CoinbaseTagRegistry they were built under.
  const core::AuditDataset* dataset = nullptr;
  std::uint64_t registry_fingerprint = 0;
  /// Simulator ground truth for cached worlds (flag bit 4); the
  /// accelerated txid list is re-sorted on write.
  const SimWorldInfo* world = nullptr;
};

/// Writes @p chain (plus optional series / derived columns) as a CNB1
/// file at @p path. Atomic like the CSV exports: the bytes go to
/// `<path>.tmp` and are renamed into place only after every write
/// succeeded. Returns false on any I/O failure, with a human-readable
/// reason in @p error when non-null.
bool write_cnb(const btc::Chain& chain, const std::string& path,
               const CnbWriteOptions& options = {},
               std::string* error = nullptr);

/// Convenience: writes everything @p handle carries.
bool write_cnb(const DatasetHandle& handle, const std::string& path,
               std::string* error = nullptr);

/// Loads a CNB1 file: mmap, verify every recognised section's checksum
/// and layout, copy the columns into an owning DatasetHandle, unmap.
/// See the failure model in the file comment; open_dataset is the
/// caller-facing wrapper.
LoadResult<DatasetHandle> read_cnb(const std::string& path, LoadPolicy policy);

}  // namespace cn::io

#include "io/cnb.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <future>
#include <limits>
#include <map>
#include <utility>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace cn::io {

namespace {

/// Below these sizes the loader stays strictly single-threaded: spawning
/// helpers costs more than the work they would absorb, and the many tiny
/// fixture files in the test suite stay allocation-light.
constexpr std::uint64_t kParallelLoadBytes = 8u << 20;
constexpr std::uint64_t kParallelLoadTxs = 1u << 16;

/// Load/store telemetry (DESIGN.md §10), mirroring io.ingest.*.
struct CnbMetrics {
  obs::Counter loads{"io.cnb.loads"};
  obs::Counter loads_failed{"io.cnb.loads_failed"};
  obs::Counter sections_verified{"io.cnb.sections_verified"};
  obs::Counter sections_dropped{"io.cnb.sections_dropped"};
  obs::Counter bytes_read{"io.cnb.bytes_read"};
  obs::Counter writes{"io.cnb.writes"};
  obs::Counter bytes_written{"io.cnb.bytes_written"};
};

CnbMetrics& cnb_metrics() {
  static CnbMetrics* m = new CnbMetrics();  // interned once per process
  return *m;
}

// ---------------------------------------------------------------------
// Little-endian scalar packing. The format is defined little-endian; on
// a big-endian host these would need byte swaps, but such a host also
// fails the header's endianness tag, so the reader rejects before any
// column is misread.

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

// ---------------------------------------------------------------------
// Writer-side section assembly.

struct SectionBlob {
  CnbSection id{};
  std::vector<std::uint8_t> bytes;
};

template <typename T>
SectionBlob column(CnbSection id, const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  SectionBlob blob{id, {}};
  blob.bytes.resize(v.size() * sizeof(T));
  if (!v.empty()) std::memcpy(blob.bytes.data(), v.data(), blob.bytes.size());
  return blob;
}

/// Concatenated strings as an offsets column plus a byte blob.
std::pair<SectionBlob, SectionBlob> string_column(
    CnbSection offsets_id, CnbSection bytes_id,
    const std::vector<std::string>& strings) {
  std::vector<std::uint64_t> offsets;
  offsets.reserve(strings.size() + 1);
  SectionBlob bytes{bytes_id, {}};
  offsets.push_back(0);
  for (const std::string& s : strings) {
    bytes.bytes.insert(bytes.bytes.end(), s.begin(), s.end());
    offsets.push_back(bytes.bytes.size());
  }
  return {column(offsets_id, offsets), std::move(bytes)};
}

// ---------------------------------------------------------------------
// Reader-side mapping. The RAII wrapper unmaps on scope exit, so every
// early return in read_cnb releases the file — the DatasetHandle only
// ever holds copies.

struct MappedFile {
  const std::uint8_t* data = nullptr;
  std::size_t size = 0;

  ~MappedFile() {
    if (data != nullptr) ::munmap(const_cast<std::uint8_t*>(data), size);
  }
};

template <typename T>
std::vector<T> copy_column(const std::uint8_t* data, std::size_t byte_size) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::vector<T> v(byte_size / sizeof(T));
  if (!v.empty()) std::memcpy(v.data(), data, v.size() * sizeof(T));
  return v;
}

std::vector<std::vector<std::uint32_t>> split_csr(
    const std::vector<std::uint64_t>& begin,
    const std::vector<std::uint32_t>& values) {
  std::vector<std::vector<std::uint32_t>> out(begin.empty() ? 0
                                                            : begin.size() - 1);
  for (std::size_t i = 0; i + 1 < begin.size(); ++i) {
    out[i].assign(values.begin() + static_cast<std::ptrdiff_t>(begin[i]),
                  values.begin() + static_cast<std::ptrdiff_t>(begin[i + 1]));
  }
  return out;
}

/// begin must be 0-led, non-decreasing, and end at @p total.
bool valid_csr(const std::vector<std::uint64_t>& begin, std::uint64_t count,
               std::uint64_t total) {
  if (begin.size() != count + 1) return false;
  if (begin.front() != 0 || begin.back() != total) return false;
  for (std::size_t i = 0; i + 1 < begin.size(); ++i) {
    if (begin[i] > begin[i + 1]) return false;
  }
  return true;
}

/// Pointer-view variant for columns read straight from the mapping; the
/// caller's take() already guaranteed exactly @p count + 1 elements.
bool valid_csr(const std::uint64_t* begin, std::uint64_t count,
               std::uint64_t total) {
  if (begin == nullptr) return false;
  if (begin[0] != 0 || begin[count] != total) return false;
  for (std::uint64_t i = 0; i < count; ++i) {
    if (begin[i] > begin[i + 1]) return false;
  }
  return true;
}

}  // namespace

const char* to_string(CnbSection section) {
  switch (section) {
    case CnbSection::kBlockMinedAt: return "block-mined-at";
    case CnbSection::kBlockRewardAddr: return "block-reward-addr";
    case CnbSection::kBlockRewardSat: return "block-reward-sat";
    case CnbSection::kBlockTagOffsets: return "block-tag-offsets";
    case CnbSection::kBlockTagBytes: return "block-tag-bytes";
    case CnbSection::kBlockTxBegin: return "block-tx-begin";
    case CnbSection::kTxId: return "tx-id";
    case CnbSection::kTxIssued: return "tx-issued";
    case CnbSection::kTxVsize: return "tx-vsize";
    case CnbSection::kTxFeeSat: return "tx-fee-sat";
    case CnbSection::kTxInBegin: return "tx-in-begin";
    case CnbSection::kInPrevTxid: return "in-prev-txid";
    case CnbSection::kInPrevVout: return "in-prev-vout";
    case CnbSection::kInOwner: return "in-owner";
    case CnbSection::kTxOutBegin: return "tx-out-begin";
    case CnbSection::kOutTo: return "out-to";
    case CnbSection::kOutValueSat: return "out-value-sat";
    case CnbSection::kBlockMerkleRoot: return "block-merkle-root";
    case CnbSection::kSnapTime: return "snap-time";
    case CnbSection::kSnapTxCount: return "snap-tx-count";
    case CnbSection::kSnapVsize: return "snap-vsize";
    case CnbSection::kFirstSeenTxid: return "first-seen-txid";
    case CnbSection::kFirstSeenTime: return "first-seen-time";
    case CnbSection::kWorldSpecFingerprint: return "world-spec-fingerprint";
    case CnbSection::kWorldScamAddress: return "world-scam-address";
    case CnbSection::kWorldAcceleratedTxid: return "world-accelerated-txid";
    case CnbSection::kPoolNameOffsets: return "pool-name-offsets";
    case CnbSection::kPoolNameBytes: return "pool-name-bytes";
    case CnbSection::kPoolsByBlocks: return "pools-by-blocks";
    case CnbSection::kBlockPool: return "block-pool";
    case CnbSection::kBlockFees: return "block-fees";
    case CnbSection::kBlockPpe: return "block-ppe";
    case CnbSection::kTxFeeRate: return "tx-fee-rate";
    case CnbSection::kTxFlags: return "tx-flags";
    case CnbSection::kTxSppe: return "tx-sppe";
    case CnbSection::kOutAddrId: return "out-addr-id";
    case CnbSection::kAddrById: return "addr-by-id";
    case CnbSection::kPoolBlocksBegin: return "pool-blocks-begin";
    case CnbSection::kPoolBlocksIdx: return "pool-blocks-idx";
    case CnbSection::kPoolTxCounts: return "pool-tx-counts";
    case CnbSection::kSelfInterestBegin: return "self-interest-begin";
    case CnbSection::kSelfInterestIdx: return "self-interest-idx";
  }
  return "unknown";
}

std::uint64_t cnb_checksum(const void* data, std::size_t size) noexcept {
  // Four interleaved FNV-1a-64 lanes. A single lane is a serial
  // xor-multiply dependency chain, so folding tops out at one word per
  // multiply latency (~5 cycles); four independent lanes keep the
  // multiplier pipeline full and verify ~4x faster on one core. The
  // lanes start from distinct offsets and fold into one digest (then
  // the byte length), so swapped words across lanes, trailing zero
  // bytes, and truncation all change the sum.
  constexpr std::uint64_t kOffset = 1469598103934665603ull;
  constexpr std::uint64_t kPrime = 1099511628211ull;
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint64_t lane[4] = {kOffset, kOffset ^ 1, kOffset ^ 2, kOffset ^ 3};
  std::size_t i = 0;
  for (; i + 32 <= size; i += 32) {
    std::uint64_t w[4];
    std::memcpy(w, p + i, 32);
    lane[0] = (lane[0] ^ w[0]) * kPrime;
    lane[1] = (lane[1] ^ w[1]) * kPrime;
    lane[2] = (lane[2] ^ w[2]) * kPrime;
    lane[3] = (lane[3] ^ w[3]) * kPrime;
  }
  for (; i + 8 <= size; i += 8) {
    std::uint64_t word;
    std::memcpy(&word, p + i, 8);
    lane[0] = (lane[0] ^ word) * kPrime;
  }
  if (i < size) {
    std::uint64_t tail = 0;
    std::memcpy(&tail, p + i, size - i);
    lane[1] = (lane[1] ^ tail) * kPrime;
  }
  std::uint64_t h = kOffset;
  for (const std::uint64_t l : lane) h = (h ^ l) * kPrime;
  return (h ^ size) * kPrime;
}

std::optional<CnbInfo> inspect_cnb(const std::string& path,
                                   std::string* error) {
  const auto fail = [&](const std::string& why) -> std::optional<CnbInfo> {
    if (error != nullptr) *error = why;
    return std::nullopt;
  };
  std::ifstream in(path, std::ios::binary);
  if (!in) return fail("cannot open " + path);
  std::vector<std::uint8_t> header(kCnbHeaderBytes);
  in.read(reinterpret_cast<char*>(header.data()),
          static_cast<std::streamsize>(header.size()));
  if (in.gcount() != static_cast<std::streamsize>(header.size())) {
    return fail("file smaller than the CNB1 header");
  }
  if (std::memcmp(header.data(), kCnbMagic, sizeof kCnbMagic) != 0) {
    return fail("bad magic (not a CNB1 file)");
  }
  CnbInfo info;
  info.version = get_u32(header.data() + 8);
  const std::uint32_t endian = get_u32(header.data() + 12);
  const std::uint32_t section_count = get_u32(header.data() + 16);
  const std::uint32_t header_bytes = get_u32(header.data() + 20);
  info.genesis_height = get_u64(header.data() + 24);
  info.block_count = get_u64(header.data() + 32);
  info.tx_count = get_u64(header.data() + 40);
  info.flags = get_u64(header.data() + 48);
  info.registry_fingerprint = get_u64(header.data() + 56);
  if (info.version != kCnbVersion) return fail("unsupported CNB version");
  if (endian != kCnbEndianTag) return fail("endianness mismatch");
  if (header_bytes < kCnbHeaderBytes) return fail("malformed header size");

  std::error_code ec;
  info.file_size = std::filesystem::file_size(path, ec);
  if (ec) return fail("cannot stat " + path);

  // Validate the directory fits BEFORE sizing anything by section_count:
  // a crafted header with section_count = 0xFFFFFFFF would otherwise
  // drive a ~137 GB reserve straight into std::bad_alloc.
  if (header_bytes + 32ull * section_count > info.file_size) {
    return fail("directory extends past EOF");
  }

  in.seekg(header_bytes);
  std::vector<std::uint8_t> entry(32);
  info.sections.reserve(section_count);
  for (std::uint32_t i = 0; i < section_count; ++i) {
    in.read(reinterpret_cast<char*>(entry.data()), 32);
    if (in.gcount() != 32) return fail("directory extends past EOF");
    CnbSectionInfo s;
    s.id = get_u32(entry.data());
    s.offset = get_u64(entry.data() + 8);
    s.byte_size = get_u64(entry.data() + 16);
    s.checksum = get_u64(entry.data() + 24);
    info.sections.push_back(s);
  }
  return info;
}

// ---------------------------------------------------------------------
// Writer.

bool write_cnb(const btc::Chain& chain, const std::string& path,
               const CnbWriteOptions& options, std::string* error) {
  const obs::Span span("io.write_cnb");
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };

  const std::size_t nb = chain.size();
  const std::uint64_t genesis_height =
      chain.empty() ? chain.next_height() : chain.front().height();

  // --- relational block / tx / input / output columns ---
  std::vector<SimTime> mined_at;
  std::vector<std::uint64_t> reward_addr;
  std::vector<std::int64_t> reward_sat;
  std::vector<std::string> tags;
  std::vector<std::uint64_t> block_tx_begin;
  mined_at.reserve(nb);
  reward_addr.reserve(nb);
  reward_sat.reserve(nb);
  tags.reserve(nb);
  block_tx_begin.reserve(nb + 1);

  std::uint64_t nt = 0;
  block_tx_begin.push_back(0);
  for (const btc::Block& block : chain.blocks()) {
    mined_at.push_back(block.mined_at());
    reward_addr.push_back(block.coinbase().reward_address.value);
    reward_sat.push_back(block.coinbase().reward.value);
    tags.push_back(block.coinbase().tag);
    nt += block.tx_count();
    block_tx_begin.push_back(nt);
  }

  std::vector<btc::Txid> txid;
  std::vector<SimTime> issued;
  std::vector<std::uint32_t> vsize;
  std::vector<std::int64_t> fee;
  std::vector<std::uint64_t> in_begin, out_begin;
  std::vector<btc::Txid> in_prev_txid;
  std::vector<std::uint32_t> in_prev_vout;
  std::vector<std::uint64_t> in_owner;
  std::vector<std::uint64_t> out_to;
  std::vector<std::int64_t> out_value;
  txid.reserve(nt);
  issued.reserve(nt);
  vsize.reserve(nt);
  fee.reserve(nt);
  in_begin.reserve(nt + 1);
  out_begin.reserve(nt + 1);
  in_begin.push_back(0);
  out_begin.push_back(0);
  for (const btc::Block& block : chain.blocks()) {
    for (const btc::Transaction& tx : block.txs()) {
      txid.push_back(tx.id());
      issued.push_back(tx.issued());
      vsize.push_back(tx.vsize());
      fee.push_back(tx.fee().value);
      for (const btc::TxInput& in : tx.inputs()) {
        in_prev_txid.push_back(in.prev_txid);
        in_prev_vout.push_back(in.prev_vout);
        in_owner.push_back(in.owner.value);
      }
      for (const btc::TxOutput& out : tx.outputs()) {
        out_to.push_back(out.to.value);
        out_value.push_back(out.value.value);
      }
      in_begin.push_back(in_prev_txid.size());
      out_begin.push_back(out_to.size());
    }
  }

  std::vector<SectionBlob> sections;
  auto [tag_offsets, tag_bytes] = string_column(
      CnbSection::kBlockTagOffsets, CnbSection::kBlockTagBytes, tags);
  sections.push_back(column(CnbSection::kBlockMinedAt, mined_at));
  sections.push_back(column(CnbSection::kBlockRewardAddr, reward_addr));
  sections.push_back(column(CnbSection::kBlockRewardSat, reward_sat));
  sections.push_back(std::move(tag_offsets));
  sections.push_back(std::move(tag_bytes));
  sections.push_back(column(CnbSection::kBlockTxBegin, block_tx_begin));
  sections.push_back(column(CnbSection::kTxId, txid));
  sections.push_back(column(CnbSection::kTxIssued, issued));
  sections.push_back(column(CnbSection::kTxVsize, vsize));
  sections.push_back(column(CnbSection::kTxFeeSat, fee));
  sections.push_back(column(CnbSection::kTxInBegin, in_begin));
  sections.push_back(column(CnbSection::kInPrevTxid, in_prev_txid));
  sections.push_back(column(CnbSection::kInPrevVout, in_prev_vout));
  sections.push_back(column(CnbSection::kInOwner, in_owner));
  sections.push_back(column(CnbSection::kTxOutBegin, out_begin));
  sections.push_back(column(CnbSection::kOutTo, out_to));
  sections.push_back(column(CnbSection::kOutValueSat, out_value));

  std::uint64_t flags = 0;
  if (!chain.empty() && chain.front().sealed()) {
    // Sealed-header fast path: with the Merkle roots on disk a loader
    // adopts each header instead of re-hashing every txid (the dominant
    // chain-rebuild cost). No prev-hash column — the header chain
    // re-derives it, and Chain::verify_integrity still recomputes roots.
    flags |= kCnbFlagSealedHeaders;
    std::vector<btc::Txid> merkle;
    merkle.reserve(nb);
    for (const btc::Block& block : chain.blocks()) {
      merkle.push_back(block.header().merkle_root);
    }
    sections.push_back(column(CnbSection::kBlockMerkleRoot, merkle));
  }
  if (options.snapshots != nullptr) {
    flags |= kCnbFlagSnapshots;
    std::vector<SimTime> time;
    std::vector<std::uint64_t> tx_count, total_vsize;
    for (const node::MempoolStat& s : options.snapshots->stats()) {
      time.push_back(s.time);
      tx_count.push_back(s.tx_count);
      total_vsize.push_back(s.total_vsize);
    }
    sections.push_back(column(CnbSection::kSnapTime, time));
    sections.push_back(column(CnbSection::kSnapTxCount, tx_count));
    sections.push_back(column(CnbSection::kSnapVsize, total_vsize));
  }
  if (options.first_seen != nullptr) {
    flags |= kCnbFlagFirstSeen;
    // Sorted by txid byte order so the file bytes are reproducible
    // regardless of the source map's iteration order.
    std::vector<std::pair<btc::Txid, SimTime>> rows(
        options.first_seen->begin(), options.first_seen->end());
    std::sort(rows.begin(), rows.end());
    std::vector<btc::Txid> fs_txid;
    std::vector<SimTime> fs_time;
    fs_txid.reserve(rows.size());
    fs_time.reserve(rows.size());
    for (const auto& [id, t] : rows) {
      fs_txid.push_back(id);
      fs_time.push_back(t);
    }
    sections.push_back(column(CnbSection::kFirstSeenTxid, fs_txid));
    sections.push_back(column(CnbSection::kFirstSeenTime, fs_time));
  }
  if (options.world != nullptr) {
    flags |= kCnbFlagSimWorld;
    sections.push_back(column(
        CnbSection::kWorldSpecFingerprint,
        std::vector<std::uint64_t>{options.world->spec_fingerprint}));
    sections.push_back(
        column(CnbSection::kWorldScamAddress,
               std::vector<std::uint64_t>{options.world->scam_address.value}));
    std::vector<btc::Txid> accel = options.world->accelerated_txids;
    std::sort(accel.begin(), accel.end());
    sections.push_back(column(CnbSection::kWorldAcceleratedTxid, accel));
  }
  if (options.dataset != nullptr) {
    flags |= kCnbFlagAuditDataset;
    const core::AuditDataset& ds = *options.dataset;
    const std::size_t np = ds.pool_count();

    std::vector<std::string> pool_names;
    pool_names.reserve(np);
    for (core::PoolId p = 0; p < np; ++p) pool_names.push_back(ds.pool_name(p));
    auto [name_offsets, name_bytes] = string_column(
        CnbSection::kPoolNameOffsets, CnbSection::kPoolNameBytes, pool_names);
    sections.push_back(std::move(name_offsets));
    sections.push_back(std::move(name_bytes));

    const auto span_column = [&sections](CnbSection id, auto span) {
      using T = std::remove_const_t<typename decltype(span)::element_type>;
      sections.push_back(
          column(id, std::vector<T>(span.begin(), span.end())));
    };
    span_column(CnbSection::kPoolsByBlocks, ds.pools_by_blocks());
    span_column(CnbSection::kBlockPool, ds.block_pool());
    span_column(CnbSection::kBlockFees, ds.block_fees());
    span_column(CnbSection::kBlockPpe, ds.block_ppe());
    span_column(CnbSection::kTxFeeRate, ds.fee_rate());
    span_column(CnbSection::kTxFlags, ds.tx_flags());
    span_column(CnbSection::kTxSppe, ds.sppe());

    std::vector<btc::AddressId> out_addr;
    for (core::TxIdx t = 0; t < ds.tx_count(); ++t) {
      const auto addrs = ds.out_addrs_of(t);
      out_addr.insert(out_addr.end(), addrs.begin(), addrs.end());
    }
    sections.push_back(column(CnbSection::kOutAddrId, out_addr));

    std::vector<std::uint64_t> addr_by_id;
    addr_by_id.reserve(ds.addresses().size());
    for (btc::AddressId a = 0; a < ds.addresses().size(); ++a) {
      addr_by_id.push_back(ds.addresses().at(a).value);
    }
    sections.push_back(column(CnbSection::kAddrById, addr_by_id));

    std::vector<std::uint64_t> pool_blocks_begin{0}, self_begin{0};
    std::vector<std::uint32_t> pool_blocks_idx, self_idx;
    std::vector<std::uint64_t> pool_tx_counts;
    for (core::PoolId p = 0; p < np; ++p) {
      const auto blocks = ds.blocks_of_pool(p);
      pool_blocks_idx.insert(pool_blocks_idx.end(), blocks.begin(), blocks.end());
      pool_blocks_begin.push_back(pool_blocks_idx.size());
      const auto txs = ds.self_interest_txs(p);
      self_idx.insert(self_idx.end(), txs.begin(), txs.end());
      self_begin.push_back(self_idx.size());
      pool_tx_counts.push_back(ds.pool_tx_count(p));
    }
    sections.push_back(column(CnbSection::kPoolBlocksBegin, pool_blocks_begin));
    sections.push_back(column(CnbSection::kPoolBlocksIdx, pool_blocks_idx));
    sections.push_back(column(CnbSection::kPoolTxCounts, pool_tx_counts));
    sections.push_back(column(CnbSection::kSelfInterestBegin, self_begin));
    sections.push_back(column(CnbSection::kSelfInterestIdx, self_idx));
  }

  // --- header + directory + payloads ---
  std::vector<std::uint8_t> header;
  header.reserve(kCnbHeaderBytes);
  header.insert(header.end(), kCnbMagic, kCnbMagic + sizeof kCnbMagic);
  put_u32(header, kCnbVersion);
  put_u32(header, kCnbEndianTag);
  put_u32(header, static_cast<std::uint32_t>(sections.size()));
  put_u32(header, kCnbHeaderBytes);
  put_u64(header, genesis_height);
  put_u64(header, nb);
  put_u64(header, nt);
  put_u64(header, flags);
  put_u64(header, options.dataset != nullptr ? options.registry_fingerprint : 0);

  std::vector<std::uint8_t> directory;
  directory.reserve(sections.size() * 32);
  std::uint64_t offset = kCnbHeaderBytes + sections.size() * 32;
  for (const SectionBlob& s : sections) {
    put_u32(directory, static_cast<std::uint32_t>(s.id));
    put_u32(directory, 0);  // reserved
    put_u64(directory, offset);
    put_u64(directory, s.bytes.size());
    put_u64(directory, cnb_checksum(s.bytes.data(), s.bytes.size()));
    offset += (s.bytes.size() + 7) & ~std::uint64_t{7};  // 8-byte aligned
  }

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return fail("cannot create " + tmp);
    const auto put = [&out](const std::vector<std::uint8_t>& bytes) {
      out.write(reinterpret_cast<const char*>(bytes.data()),
                static_cast<std::streamsize>(bytes.size()));
    };
    put(header);
    put(directory);
    static constexpr std::uint8_t kPad[8] = {};
    for (const SectionBlob& s : sections) {
      put(s.bytes);
      const std::size_t pad = (8 - s.bytes.size() % 8) % 8;
      out.write(reinterpret_cast<const char*>(kPad),
                static_cast<std::streamsize>(pad));
    }
    out.flush();
    if (!out) {
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      return fail("write failed for " + tmp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return fail("rename to " + path + " failed");
  }

  CnbMetrics& m = cnb_metrics();
  m.writes.add();
  m.bytes_written.add(offset);
  return true;
}

bool write_cnb(const DatasetHandle& handle, const std::string& path,
               std::string* error) {
  CnbWriteOptions options;
  if (handle.snapshots) options.snapshots = &*handle.snapshots;
  if (handle.first_seen) options.first_seen = &*handle.first_seen;
  if (handle.audit_dataset) {
    options.dataset = &*handle.audit_dataset;
    options.registry_fingerprint = handle.registry_fingerprint;
  }
  if (handle.sim_world) options.world = &*handle.sim_world;
  return write_cnb(handle.chain, path, options, error);
}

// ---------------------------------------------------------------------
// Reader.

namespace {

/// Policy bookkeeping for the load. A defect either poisons just its
/// optional section group (lenient) or the whole load (strict mode, or
/// a defect in a required section).
struct CnbLoad {
  LoadPolicy policy{};
  std::string path;
  LoadReport report;
  bool fatal = false;

  /// Records a defect. @p dir_line is the 1-based directory index (0 =
  /// file level). @p required marks defects lenient mode cannot drop.
  /// Returns false when the load must stop entirely.
  bool defect(LoadErrorKind kind, std::size_t dir_line, std::string detail,
              bool required) {
    report.errors.push_back(
        LoadError{kind, path, dir_line, std::move(detail), false});
    if (policy == LoadPolicy::kStrict || required) {
      fatal = true;
      report.ok = false;
      return false;
    }
    ++report.rows_skipped;
    cnb_metrics().sections_dropped.add();
    return true;
  }
};

/// One recognised, checksum-verified section payload.
struct Verified {
  const std::uint8_t* data = nullptr;
  std::uint64_t size = 0;
  std::size_t dir_line = 0;  ///< 1-based directory index
  bool ok = false;
};

/// Relational sections the chain rebuild cannot do without; lenient
/// mode may only drop the optional groups, so a file-level defect on
/// one of these (e.g. a duplicate directory entry) is always fatal.
bool required_section(std::uint32_t id) {
  return id >= static_cast<std::uint32_t>(CnbSection::kBlockMinedAt) &&
         id <= static_cast<std::uint32_t>(CnbSection::kOutValueSat);
}

}  // namespace

LoadResult<DatasetHandle> read_cnb(const std::string& path,
                                   LoadPolicy policy) {
  const obs::Span span("io.read_cnb");
  LoadResult<DatasetHandle> result;
  CnbLoad load{policy, path, {}, false};
  load.report.policy = policy;
  // The chain rebuild may still be running on a helper thread (see
  // below); every exit joins it first so it never outlives the locals
  // it reads.
  std::future<void> rebuild;
  // Returns an xvalue so every `return finish();` moves the handle out —
  // a plain lvalue reference here would deep-copy the whole chain.
  const auto finish = [&]() -> LoadResult<DatasetHandle>&& {
    if (rebuild.valid()) rebuild.get();
    CnbMetrics& m = cnb_metrics();
    m.loads.add();
    if (!result.value.has_value()) m.loads_failed.add();
    result.report = std::move(load.report);
    return std::move(result);
  };

  // --- map the file ---
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    load.defect(LoadErrorKind::kFileOpen, 0,
                std::string("cannot open: ") + std::strerror(errno), true);
    return finish();
  }
  struct ::stat st{};
  if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
    ::close(fd);
    load.defect(LoadErrorKind::kFileOpen, 0, "not a regular file", true);
    return finish();
  }
  const auto file_size = static_cast<std::size_t>(st.st_size);
  if (file_size < kCnbHeaderBytes) {
    ::close(fd);
    load.defect(LoadErrorKind::kTruncatedFile, 0,
                "file smaller than the CNB1 header", true);
    return finish();
  }
  MappedFile map;
  void* raw = ::mmap(nullptr, file_size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (raw == MAP_FAILED) {
    load.defect(LoadErrorKind::kMmapFailed, 0,
                std::string("mmap: ") + std::strerror(errno), true);
    return finish();
  }
  map.data = static_cast<const std::uint8_t*>(raw);
  map.size = file_size;
  cnb_metrics().bytes_read.add(file_size);

  // --- header ---
  if (std::memcmp(map.data, kCnbMagic, sizeof kCnbMagic) != 0) {
    load.defect(LoadErrorKind::kBadMagic, 0, "not a CNB1 file", true);
    return finish();
  }
  const std::uint32_t version = get_u32(map.data + 8);
  const std::uint32_t endian = get_u32(map.data + 12);
  const std::uint32_t section_count = get_u32(map.data + 16);
  const std::uint32_t header_bytes = get_u32(map.data + 20);
  const std::uint64_t genesis_height = get_u64(map.data + 24);
  const std::uint64_t nb = get_u64(map.data + 32);
  const std::uint64_t nt = get_u64(map.data + 40);
  const std::uint64_t flags = get_u64(map.data + 48);
  const std::uint64_t fingerprint = get_u64(map.data + 56);
  if (version != kCnbVersion) {
    load.defect(LoadErrorKind::kUnsupportedVersion, 0,
                "version " + std::to_string(version) + " (reader speaks " +
                    std::to_string(kCnbVersion) + ")",
                true);
    return finish();
  }
  if (endian != kCnbEndianTag) {
    load.defect(LoadErrorKind::kUnsupportedVersion, 0,
                "endianness tag mismatch (big-endian producer?)", true);
    return finish();
  }
  if (header_bytes < kCnbHeaderBytes || header_bytes > file_size) {
    load.defect(LoadErrorKind::kSectionLayout, 0, "malformed header size",
                true);
    return finish();
  }
  if (nb > std::numeric_limits<std::uint32_t>::max() ||
      nt >= std::numeric_limits<std::uint32_t>::max()) {
    load.defect(LoadErrorKind::kSectionLayout, 0,
                "block/tx counts exceed the 32-bit ordinal space", true);
    return finish();
  }
  const std::uint64_t dir_end =
      header_bytes + static_cast<std::uint64_t>(section_count) * 32;
  if (dir_end > file_size) {
    load.defect(LoadErrorKind::kTruncatedFile, 0,
                "section directory extends past EOF", true);
    return finish();
  }

  // --- directory: bounds + alignment + checksum pass, in file order.
  // Unrecognised ids are skipped (forward compatibility). Duplicates
  // keep the first entry; the duplicate itself is a recorded defect —
  // droppable in lenient mode for optional sections, fatal for required
  // ones (and, like any defect, fatal under strict).
  // The digests are the only O(file) cost of the walk and are pure reads
  // over disjoint payload ranges, so big files fold them in parallel up
  // front; the serial walk below just compares, keeping defect discovery
  // in exactly the file order that strict mode promises.
  std::vector<std::uint64_t> digest(section_count, 0);
  {
    util::ThreadPool folders(file_size >= kParallelLoadBytes ? 0u : 1u);
    folders.parallel_for(section_count, [&](std::size_t i) {
      const std::uint8_t* entry = map.data + header_bytes + i * 32;
      const std::uint64_t offset = get_u64(entry + 8);
      const std::uint64_t byte_size = get_u64(entry + 16);
      if (offset > file_size || byte_size > file_size - offset) return;
      digest[i] = cnb_checksum(map.data + offset, byte_size);
    });
  }
  std::map<std::uint32_t, Verified> sections;
  for (std::uint32_t i = 0; i < section_count; ++i) {
    const std::uint8_t* entry = map.data + header_bytes + i * 32;
    const std::uint32_t id = get_u32(entry);
    const std::uint64_t offset = get_u64(entry + 8);
    const std::uint64_t byte_size = get_u64(entry + 16);
    const std::uint64_t checksum = get_u64(entry + 24);
    const std::size_t dir_line = i + 1;
    const char* name = to_string(static_cast<CnbSection>(id));
    if (std::string_view(name) == "unknown") continue;
    if (sections.count(id) != 0) {
      if (!load.defect(LoadErrorKind::kSectionLayout, dir_line,
                       std::string("duplicate section ") + name,
                       required_section(id))) {
        return finish();
      }
      continue;  // keep the first entry, already verified above
    }
    Verified v;
    v.dir_line = dir_line;
    if (offset > file_size || byte_size > file_size - offset) {
      if (!load.defect(LoadErrorKind::kTruncatedFile, dir_line,
                       std::string("section ") + name + " extends past EOF",
                       false)) {
        return finish();
      }
      sections.emplace(id, v);  // present but unusable
      continue;
    }
    if (offset % 8 != 0) {
      // The writer 8-byte-aligns every payload; the reader's zero-copy
      // u64/i64/f64 views rely on it, so a misaligned entry in a
      // crafted/corrupt file must never reach a reinterpret_cast.
      if (!load.defect(LoadErrorKind::kSectionLayout, dir_line,
                       std::string("section ") + name +
                           " offset is not 8-byte aligned",
                       false)) {
        return finish();
      }
      sections.emplace(id, v);  // present but unusable
      continue;
    }
    if (digest[i] != checksum) {
      if (!load.defect(LoadErrorKind::kSectionChecksum, dir_line,
                       std::string("section ") + name + " failed its checksum",
                       false)) {
        return finish();
      }
      sections.emplace(id, v);
      continue;
    }
    v.data = map.data + offset;
    v.size = byte_size;
    v.ok = true;
    sections.emplace(id, v);
    ++load.report.rows_read;
    cnb_metrics().sections_verified.add();
  }

  // --- section group extraction ---
  // `take` fetches one section of a group: it must exist, be
  // checksum-clean, and hold a whole number of elements of the declared
  // width (an exact count when one is implied). ANY miss poisons the
  // group unconditionally — group_ok never survives a defect, so later
  // consumers of sibling columns cannot index into a half-loaded group.
  // defect()'s return value only decides whether the whole load aborts:
  // fatal for the required relational group (and everything in strict
  // mode), dropped-with-record for optional groups in lenient mode.
  bool group_ok = true;
  const auto take = [&](CnbSection id, std::size_t elem_size,
                        std::optional<std::uint64_t> count,
                        bool required) -> const Verified* {
    if (load.fatal || !group_ok) return nullptr;
    const char* name = to_string(id);
    const auto it = sections.find(static_cast<std::uint32_t>(id));
    if (it == sections.end()) {
      load.defect(LoadErrorKind::kMissingSection, 0,
                  std::string("section ") + name + " is missing", required);
      group_ok = false;
      return nullptr;
    }
    const Verified& v = it->second;
    if (!v.ok) {  // bounds/alignment/checksum defect already recorded
      group_ok = false;
      if (required) {
        load.fatal = true;
        load.report.ok = false;
      }
      return nullptr;
    }
    const bool size_ok =
        count ? v.size == *count * elem_size : v.size % elem_size == 0;
    if (!size_ok) {
      load.defect(LoadErrorKind::kSectionLayout, v.dir_line,
                  std::string("section ") + name +
                      " has an unexpected byte size",
                  required);
      group_ok = false;
      return nullptr;
    }
    return &v;
  };
  const auto layout_defect = [&](CnbSection id, const std::string& why,
                                 bool required) {
    const auto it = sections.find(static_cast<std::uint32_t>(id));
    const std::size_t line = it == sections.end() ? 0 : it->second.dir_line;
    load.defect(LoadErrorKind::kSectionLayout, line,
                std::string("section ") + to_string(id) + ": " + why,
                required);
    group_ok = false;
  };

  // --- required relational group ---
  group_ok = true;
  DatasetHandle handle;
  handle.format = DatasetFormat::kCnb;
  handle.registry_fingerprint = fingerprint;

  // The relational columns are consumed within this call (chain rebuild,
  // intern pass, derived-column copies), so they are read straight out
  // of the verified mapping instead of through intermediate vectors —
  // on one core the extra 40+ MB alloc-and-copy pass was a measurable
  // slice of the load. The directory walk above rejected any section
  // whose offset is not 8-byte aligned, so these views are well-aligned
  // for every element type here; after the required group either
  // load.fatal is set or every view below is non-null.
  const SimTime* mined_at = nullptr;
  const std::uint64_t* reward_addr = nullptr;
  const std::int64_t* reward_sat = nullptr;
  const std::uint64_t* tag_offsets = nullptr;
  const std::uint8_t* tag_bytes = nullptr;
  std::uint64_t tag_bytes_size = 0;
  const std::uint64_t* block_tx_begin = nullptr;
  const btc::Txid* txid = nullptr;
  const SimTime* issued = nullptr;
  const std::uint32_t* vsize = nullptr;
  const std::int64_t* fee = nullptr;
  const std::uint64_t* in_begin = nullptr;
  const std::uint64_t* out_begin = nullptr;
  const btc::Txid* in_prev_txid = nullptr;
  const std::uint32_t* in_prev_vout = nullptr;
  const std::uint64_t* in_owner = nullptr;
  const std::uint64_t* out_to = nullptr;
  const std::int64_t* out_value = nullptr;

  if (const Verified* v = take(CnbSection::kBlockMinedAt, 8, nb, true)) {
    mined_at = reinterpret_cast<const SimTime*>(v->data);
  }
  if (const Verified* v = take(CnbSection::kBlockRewardAddr, 8, nb, true)) {
    reward_addr = reinterpret_cast<const std::uint64_t*>(v->data);
  }
  if (const Verified* v = take(CnbSection::kBlockRewardSat, 8, nb, true)) {
    reward_sat = reinterpret_cast<const std::int64_t*>(v->data);
  }
  if (const Verified* v = take(CnbSection::kBlockTagOffsets, 8, nb + 1, true)) {
    tag_offsets = reinterpret_cast<const std::uint64_t*>(v->data);
  }
  if (const Verified* v = take(CnbSection::kBlockTagBytes, 1, std::nullopt, true)) {
    tag_bytes = v->data;
    tag_bytes_size = v->size;
  }
  if (const Verified* v = take(CnbSection::kBlockTxBegin, 8, nb + 1, true)) {
    block_tx_begin = reinterpret_cast<const std::uint64_t*>(v->data);
  }
  if (const Verified* v = take(CnbSection::kTxId, 32, nt, true)) {
    txid = reinterpret_cast<const btc::Txid*>(v->data);
  }
  if (const Verified* v = take(CnbSection::kTxIssued, 8, nt, true)) {
    issued = reinterpret_cast<const SimTime*>(v->data);
  }
  if (const Verified* v = take(CnbSection::kTxVsize, 4, nt, true)) {
    vsize = reinterpret_cast<const std::uint32_t*>(v->data);
  }
  if (const Verified* v = take(CnbSection::kTxFeeSat, 8, nt, true)) {
    fee = reinterpret_cast<const std::int64_t*>(v->data);
  }
  if (const Verified* v = take(CnbSection::kTxInBegin, 8, nt + 1, true)) {
    in_begin = reinterpret_cast<const std::uint64_t*>(v->data);
  }
  std::uint64_t ni = 0;
  if (!load.fatal && group_ok) {
    if (!valid_csr(in_begin, nt, in_begin[nt])) {
      layout_defect(CnbSection::kTxInBegin, "input CSR is not monotone", true);
    } else {
      ni = in_begin[nt];
    }
  }
  if (const Verified* v = take(CnbSection::kInPrevTxid, 32, ni, true)) {
    in_prev_txid = reinterpret_cast<const btc::Txid*>(v->data);
  }
  if (const Verified* v = take(CnbSection::kInPrevVout, 4, ni, true)) {
    in_prev_vout = reinterpret_cast<const std::uint32_t*>(v->data);
  }
  if (const Verified* v = take(CnbSection::kInOwner, 8, ni, true)) {
    in_owner = reinterpret_cast<const std::uint64_t*>(v->data);
  }
  if (const Verified* v = take(CnbSection::kTxOutBegin, 8, nt + 1, true)) {
    out_begin = reinterpret_cast<const std::uint64_t*>(v->data);
  }
  std::uint64_t no = 0;
  if (!load.fatal && group_ok) {
    if (!valid_csr(out_begin, nt, out_begin[nt])) {
      layout_defect(CnbSection::kTxOutBegin, "output CSR is not monotone",
                    true);
    } else {
      no = out_begin[nt];
    }
  }
  if (const Verified* v = take(CnbSection::kOutTo, 8, no, true)) {
    out_to = reinterpret_cast<const std::uint64_t*>(v->data);
  }
  if (const Verified* v = take(CnbSection::kOutValueSat, 8, no, true)) {
    out_value = reinterpret_cast<const std::int64_t*>(v->data);
  }
  if (!load.fatal && group_ok) {
    if (!valid_csr(block_tx_begin, nb, nt)) {
      layout_defect(CnbSection::kBlockTxBegin, "block/tx CSR is not monotone",
                    true);
    } else if (tag_offsets[0] != 0 || tag_offsets[nb] != tag_bytes_size ||
               !std::is_sorted(tag_offsets, tag_offsets + nb + 1)) {
      layout_defect(CnbSection::kBlockTagOffsets,
                    "tag offsets disagree with the tag blob", true);
    }
  }
  if (load.fatal) return finish();

  // --- optional: sealed block headers (flag bit 3) ---
  // A dropped section here (lenient) is harmless: the rebuild below
  // falls back to resealing, which recomputes the same roots.
  const btc::Txid* merkle_root = nullptr;
  if (flags & kCnbFlagSealedHeaders) {
    group_ok = true;
    if (const Verified* v =
            take(CnbSection::kBlockMerkleRoot, 32, nb, false)) {
      merkle_root = reinterpret_cast<const btc::Txid*>(v->data);
    }
    if (!group_ok) merkle_root = nullptr;
    if (load.fatal) return finish();
  }

  // --- rebuild the chain (and the interned table, in the same column
  // order the CSV importer interns: rewards, then input owners, then
  // output recipients) ---
  // With stored Merkle roots each append is a header restore plus index
  // inserts into a pre-sized table; without them it re-seals, re-hashing
  // every txid (the dominant rebuild cost before the fast path).
  //
  // The rebuild reads only the mapped relational columns and writes only
  // handle.chain / handle.addresses; the optional groups below read the
  // same columns and write the *other* handle members. Multi-core hosts
  // therefore overlap the two on a helper thread — finish() and the tail
  // join before anything observes the handle (or unmaps the file). On a
  // single core the helper would only add context switches, so the
  // rebuild runs inline.
  const bool adopt_headers = merkle_root != nullptr;
  const auto rebuild_chain = [&, adopt_headers] {
    handle.chain = btc::Chain(genesis_height);
    handle.chain.reserve_txs(nt);
    for (std::uint64_t b = 0; b < nb; ++b) {
      btc::Coinbase coinbase;
      coinbase.tag.assign(reinterpret_cast<const char*>(tag_bytes) +
                              tag_offsets[b],
                          tag_offsets[b + 1] - tag_offsets[b]);
      coinbase.reward_address = btc::Address{reward_addr[b]};
      coinbase.reward = btc::Satoshi{reward_sat[b]};
      std::vector<btc::Transaction> txs;
      txs.reserve(block_tx_begin[b + 1] - block_tx_begin[b]);
      for (std::uint64_t t = block_tx_begin[b]; t < block_tx_begin[b + 1];
           ++t) {
        std::vector<btc::TxInput> inputs;
        inputs.reserve(in_begin[t + 1] - in_begin[t]);
        for (std::uint64_t i = in_begin[t]; i < in_begin[t + 1]; ++i) {
          inputs.push_back(btc::TxInput{in_prev_txid[i], in_prev_vout[i],
                                        btc::Address{in_owner[i]}});
        }
        std::vector<btc::TxOutput> outputs;
        outputs.reserve(out_begin[t + 1] - out_begin[t]);
        for (std::uint64_t o = out_begin[t]; o < out_begin[t + 1]; ++o) {
          outputs.push_back(btc::TxOutput{btc::Address{out_to[o]},
                                          btc::Satoshi{out_value[o]}});
        }
        txs.push_back(btc::Transaction::restore(
            txid[t], issued[t], vsize[t], btc::Satoshi{fee[t]},
            std::move(inputs), std::move(outputs)));
      }
      btc::Block block(genesis_height + b, mined_at[b], std::move(coinbase),
                       std::move(txs));
      if (adopt_headers) {
        block.restore_header(merkle_root[b], handle.chain.tip_hash());
      }
      handle.chain.append(std::move(block));
    }
    for (std::uint64_t b = 0; b < nb; ++b) {
      handle.addresses.intern(btc::Address{reward_addr[b]});
    }
    for (std::uint64_t i = 0; i < ni; ++i) {
      handle.addresses.intern(btc::Address{in_owner[i]});
    }
    for (std::uint64_t o = 0; o < no; ++o) {
      handle.addresses.intern(btc::Address{out_to[o]});
    }
  };
  if (nt >= kParallelLoadTxs && util::resolve_threads(0) > 1) {
    rebuild = std::async(std::launch::async, rebuild_chain);
  } else {
    rebuild_chain();
  }

  // --- optional: snapshots ---
  if (flags & kCnbFlagSnapshots) {
    group_ok = true;
    std::vector<SimTime> time;
    std::vector<std::uint64_t> count, total;
    const Verified* vt = take(CnbSection::kSnapTime, 8, std::nullopt, false);
    if (vt != nullptr) time = copy_column<SimTime>(vt->data, vt->size);
    if (const Verified* v =
            take(CnbSection::kSnapTxCount, 8, time.size(), false)) {
      count = copy_column<std::uint64_t>(v->data, v->size);
    }
    if (const Verified* v =
            take(CnbSection::kSnapVsize, 8, time.size(), false)) {
      total = copy_column<std::uint64_t>(v->data, v->size);
    }
    if (group_ok && !load.fatal) {
      bool increasing = true;
      for (std::size_t i = 0; i + 1 < time.size(); ++i) {
        increasing = increasing && time[i] < time[i + 1];
      }
      if (!increasing) {
        layout_defect(CnbSection::kSnapTime,
                      "snapshot times are not strictly increasing", false);
      }
    }
    if (group_ok && !load.fatal) {
      node::SnapshotSeries series;
      for (std::size_t i = 0; i < time.size(); ++i) {
        series.record(node::MempoolStat{time[i], count[i], total[i]});
      }
      handle.snapshots = std::move(series);
    }
    if (load.fatal) return finish();
  }

  // --- optional: first-seen ---
  if (flags & kCnbFlagFirstSeen) {
    group_ok = true;
    std::vector<btc::Txid> fs_txid;
    std::vector<SimTime> fs_time;
    if (const Verified* v =
            take(CnbSection::kFirstSeenTxid, 32, std::nullopt, false)) {
      fs_txid = copy_column<btc::Txid>(v->data, v->size);
    }
    if (const Verified* v =
            take(CnbSection::kFirstSeenTime, 8, fs_txid.size(), false)) {
      fs_time = copy_column<SimTime>(v->data, v->size);
    }
    if (group_ok && !load.fatal) {
      FirstSeenMap first_seen;
      first_seen.reserve(fs_txid.size());
      for (std::size_t i = 0; i < fs_txid.size(); ++i) {
        first_seen.emplace(fs_txid[i], fs_time[i]);
      }
      handle.first_seen = std::move(first_seen);
    }
    if (load.fatal) return finish();
  }

  // --- optional: simulator ground truth (cached worlds) ---
  if (flags & kCnbFlagSimWorld) {
    group_ok = true;
    SimWorldInfo info;
    if (const Verified* v =
            take(CnbSection::kWorldSpecFingerprint, 8, 1, false)) {
      std::memcpy(&info.spec_fingerprint, v->data, 8);
    }
    if (const Verified* v = take(CnbSection::kWorldScamAddress, 8, 1, false)) {
      std::uint64_t addr = 0;
      std::memcpy(&addr, v->data, 8);
      info.scam_address = btc::Address{addr};
    }
    if (const Verified* v =
            take(CnbSection::kWorldAcceleratedTxid, 32, std::nullopt, false)) {
      info.accelerated_txids = copy_column<btc::Txid>(v->data, v->size);
    }
    if (group_ok && !load.fatal) {
      // The sorted order is part of the format contract — the in-memory
      // is_accelerated() binary-searches the stored list directly.
      bool sorted = true;
      for (std::size_t i = 0; i + 1 < info.accelerated_txids.size(); ++i) {
        sorted =
            sorted && !(info.accelerated_txids[i + 1] < info.accelerated_txids[i]);
      }
      if (!sorted) {
        layout_defect(CnbSection::kWorldAcceleratedTxid,
                      "accelerated txids are not sorted", false);
      }
    }
    if (group_ok && !load.fatal) handle.sim_world = std::move(info);
    if (load.fatal) return finish();
  }

  // --- optional: derived audit-dataset columns ---
  if (flags & kCnbFlagAuditDataset) {
    group_ok = true;
    core::AuditDatasetColumns cols;
    std::vector<std::uint64_t> name_offsets;
    std::vector<std::uint8_t> name_bytes;
    std::uint64_t np = 0;
    if (const Verified* v =
            take(CnbSection::kPoolNameOffsets, 8, std::nullopt, false)) {
      name_offsets = copy_column<std::uint64_t>(v->data, v->size);
      if (name_offsets.empty()) {
        layout_defect(CnbSection::kPoolNameOffsets, "empty offsets column",
                      false);
      } else {
        np = name_offsets.size() - 1;
      }
    }
    if (const Verified* v =
            take(CnbSection::kPoolNameBytes, 1, std::nullopt, false)) {
      name_bytes = copy_column<std::uint8_t>(v->data, v->size);
    }
    if (group_ok && !load.fatal &&
        (name_offsets.front() != 0 || name_offsets.back() != name_bytes.size() ||
         !std::is_sorted(name_offsets.begin(), name_offsets.end()))) {
      layout_defect(CnbSection::kPoolNameOffsets,
                    "name offsets disagree with the name blob", false);
    }
    if (const Verified* v = take(CnbSection::kPoolsByBlocks, 4, np, false)) {
      cols.pools_by_blocks = copy_column<core::PoolId>(v->data, v->size);
    }
    if (const Verified* v = take(CnbSection::kBlockPool, 4, nb, false)) {
      cols.block_pool = copy_column<core::PoolId>(v->data, v->size);
    }
    if (const Verified* v = take(CnbSection::kBlockFees, 8, nb, false)) {
      cols.block_fees = copy_column<std::int64_t>(v->data, v->size);
    }
    if (const Verified* v = take(CnbSection::kBlockPpe, 8, nb, false)) {
      cols.block_ppe = copy_column<double>(v->data, v->size);
    }
    if (const Verified* v = take(CnbSection::kTxFeeRate, 8, nt, false)) {
      cols.fee_rate = copy_column<double>(v->data, v->size);
    }
    if (const Verified* v = take(CnbSection::kTxFlags, 1, nt, false)) {
      cols.tx_flags = copy_column<std::uint8_t>(v->data, v->size);
    }
    if (const Verified* v = take(CnbSection::kTxSppe, 8, nt, false)) {
      cols.sppe = copy_column<double>(v->data, v->size);
    }
    if (const Verified* v = take(CnbSection::kOutAddrId, 4, no, false)) {
      cols.out_addr = copy_column<btc::AddressId>(v->data, v->size);
    }
    std::vector<std::uint64_t> addr_by_id;
    if (const Verified* v =
            take(CnbSection::kAddrById, 8, std::nullopt, false)) {
      addr_by_id = copy_column<std::uint64_t>(v->data, v->size);
    }
    std::vector<std::uint64_t> pool_blocks_begin, self_begin;
    std::vector<std::uint32_t> pool_blocks_idx;
    std::vector<core::TxIdx> self_idx;
    if (const Verified* v =
            take(CnbSection::kPoolBlocksBegin, 8, np + 1, false)) {
      pool_blocks_begin = copy_column<std::uint64_t>(v->data, v->size);
    }
    if (const Verified* v =
            take(CnbSection::kPoolBlocksIdx, 4, std::nullopt, false)) {
      pool_blocks_idx = copy_column<std::uint32_t>(v->data, v->size);
    }
    if (const Verified* v = take(CnbSection::kPoolTxCounts, 8, np, false)) {
      cols.pool_tx_counts = copy_column<std::uint64_t>(v->data, v->size);
    }
    if (const Verified* v =
            take(CnbSection::kSelfInterestBegin, 8, np + 1, false)) {
      self_begin = copy_column<std::uint64_t>(v->data, v->size);
    }
    if (const Verified* v =
            take(CnbSection::kSelfInterestIdx, 4, std::nullopt, false)) {
      self_idx = copy_column<core::TxIdx>(v->data, v->size);
    }
    if (group_ok && !load.fatal) {
      if (!valid_csr(pool_blocks_begin, np, pool_blocks_idx.size())) {
        layout_defect(CnbSection::kPoolBlocksBegin,
                      "pool/blocks CSR is not monotone", false);
      } else if (!valid_csr(self_begin, np, self_idx.size())) {
        layout_defect(CnbSection::kSelfInterestBegin,
                      "self-interest CSR is not monotone", false);
      }
    }
    if (group_ok && !load.fatal) {
      const auto in_bounds = [](const auto& v, std::uint64_t limit) {
        return std::all_of(v.begin(), v.end(),
                           [&](std::uint32_t x) { return x < limit; });
      };
      const bool pools_ok = std::all_of(
          cols.block_pool.begin(), cols.block_pool.end(),
          [&](core::PoolId p) { return p < np || p == core::kNoPoolId; });
      if (!in_bounds(cols.pools_by_blocks, np) || !pools_ok ||
          !in_bounds(cols.out_addr, addr_by_id.size()) ||
          !in_bounds(pool_blocks_idx, nb) || !in_bounds(self_idx, nt)) {
        layout_defect(CnbSection::kOutAddrId,
                      "derived column references an out-of-range id", false);
      }
    }
    if (group_ok && !load.fatal) {
      cols.pool_names.reserve(np);
      for (std::uint64_t p = 0; p < np; ++p) {
        cols.pool_names.emplace_back(
            name_bytes.begin() + static_cast<std::ptrdiff_t>(name_offsets[p]),
            name_bytes.begin() +
                static_cast<std::ptrdiff_t>(name_offsets[p + 1]));
      }
      cols.block_height.reserve(nb);
      for (std::uint64_t b = 0; b < nb; ++b) {
        cols.block_height.push_back(genesis_height + b);
      }
      cols.block_mined_at.assign(mined_at, mined_at + nb);
      cols.tx_begin.assign(block_tx_begin, block_tx_begin + nb + 1);
      cols.vsize.assign(vsize, vsize + nt);
      cols.issued.assign(issued, issued + nt);
      cols.txid.assign(txid, txid + nt);
      cols.out_begin.assign(out_begin, out_begin + nt + 1);
      for (const std::uint64_t a : addr_by_id) {
        cols.addresses.intern(btc::Address{a});
      }
      cols.pool_blocks = split_csr(pool_blocks_begin, pool_blocks_idx);
      cols.self_interest = split_csr(self_begin, self_idx);
      handle.audit_dataset = core::AuditDataset::restore(std::move(cols));
    }
    if (load.fatal) return finish();
  }

  if (rebuild.valid()) rebuild.get();
  result.value = std::move(handle);
  return finish();
}

}  // namespace cn::io

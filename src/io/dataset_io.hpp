// Data-set export/import.
//
// The paper's authors released their data sets and scripts publicly; this
// module gives the reproduction the same property. A simulated (or, in
// principle, real) chain is written as four relational CSV files —
// blocks, transactions, inputs, outputs — plus optional Mempool-snapshot
// and first-seen series, all loadable back into the library's types or
// directly into pandas/R.
//
// Layout under the export directory:
//   blocks.csv      height, mined_at, coinbase_tag, reward_address, reward_sat, tx_count
//   txs.csv         height, position, txid, issued, vsize, fee_sat
//   inputs.csv      txid, prev_txid, prev_vout, owner
//   outputs.csv     txid, to, value_sat
//   snapshots.csv   time, tx_count, total_vsize        (optional)
//   first_seen.csv  txid, first_seen                    (optional)
//
// Exports are atomic: each file is written to `<name>.tmp` and renamed
// into place only after every write succeeded, so a crashed or
// disk-full export never leaves a half-written data set behind.
//
// Every import returns a LoadResult carrying a structured LoadReport —
// see load_report.hpp for the strict/lenient semantics and the defect
// taxonomy. These per-file importers are the CSV backend of the unified
// io::open_dataset entry point (io/dataset_source.hpp), which is what
// tools, benches, and fixtures should call; the historical
// std::optional-returning overloads are gone.
#pragma once

#include <string>
#include <unordered_map>

#include "btc/chain.hpp"
#include "btc/intern.hpp"
#include "io/load_report.hpp"
#include "node/snapshot.hpp"

namespace cn::io {

/// Writes the chain into @p dir (created if missing). Returns false on
/// any I/O failure — including directory creation and write errors that
/// only surface at flush — and, when @p error is non-null, stores a
/// human-readable reason there.
bool export_chain(const btc::Chain& chain, const std::string& dir,
                  std::string* error = nullptr);

/// Policy-aware import with full diagnostics. Strict mode fails at the
/// first defect (report.first_error() pinpoints file and line); lenient
/// mode skips or repairs defective rows and still yields a chain unless
/// the data was unusable (e.g. blocks.csv missing).
LoadResult<btc::Chain> import_chain(const std::string& dir, LoadPolicy policy);

/// Same import, additionally interning every wallet address the parse
/// touches (coinbase rewards, input owners, output recipients) into
/// @p addresses as rows stream in — the columnar audit layer
/// (core::AuditDataset) reuses the table via
/// AuditOptions::interned_addresses so the address universe is hashed
/// once at load instead of once per audit. @p addresses may be null
/// (identical to the overload above).
LoadResult<btc::Chain> import_chain(const std::string& dir, LoadPolicy policy,
                                    btc::AddressTable* addresses);

bool export_snapshots(const node::SnapshotSeries& series, const std::string& path,
                      std::string* error = nullptr);
LoadResult<node::SnapshotSeries> import_snapshots(const std::string& path,
                                                  LoadPolicy policy);

using FirstSeenMap = std::unordered_map<btc::Txid, SimTime>;
bool export_first_seen(const FirstSeenMap& first_seen, const std::string& path,
                       std::string* error = nullptr);
LoadResult<FirstSeenMap> import_first_seen(const std::string& path,
                                           LoadPolicy policy);

}  // namespace cn::io

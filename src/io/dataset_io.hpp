// Data-set export/import.
//
// The paper's authors released their data sets and scripts publicly; this
// module gives the reproduction the same property. A simulated (or, in
// principle, real) chain is written as four relational CSV files —
// blocks, transactions, inputs, outputs — plus optional Mempool-snapshot
// and first-seen series, all loadable back into the library's types or
// directly into pandas/R.
//
// Layout under the export directory:
//   blocks.csv      height, mined_at, coinbase_tag, reward_address, reward_sat, tx_count
//   txs.csv         height, position, txid, issued, vsize, fee_sat
//   inputs.csv      txid, prev_txid, prev_vout, owner
//   outputs.csv     txid, to, value_sat
//   snapshots.csv   time, tx_count, total_vsize        (optional)
//   first_seen.csv  txid, first_seen                    (optional)
#pragma once

#include <optional>
#include <string>
#include <unordered_map>

#include "btc/chain.hpp"
#include "node/snapshot.hpp"

namespace cn::io {

/// Writes the chain into @p dir (created if missing). Returns false on
/// any I/O failure.
bool export_chain(const btc::Chain& chain, const std::string& dir);

/// Reads a chain previously written by export_chain. Returns nullopt on
/// missing files or malformed content.
std::optional<btc::Chain> import_chain(const std::string& dir);

bool export_snapshots(const node::SnapshotSeries& series, const std::string& path);
std::optional<node::SnapshotSeries> import_snapshots(const std::string& path);

using FirstSeenMap = std::unordered_map<btc::Txid, SimTime>;
bool export_first_seen(const FirstSeenMap& first_seen, const std::string& path);
std::optional<FirstSeenMap> import_first_seen(const std::string& path);

}  // namespace cn::io

#include "io/dataset_io.hpp"

#include <algorithm>
#include <charconv>
#include <filesystem>
#include <map>

#include "util/csv.hpp"

namespace cn::io {

namespace {

std::optional<std::int64_t> to_i64(const std::string& s) {
  std::int64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

std::optional<std::uint64_t> to_u64(const std::string& s) {
  std::uint64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

}  // namespace

bool export_chain(const btc::Chain& chain, const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);

  CsvWriter blocks(dir + "/blocks.csv");
  CsvWriter txs(dir + "/txs.csv");
  CsvWriter inputs(dir + "/inputs.csv");
  CsvWriter outputs(dir + "/outputs.csv");
  if (!blocks.ok() || !txs.ok() || !inputs.ok() || !outputs.ok()) return false;

  blocks.header({"height", "mined_at", "coinbase_tag", "reward_address",
                 "reward_sat", "tx_count"});
  txs.header({"height", "position", "txid", "issued", "vsize", "fee_sat"});
  inputs.header({"txid", "prev_txid", "prev_vout", "owner"});
  outputs.header({"txid", "to", "value_sat"});

  for (const btc::Block& block : chain.blocks()) {
    blocks.field(block.height()).field(block.mined_at());
    blocks.field(block.coinbase().tag);
    blocks.field(block.coinbase().reward_address.value);
    blocks.field(block.coinbase().reward.value);
    blocks.field(static_cast<std::uint64_t>(block.tx_count()));
    blocks.end_row();

    for (std::size_t i = 0; i < block.txs().size(); ++i) {
      const btc::Transaction& tx = block.txs()[i];
      const std::string id_hex = tx.id().to_hex();
      txs.field(block.height()).field(static_cast<std::uint64_t>(i));
      txs.field(id_hex).field(tx.issued());
      txs.field(static_cast<std::uint64_t>(tx.vsize())).field(tx.fee().value);
      txs.end_row();

      for (const btc::TxInput& in : tx.inputs()) {
        inputs.field(id_hex).field(in.prev_txid.to_hex());
        inputs.field(static_cast<std::uint64_t>(in.prev_vout));
        inputs.field(in.owner.value);
        inputs.end_row();
      }
      for (const btc::TxOutput& out : tx.outputs()) {
        outputs.field(id_hex).field(out.to.value).field(out.value.value);
        outputs.end_row();
      }
    }
  }
  return true;
}

std::optional<btc::Chain> import_chain(const std::string& dir) {
  CsvReader blocks_in(dir + "/blocks.csv");
  CsvReader txs_in(dir + "/txs.csv");
  CsvReader inputs_in(dir + "/inputs.csv");
  CsvReader outputs_in(dir + "/outputs.csv");
  if (!blocks_in.ok() || !txs_in.ok() || !inputs_in.ok() || !outputs_in.ok()) {
    return std::nullopt;
  }

  std::vector<std::string> row;

  // Inputs and outputs grouped by txid hex.
  std::unordered_map<std::string, std::vector<btc::TxInput>> inputs_by_tx;
  if (!inputs_in.next_row(row)) return std::nullopt;  // header
  while (inputs_in.next_row(row)) {
    if (row.size() != 4) return std::nullopt;
    const auto prev = btc::Txid::from_hex(row[1]);
    const auto vout = to_u64(row[2]);
    const auto owner = to_u64(row[3]);
    if (!prev || !vout || !owner) return std::nullopt;
    inputs_by_tx[row[0]].push_back(
        btc::TxInput{*prev, static_cast<std::uint32_t>(*vout), btc::Address{*owner}});
  }

  std::unordered_map<std::string, std::vector<btc::TxOutput>> outputs_by_tx;
  if (!outputs_in.next_row(row)) return std::nullopt;
  while (outputs_in.next_row(row)) {
    if (row.size() != 3) return std::nullopt;
    const auto to = to_u64(row[1]);
    const auto value = to_i64(row[2]);
    if (!to || !value) return std::nullopt;
    outputs_by_tx[row[0]].push_back(btc::TxOutput{btc::Address{*to}, btc::Satoshi{*value}});
  }

  // Transactions grouped by (height, position), ordered.
  struct RawTx {
    std::size_t position;
    btc::Transaction tx;
  };
  std::map<std::uint64_t, std::vector<RawTx>> txs_by_height;
  if (!txs_in.next_row(row)) return std::nullopt;
  while (txs_in.next_row(row)) {
    if (row.size() != 6) return std::nullopt;
    const auto height = to_u64(row[0]);
    const auto position = to_u64(row[1]);
    const auto id = btc::Txid::from_hex(row[2]);
    const auto issued = to_i64(row[3]);
    const auto vsize = to_u64(row[4]);
    const auto fee = to_i64(row[5]);
    if (!height || !position || !id || !issued || !vsize || !fee) return std::nullopt;
    auto ins = inputs_by_tx.find(row[2]) != inputs_by_tx.end()
                   ? std::move(inputs_by_tx[row[2]])
                   : std::vector<btc::TxInput>{};
    auto outs = outputs_by_tx.find(row[2]) != outputs_by_tx.end()
                    ? std::move(outputs_by_tx[row[2]])
                    : std::vector<btc::TxOutput>{};
    txs_by_height[*height].push_back(
        RawTx{*position,
              btc::Transaction::restore(*id, *issued,
                                        static_cast<std::uint32_t>(*vsize),
                                        btc::Satoshi{*fee}, std::move(ins),
                                        std::move(outs))});
  }

  // Blocks in height order.
  btc::Chain chain;
  if (!blocks_in.next_row(row)) return std::nullopt;
  struct RawBlock {
    SimTime mined_at;
    btc::Coinbase coinbase;
    std::uint64_t tx_count;
  };
  std::map<std::uint64_t, RawBlock> blocks;
  while (blocks_in.next_row(row)) {
    if (row.size() != 6) return std::nullopt;
    const auto height = to_u64(row[0]);
    const auto mined_at = to_i64(row[1]);
    const auto reward_addr = to_u64(row[3]);
    const auto reward = to_i64(row[4]);
    const auto count = to_u64(row[5]);
    if (!height || !mined_at || !reward_addr || !reward || !count) return std::nullopt;
    btc::Coinbase cb;
    cb.tag = row[2];
    cb.reward_address = btc::Address{*reward_addr};
    cb.reward = btc::Satoshi{*reward};
    blocks.emplace(*height, RawBlock{*mined_at, std::move(cb), *count});
  }

  for (auto& [height, raw] : blocks) {
    std::vector<btc::Transaction> txs;
    const auto it = txs_by_height.find(height);
    if (it != txs_by_height.end()) {
      std::sort(it->second.begin(), it->second.end(),
                [](const RawTx& a, const RawTx& b) { return a.position < b.position; });
      txs.reserve(it->second.size());
      for (RawTx& r : it->second) txs.push_back(std::move(r.tx));
    }
    if (txs.size() != raw.tx_count) return std::nullopt;  // corrupt export
    chain.append(btc::Block(height, raw.mined_at, std::move(raw.coinbase),
                            std::move(txs)));
  }
  return chain;
}

bool export_snapshots(const node::SnapshotSeries& series, const std::string& path) {
  CsvWriter csv(path);
  if (!csv.ok()) return false;
  csv.header({"time", "tx_count", "total_vsize"});
  for (const node::MempoolStat& s : series.stats()) {
    csv.field(s.time).field(s.tx_count).field(s.total_vsize);
    csv.end_row();
  }
  return true;
}

std::optional<node::SnapshotSeries> import_snapshots(const std::string& path) {
  CsvReader in(path);
  if (!in.ok()) return std::nullopt;
  std::vector<std::string> row;
  if (!in.next_row(row)) return std::nullopt;
  node::SnapshotSeries series;
  while (in.next_row(row)) {
    if (row.size() != 3) return std::nullopt;
    const auto time = to_i64(row[0]);
    const auto count = to_u64(row[1]);
    const auto vsize = to_u64(row[2]);
    if (!time || !count || !vsize) return std::nullopt;
    series.record(node::MempoolStat{*time, *count, *vsize});
  }
  return series;
}

bool export_first_seen(const FirstSeenMap& first_seen, const std::string& path) {
  CsvWriter csv(path);
  if (!csv.ok()) return false;
  csv.header({"txid", "first_seen"});
  for (const auto& [id, time] : first_seen) {
    csv.field(id.to_hex()).field(time);
    csv.end_row();
  }
  return true;
}

std::optional<FirstSeenMap> import_first_seen(const std::string& path) {
  CsvReader in(path);
  if (!in.ok()) return std::nullopt;
  std::vector<std::string> row;
  if (!in.next_row(row)) return std::nullopt;
  FirstSeenMap out;
  while (in.next_row(row)) {
    if (row.size() != 2) return std::nullopt;
    const auto id = btc::Txid::from_hex(row[0]);
    const auto time = to_i64(row[1]);
    if (!id || !time) return std::nullopt;
    out.emplace(*id, *time);
  }
  return out;
}

}  // namespace cn::io
